/**
 * @file
 * Unit tests for the workload substrate: profiles, synthetic and
 * uniform generators, and the trace-driven core model.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/machine.hh"
#include "workload/core_model.hh"
#include "workload/profile.hh"
#include "workload/synthetic_generator.hh"
#include "workload/uniform_generator.hh"

namespace flexsnoop
{
namespace
{

TEST(Profiles, Splash2HasElevenApplications)
{
    const auto apps = splash2Profiles();
    EXPECT_EQ(apps.size(), 11u); // all SPLASH-2 except Volrend
    std::set<std::string> names;
    for (const auto &p : apps) {
        names.insert(p.name);
        EXPECT_EQ(p.numCores, 32u);
        EXPECT_EQ(p.coresPerCmp, 4u);
        EXPECT_EQ(p.numCmps(), 8u);
        const double total = p.readMostlyFraction +
                             p.producerConsumerFraction +
                             p.migratoryFraction;
        EXPECT_NEAR(total, 1.0, 1e-9) << p.name;
    }
    EXPECT_EQ(names.size(), 11u) << "names must be distinct";
}

TEST(Profiles, SpecWorkloadsUseSingleCoreCmps)
{
    // Paper §5.1: SPECjbb/web run with 8 processors in 8 CMPs.
    for (const auto &p : {specJbbProfile(), specWebProfile()}) {
        EXPECT_EQ(p.numCores, 8u);
        EXPECT_EQ(p.coresPerCmp, 1u);
    }
}

TEST(Profiles, SpecJbbIsMemoryBoundByConstruction)
{
    const auto p = specJbbProfile();
    // Working set far above the 8K-line L2 and little sharing.
    EXPECT_GT(p.privateLines, 8192u * 2);
    EXPECT_LT(p.sharedFraction, 0.1);
}

TEST(Profiles, ByNameFindsEverything)
{
    EXPECT_EQ(profileByName("specjbb").name, "specjbb");
    EXPECT_EQ(profileByName("barnes").name, "barnes");
    EXPECT_EQ(profileByName("mini").name, "mini");
    EXPECT_THROW(profileByName("doom"), std::invalid_argument);
}

TEST(SyntheticGenerator, DeterministicPerSeed)
{
    const auto profile = miniProfile();
    const auto a = SyntheticGenerator(profile).generate();
    const auto b = SyntheticGenerator(profile).generate();
    ASSERT_EQ(a.traces.size(), b.traces.size());
    for (std::size_t c = 0; c < a.traces.size(); ++c) {
        ASSERT_EQ(a.traces[c].size(), b.traces[c].size());
        for (std::size_t i = 0; i < a.traces[c].size(); ++i) {
            EXPECT_EQ(a.traces[c][i].addr, b.traces[c][i].addr);
            EXPECT_EQ(a.traces[c][i].isWrite, b.traces[c][i].isWrite);
            EXPECT_EQ(a.traces[c][i].gap, b.traces[c][i].gap);
        }
    }
}

TEST(SyntheticGenerator, DifferentSeedsDiffer)
{
    auto profile = miniProfile();
    const auto a = SyntheticGenerator(profile).generate();
    profile.seed += 1;
    const auto b = SyntheticGenerator(profile).generate();
    bool any_diff = false;
    for (std::size_t i = 0; i < a.traces[0].size(); ++i)
        any_diff |= a.traces[0][i].addr != b.traces[0][i].addr;
    EXPECT_TRUE(any_diff);
}

TEST(SyntheticGenerator, TraceShapeMatchesProfile)
{
    const auto profile = miniProfile();
    const auto traces = SyntheticGenerator(profile).generate();
    EXPECT_EQ(traces.numCores(), profile.numCores);
    EXPECT_EQ(traces.warmupRefs, profile.warmupRefs);
    for (const auto &t : traces.traces)
        EXPECT_EQ(t.size(), profile.warmupRefs + profile.refsPerCore);
}

TEST(SyntheticGenerator, SharedFractionRoughlyHonored)
{
    auto profile = miniProfile();
    profile.sharedFraction = 0.4;
    profile.refsPerCore = 4000;
    SyntheticGenerator gen(profile);
    const auto traces = gen.generate();
    std::size_t shared = 0, total = 0;
    for (const auto &t : traces.traces) {
        for (const auto &ref : t) {
            total += 1;
            shared += ref.addr >= (Addr{1} << 40);
        }
    }
    const double frac = static_cast<double>(shared) / total;
    // Migratory refs emit read+write pairs, nudging the fraction up.
    EXPECT_GT(frac, 0.35);
    EXPECT_LT(frac, 0.55);
}

TEST(SyntheticGenerator, PrivateRegionsAreDisjointPerCore)
{
    const auto profile = miniProfile();
    SyntheticGenerator gen(profile);
    for (std::size_t c1 = 0; c1 < 3; ++c1) {
        for (std::size_t c2 = c1 + 1; c2 < 3; ++c2) {
            EXPECT_NE(lineIndex(gen.privateAddr(c1, 0)) / (1 << 20),
                      lineIndex(gen.privateAddr(c2, 0)) / (1 << 20));
        }
    }
}

TEST(SyntheticGenerator, PatternAssignmentIsStable)
{
    const auto profile = miniProfile();
    SyntheticGenerator gen(profile);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(gen.patternOf(i), gen.patternOf(i));
        EXPECT_LT(gen.producerOf(i), profile.numCores);
    }
}

TEST(SyntheticGenerator, MigratoryRefsPairReadWithWrite)
{
    auto profile = miniProfile();
    profile.readMostlyFraction = 0.0;
    profile.producerConsumerFraction = 0.0;
    profile.migratoryFraction = 1.0;
    profile.sharedFraction = 1.0;
    const auto traces = SyntheticGenerator(profile).generate();
    const auto &t = traces.traces[0];
    // Every shared access is a read immediately followed by a write to
    // the same line.
    for (std::size_t i = 0; i + 1 < t.size(); i += 2) {
        EXPECT_FALSE(t[i].isWrite);
        EXPECT_TRUE(t[i + 1].isWrite);
        EXPECT_EQ(lineAddr(t[i].addr), lineAddr(t[i + 1].addr));
    }
}

TEST(UniformGenerator, WarmupWritesOwnLinesMeasurementReadsOthers)
{
    UniformWorkloadParams params;
    params.numCores = 4;
    params.linesPerReader = 8;
    UniformGenerator gen(params);
    const auto traces = gen.generate();
    ASSERT_EQ(traces.numCores(), 4u);
    // Warmup: (n-1) * linesPerReader writes per core.
    EXPECT_EQ(traces.warmupRefs, 3u * 8u);
    for (std::size_t core = 0; core < 4; ++core) {
        const auto &t = traces.traces[core];
        ASSERT_EQ(t.size(), 2 * traces.warmupRefs);
        for (std::size_t i = 0; i < traces.warmupRefs; ++i)
            EXPECT_TRUE(t[i].isWrite);
        for (std::size_t i = traces.warmupRefs; i < t.size(); ++i)
            EXPECT_FALSE(t[i].isWrite);
    }
}

TEST(UniformGenerator, MeasurementLinesAreUniqueAndForeign)
{
    UniformWorkloadParams params;
    params.numCores = 4;
    params.linesPerReader = 8;
    UniformGenerator gen(params);
    const auto traces = gen.generate();
    for (std::size_t reader = 0; reader < 4; ++reader) {
        const auto &t = traces.traces[reader];
        std::set<Addr> seen;
        for (std::size_t i = traces.warmupRefs; i < t.size(); ++i) {
            EXPECT_TRUE(seen.insert(lineAddr(t[i].addr)).second)
                << "line read twice";
        }
        // None of the measured lines belong to the reader's own pool.
        for (std::size_t other = 0; other < 4; ++other) {
            if (other == reader)
                continue;
            for (std::size_t i = 0; i < params.linesPerReader; ++i) {
                // The reader's slice of `other` must be in the set.
                EXPECT_TRUE(
                    seen.count(lineAddr(gen.addrOf(other, reader, i))));
            }
        }
    }
}

// --- Core model ------------------------------------------------------------------

class CoreModelTest : public ::testing::Test
{
  protected:
    CoreModelTest()
        : machine(MachineConfig::testDefault(Algorithm::Lazy))
    {
    }

    Machine machine;
};

TEST_F(CoreModelTest, DrivesTraceToCompletion)
{
    CoreTraces traces;
    traces.warmupRefs = 0;
    traces.traces.resize(4);
    for (CoreId c = 0; c < 4; ++c) {
        for (int i = 0; i < 20; ++i) {
            MemRef ref;
            ref.addr = (c * 100 + i) * kLineSizeBytes;
            ref.isWrite = i % 4 == 0;
            ref.gap = 5;
            traces.traces[c].push_back(ref);
        }
    }
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          CoreParams{});
    const Cycle cycles = runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_GT(cycles, 0u);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(runner.core(c).refsIssued(), 20u);
}

TEST_F(CoreModelTest, WarmupBarrierResetsAtTheRightPoint)
{
    CoreTraces traces;
    traces.warmupRefs = 10;
    traces.traces.resize(4);
    for (CoreId c = 0; c < 4; ++c) {
        for (int i = 0; i < 30; ++i) {
            MemRef ref;
            ref.addr = (c * 100 + i) * kLineSizeBytes;
            ref.gap = 3;
            traces.traces[c].push_back(ref);
        }
    }
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          CoreParams{});
    bool warmup_fired = false;
    std::size_t min_issued_at_reset = 0;
    runner.setWarmupDoneFn([&]() {
        warmup_fired = true;
        min_issued_at_reset = SIZE_MAX;
        for (std::size_t c = 0; c < runner.numCores(); ++c) {
            min_issued_at_reset = std::min(min_issued_at_reset,
                                           runner.core(c).refsIssued());
        }
    });
    const Cycle measured = runner.run();
    EXPECT_TRUE(warmup_fired);
    EXPECT_EQ(min_issued_at_reset, 10u)
        << "all cores must be exactly at the barrier when stats reset";
    EXPECT_GT(runner.measureStart(), 0u);
    EXPECT_GT(measured, 0u);
}

TEST_F(CoreModelTest, WindowLimitsOutstandingMisses)
{
    CoreTraces traces;
    traces.warmupRefs = 0;
    traces.traces.resize(4);
    // Core 0 issues back-to-back misses; the rest idle.
    for (int i = 0; i < 50; ++i) {
        MemRef ref;
        ref.addr = (1000 + i) * kLineSizeBytes;
        ref.gap = 1;
        traces.traces[0].push_back(ref);
    }
    CoreParams params;
    params.maxOutstanding = 2;
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          params);
    runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_GT(runner.core(0).stats().counterValue("window_stalls"), 0u);
}

TEST_F(CoreModelTest, SmallerWindowRunsSlower)
{
    auto make_traces = []() {
        CoreTraces traces;
        traces.warmupRefs = 0;
        traces.traces.resize(4);
        for (int i = 0; i < 60; ++i) {
            MemRef ref;
            ref.addr = (2000 + i) * kLineSizeBytes;
            ref.gap = 1;
            traces.traces[0].push_back(ref);
        }
        return traces;
    };
    Cycle slow, fast;
    {
        Machine m(MachineConfig::testDefault(Algorithm::Lazy));
        CoreParams p;
        p.maxOutstanding = 1;
        WorkloadRunner r(m.queue(), m.controller(), make_traces(), p);
        r.run();
        slow = m.queue().now();
    }
    {
        Machine m(MachineConfig::testDefault(Algorithm::Lazy));
        CoreParams p;
        p.maxOutstanding = 8;
        WorkloadRunner r(m.queue(), m.controller(), make_traces(), p);
        r.run();
        fast = m.queue().now();
    }
    EXPECT_LT(fast, slow);
}

} // namespace
} // namespace flexsnoop
