/**
 * @file
 * Retry-storm behaviour under heavy contention: exponential backoff of
 * squash retries, forward progress on a single hammered line across all
 * paper algorithms, and the configurable retry cap that converts an
 * unbounded storm into a diagnosable RetryStormError.
 */

#include <gtest/gtest.h>

#include <string>

#include "coherence/controller.hh"
#include "core/simulation.hh"
#include "snoop/snoop_policy.hh"
#include "workload/trace.hh"

namespace flexsnoop
{
namespace
{

TEST(RetryBackoff, MonotoneAndCapped)
{
    CoherenceParams params;
    params.retryBackoff = 200;
    Cycle prev = 0;
    for (unsigned retries = 0; retries < 32; ++retries) {
        const Cycle b = retryBackoffCycles(params, retries);
        EXPECT_GE(b, prev) << "backoff must not shrink with retries";
        EXPECT_LE(b, params.retryBackoff * 16)
            << "backoff must cap (no overflow for large retry counts)";
        prev = b;
    }
    EXPECT_EQ(retryBackoffCycles(params, 0), 200u);
    EXPECT_EQ(retryBackoffCycles(params, 1), 400u);
    EXPECT_EQ(retryBackoffCycles(params, 4), 3200u);
    EXPECT_EQ(retryBackoffCycles(params, 100), 3200u) << "capped at 16x";
}

/**
 * Every core hammers the same line with interleaved reads and writes:
 * the worst case for collision squashes. @p refs per core, gap cycles
 * between refs.
 */
CoreTraces
contendedTraces(std::size_t cores, std::size_t refs, std::uint32_t gap)
{
    constexpr Addr kHotAddr = 0x4000;
    CoreTraces traces;
    traces.warmupRefs = 0;
    traces.traces.resize(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        for (std::size_t i = 0; i < refs; ++i) {
            MemRef ref;
            ref.addr = kHotAddr;
            // Writes dominate so write-write and read-write collisions
            // both occur on every algorithm.
            ref.isWrite = (i + c) % 3 != 0;
            ref.gap = gap;
            traces.traces[c].push_back(ref);
        }
    }
    return traces;
}

class RetryStormSweep : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(RetryStormSweep, ContendedLineCompletesWithBoundedRetries)
{
    MachineConfig cfg = MachineConfig::paperDefault(GetParam(), 1);
    const CoreTraces traces = contendedTraces(cfg.numCores(), 120, 40);
    // Completion with a clean checker: runSimulation throws on stuck
    // cores or coherence violations.
    const RunResult r = runSimulation(cfg, traces, "contended");
    EXPECT_GT(r.collisions, 0u)
        << "a single hammered line must collide";
    EXPECT_GT(r.retries, 0u) << "collisions must squash and retry";
    EXPECT_EQ(r.retryStormAborts, 0u)
        << "the default cap must not trip on a finite workload";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, RetryStormSweep,
    ::testing::ValuesIn(paperAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

TEST(RetryStorm, TinyCapAbortsWithDiagnostic)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(Algorithm::Lazy, 1);
    cfg.coherence.maxRetries = 1;
    const CoreTraces traces = contendedTraces(cfg.numCores(), 200, 20);
    try {
        runSimulation(cfg, traces, "contended");
        FAIL() << "expected RetryStormError with max_retries=1";
    } catch (const RetryStormError &e) {
        EXPECT_GE(e.retries(), 1u);
        const std::string what = e.what();
        EXPECT_NE(what.find("retry storm"), std::string::npos) << what;
        // The diagnostic names the contended line and dumps the
        // in-flight transactions that were fighting over it.
        EXPECT_NE(what.find("line"), std::string::npos) << what;
        EXPECT_NE(what.find("txn"), std::string::npos) << what;
    }
}

TEST(RetryStorm, GenerousCapDoesNotTrip)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(Algorithm::Lazy, 1);
    cfg.coherence.maxRetries = 1000;
    const CoreTraces traces = contendedTraces(cfg.numCores(), 200, 20);
    const RunResult r = runSimulation(cfg, traces, "contended");
    EXPECT_EQ(r.retryStormAborts, 0u);
    EXPECT_GT(r.retries, 0u);
}

} // namespace
} // namespace flexsnoop
