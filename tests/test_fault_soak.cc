/**
 * @file
 * Fault-injection soak tests (docs/FAULTS.md): every paper algorithm
 * runs to completion with a clean checker under injected link faults
 * and predictor soft errors, recovery counters line up with the
 * injected distribution, fault-free hardened runs are bit-identical to
 * plain runs, and the hardened sweep runner isolates crashing cells and
 * resumes from its checkpoint.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/simulation.hh"
#include "snoop/snoop_policy.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** mini profile shrunk so the whole soak stays test-suite fast. */
WorkloadProfile
soakProfile()
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 2500;
    profile.warmupRefs = 400;
    return profile;
}

const CoreTraces &
soakTraces()
{
    static const CoreTraces traces =
        SyntheticGenerator(soakProfile()).generate();
    return traces;
}

FaultConfig
allClassFaults(double rate, std::uint64_t seed)
{
    FaultConfig faults;
    faults.dropRate = rate;
    faults.dupRate = rate;
    faults.delayRate = rate;
    faults.predictorRate = rate;
    faults.seed = seed;
    return faults;
}

struct SoakCase
{
    Algorithm algorithm;
    double rate;
};

std::vector<SoakCase>
soakCases()
{
    std::vector<SoakCase> cases;
    for (Algorithm a : paperAlgorithms())
        for (double rate : {1e-4, 1e-3})
            cases.push_back({a, rate});
    return cases;
}

class FaultSoak : public ::testing::TestWithParam<SoakCase>
{
};

TEST_P(FaultSoak, CompletesCleanlyUnderInjectedFaults)
{
    const SoakCase c = GetParam();
    MachineConfig cfg = sweepConfig(c.algorithm, soakProfile());
    cfg.faults = allClassFaults(c.rate, 42);
    cfg.coherence.watchdogCycles = 20000;

    // Completion with a clean checker: runSimulation throws on a
    // coherence violation, a stuck machine, or an unfinished core.
    const RunResult r = runSimulation(cfg, soakTraces(), "mini");

    EXPECT_GT(r.execCycles, 0u);
    EXPECT_GT(r.faultLinkDecisions, 0u)
        << "armed injector must see link traffic";

    // The injected counts must match the configured distribution. The
    // streams are seeded (deterministic), so the generous 5-sigma
    // binomial envelope documents the expectation rather than gambling.
    const double n = static_cast<double>(r.faultLinkDecisions);
    const double expected = n * c.rate;
    const double sigma = std::sqrt(expected * (1.0 - c.rate));
    const double slack = 5.0 * sigma + 3.0;
    EXPECT_NEAR(static_cast<double>(r.faultDrops), expected, slack);
    EXPECT_NEAR(static_cast<double>(r.faultDups), expected, slack);
    EXPECT_NEAR(static_cast<double>(r.faultDelays), expected, slack);

    if (c.rate >= 1e-3) {
        EXPECT_GT(r.faultDrops + r.faultDups + r.faultDelays, 0u)
            << "at 1e-3 over this much traffic, faults must land";
        // Lost conclusions are either rejected as incomplete or timed
        // out; either way recovery machinery must have engaged when
        // messages were dropped.
        if (r.faultDrops > 0) {
            EXPECT_GT(r.watchdogTimeouts +
                          r.incompleteConclusionsRejected +
                          r.staleMessagesAbsorbed,
                      0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsTwoRates, FaultSoak, ::testing::ValuesIn(soakCases()),
    [](const ::testing::TestParamInfo<SoakCase> &info) {
        return std::string(toString(info.param.algorithm)) +
               (info.param.rate < 5e-4 ? "_r1e4" : "_r1e3");
    });

TEST(FaultRecovery, WatchdogRecoversDroppedRounds)
{
    MachineConfig cfg = sweepConfig(Algorithm::Subset, soakProfile());
    cfg.faults.dropRate = 5e-3; // drops only: every loss needs recovery
    cfg.faults.seed = 7;
    cfg.coherence.watchdogCycles = 20000;
    const RunResult r = runSimulation(cfg, soakTraces(), "mini");
    EXPECT_GT(r.faultDrops, 0u);
    EXPECT_GT(r.watchdogTimeouts, 0u)
        << "dropped ring rounds must time out and reissue";
    EXPECT_EQ(r.retryStormAborts, 0u);
}

TEST(FaultRecovery, SameSeedIsBitReproducible)
{
    MachineConfig cfg =
        sweepConfig(Algorithm::SupersetAgg, soakProfile());
    cfg.faults = allClassFaults(1e-3, 1234);
    cfg.coherence.watchdogCycles = 20000;
    const RunResult a = runSimulation(cfg, soakTraces(), "mini");
    const RunResult b = runSimulation(cfg, soakTraces(), "mini");
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.faultDrops, b.faultDrops);
    EXPECT_EQ(a.faultDups, b.faultDups);
    EXPECT_EQ(a.faultDelays, b.faultDelays);
    EXPECT_EQ(a.faultPredictorFlips, b.faultPredictorFlips);
    EXPECT_EQ(a.watchdogTimeouts, b.watchdogTimeouts);
    EXPECT_EQ(a.readRingRequests, b.readRingRequests);
    EXPECT_EQ(a.energyNj, b.energyNj);
}

TEST(FaultRecovery, DisarmedConfigIsBitIdenticalToPlainRuns)
{
    // The acceptance bar of unreliable-ring mode: with --faults absent
    // (all rates zero) no injector is installed and a run is exactly
    // the run of a build that never heard of fault injection. (A
    // watchdog-armed run is a different, opt-in protocol mode: its
    // stale-traffic absorption and state sweeping legitimately change
    // message accounting, so it makes no bit-identity promise.)
    MachineConfig plain = sweepConfig(Algorithm::Exact, soakProfile());
    const RunResult base = runSimulation(plain, soakTraces(), "mini");

    MachineConfig disarmed = plain;
    disarmed.faults = FaultConfig{}; // explicit, but all rates zero
    disarmed.faults.seed = 999;      // seed alone must not arm anything
    const RunResult r = runSimulation(disarmed, soakTraces(), "mini");

    EXPECT_EQ(base.execCycles, r.execCycles);
    EXPECT_EQ(base.readRingRequests, r.readRingRequests);
    EXPECT_EQ(base.readSnoops, r.readSnoops);
    EXPECT_EQ(base.readLinkMessages, r.readLinkMessages);
    EXPECT_EQ(base.energyNj, r.energyNj);
    EXPECT_EQ(base.retries, r.retries);
    EXPECT_EQ(r.faultLinkDecisions, 0u) << "no injector installed";
    EXPECT_EQ(r.watchdogTimeouts, 0u);
    EXPECT_EQ(r.staleMessagesAbsorbed, 0u);
    EXPECT_EQ(r.incompleteConclusionsRejected, 0u);
}

TEST(FaultRecovery, WatchdogArmedFaultFreeRunStaysQuiet)
{
    // Watchdog armed on a loss-free ring: the simulation completes with
    // a clean checker and none of the recovery paths fire.
    MachineConfig cfg = sweepConfig(Algorithm::Exact, soakProfile());
    cfg.coherence.watchdogCycles = 200000; // far beyond any latency
    const RunResult r = runSimulation(cfg, soakTraces(), "mini");
    EXPECT_GT(r.execCycles, 0u);
    EXPECT_EQ(r.watchdogTimeouts, 0u);
    EXPECT_EQ(r.incompleteConclusionsRejected, 0u);
    EXPECT_EQ(r.retryStormAborts, 0u);
    EXPECT_EQ(r.faultLinkDecisions, 0u);
}

/** Cells for the hardened-runner tests: two good, optionally one bad. */
std::vector<PlannedCell>
hardenedCells(bool with_poisoned)
{
    std::vector<PlannedCell> cells;
    for (Algorithm a : {Algorithm::Lazy, Algorithm::SupersetAgg}) {
        PlannedCell cell;
        cell.cfg = sweepConfig(a, soakProfile());
        cell.traces = &soakTraces();
        cell.workload = "mini";
        cells.push_back(std::move(cell));
    }
    if (with_poisoned) {
        // Half the messages vanish and nothing recovers them (no
        // watchdog): the machine deadlocks and the run must surface a
        // SimulationStuckError instead of wedging the whole sweep.
        PlannedCell poisoned;
        poisoned.cfg = sweepConfig(Algorithm::Eager, soakProfile());
        poisoned.cfg.faults.dropRate = 0.5;
        poisoned.cfg.faults.seed = 3;
        poisoned.cfg.coherence.watchdogCycles = 0;
        poisoned.traces = &soakTraces();
        poisoned.workload = "mini";
        cells.push_back(std::move(poisoned));
    }
    return cells;
}

TEST(HardenedSweep, SerialAndParallelAreBitIdentical)
{
    const auto cells = hardenedCells(false);
    SweepHardening hardening;
    const auto serial = runCellsHardened(cells, 1, hardening);
    const auto parallel = runCellsHardened(cells, 4, hardening);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].failed);
        EXPECT_EQ(serial[i].execCycles, parallel[i].execCycles) << i;
        EXPECT_EQ(serial[i].energyNj, parallel[i].energyNj) << i;
    }
}

TEST(HardenedSweep, CrashIsolationCheckpointAndResume)
{
    const std::string checkpoint =
        "/tmp/flexsnoop_fault_soak_checkpoint.csv";
    const std::string dumpdir = "/tmp/flexsnoop_fault_soak_dumps";
    std::remove(checkpoint.c_str());
    std::filesystem::remove_all(dumpdir);

    SweepHardening hardening;
    hardening.checkpointPath = checkpoint;
    hardening.dumpDir = dumpdir;

    const auto cells = hardenedCells(true);
    const auto first = runCellsHardened(cells, 2, hardening);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_FALSE(first[0].failed);
    EXPECT_FALSE(first[1].failed);
    EXPECT_TRUE(first[2].failed)
        << "the poisoned cell must fail in isolation";
    EXPECT_FALSE(first[2].error.empty());

    // The stuck-transaction dump of the deadlocked cell was written.
    bool dump_found = false;
    for (const auto &entry :
         std::filesystem::directory_iterator(dumpdir))
        dump_found = dump_found || entry.path().string().find("stuck") !=
                                       std::string::npos;
    EXPECT_TRUE(dump_found);

    // Resume: the good cells are served from the checkpoint (identical
    // results), the failed cell is retried and fails again.
    const auto second = runCellsHardened(cells, 2, hardening);
    ASSERT_EQ(second.size(), 3u);
    EXPECT_EQ(second[0].execCycles, first[0].execCycles);
    EXPECT_EQ(second[1].execCycles, first[1].execCycles);
    EXPECT_TRUE(second[2].failed);

    std::remove(checkpoint.c_str());
    std::filesystem::remove_all(dumpdir);
}

} // namespace
} // namespace flexsnoop
