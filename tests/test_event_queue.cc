/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <array>
#include <memory>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace flexsnoop
{
namespace
{

TEST(EventQueue, StartsAtCycleZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ExecutesEventAtScheduledCycle)
{
    EventQueue q;
    Cycle fired_at = 0;
    q.schedule(42, [&]() { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, 42u);
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentCycle)
{
    EventQueue q;
    bool fired = false;
    q.schedule(0, [&]() { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, EventsFireInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleEventsFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i]() { order.push_back(i); });
    q.run();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            q.schedule(10, chain);
    };
    q.schedule(10, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunHonorsCycleLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(100, [&]() { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOneEvent)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ExecutedCountsAllFiredEvents)
{
    EventQueue q;
    for (int i = 0; i < 17; ++i)
        q.schedule(i, []() {});
    q.run();
    EXPECT_EQ(q.executed(), 17u);
}

TEST(EventQueue, ScheduleAtAbsoluteCycle)
{
    EventQueue q;
    q.schedule(10, []() {});
    q.run();
    Cycle fired_at = 0;
    q.scheduleAt(25, [&]() { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, 25u);
}

TEST(EventQueue, NestedZeroDelayPreservesFifoWithinCycle)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() {
        order.push_back(1);
        q.schedule(0, [&]() { order.push_back(3); });
    });
    q.schedule(5, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleFifoSurvivesHeavyInterleaving)
{
    // Stress the explicit heap's tie-breaking: many events on a few
    // cycles, scheduled in a scattered order, must still fire grouped
    // by cycle and FIFO within each cycle.
    EventQueue q;
    std::vector<std::pair<Cycle, int>> order;
    int seq_per_cycle[7] = {};
    for (int i = 0; i < 700; ++i) {
        const Cycle when = static_cast<Cycle>((i * 13) % 7);
        const int seq = seq_per_cycle[when]++;
        q.schedule(when, [&order, when, seq]() {
            order.emplace_back(when, seq);
        });
    }
    q.run();
    ASSERT_EQ(order.size(), 700u);
    for (std::size_t i = 1; i < order.size(); ++i) {
        ASSERT_GE(order[i].first, order[i - 1].first);
        if (order[i].first == order[i - 1].first)
            ASSERT_EQ(order[i].second, order[i - 1].second + 1);
    }
}

TEST(EventQueue, ClearThenReuseSchedulesFreshEvents)
{
    EventQueue q;
    int dropped = 0, fired = 0;
    q.schedule(10, [&]() { ++dropped; });
    q.schedule(20, [&]() { ++dropped; });
    q.clear();
    EXPECT_EQ(q.pending(), 0u);

    // The queue must be fully usable after clear(): new events fire in
    // order and FIFO ties still hold.
    std::vector<int> order;
    q.schedule(7, [&]() { order.push_back(1); ++fired; });
    q.schedule(7, [&]() { order.push_back(2); ++fired; });
    q.schedule(3, [&]() { order.push_back(0); ++fired; });
    q.run();
    EXPECT_EQ(dropped, 0);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueue, LargeCaptureFallsBackToHeapAndRuns)
{
    // A capture bigger than EventFn's inline buffer must still execute
    // correctly (heap fallback path).
    EventQueue q;
    std::array<std::uint64_t, 32> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i + 1;
    static_assert(sizeof(payload) > EventFn::kInlineSize);

    std::uint64_t sum = 0;
    q.schedule(1, [payload, &sum]() {
        for (auto v : payload)
            sum += v;
    });
    q.run();
    EXPECT_EQ(sum, 32u * 33u / 2u);
}

TEST(EventQueue, MoveOnlyCallablesAreSupported)
{
    // EventFn is move-only, so callables owning resources (unique_ptr)
    // can be scheduled directly — std::function could not hold these.
    EventQueue q;
    auto owned = std::make_unique<int>(41);
    int result = 0;
    q.schedule(2, [p = std::move(owned), &result]() { result = *p + 1; });
    q.run();
    EXPECT_EQ(result, 42);
}

TEST(EventQueue, ReservePreservesBehavior)
{
    EventQueue q;
    q.reserve(1024);
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        q.schedule(static_cast<Cycle>(100 - i), [&]() { ++fired; });
    q.run();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(q.now(), 100u);
}

} // namespace
} // namespace flexsnoop
