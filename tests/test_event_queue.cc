/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace flexsnoop
{
namespace
{

TEST(EventQueue, StartsAtCycleZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ExecutesEventAtScheduledCycle)
{
    EventQueue q;
    Cycle fired_at = 0;
    q.schedule(42, [&]() { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, 42u);
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentCycle)
{
    EventQueue q;
    bool fired = false;
    q.schedule(0, [&]() { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, EventsFireInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleEventsFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i]() { order.push_back(i); });
    q.run();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            q.schedule(10, chain);
    };
    q.schedule(10, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunHonorsCycleLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(100, [&]() { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOneEvent)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ExecutedCountsAllFiredEvents)
{
    EventQueue q;
    for (int i = 0; i < 17; ++i)
        q.schedule(i, []() {});
    q.run();
    EXPECT_EQ(q.executed(), 17u);
}

TEST(EventQueue, ScheduleAtAbsoluteCycle)
{
    EventQueue q;
    q.schedule(10, []() {});
    q.run();
    Cycle fired_at = 0;
    q.scheduleAt(25, [&]() { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, 25u);
}

TEST(EventQueue, NestedZeroDelayPreservesFifoWithinCycle)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() {
        order.push_back(1);
        q.schedule(0, [&]() { order.push_back(3); });
    });
    q.schedule(5, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

} // namespace
} // namespace flexsnoop
