/**
 * @file
 * Unit tests for the discrete-event kernel.
 *
 * Every behavioural test runs against both scheduler implementations
 * (the default hierarchical timing wheel and the reference binary
 * heap); wheel-specific structure — cascades, the far list, sizing,
 * the horizon histogram — is covered separately, and a randomized
 * differential test drives both implementations with one script and
 * demands identical fire order.
 */

#include <array>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace flexsnoop
{
namespace
{

class EventQueueImpl : public ::testing::TestWithParam<EventQueue::Impl>
{
  protected:
    EventQueue q{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    BothImpls, EventQueueImpl,
    ::testing::Values(EventQueue::Impl::Wheel, EventQueue::Impl::Heap),
    [](const ::testing::TestParamInfo<EventQueue::Impl> &info) {
        return info.param == EventQueue::Impl::Wheel ? "Wheel" : "Heap";
    });

TEST_P(EventQueueImpl, StartsAtCycleZeroAndEmpty)
{
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
    EXPECT_EQ(q.minPendingTime(), EventQueue::kNoEvent);
}

TEST_P(EventQueueImpl, ExecutesEventAtScheduledCycle)
{
    Cycle fired_at = 0;
    q.schedule(42, [&]() { fired_at = q.now(); });
    EXPECT_EQ(q.minPendingTime(), 42u);
    q.run();
    EXPECT_EQ(fired_at, 42u);
    EXPECT_EQ(q.now(), 42u);
}

TEST_P(EventQueueImpl, ZeroDelayEventRunsAtCurrentCycle)
{
    bool fired = false;
    q.schedule(0, [&]() { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.now(), 0u);
}

TEST_P(EventQueueImpl, EventsFireInTimeOrder)
{
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueImpl, SameCycleEventsFireFifo)
{
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i]() { order.push_back(i); });
    q.run();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueImpl, EventsMayScheduleMoreEvents)
{
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            q.schedule(10, chain);
    };
    q.schedule(10, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST_P(EventQueueImpl, RunHonorsCycleLimit)
{
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(100, [&]() { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST_P(EventQueueImpl, StepExecutesExactlyOneEvent)
{
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST_P(EventQueueImpl, ClearDropsPendingEvents)
{
    int fired = 0;
    q.schedule(1, [&]() { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST_P(EventQueueImpl, ExecutedCountsAllFiredEvents)
{
    for (int i = 0; i < 17; ++i)
        q.schedule(i, []() {});
    q.run();
    EXPECT_EQ(q.executed(), 17u);
}

TEST_P(EventQueueImpl, ScheduleAtAbsoluteCycle)
{
    q.schedule(10, []() {});
    q.run();
    Cycle fired_at = 0;
    q.scheduleAt(25, [&]() { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, 25u);
}

TEST_P(EventQueueImpl, NestedZeroDelayPreservesFifoWithinCycle)
{
    std::vector<int> order;
    q.schedule(5, [&]() {
        order.push_back(1);
        q.schedule(0, [&]() { order.push_back(3); });
    });
    q.schedule(5, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueImpl, SameCycleFifoSurvivesHeavyInterleaving)
{
    // Stress the tie-breaking: many events on a few cycles, scheduled
    // in a scattered order, must still fire grouped by cycle and FIFO
    // within each cycle.
    std::vector<std::pair<Cycle, int>> order;
    int seq_per_cycle[7] = {};
    for (int i = 0; i < 700; ++i) {
        const Cycle when = static_cast<Cycle>((i * 13) % 7);
        const int seq = seq_per_cycle[when]++;
        q.schedule(when, [&order, when, seq]() {
            order.emplace_back(when, seq);
        });
    }
    q.run();
    ASSERT_EQ(order.size(), 700u);
    for (std::size_t i = 1; i < order.size(); ++i) {
        ASSERT_GE(order[i].first, order[i - 1].first);
        if (order[i].first == order[i - 1].first) {
            ASSERT_EQ(order[i].second, order[i - 1].second + 1);
        }
    }
}

TEST_P(EventQueueImpl, ClearThenReuseSchedulesFreshEvents)
{
    int dropped = 0, fired = 0;
    q.schedule(10, [&]() { ++dropped; });
    q.schedule(20, [&]() { ++dropped; });
    q.clear();
    EXPECT_EQ(q.pending(), 0u);

    // The queue must be fully usable after clear(): new events fire in
    // order and FIFO ties still hold.
    std::vector<int> order;
    q.schedule(7, [&]() { order.push_back(1); ++fired; });
    q.schedule(7, [&]() { order.push_back(2); ++fired; });
    q.schedule(3, [&]() { order.push_back(0); ++fired; });
    q.run();
    EXPECT_EQ(dropped, 0);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 7u);
}

TEST_P(EventQueueImpl, LargeCaptureFallsBackToHeapAndRuns)
{
    // A capture bigger than EventFn's inline buffer must still execute
    // correctly (heap fallback path).
    std::array<std::uint64_t, 32> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i + 1;
    static_assert(sizeof(payload) > EventFn::kInlineSize);

    std::uint64_t sum = 0;
    q.schedule(1, [payload, &sum]() {
        for (auto v : payload)
            sum += v;
    });
    q.run();
    EXPECT_EQ(sum, 32u * 33u / 2u);
}

TEST_P(EventQueueImpl, MoveOnlyCallablesAreSupported)
{
    // EventFn is move-only, so callables owning resources (unique_ptr)
    // can be scheduled directly — std::function could not hold these.
    auto owned = std::make_unique<int>(41);
    int result = 0;
    q.schedule(2, [p = std::move(owned), &result]() { result = *p + 1; });
    q.run();
    EXPECT_EQ(result, 42);
}

TEST_P(EventQueueImpl, ReservePreservesBehavior)
{
    q.reserve(1024);
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        q.schedule(static_cast<Cycle>(100 - i), [&]() { ++fired; });
    q.run();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(q.now(), 100u);
}

// Edge behaviour shared by both implementations --------------------------

TEST_P(EventQueueImpl, MinPendingTimeTracksTheFrontier)
{
    q.schedule(90, []() {});
    q.schedule(40, []() {});
    EXPECT_EQ(q.minPendingTime(), 40u);
    q.schedule(10, []() {});
    EXPECT_EQ(q.minPendingTime(), 10u);
    q.step();
    EXPECT_EQ(q.minPendingTime(), 40u);
    q.step();
    EXPECT_EQ(q.minPendingTime(), 90u);
    q.step();
    EXPECT_EQ(q.minPendingTime(), EventQueue::kNoEvent);
}

TEST_P(EventQueueImpl, LongIdleJumpThenZeroDelay)
{
    // Drain far past the near window, then schedule at the new now:
    // the wheel must re-anchor, not wrap onto stale buckets.
    std::vector<Cycle> fired;
    q.schedule(1'000'000, [&]() {
        fired.push_back(q.now());
        q.schedule(0, [&]() { fired.push_back(q.now()); });
        q.schedule(3, [&]() { fired.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Cycle>{1'000'000, 1'000'000, 1'000'003}));
}

TEST_P(EventQueueImpl, SameCycleFifoAcrossWheelWrap)
{
    // Pairs of same-cycle events on cycles straddling several near-
    // window wraps (the wheel defaults to 256 single-cycle buckets):
    // FIFO within a cycle must hold no matter which wrap the bucket
    // belongs to, including events scheduled across different wraps
    // before any of them fire.
    std::vector<std::pair<Cycle, int>> order;
    const std::array<Cycle, 6> cycles = {250, 255, 256, 257, 511, 513};
    for (int round = 0; round < 4; ++round)
        for (const Cycle c : cycles)
            q.schedule(c, [&order, c, round]() {
                order.emplace_back(c, round);
            });
    q.run();
    ASSERT_EQ(order.size(), cycles.size() * 4);
    std::size_t i = 0;
    for (const Cycle c : cycles)
        for (int round = 0; round < 4; ++round, ++i) {
            EXPECT_EQ(order[i].first, c);
            EXPECT_EQ(order[i].second, round);
        }
}

TEST_P(EventQueueImpl, DelaysSpanningEveryWheelLevel)
{
    // One event per structural region of the wheel: current bucket,
    // near window, each overflow level, and the far list — scheduled
    // out of order, fired in order.
    const std::vector<Cycle> delays = {
        1ull << 40,       // far list (beyond level 3)
        (1ull << 25) + 3, // level 3
        70'000,           // level 2
        3'000,            // level 1
        100,              // near window
        0,                // current bucket
    };
    std::vector<Cycle> fired;
    for (const Cycle d : delays)
        q.schedule(d, [&fired, &q = q]() { fired.push_back(q.now()); });
    q.run();
    std::vector<Cycle> expect(delays.rbegin(), delays.rend());
    EXPECT_EQ(fired, expect);
}

TEST_P(EventQueueImpl, RescheduleToLaterCycle)
{
    std::vector<int> order;
    const std::uint64_t tag =
        q.scheduleAtTagged(10, [&]() { order.push_back(0); });
    q.schedule(20, [&]() { order.push_back(1); });
    q.reschedule(tag, 30, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 30u);
}

TEST_P(EventQueueImpl, RescheduleToEarlierCycle)
{
    std::vector<int> order;
    q.schedule(20, [&]() { order.push_back(1); });
    const std::uint64_t tag =
        q.scheduleAtTagged(500, [&]() { order.push_back(0); });
    q.reschedule(tag, 5, [&]() { order.push_back(2); });
    EXPECT_EQ(q.minPendingTime(), 5u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
    EXPECT_EQ(q.now(), 20u);
}

TEST_P(EventQueueImpl, RescheduleKeepsFifoRank)
{
    // The express path's correctness hinges on this: a rescheduled
    // entry keeps its original sequence number, so when it lands on a
    // cycle where other events already sit, it sorts by the original
    // scheduling order — before later-scheduled events, after earlier
    // ones.
    std::vector<int> order;
    q.schedule(40, [&]() { order.push_back(0); }); // seq 0
    const std::uint64_t tag =
        q.scheduleAtTagged(900, [&]() {});         // seq 1
    q.schedule(40, [&]() { order.push_back(2); }); // seq 2
    q.reschedule(tag, 40, [&]() { order.push_back(1); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_P(EventQueueImpl, RescheduleAcrossWheelLevels)
{
    // Retarget between structurally different homes: near -> far,
    // far -> near, overflow -> same cycle as a near neighbour.
    std::vector<int> order;
    const std::uint64_t a =
        q.scheduleAtTagged(50, [&]() { order.push_back(-1); });
    q.reschedule(a, 1ull << 30, [&]() { order.push_back(3); });

    const std::uint64_t b =
        q.scheduleAtTagged(1ull << 40, [&]() { order.push_back(-1); });
    q.reschedule(b, 7, [&]() { order.push_back(0); });

    q.schedule(100'000, [&]() { order.push_back(2); });
    const std::uint64_t c =
        q.scheduleAtTagged(5'000, [&]() { order.push_back(-1); });
    q.reschedule(c, 60, [&]() { order.push_back(1); });

    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(EventQueueImpl, RunWithNoEventLimitDrainsEverything)
{
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(1ull << 35, [&]() { ++fired; });
    EXPECT_EQ(q.run(EventQueue::kNoEvent), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 0u);
}

// Wheel-specific structure ----------------------------------------------

TEST(TimingWheelQueue, ConfigureRoundsToPowerOfTwoAndClamps)
{
    EventQueue q(EventQueue::Impl::Wheel);
    q.configureWheel(1420); // rounds up to the next power of two
    EXPECT_EQ(q.nearBuckets(), 2048u);
    q.configureWheel(64);
    EXPECT_EQ(q.nearBuckets(), 64u);
    q.configureWheel(1); // below the minimum
    EXPECT_EQ(q.nearBuckets(), TimingWheel::kMinNearBuckets);
    q.configureWheel(1u << 20); // above the maximum
    EXPECT_EQ(q.nearBuckets(), TimingWheel::kMaxNearBuckets);
}

TEST(TimingWheelQueue, ConfiguredSizeStillFiresInOrder)
{
    for (const std::size_t buckets : {64u, 256u, 4096u}) {
        EventQueue q(EventQueue::Impl::Wheel);
        q.configureWheel(buckets);
        std::vector<Cycle> fired;
        for (const Cycle d : {5000u, 63u, 700u, 0u, 65u})
            q.schedule(d, [&fired, &q]() { fired.push_back(q.now()); });
        q.run();
        EXPECT_EQ(fired, (std::vector<Cycle>{0, 63, 65, 700, 5000}))
            << buckets << " near buckets";
    }
}

TEST(TimingWheelQueue, OverflowEventsCascadeDown)
{
    EventQueue q(EventQueue::Impl::Wheel);
    q.configureWheel(64);
    int fired = 0;
    // Past the 64-cycle near window: must first land in an overflow
    // level, then cascade into the near wheel as time advances.
    q.schedule(10'000, [&]() { ++fired; });
    q.schedule(200, [&]() { ++fired; });
    EXPECT_EQ(q.wheel().overflowScheduled(), 2u);
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_GE(q.wheel().cascades(), 2u);
    EXPECT_GE(q.wheel().cascadedEntries(), 2u);
}

TEST(TimingWheelQueue, FarListBeyondLastOverflowLevel)
{
    EventQueue q(EventQueue::Impl::Wheel);
    q.configureWheel(64);
    // 64 near cycles + 3 levels x 8 bits = 2^30 max coverage; past
    // that the entry rides the unsorted far list.
    const Cycle far_delay = 1ull << 32;
    std::vector<Cycle> fired;
    q.schedule(far_delay, [&]() { fired.push_back(q.now()); });
    q.schedule(far_delay + 1, [&]() { fired.push_back(q.now()); });
    q.schedule(5, [&]() { fired.push_back(q.now()); });
    EXPECT_EQ(q.wheel().farScheduled(), 2u);
    q.run();
    EXPECT_EQ(fired,
              (std::vector<Cycle>{5, far_delay, far_delay + 1}));
}

TEST(TimingWheelQueue, HorizonHistogramCountsByDelayBitWidth)
{
    EventQueue q(EventQueue::Impl::Wheel);
    q.enableHorizonHistogram(true);
    q.schedule(0, []() {});   // bit_width(0) = 0
    q.schedule(1, []() {});   // 1
    q.schedule(3, []() {});   // 2
    q.schedule(200, []() {}); // 8
    q.schedule(300, []() {}); // 9
    q.schedule(511, []() {}); // 9
    const auto &h = q.wheel().horizonHistogram();
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 1u);
    EXPECT_EQ(h[2], 1u);
    EXPECT_EQ(h[8], 1u);
    EXPECT_EQ(h[9], 2u);
    q.run();
}

// Differential: one script, both implementations, identical order -------

/** Deterministic xorshift64* so the stress script is reproducible. */
struct Rng
{
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    }
    std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

TEST(QueueDifferential, WheelMatchesHeapOnRandomScript)
{
    EventQueue wheel(EventQueue::Impl::Wheel);
    EventQueue heap(EventQueue::Impl::Heap);
    std::vector<std::uint64_t> wheel_order, heap_order;

    // Delay mix mirroring the simulator: mostly short ring-scale hops,
    // some bus/memory round trips, rare watchdog-scale timeouts.
    const auto draw_delay = [](Rng &r) -> Cycle {
        switch (r.pick(10)) {
        case 0:
        case 1:
        case 2:
        case 3:
            return r.pick(8); // same-cycle / next-hop
        case 4:
        case 5:
        case 6:
            return 39 + r.pick(300); // ring and bus latencies
        case 7:
        case 8:
            return 710 + r.pick(2000); // memory round trips
        default:
            return 20'000 + r.pick(1u << 22); // watchdog horizon
        }
    };

    Rng rng;
    std::uint64_t next_id = 0;
    for (int round = 0; round < 40; ++round) {
        // Same script against both queues: a batch of schedules (some
        // tagged), reschedules of this round's tags, then a partial
        // drain. Both must observe identical state throughout.
        const std::size_t batch = 4 + rng.pick(24);
        std::vector<std::uint64_t> wheel_tags, heap_tags;
        for (std::size_t i = 0; i < batch; ++i) {
            const Cycle delay = draw_delay(rng);
            const std::uint64_t id = next_id++;
            if (rng.pick(6) == 0) {
                wheel_tags.push_back(wheel.scheduleAtTagged(
                    wheel.now() + delay,
                    [&wheel_order, id]() { wheel_order.push_back(id); }));
                heap_tags.push_back(heap.scheduleAtTagged(
                    heap.now() + delay,
                    [&heap_order, id]() { heap_order.push_back(id); }));
            } else {
                wheel.schedule(delay, [&wheel_order, id]() {
                    wheel_order.push_back(id);
                });
                heap.schedule(delay, [&heap_order, id]() {
                    heap_order.push_back(id);
                });
            }
        }
        ASSERT_EQ(wheel_tags, heap_tags);

        // Retarget half of this round's tagged entries (they are all
        // still pending — nothing stepped since they were scheduled).
        for (std::size_t i = 0; i < wheel_tags.size(); i += 2) {
            const Cycle delay = draw_delay(rng);
            const std::uint64_t id = next_id++;
            wheel.reschedule(wheel_tags[i], wheel.now() + delay,
                             [&wheel_order, id]() {
                                 wheel_order.push_back(id);
                             });
            heap.reschedule(heap_tags[i], heap.now() + delay,
                            [&heap_order, id]() {
                                heap_order.push_back(id);
                            });
        }

        const std::size_t steps = rng.pick(2 * batch);
        for (std::size_t i = 0; i < steps; ++i) {
            if (!wheel.step())
                break;
            ASSERT_TRUE(heap.step());
        }
        ASSERT_EQ(wheel.now(), heap.now()) << "round " << round;
        ASSERT_EQ(wheel.pending(), heap.pending()) << "round " << round;
        ASSERT_EQ(wheel.minPendingTime(), heap.minPendingTime())
            << "round " << round;
    }

    wheel.run();
    heap.run();
    EXPECT_EQ(wheel.executed(), heap.executed());
    EXPECT_EQ(wheel.now(), heap.now());
    ASSERT_EQ(wheel_order.size(), heap_order.size());
    EXPECT_EQ(wheel_order, heap_order);
}

} // namespace
} // namespace flexsnoop
