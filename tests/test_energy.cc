/**
 * @file
 * Unit tests for the energy model (paper §6.1.4 constants).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "energy/energy_model.hh"

namespace flexsnoop
{
namespace
{

TEST(EnergyModel, StartsEmpty)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.totalNj(), 0.0);
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i)
        EXPECT_EQ(model.count(static_cast<EnergyEvent>(i)), 0u);
}

TEST(EnergyModel, PaperConstantsAreDefault)
{
    EnergyParams params;
    EXPECT_DOUBLE_EQ(params.ringLinkMessageNj, 3.17);
    EXPECT_DOUBLE_EQ(params.cmpSnoopNj, 0.69);
    EXPECT_DOUBLE_EQ(params.dramLineNj, 24.0);
}

TEST(EnergyModel, RecordAccumulates)
{
    EnergyModel model;
    model.record(EnergyEvent::RingLinkMessage);
    model.record(EnergyEvent::RingLinkMessage, 9);
    EXPECT_EQ(model.count(EnergyEvent::RingLinkMessage), 10u);
    EXPECT_DOUBLE_EQ(model.categoryNj(EnergyEvent::RingLinkMessage),
                     10 * 3.17);
}

TEST(EnergyModel, TotalSumsCategories)
{
    EnergyModel model;
    model.record(EnergyEvent::RingLinkMessage, 2); // 6.34
    model.record(EnergyEvent::CmpSnoop, 3);        // 2.07
    model.record(EnergyEvent::DowngradeWriteback); // 24
    EXPECT_NEAR(model.totalNj(), 6.34 + 2.07 + 24.0, 1e-9);
}

TEST(EnergyModel, RingDominatesSnoops)
{
    // Paper: "a lot of the energy is dissipated in the ring links" --
    // one link message costs ~4.6x a CMP snoop.
    EnergyParams params;
    EXPECT_GT(params.ringLinkMessageNj, 4.0 * params.cmpSnoopNj);
}

TEST(EnergyModel, DowngradeEventsUseDramEnergy)
{
    EnergyParams params;
    EXPECT_DOUBLE_EQ(params.perEventNj(EnergyEvent::DowngradeWriteback),
                     params.dramLineNj);
    EXPECT_DOUBLE_EQ(params.perEventNj(EnergyEvent::DowngradeReRead),
                     params.dramLineNj);
}

TEST(EnergyModel, CustomParameters)
{
    EnergyParams params;
    params.ringLinkMessageNj = 1.0;
    params.cmpSnoopNj = 2.0;
    EnergyModel model(params);
    model.record(EnergyEvent::RingLinkMessage, 5);
    model.record(EnergyEvent::CmpSnoop, 5);
    EXPECT_DOUBLE_EQ(model.totalNj(), 15.0);
}

TEST(EnergyModel, ResetClearsCounts)
{
    EnergyModel model;
    model.record(EnergyEvent::CmpSnoop, 100);
    model.reset();
    EXPECT_DOUBLE_EQ(model.totalNj(), 0.0);
}

TEST(EnergyModel, DumpListsEveryCategory)
{
    EnergyModel model;
    model.record(EnergyEvent::PredictorAccess, 7);
    std::ostringstream oss;
    model.dump(oss);
    const std::string out = oss.str();
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i) {
        EXPECT_NE(out.find(toString(static_cast<EnergyEvent>(i))),
                  std::string::npos);
    }
    EXPECT_NE(out.find("total"), std::string::npos);
}

TEST(EnergyModel, EventNamesAreDistinct)
{
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i) {
        for (std::size_t j = i + 1; j < kNumEnergyEvents; ++j) {
            EXPECT_NE(toString(static_cast<EnergyEvent>(i)),
                      toString(static_cast<EnergyEvent>(j)));
        }
    }
}

} // namespace
} // namespace flexsnoop
