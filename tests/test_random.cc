/**
 * @file
 * Unit tests for the deterministic RNG and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(99);
    const auto first = a.next();
    a.next();
    a.reseed(99);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(13);
    constexpr int kBuckets = 10;
    constexpr int kSamples = 100000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.nextBelow(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets * 0.9);
        EXPECT_LT(c, kSamples / kBuckets * 1.1);
    }
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceZeroNeverOneAlways)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, GeometricMeanIsCloseToRequested)
{
    Rng rng(23);
    const double target = 40.0;
    double sum = 0.0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i)
        sum += static_cast<double>(rng.nextGeometric(target));
    const double mean = sum / kSamples;
    EXPECT_NEAR(mean, target, target * 0.05);
}

TEST(Rng, GeometricIsAtLeastOne)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.nextGeometric(3.0), 1u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 1u);
}

TEST(Zipf, UniformThetaZeroIsFlat)
{
    ZipfSampler zipf(10, 0.0);
    Rng rng(31);
    int counts[10] = {};
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts) {
        EXPECT_GT(c, kSamples / 10 * 0.9);
        EXPECT_LT(c, kSamples / 10 * 1.1);
    }
}

TEST(Zipf, SkewFavorsLowIndices)
{
    ZipfSampler zipf(100, 0.99);
    Rng rng(37);
    int low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        const auto v = zipf.sample(rng);
        if (v < 10)
            ++low;
        else if (v >= 90)
            ++high;
    }
    EXPECT_GT(low, 5 * high);
}

TEST(Zipf, SamplesInRange)
{
    ZipfSampler zipf(7, 0.8);
    Rng rng(41);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(Zipf, SingleElement)
{
    ZipfSampler zipf(1, 0.9);
    Rng rng(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

} // namespace
} // namespace flexsnoop
