/**
 * @file
 * Unit tests for the memory model: home mapping, latencies, and the
 * home-node prefetch buffer.
 */

#include <gtest/gtest.h>

#include "mem/memory_controller.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

TEST(MemoryController, HomeNodesInterleaveByLine)
{
    MemoryController mem(8, MemoryParams{});
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(mem.homeNode(lineAt(i)), i % 8);
    // Offset bits within the line do not change the home.
    EXPECT_EQ(mem.homeNode(lineAt(5) + 63), mem.homeNode(lineAt(5)));
}

TEST(MemoryController, LocalReadUsesLocalLatency)
{
    MemoryParams params;
    MemoryController mem(8, params);
    const Addr line = lineAt(3); // home node 3
    EXPECT_EQ(mem.readLatency(line, 3, 1000), params.localRoundTrip);
    EXPECT_EQ(mem.stats().counterValue("reads_local"), 1u);
}

TEST(MemoryController, RemoteReadWithoutPrefetchIsSlow)
{
    MemoryParams params;
    MemoryController mem(8, params);
    const Addr line = lineAt(3);
    EXPECT_EQ(mem.readLatency(line, 0, 1000), params.remoteRoundTrip);
    EXPECT_EQ(mem.stats().counterValue("reads_remote"), 1u);
}

TEST(MemoryController, PrefetchCutsRemoteLatency)
{
    MemoryParams params;
    MemoryController mem(8, params);
    const Addr line = lineAt(3);
    mem.notifySnoopAtHome(line, 0);
    // By cycle 1000 the prefetched data has long been in the buffer.
    const Cycle lat = mem.readLatency(line, 0, 1000);
    EXPECT_EQ(lat, params.remotePrefetchRoundTrip);
    EXPECT_EQ(mem.stats().counterValue("reads_prefetched"), 1u);
}

TEST(MemoryController, PrefetchEntryIsConsumedOnce)
{
    MemoryParams params;
    MemoryController mem(8, params);
    const Addr line = lineAt(3);
    mem.notifySnoopAtHome(line, 0);
    mem.readLatency(line, 0, 1000);
    // Second read: buffer entry gone, back to the slow path.
    EXPECT_EQ(mem.readLatency(line, 0, 2000), params.remoteRoundTrip);
}

TEST(MemoryController, PrefetchDisabledByConfig)
{
    MemoryParams params;
    params.prefetchEnabled = false;
    MemoryController mem(8, params);
    const Addr line = lineAt(3);
    mem.notifySnoopAtHome(line, 0);
    EXPECT_EQ(mem.readLatency(line, 0, 1000), params.remoteRoundTrip);
    EXPECT_EQ(mem.stats().counterValue("prefetches"), 0u);
}

TEST(MemoryController, DuplicatePrefetchIsIgnored)
{
    MemoryController mem(8, MemoryParams{});
    const Addr line = lineAt(3);
    mem.notifySnoopAtHome(line, 0);
    mem.notifySnoopAtHome(line, 10);
    EXPECT_EQ(mem.stats().counterValue("prefetches"), 1u);
}

TEST(MemoryController, PrefetchBufferDisplacesFifo)
{
    MemoryParams params;
    params.prefetchBufferEntries = 2;
    MemoryController mem(2, params);
    // All lines with even index live at home node 0.
    mem.notifySnoopAtHome(lineAt(0), 0);
    mem.notifySnoopAtHome(lineAt(2), 0);
    mem.notifySnoopAtHome(lineAt(4), 0); // displaces line 0
    EXPECT_EQ(mem.stats().counterValue("prefetch_displaced"), 1u);
    EXPECT_EQ(mem.readLatency(lineAt(0), 1, 5000),
              params.remoteRoundTrip);
    EXPECT_EQ(mem.readLatency(lineAt(2), 1, 5000),
              params.remotePrefetchRoundTrip);
}

TEST(MemoryController, ImmediateReadAfterPrefetchPaysPartialDram)
{
    MemoryParams params;
    MemoryController mem(8, params);
    const Addr line = lineAt(3);
    mem.notifySnoopAtHome(line, 1000);
    // Read issued right away: the DRAM access has not finished, so the
    // latency is above the pure prefetch round trip but below the
    // full remote round trip.
    const Cycle lat = mem.readLatency(line, 0, 1001);
    EXPECT_GT(lat, params.remotePrefetchRoundTrip);
    EXPECT_LT(lat, params.remoteRoundTrip);
}

TEST(MemoryController, WritebacksAreCounted)
{
    MemoryController mem(4, MemoryParams{});
    mem.writeback(lineAt(1));
    mem.writeback(lineAt(2));
    EXPECT_EQ(mem.writebacks(), 2u);
}

TEST(MemoryController, ReadsAreCounted)
{
    MemoryController mem(4, MemoryParams{});
    mem.readLatency(lineAt(0), 0, 0);
    mem.readLatency(lineAt(1), 0, 0);
    EXPECT_EQ(mem.reads(), 2u);
}

} // namespace
} // namespace flexsnoop
