/**
 * @file
 * Health detectors over metric time series (docs/TELEMETRY.md), both
 * on synthetic series with hand-placed onsets and end-to-end against
 * fault-schedule ground truth: a fault injector armed at
 * FaultConfig::startCycle = S must make the matching detector fire
 * with an onset within one sampling interval of S.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/simulation.hh"
#include "sim/fault_injector.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics_reader.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** Build an in-memory MetricsFile with @p interval between samples. */
MetricsFile
makeFile(std::uint64_t interval, std::size_t samples)
{
    MetricsFile file;
    file.header.intervalCycles = interval;
    file.header.sampleCount = samples;
    file.header.numNodes = 8;
    file.header.measureStartCycle = 0;
    for (std::size_t i = 0; i < samples; ++i)
        file.cycles.push_back(interval * (i + 1));
    return file;
}

void
addSeries(MetricsFile &file, const std::string &name, SeriesKind kind,
          std::vector<std::uint64_t> values)
{
    file.names.push_back(name);
    file.kinds.push_back(kind);
    file.columns.push_back(std::move(values));
    file.header.seriesCount = static_cast<std::uint32_t>(file.names.size());
}

const HealthFinding *
findDetector(const std::vector<HealthFinding> &findings,
             const std::string &detector)
{
    for (const HealthFinding &f : findings)
        if (f.detector == detector)
            return &f;
    return nullptr;
}

TEST(HealthSynthetic, RetryStormOnsetIsExact)
{
    MetricsFile file = makeFile(1000, 12);
    // Cumulative retries: flat for 6 intervals (baseline 0), then 100
    // per interval (100/kcycle) from sample 7 onward.
    std::vector<std::uint64_t> retries;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 12; ++i) {
        if (i >= 6)
            v += 100;
        retries.push_back(v);
    }
    addSeries(file, "ctrl.retries", SeriesKind::Counter, retries);

    const auto findings = runHealthDetectors(file);
    const HealthFinding *storm = findDetector(findings, "retry_storm");
    ASSERT_NE(storm, nullptr);
    EXPECT_TRUE(storm->fired) << storm->detail;
    // The first elevated interval is (6000, 7000]: its onset is the
    // interval's start.
    EXPECT_EQ(storm->onsetCycle, 6000u);
    EXPECT_DOUBLE_EQ(storm->peak, 100.0);
    EXPECT_DOUBLE_EQ(storm->baseline, 0.0);
}

TEST(HealthSynthetic, ShortSpikeDoesNotFire)
{
    MetricsFile file = makeFile(1000, 12);
    // Two elevated intervals, then flat again: under the default
    // sustain of 3 the detector must hold fire.
    std::vector<std::uint64_t> retries;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 12; ++i) {
        if (i == 6 || i == 7)
            v += 100;
        retries.push_back(v);
    }
    addSeries(file, "ctrl.retries", SeriesKind::Counter, retries);

    const auto findings = runHealthDetectors(file);
    const HealthFinding *storm = findDetector(findings, "retry_storm");
    ASSERT_NE(storm, nullptr);
    EXPECT_FALSE(storm->fired) << storm->detail;
    EXPECT_DOUBLE_EQ(storm->peak, 100.0) << "peak is reported anyway";

    HealthThresholds relaxed;
    relaxed.sustainSamples = 2;
    const auto refired = runHealthDetectors(file, relaxed);
    EXPECT_TRUE(findDetector(refired, "retry_storm")->fired)
        << "the same spike must fire once sustain allows it";
}

TEST(HealthSynthetic, PredictorDriftOnsetIsExact)
{
    MetricsFile file = makeFile(1000, 14);
    // 100 predictions per interval; perfect until sample 8, then 80%
    // correct — a 20 ppt drop against the 5 ppt default trip.
    std::vector<std::uint64_t> total, correct;
    std::uint64_t t = 0, c = 0;
    for (std::size_t i = 0; i < 14; ++i) {
        t += 100;
        c += (i >= 8) ? 80 : 100;
        total.push_back(t);
        correct.push_back(c);
    }
    addSeries(file, "pred.predictions", SeriesKind::Counter, total);
    addSeries(file, "pred.correct", SeriesKind::Counter, correct);

    const auto findings = runHealthDetectors(file);
    const HealthFinding *drift = findDetector(findings, "predictor_drift");
    ASSERT_NE(drift, nullptr);
    EXPECT_TRUE(drift->fired) << drift->detail;
    EXPECT_EQ(drift->onsetCycle, 8000u);
    EXPECT_DOUBLE_EQ(drift->baseline, 1.0);
    EXPECT_DOUBLE_EQ(drift->peak, 0.8) << "worst accuracy";
}

TEST(HealthSynthetic, DriftSkipsLowVolumeIntervals)
{
    MetricsFile file = makeFile(1000, 14);
    // Intervals with fewer than minPredictions deltas carry no signal:
    // an idle predictor whose tiny samples are all wrong must not trip.
    std::vector<std::uint64_t> total, correct;
    std::uint64_t t = 0, c = 0;
    for (std::size_t i = 0; i < 14; ++i) {
        if (i % 2 == 0) {
            t += 100;
            c += 100; // high-volume intervals: perfect
        } else {
            t += 4; // low-volume intervals: all wrong, below the floor
        }
        total.push_back(t);
        correct.push_back(c);
    }
    addSeries(file, "pred.predictions", SeriesKind::Counter, total);
    addSeries(file, "pred.correct", SeriesKind::Counter, correct);

    const auto findings = runHealthDetectors(file);
    const HealthFinding *drift = findDetector(findings, "predictor_drift");
    ASSERT_NE(drift, nullptr);
    EXPECT_FALSE(drift->fired) << drift->detail;
}

TEST(HealthSynthetic, RingSaturationPerRingOnset)
{
    MetricsFile file = makeFile(1000, 10);
    // ring0 saturates (7 of 8 links busy) from sample 4; ring1 idles.
    std::vector<std::uint64_t> busy0, busy1;
    for (std::size_t i = 0; i < 10; ++i) {
        busy0.push_back(i >= 4 ? 7 : 1);
        busy1.push_back(1);
    }
    addSeries(file, "ring0.busy_links", SeriesKind::Gauge, busy0);
    addSeries(file, "ring1.busy_links", SeriesKind::Gauge, busy1);

    const auto findings = runHealthDetectors(file);
    ASSERT_EQ(findings.size(), 2u) << "one finding per busy_links series";
    const HealthFinding *fired = nullptr;
    const HealthFinding *quiet = nullptr;
    for (const HealthFinding &f : findings) {
        EXPECT_EQ(f.detector, "ring_saturation");
        (f.series == "ring0.busy_links" ? fired : quiet) = &f;
    }
    ASSERT_NE(fired, nullptr);
    ASSERT_NE(quiet, nullptr);
    EXPECT_TRUE(fired->fired) << fired->detail;
    EXPECT_EQ(fired->onsetCycle, 5000u) << "gauge onsets at its sample";
    EXPECT_DOUBLE_EQ(fired->peak, 7.0 / 8.0);
    EXPECT_FALSE(quiet->fired) << quiet->detail;
}

TEST(HealthSynthetic, QueueHorizonBlowout)
{
    MetricsFile file = makeFile(1000, 12);
    // Baseline horizon ~2000 cycles, then 200k (over both the absolute
    // floor and 16x baseline) from sample 6.
    std::vector<std::uint64_t> horizon;
    for (std::size_t i = 0; i < 12; ++i)
        horizon.push_back(i >= 6 ? 200000 : 2000);
    addSeries(file, "queue.horizon", SeriesKind::Gauge, horizon);

    const auto findings = runHealthDetectors(file);
    const HealthFinding *blow = findDetector(findings, "queue_horizon");
    ASSERT_NE(blow, nullptr);
    EXPECT_TRUE(blow->fired) << blow->detail;
    EXPECT_EQ(blow->onsetCycle, 7000u);
    EXPECT_DOUBLE_EQ(blow->baseline, 2000.0);
}

TEST(HealthSynthetic, WarmupSamplesAreExcluded)
{
    MetricsFile file = makeFile(1000, 12);
    file.header.measureStartCycle = 6500;
    // A violent warmup storm that ends before the barrier: everything
    // before measure start is excluded, so nothing fires.
    std::vector<std::uint64_t> retries;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 12; ++i) {
        if (i < 6)
            v += 500;
        retries.push_back(v);
    }
    addSeries(file, "ctrl.retries", SeriesKind::Counter, retries);

    const auto findings = runHealthDetectors(file);
    const HealthFinding *storm = findDetector(findings, "retry_storm");
    ASSERT_NE(storm, nullptr);
    EXPECT_FALSE(storm->fired) << storm->detail;
}

TEST(HealthSynthetic, DetectorsWithMissingSeriesAreSkipped)
{
    MetricsFile file = makeFile(1000, 12);
    std::vector<std::uint64_t> retries(12, 0);
    addSeries(file, "ctrl.retries", SeriesKind::Counter, retries);

    const auto findings = runHealthDetectors(file);
    EXPECT_NE(findDetector(findings, "retry_storm"), nullptr);
    EXPECT_EQ(findDetector(findings, "predictor_drift"), nullptr);
    EXPECT_EQ(findDetector(findings, "ring_saturation"), nullptr);
    EXPECT_EQ(findDetector(findings, "queue_horizon"), nullptr);
}

// End-to-end ground truth ---------------------------------------------
//
// The fault injector's startCycle gate gives the exact cycle a
// pathology begins; the detector's reported onset must land within one
// sampling interval of it (the first elevated interval can start up to
// one interval before the schedule and the signal may need a fraction
// of an interval to build).

constexpr Cycle kFaultStart = 250000;
constexpr Cycle kInterval = 5000;

void
expectOnsetNear(const HealthFinding &f, Cycle scheduled)
{
    EXPECT_TRUE(f.fired) << f.detail;
    EXPECT_GE(f.onsetCycle, scheduled - kInterval) << f.detail;
    EXPECT_LE(f.onsetCycle, scheduled + 4 * kInterval) << f.detail;
}

TEST(HealthGroundTruth, RetryStormOnsetMatchesFaultSchedule)
{
    const WorkloadProfile profile = miniProfile();
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = sweepConfig(Algorithm::SupersetAgg, profile);
    cfg.faults.dropRate = 0.02;
    cfg.faults.seed = 5;
    cfg.faults.startCycle = kFaultStart;
    cfg.coherence.watchdogCycles = 4000;
    cfg.coherence.maxRetries = 64;
    cfg.metrics.path = "/tmp/flexsnoop_test_storm.fsmetrics";
    cfg.metrics.intervalCycles = kInterval;

    const RunResult r = runSimulation(cfg, traces, profile.name);
    EXPECT_GT(r.faultDrops, 0u);

    const MetricsFile file = loadMetrics(cfg.metrics.path);
    const auto findings = runHealthDetectors(file);
    const HealthFinding *storm = findDetector(findings, "retry_storm");
    ASSERT_NE(storm, nullptr);
    expectOnsetNear(*storm, kFaultStart);
    std::remove(cfg.metrics.path.c_str());
}

TEST(HealthGroundTruth, PredictorDriftOnsetMatchesFaultSchedule)
{
    const WorkloadProfile profile = miniProfile();
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = sweepConfig(Algorithm::Subset, profile);
    cfg.faults.predictorRate = 0.2;
    cfg.faults.seed = 5;
    cfg.faults.startCycle = kFaultStart;
    cfg.metrics.path = "/tmp/flexsnoop_test_drift.fsmetrics";
    cfg.metrics.intervalCycles = kInterval;

    const RunResult r = runSimulation(cfg, traces, profile.name);
    EXPECT_GT(r.faultPredictorFlips, 0u);

    const MetricsFile file = loadMetrics(cfg.metrics.path);
    const auto findings = runHealthDetectors(file);
    const HealthFinding *drift = findDetector(findings, "predictor_drift");
    ASSERT_NE(drift, nullptr);
    expectOnsetNear(*drift, kFaultStart);
    std::remove(cfg.metrics.path.c_str());
}

TEST(HealthGroundTruth, CleanRunFiresNoDetector)
{
    const WorkloadProfile profile = miniProfile();
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = sweepConfig(Algorithm::Subset, profile);
    cfg.metrics.path = "/tmp/flexsnoop_test_clean.fsmetrics";
    cfg.metrics.intervalCycles = kInterval;

    runSimulation(cfg, traces, profile.name);
    const MetricsFile file = loadMetrics(cfg.metrics.path);
    const auto findings = runHealthDetectors(file);
    EXPECT_FALSE(findings.empty());
    for (const HealthFinding &f : findings)
        EXPECT_FALSE(f.fired)
            << f.detector << " fired on a healthy run: " << f.detail;
    std::remove(cfg.metrics.path.c_str());
}

TEST(FaultSchedule, SpecParsesStartCycle)
{
    const FaultConfig faults =
        FaultConfig::fromSpec("drop=0.01,seed=9,start=5000");
    EXPECT_EQ(faults.startCycle, 5000u);
    EXPECT_NE(faults.describe().find("start=5000"), std::string::npos);
    EXPECT_EQ(FaultConfig::fromSpec("drop=0.01").startCycle, 0u);
}

TEST(FaultSchedule, DormantInjectorActsAfterStartOnly)
{
    // Faults scheduled past the end of the run never act: the injector
    // is installed but dormant, makes no per-message decisions, and
    // the run matches a fault-free one exactly. Arming faults also arms
    // the liveness guard, whose self-rescheduling check extends the
    // drain tail; the baseline arms the same guard explicitly so both
    // runs carry the identical event stream.
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 500;
    profile.warmupRefs = 100;
    const CoreTraces traces = SyntheticGenerator(profile).generate();

    MachineConfig plain = sweepConfig(Algorithm::Lazy, profile);
    plain.guards.progressCheckCycles = 1'000'000;
    const RunResult base = runSimulation(plain, traces, profile.name);

    MachineConfig gated = plain;
    gated.faults.dropRate = 0.5;
    gated.faults.seed = 3;
    gated.faults.startCycle = base.execCycles * 100; // far past the end
    const RunResult r = runSimulation(gated, traces, profile.name);
    EXPECT_EQ(r.faultLinkDecisions, 0u) << "dormant injector decided";
    EXPECT_EQ(r.faultDrops, 0u);
    EXPECT_EQ(base.execCycles, r.execCycles);
    EXPECT_EQ(base.readRingRequests, r.readRingRequests);
    EXPECT_EQ(base.readLinkMessages, r.readLinkMessages);
    EXPECT_EQ(base.energyNj, r.energyNj);
    EXPECT_EQ(base.retries, r.retries);
}

} // namespace
} // namespace flexsnoop
