/**
 * @file
 * Tests for the worker-pool executor and the parallel experiment entry
 * points: submission-ordered results, exception propagation, a
 * thread-stress test (meaningful under ThreadSanitizer), and the
 * headline guarantee — parallel sweeps are bit-identical to serial.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/parallel_executor.hh"

namespace flexsnoop
{
namespace
{

TEST(ParallelExecutor, DefaultWorkersIsPositive)
{
    EXPECT_GE(ParallelExecutor::defaultWorkers(), 1u);
}

TEST(ParallelExecutor, RunsEveryJobExactlyOnce)
{
    ParallelExecutor pool(4);
    constexpr std::size_t kJobs = 200;
    std::vector<std::atomic<int>> hits(kJobs);
    std::vector<ParallelExecutor::Job> jobs;
    for (std::size_t i = 0; i < kJobs; ++i)
        jobs.push_back([&hits, i]() { hits[i].fetch_add(1); });
    pool.run(jobs);
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(ParallelExecutor, MapReturnsResultsInSubmissionOrder)
{
    ParallelExecutor pool(8);
    const std::vector<int> out =
        pool.map(500, [](std::size_t i) { return static_cast<int>(i * 3); });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * 3));
}

TEST(ParallelExecutor, SerialModeSpawnsNoThreads)
{
    ParallelExecutor serial0(0);
    ParallelExecutor serial1(1);
    EXPECT_EQ(serial0.workers(), 0u);
    EXPECT_EQ(serial1.workers(), 0u);
    const auto out = serial1.map(10, [](std::size_t i) { return i; });
    ASSERT_EQ(out.size(), 10u);
    EXPECT_EQ(out[9], 9u);
}

TEST(ParallelExecutor, EmptyBatchIsANoOp)
{
    ParallelExecutor pool(2);
    pool.run({});
    EXPECT_EQ(pool.map(0, [](std::size_t) { return 0; }).size(), 0u);
}

TEST(ParallelExecutor, RethrowsFirstExceptionBySubmissionIndex)
{
    ParallelExecutor pool(4);
    std::vector<ParallelExecutor::Job> jobs;
    for (std::size_t i = 0; i < 64; ++i) {
        jobs.push_back([i]() {
            if (i == 7 || i == 40)
                throw std::runtime_error("job " + std::to_string(i));
        });
    }
    try {
        pool.run(jobs);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 7");
    }
}

TEST(ParallelExecutor, FailedBatchLeavesPoolUsable)
{
    ParallelExecutor pool(2);
    EXPECT_THROW(pool.run({[]() { throw std::runtime_error("boom"); }}),
                 std::runtime_error);
    const auto out = pool.map(8, [](std::size_t i) { return i + 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
              36u);
}

/**
 * Many small batches through one pool with more jobs than workers;
 * run under TSan this exercises the wake/dispatch/drain handshake for
 * races.
 */
TEST(ParallelExecutor, StressManyBatches)
{
    ParallelExecutor pool(8);
    std::atomic<std::uint64_t> total{0};
    for (int batch = 0; batch < 50; ++batch) {
        std::vector<ParallelExecutor::Job> jobs;
        for (int i = 0; i < 37; ++i)
            jobs.push_back([&total]() { total.fetch_add(1); });
        pool.run(jobs);
    }
    EXPECT_EQ(total.load(), 50u * 37u);
}

// --- Parallel experiment entry points --------------------------------

/** Field-by-field equality of two runs (exact, including doubles: the
 *  parallel path must replay the identical computation). */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.predictor, b.predictor);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.readRingRequests, b.readRingRequests);
    EXPECT_EQ(a.readSnoops, b.readSnoops);
    EXPECT_EQ(a.readLinkMessages, b.readLinkMessages);
    EXPECT_EQ(a.snoopsPerReadRequest, b.snoopsPerReadRequest);
    EXPECT_EQ(a.energyNj, b.energyNj);
    EXPECT_EQ(a.truePositives, b.truePositives);
    EXPECT_EQ(a.falsePositives, b.falsePositives);
    EXPECT_EQ(a.cacheSupplies, b.cacheSupplies);
    EXPECT_EQ(a.memoryFetches, b.memoryFetches);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.avgReadLatency, b.avgReadLatency);
    EXPECT_EQ(a.p50ReadLatency, b.p50ReadLatency);
    EXPECT_EQ(a.p95ReadLatency, b.p95ReadLatency);
}

WorkloadProfile
testProfile()
{
    WorkloadProfile p = miniProfile();
    p.refsPerCore = 700;
    p.warmupRefs = 200;
    return p;
}

TEST(RunSweepParallel, BitIdenticalToSerialSweep)
{
    const std::vector<Algorithm> algos = {
        Algorithm::Lazy, Algorithm::Eager, Algorithm::SupersetAgg,
        Algorithm::Subset};
    const WorkloadProfile profile = testProfile();

    const SweepResult serial = runSweep(algos, profile);
    const SweepResult parallel = runSweepParallel(algos, profile, 8);

    EXPECT_EQ(serial.workload, parallel.workload);
    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i)
        expectIdentical(serial.runs[i], parallel.runs[i]);
}

TEST(RunMatrix, MatchesPerProfileSerialSweeps)
{
    const std::vector<Algorithm> algos = {Algorithm::Lazy,
                                          Algorithm::Oracle};
    WorkloadProfile a = testProfile();
    WorkloadProfile b = testProfile();
    b.name = "mini-b";
    b.seed = 99;

    const std::vector<SweepResult> matrix = runMatrix(algos, {a, b}, 8);
    ASSERT_EQ(matrix.size(), 2u);

    const SweepResult serial_a = runSweep(algos, a);
    const SweepResult serial_b = runSweep(algos, b);
    ASSERT_EQ(matrix[0].runs.size(), algos.size());
    ASSERT_EQ(matrix[1].runs.size(), algos.size());
    for (std::size_t i = 0; i < algos.size(); ++i) {
        expectIdentical(serial_a.runs[i], matrix[0].runs[i]);
        expectIdentical(serial_b.runs[i], matrix[1].runs[i]);
    }
}

TEST(RunSweepParallel, OverridePredictorAppliesInParallel)
{
    const std::vector<Algorithm> algos = {Algorithm::SupersetAgg};
    const WorkloadProfile profile = testProfile();
    const SweepResult serial = runSweep(algos, profile, "y512");
    const SweepResult parallel =
        runSweepParallel(algos, profile, 4, "y512");
    ASSERT_EQ(parallel.runs.size(), 1u);
    EXPECT_EQ(parallel.runs[0].predictor, serial.runs[0].predictor);
    expectIdentical(serial.runs[0], parallel.runs[0]);
}

} // namespace
} // namespace flexsnoop
