/**
 * @file
 * Tests for the directory-protocol comparator (paper §2.1.2): MESI
 * transitions through the home directory, 3-hop interventions,
 * serialization at the directory, and random-traffic consistency.
 */

#include <gtest/gtest.h>

#include "directory/directory_machine.hh"
#include "sim/random.hh"
#include "workload/core_model.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

class DirectoryTest : public ::testing::Test
{
  protected:
    DirectoryTest()
        : machine(4, 1, 256, 4, smallTorus())
    {
        machine.setCompletionHandler(
            [this](CoreId core, Addr line, bool w) {
                completions.push_back({core, line, w});
            });
    }

    static TorusParams
    smallTorus()
    {
        TorusParams t;
        t.columns = 2;
        t.rows = 2;
        return t;
    }

    void run() { machine.queue().run(); }

    struct Completion
    {
        CoreId core;
        Addr line;
        bool isWrite;
    };

    DirectoryMachine machine;
    std::vector<Completion> completions;
};

TEST_F(DirectoryTest, FirstReadFillsExclusive)
{
    machine.coreRead(0, lineAt(1));
    run();
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(machine.coreState(0, lineAt(1)), LineState::Exclusive);
    EXPECT_EQ(machine.stats().counterValue("dram_accesses"), 1u);
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, SecondReaderTriggersIntervention)
{
    machine.coreRead(0, lineAt(1));
    run();
    machine.coreRead(2, lineAt(1));
    run();
    ASSERT_EQ(completions.size(), 2u);
    // The owner downgraded and both hold Shared.
    EXPECT_EQ(machine.coreState(0, lineAt(1)), LineState::Shared);
    EXPECT_EQ(machine.coreState(2, lineAt(1)), LineState::Shared);
    EXPECT_EQ(machine.stats().counterValue("interventions"), 1u);
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, WriteInvalidatesSharers)
{
    machine.coreRead(0, lineAt(1));
    run();
    machine.coreRead(1, lineAt(1));
    run();
    machine.coreWrite(2, lineAt(1));
    run();
    EXPECT_EQ(machine.coreState(0, lineAt(1)), LineState::Invalid);
    EXPECT_EQ(machine.coreState(1, lineAt(1)), LineState::Invalid);
    EXPECT_EQ(machine.coreState(2, lineAt(1)), LineState::Dirty);
    EXPECT_GE(machine.stats().counterValue("invalidations"), 2u);
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, SilentUpgradeFromExclusive)
{
    machine.coreRead(0, lineAt(1)); // -> E
    run();
    machine.coreWrite(0, lineAt(1));
    run();
    EXPECT_EQ(machine.coreState(0, lineAt(1)), LineState::Dirty);
    EXPECT_EQ(machine.stats().counterValue("write_l2_hits"), 1u);
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, DirtyOwnershipTransfersOnWrite)
{
    machine.coreWrite(0, lineAt(1)); // D at core 0
    run();
    machine.coreWrite(3, lineAt(1)); // take over
    run();
    EXPECT_EQ(machine.coreState(0, lineAt(1)), LineState::Invalid);
    EXPECT_EQ(machine.coreState(3, lineAt(1)), LineState::Dirty);
    // The second write got its data from the old owner, not memory.
    EXPECT_EQ(machine.stats().counterValue("memory_supplies"), 1u);
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, ReadHitsAreLocal)
{
    machine.coreRead(0, lineAt(1));
    run();
    const auto messages = machine.stats().counterValue("messages");
    machine.coreRead(0, lineAt(1));
    run();
    EXPECT_EQ(machine.stats().counterValue("messages"), messages);
    EXPECT_EQ(machine.stats().counterValue("read_l2_hits"), 1u);
}

TEST_F(DirectoryTest, ConcurrentRequestsSerializeAtTheDirectory)
{
    // Two cores write the same line at the same time: the directory's
    // busy bit queues the second transaction; both complete and the
    // final state is a single owner.
    machine.coreWrite(0, lineAt(1));
    machine.coreWrite(2, lineAt(1));
    run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_GE(machine.stats().counterValue("dir_queued"), 1u);
    const bool c0 =
        machine.coreState(0, lineAt(1)) == LineState::Dirty;
    const bool c2 =
        machine.coreState(2, lineAt(1)) == LineState::Dirty;
    EXPECT_TRUE(c0 != c2) << "exactly one dirty owner must remain";
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, EvictionKeepsDirectoryExact)
{
    // Fill one set (4 ways on 64 sets) past capacity: lines i*64 alias.
    for (int i = 0; i <= 4; ++i) {
        machine.coreWrite(0, lineAt(1 + 64 * i));
        run();
    }
    // The evicted dirty line was written back and disowned: a read by
    // another core must be served by memory, not a stale intervention.
    EXPECT_GE(machine.stats().counterValue("writebacks"), 1u);
    completions.clear();
    machine.coreRead(1, lineAt(1));
    run();
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_TRUE(machine.validate().empty());
}

TEST_F(DirectoryTest, RandomTrafficStaysConsistent)
{
    Rng rng(4242);
    std::size_t issued = 0;
    Cycle when = 0;
    for (int i = 0; i < 600; ++i) {
        const auto core = static_cast<CoreId>(rng.nextBelow(4));
        const Addr line = lineAt(rng.nextBelow(10));
        const bool write = rng.chance(0.45);
        ++issued;
        when += rng.nextBelow(40);
        machine.queue().scheduleAt(when, [this, core, line, write]() {
            if (write)
                machine.coreWrite(core, line);
            else
                machine.coreRead(core, line);
        });
    }
    run();
    EXPECT_EQ(completions.size(), issued);
    const auto problems = machine.validate();
    EXPECT_TRUE(problems.empty())
        << problems.size() << " problems; first: "
        << (problems.empty() ? "" : problems.front());
}

TEST_F(DirectoryTest, DrivesTheWorkloadRunner)
{
    CoreTraces traces;
    traces.warmupRefs = 0;
    traces.traces.resize(4);
    Rng rng(77);
    for (CoreId c = 0; c < 4; ++c) {
        for (int i = 0; i < 50; ++i) {
            MemRef ref;
            ref.addr = lineAt(rng.nextBelow(64));
            ref.isWrite = rng.chance(0.3);
            ref.gap = 5 + static_cast<std::uint32_t>(rng.nextBelow(20));
            traces.traces[c].push_back(ref);
        }
    }
    DirectoryMachine dir(4, 1, 256, 4, smallTorus());
    WorkloadRunner runner(dir.queue(), dir, traces, CoreParams{});
    runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_TRUE(dir.validate().empty());
}

TEST_F(DirectoryTest, IndirectionCostsShowInLatency)
{
    // Ring machines answer a neighbouring supplier in ~1 link + snoop;
    // the directory always detours through the home. Check the 3-hop
    // intervention latency exceeds the 2-hop memory fill at the home.
    machine.coreWrite(3, lineAt(0)); // owner far from home 0? line 0 home 0
    run();
    const Cycle t0 = machine.queue().now();
    machine.coreRead(1, lineAt(0));
    run();
    const Cycle intervention_latency = machine.queue().now() - t0;
    EXPECT_GT(intervention_latency, 100u);
}

} // namespace
} // namespace flexsnoop
