/**
 * @file
 * Unit tests for the strict CLI numeric parsers (core/cli_parse.hh):
 * whole-string validation and diagnostics that name the flag and the
 * offending value.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/cli_parse.hh"

namespace flexsnoop
{
namespace
{

TEST(CliParse, UnsignedAcceptsPlainDecimals)
{
    EXPECT_EQ(parseUnsignedArg("--refs", "0"), 0u);
    EXPECT_EQ(parseUnsignedArg("--refs", "42"), 42u);
    EXPECT_EQ(parseUnsignedArg("--refs", "18446744073709551615"),
              UINT64_MAX);
}

TEST(CliParse, UnsignedRejectsGarbage)
{
    EXPECT_THROW(parseUnsignedArg("--jobs", ""), std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", "x"), std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", "10x"),
                 std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", "-1"), std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", "+1"), std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", " 1"), std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", "0x10"),
                 std::invalid_argument);
    EXPECT_THROW(parseUnsignedArg("--jobs", "1.5"),
                 std::invalid_argument);
    // Overflow past uint64 is a parse error, not a silent wrap.
    EXPECT_THROW(parseUnsignedArg("--jobs", "18446744073709551616"),
                 std::invalid_argument);
}

TEST(CliParse, UnsignedDiagnosticNamesFlagAndValue)
{
    try {
        parseUnsignedArg("--warmup", "lots");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--warmup"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'lots'"), std::string::npos) << msg;
    }
}

TEST(CliParse, DoubleAcceptsFixedAndScientific)
{
    EXPECT_DOUBLE_EQ(parseDoubleArg("--cell-timeout", "0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseDoubleArg("--cell-timeout", "10"), 10.0);
    EXPECT_DOUBLE_EQ(parseDoubleArg("--cell-timeout", "2e-3"), 2e-3);
    EXPECT_DOUBLE_EQ(parseDoubleArg("--cell-timeout", "-1.25"), -1.25);
}

TEST(CliParse, DoubleRejectsGarbage)
{
    EXPECT_THROW(parseDoubleArg("--cell-timeout", ""),
                 std::invalid_argument);
    EXPECT_THROW(parseDoubleArg("--cell-timeout", "fast"),
                 std::invalid_argument);
    EXPECT_THROW(parseDoubleArg("--cell-timeout", "1.5s"),
                 std::invalid_argument);
    EXPECT_THROW(parseDoubleArg("--cell-timeout", "1.5 "),
                 std::invalid_argument);
}

TEST(CliParse, DoubleDiagnosticNamesFlagAndValue)
{
    try {
        parseDoubleArg("--cell-timeout", "soon");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--cell-timeout"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'soon'"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace flexsnoop
