/**
 * @file
 * Unit tests for the string-based configuration overrides.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/config_parser.hh"

namespace flexsnoop
{
namespace
{

TEST(ConfigParser, NumericOverrides)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "l2_entries=4096");
    applyOverride(cfg, "l2_ways=16");
    applyOverride(cfg, "num_rings=1");
    applyOverride(cfg, "ring_link_latency=50");
    applyOverride(cfg, "mem_remote_rt=900");
    applyOverride(cfg, "max_outstanding=8");
    EXPECT_EQ(cfg.l2Entries, 4096u);
    EXPECT_EQ(cfg.l2Ways, 16u);
    EXPECT_EQ(cfg.numRings, 1u);
    EXPECT_EQ(cfg.ring.linkLatency, 50u);
    EXPECT_EQ(cfg.memory.remoteRoundTrip, 900u);
    EXPECT_EQ(cfg.core.maxOutstanding, 8u);
}

TEST(ConfigParser, NumCmpsAdjustsTorus)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "num_cmps=16");
    EXPECT_EQ(cfg.numCmps, 16u);
    EXPECT_EQ(cfg.torus.rows * cfg.torus.columns, 16u);
    EXPECT_EQ(cfg.torus.rows, 4u); // most square factorization
    applyOverride(cfg, "num_cmps=6");
    EXPECT_EQ(cfg.torus.rows, 2u);
    EXPECT_EQ(cfg.torus.columns, 3u);
}

TEST(ConfigParser, BooleanOverrides)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "prefetch_enabled=false");
    EXPECT_FALSE(cfg.memory.prefetchEnabled);
    applyOverride(cfg, "prefetch_enabled=on");
    EXPECT_TRUE(cfg.memory.prefetchEnabled);
    EXPECT_THROW(applyOverride(cfg, "prefetch_enabled=maybe"),
                 std::invalid_argument);
}

TEST(ConfigParser, AlgorithmSwitchesPredictorDefault)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "algorithm=supersetagg");
    EXPECT_EQ(cfg.algorithm, Algorithm::SupersetAgg);
    EXPECT_EQ(cfg.predictor.id, "n2k");
    applyOverride(cfg, "predictor=n2k");
    EXPECT_EQ(cfg.predictor.id, "n2k");
}

TEST(ConfigParser, PredictorMismatchRejected)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(Algorithm::SupersetCon);
    EXPECT_THROW(applyOverride(cfg, "predictor=sub2k"),
                 std::invalid_argument);
}

TEST(ConfigParser, MalformedInputsRejected)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    EXPECT_THROW(applyOverride(cfg, "l2_entries"), std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "=5"), std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "l2_entries=abc"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "l2_entries=12x"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "bogus_key=1"),
                 std::invalid_argument);
}

TEST(ConfigParser, ApplyOverridesInOrder)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverrides(cfg, {"l2_ways=2", "l2_ways=4"});
    EXPECT_EQ(cfg.l2Ways, 4u);
}

TEST(ConfigParser, DescribeRoundTripsThroughApply)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Exact);
    cfg.l2Entries = 1234 * 2; // arbitrary tweaks
    cfg.ring.linkLatency = 77;
    const std::string desc = describeConfig(cfg);

    // Re-apply every key=value from the description to a fresh config.
    MachineConfig rebuilt = MachineConfig::paperDefault(Algorithm::Lazy);
    std::istringstream iss(desc);
    std::string token;
    while (iss >> token)
        applyOverride(rebuilt, token);
    EXPECT_EQ(rebuilt.algorithm, cfg.algorithm);
    EXPECT_EQ(rebuilt.predictor.id, cfg.predictor.id);
    EXPECT_EQ(rebuilt.l2Entries, cfg.l2Entries);
    EXPECT_EQ(rebuilt.ring.linkLatency, cfg.ring.linkLatency);
}

TEST(ConfigParser, KeyListIsNonEmptyAndAccepted)
{
    const auto &keys = configKeys();
    EXPECT_GE(keys.size(), 10u);
}

} // namespace
} // namespace flexsnoop
