/**
 * @file
 * Unit tests for the string-based configuration overrides.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/config_parser.hh"

namespace flexsnoop
{
namespace
{

TEST(ConfigParser, NumericOverrides)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "l2_entries=4096");
    applyOverride(cfg, "l2_ways=16");
    applyOverride(cfg, "num_rings=1");
    applyOverride(cfg, "ring_link_latency=50");
    applyOverride(cfg, "mem_remote_rt=900");
    applyOverride(cfg, "max_outstanding=8");
    EXPECT_EQ(cfg.l2Entries, 4096u);
    EXPECT_EQ(cfg.l2Ways, 16u);
    EXPECT_EQ(cfg.numRings, 1u);
    EXPECT_EQ(cfg.ring.linkLatency, 50u);
    EXPECT_EQ(cfg.memory.remoteRoundTrip, 900u);
    EXPECT_EQ(cfg.core.maxOutstanding, 8u);
}

TEST(ConfigParser, NumCmpsAdjustsTorus)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "num_cmps=16");
    EXPECT_EQ(cfg.numCmps, 16u);
    EXPECT_EQ(cfg.torus.rows * cfg.torus.columns, 16u);
    EXPECT_EQ(cfg.torus.rows, 4u); // most square factorization
    applyOverride(cfg, "num_cmps=6");
    EXPECT_EQ(cfg.torus.rows, 2u);
    EXPECT_EQ(cfg.torus.columns, 3u);
}

TEST(ConfigParser, BooleanOverrides)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "prefetch_enabled=false");
    EXPECT_FALSE(cfg.memory.prefetchEnabled);
    applyOverride(cfg, "prefetch_enabled=on");
    EXPECT_TRUE(cfg.memory.prefetchEnabled);
    EXPECT_THROW(applyOverride(cfg, "prefetch_enabled=maybe"),
                 std::invalid_argument);
}

TEST(ConfigParser, AlgorithmSwitchesPredictorDefault)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverride(cfg, "algorithm=supersetagg");
    EXPECT_EQ(cfg.algorithm, Algorithm::SupersetAgg);
    EXPECT_EQ(cfg.predictor.id, "n2k");
    applyOverride(cfg, "predictor=n2k");
    EXPECT_EQ(cfg.predictor.id, "n2k");
}

TEST(ConfigParser, PredictorMismatchRejected)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(Algorithm::SupersetCon);
    EXPECT_THROW(applyOverride(cfg, "predictor=sub2k"),
                 std::invalid_argument);
}

TEST(ConfigParser, MalformedInputsRejected)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    EXPECT_THROW(applyOverride(cfg, "l2_entries"), std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "=5"), std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "l2_entries=abc"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "l2_entries=12x"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "bogus_key=1"),
                 std::invalid_argument);
}

/** The message of the error thrown by @p assignment. */
std::string
errorFor(const std::string &assignment)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    try {
        applyOverride(cfg, assignment);
    } catch (const std::invalid_argument &e) {
        return e.what();
    }
    ADD_FAILURE() << "'" << assignment << "' was accepted";
    return "";
}

TEST(ConfigParser, DiagnosticsNameKeyAndPosition)
{
    // One assertion per malformed-input class: each diagnostic must
    // carry enough context to fix the input without reading the code.
    std::string msg = errorFor("l2_entries=12x7");
    EXPECT_NE(msg.find("l2_entries"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'x'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("position 2"), std::string::npos) << msg;

    msg = errorFor("ring_link_latency=");
    EXPECT_NE(msg.find("empty value"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ring_link_latency"), std::string::npos) << msg;

    msg = errorFor("l2_ways=-3");
    EXPECT_NE(msg.find("'-'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("position 0"), std::string::npos) << msg;

    msg = errorFor("cmp_snoop_time=99999999999999999999999");
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;

    msg = errorFor("num_cmps=1"); // structurally invalid: ring needs 2+
    EXPECT_NE(msg.find("at least 2"), std::string::npos) << msg;

    msg = errorFor("max_outstanding=0");
    EXPECT_NE(msg.find("at least 1"), std::string::npos) << msg;

    msg = errorFor("prefetch_enabled=maybe");
    EXPECT_NE(msg.find("on/off"), std::string::npos) << msg;

    msg = errorFor("bogus_key=1");
    EXPECT_NE(msg.find("bogus_key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("known keys"), std::string::npos) << msg;

    msg = errorFor("l2_entries");
    EXPECT_NE(msg.find("no '='"), std::string::npos) << msg;

    msg = errorFor("=5");
    EXPECT_NE(msg.find("empty key"), std::string::npos) << msg;
}

TEST(ConfigParser, ApplyOverridesNamesFailingEntry)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    try {
        applyOverrides(cfg, {"l2_ways=2", "num_rings=zero", "l2_ways=4"});
        FAIL() << "expected the second override to be rejected";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("override #2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("num_rings=zero"), std::string::npos) << msg;
    }
    // Overrides before the failing one were applied, later ones not.
    EXPECT_EQ(cfg.l2Ways, 2u);
}

TEST(ConfigParser, WatchdogAndRetryKeys)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    EXPECT_EQ(cfg.coherence.watchdogCycles, 0u);
    applyOverride(cfg, "watchdog_cycles=20000");
    applyOverride(cfg, "max_retries=32");
    EXPECT_EQ(cfg.coherence.watchdogCycles, 20000u);
    EXPECT_EQ(cfg.coherence.maxRetries, 32u);
    EXPECT_THROW(applyOverride(cfg, "max_retries=0"),
                 std::invalid_argument);
}

TEST(ConfigParser, ApplyOverridesInOrder)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy);
    applyOverrides(cfg, {"l2_ways=2", "l2_ways=4"});
    EXPECT_EQ(cfg.l2Ways, 4u);
}

TEST(ConfigParser, DescribeRoundTripsThroughApply)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Exact);
    cfg.l2Entries = 1234 * 2; // arbitrary tweaks
    cfg.ring.linkLatency = 77;
    const std::string desc = describeConfig(cfg);

    // Re-apply every key=value from the description to a fresh config.
    MachineConfig rebuilt = MachineConfig::paperDefault(Algorithm::Lazy);
    std::istringstream iss(desc);
    std::string token;
    while (iss >> token)
        applyOverride(rebuilt, token);
    EXPECT_EQ(rebuilt.algorithm, cfg.algorithm);
    EXPECT_EQ(rebuilt.predictor.id, cfg.predictor.id);
    EXPECT_EQ(rebuilt.l2Entries, cfg.l2Entries);
    EXPECT_EQ(rebuilt.ring.linkLatency, cfg.ring.linkLatency);
}

TEST(ConfigParser, KeyListIsNonEmptyAndAccepted)
{
    const auto &keys = configKeys();
    EXPECT_GE(keys.size(), 10u);
}

} // namespace
} // namespace flexsnoop
