/**
 * @file
 * The `.fsmetrics` capture format (docs/TELEMETRY.md): CLI spec
 * parsing, selector globs, an exact write/read round trip through the
 * zigzag-varint delta codec, rejection of truncated and corrupt files,
 * selector filtering at registration, and the stuck-dump tail.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/metrics_reader.hh"
#include "telemetry/metrics_sampler.hh"

namespace flexsnoop
{
namespace
{

TEST(MetricsConfig, FromSpecParsesEveryKey)
{
    const MetricsConfig c =
        MetricsConfig::fromSpec("/tmp/x.fsmetrics,interval=500,select=ctrl.*");
    EXPECT_EQ(c.path, "/tmp/x.fsmetrics");
    EXPECT_EQ(c.intervalCycles, 500u);
    EXPECT_EQ(c.select, "ctrl.*");
    EXPECT_TRUE(c.enabled());
}

TEST(MetricsConfig, FromSpecDefaults)
{
    const MetricsConfig c = MetricsConfig::fromSpec("out.fsmetrics");
    EXPECT_EQ(c.path, "out.fsmetrics");
    EXPECT_EQ(c.intervalCycles, 10000u);
    EXPECT_TRUE(c.select.empty());
}

TEST(MetricsConfig, FromSpecRejectsBadSpecs)
{
    EXPECT_THROW(MetricsConfig::fromSpec(""), std::invalid_argument);
    EXPECT_THROW(MetricsConfig::fromSpec("f,interval=0"),
                 std::invalid_argument);
    EXPECT_THROW(MetricsConfig::fromSpec("f,interval=abc"),
                 std::invalid_argument);
    EXPECT_THROW(MetricsConfig::fromSpec("f,cadence=5"),
                 std::invalid_argument);
}

TEST(MetricsSelector, GlobSemantics)
{
    EXPECT_TRUE(metricSelectorMatches("", "anything.at.all"));
    EXPECT_TRUE(metricSelectorMatches("ctrl.*", "ctrl.retries"));
    EXPECT_FALSE(metricSelectorMatches("ctrl.*", "queue.depth"));
    EXPECT_TRUE(metricSelectorMatches("*.busy_links", "ring0.busy_links"));
    EXPECT_FALSE(metricSelectorMatches("*.busy_links", "ring0.busy"));
    EXPECT_TRUE(metricSelectorMatches("ring?.busy_links",
                                      "ring1.busy_links"));
    EXPECT_FALSE(metricSelectorMatches("ring?.busy_links",
                                       "ring10.busy_links"));
    // '*' may match an empty run, and backtracking must work across
    // multiple stars.
    EXPECT_TRUE(metricSelectorMatches("*", ""));
    EXPECT_TRUE(metricSelectorMatches("a*b*c", "abc"));
    EXPECT_TRUE(metricSelectorMatches("a*b*c", "axxbyybzzc"));
    EXPECT_FALSE(metricSelectorMatches("a*b*c", "acb"));
}

/** Capture a small synthetic set of series with known values. */
struct RoundTrip
{
    static constexpr const char *kPath =
        "/tmp/flexsnoop_test_roundtrip.fsmetrics";
    std::vector<std::uint64_t> counter{0, 120, 7, 300, 300};
    std::vector<std::uint64_t> gauge{9, 2, 11, 0, 5};
    std::vector<std::uint64_t> cycles{100, 200, 300, 400, 500};

    RoundTrip()
    {
        MetricsConfig cfg;
        cfg.path = kPath;
        cfg.intervalCycles = 100;
        MetricsSampler sampler(cfg, 8, 16);
        std::size_t at = 0;
        // The counter column dips at sample 2 (the warmup reset): the
        // zigzag codec must absorb the negative delta.
        EXPECT_TRUE(sampler.addSeries(
            "test.counter", SeriesKind::Counter,
            [&](Cycle) { return counter[at]; }));
        EXPECT_TRUE(sampler.addSeries("test.gauge", SeriesKind::Gauge,
                                      [&](Cycle) { return gauge[at]; }));
        for (; at < cycles.size(); ++at) {
            if (at == 2)
                sampler.markMeasureStart(250);
            sampler.sample(cycles[at]);
        }
        sampler.finish();
    }
    ~RoundTrip() { std::remove(kPath); }
};

TEST(MetricsRoundTrip, ValuesSurviveExactly)
{
    RoundTrip rt;
    const MetricsFile file = loadMetrics(RoundTrip::kPath);
    EXPECT_EQ(file.header.version, kMetricsVersion);
    EXPECT_EQ(file.header.seriesCount, 2u);
    EXPECT_EQ(file.header.sampleCount, 5u);
    EXPECT_EQ(file.header.intervalCycles, 100u);
    EXPECT_EQ(file.header.measureStartCycle, 250u);
    EXPECT_EQ(file.header.numNodes, 8u);
    EXPECT_EQ(file.header.numCores, 16u);

    EXPECT_EQ(file.cycles, rt.cycles);
    ASSERT_EQ(file.names.size(), 2u);
    EXPECT_EQ(file.kinds[file.indexOf("test.counter")],
              SeriesKind::Counter);
    EXPECT_EQ(file.kinds[file.indexOf("test.gauge")], SeriesKind::Gauge);
    ASSERT_NE(file.column("test.counter"), nullptr);
    EXPECT_EQ(*file.column("test.counter"), rt.counter);
    EXPECT_EQ(*file.column("test.gauge"), rt.gauge);
    EXPECT_EQ(file.column("test.absent"), nullptr);
    EXPECT_EQ(file.indexOf("test.absent"), -1);
}

TEST(MetricsRoundTrip, EmptyCaptureIsValid)
{
    const char *path = "/tmp/flexsnoop_test_empty.fsmetrics";
    {
        MetricsConfig cfg;
        cfg.path = path;
        MetricsSampler sampler(cfg, 4, 4);
        sampler.addSeries("only.series", SeriesKind::Gauge,
                          [](Cycle) { return 0u; });
        sampler.finish(); // no samples at all
    }
    const MetricsFile file = loadMetrics(path);
    EXPECT_EQ(file.header.sampleCount, 0u);
    EXPECT_EQ(file.header.measureStartCycle, kMetricsNoMeasureStart);
    EXPECT_TRUE(file.cycles.empty());
    std::remove(path);
}

TEST(MetricsReader, RejectsTruncationAtEveryPrefix)
{
    RoundTrip rt;
    std::ifstream is(RoundTrip::kPath, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
    is.close();
    ASSERT_GT(bytes.size(), sizeof(MetricsFileHeader));

    const char *cut = "/tmp/flexsnoop_test_truncated.fsmetrics";
    // Every proper prefix must be rejected: the header promises a
    // payload length the file cannot satisfy (or the header itself is
    // incomplete).
    for (std::size_t len : {std::size_t{0}, std::size_t{17},
                            sizeof(MetricsFileHeader),
                            sizeof(MetricsFileHeader) + 3,
                            bytes.size() - 1}) {
        std::ofstream os(cut, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(len));
        os.close();
        EXPECT_THROW(loadMetrics(cut), std::runtime_error)
            << "prefix of " << len << " bytes must not decode";
    }
    // Trailing garbage is a corruption signal too, not slack.
    std::ofstream os(cut, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os << "junk";
    os.close();
    EXPECT_THROW(loadMetrics(cut), std::runtime_error);
    std::remove(cut);
}

TEST(MetricsReader, RejectsBadMagicAndPlaceholderHeader)
{
    RoundTrip rt;
    std::ifstream is(RoundTrip::kPath, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();

    const char *bad = "/tmp/flexsnoop_test_badmagic.fsmetrics";
    {
        std::string corrupt = bytes;
        corrupt[0] = 'X';
        std::ofstream os(bad, std::ios::binary | std::ios::trunc);
        os << corrupt;
    }
    EXPECT_THROW(loadMetrics(bad), std::runtime_error);

    // A crashed capture leaves the all-zero placeholder header: the
    // reader must refuse it rather than decode an empty file.
    {
        std::ofstream os(bad, std::ios::binary | std::ios::trunc);
        const std::string zeros(sizeof(MetricsFileHeader), '\0');
        os << zeros;
    }
    EXPECT_THROW(loadMetrics(bad), std::runtime_error);
    std::remove(bad);
}

TEST(MetricsSampler, SelectorFiltersAtRegistration)
{
    const char *path = "/tmp/flexsnoop_test_select.fsmetrics";
    MetricsConfig cfg;
    cfg.path = path;
    cfg.select = "ctrl.*";
    {
        MetricsSampler sampler(cfg, 2, 2);
        EXPECT_TRUE(sampler.addSeries("ctrl.retries", SeriesKind::Counter,
                                      [](Cycle) { return 1u; }));
        EXPECT_FALSE(sampler.addSeries("queue.depth", SeriesKind::Gauge,
                                       [](Cycle) { return 2u; }))
            << "a filtered-out series must not register";
        EXPECT_EQ(sampler.numSeries(), 1u);
        sampler.sample(10);
        sampler.finish();
    }
    const MetricsFile file = loadMetrics(path);
    ASSERT_EQ(file.names.size(), 1u);
    EXPECT_EQ(file.names[0], "ctrl.retries");
    std::remove(path);
}

TEST(MetricsSampler, DumpRecentShowsTail)
{
    const char *path = "/tmp/flexsnoop_test_dump.fsmetrics";
    MetricsConfig cfg;
    cfg.path = path;
    cfg.intervalCycles = 10;
    {
        MetricsSampler sampler(cfg, 2, 2);
        std::uint64_t v = 0;
        sampler.addSeries("test.tail", SeriesKind::Counter,
                          [&](Cycle) { return v; });
        for (v = 0; v < 10; ++v)
            sampler.sample(10 * (v + 1));

        std::ostringstream os;
        sampler.dumpRecent(os, 3);
        const std::string dump = os.str();
        EXPECT_NE(dump.find("telemetry: last 3 of 10"), std::string::npos)
            << dump;
        EXPECT_NE(dump.find("test.tail: 7 8 9"), std::string::npos)
            << dump;
        EXPECT_NE(dump.find("cycle: 80 90 100"), std::string::npos)
            << dump;
    }
    std::remove(path);
}

} // namespace
} // namespace flexsnoop
