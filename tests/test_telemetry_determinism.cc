/**
 * @file
 * The telemetry subsystem's observer-effect guarantees
 * (docs/TELEMETRY.md):
 *
 *  - sampling perturbs nothing: a run with metrics capture enabled has
 *    a bit-identical RunResult — every field — and a byte-identical
 *    .fstrace to the same run without it, across every paper algorithm
 *    and every builtin workload family;
 *  - determinism: the same configuration produces a byte-identical
 *    .fsmetrics every time, serially and on a parallel hardened sweep;
 *  - the structured sweep log records every cell with the right status
 *    in both the healthy and the crashing case;
 *  - a stuck-machine post-mortem carries the telemetry lead-up.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/simulation.hh"
#include "telemetry/metrics_reader.hh"
#include "trace/trace_reader.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** Every RunResult field, compared exactly (identical arithmetic on
 *  identical counters makes even the doubles bit-equal). */
void
expectIdentical(const RunResult &off, const RunResult &on)
{
    EXPECT_EQ(off.execCycles, on.execCycles);
    EXPECT_EQ(off.readRingRequests, on.readRingRequests);
    EXPECT_EQ(off.readSnoops, on.readSnoops);
    EXPECT_EQ(off.snoopsPerReadRequest, on.snoopsPerReadRequest);
    EXPECT_EQ(off.readLinkMessages, on.readLinkMessages);
    EXPECT_EQ(off.readLinkMessagesPerRequest,
              on.readLinkMessagesPerRequest);
    EXPECT_EQ(off.energyNj, on.energyNj);
    EXPECT_EQ(off.ringEnergyNj, on.ringEnergyNj);
    EXPECT_EQ(off.snoopEnergyNj, on.snoopEnergyNj);
    EXPECT_EQ(off.predictorEnergyNj, on.predictorEnergyNj);
    EXPECT_EQ(off.downgradeEnergyNj, on.downgradeEnergyNj);
    EXPECT_EQ(off.truePositives, on.truePositives);
    EXPECT_EQ(off.trueNegatives, on.trueNegatives);
    EXPECT_EQ(off.falsePositives, on.falsePositives);
    EXPECT_EQ(off.falseNegatives, on.falseNegatives);
    EXPECT_EQ(off.writeRingRequests, on.writeRingRequests);
    EXPECT_EQ(off.writeSnoops, on.writeSnoops);
    EXPECT_EQ(off.writeFiltered, on.writeFiltered);
    EXPECT_EQ(off.bridgeSkips, on.bridgeSkips);
    EXPECT_EQ(off.bridgeDescends, on.bridgeDescends);
    EXPECT_EQ(off.globalLinkMessages, on.globalLinkMessages);
    EXPECT_EQ(off.cacheSupplies, on.cacheSupplies);
    EXPECT_EQ(off.memoryFetches, on.memoryFetches);
    EXPECT_EQ(off.downgrades, on.downgrades);
    EXPECT_EQ(off.collisions, on.collisions);
    EXPECT_EQ(off.retries, on.retries);
    EXPECT_EQ(off.writebacks, on.writebacks);
    EXPECT_EQ(off.avgReadLatency, on.avgReadLatency);
    EXPECT_EQ(off.p50ReadLatency, on.p50ReadLatency);
    EXPECT_EQ(off.p95ReadLatency, on.p95ReadLatency);
    EXPECT_EQ(off.watchdogTimeouts, on.watchdogTimeouts);
    EXPECT_EQ(off.retryStormAborts, on.retryStormAborts);
}

std::string
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** One builtin profile per workload family, shrunk test-suite fast. */
std::vector<WorkloadProfile>
familyProfiles()
{
    std::vector<WorkloadProfile> profiles;
    profiles.push_back(miniProfile());
    profiles.push_back(profileByName("barnes")); // SPLASH-2 family
    profiles.push_back(specJbbProfile());
    profiles.push_back(specWebProfile());
    for (WorkloadProfile &p : profiles) {
        p.refsPerCore = 300;
        p.warmupRefs = 100;
    }
    return profiles;
}

class MetricsObserverEffect : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(MetricsObserverEffect, SamplingPerturbsNothingOnAnyProfile)
{
    for (const WorkloadProfile &profile : familyProfiles()) {
        SCOPED_TRACE(profile.name);
        const CoreTraces traces = SyntheticGenerator(profile).generate();
        MachineConfig cfg =
            MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
        cfg.setNumCmps(profile.numCmps());

        const RunResult off = runSimulation(cfg, traces, profile.name);

        const std::string path = "/tmp/flexsnoop_test_observer.fsmetrics";
        cfg.metrics.path = path;
        cfg.metrics.intervalCycles = 2000;
        const RunResult on = runSimulation(cfg, traces, profile.name);

        expectIdentical(off, on);
        const MetricsFile file = loadMetrics(path);
        EXPECT_GT(file.header.sampleCount, 0u)
            << "sampling must actually have happened";
        std::remove(path.c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MetricsObserverEffect,
    ::testing::ValuesIn(paperAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

TEST(MetricsObserverEffectTrace, TraceBytesIdenticalWithSamplingOn)
{
    // The sharpest observer-effect probe: the event trace records the
    // machine cycle by cycle, so a byte-identical .fstrace proves the
    // sampler changed no event order, no timestamps, nothing.
    for (Algorithm a : {Algorithm::Lazy, Algorithm::SupersetAgg,
                        Algorithm::Exact}) {
        SCOPED_TRACE(std::string(toString(a)));
        WorkloadProfile profile = miniProfile();
        profile.refsPerCore = 400;
        profile.warmupRefs = 100;
        const CoreTraces traces = SyntheticGenerator(profile).generate();
        MachineConfig cfg =
            MachineConfig::paperDefault(a, profile.coresPerCmp);
        cfg.setNumCmps(profile.numCmps());

        const std::string trace_off = "/tmp/flexsnoop_test_toff.fstrace";
        const std::string trace_on = "/tmp/flexsnoop_test_ton.fstrace";
        const std::string metrics = "/tmp/flexsnoop_test_ton.fsmetrics";

        cfg.trace.path = trace_off;
        runSimulation(cfg, traces, profile.name);

        cfg.trace.path = trace_on;
        cfg.metrics.path = metrics;
        cfg.metrics.intervalCycles = 1000;
        runSimulation(cfg, traces, profile.name);

        const std::string off_bytes = readBytes(trace_off);
        ASSERT_GT(off_bytes.size(), sizeof(TraceFileHeader));
        EXPECT_TRUE(off_bytes == readBytes(trace_on))
            << "metrics capture changed the event trace";
        std::remove(trace_off.c_str());
        std::remove(trace_on.c_str());
        std::remove(metrics.c_str());
    }
}

TEST(MetricsDeterminism, SameConfigSameBytes)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::SupersetAgg, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    cfg.metrics.intervalCycles = 2000;

    const std::string p1 = "/tmp/flexsnoop_test_mdet1.fsmetrics";
    const std::string p2 = "/tmp/flexsnoop_test_mdet2.fsmetrics";
    cfg.metrics.path = p1;
    runSimulation(cfg, traces, profile.name);
    cfg.metrics.path = p2;
    runSimulation(cfg, traces, profile.name);

    const std::string b1 = readBytes(p1);
    ASSERT_GT(b1.size(), sizeof(MetricsFileHeader));
    // The header embeds no path/time, so the whole file must match.
    EXPECT_TRUE(b1 == readBytes(p2))
        << "same run produced different metrics bytes";
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

/** Cells for the sweep tests; metrics paths are per-cell. */
std::vector<PlannedCell>
sweepCells(const CoreTraces &traces, const WorkloadProfile &profile,
           const std::string &tag, bool with_poisoned)
{
    std::vector<PlannedCell> cells;
    std::size_t i = 0;
    for (Algorithm a : {Algorithm::Lazy, Algorithm::Subset,
                        Algorithm::SupersetAgg, Algorithm::Exact}) {
        PlannedCell cell;
        cell.cfg = sweepConfig(a, profile);
        cell.cfg.metrics.path = "/tmp/flexsnoop_test_" + tag +
                                std::to_string(i++) + ".fsmetrics";
        cell.cfg.metrics.intervalCycles = 2000;
        cell.traces = &traces;
        cell.workload = profile.name;
        cells.push_back(std::move(cell));
    }
    if (with_poisoned) {
        // Half the messages vanish and nothing recovers them: the cell
        // deadlocks and must be logged as failed, not ok.
        PlannedCell poisoned;
        poisoned.cfg = sweepConfig(Algorithm::Eager, profile);
        poisoned.cfg.faults.dropRate = 0.5;
        poisoned.cfg.faults.seed = 3;
        poisoned.cfg.coherence.watchdogCycles = 0;
        poisoned.traces = &traces;
        poisoned.workload = profile.name;
        cells.push_back(std::move(poisoned));
    }
    return cells;
}

TEST(MetricsDeterminism, ParallelSweepMatchesSerialByteForByte)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;
    const CoreTraces traces = SyntheticGenerator(profile).generate();

    const auto serial_cells = sweepCells(traces, profile, "ser", false);
    const auto parallel_cells = sweepCells(traces, profile, "par", false);
    SweepHardening hardening;
    const auto serial = runCellsHardened(serial_cells, 1, hardening);
    const auto parallel = runCellsHardened(parallel_cells, 2, hardening);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].failed);
        EXPECT_FALSE(parallel[i].failed);
        expectIdentical(serial[i], parallel[i]);
        EXPECT_TRUE(readBytes(serial_cells[i].cfg.metrics.path) ==
                    readBytes(parallel_cells[i].cfg.metrics.path))
            << "cell " << i << " metrics diverged across jobs=1/jobs=2";
        std::remove(serial_cells[i].cfg.metrics.path.c_str());
        std::remove(parallel_cells[i].cfg.metrics.path.c_str());
    }
}

TEST(SweepLogTest, RecordsEveryCellWithStatus)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    const auto cells = sweepCells(traces, profile, "log", true);

    const std::string log_path = "/tmp/flexsnoop_test_sweep.jsonl";
    SweepHardening hardening;
    hardening.sweepLogPath = log_path;
    const auto results = runCellsHardened(cells, 2, hardening);
    ASSERT_EQ(results.size(), cells.size());
    EXPECT_TRUE(results.back().failed);

    std::ifstream is(log_path);
    ASSERT_TRUE(is.is_open());
    std::vector<std::string> lines;
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    // sweep_start + per-cell start/finish pairs + sweep_finish.
    ASSERT_EQ(lines.size(), 2 * cells.size() + 2);
    EXPECT_NE(lines.front().find("\"event\":\"sweep_start\""),
              std::string::npos);
    EXPECT_NE(lines.front().find("\"total\":5"), std::string::npos);
    EXPECT_NE(lines.back().find("\"event\":\"sweep_finish\""),
              std::string::npos);
    EXPECT_NE(lines.back().find("\"completed\":5"), std::string::npos);
    EXPECT_NE(lines.back().find("\"failed\":1"), std::string::npos);

    std::size_t starts = 0, oks = 0, failures = 0;
    for (const std::string &line : lines) {
        // Every line is a single JSON object with the envelope fields.
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ts\":"), std::string::npos);
        if (line.find("\"event\":\"cell_start\"") != std::string::npos)
            ++starts;
        if (line.find("\"status\":\"ok\"") != std::string::npos)
            ++oks;
        if (line.find("\"status\":\"failed\"") != std::string::npos)
            ++failures;
        if (line.find("\"event\":\"cell_finish\"") != std::string::npos) {
            EXPECT_NE(line.find("\"wall_sec\":"), std::string::npos);
            EXPECT_NE(line.find("\"eta_sec\":"), std::string::npos);
            EXPECT_NE(line.find("\"peak_rss_kb\":"), std::string::npos);
        }
    }
    EXPECT_EQ(starts, cells.size());
    EXPECT_EQ(oks, cells.size() - 1);
    EXPECT_EQ(failures, 1u);

    for (const PlannedCell &cell : cells)
        if (!cell.cfg.metrics.path.empty())
            std::remove(cell.cfg.metrics.path.c_str());
    std::remove(log_path.c_str());
}

TEST(StuckDump, CarriesTelemetryLeadUp)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 1500;
    profile.warmupRefs = 200;
    const CoreTraces traces = SyntheticGenerator(profile).generate();

    MachineConfig cfg = sweepConfig(Algorithm::Eager, profile);
    cfg.faults.dropRate = 0.5; // drops with no watchdog: deadlock
    cfg.faults.seed = 3;
    cfg.coherence.watchdogCycles = 0;
    cfg.metrics.path = "/tmp/flexsnoop_test_stuck.fsmetrics";
    cfg.metrics.intervalCycles = 500;

    try {
        runSimulation(cfg, traces, profile.name);
        FAIL() << "a half-deaf ring without a watchdog must get stuck";
    } catch (const SimulationStuckError &e) {
        EXPECT_EQ(e.kind(), SimulationStuckError::Kind::Stuck);
        const std::string &dump = e.stuckDump();
        EXPECT_NE(dump.find("telemetry: last"), std::string::npos)
            << "stuck dump must include the metric-sample tail:\n"
            << dump;
        EXPECT_NE(dump.find("ctrl.retries:"), std::string::npos) << dump;
        EXPECT_NE(dump.find("queue.horizon:"), std::string::npos) << dump;
    }
    std::remove(cfg.metrics.path.c_str());
}

} // namespace
} // namespace flexsnoop
