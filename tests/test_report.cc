/**
 * @file
 * Unit tests for the CSV/JSON result exporters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"

namespace flexsnoop
{
namespace
{

RunResult
sampleResult()
{
    RunResult r;
    r.workload = "barnes";
    r.algorithm = "SupersetAgg";
    r.predictor = "y2k";
    r.execCycles = 123456;
    r.readRingRequests = 1000;
    r.readSnoops = 3200;
    r.snoopsPerReadRequest = 3.2;
    r.readLinkMessages = 14000;
    r.readLinkMessagesPerRequest = 14.0;
    r.energyNj = 98765.5;
    r.truePositives = 10;
    r.trueNegatives = 20;
    r.falsePositives = 5;
    r.falseNegatives = 0;
    r.cacheSupplies = 700;
    r.memoryFetches = 300;
    r.avgReadLatency = 456.7;
    return r;
}

TEST(Report, CsvHasHeaderAndOneRowPerResult)
{
    std::ostringstream oss;
    writeCsv(oss, {sampleResult(), sampleResult()});
    const std::string out = oss.str();
    std::size_t lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 3u); // header + 2 rows
    EXPECT_EQ(out.find("workload,algorithm,predictor"), 0u);
    EXPECT_NE(out.find("barnes,SupersetAgg,y2k,123456"),
              std::string::npos);
}

TEST(Report, CsvColumnCountMatchesHeader)
{
    std::ostringstream oss;
    writeCsv(oss, {sampleResult()});
    std::istringstream iss(oss.str());
    std::string header, row;
    std::getline(iss, header);
    std::getline(iss, row);
    const auto count = [](const std::string &s) {
        std::size_t n = 1;
        for (char c : s)
            n += c == ',';
        return n;
    };
    EXPECT_EQ(count(header), count(row));
}

TEST(Report, JsonIsWellFormedArray)
{
    std::ostringstream oss;
    writeJson(oss, {sampleResult()});
    const std::string out = oss.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"workload\": \"barnes\""), std::string::npos);
    EXPECT_NE(out.find("\"exec_cycles\": 123456"), std::string::npos);
    EXPECT_NE(out.find(']'), std::string::npos);
    // Balanced braces.
    int depth = 0;
    for (char c : out) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, EmptyResultSetStillValid)
{
    std::ostringstream csv;
    writeCsv(csv, {});
    EXPECT_NE(csv.str().find("workload"), std::string::npos);
    std::ostringstream json;
    writeJson(json, {});
    EXPECT_NE(json.str().find('['), std::string::npos);
    EXPECT_NE(json.str().find(']'), std::string::npos);
}

} // namespace
} // namespace flexsnoop
