/**
 * @file
 * Unit tests for the CSV/JSON result exporters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"

namespace flexsnoop
{
namespace
{

RunResult
sampleResult()
{
    RunResult r;
    r.workload = "barnes";
    r.algorithm = "SupersetAgg";
    r.predictor = "y2k";
    r.execCycles = 123456;
    r.readRingRequests = 1000;
    r.readSnoops = 3200;
    r.snoopsPerReadRequest = 3.2;
    r.readLinkMessages = 14000;
    r.readLinkMessagesPerRequest = 14.0;
    r.energyNj = 98765.5;
    r.truePositives = 10;
    r.trueNegatives = 20;
    r.falsePositives = 5;
    r.falseNegatives = 0;
    r.cacheSupplies = 700;
    r.memoryFetches = 300;
    r.avgReadLatency = 456.7;
    return r;
}

TEST(Report, CsvHasHeaderAndOneRowPerResult)
{
    std::ostringstream oss;
    writeCsv(oss, {sampleResult(), sampleResult()});
    const std::string out = oss.str();
    std::size_t lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 3u); // header + 2 rows
    EXPECT_EQ(out.find("workload,algorithm,predictor"), 0u);
    EXPECT_NE(out.find("barnes,SupersetAgg,y2k,123456"),
              std::string::npos);
}

TEST(Report, CsvColumnCountMatchesHeader)
{
    std::ostringstream oss;
    writeCsv(oss, {sampleResult()});
    std::istringstream iss(oss.str());
    std::string header, row;
    std::getline(iss, header);
    std::getline(iss, row);
    const auto count = [](const std::string &s) {
        std::size_t n = 1;
        for (char c : s)
            n += c == ',';
        return n;
    };
    EXPECT_EQ(count(header), count(row));
}

TEST(Report, JsonIsWellFormedArray)
{
    std::ostringstream oss;
    writeJson(oss, {sampleResult()});
    const std::string out = oss.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"workload\": \"barnes\""), std::string::npos);
    EXPECT_NE(out.find("\"exec_cycles\": 123456"), std::string::npos);
    EXPECT_NE(out.find(']'), std::string::npos);
    // Balanced braces.
    int depth = 0;
    for (char c : out) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, EmptyResultSetStillValid)
{
    std::ostringstream csv;
    writeCsv(csv, {});
    EXPECT_NE(csv.str().find("workload"), std::string::npos);
    std::ostringstream json;
    writeJson(json, {});
    EXPECT_NE(json.str().find('['), std::string::npos);
    EXPECT_NE(json.str().find(']'), std::string::npos);
}

TEST(Report, CsvRoundTripPreservesEveryField)
{
    RunResult r = sampleResult();
    r.faultLinkDecisions = 4242;
    r.faultDrops = 7;
    r.faultDups = 3;
    r.faultDelays = 2;
    r.faultPredictorFlips = 5;
    r.watchdogTimeouts = 4;
    r.staleMessagesAbsorbed = 11;
    r.predictorFlipDegrades = 6;
    r.incompleteConclusionsRejected = 9;
    r.retryStormAborts = 1;

    std::ostringstream oss;
    writeCsv(oss, {r});
    std::istringstream iss(oss.str());
    const auto loaded = loadCsv(iss);
    ASSERT_EQ(loaded.size(), 1u);
    const RunResult &l = loaded.front();
    EXPECT_EQ(l.workload, r.workload);
    EXPECT_EQ(l.algorithm, r.algorithm);
    EXPECT_EQ(l.predictor, r.predictor);
    EXPECT_EQ(l.execCycles, r.execCycles);
    EXPECT_EQ(l.readSnoops, r.readSnoops);
    EXPECT_DOUBLE_EQ(l.energyNj, r.energyNj);
    EXPECT_DOUBLE_EQ(l.avgReadLatency, r.avgReadLatency);
    EXPECT_EQ(l.faultLinkDecisions, r.faultLinkDecisions);
    EXPECT_EQ(l.faultDrops, r.faultDrops);
    EXPECT_EQ(l.faultDups, r.faultDups);
    EXPECT_EQ(l.faultDelays, r.faultDelays);
    EXPECT_EQ(l.faultPredictorFlips, r.faultPredictorFlips);
    EXPECT_EQ(l.watchdogTimeouts, r.watchdogTimeouts);
    EXPECT_EQ(l.staleMessagesAbsorbed, r.staleMessagesAbsorbed);
    EXPECT_EQ(l.predictorFlipDegrades, r.predictorFlipDegrades);
    EXPECT_EQ(l.incompleteConclusionsRejected,
              r.incompleteConclusionsRejected);
    EXPECT_EQ(l.retryStormAborts, r.retryStormAborts);
    EXPECT_FALSE(l.failed);
    EXPECT_TRUE(l.error.empty());
}

TEST(Report, FailedCellRoundTripsWithSanitizedError)
{
    RunResult r = sampleResult();
    r.failed = true;
    r.error = "stuck: line 0x42,\ncore 3 wedged\r";

    std::ostringstream oss;
    writeCsv(oss, {r});
    // The error cell must not break the CSV structure: still one
    // header line and one row.
    std::size_t lines = 0;
    for (char c : oss.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 2u);

    std::istringstream iss(oss.str());
    const auto loaded = loadCsv(iss);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.front().failed);
    // Commas/newlines were sanitized to ';' on write.
    EXPECT_EQ(loaded.front().error, "stuck: line 0x42;;core 3 wedged;");
}

TEST(Report, LoadCsvRejectsUnknownColumn)
{
    std::istringstream iss("workload,bogus_column\nmini,1\n");
    EXPECT_THROW(loadCsv(iss), std::runtime_error);
}

TEST(Report, LoadCsvNamesBadCell)
{
    std::istringstream iss("workload,exec_cycles\nmini,not_a_number\n");
    try {
        loadCsv(iss);
        FAIL() << "expected malformed cell rejection";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("exec_cycles"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    }
}

TEST(Report, LoadCsvFileReturnsEmptyWhenMissing)
{
    EXPECT_TRUE(loadCsvFile("/nonexistent/dir/results.csv").empty());
}

} // namespace
} // namespace flexsnoop
