/**
 * @file
 * Unit tests for the protocol line states and the compatibility matrix
 * of paper Figure 2-(b).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/line_state.hh"
#include "sim/types.hh"

namespace flexsnoop
{
namespace
{

using LS = LineState;

const std::vector<LS> kAllStates = {
    LS::Invalid,     LS::Shared, LS::SharedLocal, LS::SharedGlobal,
    LS::Exclusive,   LS::Dirty,  LS::Tagged,
};

TEST(LineState, SupplierStatesAreSgEDT)
{
    EXPECT_TRUE(isSupplierState(LS::SharedGlobal));
    EXPECT_TRUE(isSupplierState(LS::Exclusive));
    EXPECT_TRUE(isSupplierState(LS::Dirty));
    EXPECT_TRUE(isSupplierState(LS::Tagged));
    EXPECT_FALSE(isSupplierState(LS::Invalid));
    EXPECT_FALSE(isSupplierState(LS::Shared));
    EXPECT_FALSE(isSupplierState(LS::SharedLocal));
}

TEST(LineState, LocalSupplierAddsSl)
{
    EXPECT_TRUE(isLocalSupplierState(LS::SharedLocal));
    for (LS s : kAllStates) {
        if (isSupplierState(s)) {
            EXPECT_TRUE(isLocalSupplierState(s));
        }
    }
    EXPECT_FALSE(isLocalSupplierState(LS::Shared));
    EXPECT_FALSE(isLocalSupplierState(LS::Invalid));
}

TEST(LineState, DirtyStatesNeedWriteback)
{
    EXPECT_TRUE(isDirtyState(LS::Dirty));
    EXPECT_TRUE(isDirtyState(LS::Tagged));
    EXPECT_FALSE(isDirtyState(LS::Exclusive));
    EXPECT_FALSE(isDirtyState(LS::SharedGlobal));
}

TEST(LineState, WritableStatesAreED)
{
    EXPECT_TRUE(isWritableState(LS::Exclusive));
    EXPECT_TRUE(isWritableState(LS::Dirty));
    EXPECT_FALSE(isWritableState(LS::Tagged));
    EXPECT_FALSE(isWritableState(LS::SharedGlobal));
    EXPECT_FALSE(isWritableState(LS::Shared));
}

TEST(LineState, ToStringIsDistinct)
{
    std::vector<std::string_view> names;
    for (LS s : kAllStates)
        names.push_back(toString(s));
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
    }
}

TEST(Compatibility, InvalidGoesWithEverything)
{
    for (LS s : kAllStates) {
        EXPECT_TRUE(statesCompatible(LS::Invalid, s, false));
        EXPECT_TRUE(statesCompatible(LS::Invalid, s, true));
    }
}

TEST(Compatibility, MatrixIsSymmetric)
{
    for (LS a : kAllStates) {
        for (LS b : kAllStates) {
            for (bool same : {false, true}) {
                EXPECT_EQ(statesCompatible(a, b, same),
                          statesCompatible(b, a, same))
                    << toString(a) << " vs " << toString(b);
            }
        }
    }
}

TEST(Compatibility, ExclusiveAndDirtyTolerateNothing)
{
    for (LS other : kAllStates) {
        if (other == LS::Invalid)
            continue;
        EXPECT_FALSE(statesCompatible(LS::Exclusive, other, false));
        EXPECT_FALSE(statesCompatible(LS::Dirty, other, false));
    }
}

TEST(Compatibility, PaperRowShared)
{
    // S row: I, S, SL, SG, T.
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::Shared, false));
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::SharedLocal, false));
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::SharedGlobal, false));
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::Tagged, false));
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::SharedLocal, true));
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::SharedGlobal, true));
    EXPECT_TRUE(statesCompatible(LS::Shared, LS::Tagged, true));
    EXPECT_FALSE(statesCompatible(LS::Shared, LS::Exclusive, false));
    EXPECT_FALSE(statesCompatible(LS::Shared, LS::Dirty, false));
}

TEST(Compatibility, PaperRowSharedLocal)
{
    // SL row: I, S, SL*, SG*, T* ("*" = different CMP only).
    EXPECT_TRUE(statesCompatible(LS::SharedLocal, LS::SharedLocal, false));
    EXPECT_FALSE(statesCompatible(LS::SharedLocal, LS::SharedLocal, true));
    EXPECT_TRUE(statesCompatible(LS::SharedLocal, LS::SharedGlobal,
                                 false));
    EXPECT_FALSE(statesCompatible(LS::SharedLocal, LS::SharedGlobal,
                                  true));
    EXPECT_TRUE(statesCompatible(LS::SharedLocal, LS::Tagged, false));
    EXPECT_FALSE(statesCompatible(LS::SharedLocal, LS::Tagged, true));
}

TEST(Compatibility, PaperRowSharedGlobal)
{
    // SG row: I, S, SL*. Two global masters never coexist.
    EXPECT_FALSE(statesCompatible(LS::SharedGlobal, LS::SharedGlobal,
                                  false));
    EXPECT_FALSE(statesCompatible(LS::SharedGlobal, LS::SharedGlobal,
                                  true));
    EXPECT_FALSE(statesCompatible(LS::SharedGlobal, LS::Tagged, false));
}

TEST(Compatibility, PaperRowTagged)
{
    // T row: I, S, SL*.
    EXPECT_FALSE(statesCompatible(LS::Tagged, LS::Tagged, false));
    EXPECT_TRUE(statesCompatible(LS::Tagged, LS::Shared, true));
    EXPECT_TRUE(statesCompatible(LS::Tagged, LS::SharedLocal, false));
    EXPECT_FALSE(statesCompatible(LS::Tagged, LS::SharedLocal, true));
}

TEST(Compatibility, AtMostOneSupplierFollowsFromMatrix)
{
    // Any pair of supplier states must be incompatible (in any CMP
    // arrangement): this is what makes "at most one cache can supply"
    // a consequence of the state design.
    for (LS a : kAllStates) {
        for (LS b : kAllStates) {
            if (isSupplierState(a) && isSupplierState(b)) {
                EXPECT_FALSE(statesCompatible(a, b, false))
                    << toString(a) << " + " << toString(b);
                EXPECT_FALSE(statesCompatible(a, b, true));
            }
        }
    }
}

TEST(LineAddr, HelpersStripOffset)
{
    EXPECT_EQ(lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(lineAddr(0x1000), 0x1000u);
    EXPECT_EQ(lineAddr(0x103F), 0x1000u);
    EXPECT_EQ(lineAddr(0x1040), 0x1040u);
    EXPECT_EQ(lineIndex(0x1040), 0x41u);
}

} // namespace
} // namespace flexsnoop
