/**
 * @file
 * Configuration-matrix robustness: random traffic must complete and
 * stay coherent across machine shapes (CMP counts, cores per CMP, ring
 * counts, prefetch on/off, write filtering) — guarding against
 * configuration-dependent protocol corner cases.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

struct MatrixCase
{
    std::size_t numCmps;
    std::size_t coresPerCmp;
    std::size_t numRings;
    bool prefetch;
    bool writeFiltering;
    Algorithm algorithm;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(ConfigMatrix, RandomTrafficCompletesCoherently)
{
    const MatrixCase &mc = GetParam();
    MachineConfig cfg = MachineConfig::testDefault(mc.algorithm);
    cfg.setNumCmps(mc.numCmps);
    cfg.coresPerCmp = mc.coresPerCmp;
    cfg.numRings = mc.numRings;
    cfg.memory.prefetchEnabled = mc.prefetch;
    cfg.writeFiltering = mc.writeFiltering;

    Machine machine(cfg);
    std::size_t issued = 0, completed = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completed; });

    Rng rng(0xC0FFEE ^ (mc.numCmps * 131) ^ (mc.coresPerCmp * 17));
    const auto cores = static_cast<CoreId>(cfg.numCores());
    Cycle when = 0;
    for (int i = 0; i < 400; ++i) {
        const auto core = static_cast<CoreId>(rng.nextBelow(cores));
        const Addr line = lineAt(rng.nextBelow(12));
        const bool write = rng.chance(0.4);
        ++issued;
        when += rng.nextBelow(35);
        machine.queue().scheduleAt(when, [&machine, core, line,
                                          write]() {
            if (write)
                machine.controller().coreWrite(core, line);
            else
                machine.controller().coreRead(core, line);
        });
    }
    machine.queue().run();

    EXPECT_EQ(completed, issued);
    EXPECT_EQ(machine.controller().outstanding(), 0u);
    const auto violations = machine.checker().check();
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations; first: "
        << (violations.empty() ? "" : violations[0].description);
}

std::string
caseName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    const MatrixCase &mc = info.param;
    return std::string(toString(mc.algorithm)) + "_cmps" +
           std::to_string(mc.numCmps) + "_cores" +
           std::to_string(mc.coresPerCmp) + "_rings" +
           std::to_string(mc.numRings) + (mc.prefetch ? "_pf" : "_nopf") +
           (mc.writeFiltering ? "_wf" : "_nowf");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigMatrix,
    ::testing::Values(
        MatrixCase{2, 1, 1, true, false, Algorithm::Lazy},
        MatrixCase{3, 2, 1, true, false, Algorithm::SupersetAgg},
        MatrixCase{4, 2, 2, true, false, Algorithm::Eager},
        MatrixCase{6, 1, 2, false, false, Algorithm::SupersetCon},
        MatrixCase{8, 4, 2, true, false, Algorithm::Exact},
        MatrixCase{8, 1, 4, true, true, Algorithm::SupersetAgg},
        MatrixCase{12, 1, 2, true, false, Algorithm::Subset},
        MatrixCase{16, 2, 2, false, true, Algorithm::Lazy},
        MatrixCase{5, 3, 3, true, false, Algorithm::Oracle},
        MatrixCase{8, 2, 2, true, true, Algorithm::Exact}),
    caseName);

} // namespace
} // namespace flexsnoop
