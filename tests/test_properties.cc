/**
 * @file
 * Property-based tests: randomized concurrent traffic through every
 * algorithm, checking the protocol's global invariants and
 * conservation laws that must hold regardless of timing.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/machine.hh"
#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

/**
 * Random-traffic fixture: issues a randomized mix of reads and writes
 * from random cores over a small hot line pool (maximizing races),
 * then drains.
 */
class RandomTraffic : public ::testing::TestWithParam<Algorithm>
{
  protected:
    struct Issue
    {
        CoreId core;
        Addr line;
        bool isWrite;
    };

    void
    runTraffic(std::uint64_t seed, std::size_t ops,
               std::size_t hot_lines, std::size_t cores_per_cmp = 1)
    {
        MachineConfig cfg = MachineConfig::testDefault(GetParam());
        cfg.coresPerCmp = cores_per_cmp;
        machine = std::make_unique<Machine>(cfg);
        machine->controller().setCompletionHandler(
            [this](CoreId core, Addr line, bool w) {
                ++completions[{core, lineAddr(line)}];
                (void)w;
            });

        Rng rng(seed);
        const auto num_cores =
            static_cast<CoreId>(cfg.numCmps * cores_per_cmp);
        Cycle when = 0;
        for (std::size_t i = 0; i < ops; ++i) {
            Issue issue;
            issue.core = static_cast<CoreId>(rng.nextBelow(num_cores));
            issue.line = lineAt(rng.nextBelow(hot_lines));
            issue.isWrite = rng.chance(0.4);
            issues.push_back(issue);
            ++issued[{issue.core, issue.line}];
            when += rng.nextBelow(30);
            machine->queue().scheduleAt(when, [this, issue]() {
                if (issue.isWrite)
                    machine->controller().coreWrite(issue.core,
                                                    issue.line);
                else
                    machine->controller().coreRead(issue.core,
                                                   issue.line);
            });
        }
        machine->queue().run();
    }

    std::unique_ptr<Machine> machine;
    std::vector<Issue> issues;
    std::map<std::pair<CoreId, Addr>, std::size_t> issued;
    std::map<std::pair<CoreId, Addr>, std::size_t> completions;
};

TEST_P(RandomTraffic, EveryIssueCompletesExactlyOnce)
{
    runTraffic(17, 600, 6);
    EXPECT_EQ(completions, issued);
}

TEST_P(RandomTraffic, NoInFlightStateRemains)
{
    runTraffic(23, 600, 6);
    EXPECT_EQ(machine->controller().outstanding(), 0u);
}

TEST_P(RandomTraffic, CoherenceInvariantsHoldAfterDrain)
{
    runTraffic(31, 800, 8);
    const auto violations = machine->checker().check();
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations; first: "
        << (violations.empty() ? "" : violations[0].description);
}

TEST_P(RandomTraffic, MultiCoreCmpsStayCoherent)
{
    runTraffic(41, 600, 6, /*cores_per_cmp=*/2);
    EXPECT_EQ(completions, issued);
    EXPECT_TRUE(machine->checker().consistent());
}

TEST_P(RandomTraffic, WiderLinePoolAlsoDrains)
{
    runTraffic(43, 800, 64);
    EXPECT_EQ(completions, issued);
    EXPECT_TRUE(machine->checker().consistent());
}

TEST_P(RandomTraffic, SnoopCountNeverExceedsEager)
{
    // No algorithm may snoop more than Eager's N-1 per request.
    runTraffic(47, 500, 8);
    const auto &stats = machine->controller().stats();
    const auto requests = stats.counterValue("read_ring_requests");
    const auto snoops = stats.counterValue("read_snoops");
    if (requests > 0) {
        EXPECT_LE(snoops, requests * (machine->numNodes() - 1))
            << "more snoops than Eager's bound";
    }
}

TEST_P(RandomTraffic, DirtyDataIsNeverLost)
{
    // Conservation: every line that was ever written is either still
    // dirty in some cache or has been written back to memory at least
    // once. (Writebacks may exceed dirty-line count due to repeated
    // migrations.)
    runTraffic(53, 500, 4);
    std::set<Addr> written;
    for (const auto &issue : issues) {
        if (issue.isWrite)
            written.insert(issue.line);
    }
    std::set<Addr> dirty_somewhere;
    for (NodeId n = 0; n < machine->numNodes(); ++n) {
        machine->node(n).forEachLine(
            [&](std::size_t, Addr line, LineState st) {
                if (isDirtyState(st))
                    dirty_somewhere.insert(line);
            });
    }
    const auto writebacks = machine->memory().writebacks();
    for (Addr line : written) {
        const bool safe = dirty_somewhere.count(line) || writebacks > 0;
        EXPECT_TRUE(safe) << "written line neither dirty nor persisted";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, RandomTraffic,
    ::testing::Values(Algorithm::Lazy, Algorithm::Eager, Algorithm::Oracle,
                      Algorithm::Subset, Algorithm::SupersetCon,
                      Algorithm::SupersetAgg, Algorithm::Exact),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

/** Seed sweep: the invariants hold across many random schedules. */
class SeedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SeedSweep, RandomScheduleKeepsSupersetAggCoherent)
{
    MachineConfig cfg =
        MachineConfig::testDefault(Algorithm::SupersetAgg);
    Machine machine(cfg);
    std::size_t issued = 0, completed = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completed; });
    Rng rng(1000 + GetParam());
    Cycle when = 0;
    for (int i = 0; i < 400; ++i) {
        const auto core = static_cast<CoreId>(rng.nextBelow(4));
        const Addr line = lineAt(rng.nextBelow(5));
        const bool is_write = rng.chance(0.5);
        ++issued;
        when += rng.nextBelow(25);
        machine.queue().scheduleAt(when, [&machine, core, line,
                                          is_write]() {
            if (is_write)
                machine.controller().coreWrite(core, line);
            else
                machine.controller().coreRead(core, line);
        });
    }
    machine.queue().run();
    EXPECT_EQ(completed, issued);
    EXPECT_TRUE(machine.checker().consistent());
    EXPECT_EQ(machine.controller().outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 20));

} // namespace
} // namespace flexsnoop
