/**
 * @file
 * Unit tests for the experiment helpers used by the benches: means,
 * Lazy-normalization, sweep mechanics, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/experiment.hh"

namespace flexsnoop
{
namespace
{

TEST(Means, ArithMean)
{
    EXPECT_DOUBLE_EQ(arithMean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(arithMean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(arithMean({}), 0.0);
}

TEST(Means, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geoMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geoMean({7.5}), 7.5);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

TEST(Means, GeoMeanBelowArithMeanForSpreadValues)
{
    const std::vector<double> v{1.0, 2.0, 9.0};
    EXPECT_LT(geoMean(v), arithMean(v));
}

SweepResult
fakeSweep(const std::string &workload, double lazy_exec, double agg_exec)
{
    SweepResult sweep;
    sweep.workload = workload;
    RunResult lazy;
    lazy.algorithm = std::string(toString(Algorithm::Lazy));
    lazy.execCycles = static_cast<Cycle>(lazy_exec);
    lazy.energyNj = 100.0;
    RunResult agg;
    agg.algorithm = std::string(toString(Algorithm::SupersetAgg));
    agg.execCycles = static_cast<Cycle>(agg_exec);
    agg.energyNj = 150.0;
    sweep.runs = {lazy, agg};
    return sweep;
}

TEST(Sweeps, ByAlgorithmFindsRuns)
{
    const SweepResult sweep = fakeSweep("w", 1000, 900);
    EXPECT_EQ(sweep.byAlgorithm(Algorithm::Lazy).execCycles, 1000u);
    EXPECT_EQ(sweep.byAlgorithm(Algorithm::SupersetAgg).execCycles,
              900u);
    EXPECT_THROW(sweep.byAlgorithm(Algorithm::Exact), std::out_of_range);
}

TEST(Sweeps, LazyNormalizedGeoMean)
{
    std::vector<SweepResult> apps;
    apps.push_back(fakeSweep("a", 1000, 800)); // ratio 0.8
    apps.push_back(fakeSweep("b", 2000, 1000)); // ratio 0.5
    const Metric exec = [](const RunResult &r) {
        return static_cast<double>(r.execCycles);
    };
    const double norm =
        lazyNormalizedGeoMean(apps, Algorithm::SupersetAgg, exec);
    EXPECT_NEAR(norm, std::sqrt(0.8 * 0.5), 1e-9);
    // Lazy normalized to itself is exactly 1.
    EXPECT_DOUBLE_EQ(lazyNormalizedGeoMean(apps, Algorithm::Lazy, exec),
                     1.0);
}

TEST(Sweeps, SuiteArithMean)
{
    std::vector<SweepResult> apps;
    apps.push_back(fakeSweep("a", 1000, 800));
    apps.push_back(fakeSweep("b", 3000, 1000));
    const Metric exec = [](const RunResult &r) {
        return static_cast<double>(r.execCycles);
    };
    EXPECT_DOUBLE_EQ(suiteArithMean(apps, Algorithm::Lazy, exec), 2000.0);
}

TEST(Sweeps, RunSweepSharesTracesAcrossAlgorithms)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;
    const SweepResult sweep =
        runSweep({Algorithm::Lazy, Algorithm::Eager}, profile);
    ASSERT_EQ(sweep.runs.size(), 2u);
    // Same traces => identical L2-access counts, so the number of ring
    // read requests differs only through retries.
    const auto &lazy = sweep.runs[0];
    const auto &eager = sweep.runs[1];
    EXPECT_EQ(lazy.workload, eager.workload);
    EXPECT_NEAR(static_cast<double>(lazy.readRingRequests),
                static_cast<double>(eager.readRingRequests),
                0.02 * lazy.readRingRequests + 20);
}

TEST(Sweeps, PredictorOverrideOnlyAppliesToMatchingKind)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 300;
    profile.warmupRefs = 80;
    // Override with a Subset predictor name while running SupersetCon:
    // kinds mismatch, so the default y2k must be kept.
    const RunResult r =
        runOne(Algorithm::SupersetCon, profile, "sub512");
    EXPECT_EQ(r.predictor, "n2k");
    const RunResult r2 = runOne(Algorithm::Subset, profile, "sub512");
    EXPECT_EQ(r2.predictor, "Sub512");
}

TEST(Tables, PrintTableFormatsRowsAndColumns)
{
    std::ostringstream oss;
    std::vector<std::pair<std::string, std::map<Algorithm, double>>> rows;
    rows.emplace_back("w1", std::map<Algorithm, double>{
                                {Algorithm::Lazy, 1.0},
                                {Algorithm::Eager, 1.85},
                            });
    printTable(oss, "my title", {Algorithm::Lazy, Algorithm::Eager}, rows,
               2);
    const std::string out = oss.str();
    EXPECT_NE(out.find("my title"), std::string::npos);
    EXPECT_NE(out.find("w1"), std::string::npos);
    EXPECT_NE(out.find("Lazy"), std::string::npos);
    EXPECT_NE(out.find("1.85"), std::string::npos);
}

TEST(Tables, MissingCellPrintsDash)
{
    std::ostringstream oss;
    std::vector<std::pair<std::string, std::map<Algorithm, double>>> rows;
    rows.emplace_back("w1", std::map<Algorithm, double>{
                                {Algorithm::Lazy, 1.0},
                            });
    printTable(oss, "t", {Algorithm::Lazy, Algorithm::Eager}, rows, 2);
    EXPECT_NE(oss.str().find('-'), std::string::npos);
}

} // namespace
} // namespace flexsnoop
