/**
 * @file
 * The degenerate-hierarchy guarantee: topology=hier with a single
 * local ring builds no Topology object at all, so every component runs
 * the identical flat-ring instruction path — the results must be
 * bit-exact with topology=flat, field by field, for every paper
 * algorithm on every built-in workload profile, and the emitted
 * .fstrace event streams must be byte-identical.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "workload/profile.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** Every RunResult field, compared exactly (identical arithmetic on
 *  identical counters makes even the doubles bit-equal). */
void
expectIdentical(const RunResult &flat, const RunResult &degen)
{
    EXPECT_EQ(flat.execCycles, degen.execCycles);
    EXPECT_EQ(flat.readRingRequests, degen.readRingRequests);
    EXPECT_EQ(flat.readSnoops, degen.readSnoops);
    EXPECT_EQ(flat.snoopsPerReadRequest, degen.snoopsPerReadRequest);
    EXPECT_EQ(flat.readLinkMessages, degen.readLinkMessages);
    EXPECT_EQ(flat.readLinkMessagesPerRequest,
              degen.readLinkMessagesPerRequest);
    EXPECT_EQ(flat.energyNj, degen.energyNj);
    EXPECT_EQ(flat.ringEnergyNj, degen.ringEnergyNj);
    EXPECT_EQ(flat.snoopEnergyNj, degen.snoopEnergyNj);
    EXPECT_EQ(flat.predictorEnergyNj, degen.predictorEnergyNj);
    EXPECT_EQ(flat.downgradeEnergyNj, degen.downgradeEnergyNj);
    EXPECT_EQ(flat.truePositives, degen.truePositives);
    EXPECT_EQ(flat.trueNegatives, degen.trueNegatives);
    EXPECT_EQ(flat.falsePositives, degen.falsePositives);
    EXPECT_EQ(flat.falseNegatives, degen.falseNegatives);
    EXPECT_EQ(flat.writeRingRequests, degen.writeRingRequests);
    EXPECT_EQ(flat.writeSnoops, degen.writeSnoops);
    EXPECT_EQ(flat.writeFiltered, degen.writeFiltered);
    EXPECT_EQ(flat.bridgeSkips, degen.bridgeSkips);
    EXPECT_EQ(flat.bridgeDescends, degen.bridgeDescends);
    EXPECT_EQ(flat.globalLinkMessages, degen.globalLinkMessages);
    EXPECT_EQ(flat.cacheSupplies, degen.cacheSupplies);
    EXPECT_EQ(flat.memoryFetches, degen.memoryFetches);
    EXPECT_EQ(flat.downgrades, degen.downgrades);
    EXPECT_EQ(flat.collisions, degen.collisions);
    EXPECT_EQ(flat.retries, degen.retries);
    EXPECT_EQ(flat.writebacks, degen.writebacks);
    EXPECT_EQ(flat.avgReadLatency, degen.avgReadLatency);
    EXPECT_EQ(flat.p50ReadLatency, degen.p50ReadLatency);
    EXPECT_EQ(flat.p95ReadLatency, degen.p95ReadLatency);
    EXPECT_EQ(flat.faultLinkDecisions, degen.faultLinkDecisions);
    EXPECT_EQ(flat.faultDrops, degen.faultDrops);
    EXPECT_EQ(flat.faultDups, degen.faultDups);
    EXPECT_EQ(flat.faultDelays, degen.faultDelays);
    EXPECT_EQ(flat.watchdogTimeouts, degen.watchdogTimeouts);
    EXPECT_EQ(flat.staleMessagesAbsorbed, degen.staleMessagesAbsorbed);
    EXPECT_EQ(flat.predictorFlipDegrades, degen.predictorFlipDegrades);

    // The degenerate hierarchy has no bridges or global links at all.
    EXPECT_EQ(degen.bridgeSkips, 0u);
    EXPECT_EQ(degen.bridgeDescends, 0u);
    EXPECT_EQ(degen.globalLinkMessages, 0u);
}

/** Shrink a built-in profile so the full matrix stays fast. */
WorkloadProfile
shrunk(WorkloadProfile p)
{
    p.refsPerCore = std::min<std::size_t>(p.refsPerCore, 400);
    p.warmupRefs = std::min<std::size_t>(p.warmupRefs, 100);
    return p;
}

void
runBothAndCompare(MachineConfig cfg, const CoreTraces &traces,
                  const std::string &name)
{
    SCOPED_TRACE(name + " / " + std::string(toString(cfg.algorithm)));
    cfg.topology = TopologyConfig{}; // flat
    const RunResult flat = runSimulation(cfg, traces, name);
    cfg.topology.kind = TopologyKind::Hier;
    cfg.topology.localRings = 1; // degenerate: one local ring
    const RunResult degen = runSimulation(cfg, traces, name);
    expectIdentical(flat, degen);
}

class HierEquivalence : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(HierEquivalence, AllBuiltinProfiles)
{
    std::vector<WorkloadProfile> profiles = splash2Profiles();
    profiles.push_back(specJbbProfile());
    profiles.push_back(specWebProfile());
    profiles.push_back(miniProfile());

    for (const WorkloadProfile &base : profiles) {
        const WorkloadProfile profile = shrunk(base);
        MachineConfig cfg =
            MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
        if (cfg.numCmps != profile.numCmps())
            cfg.setNumCmps(profile.numCmps());
        SyntheticGenerator gen(profile);
        runBothAndCompare(cfg, gen.generate(), profile.name);
    }
}

TEST_P(HierEquivalence, FaultedRunsStayIdentical)
{
    // Same fault seed, same (flat-inherited) per-level rates: the
    // degenerate machine must draw the identical fault stream.
    const WorkloadProfile profile = shrunk(miniProfile());
    MachineConfig cfg =
        MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    cfg.faults.dropRate = 5e-4;
    cfg.faults.dupRate = 5e-4;
    cfg.faults.seed = 11;
    cfg.coherence.watchdogCycles = 20000;
    SyntheticGenerator gen(profile);
    runBothAndCompare(cfg, gen.generate(), "mini_faulted");
}

TEST_P(HierEquivalence, TraceBytesIdentical)
{
    const WorkloadProfile profile = shrunk(miniProfile());
    MachineConfig cfg =
        MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    const auto traceRun = [&](const std::string &path) {
        MachineConfig traced = cfg;
        traced.trace.path = path;
        runSimulation(traced, traces, profile.name);
        std::ifstream is(path, std::ios::binary);
        std::ostringstream bytes;
        bytes << is.rdbuf();
        std::remove(path.c_str());
        return bytes.str();
    };

    cfg.topology = TopologyConfig{};
    const std::string flat_bytes =
        traceRun("/tmp/flexsnoop_test_hier_flat.fstrace");
    cfg.topology.kind = TopologyKind::Hier;
    cfg.topology.localRings = 1;
    const std::string degen_bytes =
        traceRun("/tmp/flexsnoop_test_hier_degen.fstrace");

    ASSERT_FALSE(flat_bytes.empty());
    EXPECT_TRUE(flat_bytes == degen_bytes)
        << "degenerate hierarchy produced different trace bytes";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, HierEquivalence,
    ::testing::ValuesIn(paperAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

} // namespace
} // namespace flexsnoop
