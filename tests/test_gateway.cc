/**
 * @file
 * Regression tests for the gateway's per-line FIFO gate and the
 * squash-while-memory-pending path — the ring-serialization corner
 * cases that randomized traffic uncovered during development.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

/**
 * The overtaking scenario: a non-decoupled (SnoopThenForward) write
 * crawls around the ring at ~94 cycles/hop while a read issued *after*
 * the write passed its node races behind it at forwarding speed. The
 * per-line gate must keep the read behind the write so it can never
 * reach a stale supplier.
 */
TEST(GatewayGate, ReadIssuedAfterWritePassesNeverKeepsStaleData)
{
    // Exact: non-decoupled writes, reads mostly Forward (fast).
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Exact);
    cfg.numCmps = 8;
    cfg.torus.columns = 4;
    cfg.torus.rows = 2;
    Machine machine(cfg);
    std::size_t completions = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completions; });

    const Addr line = lineAt(1);
    // Supplier far downstream of the writer (node 1 supplies; writer is
    // node 2; reader is node 6).
    machine.node(1).fillForWrite(0, line);

    // Writer at node 2 launches the invalidation round.
    machine.controller().coreWrite(8 * 0 + 2, line);
    // Reader at node 6 issues after the write's snoop passed node 6
    // (the write reaches node 6 after ~4 hops * ~94 cycles).
    machine.queue().scheduleAt(460, [&]() {
        machine.controller().coreRead(6, line);
    });
    machine.queue().run();

    EXPECT_EQ(completions, 2u);
    EXPECT_TRUE(machine.checker().consistent())
        << "read overtook the write and kept stale data";
    // The writer owns the line (D) or supplied it to the retried read
    // (T); the reader's copy, if any, must be coherent with it.
    const LineState writer = machine.node(2).coreState(0, line);
    EXPECT_TRUE(writer == LineState::Dirty || writer == LineState::Tagged)
        << toString(writer);
}

TEST(GatewayGate, DeferredMessagesDrainInOrder)
{
    // Lazy holds every message for the 55-cycle snoop: bursts of
    // transactions to one line defer at gateways and must all drain.
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    Machine machine(cfg);
    std::size_t completions = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completions; });

    const Addr line = lineAt(3);
    machine.node(3).fillForWrite(0, line);
    // A read from node 0 holds node 2's gate while it snoops there
    // (Lazy: ~55-cycle SnoopThenForward hold per hop, arriving at node
    // 2 around cycle 199). A read from node 1 timed to reach node 2
    // inside that hold must defer behind it.
    machine.controller().coreRead(0, line);
    machine.queue().scheduleAt(110, [&]() {
        machine.controller().coreRead(1, line);
    });
    machine.queue().run();

    EXPECT_EQ(completions, 2u);
    EXPECT_EQ(machine.controller().outstanding(), 0u);
    EXPECT_GT(machine.controller().stats().counterValue("gate_deferrals"),
              0u)
        << "test should actually exercise the gate";
    EXPECT_TRUE(machine.checker().consistent());
}

TEST(GatewayGate, WriteSquashedWhileMemoryPendingRetries)
{
    // Two write misses to a line nobody caches: both must eventually
    // complete even when one is squashed after its ring round ended
    // (while its memory fetch is in flight).
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    Machine machine(cfg);
    std::size_t completions = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completions; });

    const Addr line = lineAt(5);
    machine.controller().coreWrite(0, line);
    // A second writer slightly behind, so the rounds overlap in varying
    // phases across the sweep below.
    machine.queue().scheduleAt(120, [&]() {
        machine.controller().coreWrite(2, line);
    });
    machine.queue().run();

    EXPECT_EQ(completions, 2u) << "a squashed memory-pending write was "
                                  "dropped without retry";
    EXPECT_EQ(machine.controller().outstanding(), 0u);
    EXPECT_TRUE(machine.checker().consistent());
}

TEST(GatewayGate, HeavyMigratorySingleLineStress)
{
    // Many cores read-modify-write one line: the worst case for gates,
    // collisions, and retries. Every access must complete and the final
    // state must have exactly one owner.
    for (Algorithm a : paperAlgorithms()) {
        MachineConfig cfg = MachineConfig::testDefault(a);
        cfg.numCmps = 8;
        cfg.torus.columns = 4;
        cfg.torus.rows = 2;
        Machine machine(cfg);
        std::size_t completions = 0;
        machine.controller().setCompletionHandler(
            [&](CoreId, Addr, bool) { ++completions; });

        const Addr line = lineAt(7);
        Rng rng(2024);
        Cycle when = 0;
        std::size_t issued = 0;
        for (int i = 0; i < 120; ++i) {
            const auto core = static_cast<CoreId>(rng.nextBelow(8));
            const bool write = i % 2 == 1;
            when += rng.nextBelow(150);
            ++issued;
            machine.queue().scheduleAt(when, [&machine, core, line,
                                              write]() {
                if (write)
                    machine.controller().coreWrite(core, line);
                else
                    machine.controller().coreRead(core, line);
            });
        }
        machine.queue().run();

        EXPECT_EQ(completions, issued) << toString(a);
        EXPECT_TRUE(machine.checker().consistent()) << toString(a);
        EXPECT_EQ(machine.controller().outstanding(), 0u) << toString(a);
    }
}

} // namespace
} // namespace flexsnoop
