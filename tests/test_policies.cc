/**
 * @file
 * Unit tests for the snooping algorithm policies: the exact
 * prediction-to-primitive mapping of paper Table 3, write decoupling
 * per §5.3, and the adaptive Con/Agg switcher of §6.1.5.
 */

#include <gtest/gtest.h>

#include "snoop/adaptive_switcher.hh"
#include "snoop/snoop_policy.hh"

namespace flexsnoop
{
namespace
{

TEST(Policies, LazyAlwaysSnoopsThenForwards)
{
    auto policy = makePolicy(Algorithm::Lazy);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::None);
    EXPECT_FALSE(policy->usesPredictor());
    EXPECT_EQ(policy->onPrediction(true), Primitive::SnoopThenForward);
    EXPECT_EQ(policy->onPrediction(false), Primitive::SnoopThenForward);
    EXPECT_FALSE(policy->decouplesWrites());
}

TEST(Policies, EagerAlwaysForwardsThenSnoops)
{
    auto policy = makePolicy(Algorithm::Eager);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::None);
    EXPECT_EQ(policy->onPrediction(true), Primitive::ForwardThenSnoop);
    EXPECT_EQ(policy->onPrediction(false), Primitive::ForwardThenSnoop);
    EXPECT_TRUE(policy->decouplesWrites());
}

TEST(Policies, OracleSnoopsOnlyTheSupplier)
{
    auto policy = makePolicy(Algorithm::Oracle);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::Perfect);
    EXPECT_EQ(policy->onPrediction(true), Primitive::SnoopThenForward);
    EXPECT_EQ(policy->onPrediction(false), Primitive::Forward);
    EXPECT_TRUE(policy->decouplesWrites());
}

TEST(Policies, SubsetRowOfTable3)
{
    auto policy = makePolicy(Algorithm::Subset);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::Subset);
    EXPECT_EQ(policy->onPrediction(true), Primitive::SnoopThenForward);
    // Negative may be wrong (false negatives): must still snoop.
    EXPECT_EQ(policy->onPrediction(false), Primitive::ForwardThenSnoop);
    EXPECT_TRUE(policy->decouplesWrites());
}

TEST(Policies, SupersetConRowOfTable3)
{
    auto policy = makePolicy(Algorithm::SupersetCon);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::Superset);
    EXPECT_EQ(policy->onPrediction(true), Primitive::SnoopThenForward);
    // Negative is guaranteed correct: skip the snoop entirely.
    EXPECT_EQ(policy->onPrediction(false), Primitive::Forward);
    EXPECT_FALSE(policy->decouplesWrites());
}

TEST(Policies, SupersetAggRowOfTable3)
{
    auto policy = makePolicy(Algorithm::SupersetAgg);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::Superset);
    EXPECT_EQ(policy->onPrediction(true), Primitive::ForwardThenSnoop);
    EXPECT_EQ(policy->onPrediction(false), Primitive::Forward);
    EXPECT_TRUE(policy->decouplesWrites());
}

TEST(Policies, ExactRowOfTable3)
{
    auto policy = makePolicy(Algorithm::Exact);
    EXPECT_EQ(policy->predictorKind(), PredictorKind::Exact);
    EXPECT_EQ(policy->onPrediction(true), Primitive::SnoopThenForward);
    EXPECT_EQ(policy->onPrediction(false), Primitive::Forward);
    EXPECT_FALSE(policy->decouplesWrites());
}

TEST(Policies, NoFalseNegativePoliciesNeverFilterOnPositive)
{
    // A policy may only emit Forward when its predictor guarantees no
    // false negatives -- otherwise it could skip the supplier.
    for (Algorithm a : paperAlgorithms()) {
        auto policy = makePolicy(a);
        if (policy->onPrediction(false) == Primitive::Forward &&
            policy->usesPredictor()) {
            const auto cfg = defaultPredictorFor(a);
            auto pred = makePredictor(cfg, "p", [](Addr) { return false; });
            if (pred) {
                EXPECT_FALSE(pred->mayFalseNegative()) << toString(a);
            }
        }
    }
}

TEST(Policies, FactoryProducesMatchingAlgorithm)
{
    for (Algorithm a : paperAlgorithms())
        EXPECT_EQ(makePolicy(a)->algorithm(), a);
}

TEST(Policies, NameRoundTrip)
{
    for (Algorithm a : paperAlgorithms())
        EXPECT_EQ(algorithmFromName(std::string(toString(a))), a);
    EXPECT_EQ(algorithmFromName("supagg"), Algorithm::SupersetAgg);
    EXPECT_EQ(algorithmFromName("supcon"), Algorithm::SupersetCon);
    EXPECT_THROW(algorithmFromName("nope"), std::invalid_argument);
}

TEST(Policies, PaperAlgorithmListMatchesFigures)
{
    const auto &algos = paperAlgorithms();
    ASSERT_EQ(algos.size(), 7u);
    EXPECT_EQ(algos.front(), Algorithm::Lazy);
    EXPECT_EQ(algos.back(), Algorithm::Exact);
}

TEST(Policies, DefaultPredictorsMatchSection61)
{
    EXPECT_EQ(defaultPredictorFor(Algorithm::Subset).id, "Sub2k");
    EXPECT_EQ(defaultPredictorFor(Algorithm::SupersetCon).id, "n2k");
    EXPECT_EQ(defaultPredictorFor(Algorithm::SupersetAgg).id, "n2k");
    EXPECT_EQ(defaultPredictorFor(Algorithm::Exact).id, "Exa2k");
    EXPECT_EQ(defaultPredictorFor(Algorithm::Lazy).kind,
              PredictorKind::None);
    EXPECT_EQ(defaultPredictorFor(Algorithm::Oracle).kind,
              PredictorKind::Perfect);
}

// --- Adaptive switcher (§6.1.5 extension) -----------------------------------

TEST(AdaptiveSwitcher, AggressiveModeBehavesLikeSupersetAgg)
{
    AdaptiveSupersetPolicy policy(AdaptiveSupersetPolicy::Mode::Aggressive);
    EXPECT_EQ(policy.onPrediction(true), Primitive::ForwardThenSnoop);
    EXPECT_EQ(policy.onPrediction(false), Primitive::Forward);
    EXPECT_TRUE(policy.decouplesWrites());
}

TEST(AdaptiveSwitcher, ConservativeModeBehavesLikeSupersetCon)
{
    AdaptiveSupersetPolicy policy(
        AdaptiveSupersetPolicy::Mode::Conservative);
    EXPECT_EQ(policy.onPrediction(true), Primitive::SnoopThenForward);
    EXPECT_EQ(policy.onPrediction(false), Primitive::Forward);
    EXPECT_FALSE(policy.decouplesWrites());
}

TEST(AdaptiveSwitcher, ControllerSwitchesOnHighEnergy)
{
    AdaptiveSupersetPolicy policy(AdaptiveSupersetPolicy::Mode::Aggressive);
    EnergyBudgetController ctrl(policy, /*high=*/50.0, /*low=*/30.0);
    // Cheap epoch: stays aggressive.
    ctrl.sampleEpoch(25.0 * 100, 100);
    EXPECT_EQ(policy.mode(), AdaptiveSupersetPolicy::Mode::Aggressive);
    // Expensive epoch: switches to conservative.
    ctrl.sampleEpoch(80.0 * 100, 100);
    EXPECT_EQ(policy.mode(), AdaptiveSupersetPolicy::Mode::Conservative);
    // Hysteresis: mid-band keeps the current mode.
    ctrl.sampleEpoch(40.0 * 100, 100);
    EXPECT_EQ(policy.mode(), AdaptiveSupersetPolicy::Mode::Conservative);
    // Cheap again: back to aggressive.
    ctrl.sampleEpoch(10.0 * 100, 100);
    EXPECT_EQ(policy.mode(), AdaptiveSupersetPolicy::Mode::Aggressive);
    EXPECT_EQ(ctrl.epochs(), 4u);
    EXPECT_EQ(ctrl.conservativeEpochs(), 2u);
}

TEST(AdaptiveSwitcher, EmptyEpochKeepsMode)
{
    AdaptiveSupersetPolicy policy(
        AdaptiveSupersetPolicy::Mode::Conservative);
    EnergyBudgetController ctrl(policy, 50.0, 30.0);
    ctrl.sampleEpoch(0.0, 0);
    EXPECT_EQ(policy.mode(), AdaptiveSupersetPolicy::Mode::Conservative);
    EXPECT_EQ(ctrl.epochs(), 0u);
}

} // namespace
} // namespace flexsnoop
