/**
 * @file
 * The scheduler equivalence guarantee: swapping the EventQueue's
 * timing-wheel implementation for the reference binary heap
 * (FLEXSNOOP_HEAP_QUEUE) must not change a single statistic — the wheel
 * fires events in the exact (cycle, seq) order the heap does, so every
 * RunResult field and every .fstrace byte is identical. Any divergence
 * here is an ordering bug in the wheel.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "trace/trace_reader.hh"
#include "workload/core_model.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** Scoped FLEXSNOOP_HEAP_QUEUE=1: machines built inside use the
 *  reference heap scheduler. */
class HeapQueueEnv
{
  public:
    HeapQueueEnv() { ::setenv("FLEXSNOOP_HEAP_QUEUE", "1", 1); }
    ~HeapQueueEnv() { ::unsetenv("FLEXSNOOP_HEAP_QUEUE"); }
    HeapQueueEnv(const HeapQueueEnv &) = delete;
    HeapQueueEnv &operator=(const HeapQueueEnv &) = delete;
};

/** Every RunResult field, compared exactly (identical arithmetic on
 *  identical counters makes even the doubles bit-equal). */
void
expectIdentical(const RunResult &wheel, const RunResult &heap)
{
    EXPECT_EQ(wheel.execCycles, heap.execCycles);
    EXPECT_EQ(wheel.readRingRequests, heap.readRingRequests);
    EXPECT_EQ(wheel.readSnoops, heap.readSnoops);
    EXPECT_EQ(wheel.snoopsPerReadRequest, heap.snoopsPerReadRequest);
    EXPECT_EQ(wheel.readLinkMessages, heap.readLinkMessages);
    EXPECT_EQ(wheel.readLinkMessagesPerRequest,
              heap.readLinkMessagesPerRequest);
    EXPECT_EQ(wheel.energyNj, heap.energyNj);
    EXPECT_EQ(wheel.ringEnergyNj, heap.ringEnergyNj);
    EXPECT_EQ(wheel.snoopEnergyNj, heap.snoopEnergyNj);
    EXPECT_EQ(wheel.predictorEnergyNj, heap.predictorEnergyNj);
    EXPECT_EQ(wheel.downgradeEnergyNj, heap.downgradeEnergyNj);
    EXPECT_EQ(wheel.truePositives, heap.truePositives);
    EXPECT_EQ(wheel.trueNegatives, heap.trueNegatives);
    EXPECT_EQ(wheel.falsePositives, heap.falsePositives);
    EXPECT_EQ(wheel.falseNegatives, heap.falseNegatives);
    EXPECT_EQ(wheel.writeRingRequests, heap.writeRingRequests);
    EXPECT_EQ(wheel.writeSnoops, heap.writeSnoops);
    EXPECT_EQ(wheel.writeFiltered, heap.writeFiltered);
    EXPECT_EQ(wheel.cacheSupplies, heap.cacheSupplies);
    EXPECT_EQ(wheel.memoryFetches, heap.memoryFetches);
    EXPECT_EQ(wheel.downgrades, heap.downgrades);
    EXPECT_EQ(wheel.collisions, heap.collisions);
    EXPECT_EQ(wheel.retries, heap.retries);
    EXPECT_EQ(wheel.writebacks, heap.writebacks);
    EXPECT_EQ(wheel.avgReadLatency, heap.avgReadLatency);
    EXPECT_EQ(wheel.p50ReadLatency, heap.p50ReadLatency);
    EXPECT_EQ(wheel.p95ReadLatency, heap.p95ReadLatency);
}

void
runBothAndCompare(const MachineConfig &cfg, const CoreTraces &traces,
                  const std::string &name)
{
    SCOPED_TRACE(name + " / " + std::string(toString(cfg.algorithm)));
    const RunResult wheel = runSimulation(cfg, traces, name);
    RunResult heap;
    {
        HeapQueueEnv env;
        heap = runSimulation(cfg, traces, name);
    }
    expectIdentical(wheel, heap);
}

/** Shrink a built-in profile so the full matrix stays fast. */
WorkloadProfile
shrunk(WorkloadProfile p)
{
    p.refsPerCore = std::min<std::size_t>(p.refsPerCore, 400);
    p.warmupRefs = std::min<std::size_t>(p.warmupRefs, 100);
    return p;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

TEST(QueueEquivalence, EnvSelectsTheHeapImplementation)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    {
        Machine wheel(cfg);
        EXPECT_EQ(wheel.queue().impl(), EventQueue::Impl::Wheel);
        // Sized from the config's hot latencies (710 -> 1024).
        EXPECT_EQ(wheel.queue().nearBuckets(),
                  std::size_t{1024});
    }
    HeapQueueEnv env;
    Machine heap(cfg);
    EXPECT_EQ(heap.queue().impl(), EventQueue::Impl::Heap);
}

class QueueEquivalence : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(QueueEquivalence, AllBuiltinProfiles)
{
    std::vector<WorkloadProfile> profiles = splash2Profiles();
    profiles.push_back(specJbbProfile());
    profiles.push_back(specWebProfile());
    profiles.push_back(miniProfile());

    for (const WorkloadProfile &base : profiles) {
        const WorkloadProfile profile = shrunk(base);
        MachineConfig cfg =
            MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
        if (cfg.numCmps != profile.numCmps())
            cfg.setNumCmps(profile.numCmps());
        SyntheticGenerator gen(profile);
        runBothAndCompare(cfg, gen.generate(), profile.name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, QueueEquivalence,
    ::testing::ValuesIn(paperAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

TEST(QueueEquivalence, TraceBytesIdenticalUnderBothSchedulers)
{
    // The strongest equivalence statement available: the event-level
    // trace timestamps every ring hop and snoop, so byte-identical
    // .fstrace files mean the two schedulers interleaved the entire
    // simulation identically, not just its end-of-run aggregates.
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::SupersetAgg, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());

    const std::string wheel_path = "/tmp/flexsnoop_test_qw.fstrace";
    const std::string heap_path = "/tmp/flexsnoop_test_qh.fstrace";
    cfg.trace.path = wheel_path;
    runSimulation(cfg, traces, profile.name);
    {
        HeapQueueEnv env;
        cfg.trace.path = heap_path;
        runSimulation(cfg, traces, profile.name);
    }

    const std::string wheel_bytes = readBytes(wheel_path);
    const std::string heap_bytes = readBytes(heap_path);
    ASSERT_GT(wheel_bytes.size(), sizeof(TraceFileHeader));
    EXPECT_TRUE(wheel_bytes == heap_bytes)
        << "schedulers produced different trace bytes";
    std::remove(wheel_path.c_str());
    std::remove(heap_path.c_str());
}

} // namespace
} // namespace flexsnoop
