/**
 * @file
 * Unit tests for the 2D-torus data network latency model.
 */

#include <gtest/gtest.h>

#include "net/data_network.hh"

namespace flexsnoop
{
namespace
{

TorusParams
paper4x2()
{
    TorusParams p;
    p.columns = 4;
    p.rows = 2;
    p.perHopLatency = 20;
    p.lineSerialization = 12;
    return p;
}

TEST(DataNetwork, SelfTransferHasZeroHops)
{
    DataNetwork net(paper4x2());
    for (NodeId n = 0; n < 8; ++n)
        EXPECT_EQ(net.hops(n, n), 0u);
}

TEST(DataNetwork, NeighborIsOneHop)
{
    DataNetwork net(paper4x2());
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 4), 1u); // same column, next row
}

TEST(DataNetwork, WrapAroundShortensPaths)
{
    DataNetwork net(paper4x2());
    // Columns 0 and 3 are adjacent through the wrap link.
    EXPECT_EQ(net.hops(0, 3), 1u);
    // Rows wrap too (only 2 rows: always <= 1 vertical hop).
    EXPECT_EQ(net.hops(0, 7), 2u); // (0,0) -> (3,1): 1 + 1
}

TEST(DataNetwork, HopsAreSymmetric)
{
    DataNetwork net(paper4x2());
    for (NodeId a = 0; a < 8; ++a) {
        for (NodeId b = 0; b < 8; ++b)
            EXPECT_EQ(net.hops(a, b), net.hops(b, a));
    }
}

TEST(DataNetwork, MaxDistanceOn4x2IsThree)
{
    DataNetwork net(paper4x2());
    std::uint32_t max_hops = 0;
    for (NodeId a = 0; a < 8; ++a) {
        for (NodeId b = 0; b < 8; ++b)
            max_hops = std::max(max_hops, net.hops(a, b));
    }
    EXPECT_EQ(max_hops, 3u);
}

TEST(DataNetwork, LatencyIsHopsTimesPerHopPlusSerialization)
{
    DataNetwork net(paper4x2());
    EXPECT_EQ(net.lineLatency(0, 1), 20u + 12u);
    EXPECT_EQ(net.lineLatency(0, 6), 20u * net.hops(0, 6) + 12u);
    EXPECT_EQ(net.lineLatency(2, 2), 12u); // local: serialization only
}

TEST(DataNetwork, TransferCountsAndSamples)
{
    DataNetwork net(paper4x2());
    net.transfer(0, 5);
    net.transfer(1, 2);
    EXPECT_EQ(net.transfers(), 2u);
    EXPECT_GT(net.stats().scalarMean("transfer_latency"), 0.0);
}

TEST(DataNetwork, SingleRowTorus)
{
    TorusParams p;
    p.columns = 4;
    p.rows = 1;
    DataNetwork net(p);
    EXPECT_EQ(net.numNodes(), 4u);
    EXPECT_EQ(net.hops(0, 2), 2u);
    EXPECT_EQ(net.hops(0, 3), 1u); // wrap
}

} // namespace
} // namespace flexsnoop
