/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace flexsnoop
{
namespace
{

TEST(Counter, StartsAtZeroIncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMeanMinMax)
{
    ScalarStat s;
    s.sample(2.0);
    s.sample(8.0);
    s.sample(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_DOUBLE_EQ(s.total(), 15.0);
}

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ScalarStat, ResetClears)
{
    ScalarStat s;
    s.sample(3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.sample(-1.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), -1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // buckets [0,10) [10,20) [20,30) [30,40)
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.5);
    h.sample(100.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, NegativeGoesToOverflow)
{
    Histogram h(1.0, 4);
    h.sample(-3.0);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, MeanMatchesSamples)
{
    Histogram h(1.0, 100);
    h.sample(10.0);
    h.sample(20.0);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
}

TEST(StatGroup, CountersAreFindOrCreate)
{
    StatGroup g("grp");
    g.counter("a").inc(3);
    EXPECT_EQ(g.counter("a").value(), 3u);
    EXPECT_EQ(g.counterValue("a"), 3u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(StatGroup, ScalarMeanLookup)
{
    StatGroup g("grp");
    g.scalar("lat").sample(4.0);
    g.scalar("lat").sample(6.0);
    EXPECT_DOUBLE_EQ(g.scalarMean("lat"), 5.0);
    EXPECT_DOUBLE_EQ(g.scalarMean("missing"), 0.0);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("grp");
    g.counter("c").inc(7);
    g.scalar("s").sample(1.0);
    g.histogram("h").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counterValue("c"), 0u);
    EXPECT_DOUBLE_EQ(g.scalarMean("s"), 0.0);
    EXPECT_EQ(g.histogram("h").count(), 0u);
}

TEST(StatGroup, DumpContainsGroupAndStatNames)
{
    StatGroup g("mygroup");
    g.counter("hits").inc(12);
    std::ostringstream oss;
    g.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("mygroup.hits"), std::string::npos);
    EXPECT_NE(out.find("12"), std::string::npos);
}

TEST(StatGroup, HistogramKeepsConfiguredShape)
{
    StatGroup g("grp");
    auto &h = g.histogram("lat", 5.0, 10);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 5.0);
    EXPECT_EQ(h.numBuckets(), 10u);
    // Second lookup returns the same object.
    auto &h2 = g.histogram("lat", 99.0, 3);
    EXPECT_EQ(&h, &h2);
    EXPECT_DOUBLE_EQ(h2.bucketWidth(), 5.0);
}

} // namespace
} // namespace flexsnoop
