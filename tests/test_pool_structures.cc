/**
 * @file
 * Unit tests for the allocation-free hot-path containers: SlotPool
 * (recycled slots, stable addresses) and FlatMap (open addressing,
 * tombstone erase).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/slot_pool.hh"

namespace flexsnoop
{
namespace
{

struct Payload
{
    int value = 0;
    std::vector<int> scratch;
};

TEST(SlotPool, RecyclesSlotsWithoutNewChunks)
{
    SlotPool<Payload> pool(4);
    Payload *a = pool.acquire();
    a->scratch.assign(100, 7);
    pool.release(a);

    // The freed slot comes back (LIFO) with its state intact; the
    // caller re-initializes but keeps grown capacity.
    Payload *b = pool.acquire();
    EXPECT_EQ(a, b);
    EXPECT_EQ(b->scratch.size(), 100u);
    EXPECT_GE(b->scratch.capacity(), 100u);
    pool.release(b);

    EXPECT_EQ(pool.chunkAllocs(), 1u);
    EXPECT_EQ(pool.acquires(), 2u);
    EXPECT_EQ(pool.releases(), 2u);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(SlotPool, GrowsByChunksAndKeepsAddressesStable)
{
    SlotPool<Payload> pool(2);
    std::vector<Payload *> out;
    for (int i = 0; i < 7; ++i) {
        Payload *p = pool.acquire();
        p->value = i;
        out.push_back(p);
    }
    EXPECT_EQ(pool.chunkAllocs(), 4u); // ceil(7/2)
    EXPECT_EQ(pool.live(), 7u);
    EXPECT_EQ(pool.slotsAllocated(), 8u);

    // All handed-out pointers are distinct and still hold their data
    // after the growth that happened in between.
    std::set<Payload *> distinct(out.begin(), out.end());
    EXPECT_EQ(distinct.size(), out.size());
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(out[i]->value, i);
    for (Payload *p : out)
        pool.release(p);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(FlatMap, PutFindErase)
{
    FlatMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    map.put(42, 1);
    map.put(7, 2);
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 1);
    EXPECT_EQ(*map.find(7), 2);
    EXPECT_EQ(map.size(), 2u);

    map.put(42, 3); // overwrite, no duplicate
    EXPECT_EQ(*map.find(42), 3);
    EXPECT_EQ(map.size(), 2u);

    EXPECT_TRUE(map.erase(42));
    EXPECT_FALSE(map.erase(42));
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_EQ(*map.find(7), 2);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GetOrCreateDefaultConstructs)
{
    FlatMap<int *> map;
    int *&slot = map.getOrCreate(5);
    EXPECT_EQ(slot, nullptr); // value-initialized
    int x = 9;
    slot = &x;
    EXPECT_EQ(*map.find(5), &x);

    // Erase resets the stored value, so a recycled mapping starts null.
    map.erase(5);
    EXPECT_EQ(map.getOrCreate(5), nullptr);
}

TEST(FlatMap, SurvivesGrowthAndTombstoneChurn)
{
    FlatMap<std::uint64_t> map;
    const std::uint64_t n = 2000;
    for (std::uint64_t k = 0; k < n; ++k)
        map.put(k * 64, k); // line-address-like keys: low-entropy bits
    EXPECT_EQ(map.size(), n);
    for (std::uint64_t k = 0; k < n; k += 2)
        EXPECT_TRUE(map.erase(k * 64));
    EXPECT_EQ(map.size(), n / 2);

    // Every surviving key still resolves; every erased key is gone.
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t *v = map.find(k * 64);
        if (k % 2) {
            ASSERT_NE(v, nullptr) << k;
            EXPECT_EQ(*v, k);
        } else {
            EXPECT_EQ(v, nullptr) << k;
        }
    }

    // Tombstoned slots are reused by later inserts.
    for (std::uint64_t k = 0; k < n; k += 2)
        map.put(k * 64, k + 1000000);
    EXPECT_EQ(map.size(), n);
    EXPECT_EQ(*map.find(0), 1000000u);
}

TEST(FlatMap, ForEachVisitsExactlyTheLiveMappings)
{
    FlatMap<int> map;
    for (int k = 1; k <= 10; ++k)
        map.put(static_cast<std::uint64_t>(k), k);
    map.erase(3);
    map.erase(8);

    std::set<std::uint64_t> seen;
    int sum = 0;
    map.forEach([&](std::uint64_t key, int value) {
        seen.insert(key);
        sum += value;
    });
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(sum, 55 - 3 - 8);
    EXPECT_FALSE(seen.count(3));
    EXPECT_FALSE(seen.count(8));
}

TEST(FlatMap, ClearRetainsNothing)
{
    FlatMap<int> map;
    for (int k = 0; k < 50; ++k)
        map.put(static_cast<std::uint64_t>(k), k);
    map.clear();
    EXPECT_TRUE(map.empty());
    for (int k = 0; k < 50; ++k)
        EXPECT_EQ(map.find(static_cast<std::uint64_t>(k)), nullptr);
    map.put(1, 1);
    EXPECT_EQ(map.size(), 1u);
}

} // namespace
} // namespace flexsnoop
