/**
 * @file
 * Controller-level protocol tests: exact snoop and message counts per
 * algorithm (paper Tables 1-3), read/write transaction flows, state
 * transitions, collisions, and the prefetch heuristic, on a small
 * 4-CMP machine driven by hand.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hh"

namespace flexsnoop
{
namespace
{

using LS = LineState;

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

struct Completion
{
    CoreId core;
    Addr line;
    bool isWrite;
};

class ProtocolFixture
{
  public:
    explicit ProtocolFixture(Algorithm a)
        : machine(MachineConfig::testDefault(a))
    {
        machine.controller().setCompletionHandler(
            [this](CoreId core, Addr line, bool is_write) {
                completions.push_back(Completion{core, line, is_write});
            });
    }

    void
    read(CoreId core, Addr line)
    {
        machine.controller().coreRead(core, line);
    }

    void
    write(CoreId core, Addr line)
    {
        machine.controller().coreWrite(core, line);
    }

    void run() { machine.queue().run(); }

    /** Install a dirty line at @p node (its core 0). */
    void
    warmDirty(NodeId node, Addr line)
    {
        machine.node(node).fillForWrite(0, line);
    }

    /** Install a clean global-master line at @p node. */
    void
    warmGlobal(NodeId node, Addr line)
    {
        machine.node(node).fillFromMemory(0, line);
    }

    std::uint64_t
    readSnoops()
    {
        return machine.controller().stats().counterValue("read_snoops");
    }

    std::uint64_t
    readLinkMessages()
    {
        return machine.controller().stats().counterValue(
            "read_link_messages");
    }

    LS
    state(NodeId node, Addr line)
    {
        return machine.node(node).coreState(0, line);
    }

    Machine machine;
    std::vector<Completion> completions;
};

// --- Read flows, per-algorithm accounting ------------------------------------

TEST(ProtocolLazy, ReadFromMemorySnoopsAllRemoteNodes)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.completions[0].core, 0u);
    EXPECT_FALSE(f.completions[0].isWrite);
    // Lazy snoops every node on the way: N-1 = 3 when memory supplies.
    EXPECT_EQ(f.readSnoops(), 3u);
    // A single combined message crossing all 4 links.
    EXPECT_EQ(f.readLinkMessages(), 4u);
    // Memory fill installs the global master.
    EXPECT_EQ(f.state(0, lineAt(1)), LS::SharedGlobal);
}

TEST(ProtocolLazy, ReadStopsSnoopingAtTheSupplier)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.warmDirty(2, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    // Snoops at nodes 1 and 2 only; the found combined R/R passes 3.
    EXPECT_EQ(f.readSnoops(), 2u);
    EXPECT_EQ(f.readLinkMessages(), 4u);
    // Dirty supplier becomes Tagged; requester becomes local master.
    EXPECT_EQ(f.state(2, lineAt(1)), LS::Tagged);
    EXPECT_EQ(f.state(0, lineAt(1)), LS::SharedLocal);
    EXPECT_EQ(f.machine.memory().reads(), 0u);
}

TEST(ProtocolEager, ReadSnoopsEveryNodeEvenPastTheSupplier)
{
    ProtocolFixture f(Algorithm::Eager);
    f.warmDirty(1, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    // Eager always snoops all N-1 nodes (Table 1).
    EXPECT_EQ(f.readSnoops(), 3u);
    // First segment carries the combined message, the rest carry
    // request + reply: 1 + 2 * 3 = 7 (Table 1: ~2 messages).
    EXPECT_EQ(f.readLinkMessages(), 7u);
}

TEST(ProtocolEager, MemoryBoundReadAlsoSnoopsEverywhere)
{
    ProtocolFixture f(Algorithm::Eager);
    f.read(0, lineAt(1));
    f.run();
    EXPECT_EQ(f.readSnoops(), 3u);
    EXPECT_EQ(f.readLinkMessages(), 7u);
    EXPECT_EQ(f.machine.memory().reads(), 1u);
}

TEST(ProtocolOracle, SnoopsOnlyTheSupplier)
{
    ProtocolFixture f(Algorithm::Oracle);
    f.warmDirty(2, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.readSnoops(), 1u);
    // One combined message all the way round (Table 1).
    EXPECT_EQ(f.readLinkMessages(), 4u);
}

TEST(ProtocolOracle, MemoryBoundReadSnoopsNothing)
{
    ProtocolFixture f(Algorithm::Oracle);
    f.read(0, lineAt(1));
    f.run();
    // Paper §6.1.1: when the line comes from memory, Oracle does not
    // snoop at all.
    EXPECT_EQ(f.readSnoops(), 0u);
    EXPECT_EQ(f.readLinkMessages(), 4u);
    EXPECT_EQ(f.machine.memory().reads(), 1u);
}

TEST(ProtocolSupersetCon, SingleMessageAndFilteredSnoops)
{
    ProtocolFixture f(Algorithm::SupersetCon);
    f.warmDirty(2, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    // Nodes 1 and 3 predict negative (never trained) and forward; node
    // 2 predicts positive, snoops, supplies.
    EXPECT_EQ(f.readSnoops(), 1u);
    EXPECT_EQ(f.readLinkMessages(), 4u);
}

TEST(ProtocolSupersetAgg, RequestKeepsCirculatingPastSupplier)
{
    ProtocolFixture f(Algorithm::SupersetAgg);
    f.warmDirty(1, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    // Only the supplier node snoops...
    EXPECT_EQ(f.readSnoops(), 1u);
    // ...but its ForwardThenSnoop splits the message: the request goes
    // on from node 1 while the found reply follows: links 0->1 (1
    // combined) + 1->2->3->0 carrying request and reply = 1 + 6.
    EXPECT_EQ(f.readLinkMessages(), 7u);
}

TEST(ProtocolSubset, FalseNegativeStillSnoops)
{
    ProtocolFixture f(Algorithm::Subset);
    // Install a dirty supplier directly in the L2, bypassing predictor
    // training, then force the predictor to forget it (conflict-free
    // way: it was never trained because warmDirty trains it...). We
    // instead verify the trained path finds it with one snoop, and an
    // untrained node is still snooped via ForwardThenSnoop.
    f.warmDirty(2, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    // Nodes 1 and 3... node 1 predicts negative -> ForwardThenSnoop
    // (still snoops!); node 2 predicts positive -> SnoopThenForward.
    // Node 3 sees the found message only.
    EXPECT_EQ(f.readSnoops(), 2u);
    EXPECT_EQ(f.state(0, lineAt(1)), LS::SharedLocal);
}

TEST(ProtocolExact, DowngradeMakesReadsGoToMemory)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Exact);
    cfg.predictor = PredictorConfig::exact(512);
    Machine machine(cfg);
    std::vector<Completion> completions;
    machine.controller().setCompletionHandler(
        [&](CoreId core, Addr line, bool w) {
            completions.push_back(Completion{core, line, w});
        });
    machine.node(1).fillForWrite(0, lineAt(1));
    machine.node(1).downgrade(lineAt(1)); // as predictor conflict would
    EXPECT_EQ(machine.node(1).coreState(0, lineAt(1)), LS::SharedLocal);
    machine.controller().coreRead(0, lineAt(1));
    machine.queue().run();
    ASSERT_EQ(completions.size(), 1u);
    // Nobody can supply: the downgraded line is fetched from memory.
    EXPECT_EQ(machine.memory().reads(), 1u);
    // The downgrade-induced re-read is charged to the energy account.
    EXPECT_EQ(machine.energy().count(EnergyEvent::DowngradeReRead), 1u);
    EXPECT_EQ(machine.energy().count(EnergyEvent::DowngradeWriteback),
              1u);
}

// --- Local CMP paths -----------------------------------------------------------

TEST(ProtocolLocal, L2HitNeverTouchesTheRing)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.warmGlobal(0, lineAt(1));
    f.read(0, lineAt(1));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.readLinkMessages(), 0u);
    EXPECT_EQ(f.readSnoops(), 0u);
}

TEST(ProtocolLocal, MultiCoreCmpSuppliesLocally)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    cfg.coresPerCmp = 2;
    Machine machine(cfg);
    std::size_t completions = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completions; });
    machine.node(0).fillForWrite(0, lineAt(1)); // core 0 of CMP 0: D
    machine.controller().coreRead(1, lineAt(1)); // core 1 of CMP 0
    machine.queue().run();
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(machine.controller().stats().counterValue(
                  "read_local_supplies"),
              1u);
    EXPECT_EQ(machine.controller().stats().counterValue(
                  "read_ring_requests"),
              0u);
    EXPECT_EQ(machine.node(0).coreState(0, lineAt(1)), LS::Tagged);
    EXPECT_EQ(machine.node(0).coreState(1, lineAt(1)), LS::Shared);
}

TEST(ProtocolLocal, SameCmpReadsMerge)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    cfg.coresPerCmp = 2;
    Machine machine(cfg);
    std::vector<CoreId> done;
    machine.controller().setCompletionHandler(
        [&](CoreId c, Addr, bool) { done.push_back(c); });
    machine.controller().coreRead(0, lineAt(1));
    machine.controller().coreRead(1, lineAt(1));
    machine.queue().run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(machine.controller().stats().counterValue("read_merged"),
              1u);
    EXPECT_EQ(machine.controller().stats().counterValue(
                  "read_ring_requests"),
              1u);
}

// --- Write flows ----------------------------------------------------------------

TEST(ProtocolWrite, InvalidatesAllRemoteCopies)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.warmGlobal(1, lineAt(2));
    f.machine.node(2).fillFromRemote(0, lineAt(2));
    f.machine.node(3).fillFromRemote(0, lineAt(2));
    f.write(0, lineAt(2));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_TRUE(f.completions[0].isWrite);
    EXPECT_EQ(f.state(0, lineAt(2)), LS::Dirty);
    EXPECT_EQ(f.state(1, lineAt(2)), LS::Invalid);
    EXPECT_EQ(f.state(2, lineAt(2)), LS::Invalid);
    EXPECT_EQ(f.state(3, lineAt(2)), LS::Invalid);
    // The SG holder supplied the data; no memory read was needed.
    EXPECT_EQ(f.machine.memory().reads(), 0u);
}

TEST(ProtocolWrite, UpgradeFromSharedKeepsData)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.warmGlobal(0, lineAt(2));
    f.machine.node(1).fillFromRemote(0, lineAt(2));
    f.write(0, lineAt(2));
    f.run();
    EXPECT_EQ(f.state(0, lineAt(2)), LS::Dirty);
    EXPECT_EQ(f.state(1, lineAt(2)), LS::Invalid);
    EXPECT_EQ(f.machine.memory().reads(), 0u);
}

TEST(ProtocolWrite, WriteMissWithNoCopiesFetchesMemory)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.write(0, lineAt(2));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.state(0, lineAt(2)), LS::Dirty);
    EXPECT_EQ(f.machine.memory().reads(), 1u);
}

TEST(ProtocolWrite, SilentUpgradeFromExclusive)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.machine.node(0).fillFromMemory(0, lineAt(3));
    f.machine.node(0).l2(0).changeState(lineAt(3), LS::Exclusive);
    f.write(0, lineAt(3));
    f.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.state(0, lineAt(3)), LS::Dirty);
    EXPECT_EQ(f.machine.controller().stats().counterValue(
                  "write_ring_requests"),
              0u);
}

TEST(ProtocolWrite, DirtyRemoteSuppliesTheWriter)
{
    for (Algorithm a : {Algorithm::Lazy, Algorithm::Eager}) {
        ProtocolFixture f(a);
        f.warmDirty(2, lineAt(2));
        f.write(0, lineAt(2));
        f.run();
        ASSERT_EQ(f.completions.size(), 1u) << toString(a);
        EXPECT_EQ(f.state(0, lineAt(2)), LS::Dirty);
        EXPECT_EQ(f.state(2, lineAt(2)), LS::Invalid);
        EXPECT_EQ(f.machine.memory().reads(), 0u)
            << toString(a) << ": dirty data should move cache-to-cache";
    }
}

TEST(ProtocolWrite, EveryNodeIsInvalidatedRegardlessOfPredictor)
{
    // §5.3: writes cannot use the supplier predictor.
    ProtocolFixture f(Algorithm::SupersetCon);
    f.warmGlobal(1, lineAt(2));
    f.write(0, lineAt(2));
    f.run();
    EXPECT_EQ(f.machine.controller().stats().counterValue("write_snoops"),
              3u);
}

// --- Collisions -------------------------------------------------------------------

TEST(ProtocolCollision, ConcurrentWritesSerializeWithOneSquash)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.warmGlobal(0, lineAt(4));
    f.machine.node(2).fillFromRemote(0, lineAt(4));
    f.write(0, lineAt(4));
    f.write(2, lineAt(4));
    f.run();
    ASSERT_EQ(f.completions.size(), 2u);
    EXPECT_GE(f.machine.controller().stats().counterValue("collisions"),
              1u);
    EXPECT_GE(f.machine.controller().stats().counterValue("retries"), 1u);
    // Exactly one node ends with the dirty line.
    int dirty = 0;
    for (NodeId n = 0; n < 4; ++n)
        dirty += f.state(n, lineAt(4)) == LS::Dirty;
    EXPECT_EQ(dirty, 1);
    EXPECT_TRUE(f.machine.checker().consistent());
}

TEST(ProtocolCollision, ReadRacingAWriteEndsCoherent)
{
    ProtocolFixture f(Algorithm::Lazy);
    f.warmGlobal(3, lineAt(4));
    f.write(1, lineAt(4));
    f.read(2, lineAt(4));
    f.run();
    ASSERT_EQ(f.completions.size(), 2u);
    EXPECT_TRUE(f.machine.checker().consistent());
    // The writer must own the line: Dirty if the read serialized first
    // (or was invalidated on fill), Tagged if the retried read was
    // re-supplied by the writer afterwards.
    const LS writer_state = f.state(1, lineAt(4));
    EXPECT_TRUE(writer_state == LS::Dirty || writer_state == LS::Tagged)
        << toString(writer_state);
}

// --- Prefetch heuristic --------------------------------------------------------------

TEST(ProtocolPrefetch, HomePassingReadPrefetchesDram)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    Machine machine(cfg);
    machine.controller().setCompletionHandler([](CoreId, Addr, bool) {});
    // Line homed at node 2 and requested by node 0: the request passes
    // the home on its way round.
    machine.controller().coreRead(0, lineAt(2));
    machine.queue().run();
    EXPECT_EQ(machine.memory().stats().counterValue("prefetches"), 1u);
    EXPECT_EQ(machine.memory().stats().counterValue("reads_prefetched"),
              1u);
}

TEST(ProtocolPrefetch, DisabledPrefetchFallsBackToSlowRemote)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    cfg.memory.prefetchEnabled = false;
    Machine machine(cfg);
    machine.controller().setCompletionHandler([](CoreId, Addr, bool) {});
    machine.controller().coreRead(0, lineAt(2));
    machine.queue().run();
    EXPECT_EQ(machine.memory().stats().counterValue("reads_remote"), 1u);
}

// --- Invariants after mixed traffic ---------------------------------------------------

TEST(ProtocolInvariants, CheckerCleanAfterMixedTraffic)
{
    for (Algorithm a : paperAlgorithms()) {
        ProtocolFixture f(a);
        for (int round = 0; round < 3; ++round) {
            for (NodeId n = 0; n < 4; ++n) {
                f.read(n, lineAt(10 + round));
                if ((n + round) % 2 == 0)
                    f.write(n, lineAt(20 + n));
            }
        }
        f.run();
        const auto violations = f.machine.checker().check();
        EXPECT_TRUE(violations.empty())
            << toString(a) << ": " << violations.size()
            << " violations, first: "
            << (violations.empty() ? "" : violations[0].description);
        EXPECT_EQ(f.machine.controller().outstanding(), 0u)
            << toString(a);
    }
}

} // namespace
} // namespace flexsnoop
