/**
 * @file
 * End-to-end integration tests: full workloads through every snooping
 * algorithm, checking protocol invariants, drain, and the qualitative
 * relationships the paper establishes between the algorithms.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/simulation.hh"
#include "workload/synthetic_generator.hh"
#include "workload/uniform_generator.hh"

namespace flexsnoop
{
namespace
{

class AlgorithmIntegration : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(AlgorithmIntegration, MiniWorkloadRunsToCompletion)
{
    const Algorithm algo = GetParam();
    MachineConfig cfg = MachineConfig::paperDefault(algo, 1);
    WorkloadProfile profile = miniProfile();
    SyntheticGenerator gen(profile);
    const RunResult r = runSimulation(cfg, gen.generate(), profile.name);

    EXPECT_GT(r.execCycles, 0u);
    EXPECT_GT(r.readRingRequests, 0u) << "expected ring traffic";
    EXPECT_EQ(r.algorithm, toString(algo));
}

TEST_P(AlgorithmIntegration, MultiCorePerCmpRunsToCompletion)
{
    const Algorithm algo = GetParam();
    MachineConfig cfg = MachineConfig::paperDefault(algo, 4);
    WorkloadProfile profile = miniProfile();
    profile.numCores = 32;
    profile.coresPerCmp = 4;
    profile.refsPerCore = 600;
    profile.warmupRefs = 150;
    SyntheticGenerator gen(profile);
    const RunResult r = runSimulation(cfg, gen.generate(), profile.name);
    EXPECT_GT(r.execCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmIntegration,
    ::testing::Values(Algorithm::Lazy, Algorithm::Eager, Algorithm::Oracle,
                      Algorithm::Subset, Algorithm::SupersetCon,
                      Algorithm::SupersetAgg, Algorithm::Exact,
                      Algorithm::AdaptiveSuperset),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

/** Shared uniform-workload sweep for the relationship tests. */
class UniformSweep : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        UniformWorkloadParams params;
        params.numCores = 8;
        params.linesPerReader = 48;
        const CoreTraces traces = UniformGenerator(params).generate();
        results = new std::map<Algorithm, RunResult>();
        for (Algorithm a : paperAlgorithms()) {
            MachineConfig cfg = MachineConfig::paperDefault(a, 1);
            (*results)[a] = runSimulation(cfg, traces, "uniform");
        }
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        results = nullptr;
    }

    static const RunResult &get(Algorithm a) { return results->at(a); }

    static std::map<Algorithm, RunResult> *results;
};

std::map<Algorithm, RunResult> *UniformSweep::results = nullptr;

TEST_F(UniformSweep, EagerSnoopsAllNodes)
{
    // Table 1: Eager performs N-1 snoop operations per request.
    EXPECT_NEAR(get(Algorithm::Eager).snoopsPerReadRequest, 7.0, 0.1);
}

TEST_F(UniformSweep, LazySnoopsAboutHalfTheNodes)
{
    // Table 1 says (N-1)/2 = 3.5; with the supplier uniformly 1..7 hops
    // away the exact mean snoop count is 4.0.
    EXPECT_NEAR(get(Algorithm::Lazy).snoopsPerReadRequest, 4.0, 0.3);
}

TEST_F(UniformSweep, OracleSnoopsExactlyOnce)
{
    EXPECT_NEAR(get(Algorithm::Oracle).snoopsPerReadRequest, 1.0, 0.05);
}

TEST_F(UniformSweep, EagerUsesAboutTwiceTheMessagesOfLazy)
{
    const double lazy = get(Algorithm::Lazy).readLinkMessagesPerRequest;
    const double eager = get(Algorithm::Eager).readLinkMessagesPerRequest;
    EXPECT_GT(eager, 1.6 * lazy);
    EXPECT_LT(eager, 2.1 * lazy);
}

TEST_F(UniformSweep, LazyIsSlowestOracleIsFastest)
{
    const auto lazy = get(Algorithm::Lazy).execCycles;
    const auto eager = get(Algorithm::Eager).execCycles;
    const auto oracle = get(Algorithm::Oracle).execCycles;
    EXPECT_GT(lazy, eager);
    EXPECT_LE(oracle, eager * 101 / 100);
}

TEST_F(UniformSweep, EagerConsumesTheMostEnergy)
{
    for (Algorithm a : paperAlgorithms()) {
        if (a == Algorithm::Eager)
            continue;
        EXPECT_GT(get(Algorithm::Eager).energyNj, get(a).energyNj)
            << "Eager should out-consume " << toString(a);
    }
}

TEST_F(UniformSweep, EveryReadFindsACacheSupplier)
{
    // The uniform workload is built so that a supplier always exists.
    for (Algorithm a : paperAlgorithms()) {
        const auto &r = get(a);
        EXPECT_EQ(r.memoryFetches, 0u)
            << toString(a) << " sent reads to memory";
        EXPECT_GT(r.cacheSupplies, 0u);
    }
}

TEST_F(UniformSweep, SupersetConHasLazyMessageCount)
{
    // Table 3: Superset Con (and Exact) use a single combined message.
    const double lazy = get(Algorithm::Lazy).readLinkMessagesPerRequest;
    EXPECT_NEAR(get(Algorithm::SupersetCon).readLinkMessagesPerRequest,
                lazy, 0.05 * lazy);
    EXPECT_NEAR(get(Algorithm::Exact).readLinkMessagesPerRequest, lazy,
                0.05 * lazy);
}

TEST(IntegrationJbbLike, MostReadsGoToMemory)
{
    WorkloadProfile profile = specJbbProfile();
    profile.refsPerCore = 3000;
    profile.warmupRefs = 800;
    SyntheticGenerator gen(profile);
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy, 1);
    const RunResult r = runSimulation(cfg, gen.generate(), profile.name);
    EXPECT_GT(r.memoryFetches, r.cacheSupplies)
        << "SPECjbb-like traffic should be memory-bound";
    // Paper: Lazy snoops close to all 7 nodes on SPECjbb.
    EXPECT_GT(r.snoopsPerReadRequest, 5.5);
}

TEST(IntegrationSplashLike, CacheSuppliesAreCommon)
{
    WorkloadProfile profile = splash2Profiles().front(); // barnes
    profile.refsPerCore = 1500;
    profile.warmupRefs = 400;
    SyntheticGenerator gen(profile);
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy, 4);
    const RunResult r = runSimulation(cfg, gen.generate(), profile.name);
    EXPECT_GT(r.cacheSupplies, 0u);
    const double supply_rate =
        static_cast<double>(r.cacheSupplies) /
        (r.cacheSupplies + r.memoryFetches);
    EXPECT_GT(supply_rate, 0.3)
        << "SPLASH-like sharing should produce cache-to-cache transfers";
}

TEST(IntegrationDeterminism, SameSeedSameResult)
{
    WorkloadProfile profile = miniProfile();
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();
    MachineConfig cfg =
        MachineConfig::paperDefault(Algorithm::SupersetAgg, 1);
    const RunResult a = runSimulation(cfg, traces, "mini");
    const RunResult b = runSimulation(cfg, traces, "mini");
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.readSnoops, b.readSnoops);
    EXPECT_EQ(a.readLinkMessages, b.readLinkMessages);
    EXPECT_DOUBLE_EQ(a.energyNj, b.energyNj);
}

} // namespace
} // namespace flexsnoop
