/**
 * @file
 * Unit tests for the counting Bloom filter, including its central
 * correctness property: no false negatives under balanced
 * insert/remove traffic.
 */

#include <gtest/gtest.h>

#include <set>

#include "predictor/bloom_filter.hh"
#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

TEST(BloomFilter, EmptyContainsNothing)
{
    CountingBloomFilter filter({10, 4, 7});
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_FALSE(filter.mayContain(lineAt(i)));
    EXPECT_EQ(filter.population(), 0u);
}

TEST(BloomFilter, InsertedLineIsAlwaysFound)
{
    CountingBloomFilter filter({10, 4, 7});
    filter.insert(lineAt(42));
    EXPECT_TRUE(filter.mayContain(lineAt(42)));
    EXPECT_EQ(filter.population(), 1u);
}

TEST(BloomFilter, RemoveRestoresEmptiness)
{
    CountingBloomFilter filter({10, 4, 7});
    filter.insert(lineAt(42));
    filter.remove(lineAt(42));
    EXPECT_FALSE(filter.mayContain(lineAt(42)));
    EXPECT_EQ(filter.population(), 0u);
}

TEST(BloomFilter, CountersHandleDuplicateInserts)
{
    CountingBloomFilter filter({10, 4, 7});
    filter.insert(lineAt(1));
    filter.insert(lineAt(1));
    filter.remove(lineAt(1));
    // One instance is still in; a plain bit-vector filter would have
    // lost it.
    EXPECT_TRUE(filter.mayContain(lineAt(1)));
    filter.remove(lineAt(1));
    EXPECT_FALSE(filter.mayContain(lineAt(1)));
}

TEST(BloomFilter, AliasingCausesFalsePositives)
{
    // Tiny filter to force aliasing.
    CountingBloomFilter filter({2, 2});
    // Insert lines covering all 4x4 combinations.
    for (std::uint64_t i = 0; i < 16; ++i)
        filter.insert(lineAt(i));
    // A line beyond the inserted set aliases into occupied counters.
    EXPECT_TRUE(filter.mayContain(lineAt(16)));
}

TEST(BloomFilter, NoFalseNegativesProperty)
{
    // Property: any currently-inserted line must be reported present,
    // under randomized insert/remove churn.
    CountingBloomFilter filter({9, 9, 6});
    Rng rng(1234);
    std::set<Addr> inserted;
    for (int step = 0; step < 20000; ++step) {
        if (inserted.empty() || rng.chance(0.55)) {
            const Addr line = lineAt(rng.nextBelow(100000));
            if (!inserted.count(line)) {
                filter.insert(line);
                inserted.insert(line);
            }
        } else {
            auto it = inserted.begin();
            std::advance(it, rng.nextBelow(inserted.size()));
            filter.remove(*it);
            inserted.erase(it);
        }
    }
    for (Addr line : inserted)
        ASSERT_TRUE(filter.mayContain(line));
    EXPECT_EQ(filter.population(), inserted.size());
}

TEST(BloomFilter, PaperYConfigurationStorage)
{
    // y filter: fields 10, 4, 7 bits -> (1024 + 16 + 128) entries of
    // 17 bits = ~2.5 KB (paper Table 4).
    CountingBloomFilter filter({10, 4, 7});
    EXPECT_EQ(filter.storageBits(), (1024u + 16u + 128u) * 17u);
    EXPECT_NEAR(filter.storageBits() / 8.0 / 1024.0, 2.5, 0.2);
}

TEST(BloomFilter, PaperNConfigurationStorage)
{
    // n filter: fields 9, 9, 6 bits -> (512 + 512 + 64) * 17 bits
    // = ~2.3 KB (paper Table 4).
    CountingBloomFilter filter({9, 9, 6});
    EXPECT_EQ(filter.storageBits(), (512u + 512u + 64u) * 17u);
    EXPECT_NEAR(filter.storageBits() / 8.0 / 1024.0, 2.3, 0.2);
}

TEST(BloomFilter, ClearEmptiesEverything)
{
    CountingBloomFilter filter({10, 4, 7});
    for (std::uint64_t i = 0; i < 50; ++i)
        filter.insert(lineAt(i));
    filter.clear();
    EXPECT_EQ(filter.population(), 0u);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_FALSE(filter.mayContain(lineAt(i)));
}

TEST(BloomFilter, FieldsUseDisjointAddressBits)
{
    // Two lines differing only above all field bits alias fully.
    CountingBloomFilter filter({4, 4});
    const Addr a = lineAt(5);
    const Addr b = lineAt(5 + (1ull << 8)); // beyond 4+4 field bits
    filter.insert(a);
    EXPECT_TRUE(filter.mayContain(b)) << "full alias expected";
    filter.remove(a);
    EXPECT_FALSE(filter.mayContain(b));
}

TEST(BloomFilter, SingleFieldDegeneratesToDirectTable)
{
    CountingBloomFilter filter({6});
    filter.insert(lineAt(3));
    EXPECT_TRUE(filter.mayContain(lineAt(3)));
    EXPECT_FALSE(filter.mayContain(lineAt(4)));
    // Aliases at field wrap-around (64 entries).
    EXPECT_TRUE(filter.mayContain(lineAt(3 + 64)));
}

} // namespace
} // namespace flexsnoop
