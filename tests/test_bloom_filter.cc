/**
 * @file
 * Unit tests for the counting Bloom filter, including its central
 * correctness property: no false negatives under balanced
 * insert/remove traffic.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "predictor/bloom_filter.hh"
#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

TEST(BloomFilter, EmptyContainsNothing)
{
    CountingBloomFilter filter({10, 4, 7});
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_FALSE(filter.mayContain(lineAt(i)));
    EXPECT_EQ(filter.population(), 0u);
}

TEST(BloomFilter, InsertedLineIsAlwaysFound)
{
    CountingBloomFilter filter({10, 4, 7});
    filter.insert(lineAt(42));
    EXPECT_TRUE(filter.mayContain(lineAt(42)));
    EXPECT_EQ(filter.population(), 1u);
}

TEST(BloomFilter, RemoveRestoresEmptiness)
{
    CountingBloomFilter filter({10, 4, 7});
    filter.insert(lineAt(42));
    filter.remove(lineAt(42));
    EXPECT_FALSE(filter.mayContain(lineAt(42)));
    EXPECT_EQ(filter.population(), 0u);
}

TEST(BloomFilter, CountersHandleDuplicateInserts)
{
    CountingBloomFilter filter({10, 4, 7});
    filter.insert(lineAt(1));
    filter.insert(lineAt(1));
    filter.remove(lineAt(1));
    // One instance is still in; a plain bit-vector filter would have
    // lost it.
    EXPECT_TRUE(filter.mayContain(lineAt(1)));
    filter.remove(lineAt(1));
    EXPECT_FALSE(filter.mayContain(lineAt(1)));
}

TEST(BloomFilter, AliasingCausesFalsePositives)
{
    // Tiny filter to force aliasing.
    CountingBloomFilter filter({2, 2});
    // Insert lines covering all 4x4 combinations.
    for (std::uint64_t i = 0; i < 16; ++i)
        filter.insert(lineAt(i));
    // A line beyond the inserted set aliases into occupied counters.
    EXPECT_TRUE(filter.mayContain(lineAt(16)));
}

TEST(BloomFilter, NoFalseNegativesProperty)
{
    // Property: any currently-inserted line must be reported present,
    // under randomized insert/remove churn.
    CountingBloomFilter filter({9, 9, 6});
    Rng rng(1234);
    std::set<Addr> inserted;
    for (int step = 0; step < 20000; ++step) {
        if (inserted.empty() || rng.chance(0.55)) {
            const Addr line = lineAt(rng.nextBelow(100000));
            if (!inserted.count(line)) {
                filter.insert(line);
                inserted.insert(line);
            }
        } else {
            auto it = inserted.begin();
            std::advance(it, rng.nextBelow(inserted.size()));
            filter.remove(*it);
            inserted.erase(it);
        }
    }
    for (Addr line : inserted)
        ASSERT_TRUE(filter.mayContain(line));
    EXPECT_EQ(filter.population(), inserted.size());
}

TEST(BloomFilter, PaperYConfigurationStorage)
{
    // y filter: fields 10, 4, 7 bits -> (1024 + 16 + 128) entries of
    // 17 bits = ~2.5 KB (paper Table 4).
    CountingBloomFilter filter({10, 4, 7});
    EXPECT_EQ(filter.storageBits(), (1024u + 16u + 128u) * 17u);
    EXPECT_NEAR(filter.storageBits() / 8.0 / 1024.0, 2.5, 0.2);
}

TEST(BloomFilter, PaperNConfigurationStorage)
{
    // n filter: fields 9, 9, 6 bits -> (512 + 512 + 64) * 17 bits
    // = ~2.3 KB (paper Table 4).
    CountingBloomFilter filter({9, 9, 6});
    EXPECT_EQ(filter.storageBits(), (512u + 512u + 64u) * 17u);
    EXPECT_NEAR(filter.storageBits() / 8.0 / 1024.0, 2.3, 0.2);
}

TEST(BloomFilter, ClearEmptiesEverything)
{
    CountingBloomFilter filter({10, 4, 7});
    for (std::uint64_t i = 0; i < 50; ++i)
        filter.insert(lineAt(i));
    filter.clear();
    EXPECT_EQ(filter.population(), 0u);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_FALSE(filter.mayContain(lineAt(i)));
}

TEST(BloomFilter, FieldsUseDisjointAddressBits)
{
    // Two lines differing only above all field bits alias fully.
    CountingBloomFilter filter({4, 4});
    const Addr a = lineAt(5);
    const Addr b = lineAt(5 + (1ull << 8)); // beyond 4+4 field bits
    filter.insert(a);
    EXPECT_TRUE(filter.mayContain(b)) << "full alias expected";
    filter.remove(a);
    EXPECT_FALSE(filter.mayContain(b));
}

TEST(BloomFilter, SingleFieldDegeneratesToDirectTable)
{
    CountingBloomFilter filter({6});
    filter.insert(lineAt(3));
    EXPECT_TRUE(filter.mayContain(lineAt(3)));
    EXPECT_FALSE(filter.mayContain(lineAt(4)));
    // Aliases at field wrap-around (64 entries).
    EXPECT_TRUE(filter.mayContain(lineAt(3 + 64)));
}

TEST(BloomFilter, SignatureQueryMatchesAddressQuery)
{
    // The precomputed-index query path must answer exactly like the
    // hashing path, for hits, misses and aliases alike.
    CountingBloomFilter filter({9, 9, 6});
    Rng rng(99);
    for (int i = 0; i < 3000; ++i)
        filter.insert(lineAt(rng.nextBelow(100000)));
    for (int i = 0; i < 20000; ++i) {
        const Addr line = lineAt(rng.nextBelow(120000));
        std::uint32_t sig[ProbeSignature::kMaxFields];
        ASSERT_EQ(filter.fillSignature(line, sig), 3u);
        ASSERT_TRUE(filter.signatureMatches(line, sig));
        ASSERT_EQ(filter.mayContain(sig), filter.mayContain(line));
    }
}

TEST(BloomFilter, SharedGeometryFiltersAcceptForeignSignatures)
{
    // A signature computed against one filter instance answers
    // correctly on any other instance with the same field widths — the
    // property that lets one ring-issue-time signature serve every
    // node's predictor on the traversal.
    CountingBloomFilter source({10, 4, 7});
    CountingBloomFilter sink({10, 4, 7});
    sink.insert(lineAt(77));
    std::uint32_t sig[ProbeSignature::kMaxFields];
    source.fillSignature(lineAt(77), sig);
    EXPECT_TRUE(sink.mayContain(sig));
    source.fillSignature(lineAt(78), sig);
    EXPECT_FALSE(sink.mayContain(sig));
}

TEST(BloomFilter, CounterSaturationIsStickyAndSafe)
{
    // Drive one entry past the 16-bit ceiling: the counter pins at
    // kCounterMax, later removes never decrement it (its true count is
    // unknowable), so the entry keeps answering "maybe present" —
    // conservative, preserving no-false-negatives.
    CountingBloomFilter filter({2});
    const Addr line = lineAt(1);
    const unsigned total = 0x10010; // > 65535 inserts of one line
    for (unsigned i = 0; i < total; ++i)
        filter.insert(line);
    EXPECT_EQ(filter.counterValue(0, 1), CountingBloomFilter::kCounterMax);
    EXPECT_TRUE(filter.mayContain(line));
    for (unsigned i = 0; i < total; ++i)
        filter.remove(line);
    EXPECT_EQ(filter.counterValue(0, 1), CountingBloomFilter::kCounterMax);
    EXPECT_TRUE(filter.mayContain(line));
    EXPECT_TRUE(filter.crossCheckConsistent());
}

TEST(BloomFilterDeathTest, UnderflowAssertsInDebug)
{
    CountingBloomFilter filter({4});
    EXPECT_DEBUG_DEATH(filter.remove(lineAt(9)), "underflow");
#ifdef NDEBUG
    // Release builds clamp at zero instead of wrapping the counter to
    // 0xFFFF (which would poison the entry as a permanent positive).
    EXPECT_FALSE(filter.mayContain(lineAt(9)));
    EXPECT_EQ(filter.counterValue(0, 9), 0u);
    EXPECT_TRUE(filter.crossCheckConsistent());
#endif
}

TEST(BloomFilter, RandomizedStormKeepsBitmapAndCountersInAgreement)
{
    // The split layout's invariant: the packed query bitmap's bit is 1
    // exactly when the cold counter is non-zero, across arbitrary
    // aliasing insert/remove storms. Run on the "n" geometry with a
    // small address space to force heavy aliasing.
    CountingBloomFilter filter({9, 9, 6});
    Rng rng(20260808);
    std::vector<Addr> multiset;
    for (int step = 0; step < 50000; ++step) {
        if (multiset.empty() || rng.chance(0.52)) {
            const Addr line = lineAt(rng.nextBelow(4096));
            filter.insert(line);
            multiset.push_back(line);
        } else {
            const std::size_t pick = rng.nextBelow(multiset.size());
            filter.remove(multiset[pick]);
            multiset[pick] = multiset.back();
            multiset.pop_back();
        }
        if (step % 1024 == 0) {
            ASSERT_TRUE(filter.crossCheckConsistent()) << "step " << step;
        }
    }
    ASSERT_TRUE(filter.crossCheckConsistent());
    EXPECT_EQ(filter.population(), multiset.size());
    for (Addr line : multiset)
        ASSERT_TRUE(filter.mayContain(line));
    // Drain and confirm a coherent empty state.
    for (Addr line : multiset)
        filter.remove(line);
    EXPECT_EQ(filter.population(), 0u);
    EXPECT_TRUE(filter.crossCheckConsistent());
}

} // namespace
} // namespace flexsnoop
