/**
 * @file
 * Hierarchical-topology subsystem: geometry arithmetic (block mapping,
 * wrap-around, boundary links), configuration validation diagnostics,
 * bridge gateway behaviour (skip on a negative aggregate, descend when
 * a member may hold the line), per-level energy accounting, the
 * runHierSweep experiment driver, and a fault soak with per-level
 * fault rates. docs/TOPOLOGY.md documents the model under test.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/config_parser.hh"
#include "core/experiment.hh"
#include "core/machine.hh"
#include "core/simulation.hh"
#include "topology/topology.hh"
#include "workload/core_model.hh"
#include "workload/profile.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

TopologyConfig
hierConfig(std::size_t local_rings)
{
    TopologyConfig cfg;
    cfg.kind = TopologyKind::Hier;
    cfg.localRings = local_rings;
    return cfg;
}

TEST(TopologyGeometry, BlockMapping)
{
    const Topology t(32, hierConfig(4));
    EXPECT_TRUE(t.hierarchical());
    EXPECT_EQ(t.numBlocks(), 4u);
    EXPECT_EQ(t.blockSize(), 8u);

    EXPECT_EQ(t.blockOf(0), 0u);
    EXPECT_EQ(t.blockOf(7), 0u);
    EXPECT_EQ(t.blockOf(8), 1u);
    EXPECT_EQ(t.blockOf(31), 3u);

    EXPECT_EQ(t.headOf(0), 0u);
    EXPECT_EQ(t.headOf(3), 24u);
    EXPECT_TRUE(t.isHead(0));
    EXPECT_TRUE(t.isHead(16));
    EXPECT_FALSE(t.isHead(1));
    EXPECT_FALSE(t.isHead(31));

    EXPECT_TRUE(t.sameBlock(8, 15));
    EXPECT_FALSE(t.sameBlock(7, 8));

    EXPECT_EQ(t.posInBlock(8), 0u);
    EXPECT_EQ(t.posInBlock(15), 7u);
}

TEST(TopologyGeometry, WrapAndBoundaryEdges)
{
    const Topology t(32, hierConfig(4));

    // The global ring wraps: the last block's head forwards to node 0.
    EXPECT_EQ(t.nextHead(0), 8u);
    EXPECT_EQ(t.nextHead(24), 0u);

    // Only the link leaving a block's last member crosses a boundary --
    // including the wrap-around link leaving node N-1.
    EXPECT_TRUE(t.linkCrossesBlock(7));
    EXPECT_TRUE(t.linkCrossesBlock(31));
    EXPECT_FALSE(t.linkCrossesBlock(0));
    EXPECT_FALSE(t.linkCrossesBlock(8));
    EXPECT_FALSE(t.linkCrossesBlock(30));
}

TEST(TopologyGeometry, DegenerateSingleRingIsNotHierarchical)
{
    EXPECT_FALSE(hierConfig(1).hierarchical());
    const Topology t(8, hierConfig(1));
    EXPECT_FALSE(t.hierarchical());
    EXPECT_EQ(t.numBlocks(), 1u);
    EXPECT_EQ(t.blockSize(), 8u);
    EXPECT_FALSE(t.isHead(0));
    EXPECT_FALSE(t.linkCrossesBlock(7));
}

TEST(TopologyConfigValidate, NamesTheViolatedConstraint)
{
    EXPECT_THROW(Topology(32, hierConfig(0)), std::invalid_argument);
    // local_rings must divide the node count.
    EXPECT_THROW(Topology(32, hierConfig(5)), std::invalid_argument);
    // A local ring of one node is not a ring.
    EXPECT_THROW(Topology(8, hierConfig(8)), std::invalid_argument);

    TopologyConfig zero_hop = hierConfig(4);
    zero_hop.globalHopCycles = 0;
    EXPECT_THROW(Topology(32, zero_hop), std::invalid_argument);

    // 8 nodes / 2 rings of 4 is the smallest legal hierarchy.
    EXPECT_NO_THROW(Topology(8, hierConfig(2)));
}

TEST(TopologyNames, KindParsingListsValidValues)
{
    EXPECT_EQ(topologyKindFromName("flat"), TopologyKind::Flat);
    EXPECT_EQ(topologyKindFromName("HIER"), TopologyKind::Hier);
    EXPECT_EQ(topologyKindFromName("hierarchical"), TopologyKind::Hier);
    try {
        topologyKindFromName("torus");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("flat, hier"),
                  std::string::npos);
    }
}

TEST(TopologyNames, UnknownProfileAndAlgorithmListValidValues)
{
    try {
        profileByName("no-such-profile");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("valid profiles"), std::string::npos);
        EXPECT_NE(what.find("specjbb"), std::string::npos);
        EXPECT_NE(what.find("barnes"), std::string::npos);
    }
    try {
        algorithmFromName("no-such-algorithm");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("valid algorithms"), std::string::npos);
        EXPECT_NE(what.find("supersetcon"), std::string::npos);
    }
}

TEST(TopologyNames, ConfigParserKeysRoundTrip)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Lazy, 1);
    applyOverride(cfg, "topology=hier");
    applyOverride(cfg, "local_rings=2");
    applyOverride(cfg, "global_hop_cycles=50");
    applyOverride(cfg, "global_algorithm=supersetcon");
    EXPECT_EQ(cfg.topology.kind, TopologyKind::Hier);
    EXPECT_EQ(cfg.topology.localRings, 2u);
    EXPECT_EQ(cfg.topology.globalHopCycles, 50u);
    EXPECT_EQ(cfg.topology.globalAlgorithm, "supersetcon");
    EXPECT_NE(describeConfig(cfg).find("topology=hier"),
              std::string::npos);
    EXPECT_NE(describeConfig(cfg).find("local_rings=2"),
              std::string::npos);

    EXPECT_THROW(applyOverride(cfg, "topology=mesh"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "local_rings=0"),
                 std::invalid_argument);
    EXPECT_THROW(applyOverride(cfg, "global_algorithm=bogus"),
                 std::invalid_argument);
}

/** 32 single-core CMPs, 4 local rings of 8. Arms the fault machinery
 *  with a never-firing drop rate so the controller's negative-round
 *  completeness checks (visits == N-1 at the conclusion) are active. */
MachineConfig
hierMachineConfig(Algorithm a, bool checked_visits = true)
{
    MachineConfig cfg = MachineConfig::paperDefault(a, 1);
    cfg.setNumCmps(32);
    cfg.topology.kind = TopologyKind::Hier;
    cfg.topology.localRings = 4;
    if (checked_visits) {
        cfg.faults.dropRate = 1e-300; // armed, never fires
        cfg.faults.seed = 42;
        cfg.coherence.watchdogCycles = 200000;
    }
    return cfg;
}

struct OneRead
{
    Cycle end = 0;
    bool done = false;
    std::uint64_t bridgeSkips = 0;
    std::uint64_t bridgeDescends = 0;
    std::uint64_t snoops = 0;
    std::uint64_t supplies = 0;
};

/** Drive reads of @p line from @p requesters in sequence and report
 *  the machine's totals afterwards. */
OneRead
driveReads(Machine &m, std::initializer_list<CoreId> requesters,
           Addr line)
{
    OneRead o;
    std::size_t completions = 0;
    m.controller().setCompletionHandler(
        [&completions](CoreId, Addr, bool) { ++completions; });
    for (CoreId core : requesters) {
        m.controller().coreRead(core, line);
        m.queue().run();
    }
    o.end = m.queue().now();
    o.done = completions == requesters.size();
    o.bridgeSkips = m.controller().bridgeSkips();
    o.bridgeDescends = m.controller().bridgeDescends();
    o.snoops = m.controller().stats().counterValue("read_snoops");
    o.supplies =
        m.controller().stats().counterValue("read_cache_supplies");
    return o;
}

/** A fresh line no cache holds: every remote block's supplier aggregate
 *  is empty, so a negative-to-Forward bridge skips all three remote
 *  blocks and the round still completes with full coverage. */
TEST(BridgeGateway, NegativeRoundSkipsRemoteBlocks)
{
    Machine m(hierMachineConfig(Algorithm::SupersetCon));
    const OneRead o = driveReads(m, {0}, kLineSizeBytes);
    EXPECT_TRUE(o.done);
    EXPECT_EQ(o.bridgeSkips, 3u);
    EXPECT_EQ(o.bridgeDescends, 0u);
    EXPECT_EQ(o.supplies, 0u); // nobody had it: memory answers
}

/** Same negative round from a mid-block requester: its own block is
 *  never bridged (the request leaves flat and the conclusion returns
 *  flat), so exactly the three remote heads skip. */
TEST(BridgeGateway, RequesterBlockIsNeverSkipped)
{
    Machine m(hierMachineConfig(Algorithm::SupersetCon));
    const OneRead o = driveReads(m, {12}, kLineSizeBytes);
    EXPECT_TRUE(o.done);
    EXPECT_EQ(o.bridgeSkips, 3u);
    EXPECT_EQ(o.bridgeDescends, 0u);
}

/** And from the last node on the ring (wrap-around edge). */
TEST(BridgeGateway, LastNodeRequesterWrapsCleanly)
{
    Machine m(hierMachineConfig(Algorithm::SupersetCon));
    const OneRead o = driveReads(m, {31}, kLineSizeBytes);
    EXPECT_TRUE(o.done);
    EXPECT_EQ(o.bridgeSkips, 3u);
}

/** Once a member of a remote block supplies the line, that block's
 *  aggregate turns positive and its bridge descends; the supplier
 *  answers the snoop instead of memory. */
TEST(BridgeGateway, DescendsIntoBlockWithSupplier)
{
    Machine m(hierMachineConfig(Algorithm::SupersetCon));
    const Addr line = kLineSizeBytes;

    // Node 0 faults the line in (memory; 3 skips as above). Node 12's
    // later read crosses heads 16, 24, and 0; block 0 now holds a
    // supplier, so its bridge must descend while 16/24 still skip.
    const OneRead o = driveReads(m, {0, 12}, line);
    EXPECT_TRUE(o.done);
    EXPECT_EQ(o.bridgeDescends, 1u);
    EXPECT_EQ(o.bridgeSkips, 5u);
    EXPECT_EQ(o.supplies, 1u);
}

/** Lazy's action table has no negative-to-Forward row, so an active
 *  read is never skipped -- the hierarchy only re-times the links. */
TEST(BridgeGateway, LazyNeverSkipsActiveReads)
{
    Machine m(hierMachineConfig(Algorithm::Lazy));
    const OneRead o = driveReads(m, {0}, kLineSizeBytes);
    EXPECT_TRUE(o.done);
    EXPECT_EQ(o.bridgeSkips, 0u);
    EXPECT_EQ(o.snoops, 31u); // every remote node still snooped
}

/** Per-level energy accounting: global-ring traversals and bridge
 *  aggregate lookups land in their own categories, and only for a
 *  hierarchical machine. */
TEST(BridgeGateway, PerLevelEnergyCategories)
{
    Machine hier(hierMachineConfig(Algorithm::SupersetCon));
    driveReads(hier, {0}, kLineSizeBytes);
    hier.finalizeEnergy();
    EXPECT_GT(hier.energy().categoryNj(EnergyEvent::GlobalRingLinkMessage),
              0.0);
    EXPECT_GT(hier.energy().categoryNj(EnergyEvent::BridgePredictorAccess),
              0.0);
    EXPECT_GT(hier.globalLinkTraversals(), 0u);

    MachineConfig flat_cfg =
        MachineConfig::paperDefault(Algorithm::SupersetCon, 1);
    flat_cfg.setNumCmps(32);
    Machine flat(flat_cfg);
    driveReads(flat, {0}, kLineSizeBytes);
    flat.finalizeEnergy();
    EXPECT_EQ(flat.energy().categoryNj(EnergyEvent::GlobalRingLinkMessage),
              0.0);
    EXPECT_EQ(flat.energy().categoryNj(EnergyEvent::BridgePredictorAccess),
              0.0);
    EXPECT_EQ(flat.globalLinkTraversals(), 0u);
}

TEST(HierSweep, FlatAndHierCellsShareTracesAndOrder)
{
    WorkloadProfile base = miniProfile();
    base.refsPerCore = 150;
    base.warmupRefs = 40;
    const auto cells = runHierSweep({Algorithm::SupersetCon}, {16},
                                    /*jobs=*/2, /*global_hop_cycles=*/62,
                                    base);
    ASSERT_EQ(cells.size(), 2u);

    EXPECT_FALSE(cells[0].hier);
    EXPECT_EQ(cells[0].numCmps, 16u);
    EXPECT_EQ(cells[0].localRings, 1u);
    EXPECT_EQ(cells[0].result.bridgeSkips, 0u);
    EXPECT_EQ(cells[0].result.globalLinkMessages, 0u);

    EXPECT_TRUE(cells[1].hier);
    EXPECT_EQ(cells[1].localRings, 2u);
    EXPECT_GT(cells[1].result.globalLinkMessages, 0u);
    EXPECT_GT(cells[1].result.bridgeSkips + cells[1].result.bridgeDescends,
              0u);
    // Same traces: both cells simulated the same workload label and
    // completed. (Raw ring-request counts differ legitimately: timing
    // shifts change collision/retry counts.)
    EXPECT_EQ(cells[0].result.workload, cells[1].result.workload);
    EXPECT_FALSE(cells[0].result.failed);
    EXPECT_FALSE(cells[1].result.failed);

    EXPECT_THROW(runHierSweep({Algorithm::Lazy}, {12}, 1),
                 std::invalid_argument);
}

/** The CI smoke cell: one 64-node machine, 8 local rings of 8, must
 *  complete with the bridges actually skipping blocks. */
TEST(HierSweep, SixtyFourNodeHierCellCompletes)
{
    WorkloadProfile base = miniProfile();
    base.refsPerCore = 150;
    base.warmupRefs = 40;
    const auto cells = runHierSweep({Algorithm::SupersetCon}, {64},
                                    /*jobs=*/2, /*global_hop_cycles=*/62,
                                    base);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[1].localRings, 8u);
    const RunResult &hier = cells[1].result;
    EXPECT_FALSE(hier.failed);
    EXPECT_GT(hier.bridgeSkips, 0u);
    EXPECT_GT(hier.globalLinkMessages, 0u);
}

/** Fault soak on the hierarchy with distinct per-level rates: drops,
 *  dups and delays on both link classes, recovery via watchdog; the
 *  run must complete coherently (runSimulation throws otherwise). */
TEST(HierFaultSoak, PerLevelRatesRecover)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;

    MachineConfig cfg =
        MachineConfig::paperDefault(Algorithm::SupersetCon, 1);
    cfg.setNumCmps(profile.numCmps());
    cfg.topology.kind = TopologyKind::Hier;
    cfg.topology.localRings = 2;
    cfg.faults.dropRate = 2e-4;
    cfg.faults.dupRate = 2e-4;
    cfg.faults.globalDropRate = 1e-3;
    cfg.faults.globalDupRate = 5e-4;
    cfg.faults.globalDelayRate = 5e-4;
    cfg.faults.seed = 7;
    cfg.coherence.watchdogCycles = 20000;

    SyntheticGenerator gen(profile);
    const RunResult r = runSimulation(cfg, gen.generate(), "hier_soak");
    EXPECT_FALSE(r.failed);
    EXPECT_GT(r.faultLinkDecisions, 0u);
    EXPECT_GT(r.faultDrops + r.faultDups + r.faultDelays, 0u);
    EXPECT_GT(r.globalLinkMessages, 0u);
}

} // namespace
} // namespace flexsnoop
