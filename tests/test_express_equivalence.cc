/**
 * @file
 * The express-path equivalence guarantee: every statistic the figure
 * benches read must be bit-identical with the ring express path on and
 * off, for every algorithm on every built-in workload profile. The
 * express path is a pure simulator optimization; any divergence here is
 * a correctness bug in its probe/replay logic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulation.hh"
#include "workload/core_model.hh"
#include "workload/synthetic_generator.hh"
#include "workload/uniform_generator.hh"

namespace flexsnoop
{
namespace
{

/** Every RunResult field, compared exactly (identical arithmetic on
 *  identical counters makes even the doubles bit-equal). */
void
expectIdentical(const RunResult &off, const RunResult &on)
{
    EXPECT_EQ(off.execCycles, on.execCycles);
    EXPECT_EQ(off.readRingRequests, on.readRingRequests);
    EXPECT_EQ(off.readSnoops, on.readSnoops);
    EXPECT_EQ(off.snoopsPerReadRequest, on.snoopsPerReadRequest);
    EXPECT_EQ(off.readLinkMessages, on.readLinkMessages);
    EXPECT_EQ(off.readLinkMessagesPerRequest,
              on.readLinkMessagesPerRequest);
    EXPECT_EQ(off.energyNj, on.energyNj);
    EXPECT_EQ(off.ringEnergyNj, on.ringEnergyNj);
    EXPECT_EQ(off.snoopEnergyNj, on.snoopEnergyNj);
    EXPECT_EQ(off.predictorEnergyNj, on.predictorEnergyNj);
    EXPECT_EQ(off.downgradeEnergyNj, on.downgradeEnergyNj);
    EXPECT_EQ(off.truePositives, on.truePositives);
    EXPECT_EQ(off.trueNegatives, on.trueNegatives);
    EXPECT_EQ(off.falsePositives, on.falsePositives);
    EXPECT_EQ(off.falseNegatives, on.falseNegatives);
    EXPECT_EQ(off.writeRingRequests, on.writeRingRequests);
    EXPECT_EQ(off.writeSnoops, on.writeSnoops);
    EXPECT_EQ(off.writeFiltered, on.writeFiltered);
    EXPECT_EQ(off.cacheSupplies, on.cacheSupplies);
    EXPECT_EQ(off.memoryFetches, on.memoryFetches);
    EXPECT_EQ(off.downgrades, on.downgrades);
    EXPECT_EQ(off.collisions, on.collisions);
    EXPECT_EQ(off.retries, on.retries);
    EXPECT_EQ(off.writebacks, on.writebacks);
    EXPECT_EQ(off.avgReadLatency, on.avgReadLatency);
    EXPECT_EQ(off.p50ReadLatency, on.p50ReadLatency);
    EXPECT_EQ(off.p95ReadLatency, on.p95ReadLatency);
}

void
runBothAndCompare(MachineConfig cfg, const CoreTraces &traces,
                  const std::string &name)
{
    SCOPED_TRACE(name + " / " + std::string(toString(cfg.algorithm)));
    cfg.coherence.ringExpress = false;
    const RunResult off = runSimulation(cfg, traces, name);
    cfg.coherence.ringExpress = true;
    const RunResult on = runSimulation(cfg, traces, name);
    expectIdentical(off, on);
}

/** Shrink a built-in profile so the full matrix stays fast. */
WorkloadProfile
shrunk(WorkloadProfile p)
{
    p.refsPerCore = std::min<std::size_t>(p.refsPerCore, 400);
    p.warmupRefs = std::min<std::size_t>(p.warmupRefs, 100);
    return p;
}

/**
 * One nearly-idle requester issuing reads to fresh lines: long quiet
 * stretches between ring rounds, which is exactly where express plans
 * form. The other cores stay silent.
 */
CoreTraces
singleActiveCoreTraces(std::size_t num_cores, std::size_t refs,
                       bool writes = false)
{
    CoreTraces traces;
    traces.traces.resize(num_cores);
    traces.warmupRefs = 0;
    for (std::size_t i = 0; i < refs; ++i) {
        MemRef ref;
        ref.addr = static_cast<Addr>((i + 1) * kLineSizeBytes);
        ref.isWrite = writes && (i % 3 == 0);
        ref.gap = 3000; // far longer than a full ring round trip
        traces.traces[0].push_back(ref);
    }
    return traces;
}

class ExpressEquivalence : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(ExpressEquivalence, AllBuiltinProfiles)
{
    std::vector<WorkloadProfile> profiles = splash2Profiles();
    profiles.push_back(specJbbProfile());
    profiles.push_back(specWebProfile());
    profiles.push_back(miniProfile());

    for (const WorkloadProfile &base : profiles) {
        const WorkloadProfile profile = shrunk(base);
        MachineConfig cfg =
            MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
        if (cfg.numCmps != profile.numCmps())
            cfg.setNumCmps(profile.numCmps());
        SyntheticGenerator gen(profile);
        runBothAndCompare(cfg, gen.generate(), profile.name);
    }
}

TEST_P(ExpressEquivalence, UniformWorkload)
{
    UniformWorkloadParams params;
    params.numCores = 8;
    params.linesPerReader = 48;
    const CoreTraces traces = UniformGenerator(params).generate();
    MachineConfig cfg = MachineConfig::paperDefault(GetParam(), 1);
    runBothAndCompare(cfg, traces, "uniform");
}

TEST_P(ExpressEquivalence, SingleActiveCoreEngagesExpress)
{
    const CoreTraces traces = singleActiveCoreTraces(8, 150);
    MachineConfig cfg = MachineConfig::paperDefault(GetParam(), 1);
    runBothAndCompare(cfg, traces, "single_active");

    // The same run driven directly, to assert the express path actually
    // coalesced (the comparison above is vacuous if it never engages).
    cfg.coherence.ringExpress = true;
    Machine machine(cfg);
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          cfg.core);
    runner.run();
    const StatGroup *express = machine.controller().expressStats();
    ASSERT_NE(express, nullptr);
    EXPECT_GT(express->counterValue("plans_created"), 0u);
    // Every plan either retires or falls back; none may leak.
    EXPECT_EQ(express->counterValue("plans_created"),
              express->counterValue("plans_retired") +
                  express->counterValue("plans_cancelled"));
}

TEST_P(ExpressEquivalence, SingleActiveCoreWithWrites)
{
    const CoreTraces traces =
        singleActiveCoreTraces(8, 150, /*writes=*/true);
    MachineConfig cfg = MachineConfig::paperDefault(GetParam(), 1);
    runBothAndCompare(cfg, traces, "single_active_writes");
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ExpressEquivalence,
    ::testing::ValuesIn(paperAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

/**
 * A link that per-hop simulation would queue on must force the express
 * probe to refuse (satellite of the express PR): with the serialization
 * time far above the CMP snoop time, every split's trailing reply wants
 * the link before the request's occupancy ends, so no plan may form —
 * and the per-hop fall-back must still be bit-identical.
 */
TEST(ExpressFallback, QueuedLinkForcesPerHop)
{
    const CoreTraces traces = singleActiveCoreTraces(8, 80);
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Eager, 1);
    cfg.ring.serialization = 200; // > coherence.cmpSnoopTime (55)
    ASSERT_GT(cfg.ring.serialization, cfg.coherence.cmpSnoopTime);
    runBothAndCompare(cfg, traces, "busy_link");

    cfg.coherence.ringExpress = true;
    Machine machine(cfg);
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          cfg.core);
    runner.run();
    const StatGroup *express = machine.controller().expressStats();
    ASSERT_NE(express, nullptr);
    // The contended links force express probes back to per-hop all
    // through the hot part of each round (plans only survive on the
    // late, drained segments).
    EXPECT_GT(express->counterValue("probe_rejects"), 0u);
}

/**
 * Deterministic single-transaction version of the busy-link rule: a
 * link the per-hop path would queue on refuses the express plan at the
 * probe, and the transaction falls back to real per-hop simulation
 * from that point on.
 */
TEST(ExpressFallback, BusyFirstLinkRefusesThePlan)
{
    struct Observed
    {
        Cycle end = 0;
        std::uint64_t snoops = 0;
        std::uint64_t links = 0;
        std::uint64_t plans = 0;
        std::uint64_t hops = 0;
        std::uint64_t rejects = 0;
    };
    const Addr line = kLineSizeBytes;

    auto run = [&](bool express, bool busy_first_link) {
        MachineConfig cfg =
            MachineConfig::paperDefault(Algorithm::Lazy, 1);
        cfg.coherence.ringExpress = express;
        Machine m(cfg);
        if (busy_first_link) {
            // Occupy the requester's outgoing link until long past the
            // issue (a leftover transmission the probe must respect).
            m.ring().ringFor(line).recordVirtualTraversal(0, 561);
        }
        bool done = false;
        m.controller().setCompletionHandler(
            [&done](CoreId, Addr, bool) { done = true; });
        m.controller().coreRead(0, line);
        m.queue().run();
        EXPECT_TRUE(done);
        Observed o;
        o.end = m.queue().now();
        o.snoops = m.controller().readSnoops();
        o.links = m.controller().readLinkMessages();
        if (const StatGroup *e = m.controller().expressStats()) {
            o.plans = e->counterValue("plans_created");
            o.hops = e->counterValue("hops_virtualized");
            o.rejects = e->counterValue("probe_rejects");
        }
        return o;
    };

    // Idle ring: the initial send coalesces the full circle.
    const Observed idle = run(true, false);
    EXPECT_EQ(idle.plans, 1u);
    EXPECT_EQ(idle.hops, 8u);
    EXPECT_EQ(idle.rejects, 0u);

    // Busy first link: that probe must refuse; the message queues and
    // travels per-hop until the next idle stretch (7 remaining links).
    const Observed busy = run(true, true);
    EXPECT_GE(busy.rejects, 1u);
    EXPECT_EQ(busy.plans, 1u);
    EXPECT_EQ(busy.hops, 7u);

    // And in both shapes the run is identical to express-off.
    for (const bool busy_link : {false, true}) {
        const Observed on = run(true, busy_link);
        const Observed off = run(false, busy_link);
        EXPECT_EQ(on.end, off.end) << "busy=" << busy_link;
        EXPECT_EQ(on.snoops, off.snoops) << "busy=" << busy_link;
        EXPECT_EQ(on.links, off.links) << "busy=" << busy_link;
        EXPECT_EQ(off.plans, 0u);
    }
}

/** FLEXSNOOP_STRICT_RING=1 must disable express regardless of config. */
TEST(ExpressFallback, StrictModeDisablesExpress)
{
    ::setenv("FLEXSNOOP_STRICT_RING", "1", 1);
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Eager, 1);
    cfg.coherence.ringExpress = true;
    Machine strict(cfg);
    EXPECT_EQ(strict.controller().expressStats(), nullptr);
    ::unsetenv("FLEXSNOOP_STRICT_RING");
    Machine normal(cfg);
    EXPECT_NE(normal.controller().expressStats(), nullptr);
}

} // namespace
} // namespace flexsnoop
