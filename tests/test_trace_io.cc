/**
 * @file
 * Unit tests for trace persistence (binary save/load round trips and
 * malformed-input rejection).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/synthetic_generator.hh"
#include "workload/trace_io.hh"

namespace flexsnoop
{
namespace
{

CoreTraces
sampleTraces()
{
    CoreTraces traces;
    traces.warmupRefs = 2;
    traces.traces.resize(3);
    for (CoreId c = 0; c < 3; ++c) {
        for (unsigned i = 0; i < 5 + c; ++i) {
            MemRef ref;
            ref.addr = (c * 1000 + i) * kLineSizeBytes + 7;
            ref.isWrite = (i % 2) == 0;
            ref.gap = 10 + i;
            traces.traces[c].push_back(ref);
        }
    }
    return traces;
}

void
expectEqual(const CoreTraces &a, const CoreTraces &b)
{
    ASSERT_EQ(a.traces.size(), b.traces.size());
    EXPECT_EQ(a.warmupRefs, b.warmupRefs);
    for (std::size_t c = 0; c < a.traces.size(); ++c) {
        ASSERT_EQ(a.traces[c].size(), b.traces[c].size()) << c;
        for (std::size_t i = 0; i < a.traces[c].size(); ++i) {
            EXPECT_EQ(a.traces[c][i].addr, b.traces[c][i].addr);
            EXPECT_EQ(a.traces[c][i].isWrite, b.traces[c][i].isWrite);
            EXPECT_EQ(a.traces[c][i].gap, b.traces[c][i].gap);
        }
    }
}

TEST(TraceIo, StreamRoundTrip)
{
    const CoreTraces original = sampleTraces();
    std::stringstream buffer;
    writeTraces(buffer, original);
    const CoreTraces loaded = readTraces(buffer);
    expectEqual(original, loaded);
}

TEST(TraceIo, GeneratedWorkloadRoundTrip)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 200;
    profile.warmupRefs = 50;
    const CoreTraces original = SyntheticGenerator(profile).generate();
    std::stringstream buffer;
    writeTraces(buffer, original);
    expectEqual(original, readTraces(buffer));
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/flexsnoop_trace_io_test.fstr";
    const CoreTraces original = sampleTraces();
    saveTraces(path, original);
    expectEqual(original, loadTraces(path));
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "NOPE garbage";
    EXPECT_THROW(readTraces(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream)
{
    std::stringstream buffer;
    writeTraces(buffer, sampleTraces());
    const std::string data = buffer.str();
    std::stringstream truncated(data.substr(0, data.size() / 2));
    EXPECT_THROW(readTraces(truncated), std::runtime_error);
}

TEST(TraceIo, RejectsWrongVersion)
{
    std::stringstream buffer;
    writeTraces(buffer, sampleTraces());
    std::string data = buffer.str();
    data[4] = 99; // version byte
    std::stringstream patched(data);
    EXPECT_THROW(readTraces(patched), std::runtime_error);
}

TEST(TraceIo, RejectsWarmupBeyondTraceLength)
{
    CoreTraces bad = sampleTraces();
    bad.warmupRefs = 100; // longer than any core's trace
    std::stringstream buffer;
    writeTraces(buffer, bad);
    EXPECT_THROW(readTraces(buffer), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(loadTraces("/nonexistent/dir/trace.fstr"),
                 std::runtime_error);
}

} // namespace
} // namespace flexsnoop
