/**
 * @file
 * Unit tests for trace persistence (binary save/load round trips and
 * malformed-input rejection).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/synthetic_generator.hh"
#include "workload/trace_io.hh"

namespace flexsnoop
{
namespace
{

CoreTraces
sampleTraces()
{
    CoreTraces traces;
    traces.warmupRefs = 2;
    traces.traces.resize(3);
    for (CoreId c = 0; c < 3; ++c) {
        for (unsigned i = 0; i < 5 + c; ++i) {
            MemRef ref;
            ref.addr = (c * 1000 + i) * kLineSizeBytes + 7;
            ref.isWrite = (i % 2) == 0;
            ref.gap = 10 + i;
            traces.traces[c].push_back(ref);
        }
    }
    return traces;
}

void
expectEqual(const CoreTraces &a, const CoreTraces &b)
{
    ASSERT_EQ(a.traces.size(), b.traces.size());
    EXPECT_EQ(a.warmupRefs, b.warmupRefs);
    for (std::size_t c = 0; c < a.traces.size(); ++c) {
        ASSERT_EQ(a.traces[c].size(), b.traces[c].size()) << c;
        for (std::size_t i = 0; i < a.traces[c].size(); ++i) {
            EXPECT_EQ(a.traces[c][i].addr, b.traces[c][i].addr);
            EXPECT_EQ(a.traces[c][i].isWrite, b.traces[c][i].isWrite);
            EXPECT_EQ(a.traces[c][i].gap, b.traces[c][i].gap);
        }
    }
}

TEST(TraceIo, StreamRoundTrip)
{
    const CoreTraces original = sampleTraces();
    std::stringstream buffer;
    writeTraces(buffer, original);
    const CoreTraces loaded = readTraces(buffer);
    expectEqual(original, loaded);
}

TEST(TraceIo, GeneratedWorkloadRoundTrip)
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 200;
    profile.warmupRefs = 50;
    const CoreTraces original = SyntheticGenerator(profile).generate();
    std::stringstream buffer;
    writeTraces(buffer, original);
    expectEqual(original, readTraces(buffer));
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/flexsnoop_trace_io_test.fstr";
    const CoreTraces original = sampleTraces();
    saveTraces(path, original);
    expectEqual(original, loadTraces(path));
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "NOPE garbage";
    EXPECT_THROW(readTraces(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream)
{
    std::stringstream buffer;
    writeTraces(buffer, sampleTraces());
    const std::string data = buffer.str();
    std::stringstream truncated(data.substr(0, data.size() / 2));
    EXPECT_THROW(readTraces(truncated), std::runtime_error);
}

TEST(TraceIo, RejectsWrongVersion)
{
    std::stringstream buffer;
    writeTraces(buffer, sampleTraces());
    std::string data = buffer.str();
    data[4] = 99; // version byte
    std::stringstream patched(data);
    EXPECT_THROW(readTraces(patched), std::runtime_error);
}

TEST(TraceIo, RejectsWarmupBeyondTraceLength)
{
    CoreTraces bad = sampleTraces();
    bad.warmupRefs = 100; // longer than any core's trace
    std::stringstream buffer;
    writeTraces(buffer, bad);
    EXPECT_THROW(readTraces(buffer), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(loadTraces("/nonexistent/dir/trace.fstr"),
                 std::runtime_error);
}

/** Serialized sample stream (for damage-injection tests). */
std::string
sampleBytes()
{
    std::stringstream buffer;
    writeTraces(buffer, sampleTraces());
    return buffer.str();
}

/** The message readTraces() rejects @p data with. */
std::string
rejectionFor(const std::string &data)
{
    std::stringstream damaged(data);
    try {
        readTraces(damaged);
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    ADD_FAILURE() << "damaged trace stream was accepted";
    return "";
}

TEST(TraceIo, TruncationNamesFieldAndByteOffset)
{
    const std::string data = sampleBytes();
    // Cut inside the very first per-ref record: magic(4) + version(4) +
    // core count(8) + warmup(8) + ref count(8) = 32, then the 8-byte
    // ref address starts at offset 32.
    const std::string msg = rejectionFor(data.substr(0, 36));
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset 32"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ref address"), std::string::npos) << msg;
}

TEST(TraceIo, TruncatedHeaderNamesHeaderField)
{
    const std::string data = sampleBytes();
    const std::string msg = rejectionFor(data.substr(0, 10));
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core count"), std::string::npos) << msg;
}

TEST(TraceIo, EveryTruncationPointIsRejectedNotCrashed)
{
    // A trace cut at any byte must produce a clean exception -- never
    // garbage traces, hangs, or out-of-bounds reads.
    const std::string data = sampleBytes();
    for (std::size_t cut = 0; cut + 1 < data.size(); cut += 3) {
        std::stringstream damaged(data.substr(0, cut));
        EXPECT_THROW(readTraces(damaged), std::runtime_error)
            << "cut at " << cut;
    }
}

TEST(TraceIo, CorruptWriteFlagNamesOffsetAndValue)
{
    std::string data = sampleBytes();
    // First ref record: address at 32, write flag at 40.
    data[40] = 7;
    const std::string msg = rejectionFor(data);
    EXPECT_NE(msg.find("corrupt write flag 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset 40"), std::string::npos) << msg;
}

TEST(TraceIo, ImplausibleCoreCountRejected)
{
    std::string data = sampleBytes();
    // Core count is the u64 at offset 8: overwrite with a huge value.
    for (int i = 0; i < 8; ++i)
        data[8 + i] = static_cast<char>(0xff);
    const std::string msg = rejectionFor(data);
    EXPECT_NE(msg.find("implausible core count"), std::string::npos)
        << msg;
}

TEST(TraceIo, ImplausibleRefCountRejected)
{
    std::string data = sampleBytes();
    // First per-core ref count is the u64 at offset 24.
    for (int i = 0; i < 8; ++i)
        data[24 + i] = static_cast<char>(0xff);
    const std::string msg = rejectionFor(data);
    EXPECT_NE(msg.find("implausible ref count"), std::string::npos)
        << msg;
}

} // namespace
} // namespace flexsnoop
