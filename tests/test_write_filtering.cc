/**
 * @file
 * Tests for the write-snoop filtering extension (paper §2.2/§5.3
 * sketch): the presence predictor and its integration with the write
 * invalidation path.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/machine.hh"
#include "core/simulation.hh"
#include "predictor/presence_predictor.hh"
#include "sim/random.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

TEST(PresencePredictor, TracksPresentLines)
{
    PresencePredictor pred("p");
    EXPECT_FALSE(pred.mayBePresent(lineAt(1)));
    pred.linePresent(lineAt(1));
    EXPECT_TRUE(pred.mayBePresent(lineAt(1)));
    pred.lineAbsent(lineAt(1));
    EXPECT_FALSE(pred.mayBePresent(lineAt(1)));
}

TEST(PresencePredictor, NoFalseNegativesUnderChurn)
{
    PresencePredictor pred("p");
    Rng rng(8);
    std::set<Addr> present;
    for (int step = 0; step < 20000; ++step) {
        const Addr line = lineAt(rng.nextBelow(50000));
        if (rng.chance(0.5) && !present.count(line)) {
            present.insert(line);
            pred.linePresent(line);
        } else if (present.count(line)) {
            present.erase(line);
            pred.lineAbsent(line);
        }
    }
    for (Addr line : present)
        ASSERT_TRUE(pred.mayBePresent(line));
}

TEST(PresencePredictor, CountsFilteredLookups)
{
    PresencePredictor pred("p");
    pred.mayBePresent(lineAt(1)); // absent -> filtered
    pred.linePresent(lineAt(1));
    pred.mayBePresent(lineAt(1)); // present
    EXPECT_EQ(pred.stats().counterValue("lookups"), 2u);
    EXPECT_EQ(pred.stats().counterValue("filtered"), 1u);
}

TEST(CmpNodePresence, CopyCountsDrivePresence)
{
    CmpNode node(0, 4, 64, 4);
    node.setPresencePredictor(std::make_unique<PresencePredictor>("p"));
    auto *presence = node.presencePredictor();

    node.fillFromMemory(0, lineAt(1)); // first copy
    EXPECT_TRUE(presence->mayBePresent(lineAt(1)));
    node.fillFromRemote(1, lineAt(1)); // second copy: no re-insert
    EXPECT_EQ(presence->population(), 1u);
    node.l2(0).invalidate(lineAt(1)); // one copy remains
    EXPECT_TRUE(presence->mayBePresent(lineAt(1)));
    node.l2(1).invalidate(lineAt(1)); // last copy gone
    EXPECT_FALSE(presence->mayBePresent(lineAt(1)));
}

TEST(CmpNodePresence, LateInstallSyncsResidentLines)
{
    CmpNode node(0, 2, 64, 4);
    node.fillFromMemory(0, lineAt(3));
    node.fillFromRemote(1, lineAt(5));
    node.setPresencePredictor(std::make_unique<PresencePredictor>("p"));
    EXPECT_TRUE(node.presencePredictor()->mayBePresent(lineAt(3)));
    EXPECT_TRUE(node.presencePredictor()->mayBePresent(lineAt(5)));
    EXPECT_EQ(node.presencePredictor()->population(), 2u);
}

TEST(WriteFiltering, SkipsInvalidationAtEmptyNodes)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    cfg.writeFiltering = true;
    Machine machine(cfg);
    std::size_t completions = 0;
    machine.controller().setCompletionHandler(
        [&](CoreId, Addr, bool) { ++completions; });

    // Only node 2 caches the line; the write from node 0 must snoop
    // exactly there.
    machine.node(2).fillFromRemote(0, lineAt(4));
    machine.controller().coreWrite(0, lineAt(4));
    machine.queue().run();

    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(machine.controller().stats().counterValue("write_snoops"),
              1u);
    EXPECT_EQ(machine.controller().stats().counterValue("write_filtered"),
              2u);
    EXPECT_EQ(machine.node(2).coreState(0, lineAt(4)),
              LineState::Invalid);
    EXPECT_EQ(machine.node(0).coreState(0, lineAt(4)), LineState::Dirty);
}

TEST(WriteFiltering, NoFilteringWithoutTheFlag)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    Machine machine(cfg);
    machine.controller().setCompletionHandler([](CoreId, Addr, bool) {});
    machine.controller().coreWrite(0, lineAt(4));
    machine.queue().run();
    EXPECT_EQ(machine.controller().stats().counterValue("write_snoops"),
              3u);
    EXPECT_EQ(machine.controller().stats().counterValue("write_filtered"),
              0u);
}

TEST(WriteFiltering, RandomTrafficStaysCoherent)
{
    for (Algorithm a :
         {Algorithm::Lazy, Algorithm::Eager, Algorithm::SupersetAgg}) {
        MachineConfig cfg = MachineConfig::testDefault(a);
        cfg.writeFiltering = true;
        Machine machine(cfg);
        std::size_t issued = 0, completed = 0;
        machine.controller().setCompletionHandler(
            [&](CoreId, Addr, bool) { ++completed; });
        Rng rng(31337);
        Cycle when = 0;
        for (int i = 0; i < 500; ++i) {
            const auto core = static_cast<CoreId>(rng.nextBelow(4));
            const Addr line = lineAt(rng.nextBelow(8));
            const bool write = rng.chance(0.45);
            ++issued;
            when += rng.nextBelow(40);
            machine.queue().scheduleAt(when, [&machine, core, line,
                                              write]() {
                if (write)
                    machine.controller().coreWrite(core, line);
                else
                    machine.controller().coreRead(core, line);
            });
        }
        machine.queue().run();
        EXPECT_EQ(completed, issued) << toString(a);
        EXPECT_TRUE(machine.checker().consistent()) << toString(a);
    }
}

TEST(WriteFiltering, ReducesWriteSnoopsOnRealWorkload)
{
    const WorkloadProfile profile = miniProfile();
    MachineConfig base = MachineConfig::paperDefault(Algorithm::Lazy, 1);
    MachineConfig filtered = base;
    filtered.writeFiltering = true;
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();
    const RunResult r_base = runSimulation(base, traces, "mini");
    const RunResult r_filt = runSimulation(filtered, traces, "mini");
    ASSERT_GT(r_base.writeRingRequests, 0u);
    // Unfiltered Lazy invalidates at every node.
    EXPECT_NEAR(static_cast<double>(r_base.writeSnoops) /
                    r_base.writeRingRequests,
                7.0, 0.1);
    // Filtering skips nodes without copies; the mini workload's private
    // traffic makes most nodes copy-free.
    EXPECT_LT(r_filt.writeSnoops, r_base.writeSnoops);
    EXPECT_GT(r_filt.writeFiltered, 0u);
}

} // namespace
} // namespace flexsnoop
