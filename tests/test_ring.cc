/**
 * @file
 * Unit tests for the embedded unidirectional ring(s).
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/ring.hh"

namespace flexsnoop
{
namespace
{

SnoopMessage
makeMsg(TransactionId txn, Addr line, NodeId requester)
{
    SnoopMessage msg;
    msg.type = MsgType::CombinedRR;
    msg.kind = SnoopKind::Read;
    msg.txn = txn;
    msg.line = line;
    msg.requester = requester;
    return msg;
}

TEST(Ring, DeliversToSuccessorAfterLinkLatency)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 39;
    Ring ring(queue, 4, params, "r");
    Cycle arrived_at = 0;
    NodeId got = kInvalidNode;
    for (NodeId n = 0; n < 4; ++n) {
        ring.setHandler(n, [&, n](const SnoopMessage &) {
            arrived_at = queue.now();
            got = n;
        });
    }
    ring.send(0, makeMsg(1, 0, 0));
    queue.run();
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(arrived_at, 39u);
}

TEST(Ring, WrapsAroundFromLastNode)
{
    EventQueue queue;
    Ring ring(queue, 4, RingParams{}, "r");
    NodeId got = kInvalidNode;
    for (NodeId n = 0; n < 4; ++n)
        ring.setHandler(n, [&, n](const SnoopMessage &) { got = n; });
    ring.send(3, makeMsg(1, 0, 3));
    queue.run();
    EXPECT_EQ(got, 0u);
}

TEST(Ring, SuccessorAndDistance)
{
    EventQueue queue;
    Ring ring(queue, 8, RingParams{}, "r");
    EXPECT_EQ(ring.successor(0), 1u);
    EXPECT_EQ(ring.successor(7), 0u);
    EXPECT_EQ(ring.distance(0, 0), 0u);
    EXPECT_EQ(ring.distance(0, 3), 3u);
    EXPECT_EQ(ring.distance(6, 2), 4u);
    EXPECT_EQ(ring.distance(2, 1), 7u);
}

TEST(Ring, FullCircleVisitsEveryNodeInOrder)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 10;
    Ring ring(queue, 5, params, "r");
    std::vector<NodeId> visits;
    for (NodeId n = 0; n < 5; ++n) {
        ring.setHandler(n, [&, n](const SnoopMessage &msg) {
            visits.push_back(n);
            if (n != msg.requester)
                ring.send(n, msg);
        });
    }
    ring.send(2, makeMsg(1, 0, 2));
    queue.run();
    EXPECT_EQ(visits, (std::vector<NodeId>{3, 4, 0, 1, 2}));
    EXPECT_EQ(queue.now(), 50u);
    EXPECT_EQ(ring.linkTraversals(), 5u);
}

TEST(Ring, LinkOccupancySerializesBackToBackMessages)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 39;
    params.serialization = 12;
    Ring ring(queue, 4, params, "r");
    std::vector<Cycle> arrivals;
    ring.setHandler(1, [&](const SnoopMessage &) {
        arrivals.push_back(queue.now());
    });
    ring.send(0, makeMsg(1, 0, 0));
    ring.send(0, makeMsg(2, 0, 0));
    ring.send(0, makeMsg(3, 0, 0));
    queue.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], 39u);
    EXPECT_EQ(arrivals[1], 51u); // 12 cycles behind
    EXPECT_EQ(arrivals[2], 63u);
}

TEST(Ring, DistinctLinksDoNotInterfere)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 20;
    params.serialization = 10;
    Ring ring(queue, 4, params, "r");
    std::vector<std::pair<NodeId, Cycle>> arrivals;
    for (NodeId n = 0; n < 4; ++n) {
        ring.setHandler(n, [&, n](const SnoopMessage &) {
            arrivals.emplace_back(n, queue.now());
        });
    }
    ring.send(0, makeMsg(1, 0, 0));
    ring.send(2, makeMsg(2, 0, 2));
    queue.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0].second, 20u);
    EXPECT_EQ(arrivals[1].second, 20u);
}

TEST(Ring, MessageContentIsPreserved)
{
    EventQueue queue;
    Ring ring(queue, 2, RingParams{}, "r");
    SnoopMessage sent = makeMsg(77, 0x1234c0, 0);
    sent.found = true;
    sent.supplier = 5;
    sent.acksCollected = 3;
    SnoopMessage received;
    ring.setHandler(1, [&](const SnoopMessage &m) { received = m; });
    ring.send(0, sent);
    queue.run();
    EXPECT_EQ(received.txn, 77u);
    EXPECT_EQ(received.line, 0x1234c0u);
    EXPECT_TRUE(received.found);
    EXPECT_EQ(received.supplier, 5u);
    EXPECT_EQ(received.acksCollected, 3u);
}

TEST(RingNetwork, AddressesInterleaveAcrossRings)
{
    EventQueue queue;
    RingNetwork net(queue, 4, 2, RingParams{});
    EXPECT_EQ(net.numRings(), 2u);
    EXPECT_EQ(net.ringIndex(0 * kLineSizeBytes),
              0u);
    EXPECT_EQ(net.ringIndex(1 * kLineSizeBytes), 1u);
    EXPECT_EQ(net.ringIndex(2 * kLineSizeBytes), 0u);
}

TEST(RingNetwork, SendRoutesByLineAddress)
{
    EventQueue queue;
    RingNetwork net(queue, 4, 2, RingParams{});
    int ring0_arrivals = 0, ring1_arrivals = 0;
    net.setHandler(1, [&](const SnoopMessage &msg) {
        if (net.ringIndex(msg.line) == 0)
            ++ring0_arrivals;
        else
            ++ring1_arrivals;
    });
    for (NodeId n = 0; n < 4; ++n) {
        if (n != 1)
            net.setHandler(n, [](const SnoopMessage &) {});
    }
    net.send(0, makeMsg(1, 0 * kLineSizeBytes, 0)); // ring 0
    net.send(0, makeMsg(2, 1 * kLineSizeBytes, 0)); // ring 1
    net.send(0, makeMsg(3, 3 * kLineSizeBytes, 0)); // ring 1
    queue.run();
    EXPECT_EQ(ring0_arrivals, 1);
    EXPECT_EQ(ring1_arrivals, 2);
    EXPECT_EQ(net.linkTraversals(), 3u);
    EXPECT_EQ(net.ring(0).linkTraversals(), 1u);
    EXPECT_EQ(net.ring(1).linkTraversals(), 2u);
}

TEST(RingNetwork, ParallelRingsAvoidSerialization)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 30;
    params.serialization = 15;
    RingNetwork net(queue, 2, 2, params);
    std::vector<Cycle> arrivals;
    net.setHandler(1, [&](const SnoopMessage &) {
        arrivals.push_back(queue.now());
    });
    net.setHandler(0, [](const SnoopMessage &) {});
    // Same source link cycle, different rings: both arrive together.
    net.send(0, makeMsg(1, 0 * kLineSizeBytes, 0));
    net.send(0, makeMsg(2, 1 * kLineSizeBytes, 0));
    queue.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 30u);
    EXPECT_EQ(arrivals[1], 30u);
}

TEST(Ring, BackToBackSendsSpacedByExactlySerialization)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 39;
    params.serialization = 8; // the paper-default link occupancy
    Ring ring(queue, 4, params, "r");
    std::vector<Cycle> arrivals;
    ring.setHandler(1, [&](const SnoopMessage &) {
        arrivals.push_back(queue.now());
    });
    for (TransactionId t = 1; t <= 4; ++t)
        ring.send(0, makeMsg(t, 0, 0));
    queue.run();
    ASSERT_EQ(arrivals.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(arrivals[i], 39u + i * 8u);
    // Consecutive arrivals differ by exactly the serialization time,
    // never more, never less.
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_EQ(arrivals[i] - arrivals[i - 1], 8u);
}

TEST(Ring, VirtualTraversalOccupiesLinkLikeSend)
{
    EventQueue queue;
    RingParams params;
    params.linkLatency = 10;
    params.serialization = 6;
    Ring ring(queue, 4, params, "r");
    Cycle arrival = 0;
    ring.setHandler(1,
                    [&](const SnoopMessage &) { arrival = queue.now(); });

    // The express path accounts a coalesced hop at cycle 20 without an
    // event; a later real send at cycle 0 must queue behind it exactly
    // as if send() had run at 20.
    EXPECT_EQ(ring.linkFreeAt(0), 0u);
    ring.recordVirtualTraversal(0, 20);
    EXPECT_EQ(ring.linkFreeAt(0), 26u);
    EXPECT_EQ(ring.linkTraversals(), 1u);

    ring.send(0, makeMsg(1, 0, 0));
    queue.run();
    EXPECT_EQ(arrival, 36u); // started at 26 (busy link), +latency 10
    EXPECT_EQ(ring.linkTraversals(), 2u);
}

TEST(Ring, DeliverInvokesHandlerSynchronously)
{
    EventQueue queue;
    Ring ring(queue, 4, RingParams{}, "r");
    NodeId got = kInvalidNode;
    TransactionId txn = 0;
    for (NodeId n = 0; n < 4; ++n) {
        ring.setHandler(n, [&, n](const SnoopMessage &m) {
            got = n;
            txn = m.txn;
        });
    }
    ring.deliver(2, makeMsg(77, 0, 0));
    EXPECT_EQ(got, 2u);       // no event was scheduled
    EXPECT_EQ(txn, 77u);
    EXPECT_EQ(queue.pending(), 0u);
}

} // namespace
} // namespace flexsnoop
