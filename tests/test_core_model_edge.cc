/**
 * @file
 * Edge-case tests for the trace-driven core model: degenerate traces,
 * barrier corner cases, and completion bookkeeping under merges.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/core_model.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

CoreTraces
emptyTraces(std::size_t cores)
{
    CoreTraces traces;
    traces.traces.resize(cores);
    traces.warmupRefs = 0;
    return traces;
}

TEST(CoreModelEdge, EmptyTracesFinishImmediately)
{
    Machine machine(MachineConfig::testDefault(Algorithm::Lazy));
    WorkloadRunner runner(machine.queue(), machine.controller(),
                          emptyTraces(4), CoreParams{});
    runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_EQ(machine.queue().now(), 0u);
}

TEST(CoreModelEdge, SingleRefPerCore)
{
    Machine machine(MachineConfig::testDefault(Algorithm::Lazy));
    CoreTraces traces = emptyTraces(4);
    for (CoreId c = 0; c < 4; ++c) {
        MemRef ref;
        ref.addr = lineAt(100 + c);
        ref.gap = 1;
        traces.traces[c].push_back(ref);
    }
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          CoreParams{});
    runner.run();
    EXPECT_TRUE(runner.allDone());
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(runner.core(c).refsIssued(), 1u);
}

TEST(CoreModelEdge, NoWarmupMeansNoBarrier)
{
    Machine machine(MachineConfig::testDefault(Algorithm::Lazy));
    CoreTraces traces = emptyTraces(4);
    for (CoreId c = 0; c < 4; ++c) {
        for (int i = 0; i < 5; ++i) {
            MemRef ref;
            ref.addr = lineAt(200 + c * 10 + i);
            ref.gap = 2;
            traces.traces[c].push_back(ref);
        }
    }
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          CoreParams{});
    bool warmup_fired = false;
    runner.setWarmupDoneFn([&]() { warmup_fired = true; });
    runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_FALSE(warmup_fired)
        << "warmupRefs == 0 must not trigger the barrier hook";
    EXPECT_EQ(runner.measureStart(), 0u);
}

TEST(CoreModelEdge, WholeTraceAsWarmup)
{
    // warmupRefs equal to the trace length: the barrier fires at the
    // end and the measured phase is empty but the run still drains.
    Machine machine(MachineConfig::testDefault(Algorithm::Lazy));
    CoreTraces traces = emptyTraces(4);
    traces.warmupRefs = 3;
    for (CoreId c = 0; c < 4; ++c) {
        for (int i = 0; i < 3; ++i) {
            MemRef ref;
            ref.addr = lineAt(300 + c * 10 + i);
            ref.gap = 2;
            traces.traces[c].push_back(ref);
        }
    }
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          CoreParams{});
    bool warmup_fired = false;
    runner.setWarmupDoneFn([&]() { warmup_fired = true; });
    runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_TRUE(warmup_fired);
}

TEST(CoreModelEdge, RepeatedSameLineRefsBalanceCompletions)
{
    // The same core hammers one line with reads and writes; the
    // per-line completion multiset must balance exactly.
    Machine machine(MachineConfig::testDefault(Algorithm::SupersetAgg));
    CoreTraces traces = emptyTraces(4);
    for (int i = 0; i < 40; ++i) {
        MemRef ref;
        ref.addr = lineAt(7);
        ref.isWrite = i % 3 == 0;
        ref.gap = 1;
        traces.traces[0].push_back(ref);
    }
    CoreParams params;
    params.maxOutstanding = 4;
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          params);
    runner.run();
    EXPECT_TRUE(runner.allDone());
    EXPECT_TRUE(runner.core(0).inFlight().empty());
    EXPECT_EQ(runner.core(0).stats().counterValue("completions"), 40u);
}

TEST(CoreModelEdge, UnevenTraceLengthsDrain)
{
    Machine machine(MachineConfig::testDefault(Algorithm::Lazy));
    CoreTraces traces = emptyTraces(4);
    for (int i = 0; i < 50; ++i) {
        MemRef ref;
        ref.addr = lineAt(400 + i);
        ref.gap = 3;
        traces.traces[0].push_back(ref);
    }
    MemRef lone;
    lone.addr = lineAt(999);
    lone.gap = 1;
    traces.traces[2].push_back(lone);
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          CoreParams{});
    runner.run();
    EXPECT_TRUE(runner.allDone());
}

TEST(CoreModelEdge, WindowOfOneSerializesIssues)
{
    Machine machine(MachineConfig::testDefault(Algorithm::Lazy));
    CoreTraces traces = emptyTraces(4);
    for (int i = 0; i < 10; ++i) {
        MemRef ref;
        ref.addr = lineAt(500 + i);
        ref.gap = 1;
        traces.traces[1].push_back(ref);
    }
    CoreParams params;
    params.maxOutstanding = 1;
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          params);
    runner.run();
    EXPECT_TRUE(runner.allDone());
    // With a window of one, each miss's full latency serializes: the
    // run must take at least 10 memory round trips.
    EXPECT_GT(machine.queue().now(), 10u * 300u);
}

} // namespace
} // namespace flexsnoop
