/**
 * @file
 * Unit tests for the deterministic fault injector (docs/FAULTS.md):
 * spec parsing, seeded reproducibility, empirical rates, and the
 * drop > duplicate > delay precedence of overlapping link rates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hh"

namespace flexsnoop
{
namespace
{

TEST(FaultConfig, FromSpecParsesAllKeys)
{
    const FaultConfig c = FaultConfig::fromSpec(
        "drop=1e-3,dup=2e-3,delay=5e-4,predictor=1e-4,seed=9,"
        "delay_cycles=123");
    EXPECT_DOUBLE_EQ(c.dropRate, 1e-3);
    EXPECT_DOUBLE_EQ(c.dupRate, 2e-3);
    EXPECT_DOUBLE_EQ(c.delayRate, 5e-4);
    EXPECT_DOUBLE_EQ(c.predictorRate, 1e-4);
    EXPECT_EQ(c.seed, 9u);
    EXPECT_EQ(c.delayCycles, 123u);
    EXPECT_TRUE(c.armed());
}

TEST(FaultConfig, PartialSpecKeepsDefaults)
{
    const FaultConfig c = FaultConfig::fromSpec("drop=0.01");
    EXPECT_DOUBLE_EQ(c.dropRate, 0.01);
    EXPECT_DOUBLE_EQ(c.dupRate, 0.0);
    EXPECT_EQ(c.seed, 1u);
    EXPECT_EQ(c.delayCycles, 500u);
}

TEST(FaultConfig, DescribeRoundTripsThroughFromSpec)
{
    const FaultConfig c = FaultConfig::fromSpec(
        "drop=0.001,dup=0.002,delay=0.0005,predictor=0.0001,seed=42");
    const FaultConfig r = FaultConfig::fromSpec(c.describe());
    EXPECT_DOUBLE_EQ(r.dropRate, c.dropRate);
    EXPECT_DOUBLE_EQ(r.dupRate, c.dupRate);
    EXPECT_DOUBLE_EQ(r.delayRate, c.delayRate);
    EXPECT_DOUBLE_EQ(r.predictorRate, c.predictorRate);
    EXPECT_EQ(r.seed, c.seed);
    EXPECT_EQ(r.delayCycles, c.delayCycles);
}

TEST(FaultConfig, RejectsMalformedSpecs)
{
    // Each class of malformed input is rejected with invalid_argument.
    EXPECT_THROW(FaultConfig::fromSpec(""), std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("drop"), std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("=0.1"), std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("bogus=0.1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("drop=abc"),
                 std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("drop=0.1x"),
                 std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("drop=-0.1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("drop=1.0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultConfig::fromSpec("seed=12junk"),
                 std::invalid_argument);
    // Link rates must leave room for normal delivery.
    EXPECT_THROW(FaultConfig::fromSpec("drop=0.5,dup=0.3,delay=0.3"),
                 std::invalid_argument);
}

TEST(FaultConfig, UnarmedWhenAllRatesZero)
{
    FaultConfig c;
    EXPECT_FALSE(c.armed());
    c = FaultConfig::fromSpec("seed=7"); // seed alone arms nothing
    EXPECT_FALSE(c.armed());
    c.predictorRate = 1e-6;
    EXPECT_TRUE(c.armed());
}

TEST(FaultInjector, SameSeedSameDecisionStream)
{
    const FaultConfig cfg = FaultConfig::fromSpec(
        "drop=0.05,dup=0.05,delay=0.05,predictor=0.1,seed=1234");
    FaultInjector a(cfg);
    FaultInjector b(cfg);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_EQ(a.onLinkSend(), b.onLinkSend()) << "draw " << i;
        EXPECT_EQ(a.flipPrediction(), b.flipPrediction()) << "draw " << i;
    }
    EXPECT_EQ(a.dropsInjected(), b.dropsInjected());
    EXPECT_EQ(a.predictorFlips(), b.predictorFlips());
}

TEST(FaultInjector, DifferentSeedDifferentDecisionStream)
{
    FaultConfig cfg = FaultConfig::fromSpec("drop=0.2,seed=1");
    FaultInjector a(cfg);
    cfg.seed = 2;
    FaultInjector b(cfg);
    bool diverged = false;
    for (int i = 0; i < 10000 && !diverged; ++i)
        diverged = a.onLinkSend() != b.onLinkSend();
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, EmpiricalRatesMatchConfiguration)
{
    const int kDraws = 50000;
    const FaultConfig cfg = FaultConfig::fromSpec(
        "drop=0.1,dup=0.05,delay=0.02,predictor=0.08,seed=99");
    FaultInjector inj(cfg);
    for (int i = 0; i < kDraws; ++i) {
        inj.onLinkSend();
        inj.flipPrediction();
    }
    EXPECT_EQ(inj.linkDecisions(), static_cast<std::uint64_t>(kDraws));
    EXPECT_EQ(inj.predictorLookups(),
              static_cast<std::uint64_t>(kDraws));
    // The streams are seeded, so these are deterministic; +-20% bounds
    // just document how close to nominal the sampling sits.
    EXPECT_NEAR(static_cast<double>(inj.dropsInjected()), 0.1 * kDraws,
                0.02 * kDraws);
    EXPECT_NEAR(static_cast<double>(inj.dupsInjected()), 0.05 * kDraws,
                0.01 * kDraws);
    EXPECT_NEAR(static_cast<double>(inj.delaysInjected()), 0.02 * kDraws,
                0.004 * kDraws);
    EXPECT_NEAR(static_cast<double>(inj.predictorFlips()), 0.08 * kDraws,
                0.016 * kDraws);
}

TEST(FaultInjector, DropTakesPrecedenceOnOverlap)
{
    // One uniform draw decides all three link classes: with rates
    // (0.3, 0.3, 0.3) the partition is [0,.3) drop, [.3,.6) dup,
    // [.6,.9) delay -- so every class still occurs and their counts
    // sum to at most the decision count.
    FaultConfig cfg;
    cfg.dropRate = 0.3;
    cfg.dupRate = 0.3;
    cfg.delayRate = 0.3;
    cfg.seed = 5;
    FaultInjector inj(cfg);
    const int kDraws = 20000;
    int none = 0;
    for (int i = 0; i < kDraws; ++i) {
        if (inj.onLinkSend() == FaultInjector::LinkAction::None)
            ++none;
    }
    EXPECT_GT(inj.dropsInjected(), 0u);
    EXPECT_GT(inj.dupsInjected(), 0u);
    EXPECT_GT(inj.delaysInjected(), 0u);
    EXPECT_EQ(inj.dropsInjected() + inj.dupsInjected() +
                  inj.delaysInjected() + none,
              static_cast<std::uint64_t>(kDraws));
    EXPECT_NEAR(static_cast<double>(none), 0.1 * kDraws, 0.03 * kDraws);
    // Disjoint partition: each class near its nominal rate, which is
    // only possible if drop consumes its band before dup and delay.
    EXPECT_NEAR(static_cast<double>(inj.dropsInjected()), 0.3 * kDraws,
                0.03 * kDraws);
    EXPECT_NEAR(static_cast<double>(inj.dupsInjected()), 0.3 * kDraws,
                0.03 * kDraws);
}

TEST(FaultInjector, StatsResetClearsMeasuredCounts)
{
    FaultConfig cfg;
    cfg.dropRate = 0.5;
    FaultInjector inj(cfg);
    for (int i = 0; i < 100; ++i)
        inj.onLinkSend();
    EXPECT_GT(inj.dropsInjected(), 0u);
    inj.stats().reset();
    EXPECT_EQ(inj.linkDecisions(), 0u);
    EXPECT_EQ(inj.dropsInjected(), 0u);
}

} // namespace
} // namespace flexsnoop
