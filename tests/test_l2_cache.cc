/**
 * @file
 * Unit tests for the L2 cache model: fills, evictions, state changes,
 * and the transition hook contract the CMP node relies on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/l2_cache.hh"

namespace flexsnoop
{
namespace
{

using LS = LineState;

Addr
line(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

struct Transition
{
    Addr addr;
    LS from;
    LS to;
};

class L2CacheTest : public ::testing::Test
{
  protected:
    L2CacheTest() : cache("l2", 8, 2)
    {
        cache.setTransitionHook([this](Addr a, LS f, LS t) {
            transitions.push_back(Transition{a, f, t});
        });
    }

    L2Cache cache;
    std::vector<Transition> transitions;
};

TEST_F(L2CacheTest, MissingLineIsInvalid)
{
    EXPECT_EQ(cache.state(line(1)), LS::Invalid);
    EXPECT_FALSE(cache.contains(line(1)));
}

TEST_F(L2CacheTest, FillInstallsState)
{
    const auto ev = cache.fill(line(1), LS::Dirty);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(cache.state(line(1)), LS::Dirty);
    EXPECT_TRUE(cache.contains(line(1)));
    ASSERT_EQ(transitions.size(), 1u);
    EXPECT_EQ(transitions[0].from, LS::Invalid);
    EXPECT_EQ(transitions[0].to, LS::Dirty);
}

TEST_F(L2CacheTest, FillReportsEvictionWithOldState)
{
    // 4 sets x 2 ways; lines 0, 4, 8 collide in set 0.
    cache.fill(line(0), LS::Dirty);
    cache.fill(line(4), LS::Shared);
    cache.touch(line(4));
    const auto ev = cache.fill(line(8), LS::Shared);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.addr, line(0));
    EXPECT_EQ(ev.state, LS::Dirty);
    EXPECT_EQ(cache.state(line(0)), LS::Invalid);
}

TEST_F(L2CacheTest, EvictionFiresHookBeforeFill)
{
    cache.fill(line(0), LS::Exclusive);
    cache.fill(line(4), LS::Shared);
    transitions.clear();
    cache.fill(line(8), LS::Shared); // evicts LRU = line 0
    ASSERT_EQ(transitions.size(), 2u);
    EXPECT_EQ(transitions[0].addr, line(0));
    EXPECT_EQ(transitions[0].from, LS::Exclusive);
    EXPECT_EQ(transitions[0].to, LS::Invalid);
    EXPECT_EQ(transitions[1].addr, line(8));
    EXPECT_EQ(transitions[1].from, LS::Invalid);
}

TEST_F(L2CacheTest, RefillOfResidentLineReportsTrueOldState)
{
    cache.fill(line(1), LS::Dirty);
    transitions.clear();
    const auto ev = cache.fill(line(1), LS::Shared);
    EXPECT_FALSE(ev.valid);
    ASSERT_EQ(transitions.size(), 1u);
    // The hook must see Dirty -> Shared, not Invalid -> Shared; the
    // supplier bookkeeping depends on it.
    EXPECT_EQ(transitions[0].from, LS::Dirty);
    EXPECT_EQ(transitions[0].to, LS::Shared);
}

TEST_F(L2CacheTest, ChangeStateUpdatesAndNotifies)
{
    cache.fill(line(2), LS::Exclusive);
    transitions.clear();
    cache.changeState(line(2), LS::SharedGlobal);
    EXPECT_EQ(cache.state(line(2)), LS::SharedGlobal);
    ASSERT_EQ(transitions.size(), 1u);
    EXPECT_EQ(transitions[0].from, LS::Exclusive);
    EXPECT_EQ(transitions[0].to, LS::SharedGlobal);
}

TEST_F(L2CacheTest, ChangeToInvalidFreesEntry)
{
    cache.fill(line(2), LS::Shared);
    cache.changeState(line(2), LS::Invalid);
    EXPECT_FALSE(cache.contains(line(2)));
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST_F(L2CacheTest, SameStateChangeDoesNotNotify)
{
    cache.fill(line(2), LS::Shared);
    transitions.clear();
    cache.changeState(line(2), LS::Shared);
    EXPECT_TRUE(transitions.empty());
}

TEST_F(L2CacheTest, InvalidateReturnsOldState)
{
    cache.fill(line(3), LS::Tagged);
    EXPECT_EQ(cache.invalidate(line(3)), LS::Tagged);
    EXPECT_EQ(cache.invalidate(line(3)), LS::Invalid);
    EXPECT_FALSE(cache.contains(line(3)));
}

TEST_F(L2CacheTest, TouchKeepsLineResidentUnderPressure)
{
    cache.fill(line(0), LS::Shared);
    cache.fill(line(4), LS::Shared);
    cache.touch(line(0)); // line 4 becomes LRU
    cache.fill(line(8), LS::Shared);
    EXPECT_TRUE(cache.contains(line(0)));
    EXPECT_FALSE(cache.contains(line(4)));
}

TEST_F(L2CacheTest, ForEachLineVisitsResidentLines)
{
    cache.fill(line(0), LS::Shared);
    cache.fill(line(1), LS::Dirty);
    std::size_t count = 0;
    cache.forEachLine([&](Addr, LS) { ++count; });
    EXPECT_EQ(count, 2u);
}

TEST_F(L2CacheTest, StatsCountFillsAndEvictions)
{
    cache.fill(line(0), LS::Shared);
    cache.fill(line(4), LS::Shared);
    cache.fill(line(8), LS::Shared); // eviction
    cache.invalidate(line(8));
    EXPECT_EQ(cache.stats().counterValue("fills"), 3u);
    EXPECT_EQ(cache.stats().counterValue("evictions"), 1u);
    EXPECT_EQ(cache.stats().counterValue("invalidations"), 1u);
}

TEST_F(L2CacheTest, WorksWithoutHook)
{
    L2Cache bare("bare", 8, 2);
    bare.fill(line(0), LS::Shared);
    bare.changeState(line(0), LS::Invalid);
    EXPECT_FALSE(bare.contains(line(0)));
}

} // namespace
} // namespace flexsnoop
