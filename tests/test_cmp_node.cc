/**
 * @file
 * Unit tests for the CMP node: supplier-set tracking, protocol
 * transitions for local/remote supply, write invalidation, and the
 * Exact-predictor downgrade path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/cmp_node.hh"
#include "predictor/subset_predictor.hh"

namespace flexsnoop
{
namespace
{

using LS = LineState;

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

class CmpNodeTest : public ::testing::Test
{
  protected:
    CmpNodeTest() : node(0, 4, 64, 4)
    {
        node.setWritebackFn([this](Addr line, bool from_downgrade) {
            writebacks.emplace_back(line, from_downgrade);
        });
    }

    CmpNode node;
    std::vector<std::pair<Addr, bool>> writebacks;
};

TEST_F(CmpNodeTest, EmptyNodeHasNoSuppliers)
{
    EXPECT_FALSE(node.hasSupplier(lineAt(1)));
    EXPECT_FALSE(node.hasLocalSupplier(lineAt(1)));
    EXPECT_FALSE(node.hasAnyCopy(lineAt(1)));
    EXPECT_EQ(node.supplierSetSize(), 0u);
}

TEST_F(CmpNodeTest, FillFromMemoryCreatesGlobalMaster)
{
    node.fillFromMemory(0, lineAt(1));
    EXPECT_EQ(node.coreState(0, lineAt(1)), LS::SharedGlobal);
    EXPECT_TRUE(node.hasSupplier(lineAt(1)));
    EXPECT_EQ(node.supplierCore(lineAt(1)), 0u);
    EXPECT_EQ(node.supplierSetSize(), 1u);
}

TEST_F(CmpNodeTest, FillFromRemoteCreatesLocalMaster)
{
    node.fillFromRemote(1, lineAt(2));
    EXPECT_EQ(node.coreState(1, lineAt(2)), LS::SharedLocal);
    EXPECT_FALSE(node.hasSupplier(lineAt(2)));
    EXPECT_TRUE(node.hasLocalSupplier(lineAt(2)));
    EXPECT_EQ(node.localSupplierCore(lineAt(2)), 1u);
}

TEST_F(CmpNodeTest, SecondRemoteFillIsPlainShared)
{
    node.fillFromRemote(1, lineAt(2));
    node.fillFromRemote(2, lineAt(2));
    EXPECT_EQ(node.coreState(2, lineAt(2)), LS::Shared);
    EXPECT_EQ(node.localSupplierCore(lineAt(2)), 1u);
}

TEST_F(CmpNodeTest, MemoryFillNextToLocalMasterIsShared)
{
    node.fillFromRemote(1, lineAt(2));
    node.fillFromMemory(2, lineAt(2));
    EXPECT_EQ(node.coreState(2, lineAt(2)), LS::Shared);
}

TEST_F(CmpNodeTest, LocalSupplyFromExclusivePromotesToGlobalMaster)
{
    node.fillForWrite(0, lineAt(3)); // D
    node.l2(0).changeState(lineAt(3), LS::Exclusive);
    node.localSupply(2, lineAt(3));
    EXPECT_EQ(node.coreState(0, lineAt(3)), LS::SharedGlobal);
    EXPECT_EQ(node.coreState(2, lineAt(3)), LS::Shared);
    EXPECT_TRUE(node.hasSupplier(lineAt(3)));
}

TEST_F(CmpNodeTest, LocalSupplyFromDirtyCreatesTagged)
{
    node.fillForWrite(0, lineAt(3));
    node.localSupply(1, lineAt(3));
    EXPECT_EQ(node.coreState(0, lineAt(3)), LS::Tagged);
    EXPECT_EQ(node.coreState(1, lineAt(3)), LS::Shared);
    // T is dirty: still the supplier, no writeback yet.
    EXPECT_TRUE(node.hasSupplier(lineAt(3)));
    EXPECT_TRUE(writebacks.empty());
}

TEST_F(CmpNodeTest, RemoteSupplyAdjustsSupplierState)
{
    node.fillForWrite(0, lineAt(4)); // D
    node.supplyRemote(lineAt(4));
    EXPECT_EQ(node.coreState(0, lineAt(4)), LS::Tagged);
    node.l2(0).changeState(lineAt(4), LS::Exclusive);
    node.supplyRemote(lineAt(4));
    EXPECT_EQ(node.coreState(0, lineAt(4)), LS::SharedGlobal);
    // SG and T stay as they are on further supplies.
    node.supplyRemote(lineAt(4));
    EXPECT_EQ(node.coreState(0, lineAt(4)), LS::SharedGlobal);
}

TEST_F(CmpNodeTest, InvalidateAllClearsEveryCopy)
{
    node.fillFromMemory(0, lineAt(5));   // SG
    node.fillFromRemote(1, lineAt(5));   // S (SG is local supplier)
    node.fillFromRemote(2, lineAt(5));   // S
    const bool had_supplier = node.invalidateAll(lineAt(5));
    EXPECT_TRUE(had_supplier);
    EXPECT_FALSE(node.hasAnyCopy(lineAt(5)));
    EXPECT_FALSE(node.hasSupplier(lineAt(5)));
}

TEST_F(CmpNodeTest, InvalidateAllCanSkipTheWriter)
{
    node.fillFromMemory(0, lineAt(5));
    node.fillFromRemote(1, lineAt(5));
    node.invalidateAll(lineAt(5), /*skip_core=*/1);
    EXPECT_EQ(node.coreState(0, lineAt(5)), LS::Invalid);
    EXPECT_NE(node.coreState(1, lineAt(5)), LS::Invalid);
}

TEST_F(CmpNodeTest, InvalidateAllWithoutSupplierReturnsFalse)
{
    node.fillFromRemote(1, lineAt(6)); // SL only
    EXPECT_FALSE(node.invalidateAll(lineAt(6)));
}

TEST_F(CmpNodeTest, UpgradeToDirty)
{
    node.fillFromRemote(0, lineAt(7));
    node.upgradeToDirty(0, lineAt(7));
    EXPECT_EQ(node.coreState(0, lineAt(7)), LS::Dirty);
    EXPECT_TRUE(node.hasSupplier(lineAt(7)));
}

TEST_F(CmpNodeTest, DirtyEvictionWritesBack)
{
    // One-set-per-4-ways 64-entry L2: lines i, i+16, ... collide.
    for (int i = 0; i < 5; ++i)
        node.fillForWrite(0, lineAt(16 * i));
    ASSERT_EQ(writebacks.size(), 1u);
    EXPECT_EQ(writebacks[0].first, lineAt(0));
    EXPECT_FALSE(writebacks[0].second); // not a downgrade writeback
    EXPECT_EQ(node.stats().counterValue("dirty_evictions"), 1u);
}

TEST_F(CmpNodeTest, CleanEvictionIsSilent)
{
    for (int i = 0; i < 5; ++i)
        node.fillFromMemory(0, lineAt(16 * i));
    EXPECT_TRUE(writebacks.empty());
    // The evicted SG line lost its supplier role.
    EXPECT_FALSE(node.hasSupplier(lineAt(0)));
    EXPECT_EQ(node.supplierSetSize(), 4u);
}

TEST_F(CmpNodeTest, DowngradeDirtyWritesBackAndKeepsSl)
{
    node.fillForWrite(0, lineAt(8));
    const bool wrote_back = node.downgrade(lineAt(8));
    EXPECT_TRUE(wrote_back);
    EXPECT_EQ(node.coreState(0, lineAt(8)), LS::SharedLocal);
    EXPECT_FALSE(node.hasSupplier(lineAt(8)));
    EXPECT_TRUE(node.hasLocalSupplier(lineAt(8)));
    ASSERT_EQ(writebacks.size(), 1u);
    EXPECT_TRUE(writebacks[0].second); // downgrade writeback
    EXPECT_TRUE(node.consumeDowngradeMark(lineAt(8)));
    EXPECT_FALSE(node.consumeDowngradeMark(lineAt(8)));
}

TEST_F(CmpNodeTest, DowngradeCleanIsSilent)
{
    node.fillFromMemory(0, lineAt(9)); // SG
    EXPECT_FALSE(node.downgrade(lineAt(9)));
    EXPECT_EQ(node.coreState(0, lineAt(9)), LS::SharedLocal);
    EXPECT_TRUE(writebacks.empty());
}

TEST_F(CmpNodeTest, DowngradeWithoutSupplierIsNoOp)
{
    EXPECT_FALSE(node.downgrade(lineAt(10)));
    EXPECT_EQ(node.stats().counterValue("downgrades"), 0u);
}

TEST_F(CmpNodeTest, PredictorIsTrainedOnSupplierChanges)
{
    auto predictor =
        std::make_unique<SubsetPredictor>("p", 64, 8, 18, 2);
    auto *raw = predictor.get();
    node.setPredictor(std::move(predictor));

    node.fillFromMemory(0, lineAt(11));
    EXPECT_TRUE(raw->predict(lineAt(11)));
    node.invalidateAll(lineAt(11));
    EXPECT_FALSE(raw->predict(lineAt(11)));
}

TEST_F(CmpNodeTest, LatePredictorInstallSyncsExistingSuppliers)
{
    node.fillFromMemory(0, lineAt(12));
    auto predictor =
        std::make_unique<SubsetPredictor>("p", 64, 8, 18, 2);
    auto *raw = predictor.get();
    node.setPredictor(std::move(predictor));
    EXPECT_TRUE(raw->predict(lineAt(12)));
}

TEST_F(CmpNodeTest, SlMoveBetweenStates)
{
    node.fillFromRemote(3, lineAt(13)); // SL at core 3
    node.upgradeToDirty(3, lineAt(13)); // SL -> D
    EXPECT_TRUE(node.hasSupplier(lineAt(13)));
    EXPECT_EQ(node.localSupplierCore(lineAt(13)), 3u);
    node.downgrade(lineAt(13)); // D -> SL (+ writeback)
    EXPECT_EQ(node.localSupplierCore(lineAt(13)), 3u);
    EXPECT_FALSE(node.hasSupplier(lineAt(13)));
}

TEST_F(CmpNodeTest, ForEachLineSeesAllCaches)
{
    node.fillFromMemory(0, lineAt(1));
    node.fillFromRemote(2, lineAt(2));
    std::size_t count = 0;
    node.forEachLine([&](std::size_t, Addr, LS) { ++count; });
    EXPECT_EQ(count, 2u);
}

} // namespace
} // namespace flexsnoop
