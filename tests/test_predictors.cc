/**
 * @file
 * Unit tests for the Supplier Predictors: the Subset/Superset/Exact
 * taxonomy properties of paper §4.1 and the implementations of §4.3.
 */

#include <gtest/gtest.h>

#include <set>

#include "predictor/exact_predictor.hh"
#include "predictor/exclude_cache.hh"
#include "predictor/perfect_predictor.hh"
#include "predictor/predictor_config.hh"
#include "predictor/subset_predictor.hh"
#include "predictor/superset_predictor.hh"
#include "sim/random.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

// --- Subset ----------------------------------------------------------------

TEST(SubsetPredictor, TracksGainAndLoss)
{
    SubsetPredictor pred("p", 64, 8, 18, 2);
    EXPECT_FALSE(pred.predict(lineAt(1)));
    pred.supplierGained(lineAt(1));
    EXPECT_TRUE(pred.predict(lineAt(1)));
    pred.supplierLost(lineAt(1));
    EXPECT_FALSE(pred.predict(lineAt(1)));
}

TEST(SubsetPredictor, NoFalsePositivesProperty)
{
    // Property: under random churn with conflict drops, predict() never
    // returns true for a line outside the true supplier set.
    SubsetPredictor pred("p", 32, 4, 18, 2);
    Rng rng(99);
    std::set<Addr> truth;
    for (int step = 0; step < 20000; ++step) {
        const Addr line = lineAt(rng.nextBelow(500));
        if (rng.chance(0.5) && !truth.count(line)) {
            truth.insert(line);
            pred.supplierGained(line);
        } else if (truth.count(line)) {
            truth.erase(line);
            pred.supplierLost(line);
        }
        const Addr probe = lineAt(rng.nextBelow(500));
        if (pred.predict(probe)) {
            ASSERT_TRUE(truth.count(probe)) << "false positive";
        }
    }
}

TEST(SubsetPredictor, ConflictDropsCauseFalseNegatives)
{
    SubsetPredictor pred("p", 8, 8, 20, 2); // one set, 8 ways
    for (std::uint64_t i = 0; i < 9; ++i)
        pred.supplierGained(lineAt(i));
    EXPECT_EQ(pred.stats().counterValue("conflict_drops"), 1u);
    int present = 0;
    for (std::uint64_t i = 0; i < 9; ++i)
        present += pred.predict(lineAt(i));
    EXPECT_EQ(present, 8); // one true supplier is missing: FN
}

TEST(SubsetPredictor, TaxonomyFlags)
{
    SubsetPredictor pred("p", 64, 8, 18, 2);
    EXPECT_FALSE(pred.mayFalsePositive());
    EXPECT_TRUE(pred.mayFalseNegative());
    EXPECT_EQ(pred.accessLatency(), 2u);
    EXPECT_EQ(pred.storageBits(), 64u * 18u);
}

// --- Exclude cache -----------------------------------------------------------

TEST(ExcludeCache, RemembersKnownAbsentLines)
{
    ExcludeCache cache(16, 4, 18);
    EXPECT_FALSE(cache.contains(lineAt(1)));
    cache.insert(lineAt(1));
    EXPECT_TRUE(cache.contains(lineAt(1)));
    cache.remove(lineAt(1));
    EXPECT_FALSE(cache.contains(lineAt(1)));
}

// --- Superset ----------------------------------------------------------------

TEST(SupersetPredictor, NoFalseNegativesProperty)
{
    // The central correctness property of Superset algorithms (§4.3.4):
    // a negative prediction guarantees the line is not a supplier here.
    SupersetPredictor pred("p", {9, 9, 6}, 32, 4, 18, 2);
    Rng rng(7);
    std::set<Addr> truth;
    for (int step = 0; step < 20000; ++step) {
        const Addr line = lineAt(rng.nextBelow(3000));
        if (rng.chance(0.5) && !truth.count(line)) {
            truth.insert(line);
            pred.supplierGained(line);
        } else if (truth.count(line)) {
            truth.erase(line);
            pred.supplierLost(line);
        }
        // Occasionally train the Exclude cache as the gateway would.
        const Addr probe = lineAt(rng.nextBelow(3000));
        if (pred.predict(probe) && !truth.count(probe))
            pred.falsePositive(probe);
        if (!pred.predict(probe)) {
            ASSERT_FALSE(truth.count(probe)) << "false negative";
        }
    }
}

TEST(SupersetPredictor, ExcludeCacheSuppressesRepeatedFalsePositives)
{
    SupersetPredictor pred("p", {4, 4}, 16, 4, 18, 2);
    // Force aliasing: insert a line that shares all counters with
    // another.
    pred.supplierGained(lineAt(3));
    const Addr alias = lineAt(3 + 256); // beyond 4+4 field bits: full alias
    ASSERT_TRUE(pred.predict(alias)) << "test requires aliasing";
    pred.falsePositive(alias);
    EXPECT_FALSE(pred.predict(alias));
    EXPECT_GE(pred.stats().counterValue("exclude_hits"), 1u);
}

TEST(SupersetPredictor, SupplierGainEvictsFromExcludeCache)
{
    SupersetPredictor pred("p", {4, 4}, 16, 4, 18, 2);
    pred.supplierGained(lineAt(3));
    const Addr alias = lineAt(3 + 256);
    pred.falsePositive(alias);
    EXPECT_FALSE(pred.predict(alias));
    // The alias line now becomes a supplier itself: it must be removed
    // from the Exclude cache or we would have a false negative.
    pred.supplierGained(alias);
    EXPECT_TRUE(pred.predict(alias));
}

TEST(SupersetPredictor, WithoutExcludeCache)
{
    SupersetPredictor pred("p", {4, 4}, 0, 4, 18, 2);
    EXPECT_FALSE(pred.hasExcludeCache());
    pred.supplierGained(lineAt(3));
    const Addr alias = lineAt(3 + 256);
    EXPECT_TRUE(pred.predict(alias));
    pred.falsePositive(alias); // no-op without the cache
    EXPECT_TRUE(pred.predict(alias));
}

TEST(SupersetPredictor, TaxonomyFlags)
{
    SupersetPredictor pred("p", {10, 4, 7}, 2048, 8, 18, 2);
    EXPECT_TRUE(pred.mayFalsePositive());
    EXPECT_FALSE(pred.mayFalseNegative());
    // Bloom (1168 entries x 17 bits) + Exclude (2048 x 18 bits).
    EXPECT_EQ(pred.storageBits(), 1168u * 17u + 2048u * 18u);
}

// --- Exact -------------------------------------------------------------------

TEST(ExactPredictor, DowngradesOnConflictEviction)
{
    ExactPredictor pred("p", 8, 8, 20, 2); // one set
    std::vector<Addr> downgraded;
    pred.setDowngradeFn([&](Addr line) {
        downgraded.push_back(line);
        pred.supplierLost(line); // as the CMP would after demoting
    });
    for (std::uint64_t i = 0; i < 8; ++i)
        pred.supplierGained(lineAt(i));
    EXPECT_TRUE(downgraded.empty());
    pred.supplierGained(lineAt(8));
    ASSERT_EQ(downgraded.size(), 1u);
    EXPECT_EQ(pred.downgrades(), 1u);
    // The displaced line is no longer predicted (it was downgraded).
    EXPECT_FALSE(pred.predict(downgraded[0]));
    EXPECT_TRUE(pred.predict(lineAt(8)));
}

TEST(ExactPredictor, ExactnessProperty)
{
    // With the downgrade loop closed, prediction == truth, always.
    ExactPredictor pred("p", 16, 4, 20, 2);
    std::set<Addr> truth;
    pred.setDowngradeFn([&](Addr line) {
        truth.erase(line);
        pred.supplierLost(line);
    });
    Rng rng(55);
    for (int step = 0; step < 20000; ++step) {
        const Addr line = lineAt(rng.nextBelow(300));
        if (rng.chance(0.5) && !truth.count(line)) {
            truth.insert(line);
            pred.supplierGained(line);
        } else if (truth.count(line)) {
            truth.erase(line);
            pred.supplierLost(line);
        }
        const Addr probe = lineAt(rng.nextBelow(300));
        ASSERT_EQ(pred.predict(probe), truth.count(probe) > 0);
    }
    EXPECT_GT(pred.downgrades(), 0u) << "test should exercise conflicts";
}

TEST(ExactPredictor, TaxonomyFlags)
{
    ExactPredictor pred("p", 2048, 8, 18, 2);
    EXPECT_FALSE(pred.mayFalsePositive());
    EXPECT_FALSE(pred.mayFalseNegative());
}

// --- Perfect -----------------------------------------------------------------

TEST(PerfectPredictor, ConsultsGroundTruth)
{
    std::set<Addr> truth;
    PerfectPredictor pred("p", [&](Addr line) {
        return truth.count(line) > 0;
    });
    EXPECT_FALSE(pred.predict(lineAt(1)));
    truth.insert(lineAt(1));
    EXPECT_TRUE(pred.predict(lineAt(1)));
    EXPECT_EQ(pred.accessLatency(), 0u);
    EXPECT_EQ(pred.storageBits(), 0u);
}

// --- Accuracy accounting -------------------------------------------------------

TEST(SupplierPredictor, RecordOutcomeClassifies)
{
    SubsetPredictor pred("p", 16, 4, 18, 2);
    EXPECT_EQ(pred.recordOutcome(true, true),
              PredictionClass::TruePositive);
    EXPECT_EQ(pred.recordOutcome(false, false),
              PredictionClass::TrueNegative);
    EXPECT_EQ(pred.recordOutcome(true, false),
              PredictionClass::FalsePositive);
    EXPECT_EQ(pred.recordOutcome(false, true),
              PredictionClass::FalseNegative);
    EXPECT_EQ(pred.stats().counterValue("true_positives"), 1u);
    EXPECT_EQ(pred.stats().counterValue("true_negatives"), 1u);
    EXPECT_EQ(pred.stats().counterValue("false_positives"), 1u);
    EXPECT_EQ(pred.stats().counterValue("false_negatives"), 1u);
    EXPECT_EQ(pred.predictions(), 4u);
}

// --- Configuration factory ------------------------------------------------------

TEST(PredictorConfig, PaperPresets)
{
    const auto sub2k = PredictorConfig::subset(2048);
    EXPECT_EQ(sub2k.id, "Sub2k");
    EXPECT_EQ(sub2k.entries, 2048u);
    EXPECT_EQ(sub2k.entryBits, 18u);
    // 2k entries x 18 bits = 4.5 KB storage (paper: 4.8 KB with
    // valid/LRU overheads).
    EXPECT_NEAR(sub2k.storageBits() / 8.0 / 1024.0, 4.5, 0.5);

    const auto y2k = PredictorConfig::superset(true, 2048);
    EXPECT_EQ(y2k.id, "y2k");
    EXPECT_EQ(y2k.bloomFields, (std::vector<unsigned>{10, 4, 7}));
    // ~2.5 KB filter + ~4.5 KB exclude ~= paper's 7.3 KB per node.
    EXPECT_NEAR(y2k.storageBits() / 8.0 / 1024.0, 7.0, 0.7);

    const auto exa8k = PredictorConfig::exact(8192);
    EXPECT_EQ(exa8k.id, "Exa8k");
    EXPECT_EQ(exa8k.entryBits, 16u);
    EXPECT_EQ(exa8k.latency, 3u);
}

TEST(PredictorConfig, FromNameRoundTrips)
{
    for (const char *name :
         {"sub512", "sub2k", "sub8k", "exa512", "exa2k", "exa8k", "y512",
          "y2k", "n2k", "none", "perfect"}) {
        EXPECT_NO_THROW(PredictorConfig::fromName(name)) << name;
    }
    EXPECT_THROW(PredictorConfig::fromName("bogus"),
                 std::invalid_argument);
}

TEST(PredictorConfig, FactoryBuildsMatchingKind)
{
    auto sub = makePredictor(PredictorConfig::subset(512), "s");
    EXPECT_NE(dynamic_cast<SubsetPredictor *>(sub.get()), nullptr);
    auto sup = makePredictor(PredictorConfig::superset(false, 2048), "s");
    EXPECT_NE(dynamic_cast<SupersetPredictor *>(sup.get()), nullptr);
    auto exa = makePredictor(PredictorConfig::exact(512), "s");
    EXPECT_NE(dynamic_cast<ExactPredictor *>(exa.get()), nullptr);
    auto none = makePredictor(PredictorConfig::none(), "s");
    EXPECT_EQ(none, nullptr);
    auto perfect = makePredictor(PredictorConfig::perfect(), "s",
                                 [](Addr) { return false; });
    EXPECT_NE(dynamic_cast<PerfectPredictor *>(perfect.get()), nullptr);
}

} // namespace
} // namespace flexsnoop
