/**
 * @file
 * End-to-end guarantees of the tracing subsystem (docs/TRACING.md):
 *
 *  - observer effect: a traced run's RunResult is bit-identical to an
 *    untraced run of the same configuration;
 *  - determinism: the same (config, traces) pair produces a
 *    byte-identical .fstrace file every time, including when runs
 *    execute concurrently on a worker pool;
 *  - analysis: critical-path components sum exactly to each reported
 *    latency, and the Chrome-trace export is structurally sound.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_executor.hh"
#include "core/simulation.hh"
#include "trace/trace_analysis.hh"
#include "trace/trace_reader.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** Every RunResult field, compared exactly (identical arithmetic on
 *  identical counters makes even the doubles bit-equal). */
void
expectIdentical(const RunResult &off, const RunResult &on)
{
    EXPECT_EQ(off.execCycles, on.execCycles);
    EXPECT_EQ(off.readRingRequests, on.readRingRequests);
    EXPECT_EQ(off.readSnoops, on.readSnoops);
    EXPECT_EQ(off.snoopsPerReadRequest, on.snoopsPerReadRequest);
    EXPECT_EQ(off.readLinkMessages, on.readLinkMessages);
    EXPECT_EQ(off.readLinkMessagesPerRequest,
              on.readLinkMessagesPerRequest);
    EXPECT_EQ(off.energyNj, on.energyNj);
    EXPECT_EQ(off.ringEnergyNj, on.ringEnergyNj);
    EXPECT_EQ(off.snoopEnergyNj, on.snoopEnergyNj);
    EXPECT_EQ(off.predictorEnergyNj, on.predictorEnergyNj);
    EXPECT_EQ(off.downgradeEnergyNj, on.downgradeEnergyNj);
    EXPECT_EQ(off.truePositives, on.truePositives);
    EXPECT_EQ(off.trueNegatives, on.trueNegatives);
    EXPECT_EQ(off.falsePositives, on.falsePositives);
    EXPECT_EQ(off.falseNegatives, on.falseNegatives);
    EXPECT_EQ(off.writeRingRequests, on.writeRingRequests);
    EXPECT_EQ(off.writeSnoops, on.writeSnoops);
    EXPECT_EQ(off.writeFiltered, on.writeFiltered);
    EXPECT_EQ(off.cacheSupplies, on.cacheSupplies);
    EXPECT_EQ(off.memoryFetches, on.memoryFetches);
    EXPECT_EQ(off.downgrades, on.downgrades);
    EXPECT_EQ(off.collisions, on.collisions);
    EXPECT_EQ(off.retries, on.retries);
    EXPECT_EQ(off.writebacks, on.writebacks);
    EXPECT_EQ(off.avgReadLatency, on.avgReadLatency);
    EXPECT_EQ(off.p50ReadLatency, on.p50ReadLatency);
    EXPECT_EQ(off.p95ReadLatency, on.p95ReadLatency);
}

std::string
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

struct Fixture
{
    MachineConfig cfg;
    CoreTraces traces;
    std::string workload;

    explicit Fixture(Algorithm a = Algorithm::SupersetAgg)
    {
        WorkloadProfile profile = miniProfile();
        profile.refsPerCore = 400;
        profile.warmupRefs = 100;
        workload = profile.name;
        traces = SyntheticGenerator(profile).generate();
        cfg = MachineConfig::paperDefault(a, profile.coresPerCmp);
        cfg.setNumCmps(profile.numCmps());
    }
};

TEST(TraceSubsystem, TracingDoesNotPerturbResults)
{
    for (Algorithm a : {Algorithm::Lazy, Algorithm::SupersetAgg,
                        Algorithm::Subset}) {
        SCOPED_TRACE(std::string(toString(a)));
        Fixture f(a);
        const RunResult untraced =
            runSimulation(f.cfg, f.traces, f.workload);

        const std::string path = "/tmp/flexsnoop_test_perturb.fstrace";
        f.cfg.trace.path = path;
        const RunResult traced =
            runSimulation(f.cfg, f.traces, f.workload);
        expectIdentical(untraced, traced);
        std::remove(path.c_str());
    }
}

TEST(TraceSubsystem, SameSeedSameBytes)
{
    Fixture f;
    const std::string p1 = "/tmp/flexsnoop_test_det1.fstrace";
    const std::string p2 = "/tmp/flexsnoop_test_det2.fstrace";
    f.cfg.trace.path = p1;
    runSimulation(f.cfg, f.traces, f.workload);
    f.cfg.trace.path = p2;
    runSimulation(f.cfg, f.traces, f.workload);

    const std::string b1 = readBytes(p1);
    const std::string b2 = readBytes(p2);
    ASSERT_GT(b1.size(), sizeof(TraceFileHeader));
    // The header embeds no path/time, so the whole file must match.
    EXPECT_TRUE(b1 == b2) << "same run produced different trace bytes";
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(TraceSubsystem, ParallelRunsMatchSerialRuns)
{
    // Four identical cells on a 4-worker pool vs. the same cells run
    // serially: every per-cell trace file must be byte-identical, which
    // proves the per-run sinks do not interact across threads.
    constexpr std::size_t kCells = 4;
    Fixture base;
    std::vector<MachineConfig> cfgs(kCells, base.cfg);
    for (std::size_t i = 0; i < kCells; ++i)
        cfgs[i].trace.path = "/tmp/flexsnoop_test_par" +
                             std::to_string(i) + ".fstrace";

    ParallelExecutor pool(kCells);
    pool.map(kCells, [&](std::size_t i) {
        return runSimulation(cfgs[i], base.traces, base.workload);
    });

    const std::string serial_path = "/tmp/flexsnoop_test_serial.fstrace";
    MachineConfig serial_cfg = base.cfg;
    serial_cfg.trace.path = serial_path;
    runSimulation(serial_cfg, base.traces, base.workload);
    const std::string expected = readBytes(serial_path);
    ASSERT_GT(expected.size(), sizeof(TraceFileHeader));

    for (std::size_t i = 0; i < kCells; ++i) {
        EXPECT_TRUE(readBytes(cfgs[i].trace.path) == expected)
            << "cell " << i << " diverged";
        std::remove(cfgs[i].trace.path.c_str());
    }
    std::remove(serial_path.c_str());
}

TEST(TraceSubsystem, CriticalPathComponentsSumToLatency)
{
    Fixture f;
    const std::string path = "/tmp/flexsnoop_test_cp.fstrace";
    f.cfg.trace.path = path;
    runSimulation(f.cfg, f.traces, f.workload);

    const TraceFile file = loadTrace(path);
    const TraceAnalysis analysis = analyzeTrace(file);
    ASSERT_GT(analysis.completed(), 0u);

    std::size_t checked = 0;
    for (const TxnTimeline &t : analysis.txns) {
        if (!t.complete)
            continue;
        const CriticalPath cp = criticalPath(file, t);
        ASSERT_EQ(cp.total(), t.latency) << "txn " << t.txn;
        ++checked;
    }
    EXPECT_EQ(checked, analysis.completed());
    std::remove(path.c_str());
}

TEST(TraceSubsystem, DecodedTraceIsConsistent)
{
    Fixture f;
    const std::string path = "/tmp/flexsnoop_test_decode.fstrace";
    f.cfg.trace.path = path;
    const RunResult result = runSimulation(f.cfg, f.traces, f.workload);

    const TraceFile file = loadTrace(path);
    EXPECT_EQ(file.header.numNodes, f.cfg.numCmps);
    EXPECT_EQ(file.header.numCores, f.cfg.numCores());
    EXPECT_EQ(file.header.recorded, file.records.size());
    EXPECT_EQ(file.header.dropped, 0u);

    const TraceAnalysis analysis = analyzeTrace(file);
    EXPECT_GT(analysis.txns.size(), 0u);
    EXPECT_GT(analysis.completed(), 0u);
    // Every completed transaction traversed at least one ring link.
    for (const TxnTimeline &t : analysis.txns) {
        if (t.complete) {
            EXPECT_GT(t.hops, 0u) << "txn " << t.txn;
        }
    }
    // The trace covers warmup and drain too, so it must see at least
    // as many ring requests as the measured-phase statistics report.
    std::size_t reads = 0;
    for (const TxnTimeline &t : analysis.txns)
        if (!t.isWrite)
            ++reads;
    EXPECT_GE(reads, result.readRingRequests);

    std::ostringstream summary;
    writeSummary(summary, file, analysis);
    EXPECT_NE(summary.str().find("spans: "), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceSubsystem, ChromeTraceExportIsStructurallySound)
{
    Fixture f;
    const std::string path = "/tmp/flexsnoop_test_json.fstrace";
    f.cfg.trace.path = path;
    runSimulation(f.cfg, f.traces, f.workload);

    const TraceFile file = loadTrace(path);
    const TraceAnalysis analysis = analyzeTrace(file);
    std::ostringstream os;
    writeChromeTrace(os, file, analysis);
    const std::string json = os.str();

    EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
    EXPECT_EQ(json[json.size() - 2], '}');

    const auto count = [&](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t at = json.find(needle);
             at != std::string::npos; at = json.find(needle, at + 1))
            ++n;
        return n;
    };
    // Async span begins and ends must pair up, one per completed txn.
    EXPECT_EQ(count("\"ph\":\"b\""), analysis.completed());
    EXPECT_EQ(count("\"ph\":\"e\""), analysis.completed());
    EXPECT_GT(count("\"ph\":\"X\""), 0u);
    // Braces balance (no truncated emission).
    EXPECT_EQ(count("{"), count("}"));
    std::remove(path.c_str());
}

} // namespace
} // namespace flexsnoop
