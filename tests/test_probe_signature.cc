/**
 * @file
 * The probe-signature equivalence guarantee: carrying hash-once filter
 * indices, the L2 set and the home node inside every ring message
 * (FLEXSNOOP_NO_PROBE_SIG disables it) is a pure data-layout change —
 * every RunResult field and every .fstrace byte must be identical to
 * the recompute-at-every-hop fallback. Any divergence means a carried
 * index disagrees with what a hop would have derived from the address.
 *
 * Also covers the predictor-level contract directly: the signature
 * overloads of predict()/mayBePresent() answer exactly like the hashing
 * paths and train the same counters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "predictor/presence_predictor.hh"
#include "predictor/superset_predictor.hh"
#include "sim/random.hh"
#include "trace/trace_reader.hh"
#include "workload/core_model.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

/** Scoped FLEXSNOOP_NO_PROBE_SIG=1: controllers built inside issue
 *  ring messages without signatures, forcing every hop onto the
 *  recompute-from-address fallback. */
class NoSignatureEnv
{
  public:
    NoSignatureEnv() { ::setenv("FLEXSNOOP_NO_PROBE_SIG", "1", 1); }
    ~NoSignatureEnv() { ::unsetenv("FLEXSNOOP_NO_PROBE_SIG"); }
    NoSignatureEnv(const NoSignatureEnv &) = delete;
    NoSignatureEnv &operator=(const NoSignatureEnv &) = delete;
};

/** Every RunResult field, compared exactly (identical arithmetic on
 *  identical counters makes even the doubles bit-equal). */
void
expectIdentical(const RunResult &sig, const RunResult &hashed)
{
    EXPECT_EQ(sig.execCycles, hashed.execCycles);
    EXPECT_EQ(sig.readRingRequests, hashed.readRingRequests);
    EXPECT_EQ(sig.readSnoops, hashed.readSnoops);
    EXPECT_EQ(sig.snoopsPerReadRequest, hashed.snoopsPerReadRequest);
    EXPECT_EQ(sig.readLinkMessages, hashed.readLinkMessages);
    EXPECT_EQ(sig.readLinkMessagesPerRequest,
              hashed.readLinkMessagesPerRequest);
    EXPECT_EQ(sig.energyNj, hashed.energyNj);
    EXPECT_EQ(sig.ringEnergyNj, hashed.ringEnergyNj);
    EXPECT_EQ(sig.snoopEnergyNj, hashed.snoopEnergyNj);
    EXPECT_EQ(sig.predictorEnergyNj, hashed.predictorEnergyNj);
    EXPECT_EQ(sig.downgradeEnergyNj, hashed.downgradeEnergyNj);
    EXPECT_EQ(sig.truePositives, hashed.truePositives);
    EXPECT_EQ(sig.trueNegatives, hashed.trueNegatives);
    EXPECT_EQ(sig.falsePositives, hashed.falsePositives);
    EXPECT_EQ(sig.falseNegatives, hashed.falseNegatives);
    EXPECT_EQ(sig.writeRingRequests, hashed.writeRingRequests);
    EXPECT_EQ(sig.writeSnoops, hashed.writeSnoops);
    EXPECT_EQ(sig.writeFiltered, hashed.writeFiltered);
    EXPECT_EQ(sig.cacheSupplies, hashed.cacheSupplies);
    EXPECT_EQ(sig.memoryFetches, hashed.memoryFetches);
    EXPECT_EQ(sig.downgrades, hashed.downgrades);
    EXPECT_EQ(sig.collisions, hashed.collisions);
    EXPECT_EQ(sig.retries, hashed.retries);
    EXPECT_EQ(sig.writebacks, hashed.writebacks);
    EXPECT_EQ(sig.avgReadLatency, hashed.avgReadLatency);
    EXPECT_EQ(sig.p50ReadLatency, hashed.p50ReadLatency);
    EXPECT_EQ(sig.p95ReadLatency, hashed.p95ReadLatency);
}

/** Shrink a built-in profile so the full matrix stays fast. */
WorkloadProfile
shrunk(WorkloadProfile p)
{
    p.refsPerCore = std::min<std::size_t>(p.refsPerCore, 400);
    p.warmupRefs = std::min<std::size_t>(p.warmupRefs, 100);
    return p;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

/** Build a message-style signature for @p line against the predictors
 *  under test (what CoherenceController::computeSignature produces). */
ProbeSignature
signatureFor(Addr line, const SupplierPredictor &pred,
             const PresencePredictor &presence)
{
    ProbeSignature sig;
    sig.home = 0; // any non-invalid node marks the signature valid
    sig.supplierFields =
        static_cast<std::uint8_t>(pred.fillSignature(line, sig.supplier));
    sig.presenceFields = static_cast<std::uint8_t>(
        presence.fillSignature(line, sig.presence));
    return sig;
}

TEST(ProbeSignature, SupersetPredictorSignatureAnswersMatchHashedAnswers)
{
    SupersetPredictor sig_pred("sig", {10, 4, 7}, 32, 4, 34, 2);
    SupersetPredictor hash_pred("hash", {10, 4, 7}, 32, 4, 34, 2);
    PresencePredictor presence("presence");
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        const Addr line = lineAt(rng.nextBelow(5000));
        sig_pred.supplierGained(line);
        hash_pred.supplierGained(line);
    }
    for (int i = 0; i < 5000; ++i) {
        const Addr line = lineAt(rng.nextBelow(6000));
        const ProbeSignature sig =
            signatureFor(line, sig_pred, presence);
        ASSERT_EQ(sig.supplierFields, 3u);
        ASSERT_EQ(sig_pred.wouldPredict(line, sig),
                  hash_pred.wouldPredict(line));
        ASSERT_EQ(sig_pred.predict(line, sig), hash_pred.predict(line));
    }
    // Both took the counted-lookup path the same number of times...
    EXPECT_EQ(sig_pred.stats().counter("lookups").value(),
              hash_pred.stats().counter("lookups").value());
    // ...but through different probe mechanics.
    EXPECT_EQ(sig_pred.stats().counter("probe_signature").value(), 5000u);
    EXPECT_EQ(sig_pred.stats().counter("probe_hashed").value(), 0u);
    EXPECT_EQ(hash_pred.stats().counter("probe_hashed").value(), 5000u);
}

TEST(ProbeSignature, MismatchedGeometryFallsBackToHashing)
{
    // A signature built by a {10,4,7} node probing a predictor with a
    // different field count must be ignored, not misapplied.
    SupersetPredictor pred("p", {9, 9, 6}, 0, 1, 34, 2);
    pred.supplierGained(lineAt(3));
    ProbeSignature sig;
    sig.home = 0;
    sig.supplierFields = 2; // wrong arity on purpose
    EXPECT_TRUE(pred.predict(lineAt(3), sig));
    EXPECT_EQ(pred.stats().counter("probe_hashed").value(), 1u);
    EXPECT_EQ(pred.stats().counter("probe_signature").value(), 0u);
    // An invalid (default) signature — raw test-crafted messages — also
    // falls back.
    EXPECT_TRUE(pred.predict(lineAt(3), ProbeSignature{}));
    EXPECT_EQ(pred.stats().counter("probe_hashed").value(), 2u);
}

TEST(ProbeSignature, PresencePredictorSignatureAnswersMatchHashedAnswers)
{
    SupersetPredictor supplier("s", {10, 4, 7}, 0, 1, 34, 2);
    PresencePredictor sig_pres("sp");
    PresencePredictor hash_pres("hp");
    Rng rng(11);
    for (int i = 0; i < 600; ++i) {
        const Addr line = lineAt(rng.nextBelow(8000));
        sig_pres.linePresent(line);
        hash_pres.linePresent(line);
    }
    for (int i = 0; i < 5000; ++i) {
        const Addr line = lineAt(rng.nextBelow(10000));
        const ProbeSignature sig = signatureFor(line, supplier, sig_pres);
        ASSERT_EQ(sig_pres.wouldBePresent(line, sig),
                  hash_pres.wouldBePresent(line));
        ASSERT_EQ(sig_pres.mayBePresent(line, sig),
                  hash_pres.mayBePresent(line));
    }
    EXPECT_EQ(sig_pres.stats().counter("lookups").value(),
              hash_pres.stats().counter("lookups").value());
    EXPECT_EQ(sig_pres.stats().counter("filtered").value(),
              hash_pres.stats().counter("filtered").value());
    EXPECT_EQ(sig_pres.stats().counter("probe_signature").value(), 5000u);
    EXPECT_EQ(hash_pres.stats().counter("probe_hashed").value(), 5000u);
}

class SignatureEquivalence : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(SignatureEquivalence, AllBuiltinProfiles)
{
    std::vector<WorkloadProfile> profiles = splash2Profiles();
    profiles.push_back(specJbbProfile());
    profiles.push_back(specWebProfile());
    profiles.push_back(miniProfile());

    for (const WorkloadProfile &base : profiles) {
        const WorkloadProfile profile = shrunk(base);
        MachineConfig cfg =
            MachineConfig::paperDefault(GetParam(), profile.coresPerCmp);
        cfg.setNumCmps(profile.numCmps());
        SyntheticGenerator gen(profile);
        const CoreTraces traces = gen.generate();
        SCOPED_TRACE(profile.name + " / " +
                     std::string(toString(cfg.algorithm)));
        const RunResult with_sig =
            runSimulation(cfg, traces, profile.name);
        RunResult without_sig;
        {
            NoSignatureEnv env;
            without_sig = runSimulation(cfg, traces, profile.name);
        }
        expectIdentical(with_sig, without_sig);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SignatureEquivalence,
    ::testing::ValuesIn(paperAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm> &info) {
        return std::string(toString(info.param));
    });

TEST(ProbeSignature, TraceBytesIdenticalWithAndWithoutSignatures)
{
    // Byte-identical .fstrace files mean every hop decision, gate
    // deferral and snoop fired at the same cycle with the same
    // operands — the signature is provably a pure layout change.
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore = 400;
    profile.warmupRefs = 100;
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::SupersetAgg, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());

    const std::string sig_path = "/tmp/flexsnoop_test_ps.fstrace";
    const std::string hash_path = "/tmp/flexsnoop_test_ph.fstrace";
    cfg.trace.path = sig_path;
    runSimulation(cfg, traces, profile.name);
    {
        NoSignatureEnv env;
        cfg.trace.path = hash_path;
        runSimulation(cfg, traces, profile.name);
    }

    const std::string sig_bytes = readBytes(sig_path);
    const std::string hash_bytes = readBytes(hash_path);
    ASSERT_GT(sig_bytes.size(), sizeof(TraceFileHeader));
    EXPECT_TRUE(sig_bytes == hash_bytes)
        << "signature carrying changed the event stream";
    std::remove(sig_path.c_str());
    std::remove(hash_path.c_str());
}

} // namespace
} // namespace flexsnoop
