/**
 * @file
 * Unit tests for the generic set-associative array.
 */

#include <gtest/gtest.h>

#include "mem/set_assoc_array.hh"

namespace flexsnoop
{
namespace
{

Addr
line(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

TEST(SetAssocArray, GeometryDerivedFromParameters)
{
    SetAssocArray<int> arr(64, 4);
    EXPECT_EQ(arr.numEntries(), 64u);
    EXPECT_EQ(arr.associativity(), 4u);
    EXPECT_EQ(arr.numSets(), 16u);
    EXPECT_EQ(arr.occupancy(), 0u);
}

TEST(SetAssocArray, InsertThenLookup)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(line(3), 42);
    const auto *way = arr.lookup(line(3));
    ASSERT_NE(way, nullptr);
    EXPECT_EQ(way->data, 42);
    EXPECT_EQ(way->tag, line(3));
    EXPECT_EQ(arr.occupancy(), 1u);
}

TEST(SetAssocArray, LookupMissReturnsNull)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(line(3), 1);
    EXPECT_EQ(arr.lookup(line(4)), nullptr);
}

TEST(SetAssocArray, OffsetBitsIgnored)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(line(3) + 17, 9);
    ASSERT_NE(arr.lookup(line(3) + 42), nullptr);
    EXPECT_EQ(arr.lookup(line(3))->data, 9);
}

TEST(SetAssocArray, ReinsertOverwritesPayloadWithoutEviction)
{
    SetAssocArray<int> arr(16, 4);
    arr.insert(line(3), 1);
    const auto res = arr.insert(line(3), 2);
    EXPECT_FALSE(res.evicted);
    EXPECT_EQ(arr.lookup(line(3))->data, 2);
    EXPECT_EQ(arr.occupancy(), 1u);
}

TEST(SetAssocArray, EvictsLruWhenSetFull)
{
    // 1 set, 2 ways: lines all map to the same set.
    SetAssocArray<int> arr(2, 2);
    arr.insert(line(0), 10);
    arr.insert(line(1), 11);
    // Touch line 0 so line 1 becomes LRU.
    arr.lookup(line(0));
    const auto res = arr.insert(line(2), 12);
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.evictedAddr, line(1));
    EXPECT_EQ(res.evictedPayload, 11);
    EXPECT_NE(arr.lookup(line(0)), nullptr);
    EXPECT_EQ(arr.lookup(line(1)), nullptr);
    EXPECT_NE(arr.lookup(line(2)), nullptr);
}

TEST(SetAssocArray, LookupWithoutTouchDoesNotAffectLru)
{
    SetAssocArray<int> arr(2, 2);
    arr.insert(line(0), 10);
    arr.insert(line(1), 11);
    arr.lookup(line(0), /*touch=*/false); // line 0 stays LRU
    const auto res = arr.insert(line(2), 12);
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.evictedAddr, line(0));
}

TEST(SetAssocArray, EraseFreesTheWay)
{
    SetAssocArray<int> arr(4, 2);
    arr.insert(line(0), 1);
    EXPECT_TRUE(arr.erase(line(0)));
    EXPECT_EQ(arr.lookup(line(0)), nullptr);
    EXPECT_FALSE(arr.erase(line(0)));
    EXPECT_EQ(arr.occupancy(), 0u);
}

TEST(SetAssocArray, DifferentSetsDoNotInterfere)
{
    SetAssocArray<int> arr(8, 2); // 4 sets
    // Lines 0 and 4 share set 0; lines 1, 2, 3 use other sets.
    arr.insert(line(0), 0);
    arr.insert(line(1), 1);
    arr.insert(line(2), 2);
    arr.insert(line(3), 3);
    arr.insert(line(4), 4);
    EXPECT_EQ(arr.occupancy(), 5u);
    for (std::uint64_t i = 0; i <= 4; ++i)
        ASSERT_NE(arr.lookup(line(i)), nullptr) << i;
}

TEST(SetAssocArray, ClearInvalidatesEverything)
{
    SetAssocArray<int> arr(8, 2);
    for (std::uint64_t i = 0; i < 6; ++i)
        arr.insert(line(i), static_cast<int>(i));
    arr.clear();
    EXPECT_EQ(arr.occupancy(), 0u);
    for (std::uint64_t i = 0; i < 6; ++i)
        EXPECT_EQ(arr.lookup(line(i)), nullptr);
}

TEST(SetAssocArray, ForEachValidVisitsAllEntries)
{
    SetAssocArray<int> arr(8, 2);
    arr.insert(line(1), 10);
    arr.insert(line(2), 20);
    int sum = 0;
    std::size_t count = 0;
    arr.forEachValid([&](Addr, const int &v) {
        sum += v;
        ++count;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(sum, 30);
}

TEST(SetAssocArray, FullAssociativeStress)
{
    SetAssocArray<int> arr(128, 8);
    // Insert 4x the capacity; occupancy must cap at capacity and every
    // resident line must be findable with the right payload.
    for (std::uint64_t i = 0; i < 512; ++i)
        arr.insert(line(i), static_cast<int>(i));
    EXPECT_EQ(arr.occupancy(), 128u);
    arr.forEachValid([&](Addr a, const int &v) {
        EXPECT_EQ(static_cast<int>(lineIndex(a)), v);
    });
}

TEST(SetAssocArray, InsertResultDefaultIsNoEviction)
{
    SetAssocArray<int> arr(8, 2);
    const auto res = arr.insert(line(0), 5);
    EXPECT_FALSE(res.evicted);
    EXPECT_EQ(res.evictedAddr, kInvalidAddr);
}

} // namespace
} // namespace flexsnoop
