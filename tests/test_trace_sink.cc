/**
 * @file
 * Unit tests for the trace capture layer (src/trace/): spec parsing,
 * the sink's drop/spill overflow modes and accounting, the snapshot
 * piggyback hook, and the file reader's validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_reader.hh"
#include "trace/trace_sink.hh"

namespace flexsnoop
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return "/tmp/flexsnoop_test_" + name + ".fstrace";
}

TEST(TraceConfig, DisabledByDefault)
{
    TraceConfig cfg;
    EXPECT_FALSE(cfg.enabled());
}

TEST(TraceConfig, FromSpecPathOnly)
{
    const TraceConfig cfg = TraceConfig::fromSpec("out.fstrace");
    EXPECT_TRUE(cfg.enabled());
    EXPECT_EQ(cfg.path, "out.fstrace");
    EXPECT_EQ(cfg.ringKb, 256u);
    EXPECT_EQ(cfg.mode, TraceMode::Spill);
}

TEST(TraceConfig, FromSpecAllKeys)
{
    const TraceConfig cfg = TraceConfig::fromSpec(
        "t.fstrace,ring_kb=64,mode=drop,snapshot=500");
    EXPECT_EQ(cfg.path, "t.fstrace");
    EXPECT_EQ(cfg.ringKb, 64u);
    EXPECT_EQ(cfg.mode, TraceMode::Drop);
    EXPECT_EQ(cfg.snapshotCycles, Cycle{500});
}

TEST(TraceConfig, FromSpecRejectsBadInput)
{
    EXPECT_THROW(TraceConfig::fromSpec(""), std::invalid_argument);
    EXPECT_THROW(TraceConfig::fromSpec("f,ring_kb=abc"),
                 std::invalid_argument);
    EXPECT_THROW(TraceConfig::fromSpec("f,ring_kb=0"),
                 std::invalid_argument);
    EXPECT_THROW(TraceConfig::fromSpec("f,mode=banana"),
                 std::invalid_argument);
    EXPECT_THROW(TraceConfig::fromSpec("f,unknown=1"),
                 std::invalid_argument);
    EXPECT_THROW(TraceConfig::fromSpec("f,ring_kb"),
                 std::invalid_argument);
}

TEST(TraceSink, RoundTripThroughReader)
{
    const std::string path = tempPath("roundtrip");
    TraceConfig cfg;
    cfg.path = path;
    cfg.snapshotCycles = 0;
    {
        TraceSink sink(cfg, 8, 32);
        sink.record(TraceEvent::TxnStart, 100, 7, 0x1234, 3, 2, 1, 0);
        sink.record(TraceEvent::Hop, 110, 7, 0x1234, 119, 2, 0, 4);
        sink.record(TraceEvent::TxnRetire, 200, 7, 0x1234);
        sink.finish();
        EXPECT_EQ(sink.recorded(), 3u);
        EXPECT_EQ(sink.dropped(), 0u);
    }

    const TraceFile file = loadTrace(path);
    EXPECT_EQ(file.header.version, kTraceVersion);
    EXPECT_EQ(file.header.numNodes, 8u);
    EXPECT_EQ(file.header.numCores, 32u);
    EXPECT_EQ(file.header.recorded, 3u);
    ASSERT_EQ(file.records.size(), 3u);

    const TraceRecord &r = file.records[0];
    EXPECT_EQ(r.event(), TraceEvent::TxnStart);
    EXPECT_EQ(r.cycle, Cycle{100});
    EXPECT_EQ(r.txn, TransactionId{7});
    EXPECT_EQ(r.arg0, Addr{0x1234});
    EXPECT_EQ(r.arg1, 3u);
    EXPECT_EQ(r.node, 2);
    EXPECT_EQ(r.a, 1);
    EXPECT_EQ(file.records[1].arg1, 119u);
    EXPECT_EQ(file.records[2].event(), TraceEvent::TxnRetire);
    std::remove(path.c_str());
}

TEST(TraceSink, InvalidTransactionMapsToZero)
{
    const std::string path = tempPath("invalid_txn");
    TraceConfig cfg;
    cfg.path = path;
    {
        TraceSink sink(cfg, 2, 2);
        sink.record(TraceEvent::Hop, 1, kInvalidTransaction, 0);
    }
    const TraceFile file = loadTrace(path);
    ASSERT_EQ(file.records.size(), 1u);
    EXPECT_EQ(file.records[0].txn, 0u);
    std::remove(path.c_str());
}

TEST(TraceSink, DropModeCountsOverflow)
{
    const std::string path = tempPath("drop");
    TraceConfig cfg;
    cfg.path = path;
    cfg.ringKb = 1; // 1024 B / 40 B = 25 records
    cfg.mode = TraceMode::Drop;
    cfg.snapshotCycles = 0;
    const std::size_t capacity = 1024 / sizeof(TraceRecord);
    {
        TraceSink sink(cfg, 2, 2);
        for (std::uint64_t i = 0; i < capacity + 10; ++i)
            sink.record(TraceEvent::Hop, i, 1, 0);
        EXPECT_EQ(sink.recorded(), capacity);
        EXPECT_EQ(sink.dropped(), 10u);
        EXPECT_EQ(sink.spills(), 0u);
    }
    const TraceFile file = loadTrace(path);
    EXPECT_EQ(file.records.size(), capacity);
    EXPECT_EQ(file.header.recorded, capacity);
    EXPECT_EQ(file.header.dropped, 10u);
    std::remove(path.c_str());
}

TEST(TraceSink, SpillModeKeepsEverything)
{
    const std::string path = tempPath("spill");
    TraceConfig cfg;
    cfg.path = path;
    cfg.ringKb = 1;
    cfg.mode = TraceMode::Spill;
    cfg.snapshotCycles = 0;
    const std::size_t capacity = 1024 / sizeof(TraceRecord);
    const std::size_t total = 3 * capacity + 7;
    {
        TraceSink sink(cfg, 2, 2);
        for (std::uint64_t i = 0; i < total; ++i)
            sink.record(TraceEvent::Hop, i, 1, i);
        EXPECT_EQ(sink.recorded(), total);
        EXPECT_EQ(sink.dropped(), 0u);
        EXPECT_EQ(sink.spills(), 3u);
    }
    const TraceFile file = loadTrace(path);
    ASSERT_EQ(file.records.size(), total);
    EXPECT_EQ(file.header.spills, 3u);
    // Spills must preserve capture order.
    for (std::size_t i = 0; i < total; ++i)
        EXPECT_EQ(file.records[i].arg0, i) << i;
    std::remove(path.c_str());
}

TEST(TraceSink, SnapshotHookPiggybacksOnRecords)
{
    const std::string path = tempPath("snapshot");
    TraceConfig cfg;
    cfg.path = path;
    cfg.snapshotCycles = 100;
    {
        TraceSink sink(cfg, 2, 2);
        sink.setSnapshotFn([&sink](Cycle cycle) {
            // Re-entrant record: must not re-trigger the hook.
            sink.record(TraceEvent::CounterSnapshot, cycle, 0, 42, 0,
                        kTraceNoNode, 0);
        });
        sink.record(TraceEvent::Hop, 10, 1, 0);  // before first due
        sink.record(TraceEvent::Hop, 150, 1, 0); // due at 100 -> fires
        sink.record(TraceEvent::Hop, 180, 1, 0); // next due at 200
        sink.record(TraceEvent::Hop, 410, 1, 0); // due at 200 -> fires
    }
    const TraceFile file = loadTrace(path);
    std::vector<Cycle> snaps;
    for (const TraceRecord &r : file.records)
        if (r.event() == TraceEvent::CounterSnapshot)
            snaps.push_back(r.cycle);
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0], Cycle{150});
    EXPECT_EQ(snaps[1], Cycle{410});
    std::remove(path.c_str());
}

TEST(TraceReader, RejectsMissingFile)
{
    EXPECT_THROW(loadTrace("/tmp/flexsnoop_does_not_exist.fstrace"),
                 std::runtime_error);
}

TEST(TraceReader, RejectsBadMagicAndTruncation)
{
    const std::string path = tempPath("bad");
    {
        std::ofstream os(path, std::ios::binary);
        os << "NOTATRACEFILE and then some padding to pass size checks "
              "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    }
    EXPECT_THROW(loadTrace(path), std::runtime_error);

    // Valid header, then chop a record in half.
    TraceConfig cfg;
    cfg.path = path;
    {
        TraceSink sink(cfg, 2, 2);
        sink.record(TraceEvent::Hop, 1, 1, 0);
        sink.record(TraceEvent::Hop, 2, 1, 0);
    }
    std::string data;
    {
        std::ifstream is(path, std::ios::binary);
        data.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
    }
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size() - 17));
    }
    EXPECT_THROW(loadTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace flexsnoop
