/**
 * @file
 * Unit tests for the Machine facade: construction per configuration,
 * stat reset at the warmup boundary, energy finalization, and the
 * predictor-accuracy aggregation the benches rely on.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/simulation.hh"
#include "predictor/exact_predictor.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{
namespace
{

Addr
lineAt(std::uint64_t idx)
{
    return idx * kLineSizeBytes;
}

TEST(Machine, BuildsPaperDefault)
{
    Machine machine(MachineConfig::paperDefault(Algorithm::SupersetAgg));
    EXPECT_EQ(machine.numNodes(), 8u);
    EXPECT_EQ(machine.ring().numRings(), 2u);
    EXPECT_EQ(machine.controller().coresPerCmp(), 4u);
    EXPECT_EQ(machine.policy().algorithm(), Algorithm::SupersetAgg);
    for (NodeId n = 0; n < machine.numNodes(); ++n)
        EXPECT_NE(machine.node(n).predictor(), nullptr);
}

TEST(Machine, LazyNeedsNoPredictor)
{
    Machine machine(MachineConfig::paperDefault(Algorithm::Lazy));
    for (NodeId n = 0; n < machine.numNodes(); ++n)
        EXPECT_EQ(machine.node(n).predictor(), nullptr);
}

TEST(Machine, ExactPredictorWiredToDowngrade)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Exact);
    // A tiny predictor (4 sets) whose sets are finer than the L2's (64
    // sets): the fills below collide in the predictor only.
    cfg.predictor = PredictorConfig::exact(32);
    Machine machine(cfg);
    // Fill one more supplier line than one predictor set holds; the
    // eviction must downgrade the victim in the L2 (not just forget it).
    CmpNode &node = machine.node(0);
    const std::size_t ways = cfg.predictor.ways;
    const std::size_t sets = cfg.predictor.entries / ways;
    for (std::size_t i = 0; i <= ways; ++i)
        node.fillForWrite(0, lineAt(1 + i * sets)); // same predictor set
    EXPECT_EQ(machine.downgrades(), 1u);
    EXPECT_EQ(machine.energy().count(EnergyEvent::DowngradeWriteback),
              1u);
}

TEST(Machine, OraclePredictorSeesActualState)
{
    Machine machine(MachineConfig::testDefault(Algorithm::Oracle));
    CmpNode &node = machine.node(1);
    EXPECT_FALSE(node.predictor()->predict(lineAt(9)));
    node.fillForWrite(0, lineAt(9));
    EXPECT_TRUE(node.predictor()->predict(lineAt(9)));
}

TEST(Machine, ResetStatsClearsEverything)
{
    Machine machine(MachineConfig::testDefault(Algorithm::SupersetAgg));
    machine.controller().setCompletionHandler([](CoreId, Addr, bool) {});
    machine.controller().coreRead(0, lineAt(1));
    machine.queue().run();
    EXPECT_GT(machine.energy().totalNj(), 0.0);
    EXPECT_GT(machine.controller().stats().counterValue("reads"), 0u);
    machine.resetStats();
    EXPECT_DOUBLE_EQ(machine.energy().totalNj(), 0.0);
    EXPECT_EQ(machine.controller().stats().counterValue("reads"), 0u);
    EXPECT_EQ(machine.memory().reads(), 0u);
    EXPECT_EQ(machine.predictorTruePositives() +
                  machine.predictorTrueNegatives() +
                  machine.predictorFalsePositives() +
                  machine.predictorFalseNegatives(),
              0u);
}

TEST(Machine, FinalizeEnergyAddsPredictorActivity)
{
    Machine machine(MachineConfig::testDefault(Algorithm::SupersetCon));
    machine.controller().setCompletionHandler([](CoreId, Addr, bool) {});
    machine.controller().coreRead(0, lineAt(1));
    machine.queue().run();
    EXPECT_EQ(machine.energy().count(EnergyEvent::PredictorAccess), 0u);
    machine.finalizeEnergy();
    EXPECT_GT(machine.energy().count(EnergyEvent::PredictorAccess), 0u);
}

TEST(Machine, PredictorAccuracyAggregatesOverNodes)
{
    Machine machine(MachineConfig::testDefault(Algorithm::SupersetCon));
    machine.controller().setCompletionHandler([](CoreId, Addr, bool) {});
    machine.node(2).fillForWrite(0, lineAt(1));
    machine.controller().coreRead(0, lineAt(1));
    machine.queue().run();
    // Node 2 predicted positive (true), nodes 1 predicted negative; the
    // found message passes node 3 without a check.
    EXPECT_EQ(machine.predictorTruePositives(), 1u);
    EXPECT_GE(machine.predictorTrueNegatives(), 1u);
}

TEST(Machine, ConfigMismatchedPredictorAsserts)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    cfg.predictor = PredictorConfig::subset(512); // Lazy wants none
    EXPECT_DEATH({ Machine machine(cfg); }, "predictor");
}

TEST(Machine, RunSimulationChecksTraceShape)
{
    MachineConfig cfg = MachineConfig::testDefault(Algorithm::Lazy);
    CoreTraces traces;
    traces.traces.resize(cfg.numCores() + 1); // wrong core count
    EXPECT_DEATH({ runSimulation(cfg, traces, "bad"); }, "core count");
}

} // namespace
} // namespace flexsnoop
