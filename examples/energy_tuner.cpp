/**
 * @file
 * Energy tuner: demonstrates the adaptive Superset system of paper
 * §6.1.5. An EnergyBudgetController watches the per-request snoop
 * energy each epoch and flips the gateway action between the
 * Aggressive (performance) and Conservative (energy) variants.
 *
 * The example sweeps the energy budget from tight to loose and shows
 * the machine walking the latency/energy trade-off curve between pure
 * Superset Con and pure Superset Agg.
 *
 * Usage: energy_tuner [workload] (default: raytrace)
 */

#include <iomanip>
#include <iostream>

#include "core/experiment.hh"
#include "snoop/adaptive_switcher.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;

namespace
{

struct TunedRun
{
    double budget = 0.0; ///< nJ per request the controller targets
    Cycle exec = 0;
    double energyNj = 0.0;
    std::uint64_t conservativeEpochs = 0;
    std::uint64_t epochs = 0;
};

TunedRun
runWithBudget(const WorkloadProfile &profile, const CoreTraces &traces,
              double budget_nj_per_request)
{
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::AdaptiveSuperset, profile.coresPerCmp);

    Machine machine(cfg);
    auto &policy =
        dynamic_cast<AdaptiveSupersetPolicy &>(machine.policy());
    // Hysteresis band of +-10% around the budget.
    EnergyBudgetController controller(policy,
                                      budget_nj_per_request * 1.1,
                                      budget_nj_per_request * 0.9);

    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          cfg.core);

    constexpr Cycle kEpoch = 40000;
    auto last_energy = std::make_shared<double>(0.0);
    auto last_requests = std::make_shared<std::uint64_t>(0);
    std::function<void()> sample = [&, last_energy, last_requests]() {
        if (runner.allDone())
            return; // stop rescheduling so the event queue drains
        const double energy = machine.energy().totalNj();
        const std::uint64_t requests =
            machine.controller().readRequests();
        controller.sampleEpoch(energy - *last_energy,
                               requests - *last_requests);
        *last_energy = energy;
        *last_requests = requests;
        machine.queue().schedule(kEpoch, sample);
    };
    machine.queue().schedule(kEpoch, sample);
    runner.setWarmupDoneFn([&machine]() { machine.resetStats(); });
    const Cycle measured = runner.run();
    machine.finalizeEnergy();

    TunedRun out;
    out.budget = budget_nj_per_request;
    out.exec = measured;
    out.energyNj = machine.energy().totalNj();
    out.conservativeEpochs = controller.conservativeEpochs();
    out.epochs = controller.epochs();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadProfile profile =
        profileByName(argc > 1 ? argv[1] : "raytrace");
    profile.refsPerCore = 8000;
    profile.warmupRefs = 2500;

    std::cout << "energy tuner on " << profile.name << "\n\n";
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    // Reference points: the two pure policies.
    const RunResult con = runSimulation(
        MachineConfig::paperDefault(Algorithm::SupersetCon,
                                    profile.coresPerCmp),
        traces, profile.name);
    const RunResult agg = runSimulation(
        MachineConfig::paperDefault(Algorithm::SupersetAgg,
                                    profile.coresPerCmp),
        traces, profile.name);
    const double con_per_req = con.energyNj / con.readRingRequests;
    const double agg_per_req = agg.energyNj / agg.readRingRequests;

    std::cout << "pure SupersetCon: " << con.execCycles << " cycles, "
              << std::fixed << std::setprecision(1) << con.energyNj / 1e3
              << " uJ (" << std::setprecision(2) << con_per_req
              << " nJ/request)\n";
    std::cout << "pure SupersetAgg: " << agg.execCycles << " cycles, "
              << std::setprecision(1) << agg.energyNj / 1e3 << " uJ ("
              << std::setprecision(2) << agg_per_req
              << " nJ/request)\n\n";

    std::cout << std::left << std::setw(18) << "budget (nJ/req)"
              << std::right << std::setw(14) << "exec cycles"
              << std::setw(13) << "energy (uJ)" << std::setw(18)
              << "conserv. epochs" << '\n'
              << std::string(63, '-') << '\n';
    for (double frac : {0.85, 0.95, 1.05, 1.15}) {
        // Budgets spanning below Con's rate (always conservative) to
        // above Agg's rate (always aggressive).
        const double budget =
            con_per_req + frac * (agg_per_req - con_per_req);
        const TunedRun run = runWithBudget(profile, traces, budget);
        std::cout << std::left << std::fixed << std::setprecision(2)
                  << std::setw(18) << run.budget << std::right
                  << std::setw(14) << run.exec << std::setprecision(1)
                  << std::setw(13) << run.energyNj / 1e3 << std::setw(11)
                  << run.conservativeEpochs << " / " << run.epochs
                  << '\n';
    }
    std::cout << "\nlower budgets force Conservative epochs (slower, "
                 "less energy); looser budgets let the machine stay "
                 "Aggressive.\n";
    return 0;
}
