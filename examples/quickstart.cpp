/**
 * @file
 * Quickstart: build the paper's baseline machine, run a small synthetic
 * workload under one snooping algorithm, and print the key metrics.
 *
 * Usage: quickstart [algorithm] [workload] [key=value ...]
 *   algorithm: lazy | eager | oracle | subset | supersetcon |
 *              supersetagg | exact          (default: supersetagg)
 *   workload:  mini | barnes | ... | specjbb | specweb (default: mini)
 *   overrides: any config_parser key, e.g. num_rings=1 l2_entries=4096
 */

#include <iostream>

#include "core/config_parser.hh"
#include "core/simulation.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;

int
main(int argc, char **argv)
{
    const Algorithm algorithm =
        argc > 1 ? algorithmFromName(argv[1]) : Algorithm::SupersetAgg;
    const WorkloadProfile profile =
        profileByName(argc > 2 ? argv[2] : "mini");

    std::cout << "flexsnoop quickstart\n"
              << "  algorithm: " << toString(algorithm) << '\n'
              << "  workload:  " << profile.name << " ("
              << profile.numCores << " cores, "
              << profile.numCmps() << " CMPs)\n\n";

    // 1. Machine configuration: the paper's Table 4 defaults, with the
    //    predictor this repo pairs with the algorithm (Sub2k / n2k /
    //    Exa2k / perfect / none).
    MachineConfig config =
        MachineConfig::paperDefault(algorithm, profile.coresPerCmp);
    config.setNumCmps(profile.numCmps());
    for (int i = 3; i < argc; ++i)
        applyOverride(config, argv[i]);
    std::cout << "config: " << describeConfig(config) << "\n\n";

    // 2. Generate the workload traces (deterministic per profile seed).
    SyntheticGenerator generator(profile);
    const CoreTraces traces = generator.generate();
    std::cout << "generated " << traces.totalRefs()
              << " references (" << traces.warmupRefs
              << " warmup per core)\n";

    // 3. Run. Statistics cover the post-warmup phase only.
    const RunResult result = runSimulation(config, traces, profile.name);

    // 4. Report.
    std::cout << '\n';
    result.dump(std::cout);

    std::cout << "\nper-request energy: "
              << result.energyNj / result.readRingRequests
              << " nJ across " << result.readRingRequests
              << " ring read transactions\n";
    return 0;
}
