/**
 * @file
 * Algorithm comparison study: the workload the paper's introduction
 * motivates -- a scientific application with heavy cache-to-cache
 * sharing (SPLASH-2-like) next to a commercial memory-bound workload
 * (SPECjbb-like) -- swept across all seven snooping algorithms, with a
 * cost-effectiveness summary mirroring the paper's §6.1.5 conclusions.
 *
 * Usage: algorithm_study [splash_app] (default: barnes)
 */

#include <iomanip>
#include <iostream>

#include "core/experiment.hh"

using namespace flexsnoop;

namespace
{

void
study(const WorkloadProfile &profile)
{
    std::cout << "\n=== " << profile.name << " ===\n";
    const SweepResult sweep = runSweep(paperAlgorithms(), profile);
    const RunResult &lazy = sweep.byAlgorithm(Algorithm::Lazy);

    std::cout << std::left << std::setw(13) << "algorithm" << std::right
              << std::setw(11) << "exec" << std::setw(11) << "energy"
              << std::setw(12) << "snoops/req" << std::setw(11)
              << "msgs/req" << std::setw(12) << "mem reads" << '\n'
              << std::string(70, '-') << '\n';
    for (const auto &r : sweep.runs) {
        std::cout << std::left << std::setw(13) << r.algorithm
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(11)
                  << static_cast<double>(r.execCycles) / lazy.execCycles
                  << std::setw(11) << r.energyNj / lazy.energyNj
                  << std::setprecision(2) << std::setw(12)
                  << r.snoopsPerReadRequest << std::setw(11)
                  << r.readLinkMessagesPerRequest << std::setw(12)
                  << r.memoryFetches << '\n';
    }

    const auto &agg = sweep.byAlgorithm(Algorithm::SupersetAgg);
    const auto &con = sweep.byAlgorithm(Algorithm::SupersetCon);
    const auto &eager = sweep.byAlgorithm(Algorithm::Eager);
    std::cout << "\ncost-effectiveness (paper §6.1.5):\n"
              << "  high-performance pick (SupersetAgg): "
              << std::setprecision(1)
              << (1.0 - static_cast<double>(agg.execCycles) /
                            eager.execCycles) *
                     100
              << "% faster than Eager at "
              << (1.0 - agg.energyNj / eager.energyNj) * 100
              << "% less energy\n"
              << "  energy-efficient pick (SupersetCon): "
              << (static_cast<double>(con.execCycles) / agg.execCycles -
                  1.0) *
                     100
              << "% slower than SupersetAgg at "
              << (1.0 - con.energyNj / agg.energyNj) * 100
              << "% less energy\n";
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadProfile splash =
        profileByName(argc > 1 ? argv[1] : "barnes");
    splash.refsPerCore = 8000;
    splash.warmupRefs = 2500;

    WorkloadProfile jbb = specJbbProfile();
    jbb.refsPerCore = 10000;
    jbb.warmupRefs = 2500;

    study(splash);
    study(jbb);
    return 0;
}
