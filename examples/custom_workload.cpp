/**
 * @file
 * Custom workload plug-in: shows how a user drives the library with
 * their own traces rather than the built-in generators.
 *
 * The example hand-builds a classic false-sharing-free ping-pong
 * pattern (two cores in different CMPs alternately writing the same
 * line) plus a read-only broadcast pattern, runs them under two
 * algorithms, and reports how the coherence fabric behaves.
 */

#include <iomanip>
#include <iostream>

#include "core/simulation.hh"

using namespace flexsnoop;

namespace
{

/** Line ping-ponged between core 0 and core 4 (different CMPs). */
constexpr Addr kPingPongLine = 0x100000;
/** Line written once and then read by everyone. */
constexpr Addr kBroadcastLine = 0x200000;

CoreTraces
buildTraces(std::size_t num_cores, std::size_t rounds)
{
    CoreTraces traces;
    traces.traces.resize(num_cores);
    traces.warmupRefs = 0;

    // Phase 1: cores 0 and 4 ping-pong ownership of one line.
    for (std::size_t round = 0; round < rounds; ++round) {
        for (CoreId writer : {CoreId{0}, CoreId{4}}) {
            MemRef ref;
            ref.addr = kPingPongLine;
            ref.isWrite = true;
            ref.gap = 400; // give the other side time to respond
            traces.traces[writer].push_back(ref);
        }
    }

    // Phase 2: core 1 produces a line, every other core reads it.
    MemRef produce;
    produce.addr = kBroadcastLine;
    produce.isWrite = true;
    produce.gap = 50;
    traces.traces[1].push_back(produce);
    for (CoreId c = 0; c < num_cores; ++c) {
        if (c == 1)
            continue;
        MemRef read;
        read.addr = kBroadcastLine;
        read.isWrite = false;
        // Stagger the readers behind the producer.
        read.gap = 3000 + 150 * c;
        traces.traces[c].push_back(read);
    }

    // Keep every core non-empty (the runner wants uniform progress).
    for (CoreId c = 0; c < num_cores; ++c) {
        if (traces.traces[c].empty()) {
            MemRef idle;
            idle.addr = 0x900000 + c * kLineSizeBytes;
            idle.isWrite = false;
            idle.gap = 10;
            traces.traces[c].push_back(idle);
        }
    }
    return traces;
}

} // namespace

int
main()
{
    std::cout << "custom workload: ownership ping-pong + broadcast\n\n";
    constexpr std::size_t kRounds = 40;

    for (Algorithm algo : {Algorithm::Lazy, Algorithm::SupersetAgg}) {
        MachineConfig cfg = MachineConfig::paperDefault(algo, 1);
        const CoreTraces traces = buildTraces(cfg.numCores(), kRounds);
        const RunResult r = runSimulation(cfg, traces, "pingpong");

        std::cout << "--- " << toString(algo) << " ---\n"
                  << "  exec cycles:        " << r.execCycles << '\n'
                  << "  cache supplies:     " << r.cacheSupplies
                  << "  (each ping-pong write pulls the dirty line "
                     "across)\n"
                  << "  memory fetches:     " << r.memoryFetches << '\n'
                  << "  collisions/retries: " << r.collisions << " / "
                  << r.retries << '\n'
                  << "  snoops per request: " << std::fixed
                  << std::setprecision(2) << r.snoopsPerReadRequest
                  << '\n'
                  << "  avg read latency:   " << std::setprecision(0)
                  << r.avgReadLatency << " cycles\n\n";
    }

    std::cout << "note: the ping-pong line migrates dirty between CMPs "
                 "(D -> invalidate -> D), while the broadcast line ends "
                 "Tagged at the producer with Shared copies at the "
                 "readers.\n";
    return 0;
}
