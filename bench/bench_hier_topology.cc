/**
 * @file
 * Hierarchical-topology scaling study (docs/TOPOLOGY.md): flat embedded
 * ring vs a two-level hierarchy (8-node local rings joined by a global
 * ring via bridge gateways) from 16 to 128 nodes, all seven paper
 * algorithms, identical traces per node count.
 *
 * The flat ring's snoop latency grows with N: a read round walks all
 * N-1 remote nodes. The hierarchy caps the walk at one local ring plus
 * the global ring whenever the bridges' aggregate predictors let whole
 * blocks be skipped, so the predictive algorithms (whose action table
 * maps a negative prediction to Forward) should pull away from their
 * flat counterparts as N grows — that latency ratio is the gating
 * metric of this bench.
 *
 * Perf record: BENCH_hier_topology.json. speedup_* entries are
 * simulated-cycle ratios (flat latency / hier latency) and gate the
 * build for the skip-capable algorithms at 64 and 128 nodes; ratios
 * for Lazy/Eager/Subset (which never skip reads and just pay the
 * global-hop tax) are recorded informationally.
 */

#include <cctype>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

namespace
{

std::string
lowerName(Algorithm a)
{
    std::string s(toString(a));
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
canSkipReads(Algorithm a)
{
    const auto policy = makePolicy(a);
    return policy->usesPredictor() &&
           policy->onPrediction(false) == Primitive::Forward;
}

} // namespace

int
main()
{
    std::cout << "=== Hierarchical topology: flat vs two-level ring, "
                 "16 to 128 nodes ===\n";

    const std::vector<std::size_t> node_counts = {16, 32, 64, 128};
    const std::vector<Algorithm> algos = paperAlgorithms();

    WorkloadProfile base = miniProfile();
    scaleProfile(base, 1500, 400);

    std::cerr << "  " << node_counts.size() << " node counts x 2 "
              << "topologies x " << algos.size() << " algorithms on "
              << benchJobs() << " worker(s)...\n";
    const std::vector<HierSweepCell> cells =
        runHierSweep(algos, node_counts, benchJobs(), 62, base);

    // cells order: node_counts x {flat, hier} x algorithms.
    const std::size_t width = algos.size();
    const auto cell = [&](std::size_t n_idx, bool hier,
                          std::size_t a_idx) -> const HierSweepCell & {
        return cells[n_idx * 2 * width + (hier ? width : 0) + a_idx];
    };

    std::cout << '\n'
              << std::left << std::setw(13) << "algorithm" << std::right
              << std::setw(7) << "nodes" << std::setw(11) << "flat lat"
              << std::setw(11) << "hier lat" << std::setw(9) << "ratio"
              << std::setw(12) << "blk skips" << std::setw(12)
              << "descends" << std::setw(12) << "glob msgs" << '\n'
              << std::string(87, '-') << '\n';

    std::vector<std::pair<std::string, double>> metrics;
    for (std::size_t a = 0; a < width; ++a) {
        const std::string name = lowerName(algos[a]);
        const bool gates = canSkipReads(algos[a]);
        for (std::size_t n = 0; n < node_counts.size(); ++n) {
            const RunResult &flat = cell(n, false, a).result;
            const RunResult &hier = cell(n, true, a).result;
            const double ratio =
                hier.avgReadLatency > 0.0
                    ? flat.avgReadLatency / hier.avgReadLatency
                    : 0.0;
            std::cout << std::left << std::setw(13) << toString(algos[a])
                      << std::right << std::setw(7) << node_counts[n]
                      << std::fixed << std::setprecision(0)
                      << std::setw(11) << flat.avgReadLatency
                      << std::setw(11) << hier.avgReadLatency
                      << std::setprecision(2) << std::setw(9) << ratio
                      << std::setw(12) << hier.bridgeSkips
                      << std::setw(12) << hier.bridgeDescends
                      << std::setw(12) << hier.globalLinkMessages << '\n';

            // Simulated-cycle ratios are machine-independent; gate the
            // skip-capable algorithms where the hierarchy must win.
            std::ostringstream key;
            const bool gate = gates && node_counts[n] >= 64;
            key << (gate ? "speedup_latency_" : "latency_ratio_") << name
                << "_n" << node_counts[n];
            metrics.emplace_back(key.str(), ratio);
        }
        std::cout << '\n';
    }

    // Bridge effectiveness at the largest machine (informational).
    for (std::size_t a = 0; a < width; ++a) {
        const RunResult &hier =
            cell(node_counts.size() - 1, true, a).result;
        const double decisions = static_cast<double>(
            hier.bridgeSkips + hier.bridgeDescends);
        metrics.emplace_back(
            "skip_fraction_" + lowerName(algos[a]) + "_n128",
            decisions > 0.0 ? hier.bridgeSkips / decisions : 0.0);
    }

    writeBenchRecord("hier_topology", metrics);

    std::cout << "expectation: Lazy/Eager/Subset never skip a block, so "
                 "their hierarchical ratio sits below 1 (the global-hop "
                 "tax); the negative-prediction-forwards algorithms "
                 "(Oracle, SupersetCon, SupersetAgg, Exact) skip most "
                 "remote blocks and beat the flat ring at 64+ nodes, "
                 "with the gap widening at 128.\n";
    return 0;
}
