/**
 * @file
 * Reproduces paper Figure 10: sensitivity of execution time to the
 * Supplier Predictor size and organization.
 *
 * Predictors swept (paper §5.2): Sub512/Sub2k/Sub8k for Subset;
 * SupCy512/SupCy2k/SupCn2k for Superset Con; SupAy512/SupAy2k/SupAn2k
 * for Superset Agg; Exa512/Exa2k/Exa8k for Exact. Bars are normalized
 * to the 2k configuration of each algorithm.
 *
 * Expected shape: largely flat ("these environments are not very
 * sensitive to the size and organization of the Supplier Predictor"),
 * except Exact on SPLASH-2, where small predictors cause many
 * downgrades and visibly higher execution time.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Figure 10: predictor size/organization sensitivity "
                 "===\n";

    struct AlgoSweep
    {
        Algorithm algo;
        std::vector<std::string> predictors; ///< small, default, large
    };
    const std::vector<AlgoSweep> sweeps_cfg = {
        {Algorithm::Subset, {"sub512", "sub2k", "sub8k"}},
        {Algorithm::SupersetCon, {"y512", "y2k", "n2k"}},
        {Algorithm::SupersetAgg, {"y512", "y2k", "n2k"}},
        {Algorithm::Exact, {"exa512", "exa2k", "exa8k"}},
    };

    // Workload set: 4 representative SPLASH-2-like applications
    // (aggregated), SPECjbb, SPECweb.
    std::vector<WorkloadProfile> splash_apps;
    for (const auto &name : {"barnes", "ocean", "raytrace", "fft"}) {
        auto p = profileByName(name);
        scaleProfile(p, 6000, 2000);
        splash_apps.push_back(p);
    }
    const auto jbb = jbbBenchProfile(8000, 2000);
    const auto web = webBenchProfile(8000, 2000);

    // exec[workload-group][algo][predictor]
    for (const auto &cfg : sweeps_cfg) {
        std::cout << "\n--- " << toString(cfg.algo) << " ---\n"
                  << std::left << std::setw(12) << "workload";
        for (const auto &pred : cfg.predictors)
            std::cout << std::right << std::setw(12) << pred;
        std::cout << " (normalized to middle config)\n"
                  << std::string(12 + 12 * cfg.predictors.size(), '-')
                  << '\n';

        auto run_group = [&](const std::string &label,
                             const std::vector<WorkloadProfile> &apps) {
            std::vector<double> exec(cfg.predictors.size(), 0.0);
            for (const auto &app : apps) {
                std::cerr << "  " << toString(cfg.algo) << " / "
                          << app.name << "...\n";
                std::vector<double> app_exec;
                for (const auto &pred : cfg.predictors) {
                    const RunResult r = runOne(cfg.algo, app, pred);
                    app_exec.push_back(
                        static_cast<double>(r.execCycles));
                }
                for (std::size_t i = 0; i < app_exec.size(); ++i)
                    exec[i] += app_exec[i] / app_exec[1] / apps.size();
            }
            std::cout << std::left << std::setw(12) << label;
            for (double e : exec)
                std::cout << std::right << std::fixed
                          << std::setprecision(3) << std::setw(12) << e;
            std::cout << '\n';
        };

        run_group("SPLASH-2", splash_apps);
        run_group("SPECjbb", {jbb});
        run_group("SPECweb", {web});
    }

    std::cout << "\npaper expectation: near-flat rows (within a few "
                 "percent), except Exact on SPLASH-2 where the small "
                 "predictor (Exa512) is visibly slower than Exa8k.\n";
    return 0;
}
