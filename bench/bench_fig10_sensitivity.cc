/**
 * @file
 * Reproduces paper Figure 10: sensitivity of execution time to the
 * Supplier Predictor size and organization.
 *
 * Predictors swept (paper §5.2): Sub512/Sub2k/Sub8k for Subset;
 * SupCy512/SupCy2k/SupCn2k for Superset Con; SupAy512/SupAy2k/SupAn2k
 * for Superset Agg; Exa512/Exa2k/Exa8k for Exact. Bars are normalized
 * to the 2k configuration of each algorithm.
 *
 * Expected shape: largely flat ("these environments are not very
 * sensitive to the size and organization of the Supplier Predictor"),
 * except Exact on SPLASH-2, where small predictors cause many
 * downgrades and visibly higher execution time.
 */

#include <chrono>
#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Figure 10: predictor size/organization sensitivity "
                 "===\n";

    struct AlgoSweep
    {
        Algorithm algo;
        std::vector<std::string> predictors; ///< small, default, large
    };
    const std::vector<AlgoSweep> sweeps_cfg = {
        {Algorithm::Subset, {"sub512", "sub2k", "sub8k"}},
        {Algorithm::SupersetCon, {"y512", "y2k", "n2k"}},
        {Algorithm::SupersetAgg, {"y512", "y2k", "n2k"}},
        {Algorithm::Exact, {"exa512", "exa2k", "exa8k"}},
    };

    // Workload set: 4 representative SPLASH-2-like applications
    // (aggregated), SPECjbb, SPECweb.
    std::vector<WorkloadProfile> splash_apps;
    for (const auto &name : {"barnes", "ocean", "raytrace", "fft"}) {
        auto p = profileByName(name);
        scaleProfile(p, 6000, 2000);
        splash_apps.push_back(p);
    }
    // All workloads of the sweep, in group order: the 4 SPLASH-2-like
    // applications, then SPECjbb, then SPECweb.
    std::vector<WorkloadProfile> workloads = splash_apps;
    workloads.push_back(jbbBenchProfile(8000, 2000));
    workloads.push_back(webBenchProfile(8000, 2000));

    // Every (algorithm, workload, predictor) cell is an independent
    // runOne(); flatten the whole sweep into one batch so it spreads
    // across the worker pool.
    struct Cell
    {
        Algorithm algo;
        std::size_t workload;
        std::string predictor;
    };
    std::vector<Cell> cells;
    for (const auto &cfg : sweeps_cfg) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            for (const auto &pred : cfg.predictors)
                cells.push_back(Cell{cfg.algo, w, pred});
        }
    }

    const std::size_t jobs = benchJobs();
    std::cerr << "  running " << cells.size() << " simulations on "
              << jobs << " worker(s)...\n";
    const auto start = std::chrono::steady_clock::now();
    ParallelExecutor pool(jobs);
    const std::vector<double> exec_cycles =
        pool.map(cells.size(), [&](std::size_t i) {
            const Cell &c = cells[i];
            return static_cast<double>(
                runOne(c.algo, workloads[c.workload], c.predictor)
                    .execCycles);
        });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // exec[workload-group][algo][predictor]
    std::size_t cell = 0;
    for (const auto &cfg : sweeps_cfg) {
        std::cout << "\n--- " << toString(cfg.algo) << " ---\n"
                  << std::left << std::setw(12) << "workload";
        for (const auto &pred : cfg.predictors)
            std::cout << std::right << std::setw(12) << pred;
        std::cout << " (normalized to middle config)\n"
                  << std::string(12 + 12 * cfg.predictors.size(), '-')
                  << '\n';

        // Cells of this algorithm, per workload, in predictor order.
        std::vector<std::vector<double>> by_workload;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            std::vector<double> app_exec;
            for (std::size_t p = 0; p < cfg.predictors.size(); ++p)
                app_exec.push_back(exec_cycles[cell++]);
            by_workload.push_back(std::move(app_exec));
        }

        auto print_group = [&](const std::string &label, std::size_t lo,
                               std::size_t hi) {
            std::vector<double> exec(cfg.predictors.size(), 0.0);
            for (std::size_t w = lo; w < hi; ++w) {
                const auto &app_exec = by_workload[w];
                for (std::size_t i = 0; i < app_exec.size(); ++i)
                    exec[i] += app_exec[i] / app_exec[1] / (hi - lo);
            }
            std::cout << std::left << std::setw(12) << label;
            for (double e : exec)
                std::cout << std::right << std::fixed
                          << std::setprecision(3) << std::setw(12) << e;
            std::cout << '\n';
        };

        print_group("SPLASH-2", 0, splash_apps.size());
        print_group("SPECjbb", splash_apps.size(),
                    splash_apps.size() + 1);
        print_group("SPECweb", splash_apps.size() + 1,
                    splash_apps.size() + 2);
    }

    writeBenchRecord(
        "fig10_sensitivity",
        {{"wall_seconds", wall_s},
         {"jobs", static_cast<double>(jobs)},
         {"simulations", static_cast<double>(cells.size())},
         {"simulations_per_second",
          wall_s > 0.0 ? cells.size() / wall_s : 0.0}});

    std::cout << "\npaper expectation: near-flat rows (within a few "
                 "percent), except Exact on SPLASH-2 where the small "
                 "predictor (Exa512) is visibly slower than Exa8k.\n";
    return 0;
}
