/**
 * @file
 * Shared helpers for the figure/table benches: standard workload sets
 * sized for bench runtime, parallel sweep execution, machine-readable
 * perf records, and printing utilities.
 */

#ifndef FLEXSNOOP_BENCH_BENCH_COMMON_HH
#define FLEXSNOOP_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_executor.hh"

namespace flexsnoop::bench
{

/** Scale factor from FLEXSNOOP_BENCH_SCALE (default 1.0; smaller =
 *  faster, e.g. 0.25 for smoke runs). */
inline double
benchScale()
{
    if (const char *env = std::getenv("FLEXSNOOP_BENCH_SCALE")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 1.0;
}

/** Worker threads for parallel sweeps: FLEXSNOOP_BENCH_JOBS (0 = run
 *  serially), default hardware concurrency. */
inline std::size_t
benchJobs()
{
    if (const char *env = std::getenv("FLEXSNOOP_BENCH_JOBS")) {
        const long v = std::atol(env);
        if (v >= 0)
            return static_cast<std::size_t>(v);
    }
    return ParallelExecutor::defaultWorkers();
}

/**
 * Write the machine-readable perf record BENCH_<name>.json (schema
 * documented in docs/METRICS.md) into FLEXSNOOP_BENCH_RECORD_DIR
 * (default: the current directory).
 */
inline void
writeBenchRecord(
    const std::string &name,
    const std::vector<std::pair<std::string, double>> &metrics)
{
    std::string dir = ".";
    if (const char *env = std::getenv("FLEXSNOOP_BENCH_RECORD_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_" + name + ".json";
    std::ofstream os(path);
    if (!os) {
        std::cerr << "warning: cannot write " << path << '\n';
        return;
    }
    os << "{\n"
       << "  \"schema\": \"flexsnoop-bench-v1\",\n"
       << "  \"bench\": \"" << name << "\",\n"
       << "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        os << "    \"" << metrics[i].first << "\": "
           << std::setprecision(12) << metrics[i].second
           << (i + 1 < metrics.size() ? "," : "") << '\n';
    }
    os << "  }\n}\n";
    std::cerr << "wrote " << path << '\n';
}

inline void
scaleProfile(WorkloadProfile &p, std::size_t refs, std::size_t warmup)
{
    const double s = benchScale();
    p.refsPerCore = static_cast<std::size_t>(refs * s);
    p.warmupRefs = static_cast<std::size_t>(warmup * s);
}

/** The 11 SPLASH-2 profiles at bench size. */
inline std::vector<WorkloadProfile>
splashBenchProfiles(std::size_t refs = 8000, std::size_t warmup = 2500)
{
    auto apps = splash2Profiles();
    for (auto &p : apps)
        scaleProfile(p, refs, warmup);
    return apps;
}

inline WorkloadProfile
jbbBenchProfile(std::size_t refs = 12000, std::size_t warmup = 3000)
{
    auto p = specJbbProfile();
    scaleProfile(p, refs, warmup);
    return p;
}

inline WorkloadProfile
webBenchProfile(std::size_t refs = 12000, std::size_t warmup = 3000)
{
    auto p = specWebProfile();
    scaleProfile(p, refs, warmup);
    return p;
}

/** Run the paper's seven algorithms over the three workload groups and
 *  hand each group's sweeps to the caller. */
struct PaperSweeps
{
    std::vector<SweepResult> splash; ///< one per application
    SweepResult jbb;
    SweepResult web;
};

inline PaperSweeps
runPaperSweeps(std::size_t splash_refs = 8000,
               std::size_t spec_refs = 12000,
               std::size_t jobs = benchJobs())
{
    std::vector<WorkloadProfile> profiles =
        splashBenchProfiles(splash_refs, splash_refs * 5 / 16);
    profiles.push_back(jbbBenchProfile(spec_refs, spec_refs / 4));
    profiles.push_back(webBenchProfile(spec_refs, spec_refs / 4));

    const auto &algos = paperAlgorithms();
    std::cerr << "  running " << profiles.size() << " workloads x "
              << algos.size() << " algorithms on " << jobs
              << " worker(s)...\n";
    std::vector<SweepResult> sweeps = runMatrix(algos, profiles, jobs);

    PaperSweeps out;
    out.web = std::move(sweeps.back());
    sweeps.pop_back();
    out.jbb = std::move(sweeps.back());
    sweeps.pop_back();
    out.splash = std::move(sweeps);
    return out;
}

/** Assemble the standard three-row (SPLASH-2 / jbb / web) figure table. */
inline void
printFigureTable(const std::string &title, const PaperSweeps &sweeps,
                 const Metric &metric, bool normalize_to_lazy,
                 bool splash_arith_mean, int precision = 3)
{
    const auto &algos = paperAlgorithms();
    std::vector<std::pair<std::string, std::map<Algorithm, double>>> rows;

    std::map<Algorithm, double> splash_row;
    for (Algorithm a : algos) {
        if (normalize_to_lazy) {
            splash_row[a] = lazyNormalizedGeoMean(sweeps.splash, a, metric);
        } else if (splash_arith_mean) {
            splash_row[a] = suiteArithMean(sweeps.splash, a, metric);
        } else {
            std::vector<double> values;
            for (const auto &app : sweeps.splash)
                values.push_back(metric(app.byAlgorithm(a)));
            splash_row[a] = geoMean(values);
        }
    }
    rows.emplace_back("SPLASH-2", splash_row);

    for (const auto *sweep : {&sweeps.jbb, &sweeps.web}) {
        std::map<Algorithm, double> row;
        const double base =
            normalize_to_lazy
                ? metric(sweep->byAlgorithm(Algorithm::Lazy))
                : 1.0;
        for (Algorithm a : algos)
            row[a] = metric(sweep->byAlgorithm(a)) / base;
        rows.emplace_back(sweep->workload, row);
    }

    printTable(std::cout, title, algos, rows, precision);
}

/** Per-application detail table for one metric. */
inline void
printPerAppTable(const std::string &title, const PaperSweeps &sweeps,
                 const Metric &metric, bool normalize_to_lazy,
                 int precision = 3)
{
    const auto &algos = paperAlgorithms();
    std::vector<std::pair<std::string, std::map<Algorithm, double>>> rows;
    auto add = [&](const SweepResult &sweep) {
        std::map<Algorithm, double> row;
        const double base =
            normalize_to_lazy
                ? metric(sweep.byAlgorithm(Algorithm::Lazy))
                : 1.0;
        for (Algorithm a : algos)
            row[a] = metric(sweep.byAlgorithm(a)) / base;
        rows.emplace_back(sweep.workload, row);
    };
    for (const auto &app : sweeps.splash)
        add(app);
    add(sweeps.jbb);
    add(sweeps.web);
    printTable(std::cout, title, algos, rows, precision);
}

} // namespace flexsnoop::bench

#endif // FLEXSNOOP_BENCH_BENCH_COMMON_HH
