/**
 * @file
 * Head-to-head scheduler benchmark: the hierarchical timing wheel vs
 * the reference binary heap, on the event shapes the simulator actually
 * produces. Three scenarios:
 *
 *  - steady state: a full queue (1k / 16k pending) with one pop and one
 *    schedule per operation, delays drawn from the ring/bus/memory/
 *    watchdog latency mix — the figure benches' inner loop;
 *  - burst: schedule a batch cold and drain it — experiment setup and
 *    teardown phases;
 *  - reschedule: retarget a tagged entry among many pending — the
 *    express path's cancel/retire operation, O(1) indexed on the wheel
 *    vs an O(pending) scan on the heap.
 *
 * Reports ns/op per implementation and the wheel's speedup, and writes
 * BENCH_event_queue.json (schema in docs/METRICS.md). The acceptance
 * bound for the scheduler rewrite is speedup_steady_* >= 2.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "sim/event_queue.hh"

namespace flexsnoop
{
namespace
{

/** Deterministic xorshift64* so both implementations (and every run)
 *  see the same delay sequence. */
struct Rng
{
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    }
    std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

/** The simulator's delay mix: mostly ring-hop scale, some bus/memory
 *  round trips, a rare watchdog-scale timeout (paper Table 4). */
Cycle
drawDelay(Rng &rng)
{
    switch (rng.pick(16)) {
    case 0:
    case 1:
    case 2:
    case 3:
    case 4:
    case 5:
        return 39 + rng.pick(16); // link + serialization
    case 6:
    case 7:
    case 8:
    case 9:
        return 55 + rng.pick(64); // CMP snoop / gateway
    case 10:
    case 11:
        return 130 + rng.pick(64); // local bus round trip
    case 12:
    case 13:
        return 312 + rng.pick(128); // local memory
    case 14:
        return 710 + rng.pick(256); // remote memory
    default:
        return rng.pick(8) == 0 ? 20'000 // watchdog timeout
                                : 1 + rng.pick(8);
    }
}

double
toNs(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::nano>(d).count();
}

/** Pre-drawn delay sequence (power-of-two length) so the timed loops
 *  measure the scheduler, not the RNG. */
constexpr std::size_t kDelayMask = (1u << 16) - 1;

std::vector<Cycle>
drawDelays()
{
    Rng rng;
    std::vector<Cycle> delays(kDelayMask + 1);
    for (Cycle &d : delays)
        d = drawDelay(rng);
    return delays;
}

/** Steady-state schedule/pop at ~@p depth pending events. @return ns
 *  per (pop + schedule) pair. */
double
steadyStateNsPerOp(EventQueue::Impl impl, std::size_t depth,
                   std::size_t ops)
{
    static const std::vector<Cycle> delays = drawDelays();
    EventQueue q(impl);
    q.configureWheel(1024); // what MachineConfig::paperDefault derives
    q.reserve(depth + 1);
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < depth; ++i)
        q.schedule(delays[i & kDelayMask], [&sink]() { ++sink; });

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
        q.step();
        q.schedule(delays[i & kDelayMask], [&sink]() { ++sink; });
    }
    const auto stop = std::chrono::steady_clock::now();

    q.clear();
    if (sink != ops) // keep the callables observable
        std::cerr << "steady-state sink mismatch\n";
    return toNs(stop - start) / static_cast<double>(ops);
}

/** Cold batch schedule + full drain. @return ns per event. */
double
burstNsPerEvent(EventQueue::Impl impl, std::size_t batch,
                std::size_t rounds)
{
    static const std::vector<Cycle> delays = drawDelays();
    EventQueue q(impl);
    q.configureWheel(1024);
    q.reserve(batch);
    std::uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < batch; ++i)
            q.schedule(delays[i & kDelayMask], [&sink]() { ++sink; });
        q.run();
    }
    const auto stop = std::chrono::steady_clock::now();
    if (sink != batch * rounds)
        std::cerr << "burst sink mismatch\n";
    return toNs(stop - start) / static_cast<double>(batch * rounds);
}

/** Retarget one tagged entry among @p depth pending events, @p ops
 *  times. @return ns per reschedule. */
double
rescheduleNsPerOp(EventQueue::Impl impl, std::size_t depth,
                  std::size_t ops)
{
    static const std::vector<Cycle> delays = drawDelays();
    EventQueue q(impl);
    q.configureWheel(1024);
    q.reserve(depth + 1);
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < depth; ++i)
        q.schedule(500 + delays[i & kDelayMask], [&sink]() { ++sink; });
    // The tagged entry sits far out, like an express retirement whose
    // plan keeps being extended.
    const std::uint64_t tag =
        q.scheduleAtTagged(1'000'000, [&sink]() { ++sink; });

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
        const Cycle when = 1'000'000 + delays[i & kDelayMask];
        q.reschedule(tag, when, [&sink]() { ++sink; });
    }
    const auto stop = std::chrono::steady_clock::now();
    q.clear();
    return toNs(stop - start) / static_cast<double>(ops);
}

/** Best of five timed runs (after one warmup) to shed scheduler and
 *  allocator noise. */
template <typename Fn>
double
bestOf(Fn &&fn)
{
    fn(); // warmup: page faults, bucket/heap capacity growth
    double best = fn();
    for (int i = 0; i < 4; ++i)
        best = std::min(best, fn());
    return best;
}

struct Pair
{
    double heap;
    double wheel;
    double speedup() const { return heap / wheel; }
};

void
report(const std::string &label, const Pair &p)
{
    std::cout << "  " << label << ": heap " << p.heap << " ns, wheel "
              << p.wheel << " ns  (" << p.speedup() << "x)\n";
}

} // namespace
} // namespace flexsnoop

int
main()
{
    using namespace flexsnoop;
    const double scale = bench::benchScale();
    const auto ops = [&](std::size_t n) {
        return std::max<std::size_t>(1000,
                                     static_cast<std::size_t>(n * scale));
    };

    std::cout << "Event-queue scheduler: binary heap vs timing wheel\n";

    const Pair steady_1k = {
        bestOf([&]() {
            return steadyStateNsPerOp(EventQueue::Impl::Heap, 1024,
                                      ops(2'000'000));
        }),
        bestOf([&]() {
            return steadyStateNsPerOp(EventQueue::Impl::Wheel, 1024,
                                      ops(2'000'000));
        })};
    report("steady 1k pending   ", steady_1k);

    const Pair steady_16k = {
        bestOf([&]() {
            return steadyStateNsPerOp(EventQueue::Impl::Heap, 16384,
                                      ops(2'000'000));
        }),
        bestOf([&]() {
            return steadyStateNsPerOp(EventQueue::Impl::Wheel, 16384,
                                      ops(2'000'000));
        })};
    report("steady 16k pending  ", steady_16k);

    const Pair burst = {
        bestOf([&]() {
            return burstNsPerEvent(EventQueue::Impl::Heap, 16384,
                                   std::max<std::size_t>(
                                       1, static_cast<std::size_t>(
                                              40 * scale)));
        }),
        bestOf([&]() {
            return burstNsPerEvent(EventQueue::Impl::Wheel, 16384,
                                   std::max<std::size_t>(
                                       1, static_cast<std::size_t>(
                                              40 * scale)));
        })};
    report("burst 16k batch     ", burst);

    const Pair resched_1k = {
        bestOf([&]() {
            return rescheduleNsPerOp(EventQueue::Impl::Heap, 1024,
                                     ops(200'000));
        }),
        bestOf([&]() {
            return rescheduleNsPerOp(EventQueue::Impl::Wheel, 1024,
                                     ops(2'000'000));
        })};
    report("reschedule 1k depth ", resched_1k);

    bench::writeBenchRecord(
        "event_queue",
        {{"ns_per_op_steady1k_heap", steady_1k.heap},
         {"ns_per_op_steady1k_wheel", steady_1k.wheel},
         {"speedup_steady1k", steady_1k.speedup()},
         {"ns_per_op_steady16k_heap", steady_16k.heap},
         {"ns_per_op_steady16k_wheel", steady_16k.wheel},
         {"speedup_steady16k", steady_16k.speedup()},
         {"ns_per_event_burst_heap", burst.heap},
         {"ns_per_event_burst_wheel", burst.wheel},
         {"speedup_burst", burst.speedup()},
         {"ns_per_reschedule1k_heap", resched_1k.heap},
         {"ns_per_reschedule1k_wheel", resched_1k.wheel},
         {"speedup_reschedule1k", resched_1k.speedup()}});
    return 0;
}
