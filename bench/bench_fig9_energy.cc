/**
 * @file
 * Reproduces paper Figure 9: energy consumed by read and write snoop
 * requests and replies, normalized to Lazy.
 *
 * Expected shape: Eager ~ 1.8x Lazy; Subset and Superset Agg above Lazy
 * (extra messages); Superset Con the most efficient (~Lazy); Exact
 * penalized by downgrade writebacks and re-reads, strongly so on
 * SPLASH-2 (paper: 3.22x).
 *
 * Headline claims: Superset Agg consumes 9-17% less than Eager;
 * Superset Con consumes 36-42% less than Superset Agg (and 47-48% less
 * than Eager).
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Figure 9: snoop energy (normalized to Lazy) ===\n";
    const PaperSweeps sweeps = runPaperSweeps();

    const Metric metric = [](const RunResult &r) { return r.energyNj; };
    printFigureTable("snoop energy, normalized to Lazy", sweeps, metric,
                     /*normalize=*/true, /*splash_arith_mean=*/false, 3);
    printPerAppTable("per-application detail (normalized)", sweeps,
                     metric, /*normalize=*/true, 3);

    auto group_ratio = [&](Algorithm num, Algorithm den,
                           const SweepResult &sweep) {
        return metric(sweep.byAlgorithm(num)) /
               metric(sweep.byAlgorithm(den));
    };
    struct GroupStats
    {
        std::string name;
        double eager;  ///< Eager / Lazy
        double agg_vs_eager;
        double con_vs_agg;
        double exact;
    };
    std::vector<GroupStats> groups;
    {
        const Metric m = metric;
        GroupStats g;
        g.name = "SPLASH-2";
        g.eager = lazyNormalizedGeoMean(sweeps.splash, Algorithm::Eager, m);
        g.agg_vs_eager =
            lazyNormalizedGeoMean(sweeps.splash, Algorithm::SupersetAgg,
                                  m) /
            g.eager;
        g.con_vs_agg =
            lazyNormalizedGeoMean(sweeps.splash, Algorithm::SupersetCon,
                                  m) /
            lazyNormalizedGeoMean(sweeps.splash, Algorithm::SupersetAgg,
                                  m);
        g.exact =
            lazyNormalizedGeoMean(sweeps.splash, Algorithm::Exact, m);
        groups.push_back(g);
    }
    for (const auto *sweep : {&sweeps.jbb, &sweeps.web}) {
        GroupStats g;
        g.name = sweep->workload;
        g.eager = group_ratio(Algorithm::Eager, Algorithm::Lazy, *sweep);
        g.agg_vs_eager =
            group_ratio(Algorithm::SupersetAgg, Algorithm::Eager, *sweep);
        g.con_vs_agg = group_ratio(Algorithm::SupersetCon,
                                   Algorithm::SupersetAgg, *sweep);
        g.exact = group_ratio(Algorithm::Exact, Algorithm::Lazy, *sweep);
        groups.push_back(g);
    }

    std::cout << "\nheadline claims:\n";
    for (const auto &g : groups) {
        std::cout << "  " << g.name << ":\n"
                  << "    Eager vs Lazy:            " << std::fixed
                  << std::setprecision(2) << g.eager
                  << "x (paper ~1.8x)\n"
                  << "    SupersetAgg saves vs Eager: "
                  << static_cast<int>((1.0 - g.agg_vs_eager) * 100)
                  << "% (paper 9-17%)\n"
                  << "    SupersetCon saves vs Agg:   "
                  << static_cast<int>((1.0 - g.con_vs_agg) * 100)
                  << "% (paper 36-42%)\n"
                  << "    Exact vs Lazy:            " << g.exact
                  << "x (paper: high on SPLASH-2, 3.22x peak)\n";
    }

    const auto &barnes = sweeps.splash.front();
    std::cout << "\nenergy breakdown, barnes-like (uJ):\n";
    for (const auto &r : barnes.runs) {
        std::cout << "  " << std::left << std::setw(13) << r.algorithm
                  << std::right << " ring " << std::setw(9)
                  << r.ringEnergyNj / 1e3 << "  snoop " << std::setw(8)
                  << r.snoopEnergyNj / 1e3 << "  predictor "
                  << std::setw(8) << r.predictorEnergyNj / 1e3
                  << "  downgrade " << std::setw(8)
                  << r.downgradeEnergyNj / 1e3 << '\n';
    }
    return 0;
}
