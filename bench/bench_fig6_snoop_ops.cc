/**
 * @file
 * Reproduces paper Figure 6: average number of snoop operations per
 * read snoop request (absolute values) for the seven algorithms on
 * SPLASH-2 (arithmetic mean over 11 applications), SPECjbb, and
 * SPECweb.
 *
 * Expected shape: Eager = 7 everywhere; Lazy ~ 4-5 on SPLASH-2/web and
 * close to 7 on SPECjbb (requests rarely find a supplier); Superset
 * variants 2-4 with Con <= Agg; Oracle < 1; Exact <= Oracle (downgrades
 * shrink the supplier population).
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Figure 6: snoop operations per read snoop request "
                 "===\n";
    const PaperSweeps sweeps = runPaperSweeps();

    const Metric metric = [](const RunResult &r) {
        return r.snoopsPerReadRequest;
    };
    printFigureTable("snoop operations per read request (absolute)",
                     sweeps, metric, /*normalize=*/false,
                     /*splash_arith_mean=*/true, 2);
    printPerAppTable("per-application detail", sweeps, metric,
                     /*normalize=*/false, 2);

    // Headline checks against the paper's description.
    const double eager_jbb =
        sweeps.jbb.byAlgorithm(Algorithm::Eager).snoopsPerReadRequest;
    const double lazy_jbb =
        sweeps.jbb.byAlgorithm(Algorithm::Lazy).snoopsPerReadRequest;
    const double oracle_splash = suiteArithMean(
        sweeps.splash, Algorithm::Oracle, metric);
    const double exact_splash = suiteArithMean(
        sweeps.splash, Algorithm::Exact, metric);
    std::cout << "\npaper checks:\n"
              << "  Eager snoops all 7 CMPs:          "
              << (eager_jbb > 6.9 ? "PASS" : "FAIL") << '\n'
              << "  SPECjbb Lazy close to 7:          "
              << (lazy_jbb > 6.0 ? "PASS" : "FAIL") << '\n'
              << "  Oracle below 1:                   "
              << (oracle_splash < 1.0 ? "PASS" : "FAIL") << '\n'
              << "  Exact at or below Oracle:         "
              << (exact_splash <= oracle_splash + 0.05 ? "PASS" : "FAIL")
              << '\n';
    return 0;
}
