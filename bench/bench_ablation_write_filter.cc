/**
 * @file
 * Ablation: write-snoop filtering with a presence predictor — the
 * extension paper §2.2/§5.3 sketches ("[writes] would need a predictor
 * of line presence, rather than one of line in supplier state").
 *
 * Runs Lazy and Superset Con with and without a per-gateway presence
 * Bloom filter and reports write snoop operations, energy, and
 * execution time. The win is largest on workloads dominated by private
 * data (most CMPs provably cache no copy of a written line).
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Ablation: write-snoop filtering (presence "
                 "predictor) ===\n";

    std::vector<WorkloadProfile> profiles;
    {
        auto p = profileByName("barnes");
        scaleProfile(p, 8000, 2500);
        profiles.push_back(p);
    }
    profiles.push_back(jbbBenchProfile(10000, 2500));
    profiles.push_back(webBenchProfile(10000, 2500));

    std::cout << '\n'
              << std::left << std::setw(11) << "workload" << std::setw(13)
              << "algorithm" << std::setw(9) << "filter" << std::right
              << std::setw(13) << "write snps" << std::setw(11)
              << "filtered" << std::setw(10) << "energy" << std::setw(9)
              << "exec" << '\n'
              << std::string(76, '-') << '\n';

    for (const auto &profile : profiles) {
        SyntheticGenerator gen(profile);
        const CoreTraces traces = gen.generate();
        for (Algorithm a : {Algorithm::Lazy, Algorithm::SupersetCon}) {
            double base_energy = 0.0;
            Cycle base_exec = 0;
            for (bool filtering : {false, true}) {
                std::cerr << "  " << profile.name << " " << toString(a)
                          << " filter=" << filtering << "...\n";
                MachineConfig cfg = MachineConfig::paperDefault(
                    a, profile.coresPerCmp);
                cfg.setNumCmps(profile.numCmps());
                cfg.writeFiltering = filtering;
                const RunResult r =
                    runSimulation(cfg, traces, profile.name);
                if (!filtering) {
                    base_energy = r.energyNj;
                    base_exec = r.execCycles;
                }
                std::cout << std::left << std::setw(11) << profile.name
                          << std::setw(13) << toString(a) << std::setw(9)
                          << (filtering ? "on" : "off") << std::right
                          << std::setw(13) << r.writeSnoops
                          << std::setw(11) << r.writeFiltered
                          << std::fixed << std::setprecision(3)
                          << std::setw(10) << r.energyNj / base_energy
                          << std::setw(9)
                          << static_cast<double>(r.execCycles) /
                                 base_exec
                          << '\n';
            }
        }
    }

    std::cout << "\nexpectation: filtering removes a large share of "
                 "write invalidation snoops (especially on the "
                 "private-data-heavy SPECjbb-like workload) at equal "
                 "correctness; energy drops by the avoided snoop "
                 "operations minus the presence-filter overhead.\n";
    return 0;
}
