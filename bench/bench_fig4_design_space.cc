/**
 * @file
 * Reproduces paper Figure 4-(b): the design-space placement of all
 * snooping algorithms on the (snoop request latency, snoop operations
 * per request) plane, measured on the SPLASH-2-like suite mean.
 *
 * Expected placement: Lazy = high latency / medium snoops; Eager = low
 * latency / max snoops; Subset above Lazy's snoop count at low latency;
 * Superset Agg near Eager's latency with few snoops; Superset Con
 * slightly slower; Exact near the Oracle origin.
 */

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    std::cout << "=== Figure 4(b): design space (latency vs snoop "
                 "operations) ===\n";

    // A few representative SPLASH-2-like applications keep this bench
    // quick; the placement is stable across the suite.
    std::vector<WorkloadProfile> apps;
    for (const auto &name : {"barnes", "ocean", "raytrace", "water-nsq"}) {
        auto p = profileByName(name);
        scaleProfile(p, 8000, 2500);
        apps.push_back(p);
    }

    // This bench doubles as the parallel-runner speedup check: the full
    // (app x algorithm) matrix is run once serially and once across the
    // worker pool, and both the wall-clock ratio and a result-equality
    // check are reported.
    const std::size_t jobs = std::max<std::size_t>(benchJobs(), 2);

    std::cerr << "  serial matrix (" << apps.size() << " apps x "
              << paperAlgorithms().size() << " algorithms)...\n";
    const auto serial_start = std::chrono::steady_clock::now();
    std::vector<SweepResult> serial;
    for (const auto &app : apps)
        serial.push_back(runSweep(paperAlgorithms(), app));
    const double serial_s = secondsSince(serial_start);

    std::cerr << "  parallel matrix (" << jobs << " workers)...\n";
    const auto parallel_start = std::chrono::steady_clock::now();
    const std::vector<SweepResult> sweeps =
        runMatrix(paperAlgorithms(), apps, jobs);
    const double parallel_s = secondsSince(parallel_start);

    bool identical = serial.size() == sweeps.size();
    for (std::size_t i = 0; identical && i < sweeps.size(); ++i) {
        for (std::size_t j = 0; j < sweeps[i].runs.size(); ++j) {
            const RunResult &a = serial[i].runs[j];
            const RunResult &b = sweeps[i].runs[j];
            identical = identical && a.execCycles == b.execCycles &&
                        a.readSnoops == b.readSnoops &&
                        a.energyNj == b.energyNj &&
                        a.avgReadLatency == b.avgReadLatency;
        }
    }

    struct Point
    {
        double latency = 0.0;
        double snoops = 0.0;
    };
    std::map<Algorithm, Point> points;
    for (const auto &sweep : sweeps) {
        for (const auto &r : sweep.runs) {
            auto &pt = points[algorithmFromName(r.algorithm)];
            pt.latency += r.avgReadLatency / apps.size();
            pt.snoops += r.snoopsPerReadRequest / apps.size();
        }
    }

    std::cout << '\n'
              << std::left << std::setw(13) << "algorithm" << std::right
              << std::setw(18) << "req latency (cyc)" << std::setw(14)
              << "snoops/req" << '\n'
              << std::string(45, '-') << '\n';
    for (Algorithm a : paperAlgorithms()) {
        const auto &pt = points[a];
        std::cout << std::left << std::setw(13) << toString(a)
                  << std::right << std::fixed << std::setprecision(1)
                  << std::setw(18) << pt.latency << std::setprecision(2)
                  << std::setw(14) << pt.snoops << '\n';
    }

    // ASCII rendition of the design-space chart.
    const double max_lat =
        std::max_element(points.begin(), points.end(),
                         [](const auto &x, const auto &y) {
                             return x.second.latency < y.second.latency;
                         })
            ->second.latency;
    const double max_snoops = 7.0;
    constexpr int kWidth = 56, kHeight = 16;
    std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
    std::cout << "\nsnoops/request ^ (labels mark algorithm positions)\n";
    for (Algorithm a : paperAlgorithms()) {
        const auto &pt = points[a];
        const int x = static_cast<int>(pt.latency / max_lat *
                                       (kWidth - 14));
        const int y = kHeight - 1 -
                      static_cast<int>(pt.snoops / max_snoops *
                                       (kHeight - 1));
        const std::string label = std::string(toString(a));
        for (std::size_t i = 0;
             i < label.size() && x + static_cast<int>(i) < kWidth; ++i) {
            canvas[std::clamp(y, 0, kHeight - 1)][x + i] = label[i];
        }
    }
    for (const auto &row : canvas)
        std::cout << " |" << row << '\n';
    std::cout << " +" << std::string(kWidth, '-')
              << "> unloaded request latency\n";

    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    std::cout << "\nparallel runner: serial " << std::fixed
              << std::setprecision(2) << serial_s << " s, parallel "
              << parallel_s << " s on " << jobs << " workers (speedup "
              << speedup << "x, "
              << ParallelExecutor::defaultWorkers()
              << " hardware threads), results "
              << (identical ? "bit-identical" : "MISMATCH") << '\n';
    writeBenchRecord(
        "fig4_design_space",
        {{"serial_seconds", serial_s},
         {"parallel_seconds", parallel_s},
         {"jobs", static_cast<double>(jobs)},
         {"hardware_concurrency",
          static_cast<double>(ParallelExecutor::defaultWorkers())},
         {"speedup", speedup},
         {"results_identical", identical ? 1.0 : 0.0}});
    return identical ? 0 : 1;
}
