/**
 * @file
 * Ablations of two machine-level design choices the paper adopts:
 *
 *  1. Number of embedded rings (paper §2.2: "If more than one ring is
 *     embedded, snoop requests may be mapped to different rings ...
 *     This helps to balance the load"). Compares 1 vs 2 rings.
 *
 *  2. The home-node DRAM prefetch heuristic (paper §2.2: remote memory
 *     round trip 312 cycles with prefetch vs 710 without, Table 4).
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

namespace
{

RunResult
runConfigured(const WorkloadProfile &profile, Algorithm algo,
              std::size_t num_rings, bool prefetch)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(algo, profile.coresPerCmp);
    cfg.numRings = num_rings;
    cfg.memory.prefetchEnabled = prefetch;
    SyntheticGenerator gen(profile);
    return runSimulation(cfg, gen.generate(), profile.name);
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: embedded-ring count and home-node "
                 "prefetch ===\n";

    auto splash = profileByName("ocean"); // heavy traffic
    scaleProfile(splash, 8000, 2500);
    auto jbb = jbbBenchProfile(10000, 2500); // memory bound

    std::cout << "\n-- rings (Eager, ocean-like: most ring traffic) --\n"
              << std::left << std::setw(8) << "rings" << std::right
              << std::setw(14) << "exec cycles" << std::setw(14)
              << "avg read lat" << '\n'
              << std::string(36, '-') << '\n';
    double one_ring_exec = 0.0;
    for (std::size_t rings : {1u, 2u}) {
        std::cerr << "  rings=" << rings << "...\n";
        const RunResult r =
            runConfigured(splash, Algorithm::Eager, rings, true);
        if (rings == 1)
            one_ring_exec = static_cast<double>(r.execCycles);
        std::cout << std::left << std::setw(8) << rings << std::right
                  << std::setw(14) << r.execCycles << std::fixed
                  << std::setprecision(0) << std::setw(14)
                  << r.avgReadLatency << '\n';
        if (rings == 2) {
            std::cout << "  second ring speedup: " << std::setprecision(1)
                      << (one_ring_exec / r.execCycles - 1.0) * 100
                      << "%\n";
        }
    }

    std::cout << "\n-- home-node prefetch (Lazy, SPECjbb-like: most "
                 "memory traffic) --\n"
              << std::left << std::setw(10) << "prefetch" << std::right
              << std::setw(14) << "exec cycles" << std::setw(14)
              << "avg read lat" << std::setw(14) << "prefetch hits"
              << '\n'
              << std::string(52, '-') << '\n';
    double no_prefetch_exec = 0.0;
    for (bool prefetch : {false, true}) {
        std::cerr << "  prefetch=" << prefetch << "...\n";
        const RunResult r =
            runConfigured(jbb, Algorithm::Lazy, 2, prefetch);
        if (!prefetch)
            no_prefetch_exec = static_cast<double>(r.execCycles);
        std::cout << std::left << std::setw(10)
                  << (prefetch ? "on" : "off") << std::right
                  << std::setw(14) << r.execCycles << std::fixed
                  << std::setprecision(0) << std::setw(14)
                  << r.avgReadLatency << std::setw(14) << "-" << '\n';
        if (prefetch) {
            std::cout << "  prefetch speedup: " << std::setprecision(1)
                      << (no_prefetch_exec / r.execCycles - 1.0) * 100
                      << "%\n";
        }
    }

    std::cout << "\nexpectation: the second ring relieves link "
                 "contention for message-heavy algorithms; the prefetch "
                 "heuristic substantially reduces memory-bound read "
                 "latency (710 -> 312 cycle remote round trips).\n";
    return 0;
}
