/**
 * @file
 * Reproduces paper Table 3: the characteristics of the four Flexible
 * Snooping algorithms -- predictor error modes, snoop-operation counts
 * driven by FP/FN rates, and message counts -- measured on a
 * SPLASH-2-like workload where suppliers are frequent.
 *
 * Verified claims:
 *  - Subset:        no FP, FN possible;  snoops = Lazy + alpha*FN; 1-2 msgs
 *  - Superset Con:  FP possible, no FN;  snoops = 1 + alpha*FP;    1 msg
 *  - Superset Agg:  FP possible, no FN;  snoops = 1 + alpha*FP;    1-2 msgs
 *  - Exact:         no FP, no FN;        snoops = 1;               1 msg
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Table 3: Flexible Snooping algorithm "
                 "characteristics ===\n";

    auto profile = splash2Profiles().front(); // barnes: heavy sharing
    scaleProfile(profile, 10000, 3000);

    const std::vector<Algorithm> algos = {
        Algorithm::Lazy,        Algorithm::Subset, Algorithm::SupersetCon,
        Algorithm::SupersetAgg, Algorithm::Exact,
    };
    const SweepResult sweep = runSweep(algos, profile);
    const RunResult &lazy = sweep.byAlgorithm(Algorithm::Lazy);

    std::cout << '\n'
              << std::left << std::setw(13) << "algorithm" << std::right
              << std::setw(12) << "snoops/req" << std::setw(12)
              << "msgs/req" << std::setw(10) << "FP rate" << std::setw(10)
              << "FN rate" << std::setw(12) << "latency" << '\n';
    std::cout << std::string(69, '-') << '\n';
    for (const auto &r : sweep.runs) {
        const double preds = static_cast<double>(r.predictions());
        const double fp = preds ? r.falsePositives / preds : 0.0;
        const double fn = preds ? r.falseNegatives / preds : 0.0;
        std::cout << std::left << std::setw(13) << r.algorithm
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(12) << r.snoopsPerReadRequest
                  << std::setw(12)
                  << r.readLinkMessagesPerRequest /
                         lazy.readLinkMessagesPerRequest
                  << std::setprecision(3) << std::setw(10) << fp
                  << std::setw(10) << fn << std::setprecision(0)
                  << std::setw(12) << r.avgReadLatency << '\n';
    }

    // Structural claims from the taxonomy.
    const auto &subset = sweep.byAlgorithm(Algorithm::Subset);
    const auto &con = sweep.byAlgorithm(Algorithm::SupersetCon);
    const auto &agg = sweep.byAlgorithm(Algorithm::SupersetAgg);
    const auto &exact = sweep.byAlgorithm(Algorithm::Exact);

    auto verdict = [](bool ok) { return ok ? "PASS" : "FAIL"; };
    std::cout << "\nTable 3 claims:\n";
    std::cout << "  Subset has zero false positives:          "
              << verdict(subset.falsePositives == 0) << '\n';
    std::cout << "  Superset has zero false negatives:        "
              << verdict(con.falseNegatives == 0 &&
                         agg.falseNegatives == 0)
              << '\n';
    std::cout << "  Exact has zero FP and FN:                 "
              << verdict(exact.falsePositives == 0 &&
                         exact.falseNegatives == 0)
              << '\n';
    std::cout << "  Subset snoops >= Lazy (adds alpha*FN):    "
              << verdict(subset.snoopsPerReadRequest >=
                         lazy.snoopsPerReadRequest * 0.95)
              << '\n';
    std::cout << "  Superset snoops well below Lazy:          "
              << verdict(con.snoopsPerReadRequest <
                             lazy.snoopsPerReadRequest &&
                         agg.snoopsPerReadRequest <
                             lazy.snoopsPerReadRequest)
              << '\n';
    std::cout << "  Con checks predictor only up to supplier "
                 "(fewer/equal snoops than Agg):             "
              << verdict(con.snoopsPerReadRequest <=
                         agg.snoopsPerReadRequest + 0.05)
              << '\n';
    std::cout << "  Con and Exact keep Lazy's single message: "
              << verdict(con.readLinkMessagesPerRequest <
                             lazy.readLinkMessagesPerRequest * 1.05 &&
                         exact.readLinkMessagesPerRequest <
                             lazy.readLinkMessagesPerRequest * 1.05)
              << '\n';
    std::cout << "  Subset and Agg use 1-2 messages:          "
              << verdict(subset.readLinkMessagesPerRequest >
                             lazy.readLinkMessagesPerRequest &&
                         agg.readLinkMessagesPerRequest >
                             lazy.readLinkMessagesPerRequest)
              << '\n';
    return 0;
}
