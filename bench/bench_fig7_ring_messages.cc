/**
 * @file
 * Reproduces paper Figure 7: total number of read snoop requests and
 * replies in the ring (measured as ring-link traversals by read
 * messages), normalized to Lazy.
 *
 * Expected shape: Eager ~ 1.8-1.9x Lazy; Subset and Superset Agg
 * between Lazy and Eager; Superset Con, Exact and Oracle = 1x.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Figure 7: read snoop messages in the ring "
                 "(normalized to Lazy) ===\n";
    const PaperSweeps sweeps = runPaperSweeps();

    const Metric metric = [](const RunResult &r) {
        return static_cast<double>(r.readLinkMessages);
    };
    printFigureTable("read ring messages, normalized to Lazy", sweeps,
                     metric, /*normalize=*/true,
                     /*splash_arith_mean=*/false, 3);
    printPerAppTable("per-application detail (normalized)", sweeps,
                     metric, /*normalize=*/true, 3);

    const double eager =
        lazyNormalizedGeoMean(sweeps.splash, Algorithm::Eager, metric);
    const double con = lazyNormalizedGeoMean(sweeps.splash,
                                             Algorithm::SupersetCon,
                                             metric);
    const double exact =
        lazyNormalizedGeoMean(sweeps.splash, Algorithm::Exact, metric);
    std::cout << "\npaper checks:\n"
              << "  Eager close to 2x Lazy:               "
              << (eager > 1.6 && eager < 2.0 ? "PASS" : "FAIL") << '\n'
              << "  Superset Con matches Lazy (1 msg):    "
              << (con < 1.05 ? "PASS" : "FAIL") << '\n'
              << "  Exact matches Lazy (1 msg):           "
              << (exact < 1.05 ? "PASS" : "FAIL") << '\n';
    return 0;
}
