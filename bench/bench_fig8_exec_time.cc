/**
 * @file
 * Reproduces paper Figure 8: total execution time normalized to Lazy.
 *
 * Expected shape: Lazy is the slowest; Superset Agg is the fastest and
 * tracks Oracle; Superset Con is the slowest flexible algorithm (false
 * positives snoop on the critical path); Exact is slow on SPLASH-2
 * (downgrades push reads to memory) but does not hurt SPECjbb.
 */

#include <chrono>
#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Figure 8: execution time (normalized to Lazy) "
                 "===\n";
    const std::size_t jobs = benchJobs();
    const auto start = std::chrono::steady_clock::now();
    const PaperSweeps sweeps = runPaperSweeps(8000, 12000, jobs);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const Metric metric = [](const RunResult &r) {
        return static_cast<double>(r.execCycles);
    };
    printFigureTable("execution time, normalized to Lazy", sweeps, metric,
                     /*normalize=*/true, /*splash_arith_mean=*/false, 3);
    printPerAppTable("per-application detail (normalized)", sweeps,
                     metric, /*normalize=*/true, 3);

    const double lazy_s = 1.0;
    const double agg_s =
        lazyNormalizedGeoMean(sweeps.splash, Algorithm::SupersetAgg,
                              metric);
    const double eager_s =
        lazyNormalizedGeoMean(sweeps.splash, Algorithm::Eager, metric);
    const double oracle_s =
        lazyNormalizedGeoMean(sweeps.splash, Algorithm::Oracle, metric);
    const double con_s = lazyNormalizedGeoMean(
        sweeps.splash, Algorithm::SupersetCon, metric);
    const double exact_s =
        lazyNormalizedGeoMean(sweeps.splash, Algorithm::Exact, metric);
    const double agg_j =
        metric(sweeps.jbb.byAlgorithm(Algorithm::SupersetAgg)) /
        metric(sweeps.jbb.byAlgorithm(Algorithm::Lazy));
    const double exact_j =
        metric(sweeps.jbb.byAlgorithm(Algorithm::Exact)) /
        metric(sweeps.jbb.byAlgorithm(Algorithm::Lazy));
    const double eager_j =
        metric(sweeps.jbb.byAlgorithm(Algorithm::Eager)) /
        metric(sweeps.jbb.byAlgorithm(Algorithm::Lazy));

    std::cout << "\npaper checks:\n"
              << "  Lazy is slowest on SPLASH-2:                  "
              << (agg_s < lazy_s && eager_s < lazy_s ? "PASS" : "FAIL")
              << '\n'
              << "  SupersetAgg tracks Oracle (within 5%):        "
              << (agg_s < oracle_s * 1.05 ? "PASS" : "FAIL") << '\n'
              << "  SupersetAgg at least matches Eager:           "
              << (agg_s <= eager_s * 1.01 && agg_j <= eager_j * 1.01
                      ? "PASS"
                      : "FAIL")
              << '\n'
              << "  SupersetCon slower than Agg but beats Lazy:   "
              << (con_s >= agg_s && con_s < 1.0 ? "PASS" : "FAIL") << '\n'
              << "  Exact penalized on SPLASH-2 (vs Agg):         "
              << (exact_s > agg_s ? "PASS" : "FAIL") << '\n'
              << "  Exact does not hurt SPECjbb (vs Agg, ~5%):    "
              << (exact_j < agg_j * 1.10 ? "PASS" : "FAIL") << '\n';

    std::cout << "\nSupersetAgg speedup vs Lazy: SPLASH-2 "
              << static_cast<int>((1.0 - agg_s) * 100) << "% (paper 14%),"
              << " SPECjbb " << static_cast<int>((1.0 - agg_j) * 100)
              << "% (paper 13%), SPECweb "
              << static_cast<int>(
                     (1.0 -
                      metric(sweeps.web.byAlgorithm(
                          Algorithm::SupersetAgg)) /
                          metric(sweeps.web.byAlgorithm(Algorithm::Lazy))) *
                     100)
              << "% (paper 6%)\n";

    const double cells = static_cast<double>(
        (sweeps.splash.size() + 2) * paperAlgorithms().size());
    writeBenchRecord("fig8_exec_time",
                     {{"wall_seconds", wall_s},
                      {"jobs", static_cast<double>(jobs)},
                      {"simulations", cells},
                      {"simulations_per_second",
                       wall_s > 0.0 ? cells / wall_s : 0.0}});
    return 0;
}
