/**
 * @file
 * Comparison: embedded-ring snooping vs. a flat home-node directory
 * (paper §2.1.2: directories "introduce a time-consuming indirection
 * in all transactions" on mid-range machines).
 *
 * Runs the same traces through the ring machine (Lazy and Superset
 * Agg) and through the directory comparator, and reports execution
 * time, network traffic, probe counts, and the directory's storage
 * footprint.
 *
 * Note on interpretation: the comparator is deliberately optimistic —
 * its network is latency-only (no link occupancy), directory state
 * changes are race-free by construction, and there is no NACK/retry
 * machinery. It therefore bounds the directory's *performance* from
 * above; what the paper holds against directories on mid-range
 * machines is the other two columns — the per-line tracking state
 * (storage grows with cache capacity x cores) and the complexity a
 * race-free home controller actually requires, both of which the
 * embedded ring avoids entirely.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "directory/directory_machine.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

namespace
{

struct Outcome
{
    std::string label;
    Cycle exec = 0;
    std::uint64_t messages = 0;
    std::uint64_t probes = 0;
    double energyNj = 0.0;
};

Outcome
runRing(Algorithm a, const WorkloadProfile &profile,
        const CoreTraces &traces)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(a, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    const RunResult r = runSimulation(cfg, traces, profile.name);
    Outcome out;
    out.label = std::string("ring/") + std::string(toString(a));
    out.exec = r.execCycles;
    out.messages = r.readLinkMessages;
    out.probes = r.readSnoops + r.writeSnoops;
    out.energyNj = r.energyNj;
    return out;
}

struct DirExtra
{
    std::size_t trackedLines = 0;
    std::uint64_t storageBits = 0;
};

DirExtra g_dir_extra;

Outcome
runDirectory(const WorkloadProfile &profile, const CoreTraces &traces)
{
    TorusParams torus;
    torus.rows = profile.numCmps() >= 8 ? 2 : 1;
    torus.columns = profile.numCmps() / torus.rows;
    DirectoryMachine dir(profile.numCmps(), profile.coresPerCmp, 8192, 8,
                         torus);
    WorkloadRunner runner(dir.queue(), dir, traces, CoreParams{});
    // Reset measured stats at the warmup barrier like the ring runs.
    runner.setWarmupDoneFn([&dir]() { dir.stats().reset(); });
    const Cycle measured = runner.run();
    Outcome out;
    out.label = "directory";
    out.exec = measured;
    out.messages = dir.stats().counterValue("message_hops");
    out.probes = dir.stats().counterValue("probes");
    out.energyNj = dir.energyNj();
    g_dir_extra.trackedLines = dir.trackedLines();
    g_dir_extra.storageBits = dir.storageBits();
    return out;
}

} // namespace

int
main()
{
    std::cout << "=== Comparison: embedded-ring snooping vs. directory "
                 "protocol ===\n";

    std::vector<WorkloadProfile> profiles;
    {
        auto p = profileByName("barnes"); // sharing heavy
        scaleProfile(p, 8000, 2500);
        profiles.push_back(p);
    }
    profiles.push_back(jbbBenchProfile(10000, 2500)); // memory bound

    for (const auto &profile : profiles) {
        std::cout << "\n-- " << profile.name << " --\n"
                  << std::left << std::setw(18) << "protocol"
                  << std::right << std::setw(13) << "exec" << std::setw(14)
                  << "link msgs" << std::setw(12) << "probes"
                  << std::setw(13) << "energy (uJ)" << '\n'
                  << std::string(70, '-') << '\n';
        SyntheticGenerator gen(profile);
        const CoreTraces traces = gen.generate();
        std::vector<Outcome> outcomes;
        std::cerr << "  ring Lazy...\n";
        outcomes.push_back(runRing(Algorithm::Lazy, profile, traces));
        std::cerr << "  ring SupersetAgg...\n";
        outcomes.push_back(
            runRing(Algorithm::SupersetAgg, profile, traces));
        std::cerr << "  directory...\n";
        outcomes.push_back(runDirectory(profile, traces));
        const double base = static_cast<double>(outcomes.front().exec);
        for (const auto &o : outcomes) {
            std::cout << std::left << std::setw(18) << o.label
                      << std::right << std::fixed << std::setprecision(3)
                      << std::setw(13) << o.exec / base << std::setw(14)
                      << o.messages << std::setw(12) << o.probes
                      << std::setprecision(1) << std::setw(13)
                      << o.energyNj / 1e3 << '\n';
        }
        std::cout << "directory tracking state: "
                  << g_dir_extra.trackedLines << " lines, "
                  << g_dir_extra.storageBits / 8 / 1024
                  << " KB (vs the ring's 7.3 KB predictor per node and "
                     "no directory at all)\n";
    }

    std::cout << "\ninterpretation (paper §2.1.2): this idealized, "
                 "contention-free directory bounds performance from "
                 "above, yet needs per-line tracking state that scales "
                 "with cache capacity x cores plus a race-free home "
                 "controller; the embedded ring needs neither -- the "
                 "cost/simplicity trade the paper argues for.\n";
    return 0;
}
