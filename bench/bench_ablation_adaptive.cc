/**
 * @file
 * Ablation of the paper's §6.1.5 proposal: "an adaptive system where
 * the action [on a positive prediction] is chosen dynamically.
 * Typically, the action would be that of Superset Agg. However, if the
 * system needs to save energy, it would use the action of Superset
 * Con."
 *
 * Runs the AdaptiveSuperset policy with an EnergyBudgetController
 * sampling fixed-length epochs, against pure Superset Con and pure
 * Superset Agg, and reports where the adaptive point lands on the
 * (execution time, energy) plane.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "snoop/adaptive_switcher.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

namespace
{

struct AdaptiveOutcome
{
    RunResult result;
    std::uint64_t epochs = 0;
    std::uint64_t conservativeEpochs = 0;
};

/** Run AdaptiveSuperset with an epoch-driven budget controller. */
AdaptiveOutcome
runAdaptive(const WorkloadProfile &profile, double high_nj_per_req,
            double low_nj_per_req, Cycle epoch_cycles)
{
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::AdaptiveSuperset, profile.coresPerCmp);
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    Machine machine(cfg);
    auto &policy = dynamic_cast<AdaptiveSupersetPolicy &>(machine.policy());
    EnergyBudgetController controller(policy, high_nj_per_req,
                                      low_nj_per_req);

    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          cfg.core);

    // Epoch sampler: feed the controller the energy/request deltas.
    // Stops rescheduling once the workload drains so the event queue
    // can empty.
    struct EpochState
    {
        double lastEnergy = 0.0;
        std::uint64_t lastRequests = 0;
    };
    auto state = std::make_shared<EpochState>();
    std::function<void()> sample = [&machine, &controller, &runner, state,
                                    epoch_cycles, &sample]() {
        if (runner.allDone())
            return;
        const double energy = machine.energy().totalNj();
        const std::uint64_t requests =
            machine.controller().readRequests();
        controller.sampleEpoch(energy - state->lastEnergy,
                               requests - state->lastRequests);
        state->lastEnergy = energy;
        state->lastRequests = requests;
        machine.queue().schedule(epoch_cycles, sample);
    };
    machine.queue().schedule(epoch_cycles, sample);
    runner.setWarmupDoneFn([&machine]() { machine.resetStats(); });
    const Cycle measured = runner.run();
    machine.finalizeEnergy();

    AdaptiveOutcome out;
    out.result.workload = profile.name;
    out.result.algorithm = "Adaptive";
    out.result.execCycles = measured;
    out.result.energyNj = machine.energy().totalNj();
    out.result.readRingRequests =
        machine.controller().stats().counterValue("read_ring_requests");
    out.result.snoopsPerReadRequest =
        machine.controller().snoopsPerReadRequest();
    out.epochs = controller.epochs();
    out.conservativeEpochs = controller.conservativeEpochs();
    return out;
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: adaptive Superset Con/Agg switching "
                 "(paper 6.1.5) ===\n";

    auto profile = profileByName("barnes");
    scaleProfile(profile, 10000, 3000);

    std::cerr << "  running pure Con and Agg...\n";
    const RunResult con = runOne(Algorithm::SupersetCon, profile);
    const RunResult agg = runOne(Algorithm::SupersetAgg, profile);

    // Budget thresholds between Con's and Agg's per-request energy.
    const double con_per_req = con.energyNj / con.readRingRequests;
    const double agg_per_req = agg.energyNj / agg.readRingRequests;
    const double mid = (con_per_req + agg_per_req) / 2.0;

    std::cerr << "  running adaptive...\n";
    const AdaptiveOutcome adaptive =
        runAdaptive(profile, mid * 1.05, mid * 0.95, 50000);

    std::cout << '\n'
              << std::left << std::setw(14) << "policy" << std::right
              << std::setw(14) << "exec cycles" << std::setw(14)
              << "energy (uJ)" << std::setw(12) << "snoops/req" << '\n'
              << std::string(54, '-') << '\n';
    auto row = [](const std::string &name, const RunResult &r) {
        std::cout << std::left << std::setw(14) << name << std::right
                  << std::setw(14) << r.execCycles << std::fixed
                  << std::setprecision(1) << std::setw(14)
                  << r.energyNj / 1e3 << std::setprecision(2)
                  << std::setw(12) << r.snoopsPerReadRequest << '\n';
    };
    row("SupersetCon", con);
    row("SupersetAgg", agg);
    row("Adaptive", adaptive.result);
    std::cout << "\nadaptive spent " << adaptive.conservativeEpochs
              << " of " << adaptive.epochs
              << " epochs in Conservative mode\n";

    const bool between_time =
        adaptive.result.execCycles <= con.execCycles * 101 / 100;
    const bool between_energy =
        adaptive.result.energyNj <= agg.energyNj * 1.01;
    std::cout << "\nexpectation: the adaptive point sits between the two "
                 "pure policies on both axes: "
              << (between_time && between_energy ? "PASS" : "CHECK")
              << '\n';
    return 0;
}
