/**
 * @file
 * Ablation: the Exclude cache of the Superset predictor (paper §4.3.2
 * and the §6.2 discussion that it "helps for SPLASH-2 and SPECweb but
 * not for SPECjbb, where it thrashes").
 *
 * Compares Superset Con with the y Bloom filter plus a 2k Exclude cache
 * ("y2k") against the same filter with the Exclude cache removed
 * ("y0"): false-positive rate, snoops per request, and energy.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Ablation: Superset Exclude cache (y2k vs no "
                 "exclude) ===\n";

    std::vector<WorkloadProfile> profiles;
    for (const auto &name : {"barnes", "raytrace"}) {
        auto p = profileByName(name);
        scaleProfile(p, 8000, 2500);
        profiles.push_back(p);
    }
    profiles.push_back(jbbBenchProfile(10000, 2500));
    profiles.push_back(webBenchProfile(10000, 2500));

    std::cout << '\n'
              << std::left << std::setw(12) << "workload" << std::setw(10)
              << "exclude" << std::right << std::setw(10) << "FP rate"
              << std::setw(12) << "snoops/req" << std::setw(14)
              << "energy (uJ)" << '\n'
              << std::string(58, '-') << '\n';

    for (const auto &profile : profiles) {
        std::cerr << "  running " << profile.name << "...\n";
        for (const char *pred : {"y2k", "y0"}) {
            const RunResult r =
                runOne(Algorithm::SupersetCon, profile, pred);
            const double preds = static_cast<double>(r.predictions());
            std::cout << std::left << std::setw(12) << profile.name
                      << std::setw(10)
                      << (std::string(pred) == "y2k" ? "2k" : "none")
                      << std::right << std::fixed << std::setprecision(3)
                      << std::setw(10)
                      << (preds ? r.falsePositives / preds : 0.0)
                      << std::setprecision(2) << std::setw(12)
                      << r.snoopsPerReadRequest << std::setprecision(1)
                      << std::setw(14) << r.energyNj / 1e3 << '\n';
        }
    }

    std::cout << "\npaper expectation: removing the Exclude cache raises "
                 "the false-positive rate and snoop count on the "
                 "sharing-heavy workloads; on SPECjbb the cache thrashes "
                 "and the difference is small.\n";
    return 0;
}
