/**
 * @file
 * Node-count scaling study (paper §1/§2.1.4: the embedded-ring approach
 * "is certainly appropriate for medium-range machines -- for example,
 * systems with 8-16 nodes", and its drawback -- snoop latency and
 * operations growing with the ring -- is what Flexible Snooping
 * attacks).
 *
 * Sweeps the machine from 4 to 16 CMPs under Lazy, Eager, Superset Agg
 * and Oracle on a SPECweb-like workload scaled per node, and reports
 * how snoops/request and read latency grow with N.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Scaling: 4 to 16 CMPs on the embedded ring ===\n";

    const std::vector<std::size_t> node_counts = {4, 8, 12, 16};
    const std::vector<Algorithm> algos = {
        Algorithm::Lazy,
        Algorithm::Eager,
        Algorithm::SupersetAgg,
        Algorithm::Oracle,
    };

    std::cout << '\n'
              << std::left << std::setw(13) << "algorithm" << std::right
              << std::setw(7) << "CMPs" << std::setw(13) << "snoops/req"
              << std::setw(13) << "read lat" << std::setw(14)
              << "exec cycles" << '\n'
              << std::string(60, '-') << '\n';

    for (Algorithm a : algos) {
        for (std::size_t n : node_counts) {
            WorkloadProfile profile = specWebProfile();
            profile.name = "web" + std::to_string(n);
            profile.numCores = n;
            profile.coresPerCmp = 1;
            scaleProfile(profile, 6000, 1500);
            std::cerr << "  " << toString(a) << " n=" << n << "...\n";
            const RunResult r = runOne(a, profile);
            std::cout << std::left << std::setw(13) << toString(a)
                      << std::right << std::setw(7) << n << std::fixed
                      << std::setprecision(2) << std::setw(13)
                      << r.snoopsPerReadRequest << std::setprecision(0)
                      << std::setw(13) << r.avgReadLatency
                      << std::setw(14) << r.execCycles << '\n';
        }
        std::cout << '\n';
    }

    std::cout << "expectation: Lazy's snoops and latency grow roughly "
                 "linearly with N; Eager's snoops grow as N-1 while its "
                 "latency grows only with the ring circumference; "
                 "Superset Agg keeps snoops nearly flat (predictor "
                 "filtering) and tracks Oracle's latency at every size "
                 "-- the gap to Lazy widens with N, which is the paper's "
                 "motivation.\n";
    return 0;
}
