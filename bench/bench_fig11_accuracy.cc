/**
 * @file
 * Reproduces paper Figure 11: the fraction of true positive, true
 * negative, false positive and false negative predictions issued by
 * read snoop requests, for a perfect predictor and every Supplier
 * Predictor implementation.
 *
 * Expected shape:
 *  - perfect: ~4 TN per TP on SPLASH-2/web (supplier ~5 nodes away);
 *    almost all TN on SPECjbb (rarely a supplier);
 *  - Subset: few FN, vanishing at 8K entries;
 *  - Superset: significant FP (paper: 20-40% for the best config);
 *  - Exact: lower TP fraction for smaller tables (downgrades).
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

namespace
{

struct AccuracyRow
{
    double tp = 0.0, tn = 0.0, fp = 0.0, fn = 0.0;

    void
    accumulate(const RunResult &r, double weight)
    {
        const double total = static_cast<double>(r.predictions());
        if (total == 0.0)
            return;
        tp += r.truePositives / total * weight;
        tn += r.trueNegatives / total * weight;
        fp += r.falsePositives / total * weight;
        fn += r.falseNegatives / total * weight;
    }
};

} // namespace

int
main()
{
    std::cout << "=== Figure 11: Supplier Predictor accuracy ===\n";

    struct Config
    {
        std::string label;
        Algorithm algo;
        std::string predictor;
    };
    const std::vector<Config> configs = {
        {"Perfect", Algorithm::Oracle, ""},
        {"Sub512", Algorithm::Subset, "sub512"},
        {"Sub2k", Algorithm::Subset, "sub2k"},
        {"Sub8k", Algorithm::Subset, "sub8k"},
        {"SupCy512", Algorithm::SupersetCon, "y512"},
        {"SupCy2k", Algorithm::SupersetCon, "y2k"},
        {"SupCn2k", Algorithm::SupersetCon, "n2k"},
        {"Exa512", Algorithm::Exact, "exa512"},
        {"Exa2k", Algorithm::Exact, "exa2k"},
        {"Exa8k", Algorithm::Exact, "exa8k"},
    };

    std::vector<WorkloadProfile> splash_apps;
    for (const auto &name : {"barnes", "ocean", "raytrace", "water-nsq"}) {
        auto p = profileByName(name);
        scaleProfile(p, 6000, 2000);
        splash_apps.push_back(p);
    }
    const auto jbb = jbbBenchProfile(8000, 2000);
    const auto web = webBenchProfile(8000, 2000);

    std::cout << '\n'
              << std::left << std::setw(11) << "predictor" << std::setw(10)
              << "workload" << std::right << std::setw(9) << "TP"
              << std::setw(9) << "TN" << std::setw(9) << "FP"
              << std::setw(9) << "FN" << '\n'
              << std::string(57, '-') << '\n';

    auto print_row = [](const std::string &config,
                        const std::string &workload,
                        const AccuracyRow &row) {
        std::cout << std::left << std::setw(11) << config << std::setw(10)
                  << workload << std::right << std::fixed
                  << std::setprecision(3) << std::setw(9) << row.tp
                  << std::setw(9) << row.tn << std::setw(9) << row.fp
                  << std::setw(9) << row.fn << '\n';
    };

    for (const auto &cfg : configs) {
        std::cerr << "  running " << cfg.label << "...\n";
        AccuracyRow splash_row;
        for (const auto &app : splash_apps) {
            const RunResult r = runOne(cfg.algo, app, cfg.predictor);
            splash_row.accumulate(r, 1.0 / splash_apps.size());
        }
        print_row(cfg.label, "SPLASH-2", splash_row);
        AccuracyRow jbb_row;
        jbb_row.accumulate(runOne(cfg.algo, jbb, cfg.predictor), 1.0);
        print_row(cfg.label, "SPECjbb", jbb_row);
        AccuracyRow web_row;
        web_row.accumulate(runOne(cfg.algo, web, cfg.predictor), 1.0);
        print_row(cfg.label, "SPECweb", web_row);
        std::cout << '\n';
    }

    std::cout << "paper expectations: perfect predictor shows ~4 TN per "
                 "TP on SPLASH-2/SPECweb and almost no TP on SPECjbb; "
                 "Sub8k false negatives vanish; Superset FP around "
                 "20-40%; Exa512 true positives below Exa8k "
                 "(downgrades).\n";
    return 0;
}
