/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot data structures of the
 * simulator: event queue, set-associative arrays, Bloom filter,
 * predictors, and ring message hops. These guard the simulator's own
 * performance; they do not correspond to a paper figure.
 */

#include <array>

#include <benchmark/benchmark.h>

#include "net/ring.hh"
#include "predictor/exact_predictor.hh"
#include "predictor/subset_predictor.hh"
#include "predictor/superset_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace flexsnoop
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue queue;
        int sink = 0;
        for (int i = 0; i < batch; ++i)
            queue.schedule(static_cast<Cycle>(i % 97), [&sink]() {
                benchmark::DoNotOptimize(++sink);
            });
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

/**
 * Same schedule/run loop but with a capture too large for EventFn's
 * inline buffer, forcing the heap fallback — the cost the
 * small-buffer optimization avoids on the simulator's hot path.
 */
void
BM_EventQueueScheduleRunHeapCallable(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue queue;
        int sink = 0;
        for (int i = 0; i < batch; ++i) {
            std::array<std::uint64_t, 16> payload{};
            payload[0] = static_cast<std::uint64_t>(i);
            queue.schedule(static_cast<Cycle>(i % 97),
                           [&sink, payload]() {
                               benchmark::DoNotOptimize(
                                   sink += static_cast<int>(payload[0]));
                           });
        }
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRunHeapCallable)->Arg(1024);

// Counter increment, the way the protocol hot path used to do it: a
// by-name lookup in the stat group on every event. The group carries a
// controller-sized population of counters.
void
BM_StatCounterIncByName(benchmark::State &state)
{
    StatGroup stats("bench");
    for (int i = 0; i < 30; ++i)
        stats.counter("counter_" + std::to_string(i));
    Counter &hot = stats.counter("read_snoops");
    for (auto _ : state) {
        stats.counter("read_snoops").inc();
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(hot.value());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterIncByName);

// Counter increment through a handle resolved once at construction —
// what the controllers do now.
void
BM_StatCounterIncCached(benchmark::State &state)
{
    StatGroup stats("bench");
    for (int i = 0; i < 30; ++i)
        stats.counter("counter_" + std::to_string(i));
    Counter &hot = stats.counter("read_snoops");
    for (auto _ : state) {
        hot.inc();
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(hot.value());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterIncCached);

void
BM_SetAssocArrayChurn(benchmark::State &state)
{
    SetAssocArray<int> array(8192, 8);
    Rng rng(1);
    for (auto _ : state) {
        const Addr line = rng.nextBelow(32768) * kLineSizeBytes;
        benchmark::DoNotOptimize(array.insert(line, 1));
        benchmark::DoNotOptimize(array.lookup(line));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocArrayChurn);

void
BM_BloomFilterQuery(benchmark::State &state)
{
    CountingBloomFilter filter({10, 4, 7});
    Rng rng(2);
    for (int i = 0; i < 2000; ++i)
        filter.insert(rng.nextBelow(1 << 20) * kLineSizeBytes);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            filter.mayContain(rng.nextBelow(1 << 20) * kLineSizeBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomFilterQuery);

void
BM_SubsetPredictorLookup(benchmark::State &state)
{
    SubsetPredictor pred("p", 2048, 8, 18, 2);
    Rng rng(3);
    for (int i = 0; i < 1500; ++i)
        pred.supplierGained(rng.nextBelow(1 << 16) * kLineSizeBytes);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pred.predict(rng.nextBelow(1 << 16) * kLineSizeBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubsetPredictorLookup);

void
BM_SupersetPredictorLookup(benchmark::State &state)
{
    SupersetPredictor pred("p", {10, 4, 7}, 2048, 8, 18, 2);
    Rng rng(4);
    for (int i = 0; i < 1500; ++i)
        pred.supplierGained(rng.nextBelow(1 << 16) * kLineSizeBytes);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pred.predict(rng.nextBelow(1 << 16) * kLineSizeBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SupersetPredictorLookup);

void
BM_RingFullCircle(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue queue;
        Ring ring(queue, 8, RingParams{}, "bench");
        int arrivals = 0;
        for (NodeId n = 0; n < 8; ++n) {
            ring.setHandler(n, [&, n](const SnoopMessage &msg) {
                ++arrivals;
                if (n != msg.requester)
                    ring.send(n, msg);
            });
        }
        SnoopMessage msg;
        msg.line = 0;
        msg.requester = 0;
        msg.txn = 1;
        ring.send(0, msg);
        queue.run();
        benchmark::DoNotOptimize(arrivals);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_RingFullCircle);

} // namespace
} // namespace flexsnoop

BENCHMARK_MAIN();
