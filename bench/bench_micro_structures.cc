/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot data structures of the
 * simulator: event queue, set-associative arrays, Bloom filter,
 * predictors, and ring message hops. These guard the simulator's own
 * performance; they do not correspond to a paper figure.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/machine.hh"
#include "core/simulation.hh"
#include "net/ring.hh"
#include "trace/trace_sink.hh"
#include "workload/synthetic_generator.hh"
#include "predictor/exact_predictor.hh"
#include "predictor/subset_predictor.hh"
#include "predictor/superset_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "workload/core_model.hh"

namespace flexsnoop
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue queue;
        int sink = 0;
        for (int i = 0; i < batch; ++i)
            queue.schedule(static_cast<Cycle>(i % 97), [&sink]() {
                benchmark::DoNotOptimize(++sink);
            });
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

/**
 * Same schedule/run loop but with a capture too large for EventFn's
 * inline buffer, forcing the heap fallback — the cost the
 * small-buffer optimization avoids on the simulator's hot path.
 */
void
BM_EventQueueScheduleRunHeapCallable(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue queue;
        int sink = 0;
        for (int i = 0; i < batch; ++i) {
            std::array<std::uint64_t, 16> payload{};
            payload[0] = static_cast<std::uint64_t>(i);
            queue.schedule(static_cast<Cycle>(i % 97),
                           [&sink, payload]() {
                               benchmark::DoNotOptimize(
                                   sink += static_cast<int>(payload[0]));
                           });
        }
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRunHeapCallable)->Arg(1024);

// Counter increment, the way the protocol hot path used to do it: a
// by-name lookup in the stat group on every event. The group carries a
// controller-sized population of counters.
void
BM_StatCounterIncByName(benchmark::State &state)
{
    StatGroup stats("bench");
    for (int i = 0; i < 30; ++i)
        stats.counter("counter_" + std::to_string(i));
    Counter &hot = stats.counter("read_snoops");
    for (auto _ : state) {
        stats.counter("read_snoops").inc();
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(hot.value());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterIncByName);

// Counter increment through a handle resolved once at construction —
// what the controllers do now.
void
BM_StatCounterIncCached(benchmark::State &state)
{
    StatGroup stats("bench");
    for (int i = 0; i < 30; ++i)
        stats.counter("counter_" + std::to_string(i));
    Counter &hot = stats.counter("read_snoops");
    for (auto _ : state) {
        hot.inc();
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(hot.value());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterIncCached);

void
BM_SetAssocArrayChurn(benchmark::State &state)
{
    SetAssocArray<int> array(8192, 8);
    Rng rng(1);
    for (auto _ : state) {
        const Addr line = rng.nextBelow(32768) * kLineSizeBytes;
        benchmark::DoNotOptimize(array.insert(line, 1));
        benchmark::DoNotOptimize(array.lookup(line));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocArrayChurn);

void
BM_BloomFilterQuery(benchmark::State &state)
{
    CountingBloomFilter filter({10, 4, 7});
    Rng rng(2);
    for (int i = 0; i < 2000; ++i)
        filter.insert(rng.nextBelow(1 << 20) * kLineSizeBytes);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            filter.mayContain(rng.nextBelow(1 << 20) * kLineSizeBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomFilterQuery);

void
BM_SubsetPredictorLookup(benchmark::State &state)
{
    SubsetPredictor pred("p", 2048, 8, 18, 2);
    Rng rng(3);
    for (int i = 0; i < 1500; ++i)
        pred.supplierGained(rng.nextBelow(1 << 16) * kLineSizeBytes);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pred.predict(rng.nextBelow(1 << 16) * kLineSizeBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubsetPredictorLookup);

void
BM_SupersetPredictorLookup(benchmark::State &state)
{
    SupersetPredictor pred("p", {10, 4, 7}, 2048, 8, 18, 2);
    Rng rng(4);
    for (int i = 0; i < 1500; ++i)
        pred.supplierGained(rng.nextBelow(1 << 16) * kLineSizeBytes);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pred.predict(rng.nextBelow(1 << 16) * kLineSizeBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SupersetPredictorLookup);

void
BM_RingFullCircle(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue queue;
        Ring ring(queue, 8, RingParams{}, "bench");
        int arrivals = 0;
        for (NodeId n = 0; n < 8; ++n) {
            ring.setHandler(n, [&, n](const SnoopMessage &msg) {
                ++arrivals;
                if (n != msg.requester)
                    ring.send(n, msg);
            });
        }
        SnoopMessage msg;
        msg.line = 0;
        msg.requester = 0;
        msg.txn = 1;
        ring.send(0, msg);
        queue.run();
        benchmark::DoNotOptimize(arrivals);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_RingFullCircle);

/**
 * Trace-point cost with tracing disabled: the exact shape every
 * instrumented site compiles to — one branch on a cached null pointer.
 */
void
BM_TracePointDisabled(benchmark::State &state)
{
    TraceSink *trace = nullptr;
    benchmark::DoNotOptimize(trace);
    Cycle cycle = 0;
    for (auto _ : state) {
        ++cycle;
        if (trace)
            trace->record(TraceEvent::Hop, cycle, 1, 0x1234);
        benchmark::DoNotOptimize(cycle);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracePointDisabled);

/**
 * TraceSink::record() hot path, drop (0) vs spill (1) mode. The 256 KiB
 * buffer overflows every ~6.5k records, so the spill variant includes
 * the amortized fwrite cost — the worst case a traced run pays.
 */
void
BM_TraceSinkRecord(benchmark::State &state)
{
    const std::string path = "/tmp/flexsnoop_bench_sink.fstrace";
    TraceConfig cfg;
    cfg.path = path;
    cfg.mode =
        state.range(0) == 0 ? TraceMode::Drop : TraceMode::Spill;
    cfg.snapshotCycles = 0;
    {
        TraceSink sink(cfg, 8, 32);
        Cycle cycle = 0;
        for (auto _ : state) {
            ++cycle;
            sink.record(TraceEvent::Hop, cycle, 1, 0x1234, cycle + 9, 2,
                        0, 0);
        }
        benchmark::DoNotOptimize(sink.recorded());
    }
    state.SetItemsProcessed(state.iterations());
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceSinkRecord)->Arg(0)->Arg(1);

/**
 * Ring-event coalescing microbench: one quiet requester streaming reads
 * to fresh lines on an eager 16-node ring — the express path's best
 * case, and the shape that dominates the low-contention regions of the
 * figure benches. Measures simulator events executed per transaction
 * and wall time with the express path off vs on; the counters the
 * figure benches read are bit-identical either way (enforced by
 * test_express_equivalence), so this is pure simulator speedup.
 */
struct RingEventRun
{
    double eventsPerTxn = 0.0;
    double nsPerRef = 0.0;
};

RingEventRun
runRingEventWorkload(bool express, std::size_t refs)
{
    MachineConfig cfg = MachineConfig::paperDefault(Algorithm::Eager, 1);
    cfg.setNumCmps(16);
    cfg.coherence.ringExpress = express;

    CoreTraces traces;
    traces.traces.resize(cfg.numCores());
    traces.warmupRefs = 0;
    for (std::size_t i = 0; i < refs; ++i) {
        MemRef ref;
        ref.addr = static_cast<Addr>((i + 1) * kLineSizeBytes);
        ref.gap = 4000; // longer than a full 16-node ring round trip
        traces.traces[0].push_back(ref);
    }

    Machine machine(cfg);
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          cfg.core);
    const auto start = std::chrono::steady_clock::now();
    runner.run();
    const auto stop = std::chrono::steady_clock::now();

    RingEventRun out;
    out.eventsPerTxn =
        static_cast<double>(machine.queue().executed()) /
        static_cast<double>(refs);
    out.nsPerRef = std::chrono::duration<double, std::nano>(stop - start)
                       .count() /
                   static_cast<double>(refs);
    return out;
}

void
reportRingEventCoalescing()
{
    const std::size_t refs =
        static_cast<std::size_t>(4000 * bench::benchScale());
    // Warm both paths once so page faults and pool growth do not land
    // in the timed runs.
    runRingEventWorkload(false, refs / 4);
    runRingEventWorkload(true, refs / 4);
    const RingEventRun perhop = runRingEventWorkload(false, refs);
    const RingEventRun expr = runRingEventWorkload(true, refs);

    const double event_ratio = perhop.eventsPerTxn / expr.eventsPerTxn;
    const double wall_speedup = perhop.nsPerRef / expr.nsPerRef;
    std::cout << "\nRing event coalescing (eager, 16 nodes, "
              << refs << " reads):\n"
              << "  events/txn  per-hop " << perhop.eventsPerTxn
              << "  express " << expr.eventsPerTxn << "  (" << event_ratio
              << "x fewer)\n"
              << "  ns/ref      per-hop " << perhop.nsPerRef
              << "  express " << expr.nsPerRef << "  (" << wall_speedup
              << "x faster)\n";

    bench::writeBenchRecord(
        "micro_structures",
        {{"events_per_txn_perhop", perhop.eventsPerTxn},
         {"events_per_txn_express", expr.eventsPerTxn},
         {"event_reduction_ratio", event_ratio},
         {"ns_per_ref_perhop", perhop.nsPerRef},
         {"ns_per_ref_express", expr.nsPerRef},
         {"wall_speedup_express", wall_speedup}});
}

/**
 * Probe-path layout A/B: the cost of one ring traversal's predictor
 * probes under the old layout (per-field 32-bit counter arrays, every
 * node re-deriving the field indices from the address) versus the new
 * one (indices computed once into a ProbeSignature, every node
 * answering from its packed one-bit-per-entry query bitmap). 16 nodes,
 * each with a supplier "y" filter and a presence filter: the legacy
 * counters total ~420 KB while the bitmaps total ~15 KB, so the new
 * path keeps the whole probe working set L1-resident. Answers must be
 * identical — the record's results_identical field gates that exactly.
 */
struct LegacyCountingBloom
{
    struct Field
    {
        unsigned shift = 0;
        std::uint64_t mask = 0;
        std::vector<std::uint32_t> counters;
    };
    std::vector<Field> fields;

    explicit LegacyCountingBloom(const std::vector<unsigned> &field_bits)
    {
        unsigned shift = 0;
        for (unsigned bits : field_bits) {
            Field f;
            f.shift = shift;
            f.mask = (1ull << bits) - 1;
            f.counters.assign(std::size_t{1} << bits, 0);
            fields.push_back(std::move(f));
            shift += bits;
        }
    }

    void
    insert(Addr line)
    {
        const std::uint64_t idx = lineIndex(line);
        for (Field &f : fields)
            ++f.counters[(idx >> f.shift) & f.mask];
    }

    // The old query was defined out of line in bloom_filter.cc and the
    // build has no LTO, so every hop paid a real call; keep that true
    // here instead of letting the optimizer flatten the reimplementation
    // into the sweep loop.
    __attribute__((noinline)) bool
    mayContain(Addr line) const
    {
        const std::uint64_t idx = lineIndex(line);
        for (const Field &f : fields) {
            if (f.counters[(idx >> f.shift) & f.mask] == 0)
                return false;
        }
        return true;
    }
};

struct ProbePathFixture
{
    static constexpr std::size_t kNodes = 16;

    struct Node
    {
        CountingBloomFilter supplier{std::vector<unsigned>{10, 4, 7}};
        CountingBloomFilter presence{std::vector<unsigned>{12, 8, 10}};
        LegacyCountingBloom legacySupplier{{10, 4, 7}};
        LegacyCountingBloom legacyPresence{{12, 8, 10}};
    };

    std::vector<Node> nodes{kNodes};
    std::vector<Addr> probes;

    ProbePathFixture()
    {
        Rng rng(20060613); // both layouts see identical contents
        for (Node &node : nodes) {
            for (int i = 0; i < 2000; ++i) {
                const Addr line = rng.nextBelow(1 << 20) * kLineSizeBytes;
                node.supplier.insert(line);
                node.legacySupplier.insert(line);
            }
            for (int i = 0; i < 6000; ++i) {
                const Addr line = rng.nextBelow(1 << 20) * kLineSizeBytes;
                node.presence.insert(line);
                node.legacyPresence.insert(line);
            }
        }
        const std::size_t n =
            static_cast<std::size_t>(20000 * bench::benchScale());
        probes.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            probes.push_back(rng.nextBelow(1 << 20) * kLineSizeBytes);
    }

    static ProbePathFixture &
    instance()
    {
        static ProbePathFixture fixture;
        return fixture;
    }

    /** In-flight transaction window: both sweeps process probes the way
     *  the event loop does — a batch of concurrent transactions, each
     *  visiting its next node before any of them visits the one after.
     *  Between a transaction's consecutive hops the other in-flight
     *  probes touch ~3k random counter lines (~190 KB), evicting the
     *  legacy per-line counters from L1; a tight all-hops-per-line loop
     *  would let them ride L1 and flatter the old layout. The issued
     *  signatures (32 B x window) stay hot, exactly like the in-flight
     *  ring messages that carry them. */
    static constexpr std::size_t kInFlight = 512;

    /** Per-transaction signatures, filled once at issue time — the
     *  bench equivalent of the ProbeSignature riding in SnoopMessage. */
    struct IssuedSignature
    {
        std::uint32_t supplier[ProbeSignature::kMaxFields];
        std::uint32_t presence[ProbeSignature::kMaxFields];
    };
    mutable std::array<IssuedSignature, kInFlight> issued{};

    std::uint64_t
    sweepHashed() const
    {
        std::uint64_t acc = 0;
        for (std::size_t base = 0; base < probes.size();
             base += kInFlight) {
            const std::size_t batch =
                std::min(kInFlight, probes.size() - base);
            for (std::size_t hop = 0; hop < kNodes; ++hop) {
                for (std::size_t i = 0; i < batch; ++i) {
                    // Old layout: this hop re-derives the field indices
                    // from the address and reads the 32-bit counters.
                    const Node &node = nodes[(base + i + hop) % kNodes];
                    const Addr line = probes[base + i];
                    acc = acc * 3 + node.legacySupplier.mayContain(line);
                    acc = acc * 3 + node.legacyPresence.mayContain(line);
                }
            }
        }
        return acc;
    }

    /** The same visit order, new layout: indices filled once per
     *  transaction, every node answers from its query bitmap. */
    std::uint64_t
    sweepSignature() const
    {
        std::uint64_t acc = 0;
        for (std::size_t base = 0; base < probes.size();
             base += kInFlight) {
            const std::size_t batch =
                std::min(kInFlight, probes.size() - base);
            for (std::size_t i = 0; i < batch; ++i) {
                const Node &issuer = nodes[(base + i) % kNodes];
                const Addr line = probes[base + i];
                issuer.supplier.fillSignature(line, issued[i].supplier);
                issuer.presence.fillSignature(line, issued[i].presence);
            }
            for (std::size_t hop = 0; hop < kNodes; ++hop) {
                for (std::size_t i = 0; i < batch; ++i) {
                    const Node &node = nodes[(base + i + hop) % kNodes];
                    acc = acc * 3 +
                          node.supplier.mayContain(issued[i].supplier);
                    acc = acc * 3 +
                          node.presence.mayContain(issued[i].presence);
                }
            }
        }
        return acc;
    }
};

void
BM_ProbePathHashed(benchmark::State &state)
{
    const ProbePathFixture &fx = ProbePathFixture::instance();
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.sweepHashed());
    state.SetItemsProcessed(state.iterations() * fx.probes.size() *
                            ProbePathFixture::kNodes);
}
BENCHMARK(BM_ProbePathHashed);

void
BM_ProbePathSignature(benchmark::State &state)
{
    const ProbePathFixture &fx = ProbePathFixture::instance();
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.sweepSignature());
    state.SetItemsProcessed(state.iterations() * fx.probes.size() *
                            ProbePathFixture::kNodes);
}
BENCHMARK(BM_ProbePathSignature);

void
reportProbePath()
{
    const ProbePathFixture &fx = ProbePathFixture::instance();
    const double hops = static_cast<double>(
        fx.probes.size() * ProbePathFixture::kNodes);

    // Warm both paths, then time each over several sweeps.
    std::uint64_t hashed_sum = fx.sweepHashed();
    std::uint64_t sig_sum = fx.sweepSignature();
    const bool identical = hashed_sum == sig_sum;

    constexpr int kReps = 5;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i)
        benchmark::DoNotOptimize(hashed_sum += fx.sweepHashed());
    auto stop = std::chrono::steady_clock::now();
    const double hashed_ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        (kReps * hops);

    start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i)
        benchmark::DoNotOptimize(sig_sum += fx.sweepSignature());
    stop = std::chrono::steady_clock::now();
    const double sig_ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        (kReps * hops);

    const double speedup = hashed_ns / sig_ns;
    std::cout << "\nProbe path (16 nodes, supplier+presence per hop):\n"
              << "  ns/hop-probe  hashed " << hashed_ns << "  signature "
              << sig_ns << "  (" << speedup << "x faster)\n"
              << "  answers identical: " << (identical ? "yes" : "NO")
              << "\n";

    bench::writeBenchRecord(
        "probe_path",
        {{"ns_per_hop_probe_hashed", hashed_ns},
         {"ns_per_hop_probe_signature", sig_ns},
         {"speedup_probe_signature", speedup},
         {"results_identical", identical ? 1.0 : 0.0}});
}

/**
 * End-to-end tracing overhead: the same mini workload untraced vs
 * traced (spill mode, the expensive one), whole-run wall clock. This is
 * the number docs/TRACING.md quotes, and the end-to-end counterpart of
 * the <2% acceptance bound on the figure benches with tracing off.
 */
double
runTraceOverheadWorkload(const MachineConfig &base,
                         const CoreTraces &traces, bool traced)
{
    MachineConfig cfg = base;
    const std::string path = "/tmp/flexsnoop_bench_overhead.fstrace";
    if (traced)
        cfg.trace.path = path;
    const auto start = std::chrono::steady_clock::now();
    runSimulation(cfg, traces, "mini");
    const auto stop = std::chrono::steady_clock::now();
    if (traced)
        std::remove(path.c_str());
    return std::chrono::duration<double, std::nano>(stop - start)
        .count();
}

void
reportTracingOverhead()
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore =
        static_cast<std::size_t>(1500 * bench::benchScale());
    profile.warmupRefs = profile.refsPerCore / 4;
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::SupersetAgg, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    const double total_refs = static_cast<double>(
        profile.refsPerCore * profile.numCores);

    // Warm both paths, then time each.
    runTraceOverheadWorkload(cfg, traces, false);
    runTraceOverheadWorkload(cfg, traces, true);
    const double off_ns = runTraceOverheadWorkload(cfg, traces, false);
    const double on_ns = runTraceOverheadWorkload(cfg, traces, true);
    const double overhead_pct = (on_ns / off_ns - 1.0) * 100.0;

    std::cout << "\nTracing overhead (mini, supersetagg, spill mode):\n"
              << "  ns/ref   off " << off_ns / total_refs << "  on "
              << on_ns / total_refs << "  (" << overhead_pct
              << "% overhead)\n";

    bench::writeBenchRecord(
        "trace_overhead",
        {{"ns_per_ref_untraced", off_ns / total_refs},
         {"ns_per_ref_traced_spill", on_ns / total_refs},
         {"overhead_pct", overhead_pct}});
}

/**
 * End-to-end metric-sampling overhead: the same mini workload with
 * telemetry off vs sampling every 10k cycles (the default cadence).
 * docs/TELEMETRY.md promises under 2% at that cadence and bit-identical
 * results; both are recorded as exact-gated metrics. Wall times are
 * min-of-repeats so scheduler noise cannot fake a regression.
 */
std::pair<double, RunResult>
runMetricsOverheadWorkload(const MachineConfig &base,
                           const CoreTraces &traces, bool sampled)
{
    MachineConfig cfg = base;
    const std::string path = "/tmp/flexsnoop_bench_overhead.fsmetrics";
    if (sampled) {
        cfg.metrics.path = path;
        cfg.metrics.intervalCycles = 10000;
    }
    const auto start = std::chrono::steady_clock::now();
    RunResult result = runSimulation(cfg, traces, "mini");
    const auto stop = std::chrono::steady_clock::now();
    if (sampled)
        std::remove(path.c_str());
    return {std::chrono::duration<double, std::nano>(stop - start)
                .count(),
            std::move(result)};
}

void
reportMetricsOverhead()
{
    WorkloadProfile profile = miniProfile();
    profile.refsPerCore =
        static_cast<std::size_t>(1500 * bench::benchScale());
    profile.warmupRefs = profile.refsPerCore / 4;
    const CoreTraces traces = SyntheticGenerator(profile).generate();
    MachineConfig cfg = MachineConfig::paperDefault(
        Algorithm::SupersetAgg, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    const double total_refs = static_cast<double>(
        profile.refsPerCore * profile.numCores);

    // Warm both paths, keeping one result per path for the identity
    // check, then take the min wall time over the timed repeats.
    const RunResult off_result =
        runMetricsOverheadWorkload(cfg, traces, false).second;
    const RunResult on_result =
        runMetricsOverheadWorkload(cfg, traces, true).second;
    constexpr int kRepeats = 3;
    double off_ns = 0.0, on_ns = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
        const double off = runMetricsOverheadWorkload(cfg, traces, false).first;
        const double on = runMetricsOverheadWorkload(cfg, traces, true).first;
        off_ns = r == 0 ? off : std::min(off_ns, off);
        on_ns = r == 0 ? on : std::min(on_ns, on);
    }
    const double overhead_pct = (on_ns / off_ns - 1.0) * 100.0;
    const bool identical =
        off_result.execCycles == on_result.execCycles &&
        off_result.readRingRequests == on_result.readRingRequests &&
        off_result.readSnoops == on_result.readSnoops &&
        off_result.readLinkMessages == on_result.readLinkMessages &&
        off_result.energyNj == on_result.energyNj &&
        off_result.retries == on_result.retries &&
        off_result.p95ReadLatency == on_result.p95ReadLatency;

    std::cout << "\nMetric-sampling overhead (mini, supersetagg, "
              << "interval 10k):\n"
              << "  ns/ref   off " << off_ns / total_refs << "  on "
              << on_ns / total_refs << "  (" << overhead_pct
              << "% overhead)\n"
              << "  results identical: " << (identical ? "yes" : "NO")
              << "\n";

    bench::writeBenchRecord(
        "metrics_overhead",
        {{"ns_per_ref_unsampled", off_ns / total_refs},
         {"ns_per_ref_sampled", on_ns / total_refs},
         {"overhead_pct", overhead_pct},
         {"results_identical", identical ? 1.0 : 0.0},
         {"metrics_overhead_within_budget",
          overhead_pct <= 2.0 ? 1.0 : 0.0}});
}

} // namespace
} // namespace flexsnoop

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    flexsnoop::reportRingEventCoalescing();
    flexsnoop::reportProbePath();
    flexsnoop::reportTracingOverhead();
    flexsnoop::reportMetricsOverhead();
    return 0;
}
