/**
 * @file
 * Ablation: core memory-level parallelism vs. snooping-algorithm gains.
 *
 * The paper's cores are out-of-order (they overlap miss latency); our
 * core model exposes that tolerance as the outstanding-miss window.
 * This bench sweeps the window for Lazy and Superset Agg on a
 * SPLASH-2-like workload. Two regimes appear: with small windows the
 * snoop-latency difference translates (partially) into execution time
 * — the paper's regime, where its end-to-end gains (6-14%) are far
 * below the raw latency gap; with a very wide window the cores flood
 * the ring, link occupancy dominates, and the message-heavy decoupled
 * algorithm can even lose to Lazy — the contention hazard the paper
 * notes for Eager-style forwarding.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "workload/synthetic_generator.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Ablation: outstanding-miss window (MLP) ===\n";

    auto profile = profileByName("barnes");
    scaleProfile(profile, 8000, 2500);
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    std::cout << '\n'
              << std::left << std::setw(9) << "window" << std::right
              << std::setw(14) << "Lazy cycles" << std::setw(14)
              << "SupAgg cycles" << std::setw(13) << "Agg speedup"
              << '\n'
              << std::string(50, '-') << '\n';

    for (std::size_t window : {1u, 2u, 4u, 8u}) {
        Cycle lazy_cycles = 0, agg_cycles = 0;
        for (Algorithm a : {Algorithm::Lazy, Algorithm::SupersetAgg}) {
            std::cerr << "  window=" << window << " " << toString(a)
                      << "...\n";
            MachineConfig cfg = MachineConfig::paperDefault(
                a, profile.coresPerCmp);
            cfg.setNumCmps(profile.numCmps());
            cfg.core.maxOutstanding = window;
            const RunResult r =
                runSimulation(cfg, traces, profile.name);
            (a == Algorithm::Lazy ? lazy_cycles : agg_cycles) =
                r.execCycles;
        }
        std::cout << std::left << std::setw(9) << window << std::right
                  << std::setw(14) << lazy_cycles << std::setw(14)
                  << agg_cycles << std::fixed << std::setprecision(1)
                  << std::setw(12)
                  << (static_cast<double>(lazy_cycles) / agg_cycles -
                      1.0) *
                         100
                  << "%" << '\n';
    }

    std::cout << "\nexpectation: positive Superset Agg speedups in the "
                 "latency-bound regime (small windows); at very wide "
                 "windows ring occupancy dominates and the advantage "
                 "shrinks or inverts (decoupled messages saturate the "
                 "links first).\n";
    return 0;
}
