/**
 * @file
 * Reproduces paper Table 1: the analytic comparison of Lazy, Eager and
 * Oracle under a perfectly-uniform supplier distribution.
 *
 * | algorithm | latency | snoops/request | messages/request |
 * |-----------|---------|----------------|------------------|
 * | Lazy      | high    | (N-1)/2        | 1                |
 * | Eager     | low     | N-1            | ~2               |
 * | Oracle    | low     | 1              | 1                |
 *
 * The uniform workload guarantees every measured read is a ring
 * transaction whose supplier sits at a uniformly-distributed distance.
 * Message counts are reported as ring-link traversals normalized by the
 * Lazy value (1 message travelling the whole ring = N traversals).
 */

#include <chrono>
#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "core/simulation.hh"
#include "workload/uniform_generator.hh"

using namespace flexsnoop;
using namespace flexsnoop::bench;

int
main()
{
    std::cout << "=== Table 1: Lazy vs Eager vs Oracle, uniform supplier "
                 "distribution ===\n";
    const std::size_t n = 8;

    UniformWorkloadParams params;
    params.numCores = n;
    params.linesPerReader = 96;
    const CoreTraces traces = UniformGenerator(params).generate();

    // The three baselines share the same traces and are independent, so
    // they run concurrently; results come back in submission order.
    const std::vector<Algorithm> algos = {Algorithm::Lazy,
                                          Algorithm::Eager,
                                          Algorithm::Oracle};
    const std::size_t jobs = std::min(benchJobs(), algos.size());
    const auto start = std::chrono::steady_clock::now();
    ParallelExecutor pool(jobs);
    const std::vector<RunResult> results =
        pool.map(algos.size(), [&](std::size_t i) {
            MachineConfig cfg = MachineConfig::paperDefault(algos[i], 1);
            return runSimulation(cfg, traces, "uniform");
        });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    struct Row
    {
        Algorithm algo;
        double latency;
        double snoops;
        double messages;
    };
    std::vector<Row> rows;
    double lazy_links = 0.0;

    for (std::size_t i = 0; i < algos.size(); ++i) {
        const RunResult &r = results[i];
        if (algos[i] == Algorithm::Lazy)
            lazy_links = r.readLinkMessagesPerRequest;
        rows.push_back(Row{algos[i], r.avgReadLatency,
                           r.snoopsPerReadRequest,
                           r.readLinkMessagesPerRequest});
    }

    std::cout << '\n'
              << std::left << std::setw(10) << "algorithm" << std::right
              << std::setw(16) << "req latency" << std::setw(16)
              << "snoops/req" << std::setw(16) << "msgs/req"
              << std::setw(16) << "paper snoops" << '\n';
    std::cout << std::string(74, '-') << '\n';
    for (const auto &row : rows) {
        double paper_snoops = 0.0;
        switch (row.algo) {
          case Algorithm::Lazy: paper_snoops = (n - 1) / 2.0; break;
          case Algorithm::Eager: paper_snoops = n - 1.0; break;
          default: paper_snoops = 1.0; break;
        }
        std::cout << std::left << std::setw(10) << toString(row.algo)
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(16) << row.latency << std::setw(16)
                  << row.snoops << std::setw(16)
                  << row.messages / lazy_links << std::setw(16)
                  << paper_snoops << '\n';
    }
    std::cout << "\n(messages/request normalized to Lazy = 1; paper "
                 "predicts ~2 for Eager)\n";
    writeBenchRecord("table1_baselines",
                     {{"wall_seconds", wall_s},
                      {"jobs", static_cast<double>(jobs)},
                      {"simulations", static_cast<double>(algos.size())}});
    return 0;
}
