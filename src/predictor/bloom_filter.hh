/**
 * @file
 * Counting Bloom filter (paper §4.3.2, after JETTY).
 *
 * The line address is broken into P bit-fields; each field indexes a
 * separate table of counters. Insert increments the P counters, remove
 * decrements them, and a query is positive only when all P counters are
 * non-zero. Aliasing can produce false positives; with balanced
 * insert/remove calls there are never false negatives.
 *
 * Storage is split by access pattern, mirroring the "16-bit counter +
 * zero bit" entry of paper Table 4:
 *  - queries read a packed one-bit-per-entry zero bitmap (each field's
 *    region starts on its own cache line, one contiguous allocation);
 *  - the 16-bit counters live in a cold array touched only by
 *    insert/remove, which maintain bit == (counter != 0) per entry.
 *
 * Counters saturate stickily at 0xFFFF: a saturated entry is never
 * decremented again (its true count is unknowable), so its zero bit
 * stays set forever — conservative, preserving the no-false-negative
 * property. Underflowing removes assert in Debug and clamp in Release.
 *
 * Paper configurations:
 *  - "y" filter: fields of 10, 4 and 7 bits (2.5 KB)
 *  - "n" filter: fields of 9, 9 and 6 bits (2.3 KB)
 */

#ifndef FLEXSNOOP_PREDICTOR_BLOOM_FILTER_HH
#define FLEXSNOOP_PREDICTOR_BLOOM_FILTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "net/probe_signature.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class CountingBloomFilter
{
  public:
    /** Most fields a filter supports (= signature capacity). */
    static constexpr unsigned kMaxFields = ProbeSignature::kMaxFields;
    /** Sticky saturation ceiling of one 16-bit counter. */
    static constexpr std::uint16_t kCounterMax = 0xFFFF;

    /**
     * @param field_bits widths of the consecutive index fields, applied
     *                   to the line index starting at bit 0
     */
    explicit CountingBloomFilter(std::vector<unsigned> field_bits);

    /** Number of fields / tables. */
    std::size_t numFields() const { return _numFields; }

    /** Add one line to the tracked multiset. */
    void insert(Addr line);

    /**
     * Remove one line previously inserted. Counters must never
     * underflow; the caller guarantees insert/remove balance.
     */
    void remove(Addr line);

    /** True when the line *may* be present (all counters non-zero). */
    bool
    mayContain(Addr line) const
    {
        std::uint32_t sig[kMaxFields];
        fillSignature(line, sig);
        return mayContain(sig);
    }

    /**
     * Precompute the line's global bitmap-entry indices (one per
     * field). @p out must hold kMaxFields slots. @return the field
     * count, for ProbeSignature bookkeeping. All filters built with the
     * same field widths share geometry, so a signature filled here is
     * valid against any of them.
     */
    unsigned
    fillSignature(Addr line, std::uint32_t *out) const
    {
        const std::uint64_t idx = lineIndex(line);
        for (unsigned f = 0; f < _numFields; ++f) {
            const FieldGeom &g = _geom[f];
            out[f] = g.entryBase +
                     static_cast<std::uint32_t>((idx >> g.shift) & g.mask);
        }
        return _numFields;
    }

    /**
     * Query with precomputed indices: pure indexed loads into the
     * packed zero bitmap — the per-hop hot path. Never touches the
     * counters. Branchless on purpose: ANDing the field bits costs at
     * most two extra L1 loads, while an early-exit loop costs a
     * data-dependent mispredict on nearly every probe.
     */
    bool
    mayContain(const std::uint32_t *sig) const
    {
        std::uint64_t hit = 1;
        for (unsigned f = 0; f < _numFields; ++f) {
            const std::uint32_t e = sig[f];
            hit &= _bitmap[e >> 6] >> (e & 63);
        }
        return hit & 1;
    }

    /** True when @p sig is exactly fillSignature(line) (Debug checks). */
    bool
    signatureMatches(Addr line, const std::uint32_t *sig) const
    {
        std::uint32_t fresh[kMaxFields];
        fillSignature(line, fresh);
        for (unsigned f = 0; f < _numFields; ++f) {
            if (fresh[f] != sig[f])
                return false;
        }
        return true;
    }

    /** Number of elements currently inserted. */
    std::uint64_t population() const { return _population; }

    /** Storage in bits: 16-bit counter + zero bit per entry (Table 4). */
    std::uint64_t storageBits() const;

    /** Reset all counters. */
    void clear();

    /**
     * Full consistency audit: every entry's zero bit equals
     * (counter != 0). The per-mutation Debug asserts check only the
     * touched entries; tests call this after randomized storms.
     */
    bool crossCheckConsistent() const;

    /** Raw counter value of entry @p idx of field @p field (tests). */
    std::uint16_t
    counterValue(std::size_t field, std::size_t idx) const
    {
        return _counters[_geom[field].counterBase + idx];
    }

  private:
    struct FieldGeom
    {
        unsigned shift = 0;       ///< first line-index bit of this field
        unsigned bits = 0;
        std::uint32_t mask = 0;   ///< (1 << bits) - 1
        std::uint32_t entryBase = 0;   ///< bit offset into _bitmap
        std::uint32_t counterBase = 0; ///< offset into _counters
    };

    bool
    bitAt(std::uint32_t entry) const
    {
        return (_bitmap[entry >> 6] >> (entry & 63)) & 1;
    }

    void setBit(std::uint32_t entry)
    {
        _bitmap[entry >> 6] |= std::uint64_t{1} << (entry & 63);
    }

    void clearBit(std::uint32_t entry)
    {
        _bitmap[entry >> 6] &= ~(std::uint64_t{1} << (entry & 63));
    }

    std::array<FieldGeom, kMaxFields> _geom{};
    unsigned _numFields = 0;

    /** Hot: packed zero bits, one contiguous allocation, every field's
     *  region aligned to a 64-byte cache line (512 bits). */
    std::vector<std::uint64_t> _bitmap;
    /** Cold: 16-bit counters, touched only by insert/remove. */
    std::vector<std::uint16_t> _counters;
    std::uint64_t _population = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_BLOOM_FILTER_HH
