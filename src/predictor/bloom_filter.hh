/**
 * @file
 * Counting Bloom filter (paper §4.3.2, after JETTY).
 *
 * The line address is broken into P bit-fields; each field indexes a
 * separate table of counters. Insert increments the P counters, remove
 * decrements them, and a query is positive only when all P counters are
 * non-zero. Aliasing can produce false positives; with balanced
 * insert/remove calls there are never false negatives.
 *
 * Paper configurations:
 *  - "y" filter: fields of 10, 4 and 7 bits (2.5 KB)
 *  - "n" filter: fields of 9, 9 and 6 bits (2.3 KB)
 */

#ifndef FLEXSNOOP_PREDICTOR_BLOOM_FILTER_HH
#define FLEXSNOOP_PREDICTOR_BLOOM_FILTER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace flexsnoop
{

class CountingBloomFilter
{
  public:
    /**
     * @param field_bits widths of the consecutive index fields, applied
     *                   to the line index starting at bit 0
     */
    explicit CountingBloomFilter(std::vector<unsigned> field_bits);

    /** Number of fields / tables. */
    std::size_t numFields() const { return _fields.size(); }

    /** Add one line to the tracked multiset. */
    void insert(Addr line);

    /**
     * Remove one line previously inserted. Counters must never
     * underflow; the caller guarantees insert/remove balance.
     */
    void remove(Addr line);

    /** True when the line *may* be present (all counters non-zero). */
    bool mayContain(Addr line) const;

    /** Number of elements currently inserted. */
    std::uint64_t population() const { return _population; }

    /** Storage in bits: 16-bit counter + zero bit per entry (Table 4). */
    std::uint64_t storageBits() const;

    /** Reset all counters. */
    void clear();

  private:
    struct Field
    {
        unsigned shift; ///< first line-index bit of this field
        unsigned bits;
        std::vector<std::uint32_t> counters;
    };

    std::size_t indexOf(const Field &f, Addr line) const;

    std::vector<Field> _fields;
    std::uint64_t _population = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_BLOOM_FILTER_HH
