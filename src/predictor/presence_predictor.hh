/**
 * @file
 * Presence predictor for write-snoop filtering (the extension paper
 * §2.2/§5.3 sketches: "writes ... would need a predictor of line
 * presence, rather than one of line in supplier state").
 *
 * A counting Bloom filter tracks a superset of *all* lines cached
 * anywhere in the CMP. A write invalidation arriving at the gateway
 * consults it: a negative answer proves no copy exists, so the
 * invalidation snoop can be skipped (Forward). Like the Superset
 * supplier predictor, it must never produce false negatives, or a
 * stale copy would survive a write.
 */

#ifndef FLEXSNOOP_PREDICTOR_PRESENCE_PREDICTOR_HH
#define FLEXSNOOP_PREDICTOR_PRESENCE_PREDICTOR_HH

#include <cassert>
#include <vector>

#include "net/probe_signature.hh"
#include "predictor/bloom_filter.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class PresencePredictor
{
  public:
    /**
     * @param field_bits Bloom filter field widths; presence sets are an
     *        order of magnitude larger than supplier sets, so the
     *        default uses wider fields than the supplier "y" filter
     */
    explicit PresencePredictor(const std::string &name,
                               std::vector<unsigned> field_bits = {12, 8,
                                                                   10},
                               Cycle latency = 2);

    /** True when the CMP *may* hold a copy of @p line. */
    bool mayBePresent(Addr line);

    /** mayBePresent() answered from the ring message's hash-once
     *  signature when it carries matching filter geometry; falls back
     *  to hashing the address otherwise. Same answer either way. */
    bool mayBePresent(Addr line, const ProbeSignature &sig);

    /** mayBePresent() without counting the lookup; used by the express
     *  probe (the replay performs the real, counted lookup). */
    bool
    wouldBePresent(Addr line) const
    {
        return _filter.mayContain(lineAddr(line));
    }

    /** wouldBePresent() with the signature fast path. */
    bool
    wouldBePresent(Addr line, const ProbeSignature &sig) const
    {
        if (!sigUsable(line, sig))
            return wouldBePresent(line);
        return _filter.mayContain(sig.presence);
    }

    /** Fill @p out with this filter's indices for @p line; returns the
     *  field count (ProbeSignature bookkeeping). */
    unsigned
    fillSignature(Addr line, std::uint32_t *out) const
    {
        return _filter.fillSignature(lineAddr(line), out);
    }

    /** The CMP gained its first copy of @p line. */
    void
    linePresent(Addr line)
    {
        _trains.inc();
        _filter.insert(lineAddr(line));
    }

    /** The CMP lost its last copy of @p line. */
    void
    lineAbsent(Addr line)
    {
        _removals.inc();
        _filter.remove(lineAddr(line));
    }

    Cycle accessLatency() const { return _latency; }
    std::uint64_t storageBits() const { return _filter.storageBits(); }
    std::uint64_t population() const { return _filter.population(); }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    /** True when @p sig carries usable presence-filter indices. */
    bool
    sigUsable(Addr line, const ProbeSignature &sig) const
    {
        if (sig.presenceFields != _filter.numFields())
            return false;
        assert(_filter.signatureMatches(lineAddr(line), sig.presence));
        (void)line;
        return true;
    }

    CountingBloomFilter _filter;
    Cycle _latency;
    StatGroup _stats;
    // Cached handles: consulted on every write snoop at every gateway.
    Counter &_lookupsStat = _stats.counter("lookups");
    Counter &_filteredStat = _stats.counter("filtered");
    Counter &_trains = _stats.counter("trains");
    Counter &_removals = _stats.counter("removals");
    Counter &_probeSignature = _stats.counter("probe_signature");
    Counter &_probeHashed = _stats.counter("probe_hashed");
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_PRESENCE_PREDICTOR_HH
