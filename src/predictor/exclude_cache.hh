/**
 * @file
 * Exclude cache (paper §4.3.2, after JETTY).
 *
 * A set-associative cache of line addresses *known not to be* in supplier
 * states in the CMP. It patches the Bloom filter's aliasing: after a
 * false positive is detected (the snoop found nothing), the address is
 * inserted; a later query hitting here is declared negative without
 * consulting the filter outcome. Any line that (re-)enters the supplier
 * set is removed immediately, preserving the no-false-negative property.
 */

#ifndef FLEXSNOOP_PREDICTOR_EXCLUDE_CACHE_HH
#define FLEXSNOOP_PREDICTOR_EXCLUDE_CACHE_HH

#include "mem/set_assoc_array.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class ExcludeCache
{
  public:
    /**
     * @param entries   capacity (512 or 2k in the paper)
     * @param ways      associativity (paper: 8)
     * @param entry_bits bits per entry for storage reporting
     */
    ExcludeCache(std::size_t entries, std::size_t ways,
                 unsigned entry_bits)
        : _array(entries, ways), _entryBits(entry_bits)
    {
    }

    /** Record that @p line is known absent from the supplier set. */
    void insert(Addr line) { _array.insert(lineAddr(line)); }

    /** @p line became a supplier; it must no longer be excluded. */
    void remove(Addr line) { _array.erase(lineAddr(line)); }

    /** True when @p line is recorded as a known non-supplier. */
    bool
    contains(Addr line)
    {
        return _array.lookup(lineAddr(line), true) != nullptr;
    }

    /** contains() without the LRU touch; the express probe must not
     *  perturb replacement state. The answer is identical. */
    bool
    peek(Addr line) const
    {
        return _array.lookup(lineAddr(line)) != nullptr;
    }

    std::size_t occupancy() const { return _array.occupancy(); }

    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(_array.numEntries()) * _entryBits;
    }

  private:
    struct Empty
    {
    };

    SetAssocArray<Empty> _array;
    unsigned _entryBits;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_EXCLUDE_CACHE_HH
