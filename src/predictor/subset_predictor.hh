/**
 * @file
 * Subset Supplier Predictor (paper §4.3.1).
 *
 * A set-associative cache of addresses known to be in supplier states in
 * the CMP. Capacity conflicts silently drop addresses, so the content is
 * a strict subset of the true supplier set: no false positives, possible
 * false negatives.
 */

#ifndef FLEXSNOOP_PREDICTOR_SUBSET_PREDICTOR_HH
#define FLEXSNOOP_PREDICTOR_SUBSET_PREDICTOR_HH

#include "mem/set_assoc_array.hh"
#include "predictor/supplier_predictor.hh"

namespace flexsnoop
{

class SubsetPredictor : public SupplierPredictor
{
  public:
    /**
     * @param entries   predictor cache entries (512 / 2k / 8k in paper)
     * @param ways      associativity (paper: 8)
     * @param entry_bits bits per entry for storage reporting (20/18/16)
     * @param latency   access latency in cycles
     */
    SubsetPredictor(const std::string &name, std::size_t entries,
                    std::size_t ways, unsigned entry_bits, Cycle latency);

    bool predict(Addr line) override;
    void supplierGained(Addr line) override;
    void supplierLost(Addr line) override;

    bool
    wouldPredict(Addr line) const override
    {
        return _array.lookup(lineAddr(line)) != nullptr;
    }

    Cycle accessLatency() const override { return _latency; }
    bool mayFalsePositive() const override { return false; }
    bool mayFalseNegative() const override { return true; }
    std::uint64_t storageBits() const override
    {
        return static_cast<std::uint64_t>(_array.numEntries()) * _entryBits;
    }

    std::size_t occupancy() const { return _array.occupancy(); }

    /** Test hook: is @p line currently tracked? */
    bool contains(Addr line) const
    {
        return _array.lookup(lineAddr(line)) != nullptr;
    }

  private:
    struct Empty
    {
    };

    SetAssocArray<Empty> _array;
    unsigned _entryBits;
    Cycle _latency;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_SUBSET_PREDICTOR_HH
