#include "predictor/superset_predictor.hh"

namespace flexsnoop
{

SupersetPredictor::SupersetPredictor(const std::string &name,
                                     std::vector<unsigned> field_bits,
                                     std::size_t exclude_entries,
                                     std::size_t exclude_ways,
                                     unsigned exclude_entry_bits,
                                     Cycle latency)
    : SupplierPredictor(name), _filter(std::move(field_bits)),
      _latency(latency)
{
    if (exclude_entries > 0) {
        _exclude = std::make_unique<ExcludeCache>(
            exclude_entries, exclude_ways, exclude_entry_bits);
    }
}

bool
SupersetPredictor::predict(Addr line)
{
    _lookups.inc();
    _probeHashed.inc();
    line = lineAddr(line);
    if (!_filter.mayContain(line))
        return false;
    if (_exclude && _exclude->contains(line)) {
        _excludeHits.inc();
        return false;
    }
    return true;
}

bool
SupersetPredictor::predict(Addr line, const ProbeSignature &sig)
{
    line = lineAddr(line);
    if (!sigUsable(line, sig)) {
        _lookups.inc();
        _probeHashed.inc();
        if (!_filter.mayContain(line))
            return false;
    } else {
        _lookups.inc();
        _probeSignature.inc();
        if (!_filter.mayContain(sig.supplier))
            return false;
    }
    if (_exclude && _exclude->contains(line)) {
        _excludeHits.inc();
        return false;
    }
    return true;
}

bool
SupersetPredictor::wouldPredict(Addr line) const
{
    line = lineAddr(line);
    if (!_filter.mayContain(line))
        return false;
    if (_exclude && _exclude->peek(line))
        return false;
    return true;
}

bool
SupersetPredictor::wouldPredict(Addr line, const ProbeSignature &sig) const
{
    line = lineAddr(line);
    const bool hit = sigUsable(line, sig) ? _filter.mayContain(sig.supplier)
                                          : _filter.mayContain(line);
    if (!hit)
        return false;
    if (_exclude && _exclude->peek(line))
        return false;
    return true;
}

unsigned
SupersetPredictor::fillSignature(Addr line, std::uint32_t *out) const
{
    return _filter.fillSignature(lineAddr(line), out);
}

void
SupersetPredictor::supplierGained(Addr line)
{
    _trains.inc();
    line = lineAddr(line);
    _filter.insert(line);
    // The line is a supplier now; it must not be excluded, or we would
    // create a false negative (a correctness violation for Superset).
    if (_exclude)
        _exclude->remove(line);
}

void
SupersetPredictor::supplierLost(Addr line)
{
    _removals.inc();
    _filter.remove(lineAddr(line));
}

void
SupersetPredictor::falsePositive(Addr line)
{
    if (_exclude) {
        _exclude->insert(lineAddr(line));
        _excludeInserts.inc();
    }
}

std::uint64_t
SupersetPredictor::storageBits() const
{
    std::uint64_t bits = _filter.storageBits();
    if (_exclude)
        bits += _exclude->storageBits();
    return bits;
}

} // namespace flexsnoop
