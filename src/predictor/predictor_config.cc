#include "predictor/predictor_config.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "predictor/exact_predictor.hh"
#include "predictor/subset_predictor.hh"
#include "predictor/superset_predictor.hh"

namespace flexsnoop
{

std::string_view
toString(PredictorKind k)
{
    switch (k) {
      case PredictorKind::None: return "none";
      case PredictorKind::Subset: return "subset";
      case PredictorKind::Superset: return "superset";
      case PredictorKind::Exact: return "exact";
      case PredictorKind::Perfect: return "perfect";
    }
    return "?";
}

namespace
{

/** Entry bits / latency by cache size, from Table 4. */
void
cacheGeometry(std::size_t entries, unsigned &entry_bits, Cycle &latency)
{
    if (entries <= 512) {
        entry_bits = 20;
        latency = 2;
    } else if (entries <= 2048) {
        entry_bits = 18;
        latency = 2;
    } else {
        entry_bits = 16;
        latency = 3;
    }
}

} // namespace

PredictorConfig
PredictorConfig::none()
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::None;
    cfg.id = "none";
    return cfg;
}

PredictorConfig
PredictorConfig::subset(std::size_t entries)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Subset;
    cfg.entries = entries;
    cfg.ways = 8;
    cacheGeometry(entries, cfg.entryBits, cfg.latency);
    cfg.id = "Sub" + (entries >= 1024 ? std::to_string(entries / 1024) + "k"
                                      : std::to_string(entries));
    return cfg;
}

PredictorConfig
PredictorConfig::exact(std::size_t entries)
{
    PredictorConfig cfg = subset(entries);
    cfg.kind = PredictorKind::Exact;
    cfg.id = "Exa" + (entries >= 1024 ? std::to_string(entries / 1024) + "k"
                                      : std::to_string(entries));
    return cfg;
}

PredictorConfig
PredictorConfig::superset(bool y, std::size_t exclude_entries)
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Superset;
    cfg.bloomFields = y ? std::vector<unsigned>{10, 4, 7}
                        : std::vector<unsigned>{9, 9, 6};
    cfg.entries = exclude_entries;
    cfg.ways = 8;
    if (exclude_entries > 0)
        cacheGeometry(exclude_entries, cfg.entryBits, cfg.latency);
    else
        cfg.latency = 2;
    cfg.id = std::string(y ? "y" : "n") +
             (exclude_entries >= 1024
                  ? std::to_string(exclude_entries / 1024) + "k"
                  : std::to_string(exclude_entries));
    return cfg;
}

PredictorConfig
PredictorConfig::perfect()
{
    PredictorConfig cfg;
    cfg.kind = PredictorKind::Perfect;
    cfg.id = "perfect";
    return cfg;
}

PredictorConfig
PredictorConfig::fromName(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "none")
        return none();
    if (n == "perfect")
        return perfect();
    if (n == "sub512")
        return subset(512);
    if (n == "sub2k")
        return subset(2048);
    if (n == "sub8k")
        return subset(8192);
    if (n == "exa512")
        return exact(512);
    if (n == "exa2k")
        return exact(2048);
    if (n == "exa8k")
        return exact(8192);
    if (n == "y512")
        return superset(true, 512);
    if (n == "y2k")
        return superset(true, 2048);
    if (n == "n2k")
        return superset(false, 2048);
    if (n == "y0")
        return superset(true, 0); // ablation: no Exclude cache
    if (n == "n0")
        return superset(false, 0);
    throw std::invalid_argument("unknown predictor config: " + name);
}

std::uint64_t
PredictorConfig::storageBits() const
{
    switch (kind) {
      case PredictorKind::None:
      case PredictorKind::Perfect:
        return 0;
      case PredictorKind::Subset:
      case PredictorKind::Exact:
        return static_cast<std::uint64_t>(entries) * entryBits;
      case PredictorKind::Superset: {
        std::uint64_t bits = static_cast<std::uint64_t>(entries) * entryBits;
        for (unsigned f : bloomFields)
            bits += (std::uint64_t{1} << f) * 17;
        return bits;
      }
    }
    return 0;
}

std::unique_ptr<SupplierPredictor>
makePredictor(const PredictorConfig &cfg, const std::string &name,
              PerfectPredictor::TruthFn truth)
{
    switch (cfg.kind) {
      case PredictorKind::None:
        return nullptr;
      case PredictorKind::Subset:
        return std::make_unique<SubsetPredictor>(
            name, cfg.entries, cfg.ways, cfg.entryBits, cfg.latency);
      case PredictorKind::Superset:
        return std::make_unique<SupersetPredictor>(
            name, cfg.bloomFields, cfg.entries, cfg.ways, cfg.entryBits,
            cfg.latency);
      case PredictorKind::Exact:
        return std::make_unique<ExactPredictor>(
            name, cfg.entries, cfg.ways, cfg.entryBits, cfg.latency);
      case PredictorKind::Perfect:
        assert(truth && "Perfect predictor requires a ground-truth query");
        return std::make_unique<PerfectPredictor>(name, std::move(truth));
    }
    return nullptr;
}

} // namespace flexsnoop
