#include "predictor/exact_predictor.hh"

#include <cassert>

namespace flexsnoop
{

ExactPredictor::ExactPredictor(const std::string &name, std::size_t entries,
                               std::size_t ways, unsigned entry_bits,
                               Cycle latency)
    : SupplierPredictor(name), _array(entries, ways),
      _entryBits(entry_bits), _latency(latency)
{
}

bool
ExactPredictor::predict(Addr line)
{
    _lookups.inc();
    return _array.lookup(lineAddr(line), false) != nullptr;
}

void
ExactPredictor::supplierGained(Addr line)
{
    _trains.inc();
    const auto result = _array.insert(lineAddr(line));
    if (result.evicted) {
        // The displaced line is still a supplier in the CMP; downgrade it
        // so the predictor's "exact" property holds.
        _stats.counter("forced_downgrades").inc();
        assert(_downgrade && "Exact predictor requires a downgrade hook");
        _downgrade(result.evictedAddr);
    }
}

void
ExactPredictor::supplierLost(Addr line)
{
    if (_array.erase(lineAddr(line)))
        _removals.inc();
}

} // namespace flexsnoop
