/**
 * @file
 * Supplier Predictor interface (paper §3.2, §4.3).
 *
 * One predictor sits in each CMP's ring gateway and answers: "does this
 * CMP hold the requested line in a supplier state (SG, E, D, T)?" The
 * predictor taxonomy drives the Flexible Snooping algorithms:
 *
 *  - Subset   (no false positives, false negatives possible)
 *  - Superset (false positives possible, no false negatives)
 *  - Exact    (neither, at the cost of forced downgrades)
 *  - Perfect  (oracle; consults actual cache state, zero cost)
 *
 * Training events are pushed by the CMP node whenever a line enters or
 * leaves the CMP's supplier set.
 */

#ifndef FLEXSNOOP_PREDICTOR_SUPPLIER_PREDICTOR_HH
#define FLEXSNOOP_PREDICTOR_SUPPLIER_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "net/probe_signature.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

/** Classification of one prediction against ground truth. */
enum class PredictionClass : std::uint8_t
{
    TruePositive,
    TrueNegative,
    FalsePositive,
    FalseNegative,
};

class SupplierPredictor
{
  public:
    explicit SupplierPredictor(std::string name)
        : _stats(std::move(name)),
          _truePositives(_stats.counter("true_positives")),
          _trueNegatives(_stats.counter("true_negatives")),
          _falsePositives(_stats.counter("false_positives")),
          _falseNegatives(_stats.counter("false_negatives"))
    {
    }

    virtual ~SupplierPredictor() = default;

    SupplierPredictor(const SupplierPredictor &) = delete;
    SupplierPredictor &operator=(const SupplierPredictor &) = delete;

    /** Predict whether the CMP can supply @p line. */
    virtual bool predict(Addr line) = 0;

    /**
     * Answer exactly what predict() would answer right now, with no
     * side effects: no counters, no LRU touches, no training. The
     * express path probes downstream predictors through this before
     * committing to a coalesced hop run; the later replay calls the
     * real predict() so all observable state matches the per-hop path.
     */
    virtual bool wouldPredict(Addr line) const = 0;

    /**
     * predict() with the ring message's hash-once signature. Structures
     * whose lookup is a bloom probe answer from the precomputed indices
     * (pure bitmap loads); everything else — and any signature whose
     * field count does not match this predictor's geometry — falls back
     * to hashing the address. Observable answers are identical either
     * way; the `probe_signature` / `probe_hashed` counters record which
     * path ran.
     */
    virtual bool
    predict(Addr line, const ProbeSignature &sig)
    {
        (void)sig;
        _probeHashed.inc();
        return predict(line);
    }

    /** wouldPredict() with the signature fast path (side-effect-free). */
    virtual bool
    wouldPredict(Addr line, const ProbeSignature &sig) const
    {
        (void)sig;
        return wouldPredict(line);
    }

    /**
     * Fill @p out (ProbeSignature::kMaxFields slots) with this
     * predictor's filter indices for @p line; returns the field count,
     * or 0 when the structure has no signature-capable lookup.
     */
    virtual unsigned
    fillSignature(Addr line, std::uint32_t *out) const
    {
        (void)line;
        (void)out;
        return 0;
    }

    /** A line entered the CMP's supplier set. */
    virtual void supplierGained(Addr line) = 0;

    /** A line left the CMP's supplier set. */
    virtual void supplierLost(Addr line) = 0;

    /**
     * A positive prediction was contradicted by the actual snoop; lets
     * Superset predictors train their Exclude cache.
     */
    virtual void falsePositive(Addr line) { (void)line; }

    /** Lookup latency in processor cycles (Table 4: 2-3). */
    virtual Cycle accessLatency() const = 0;

    /** True if the structure can mispredict positive (Superset). */
    virtual bool mayFalsePositive() const = 0;

    /** True if the structure can mispredict negative (Subset). */
    virtual bool mayFalseNegative() const = 0;

    /** Storage cost in bits (for reporting against paper Table 4). */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Classify and count a prediction against the ground truth; returns
     * the classification for the caller's convenience.
     */
    PredictionClass
    recordOutcome(bool predicted, bool actual)
    {
        PredictionClass cls;
        if (predicted && actual) {
            cls = PredictionClass::TruePositive;
            _truePositives.inc();
        } else if (!predicted && !actual) {
            cls = PredictionClass::TrueNegative;
            _trueNegatives.inc();
        } else if (predicted) {
            cls = PredictionClass::FalsePositive;
            _falsePositives.inc();
        } else {
            cls = PredictionClass::FalseNegative;
            _falseNegatives.inc();
        }
        return cls;
    }

    std::uint64_t
    predictions() const
    {
        return _truePositives.value() + _trueNegatives.value() +
               _falsePositives.value() + _falseNegatives.value();
    }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  protected:
    StatGroup _stats;
    // Shared hot-path handles for the concrete predictors.
    Counter &_lookups = _stats.counter("lookups");
    Counter &_trains = _stats.counter("trains");
    Counter &_removals = _stats.counter("removals");
    // Probe-path accounting: lookups answered from a carried signature
    // vs. those that re-hashed the address.
    Counter &_probeSignature = _stats.counter("probe_signature");
    Counter &_probeHashed = _stats.counter("probe_hashed");

  private:
    // Per-gateway-check handles; every ring snoop decision records one.
    Counter &_truePositives;
    Counter &_trueNegatives;
    Counter &_falsePositives;
    Counter &_falseNegatives;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_SUPPLIER_PREDICTOR_HH
