#include "predictor/bloom_filter.hh"

#include <cassert>

namespace flexsnoop
{

CountingBloomFilter::CountingBloomFilter(std::vector<unsigned> field_bits)
{
    assert(!field_bits.empty());
    unsigned shift = 0;
    _fields.reserve(field_bits.size());
    for (unsigned bits : field_bits) {
        assert(bits >= 1 && bits <= 20);
        Field f;
        f.shift = shift;
        f.bits = bits;
        f.counters.assign(std::size_t{1} << bits, 0);
        _fields.push_back(std::move(f));
        shift += bits;
    }
}

std::size_t
CountingBloomFilter::indexOf(const Field &f, Addr line) const
{
    const std::uint64_t idx = lineIndex(line);
    return static_cast<std::size_t>(
        (idx >> f.shift) & ((std::uint64_t{1} << f.bits) - 1));
}

void
CountingBloomFilter::insert(Addr line)
{
    for (auto &f : _fields)
        ++f.counters[indexOf(f, line)];
    ++_population;
}

void
CountingBloomFilter::remove(Addr line)
{
    for (auto &f : _fields) {
        auto &c = f.counters[indexOf(f, line)];
        assert(c > 0 && "bloom counter underflow: unbalanced remove");
        --c;
    }
    assert(_population > 0);
    --_population;
}

bool
CountingBloomFilter::mayContain(Addr line) const
{
    for (const auto &f : _fields) {
        if (f.counters[indexOf(f, line)] == 0)
            return false;
    }
    return true;
}

std::uint64_t
CountingBloomFilter::storageBits() const
{
    std::uint64_t entries = 0;
    for (const auto &f : _fields)
        entries += f.counters.size();
    return entries * 17; // 16-bit counter + zero bit (paper Table 4)
}

void
CountingBloomFilter::clear()
{
    for (auto &f : _fields)
        std::fill(f.counters.begin(), f.counters.end(), 0);
    _population = 0;
}

} // namespace flexsnoop
