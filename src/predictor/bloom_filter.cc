#include "predictor/bloom_filter.hh"

#include <algorithm>
#include <cassert>

namespace flexsnoop
{

CountingBloomFilter::CountingBloomFilter(std::vector<unsigned> field_bits)
{
    assert(!field_bits.empty());
    assert(field_bits.size() <= kMaxFields);
    // Each field's bitmap region starts on a 64-byte cache line so one
    // field's query touches exactly one line.
    constexpr std::uint32_t kLineBits = 512;
    unsigned shift = 0;
    std::uint32_t entry_base = 0;
    std::uint32_t counter_base = 0;
    for (unsigned bits : field_bits) {
        assert(bits >= 1 && bits <= 20);
        FieldGeom &g = _geom[_numFields++];
        g.shift = shift;
        g.bits = bits;
        g.mask = (std::uint32_t{1} << bits) - 1;
        g.entryBase = entry_base;
        g.counterBase = counter_base;
        const std::uint32_t entries = std::uint32_t{1} << bits;
        entry_base += (entries + kLineBits - 1) / kLineBits * kLineBits;
        counter_base += entries;
        shift += bits;
    }
    _bitmap.assign(entry_base / 64, 0);
    _counters.assign(counter_base, 0);
}

void
CountingBloomFilter::insert(Addr line)
{
    std::uint32_t sig[kMaxFields];
    fillSignature(line, sig);
    for (unsigned f = 0; f < _numFields; ++f) {
        const FieldGeom &g = _geom[f];
        std::uint16_t &c =
            _counters[g.counterBase + (sig[f] - g.entryBase)];
        // A saturated counter is pinned: its true count is unknowable,
        // so it stays at the ceiling (and its zero bit stays set).
        if (c != kCounterMax && ++c == 1)
            setBit(sig[f]);
        assert(bitAt(sig[f]) == (c != 0));
    }
    ++_population;
}

void
CountingBloomFilter::remove(Addr line)
{
    std::uint32_t sig[kMaxFields];
    fillSignature(line, sig);
    for (unsigned f = 0; f < _numFields; ++f) {
        const FieldGeom &g = _geom[f];
        std::uint16_t &c =
            _counters[g.counterBase + (sig[f] - g.entryBase)];
        assert(c > 0 && "bloom counter underflow: unbalanced remove");
        // Release builds clamp instead of wrapping to 0xFFFF (which
        // would silently poison the whole entry); saturated counters
        // stay pinned — decrementing one could create false negatives.
        if (c == 0 || c == kCounterMax)
            continue;
        if (--c == 0)
            clearBit(sig[f]);
        assert(bitAt(sig[f]) == (c != 0));
    }
    assert(_population > 0);
    if (_population)
        --_population;
}

std::uint64_t
CountingBloomFilter::storageBits() const
{
    // Real entries only — the cache-line padding between bitmap regions
    // is a host-side layout artifact, not modeled hardware.
    return std::uint64_t{_counters.size()} *
           17; // 16-bit counter + zero bit (paper Table 4)
}

void
CountingBloomFilter::clear()
{
    std::fill(_bitmap.begin(), _bitmap.end(), 0);
    std::fill(_counters.begin(), _counters.end(), 0);
    _population = 0;
}

bool
CountingBloomFilter::crossCheckConsistent() const
{
    for (unsigned f = 0; f < _numFields; ++f) {
        const FieldGeom &g = _geom[f];
        for (std::uint32_t i = 0; i <= g.mask; ++i) {
            if (bitAt(g.entryBase + i) != (_counters[g.counterBase + i] != 0))
                return false;
        }
    }
    return true;
}

} // namespace flexsnoop
