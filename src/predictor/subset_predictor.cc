#include "predictor/subset_predictor.hh"

namespace flexsnoop
{

SubsetPredictor::SubsetPredictor(const std::string &name,
                                 std::size_t entries, std::size_t ways,
                                 unsigned entry_bits, Cycle latency)
    : SupplierPredictor(name), _array(entries, ways),
      _entryBits(entry_bits), _latency(latency)
{
}

bool
SubsetPredictor::predict(Addr line)
{
    _lookups.inc();
    return _array.lookup(lineAddr(line), false) != nullptr;
}

void
SubsetPredictor::supplierGained(Addr line)
{
    _trains.inc();
    const auto result = _array.insert(lineAddr(line));
    if (result.evicted)
        _stats.counter("conflict_drops").inc(); // future false negatives
}

void
SubsetPredictor::supplierLost(Addr line)
{
    // Removing on loss is what guarantees "no false positives".
    if (_array.erase(lineAddr(line)))
        _removals.inc();
}

} // namespace flexsnoop
