/**
 * @file
 * Superset Supplier Predictor (paper §4.3.2): counting Bloom filter plus
 * an optional Exclude cache.
 *
 * The tracked set is a superset of the true supplier set, so negative
 * answers are guaranteed correct (no false negatives) and a node may
 * safely skip the snoop (the Forward primitive). Aliasing produces false
 * positives; the Exclude cache learns them.
 */

#ifndef FLEXSNOOP_PREDICTOR_SUPERSET_PREDICTOR_HH
#define FLEXSNOOP_PREDICTOR_SUPERSET_PREDICTOR_HH

#include <cassert>
#include <memory>
#include <vector>

#include "predictor/bloom_filter.hh"
#include "predictor/exclude_cache.hh"
#include "predictor/supplier_predictor.hh"

namespace flexsnoop
{

class SupersetPredictor : public SupplierPredictor
{
  public:
    /**
     * @param field_bits     Bloom filter field widths (e.g. {10,4,7})
     * @param exclude_entries Exclude cache capacity; 0 disables it
     * @param exclude_ways   Exclude cache associativity
     * @param exclude_entry_bits bits per Exclude entry for reporting
     * @param latency        lookup latency (paper: 2 cycles)
     */
    SupersetPredictor(const std::string &name,
                      std::vector<unsigned> field_bits,
                      std::size_t exclude_entries, std::size_t exclude_ways,
                      unsigned exclude_entry_bits, Cycle latency);

    bool predict(Addr line) override;
    bool predict(Addr line, const ProbeSignature &sig) override;
    void supplierGained(Addr line) override;
    void supplierLost(Addr line) override;
    void falsePositive(Addr line) override;
    bool wouldPredict(Addr line) const override;
    bool wouldPredict(Addr line, const ProbeSignature &sig) const override;
    unsigned fillSignature(Addr line, std::uint32_t *out) const override;

    Cycle accessLatency() const override { return _latency; }
    bool mayFalsePositive() const override { return true; }
    bool mayFalseNegative() const override { return false; }
    std::uint64_t storageBits() const override;

    const CountingBloomFilter &filter() const { return _filter; }
    bool hasExcludeCache() const { return _exclude != nullptr; }

  private:
    /** True when @p sig carries usable filter indices for @p line. */
    bool
    sigUsable(Addr line, const ProbeSignature &sig) const
    {
        if (sig.supplierFields != _filter.numFields())
            return false;
        assert(_filter.signatureMatches(line, sig.supplier));
        (void)line;
        return true;
    }

    CountingBloomFilter _filter;
    std::unique_ptr<ExcludeCache> _exclude;
    Cycle _latency;
    Counter &_excludeHits = _stats.counter("exclude_hits");
    Counter &_excludeInserts = _stats.counter("exclude_inserts");
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_SUPERSET_PREDICTOR_HH
