/**
 * @file
 * Exact Supplier Predictor (paper §4.3.3).
 *
 * Same structure as the Subset predictor, but conflict evictions are not
 * allowed to create false negatives: when a valid entry is displaced, the
 * predictor *forces a downgrade* of the corresponding line in the CMP
 * (SG/E -> SL silently; D/T -> written back to memory and kept in SL).
 * The tracked set therefore always equals the true supplier set.
 *
 * The downgrade is performed by the owning CMP through the callback; it
 * is the source of Exact's performance and energy pathologies in the
 * paper (extra writebacks, more reads served by memory).
 */

#ifndef FLEXSNOOP_PREDICTOR_EXACT_PREDICTOR_HH
#define FLEXSNOOP_PREDICTOR_EXACT_PREDICTOR_HH

#include <functional>

#include "mem/set_assoc_array.hh"
#include "predictor/supplier_predictor.hh"

namespace flexsnoop
{

class ExactPredictor : public SupplierPredictor
{
  public:
    /**
     * Downgrade request: the CMP must demote @p line from its supplier
     * state (and call supplierLost back, which is a no-op by then).
     */
    using DowngradeFn = std::function<void(Addr line)>;

    ExactPredictor(const std::string &name, std::size_t entries,
                   std::size_t ways, unsigned entry_bits, Cycle latency);

    void setDowngradeFn(DowngradeFn fn) { _downgrade = std::move(fn); }

    bool predict(Addr line) override;
    void supplierGained(Addr line) override;
    void supplierLost(Addr line) override;

    bool
    wouldPredict(Addr line) const override
    {
        return _array.lookup(lineAddr(line)) != nullptr;
    }

    Cycle accessLatency() const override { return _latency; }
    bool mayFalsePositive() const override { return false; }
    bool mayFalseNegative() const override { return false; }
    std::uint64_t storageBits() const override
    {
        return static_cast<std::uint64_t>(_array.numEntries()) * _entryBits;
    }

    std::size_t occupancy() const { return _array.occupancy(); }
    std::uint64_t downgrades() const
    {
        return _stats.counterValue("forced_downgrades");
    }

  private:
    struct Empty
    {
    };

    SetAssocArray<Empty> _array;
    unsigned _entryBits;
    Cycle _latency;
    DowngradeFn _downgrade;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_EXACT_PREDICTOR_HH
