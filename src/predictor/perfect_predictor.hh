/**
 * @file
 * Perfect Supplier Predictor: consults the CMP's actual cache state.
 *
 * Not implementable in hardware; used to model the Oracle algorithm and
 * the "perfect" bars of paper Figure 11.
 */

#ifndef FLEXSNOOP_PREDICTOR_PERFECT_PREDICTOR_HH
#define FLEXSNOOP_PREDICTOR_PERFECT_PREDICTOR_HH

#include <functional>

#include "predictor/supplier_predictor.hh"

namespace flexsnoop
{

class PerfectPredictor : public SupplierPredictor
{
  public:
    /** Ground-truth query: does the CMP hold @p line in a supplier state? */
    using TruthFn = std::function<bool(Addr line)>;

    PerfectPredictor(const std::string &name, TruthFn truth)
        : SupplierPredictor(name), _truth(std::move(truth))
    {
    }

    bool
    predict(Addr line) override
    {
        _lookups.inc();
        return _truth(lineAddr(line));
    }

    bool
    wouldPredict(Addr line) const override
    {
        return _truth(lineAddr(line));
    }

    void supplierGained(Addr line) override { (void)line; }
    void supplierLost(Addr line) override { (void)line; }

    Cycle accessLatency() const override { return 0; }
    bool mayFalsePositive() const override { return false; }
    bool mayFalseNegative() const override { return false; }
    std::uint64_t storageBits() const override { return 0; }

  private:
    TruthFn _truth;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_PERFECT_PREDICTOR_HH
