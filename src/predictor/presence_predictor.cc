#include "predictor/presence_predictor.hh"

namespace flexsnoop
{

PresencePredictor::PresencePredictor(const std::string &name,
                                     std::vector<unsigned> field_bits,
                                     Cycle latency)
    : _filter(std::move(field_bits)), _latency(latency), _stats(name)
{
}

bool
PresencePredictor::mayBePresent(Addr line)
{
    _lookupsStat.inc();
    _probeHashed.inc();
    const bool maybe = _filter.mayContain(lineAddr(line));
    if (!maybe)
        _filteredStat.inc();
    return maybe;
}

bool
PresencePredictor::mayBePresent(Addr line, const ProbeSignature &sig)
{
    if (!sigUsable(line, sig))
        return mayBePresent(line);
    _lookupsStat.inc();
    _probeSignature.inc();
    const bool maybe = _filter.mayContain(sig.presence);
    if (!maybe)
        _filteredStat.inc();
    return maybe;
}

} // namespace flexsnoop
