/**
 * @file
 * Named Supplier Predictor configurations from paper Table 4 / §5.2 and a
 * factory that instantiates them.
 *
 * Paper names: Sub512, Sub2k, Sub8k; SupCy512/SupCy2k/SupCn2k and
 * SupAy512/SupAy2k/SupAn2k (same structures, different algorithm);
 * Exa512, Exa2k, Exa8k. Since the Conservative and Aggressive Superset
 * algorithms share predictors, the configs here are named by structure:
 * "y512", "y2k", "n2k".
 */

#ifndef FLEXSNOOP_PREDICTOR_PREDICTOR_CONFIG_HH
#define FLEXSNOOP_PREDICTOR_PREDICTOR_CONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "predictor/perfect_predictor.hh"
#include "predictor/supplier_predictor.hh"
#include "sim/types.hh"

namespace flexsnoop
{

enum class PredictorKind
{
    None,    ///< algorithm needs no predictor (Lazy, Eager)
    Subset,  ///< set-associative cache of supplier addresses
    Superset,///< counting Bloom filter + Exclude cache
    Exact,   ///< Subset structure + forced downgrades
    Perfect, ///< consults actual state (Oracle / Fig. 11 "perfect")
};

std::string_view toString(PredictorKind k);

/** Full description of one predictor instance. */
struct PredictorConfig
{
    PredictorKind kind = PredictorKind::None;
    std::string id;            ///< paper-style short name, e.g. "Sub2k"

    // Subset / Exact cache (also the Exclude cache for Superset).
    std::size_t entries = 2048;
    std::size_t ways = 8;
    unsigned entryBits = 18;
    Cycle latency = 2;

    // Superset only.
    std::vector<unsigned> bloomFields; ///< e.g. {10, 4, 7} for "y"

    /** Table 4 presets. */
    static PredictorConfig none();
    static PredictorConfig subset(std::size_t entries);   ///< 512/2k/8k
    static PredictorConfig exact(std::size_t entries);    ///< 512/2k/8k
    /**
     * @param y true selects the "y" filter (10,4,7), false the "n"
     *          filter (9,9,6)
     * @param exclude_entries 512 or 2048; 0 disables the Exclude cache
     */
    static PredictorConfig superset(bool y, std::size_t exclude_entries);
    static PredictorConfig perfect();

    /**
     * Parse a paper-style name: "none", "perfect", "sub512", "sub2k",
     * "sub8k", "y512", "y2k", "n2k", "exa512", "exa2k", "exa8k".
     * Throws std::invalid_argument on unknown names.
     */
    static PredictorConfig fromName(const std::string &name);

    /** Reported structure size in bits. */
    std::uint64_t storageBits() const;
};

/**
 * Instantiate a predictor.
 *
 * @param cfg    configuration preset
 * @param name   stat-group name for this instance
 * @param truth  ground-truth query, required for PredictorKind::Perfect
 * @return nullptr for PredictorKind::None
 */
std::unique_ptr<SupplierPredictor>
makePredictor(const PredictorConfig &cfg, const std::string &name,
              PerfectPredictor::TruthFn truth = nullptr);

} // namespace flexsnoop

#endif // FLEXSNOOP_PREDICTOR_PREDICTOR_CONFIG_HH
