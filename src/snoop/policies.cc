#include "snoop/snoop_policy.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "snoop/adaptive_switcher.hh"

namespace flexsnoop
{

std::string_view
toString(Algorithm a)
{
    switch (a) {
      case Algorithm::Lazy: return "Lazy";
      case Algorithm::Eager: return "Eager";
      case Algorithm::Oracle: return "Oracle";
      case Algorithm::Subset: return "Subset";
      case Algorithm::SupersetCon: return "SupersetCon";
      case Algorithm::SupersetAgg: return "SupersetAgg";
      case Algorithm::Exact: return "Exact";
      case Algorithm::AdaptiveSuperset: return "AdaptiveSuperset";
    }
    return "?";
}

const std::vector<Algorithm> &
paperAlgorithms()
{
    static const std::vector<Algorithm> algorithms = {
        Algorithm::Lazy,        Algorithm::Eager,
        Algorithm::Oracle,      Algorithm::Subset,
        Algorithm::SupersetCon, Algorithm::SupersetAgg,
        Algorithm::Exact,
    };
    return algorithms;
}

Algorithm
algorithmFromName(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "lazy")
        return Algorithm::Lazy;
    if (n == "eager")
        return Algorithm::Eager;
    if (n == "oracle")
        return Algorithm::Oracle;
    if (n == "subset")
        return Algorithm::Subset;
    if (n == "supersetcon" || n == "superset_con" || n == "supcon")
        return Algorithm::SupersetCon;
    if (n == "supersetagg" || n == "superset_agg" || n == "supagg")
        return Algorithm::SupersetAgg;
    if (n == "exact")
        return Algorithm::Exact;
    if (n == "adaptive" || n == "adaptivesuperset")
        return Algorithm::AdaptiveSuperset;
    throw std::invalid_argument(
        "unknown algorithm: " + name +
        " (valid algorithms: lazy, eager, oracle, subset, supersetcon, "
        "supersetagg, exact, adaptive)");
}

namespace
{

/** Lazy: snoop everywhere, forward after; single combined message. */
class LazyPolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::Lazy; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::None;
    }
    Primitive onPrediction(bool) const override
    {
        return Primitive::SnoopThenForward;
    }
    bool decouplesWrites() const override { return false; }
};

/** Eager: forward first everywhere; request + trailing reply. */
class EagerPolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::Eager; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::None;
    }
    Primitive onPrediction(bool) const override
    {
        return Primitive::ForwardThenSnoop;
    }
    bool decouplesWrites() const override { return true; }
};

/** Oracle: perfect prediction; snoop only the supplier. */
class OraclePolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::Oracle; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::Perfect;
    }
    Primitive
    onPrediction(bool positive) const override
    {
        return positive ? Primitive::SnoopThenForward : Primitive::Forward;
    }
    bool decouplesWrites() const override { return true; }
};

/** Subset (Table 3 row 1). */
class SubsetPolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::Subset; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::Subset;
    }
    Primitive
    onPrediction(bool positive) const override
    {
        return positive ? Primitive::SnoopThenForward
                        : Primitive::ForwardThenSnoop;
    }
    bool decouplesWrites() const override { return true; }
};

/** Superset Con (Table 3 row 2). */
class SupersetConPolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::SupersetCon; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::Superset;
    }
    Primitive
    onPrediction(bool positive) const override
    {
        return positive ? Primitive::SnoopThenForward : Primitive::Forward;
    }
    bool decouplesWrites() const override { return false; }
};

/** Superset Agg (Table 3 row 3). */
class SupersetAggPolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::SupersetAgg; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::Superset;
    }
    Primitive
    onPrediction(bool positive) const override
    {
        return positive ? Primitive::ForwardThenSnoop : Primitive::Forward;
    }
    bool decouplesWrites() const override { return true; }
};

/** Exact (Table 3 row 4). */
class ExactPolicy : public SnoopPolicy
{
  public:
    Algorithm algorithm() const override { return Algorithm::Exact; }
    PredictorKind predictorKind() const override
    {
        return PredictorKind::Exact;
    }
    Primitive
    onPrediction(bool positive) const override
    {
        return positive ? Primitive::SnoopThenForward : Primitive::Forward;
    }
    bool decouplesWrites() const override { return false; }
};

} // namespace

std::unique_ptr<SnoopPolicy>
makePolicy(Algorithm a)
{
    switch (a) {
      case Algorithm::Lazy:
        return std::make_unique<LazyPolicy>();
      case Algorithm::Eager:
        return std::make_unique<EagerPolicy>();
      case Algorithm::Oracle:
        return std::make_unique<OraclePolicy>();
      case Algorithm::Subset:
        return std::make_unique<SubsetPolicy>();
      case Algorithm::SupersetCon:
        return std::make_unique<SupersetConPolicy>();
      case Algorithm::SupersetAgg:
        return std::make_unique<SupersetAggPolicy>();
      case Algorithm::Exact:
        return std::make_unique<ExactPolicy>();
      case Algorithm::AdaptiveSuperset:
        return std::make_unique<AdaptiveSupersetPolicy>();
    }
    throw std::invalid_argument("unknown algorithm enum value");
}

PredictorConfig
defaultPredictorFor(Algorithm a)
{
    switch (a) {
      case Algorithm::Lazy:
      case Algorithm::Eager:
        return PredictorConfig::none();
      case Algorithm::Oracle:
        return PredictorConfig::perfect();
      case Algorithm::Subset:
        return PredictorConfig::subset(2048); // Sub2k
      case Algorithm::SupersetCon:
      case Algorithm::SupersetAgg:
      case Algorithm::AdaptiveSuperset:
        // The paper's main comparison uses its best-performing Bloom
        // bit-field layout ("y" on the authors' address streams); on
        // this repository's synthetic streams the "n" layout (9,9,6)
        // is the one that reaches the paper's 20-40% false-positive
        // band, so it is the default here (see EXPERIMENTS.md).
        return PredictorConfig::superset(false, 2048); // n2k
      case Algorithm::Exact:
        return PredictorConfig::exact(2048); // Exa2k
    }
    return PredictorConfig::none();
}

} // namespace flexsnoop
