/**
 * @file
 * Dynamic Superset Con <-> Agg switching (paper §6.1.5 extension).
 *
 * The paper observes that Superset Con and Superset Agg share the same
 * Supplier Predictor and differ only in the action taken on a positive
 * prediction, and "envisions an adaptive system where the action is
 * chosen dynamically: typically Agg, but Con when the system needs to
 * save energy". This module implements that system: an
 * AdaptiveSupersetPolicy whose positive-prediction primitive is selected
 * by an EnergyBudgetController with hysteresis.
 */

#ifndef FLEXSNOOP_SNOOP_ADAPTIVE_SWITCHER_HH
#define FLEXSNOOP_SNOOP_ADAPTIVE_SWITCHER_HH

#include <cstdint>

#include "snoop/snoop_policy.hh"

namespace flexsnoop
{

/**
 * Superset policy with a runtime-selectable positive-prediction action.
 */
class AdaptiveSupersetPolicy : public SnoopPolicy
{
  public:
    enum class Mode
    {
        Aggressive,   ///< positive -> ForwardThenSnoop (performance)
        Conservative, ///< positive -> SnoopThenForward (energy)
    };

    explicit AdaptiveSupersetPolicy(Mode initial = Mode::Aggressive)
        : _mode(initial)
    {
    }

    Mode mode() const { return _mode; }
    void setMode(Mode m) { _mode = m; }

    Algorithm algorithm() const override
    {
        return Algorithm::AdaptiveSuperset;
    }

    PredictorKind predictorKind() const override
    {
        return PredictorKind::Superset;
    }

    Primitive
    onPrediction(bool positive) const override
    {
        if (!positive)
            return Primitive::Forward;
        return _mode == Mode::Aggressive ? Primitive::ForwardThenSnoop
                                         : Primitive::SnoopThenForward;
    }

    /**
     * Write decoupling follows the current mode: decoupled (parallel
     * invalidation) while aggressive, combined while conservative.
     */
    bool decouplesWrites() const override
    {
        return _mode == Mode::Aggressive;
    }

  private:
    Mode _mode;
};

/**
 * Hysteretic controller that picks the mode from the observed snoop
 * energy per read request.
 *
 * The caller feeds it (energy, requests) deltas each epoch; when the
 * per-request energy exceeds @p highWatermark the policy is switched to
 * Conservative, and back to Aggressive when it falls below
 * @p lowWatermark.
 */
class EnergyBudgetController
{
  public:
    /**
     * @param policy         policy instance to steer (not owned)
     * @param high_watermark nJ/request above which to save energy
     * @param low_watermark  nJ/request below which to favor speed
     */
    EnergyBudgetController(AdaptiveSupersetPolicy &policy,
                           double high_watermark, double low_watermark)
        : _policy(policy), _high(high_watermark), _low(low_watermark)
    {
    }

    /**
     * Feed one epoch of measurements.
     * @param energy_nj snoop energy consumed during the epoch
     * @param requests  read snoop requests completed during the epoch
     * @return the mode in force for the next epoch
     */
    AdaptiveSupersetPolicy::Mode
    sampleEpoch(double energy_nj, std::uint64_t requests)
    {
        if (requests > 0) {
            const double per_request = energy_nj / requests;
            if (per_request > _high)
                _policy.setMode(AdaptiveSupersetPolicy::Mode::Conservative);
            else if (per_request < _low)
                _policy.setMode(AdaptiveSupersetPolicy::Mode::Aggressive);
            ++_epochs;
            if (_policy.mode() ==
                AdaptiveSupersetPolicy::Mode::Conservative)
                ++_conservativeEpochs;
        }
        return _policy.mode();
    }

    std::uint64_t epochs() const { return _epochs; }
    std::uint64_t conservativeEpochs() const { return _conservativeEpochs; }

  private:
    AdaptiveSupersetPolicy &_policy;
    double _high;
    double _low;
    std::uint64_t _epochs = 0;
    std::uint64_t _conservativeEpochs = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SNOOP_ADAPTIVE_SWITCHER_HH
