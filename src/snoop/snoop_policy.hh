/**
 * @file
 * Snooping algorithm policies (paper Tables 1 and 3).
 *
 * A policy maps a Supplier Predictor outcome to a primitive operation at
 * each intermediate ring node. The seven algorithms of the paper:
 *
 * | Algorithm    | Predictor | Positive         | Negative          |
 * |--------------|-----------|------------------|-------------------|
 * | Lazy         | none      | SnoopThenForward (always)            |
 * | Eager        | none      | ForwardThenSnoop (always)            |
 * | Oracle       | perfect   | SnoopThenForward | Forward           |
 * | Subset       | subset    | SnoopThenForward | ForwardThenSnoop  |
 * | Superset Con | superset  | SnoopThenForward | Forward           |
 * | Superset Agg | superset  | ForwardThenSnoop | Forward           |
 * | Exact        | exact     | SnoopThenForward | Forward           |
 *
 * Write snoops cannot use supplier predictors (§5.3): algorithms that
 * decouple read messages (Eager, Subset, Superset Agg, Oracle) also
 * decouple writes for parallel invalidation; the others keep writes as a
 * single combined message.
 */

#ifndef FLEXSNOOP_SNOOP_SNOOP_POLICY_HH
#define FLEXSNOOP_SNOOP_SNOOP_POLICY_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "predictor/predictor_config.hh"
#include "snoop/primitives.hh"

namespace flexsnoop
{

enum class Algorithm
{
    Lazy,
    Eager,
    Oracle,
    Subset,
    SupersetCon,
    SupersetAgg,
    Exact,
    AdaptiveSuperset, ///< §6.1.5 extension: dynamic Con/Agg switching
};

std::string_view toString(Algorithm a);

/** All algorithms evaluated in the paper's figures, in figure order. */
const std::vector<Algorithm> &paperAlgorithms();

/** Parse "lazy", "eager", "oracle", "subset", "supersetcon", ... */
Algorithm algorithmFromName(const std::string &name);

class SnoopPolicy
{
  public:
    virtual ~SnoopPolicy() = default;

    virtual Algorithm algorithm() const = 0;

    /** Predictor family this policy consults (None for Lazy/Eager). */
    virtual PredictorKind predictorKind() const = 0;

    bool usesPredictor() const
    {
        return predictorKind() != PredictorKind::None;
    }

    /**
     * Primitive to perform at an intermediate node for a *read* snoop,
     * given the predictor outcome (ignored when usesPredictor() is
     * false).
     */
    virtual Primitive onPrediction(bool positive) const = 0;

    /** Whether write snoops split into request + trailing reply (§5.3). */
    virtual bool decouplesWrites() const = 0;

    std::string_view name() const { return toString(algorithm()); }
};

/**
 * Instantiate the policy for @p a.
 *
 * AdaptiveSuperset policies keep per-instance state; all others are
 * stateless and the factory may hand out shared immutable instances.
 */
std::unique_ptr<SnoopPolicy> makePolicy(Algorithm a);

/**
 * Default predictor configuration the paper pairs with each algorithm in
 * §6.1 (Sub2k / y2k / Exa2k / perfect / none).
 */
PredictorConfig defaultPredictorFor(Algorithm a);

} // namespace flexsnoop

#endif // FLEXSNOOP_SNOOP_SNOOP_POLICY_HH
