/**
 * @file
 * The three primitive operations of Flexible Snooping (paper Table 2).
 *
 * On each arriving snoop message, a CMP gateway performs exactly one of:
 *  - ForwardThenSnoop: forward a snoop request immediately, snoop in
 *    parallel, and emit/augment a trailing snoop reply.
 *  - SnoopThenForward: snoop first, then forward a single combined
 *    request/reply carrying the outcome.
 *  - Forward: pass the message through without snooping.
 */

#ifndef FLEXSNOOP_SNOOP_PRIMITIVES_HH
#define FLEXSNOOP_SNOOP_PRIMITIVES_HH

#include <cstdint>
#include <string_view>

namespace flexsnoop
{

enum class Primitive : std::uint8_t
{
    ForwardThenSnoop,
    SnoopThenForward,
    Forward,
};

constexpr std::string_view
toString(Primitive p)
{
    switch (p) {
      case Primitive::ForwardThenSnoop: return "ForwardThenSnoop";
      case Primitive::SnoopThenForward: return "SnoopThenForward";
      case Primitive::Forward: return "Forward";
    }
    return "?";
}

} // namespace flexsnoop

#endif // FLEXSNOOP_SNOOP_PRIMITIVES_HH
