#include "topology/topology.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace flexsnoop
{

std::string_view
toString(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Flat: return "flat";
      case TopologyKind::Hier: return "hier";
    }
    return "?";
}

TopologyKind
topologyKindFromName(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "flat")
        return TopologyKind::Flat;
    if (n == "hier" || n == "hierarchical")
        return TopologyKind::Hier;
    throw std::invalid_argument("unknown topology: " + name +
                                " (valid values: flat, hier)");
}

void
TopologyConfig::validate(std::size_t num_nodes) const
{
    if (localRings == 0)
        throw std::invalid_argument("topology: local_rings must be >= 1");
    if (!hierarchical())
        return;
    if (num_nodes % localRings != 0) {
        std::ostringstream os;
        os << "topology: local_rings (" << localRings
           << ") must divide the node count (" << num_nodes << ")";
        throw std::invalid_argument(os.str());
    }
    if (num_nodes / localRings < 2) {
        std::ostringstream os;
        os << "topology: each local ring needs >= 2 nodes ("
           << num_nodes << " nodes / " << localRings << " rings)";
        throw std::invalid_argument(os.str());
    }
    if (globalHopCycles == 0)
        throw std::invalid_argument(
            "topology: global_hop_cycles must be >= 1");
}

std::string
TopologyConfig::describe() const
{
    std::ostringstream os;
    os << toString(kind);
    if (hierarchical()) {
        os << ",local_rings=" << localRings
           << ",global_hop_cycles=" << globalHopCycles;
        if (!globalAlgorithm.empty())
            os << ",global_algorithm=" << globalAlgorithm;
    }
    return os.str();
}

Topology::Topology(std::size_t num_nodes, const TopologyConfig &config)
    : _config(config), _numNodes(num_nodes),
      _numBlocks(config.hierarchical() ? config.localRings : 1),
      _blockSize(num_nodes / (config.hierarchical() ? config.localRings
                                                    : 1)),
      _hier(config.hierarchical())
{
    config.validate(num_nodes);
}

} // namespace flexsnoop
