/**
 * @file
 * Two-level embedded-ring hierarchy (docs/TOPOLOGY.md).
 *
 * A hierarchical machine partitions the N ring nodes into `localRings`
 * contiguous blocks of equal size; each block is one local ring, and
 * the block heads ("bridge gateways") form the global ring joining
 * them. The flat cyclic node order is preserved: a snoop round still
 * walks nodes 0..N-1 downstream, but the link leaving the last member
 * of a block physically wraps to its own head and then crosses one
 * global-ring hop to the next head, and a bridge may forward a
 * transaction over the global ring directly (skipping its whole local
 * ring) when its aggregate predictors prove no member needs to see it.
 *
 * The degenerate configuration (Flat, or Hier with a single local
 * ring) builds no Topology at all: every component keeps a null
 * topology pointer and executes the identical flat-ring instruction
 * path, which is what makes the degenerate config bit-exact with the
 * flat machine.
 */

#ifndef FLEXSNOOP_TOPOLOGY_TOPOLOGY_HH
#define FLEXSNOOP_TOPOLOGY_TOPOLOGY_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace flexsnoop
{

enum class TopologyKind : std::uint8_t
{
    Flat, ///< one embedded ring over all nodes (the paper's machine)
    Hier, ///< local rings joined by a global ring via bridge gateways
};

std::string_view toString(TopologyKind k);

/**
 * Parse "flat" or "hier" (case-insensitive).
 * @throws std::invalid_argument listing the valid values
 */
TopologyKind topologyKindFromName(const std::string &name);

/** Configuration of the ring hierarchy. */
struct TopologyConfig
{
    TopologyKind kind = TopologyKind::Flat;

    /** Number of local rings (blocks). 1 = degenerate, same as Flat. */
    std::size_t localRings = 1;

    /** Latency of one global-ring hop (head to head). The default is
     *  larger than RingParams::linkLatency: global links span a whole
     *  local ring's worth of die/board distance. */
    Cycle globalHopCycles = 62;

    /**
     * Algorithm applied at the bridge (global) level; empty = the node
     * algorithm. The bridge projects the algorithm's action table onto
     * ring granularity: Forward = skip the local ring over the global
     * link, SnoopThenForward/ForwardThenSnoop = descend into it.
     */
    std::string globalAlgorithm;

    /** True when a bridge/global-ring layer actually exists. */
    bool
    hierarchical() const
    {
        return kind == TopologyKind::Hier && localRings > 1;
    }

    /**
     * Check this configuration against a machine of @p num_nodes nodes.
     * @throws std::invalid_argument naming the violated constraint
     */
    void validate(std::size_t num_nodes) const;

    /** One-line rendering for --list / config dumps. */
    std::string describe() const;
};

/**
 * Resolved geometry of one hierarchical machine. Pure arithmetic over
 * the flat node numbering; shared by the ring network (per-level hop
 * latencies/occupancy) and the coherence controller (bridge gateway
 * decisions).
 */
class Topology
{
  public:
    /** @throws std::invalid_argument via TopologyConfig::validate */
    Topology(std::size_t num_nodes, const TopologyConfig &config);

    const TopologyConfig &config() const { return _config; }
    std::size_t numNodes() const { return _numNodes; }
    bool hierarchical() const { return _hier; }
    std::size_t numBlocks() const { return _numBlocks; }
    std::size_t blockSize() const { return _blockSize; }

    /** Local ring (block) containing node @p n. */
    std::size_t blockOf(NodeId n) const { return n / _blockSize; }

    /** Bridge gateway node of block @p block. */
    NodeId
    headOf(std::size_t block) const
    {
        return static_cast<NodeId>(block * _blockSize);
    }

    /** True when @p n is a bridge gateway (block head). */
    bool isHead(NodeId n) const { return _hier && n % _blockSize == 0; }

    bool
    sameBlock(NodeId a, NodeId b) const
    {
        return blockOf(a) == blockOf(b);
    }

    /** Position of @p n within its block (0 = the head). */
    std::size_t posInBlock(NodeId n) const { return n % _blockSize; }

    /** Head of the block downstream of @p head's block. */
    NodeId
    nextHead(NodeId head) const
    {
        const std::size_t next =
            static_cast<std::size_t>(head) + _blockSize;
        return static_cast<NodeId>(next >= _numNodes ? 0 : next);
    }

    /**
     * True when the flat link leaving @p from crosses a block boundary
     * (its traversal wraps to the local head and takes one global hop).
     */
    bool
    linkCrossesBlock(NodeId from) const
    {
        return _hier && posInBlock(from) == _blockSize - 1;
    }

    Cycle globalHopCycles() const { return _config.globalHopCycles; }

  private:
    TopologyConfig _config;
    std::size_t _numNodes;
    std::size_t _numBlocks;
    std::size_t _blockSize;
    bool _hier;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_TOPOLOGY_TOPOLOGY_HH
