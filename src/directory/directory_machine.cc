#include "directory/directory_machine.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace flexsnoop
{

DirectoryMachine::DirectoryMachine(std::size_t num_cmps,
                                   std::size_t cores_per_cmp,
                                   std::size_t l2_entries,
                                   std::size_t l2_ways,
                                   const TorusParams &torus,
                                   const DirectoryParams &params)
    : _numCmps(num_cmps), _coresPerCmp(cores_per_cmp), _params(params),
      _torus(torus), _stats("directory")
{
    assert(torus.columns * torus.rows == num_cmps);
    // Size the scheduler's near wheel to the directory's hot
    // latencies: the DRAM access dominates, plus the widest request ->
    // home -> owner indirection on the torus. Covered once, not with
    // headroom — the wheel's cache footprint costs more than the rare
    // overflow detour (see DESIGN.md).
    _queue.configureWheel(static_cast<std::size_t>(
        params.dramAccess +
        torus.perHopLatency * (torus.columns / 2 + torus.rows / 2)));
    const std::size_t cores = num_cmps * cores_per_cmp;
    _l2s.reserve(cores);
    for (CoreId c = 0; c < cores; ++c) {
        _l2s.push_back(std::make_unique<L2Cache>(
            "dir.l2." + std::to_string(c), l2_entries, l2_ways));
    }
}

Cycle
DirectoryMachine::hop(NodeId from, NodeId to)
{
    _stats.counter("messages").inc();
    const auto hops = _torus.hops(from, to);
    _stats.counter("message_hops").inc(hops);
    return _torus.lineLatency(from, to);
}

double
DirectoryMachine::energyNj() const
{
    return _stats.counterValue("message_hops") * _params.messageHopNj +
           _stats.counterValue("probes") * _params.probeNj +
           _stats.counterValue("dir_accesses") * _params.directoryNj +
           _stats.counterValue("dram_accesses") * _params.dramLineNj;
}

void
DirectoryMachine::handleEviction(const L2Cache::Eviction &ev, CoreId core)
{
    if (!ev.valid)
        return;
    // Keep the directory exact: evictions notify the home immediately
    // (latency is off the critical path; the message is still charged).
    DirEntry &e = entry(ev.addr);
    hop(cmpOf(core), homeOf(ev.addr));
    _stats.counter("dir_accesses").inc();
    if (isDirtyState(ev.state)) {
        _stats.counter("dram_accesses").inc(); // writeback
        _stats.counter("writebacks").inc();
    }
    if (e.owner == core)
        e.owner = kInvalidCore;
    e.sharers.erase(core);
}

void
DirectoryMachine::fill(CoreId core, Addr line, LineState st)
{
    const auto ev = _l2s[core]->fill(lineAddr(line), st);
    handleEviction(ev, core);
}

void
DirectoryMachine::finish(Addr line, CoreId core, bool is_write,
                         Cycle delay)
{
    _queue.schedule(delay, [this, line, core, is_write]() {
        if (_onComplete)
            _onComplete(core, line, is_write);
        release(line);
    });
}

void
DirectoryMachine::release(Addr line)
{
    DirEntry &e = entry(line);
    assert(e.busy);
    e.busy = false;
    // Keep dispatching waiters until one takes the entry: a queued
    // request that resolves as a plain hit (the previous transaction
    // filled its cache) must not strand the requests behind it.
    while (!e.busy && !e.waiting.empty()) {
        auto next = std::move(e.waiting.front());
        e.waiting.pop_front();
        next();
    }
}

void
DirectoryMachine::coreRead(CoreId core, Addr addr, unsigned)
{
    const Addr line = lineAddr(addr);
    _stats.counter("reads").inc();

    if (isValidState(_l2s[core]->state(line))) {
        _l2s[core]->touch(line);
        _stats.counter("read_l2_hits").inc();
        _queue.schedule(_params.l2RoundTrip, [this, core, line]() {
            if (_onComplete)
                _onComplete(core, line, false);
        });
        return;
    }
    startRead(core, line);
}

void
DirectoryMachine::startRead(CoreId core, Addr line)
{
    DirEntry &e = entry(line);
    if (e.busy) {
        e.waiting.push_back([this, core, line]() {
            // Re-evaluate: the previous transaction may have filled us.
            coreRead(core, line);
        });
        _stats.counter("dir_queued").inc();
        return;
    }
    e.busy = true;
    _stats.counter("read_misses").inc();

    const NodeId req_cmp = cmpOf(core);
    const NodeId home = homeOf(line);
    // Requester -> home, directory lookup.
    Cycle lat = _params.l2RoundTrip + hop(req_cmp, home) +
                _params.directoryAccess;
    _stats.counter("dir_accesses").inc();

    if (e.owner != kInvalidCore) {
        // 3-hop intervention: home forwards to the owner, which
        // downgrades and supplies the requester directly.
        const CoreId owner = e.owner;
        const NodeId owner_cmp = cmpOf(owner);
        lat += hop(home, owner_cmp) + _params.snoopTime +
               hop(owner_cmp, req_cmp);
        _stats.counter("probes").inc();
        _stats.counter("interventions").inc();
        const LineState owner_state = _l2s[owner]->state(line);
        assert(isValidState(owner_state));
        if (isDirtyState(owner_state)) {
            // Dirty data also goes back to the home's memory (MESI
            // sharing leaves memory clean).
            hop(owner_cmp, home);
            _stats.counter("dram_accesses").inc();
        }
        _l2s[owner]->changeState(line, LineState::Shared);
        e.sharers.insert(owner);
        e.owner = kInvalidCore;
        e.sharers.insert(core);
        fill(core, line, LineState::Shared);
        finish(line, core, false, lat);
        return;
    }

    // Memory supplies; exclusive if nobody shares it.
    lat += _params.dramAccess + hop(home, req_cmp);
    _stats.counter("dram_accesses").inc();
    _stats.counter("memory_supplies").inc();
    if (e.sharers.empty()) {
        e.owner = core;
        fill(core, line, LineState::Exclusive);
    } else {
        e.sharers.insert(core);
        fill(core, line, LineState::Shared);
    }
    finish(line, core, false, lat);
}

void
DirectoryMachine::coreWrite(CoreId core, Addr addr, unsigned)
{
    const Addr line = lineAddr(addr);
    _stats.counter("writes").inc();

    const LineState st = _l2s[core]->state(line);
    if (isWritableState(st)) {
        if (st == LineState::Exclusive)
            _l2s[core]->changeState(line, LineState::Dirty);
        _l2s[core]->touch(line);
        _stats.counter("write_l2_hits").inc();
        _queue.schedule(_params.l2RoundTrip, [this, core, line]() {
            if (_onComplete)
                _onComplete(core, line, true);
        });
        return;
    }
    startWrite(core, line);
}

void
DirectoryMachine::startWrite(CoreId core, Addr line)
{
    DirEntry &e = entry(line);
    if (e.busy) {
        e.waiting.push_back([this, core, line]() {
            coreWrite(core, line);
        });
        _stats.counter("dir_queued").inc();
        return;
    }
    e.busy = true;
    _stats.counter("write_misses").inc();

    const NodeId req_cmp = cmpOf(core);
    const NodeId home = homeOf(line);
    Cycle lat = _params.l2RoundTrip + hop(req_cmp, home) +
                _params.directoryAccess;
    _stats.counter("dir_accesses").inc();

    const bool had_copy = isValidState(_l2s[core]->state(line));
    Cycle data_lat = 0; // beyond the directory access, in parallel with
                        // the invalidations

    if (e.owner != kInvalidCore && e.owner != core) {
        // Transfer ownership: the owner is invalidated and ships the
        // line straight to the writer.
        const CoreId owner = e.owner;
        const NodeId owner_cmp = cmpOf(owner);
        data_lat = hop(home, owner_cmp) + _params.snoopTime +
                   hop(owner_cmp, req_cmp);
        _stats.counter("probes").inc();
        _stats.counter("interventions").inc();
        _l2s[owner]->invalidate(line);
        e.owner = kInvalidCore;
    } else if (!had_copy) {
        // Memory provides the data.
        data_lat = _params.dramAccess + hop(home, req_cmp);
        _stats.counter("dram_accesses").inc();
        _stats.counter("memory_supplies").inc();
    }

    // Parallel invalidations of every sharer; the slowest ack gates the
    // grant (classic directory write).
    Cycle inv_lat = 0;
    for (CoreId sharer : e.sharers) {
        if (sharer == core)
            continue;
        const NodeId scmp = cmpOf(sharer);
        const Cycle rt = hop(home, scmp) + _params.snoopTime +
                         hop(scmp, home);
        _stats.counter("probes").inc();
        _stats.counter("invalidations").inc();
        inv_lat = std::max(inv_lat, rt);
        _l2s[sharer]->invalidate(line);
    }
    if (inv_lat > 0)
        inv_lat += hop(home, req_cmp); // grant after the last ack

    e.sharers.clear();
    e.owner = core;
    if (had_copy)
        _l2s[core]->changeState(line, LineState::Dirty);
    else
        fill(core, line, LineState::Dirty);

    finish(line, core, true, lat + std::max(data_lat, inv_lat));
}

std::vector<std::string>
DirectoryMachine::validate() const
{
    std::vector<std::string> problems;
    // Cache-side: one flat scan into the reused scratch vector (cleared
    // but never shrunk between calls), sorted so each line's holders are
    // a contiguous group — no per-validate map of vectors.
    _validateScratch.clear();
    for (CoreId c = 0; c < _l2s.size(); ++c) {
        _l2s[c]->forEachLine([&](Addr line, LineState st) {
            _validateScratch.push_back(Holder{line, c, st});
        });
    }
    std::sort(_validateScratch.begin(), _validateScratch.end(),
              [](const Holder &a, const Holder &b) {
                  return a.line != b.line ? a.line < b.line
                                          : a.core < b.core;
              });
    for (std::size_t begin = 0; begin < _validateScratch.size();) {
        std::size_t end = begin + 1;
        while (end < _validateScratch.size() &&
               _validateScratch[end].line == _validateScratch[begin].line)
            ++end;
        const Addr line = _validateScratch[begin].line;

        unsigned exclusive = 0;
        for (std::size_t i = begin; i < end; ++i)
            exclusive += isWritableState(_validateScratch[i].state);
        if (exclusive > 1 || (exclusive == 1 && end - begin > 1)) {
            std::ostringstream oss;
            oss << "line 0x" << std::hex << line << std::dec
                << " has an exclusive copy next to others";
            problems.push_back(oss.str());
        }
        auto dir_it = _directory.find(line);
        for (std::size_t i = begin; i < end; ++i) {
            const CoreId core = _validateScratch[i].core;
            const bool known =
                dir_it != _directory.end() &&
                (dir_it->second.owner == core ||
                 dir_it->second.sharers.count(core));
            if (!known) {
                std::ostringstream oss;
                oss << "line 0x" << std::hex << line << std::dec
                    << " cached by core " << core
                    << " but unknown to the directory";
                problems.push_back(oss.str());
            }
        }
        begin = end;
    }
    // Directory-side: the owner must really hold the line.
    for (const auto &[line, e] : _directory) {
        if (e.owner != kInvalidCore &&
            !isValidState(_l2s[e.owner]->state(line))) {
            std::ostringstream oss;
            oss << "line 0x" << std::hex << line << std::dec
                << " owner " << e.owner << " holds nothing";
            problems.push_back(oss.str());
        }
    }
    return problems;
}

} // namespace flexsnoop
