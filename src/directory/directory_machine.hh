/**
 * @file
 * Directory-protocol comparator (paper §2.1.2).
 *
 * The paper positions the embedded ring against the classic
 * alternatives; directories "are scalable, [but] add non-negligible
 * overhead to a mid-range machine — directories introduce a
 * time-consuming indirection in all transactions". This module
 * implements a flat, full-map, home-node MESI directory over the same
 * substrate (same L2 geometry, 2D-torus network, DRAM timing) so the
 * claim can be measured: every miss takes requester -> home
 * (directory) -> owner/memory -> requester, versus the ring's direct
 * snoop path.
 *
 * The directory serializes same-line transactions with a per-entry
 * busy bit and request queue (its correctness appeal: no squash/retry
 * machinery is needed).
 */

#ifndef FLEXSNOOP_DIRECTORY_DIRECTORY_MACHINE_HH
#define FLEXSNOOP_DIRECTORY_DIRECTORY_MACHINE_HH

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "coherence/request_port.hh"
#include "mem/l2_cache.hh"
#include "net/data_network.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace flexsnoop
{

/** Timing/energy parameters of the directory machine. */
struct DirectoryParams
{
    Cycle l2RoundTrip = 11;
    Cycle directoryAccess = 20; ///< lookup/update of one entry
    Cycle snoopTime = 55;       ///< probing a remote L2
    Cycle dramAccess = 300;     ///< array access at the home node

    double messageHopNj = 3.17; ///< per network link traversal
    double probeNj = 0.69;      ///< remote L2 probe
    double directoryNj = 0.2;   ///< directory entry access
    double dramLineNj = 24.0;
};

/**
 * A complete machine running the flat directory MESI protocol.
 *
 * Drives the same WorkloadRunner as the ring machine through the
 * RequestPort interface; see bench_comparison_directory.
 */
class DirectoryMachine : public RequestPort
{
  public:
    /**
     * @param num_cmps   home/directory nodes (torus positions)
     * @param cores_per_cmp cores per node (each with a private L2)
     */
    DirectoryMachine(std::size_t num_cmps, std::size_t cores_per_cmp,
                     std::size_t l2_entries, std::size_t l2_ways,
                     const TorusParams &torus,
                     const DirectoryParams &params = DirectoryParams{});

    void coreRead(CoreId core, Addr addr, unsigned retries = 0) override;
    void coreWrite(CoreId core, Addr addr, unsigned retries = 0) override;
    void
    setCompletionHandler(CompletionFn fn) override
    {
        _onComplete = std::move(fn);
    }

    EventQueue &queue() { return _queue; }
    std::size_t numCores() const { return _l2s.size(); }

    NodeId
    cmpOf(CoreId core) const
    {
        return static_cast<NodeId>(core / _coresPerCmp);
    }

    NodeId
    homeOf(Addr line) const
    {
        return static_cast<NodeId>(lineIndex(line) % _numCmps);
    }

    /** Total snoop-protocol energy (nJ), same categories as Fig. 9. */
    double energyNj() const;

    /** Lines the directory currently tracks (storage footprint). */
    std::size_t trackedLines() const { return _directory.size(); }

    /**
     * Directory storage in bits: per tracked line, an owner id plus a
     * full-map presence bit per core (the cost the paper holds against
     * directories on mid-range machines).
     */
    std::uint64_t
    storageBits() const
    {
        const std::uint64_t per_entry = 16 + numCores();
        return trackedLines() * per_entry;
    }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /**
     * Validate directory/cache consistency: at most one E/D owner per
     * line, the directory's owner actually holds the line, and no
     * cache holds a line the directory believes uncached.
     * @return human-readable violations (empty = consistent)
     */
    std::vector<std::string> validate() const;

    LineState
    coreState(CoreId core, Addr line) const
    {
        return _l2s[core]->state(lineAddr(line));
    }

  private:
    struct DirEntry
    {
        CoreId owner = kInvalidCore; ///< E or D holder
        std::set<CoreId> sharers;    ///< S holders
        bool busy = false;
        std::deque<std::function<void()>> waiting;
    };

    DirEntry &entry(Addr line) { return _directory[lineAddr(line)]; }

    /** Torus latency between two CMPs plus the message energy/stats. */
    Cycle hop(NodeId from, NodeId to);

    void startRead(CoreId core, Addr line);
    void startWrite(CoreId core, Addr line);
    void finish(Addr line, CoreId core, bool is_write, Cycle delay);
    void release(Addr line);

    /** Fill @p line into @p core's L2, handling the eviction. */
    void fill(CoreId core, Addr line, LineState st);
    void handleEviction(const L2Cache::Eviction &ev, CoreId core);

    /** One cached copy seen by validate()'s scan. */
    struct Holder
    {
        Addr line;
        CoreId core;
        LineState state;
    };

    std::size_t _numCmps;
    std::size_t _coresPerCmp;
    DirectoryParams _params;
    EventQueue _queue;
    DataNetwork _torus;
    std::vector<std::unique_ptr<L2Cache>> _l2s;
    std::unordered_map<Addr, DirEntry> _directory;
    /** validate() scratch, cleared (capacity kept) per call so periodic
     *  validation drains cause no steady-state allocation. */
    mutable std::vector<Holder> _validateScratch;
    CompletionFn _onComplete;
    StatGroup _stats;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_DIRECTORY_DIRECTORY_MACHINE_HH
