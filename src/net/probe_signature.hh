/**
 * @file
 * Hash-once probe signature carried by every ring snoop message.
 *
 * Each hop of a snoop used to re-derive the same quantities from the
 * line address: the bloom field indices of the supplier predictor, the
 * field indices of the presence predictor, the L2 set index, and the
 * home-node mapping. All nodes share filter and cache geometry, so one
 * decomposition computed at ring-issue time serves the whole traversal;
 * every downstream consumer is then a pure indexed load.
 *
 * The signature is computed by CoherenceController::computeSignature()
 * when the transaction's ring message is issued (including reissues
 * after a squash or watchdog, whose recomputation is a no-op since the
 * line is unchanged) and travels by value inside SnoopMessage.
 *
 * A default-constructed signature (home == kInvalidNode) marks a
 * message that never went through issueRingMessage — tests crafting
 * raw messages — and every consumer falls back to deriving the values
 * from the address.
 */

#ifndef FLEXSNOOP_NET_PROBE_SIGNATURE_HH
#define FLEXSNOOP_NET_PROBE_SIGNATURE_HH

#include <cstdint>

#include "sim/types.hh"

namespace flexsnoop
{

struct ProbeSignature
{
    /** Upper bound on counting-bloom field counts (paper configs use 3). */
    static constexpr unsigned kMaxFields = 4;

    /** Global bitmap-entry indices into the supplier predictor's filter. */
    std::uint32_t supplier[kMaxFields] = {};
    /** Global bitmap-entry indices into the presence predictor's filter. */
    std::uint32_t presence[kMaxFields] = {};
    /** L2 set index (uniform L2 geometry across all CMPs). */
    std::uint32_t l2Set = 0;
    /** Home CMP of the line; kInvalidNode = signature not computed. */
    NodeId home = kInvalidNode;
    /** Field count of the supplier part; 0 = no signature-capable
     *  supplier predictor at issue time. */
    std::uint8_t supplierFields = 0;
    /** Field count of the presence part; 0 = no presence predictor. */
    std::uint8_t presenceFields = 0;

    /** True when issueRingMessage filled this signature in. */
    bool valid() const { return home != kInvalidNode; }
};

} // namespace flexsnoop

#endif // FLEXSNOOP_NET_PROBE_SIGNATURE_HH
