#include "net/data_network.hh"

#include <algorithm>
#include <cassert>

namespace flexsnoop
{

DataNetwork::DataNetwork(const TorusParams &params)
    : _params(params), _stats("torus")
{
    assert(params.columns >= 1 && params.rows >= 1);
}

std::uint32_t
DataNetwork::hops(NodeId from, NodeId to) const
{
    assert(from < numNodes() && to < numNodes());
    const auto cols = static_cast<std::uint32_t>(_params.columns);
    const auto rows = static_cast<std::uint32_t>(_params.rows);
    const std::uint32_t fx = from % cols, fy = from / cols;
    const std::uint32_t tx = to % cols, ty = to / cols;
    const std::uint32_t dx = fx > tx ? fx - tx : tx - fx;
    const std::uint32_t dy = fy > ty ? fy - ty : ty - fy;
    // Wrap-around links: the torus distance is the smaller way round.
    const std::uint32_t wx = std::min(dx, cols - dx);
    const std::uint32_t wy = std::min(dy, rows - dy);
    return wx + wy;
}

Cycle
DataNetwork::lineLatency(NodeId from, NodeId to) const
{
    return _params.perHopLatency * hops(from, to) +
           _params.lineSerialization;
}

Cycle
DataNetwork::transfer(NodeId from, NodeId to)
{
    _stats.counter("transfers").inc();
    const Cycle lat = lineLatency(from, to);
    _stats.scalar("transfer_latency").sample(static_cast<double>(lat));
    return lat;
}

} // namespace flexsnoop
