/**
 * @file
 * 2D-torus data network latency model.
 *
 * Data lines (cache-to-cache transfers and memory replies) do not use the
 * snoop ring; they travel the underlying physical network with regular
 * routing (paper §2.2). We model the torus as a latency calculator:
 * per-hop latency times the minimal torus distance, plus the time to
 * serialize a 64 B line onto a 32 GB/s link. The torus is wide enough in
 * the studied configurations that queueing is negligible, so links are
 * not occupancy-tracked (unlike the snoop ring, which is the contended
 * resource under study).
 */

#ifndef FLEXSNOOP_NET_DATA_NETWORK_HH
#define FLEXSNOOP_NET_DATA_NETWORK_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

/** Shape and timing of the torus. */
struct TorusParams
{
    std::size_t columns = 4;  ///< 8 CMPs laid out 4x2
    std::size_t rows = 2;
    Cycle perHopLatency = 20; ///< router + link traversal
    Cycle lineSerialization = 12; ///< 64 B at 32 GB/s, 6 GHz
};

class DataNetwork
{
  public:
    explicit DataNetwork(const TorusParams &params);

    std::size_t numNodes() const { return _params.columns * _params.rows; }

    /** Minimal hop count between two nodes on the torus. */
    std::uint32_t hops(NodeId from, NodeId to) const;

    /** One-way latency of a 64 B line transfer from @p from to @p to. */
    Cycle lineLatency(NodeId from, NodeId to) const;

    /**
     * Account + compute the latency of a data transfer (the caller
     * schedules the delivery event).
     */
    Cycle transfer(NodeId from, NodeId to);

    std::uint64_t transfers() const
    {
        return _stats.counterValue("transfers");
    }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    TorusParams _params;
    StatGroup _stats;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_NET_DATA_NETWORK_HH
