/**
 * @file
 * Snoop message types carried on the embedded ring (paper §3.2).
 *
 * A coherence transaction's ring traffic is made of up to two concurrent
 * messages:
 *  - SnoopRequest: travels ahead, triggering snoops.
 *  - SnoopReply:   trails behind, accumulating snoop outcomes.
 *  - CombinedRR:   request and reply fused into one message (the only
 *                  message Lazy-class algorithms ever use; flexible
 *                  algorithms split and re-fuse it on the fly).
 */

#ifndef FLEXSNOOP_NET_MESSAGE_HH
#define FLEXSNOOP_NET_MESSAGE_HH

#include <cstdint>
#include <string_view>

#include "net/probe_signature.hh"
#include "sim/types.hh"

namespace flexsnoop
{

enum class MsgType : std::uint8_t
{
    SnoopRequest, ///< forward-moving probe trigger
    SnoopReply,   ///< trailing reply accumulating outcomes
    CombinedRR,   ///< fused request + reply
};

/** Coherence operation the message performs. */
enum class SnoopKind : std::uint8_t
{
    Read,  ///< read miss looking for a supplier
    Write, ///< write/upgrade invalidating all copies
};

constexpr std::string_view
toString(MsgType t)
{
    switch (t) {
      case MsgType::SnoopRequest: return "Req";
      case MsgType::SnoopReply: return "Rep";
      case MsgType::CombinedRR: return "R/R";
    }
    return "?";
}

/**
 * One message on a snoop ring.
 *
 * Value type: copied into the event queue on every hop.
 */
struct SnoopMessage
{
    MsgType type = MsgType::CombinedRR;
    SnoopKind kind = SnoopKind::Read;
    TransactionId txn = kInvalidTransaction;
    Addr line = kInvalidAddr;
    NodeId requester = kInvalidNode;

    /** Read: a supplier was found upstream; the data is on its way. */
    bool found = false;
    /** Node that supplied (valid when found). */
    NodeId supplier = kInvalidNode;
    /** Transaction lost a collision; requester must retry. */
    bool squashed = false;
    /**
     * For replies: number of ring nodes whose snoop outcome has been
     * accumulated so far (used to know when a reply is complete).
     */
    std::uint32_t acksCollected = 0;
    /**
     * Number of ring nodes whose processing of the *request* is folded
     * into this message — snooped, filtered, or consciously forwarded.
     * A full round ends with visits == numNodes - 1; anything less
     * means part of the ring never saw the request (a lost message).
     * Only consulted in unreliable-ring mode (docs/FAULTS.md): on a
     * loss-free ring every conclusion is trivially complete.
     */
    std::uint32_t visits = 0;

    /**
     * Hash-once probe signature: the line's predictor filter indices,
     * L2 set and home node, computed at ring-issue time so every hop
     * probes with pure indexed loads. Invalid (default) on messages
     * crafted outside issueRingMessage; consumers then fall back to
     * deriving the values from the address.
     */
    ProbeSignature sig;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_NET_MESSAGE_HH
