#include "net/ring.hh"

#include <cassert>
#include <memory>

#include "sim/fault_injector.hh"
#include "sim/log.hh"
#include "topology/topology.hh"
#include "trace/trace_sink.hh"

namespace flexsnoop
{

namespace
{

/** Hop-record flag bits (TraceEvent::Hop `b` field). Bit 8 marks a
 *  traversal that included a global-ring link (hier topology). */
std::uint16_t
hopFlags(const SnoopMessage &msg, bool global_leg)
{
    std::uint16_t f = 0;
    if (msg.found)
        f |= 1;
    if (msg.squashed)
        f |= 2;
    if (msg.kind == SnoopKind::Write)
        f |= 4;
    if (global_leg)
        f |= 8;
    return f;
}

} // namespace

Ring::Ring(EventQueue &queue, std::size_t num_nodes,
           const RingParams &params, const std::string &name)
    : _queue(queue), _numNodes(num_nodes), _params(params),
      _handlers(num_nodes), _linkFree(num_nodes, 0), _stats(name),
      _linkTraversals(_stats.counter("link_traversals")),
      _globalTraversals(_stats.counter("global_link_traversals")),
      _linkQueueing(_stats.scalar("link_queueing"))
{
    assert(num_nodes >= 2);
}

void
Ring::setHandler(NodeId n, Handler h)
{
    assert(n < _numNodes);
    _handlers[n] = std::move(h);
}

void
Ring::setTopology(const Topology *topo)
{
    if (topo && topo->hierarchical()) {
        assert(topo->numNodes() == _numNodes);
        _topo = topo;
        _globalFree.assign(topo->numBlocks(), 0);
    } else {
        _topo = nullptr;
        _globalFree.clear();
    }
}

void
Ring::finishSend(NodeId from, NodeId to, Cycle now, Cycle start,
                 Cycle latency, Cycle &link_free, bool global_leg,
                 const SnoopMessage &msg)
{
    Cycle arrive = start + latency;

    FS_LOG(Trace, now, _stats.name(),
           toString(msg.type) << " txn " << msg.txn << " line 0x"
                              << std::hex << msg.line << std::dec << " "
                              << from << "->" << to << " arr " << arrive);

    if (_faults) {
        switch (_faults->onLinkSend(global_leg)) {
          case FaultInjector::LinkAction::Drop:
            // The message occupied the link but never arrives; the
            // requester's watchdog recovers the transaction.
            FS_LOG(Debug, now, _stats.name(),
                   "FAULT drop txn " << msg.txn << " " << from << "->"
                                     << to);
            if (_trace)
                _trace->record(TraceEvent::FaultDrop, now, msg.txn,
                               msg.line, 0,
                               static_cast<std::uint16_t>(from),
                               static_cast<std::uint16_t>(msg.type));
            return;
          case FaultInjector::LinkAction::Duplicate: {
            // A second copy follows back-to-back: it occupies the link
            // again and arrives one serialization slot later.
            const Cycle start2 = link_free;
            link_free = start2 + _params.serialization;
            _linkTraversals.inc();
            if (global_leg)
                _globalTraversals.inc();
            FS_LOG(Debug, now, _stats.name(),
                   "FAULT dup txn " << msg.txn << " " << from << "->"
                                    << to);
            if (_trace) {
                _trace->record(TraceEvent::FaultDup, now, msg.txn,
                               msg.line, start2 + latency,
                               static_cast<std::uint16_t>(from),
                               static_cast<std::uint16_t>(msg.type));
                _trace->record(TraceEvent::Hop, start2, msg.txn,
                               msg.line, start2 + latency,
                               static_cast<std::uint16_t>(from),
                               static_cast<std::uint16_t>(msg.type),
                               hopFlags(msg, global_leg));
            }
            SnoopMessage *dup = _inFlight.acquire();
            *dup = msg;
            _queue.scheduleAt(start2 + latency, [this, to, dup]() {
                _handlers[to](*dup);
                _inFlight.release(dup);
            });
            break;
          }
          case FaultInjector::LinkAction::Delay:
            FS_LOG(Debug, now, _stats.name(),
                   "FAULT delay txn " << msg.txn << " " << from << "->"
                                      << to);
            if (_trace)
                _trace->record(TraceEvent::FaultDelay, now, msg.txn,
                               msg.line, _faults->delayCycles(),
                               static_cast<std::uint16_t>(from),
                               static_cast<std::uint16_t>(msg.type));
            arrive += _faults->delayCycles();
            break;
          case FaultInjector::LinkAction::None:
            break;
        }
    }

    if (_trace)
        _trace->record(TraceEvent::Hop, start, msg.txn, msg.line, arrive,
                       static_cast<std::uint16_t>(from),
                       static_cast<std::uint16_t>(msg.type),
                       hopFlags(msg, global_leg));

    SnoopMessage *slot = _inFlight.acquire();
    *slot = msg;
    _queue.scheduleAt(arrive, [this, to, slot]() {
        assert(_handlers[to] && "message arrived at node with no handler");
        // Deliver from the slot, then recycle it. A handler that sends
        // the message onward copies it into a fresh slot first.
        _handlers[to](*slot);
        _inFlight.release(slot);
    });
}

void
Ring::send(NodeId from, const SnoopMessage &msg)
{
    assert(from < _numNodes);
    const NodeId to = successor(from);
    const Cycle now = _queue.now();
    const Cycle start = std::max(now, _linkFree[from]);
    _linkFree[from] = start + _params.serialization;

    _linkTraversals.inc();
    if (start > now)
        _linkQueueing.sample(static_cast<double>(start - now));

    if (_topo && _topo->linkCrossesBlock(from)) {
        // The flat link leaving the last member of a block physically
        // wraps to its own head (one local link) and then crosses one
        // global-ring hop to the next head. The global leg has its own
        // occupancy: skip traffic and cross-block traffic of the same
        // block contend for the same global link.
        const std::size_t block = _topo->blockOf(from);
        const Cycle at_head = start + _params.linkLatency;
        const Cycle gstart = std::max(at_head, _globalFree[block]);
        _globalFree[block] = gstart + _params.serialization;
        _globalTraversals.inc();
        if (gstart > at_head)
            _linkQueueing.sample(static_cast<double>(gstart - at_head));
        finishSend(from, to, now, start,
                   gstart - start + _topo->globalHopCycles(),
                   _globalFree[block], /*global_leg=*/true, msg);
        return;
    }

    finishSend(from, to, now, start, _params.linkLatency, _linkFree[from],
               /*global_leg=*/false, msg);
}

void
Ring::sendSkip(NodeId head, const SnoopMessage &msg)
{
    assert(_topo && _topo->isHead(head));
    const NodeId to = _topo->nextHead(head);
    const std::size_t block = _topo->blockOf(head);
    const Cycle now = _queue.now();
    const Cycle start = std::max(now, _globalFree[block]);
    _globalFree[block] = start + _params.serialization;

    _linkTraversals.inc();
    _globalTraversals.inc();
    if (start > now)
        _linkQueueing.sample(static_cast<double>(start - now));

    finishSend(head, to, now, start, _topo->globalHopCycles(),
               _globalFree[block], /*global_leg=*/true, msg);
}

RingNetwork::RingNetwork(EventQueue &queue, std::size_t num_nodes,
                         std::size_t num_rings, const RingParams &params)
    : _numNodes(num_nodes)
{
    assert(num_rings >= 1);
    _rings.reserve(num_rings);
    for (std::size_t i = 0; i < num_rings; ++i) {
        _rings.push_back(std::make_unique<Ring>(
            queue, num_nodes, params, "ring" + std::to_string(i)));
    }
}

void
RingNetwork::setHandler(NodeId n, Ring::Handler h)
{
    for (auto &ring : _rings)
        ring->setHandler(n, h);
}

void
RingNetwork::setFaultInjector(FaultInjector *faults)
{
    for (auto &ring : _rings)
        ring->setFaultInjector(faults);
}

void
RingNetwork::setTraceSink(TraceSink *trace)
{
    for (auto &ring : _rings)
        ring->setTraceSink(trace);
}

void
RingNetwork::setTopology(const Topology *topo)
{
    for (auto &ring : _rings)
        ring->setTopology(topo);
}

std::uint64_t
RingNetwork::linkTraversals() const
{
    std::uint64_t total = 0;
    for (const auto &ring : _rings)
        total += ring->linkTraversals();
    return total;
}

std::uint64_t
RingNetwork::globalLinkTraversals() const
{
    std::uint64_t total = 0;
    for (const auto &ring : _rings)
        total += ring->globalLinkTraversals();
    return total;
}

} // namespace flexsnoop
