/**
 * @file
 * Embedded unidirectional ring(s) for snoop messages (paper §2.2).
 *
 * Each ring is a cycle of point-to-point links with fixed latency and a
 * serialization time per message; links model occupancy, so heavy snoop
 * traffic queues. Several rings may be embedded; addresses are
 * interleaved across them to balance load. Every CMP registers a handler
 * that is invoked when a message arrives at that node.
 */

#ifndef FLEXSNOOP_NET_RING_HH
#define FLEXSNOOP_NET_RING_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/message.hh"
#include "sim/event_queue.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class FaultInjector;
class Topology;
class TraceSink;

/** Timing configuration of one embedded ring. */
struct RingParams
{
    Cycle linkLatency = 39;       ///< CMP-to-CMP latency (Table 4)
    Cycle serialization = 8;      ///< link occupancy per message
                                  ///< (~11 B msg at 8 GB/s, 6 GHz)
};

/**
 * One unidirectional ring over @p numNodes CMPs.
 *
 * send() puts a message on the link leaving @p from; it arrives at
 * (from+1) % N after the link latency, later if the link is busy.
 */
class Ring
{
  public:
    using Handler = std::function<void(const SnoopMessage &)>;

    Ring(EventQueue &queue, std::size_t num_nodes, const RingParams &params,
         const std::string &name);

    std::size_t numNodes() const { return _numNodes; }

    /** Next node downstream of @p n. Compare-and-subtract instead of
     *  `%`: this runs once per hop of every message. */
    NodeId
    successor(NodeId n) const
    {
        const std::size_t s = static_cast<std::size_t>(n) + 1;
        return static_cast<NodeId>(s == _numNodes ? 0 : s);
    }

    /**
     * Ring distance from @p from to @p to travelling downstream
     * (0 when equal).
     */
    std::uint32_t
    distance(NodeId from, NodeId to) const
    {
        return static_cast<std::uint32_t>(
            to >= from ? to - from : to + _numNodes - from);
    }

    /** Register the arrival handler of node @p n. */
    void setHandler(NodeId n, Handler h);

    /**
     * Transmit @p msg on the link leaving node @p from; it is delivered
     * to the successor node. Accounts one link-message (energy/stats).
     *
     * With a fault injector installed, the traversal may be dropped
     * (link occupied, message never arrives), duplicated (a second
     * copy follows back-to-back), or delayed.
     */
    void send(NodeId from, const SnoopMessage &msg);

    /**
     * Hierarchical topology only: transmit @p msg over the global ring
     * from bridge @p head directly to the next block head, skipping the
     * local ring in between. One global-link traversal; the Hop trace
     * record carries the global-level flag bit.
     */
    void sendSkip(NodeId head, const SnoopMessage &msg);

    /**
     * Install (or remove, with nullptr) the hierarchy geometry. With a
     * hierarchical topology installed, the link leaving the last member
     * of each block wraps through its own head and crosses one
     * global-ring hop (separate latency and occupancy), and sendSkip()
     * becomes available at block heads. Unset by default: the flat
     * send path is untouched.
     */
    void setTopology(const Topology *topo);

    /**
     * Install (or remove, with nullptr) the fault injector consulted
     * on every link traversal. Unset by default: the hook is a single
     * null-pointer check on the send path.
     */
    void setFaultInjector(FaultInjector *faults) { _faults = faults; }

    /**
     * Install (or remove, with nullptr) the event trace sink recording
     * one Hop record per link traversal (docs/TRACING.md). Unset by
     * default: a single null-pointer check on the send path.
     */
    void setTraceSink(TraceSink *trace) { _trace = trace; }

    /** Total messages that traversed any link of this ring. */
    std::uint64_t linkTraversals() const
    {
        return _linkTraversals.value();
    }

    /** Messages that traversed a global-ring link (hier topology). */
    std::uint64_t globalLinkTraversals() const
    {
        return _globalTraversals.value();
    }

    const RingParams &params() const { return _params; }

    /** Cycle at which the link leaving node @p n is next idle. */
    Cycle linkFreeAt(NodeId n) const { return _linkFree[n]; }

    /** Links still occupied at @p now — the instantaneous ring
     *  occupancy the telemetry sampler records (docs/TELEMETRY.md). */
    std::size_t
    busyLinks(Cycle now) const
    {
        std::size_t busy = 0;
        for (const Cycle free_at : _linkFree)
            busy += free_at > now ? 1 : 0;
        return busy;
    }

    /**
     * Account one link traversal that the express path performed
     * without a scheduled per-hop event: bumps the traversal counter
     * and occupies the link exactly as send() starting at @p start
     * would have. The caller guarantees @p start >= linkFreeAt(from)
     * (an express plan is refused otherwise), so no queueing delay is
     * sampled.
     */
    void
    recordVirtualTraversal(NodeId from, Cycle start)
    {
        _linkFree[from] = start + _params.serialization;
        _linkTraversals.inc();
    }

    /** Invoke node @p to's arrival handler directly (express path
     *  retirement: the coalesced arrival event delivers here). */
    void
    deliver(NodeId to, const SnoopMessage &msg)
    {
        assert(_handlers[to] && "message arrived at node with no handler");
        _handlers[to](msg);
    }

    /** Park a copy of @p msg in the in-flight pool; the returned slot
     *  pointer is stable and must be handed to deliverParked(). Lets
     *  callers scheduling their own arrival events (the express path's
     *  cancel fall-back) capture 8 bytes instead of the message. */
    SnoopMessage *
    park(const SnoopMessage &msg)
    {
        SnoopMessage *slot = _inFlight.acquire();
        *slot = msg;
        return slot;
    }

    /** Deliver a parked message to node @p to and recycle the slot. */
    void
    deliverParked(NodeId to, SnoopMessage *slot)
    {
        deliver(to, *slot);
        _inFlight.release(slot);
    }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    /**
     * Common tail of send()/sendSkip(): fault decision, Hop trace
     * record, and the arrival event. @p link_free is the occupancy slot
     * a duplicated copy re-books (the local link for member hops, the
     * block's global link for cross-block and skip hops).
     */
    void finishSend(NodeId from, NodeId to, Cycle now, Cycle start,
                    Cycle latency, Cycle &link_free, bool global_leg,
                    const SnoopMessage &msg);

    EventQueue &_queue;
    std::size_t _numNodes;
    RingParams _params;
    std::vector<Handler> _handlers;
    std::vector<Cycle> _linkFree; ///< next cycle each outgoing link is idle
    /** Per-block global-link occupancy (hier topology; empty in flat). */
    std::vector<Cycle> _globalFree;
    const Topology *_topo = nullptr; ///< hierarchy geometry; null = flat
    /** In-flight messages parked between send and arrival. Arrival
     *  events capture a stable slot pointer instead of the message by
     *  value: with the ProbeSignature aboard, a by-value capture would
     *  overflow EventFn's inline buffer and heap-allocate every hop. */
    SlotPool<SnoopMessage> _inFlight;
    FaultInjector *_faults = nullptr; ///< unreliable-ring mode hook
    TraceSink *_trace = nullptr;      ///< per-hop tracing hook
    StatGroup _stats;
    Counter &_linkTraversals;   ///< cached handle (send() hot path)
    Counter &_globalTraversals; ///< global-ring traversals (hier only)
    ScalarStat &_linkQueueing;  ///< cached handle (send() hot path)
};

/**
 * The set of rings embedded in the machine's network.
 *
 * Snoop requests are mapped to a ring by line address (paper: "snoop
 * requests may be mapped to different rings according to their memory
 * address").
 */
class RingNetwork
{
  public:
    RingNetwork(EventQueue &queue, std::size_t num_nodes,
                std::size_t num_rings, const RingParams &params);

    std::size_t numRings() const { return _rings.size(); }
    std::size_t numNodes() const { return _numNodes; }

    /** Ring used by @p line. */
    std::size_t
    ringIndex(Addr line) const
    {
        return static_cast<std::size_t>(lineIndex(line)) % _rings.size();
    }

    Ring &ring(std::size_t i) { return *_rings[i]; }
    Ring &ringFor(Addr line) { return *_rings[ringIndex(line)]; }

    /** Register node @p n's handler on every ring. */
    void setHandler(NodeId n, Ring::Handler h);

    /** Install the fault injector on every ring. */
    void setFaultInjector(FaultInjector *faults);

    /** Install the trace sink on every ring. */
    void setTraceSink(TraceSink *trace);

    /** Install the hierarchy geometry on every ring. */
    void setTopology(const Topology *topo);

    /** Send @p msg (routed by its line address) out of node @p from. */
    void
    send(NodeId from, const SnoopMessage &msg)
    {
        ringFor(msg.line).send(from, msg);
    }

    /** Global-ring skip (routed by line) out of bridge @p head. */
    void
    sendSkip(NodeId head, const SnoopMessage &msg)
    {
        ringFor(msg.line).sendSkip(head, msg);
    }

    /** Aggregate link traversals over all rings. */
    std::uint64_t linkTraversals() const;

    /** Aggregate global-ring traversals over all rings (hier only). */
    std::uint64_t globalLinkTraversals() const;

  private:
    std::size_t _numNodes;
    std::vector<std::unique_ptr<Ring>> _rings;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_NET_RING_HH
