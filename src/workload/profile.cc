#include "workload/profile.hh"

#include <stdexcept>

namespace flexsnoop
{

namespace
{

WorkloadProfile
splashBase()
{
    WorkloadProfile p;
    p.numCores = 32;
    p.coresPerCmp = 4;
    p.refsPerCore = 12000;
    p.warmupRefs = 4000;
    p.meanGap = 180.0;
    p.privateLines = 768;
    p.sharedLines = 6144;
    p.sharedFraction = 0.35;
    p.zipfTheta = 0.65;
    p.sharedZipfTheta = 0.65;
    p.privateWriteFraction = 0.25;
    p.readMostlyFraction = 0.5;
    p.producerConsumerFraction = 0.3;
    p.migratoryFraction = 0.2;
    return p;
}

} // namespace

std::vector<WorkloadProfile>
splash2Profiles()
{
    std::vector<WorkloadProfile> apps;

    // Per-application character, loosely following the SPLASH-2
    // characterization study (Woo et al., ISCA'95): communication-to-
    // computation ratio, working-set size, and store behaviour.
    auto add = [&](const std::string &name, double shared_frac,
                   std::size_t shared_lines, std::size_t private_lines,
                   double rm, double pc, double mig, double gap,
                   std::uint64_t seed) {
        WorkloadProfile p = splashBase();
        p.name = name;
        p.sharedFraction = shared_frac;
        p.sharedLines = shared_lines;
        p.privateLines = private_lines;
        p.readMostlyFraction = rm;
        p.producerConsumerFraction = pc;
        p.migratoryFraction = mig;
        p.meanGap = gap;
        p.seed = seed;
        apps.push_back(p);
    };

    //  name        shr    shrLn  privLn rm    pc    mig   gap  seed
    add("barnes",    0.40,  4096,  1024, 0.50, 0.20, 0.30, 150, 11);
    add("cholesky",  0.35,  4096,  1280, 0.45, 0.35, 0.20, 175, 12);
    add("fft",       0.30,  6144,  1536, 0.30, 0.55, 0.15, 185, 13);
    add("fmm",       0.38,  4096,  1152, 0.50, 0.25, 0.25, 155, 14);
    add("lu",        0.32,  5120,  1280, 0.35, 0.50, 0.15, 180, 15);
    add("ocean",     0.42,  6144,  1280, 0.30, 0.50, 0.20, 165, 16);
    add("radiosity", 0.45,  3072,   896, 0.45, 0.20, 0.35, 140, 17);
    add("radix",     0.28,  6144,  1536, 0.25, 0.60, 0.15, 190, 18);
    add("raytrace",  0.48,  3072,  1024, 0.60, 0.15, 0.25, 150, 19);
    add("water-nsq", 0.36,  3072,  1024, 0.45, 0.25, 0.30, 165, 20);
    add("water-sp",  0.30,  2048,  1024, 0.50, 0.25, 0.25, 175, 21);
    return apps;
}

WorkloadProfile
specJbbProfile()
{
    WorkloadProfile p;
    p.name = "specjbb";
    p.numCores = 8;
    p.coresPerCmp = 1;
    p.refsPerCore = 16000;
    p.warmupRefs = 4000;
    p.meanGap = 170.0;
    // A warehouse's working set dwarfs the 8K-line L2: most misses are
    // capacity misses to memory, and threads share very little (paper:
    // Lazy snoops ~7 of 7 nodes because there is rarely a supplier).
    p.privateLines = 40000;
    p.sharedLines = 2048;
    p.sharedFraction = 0.04;
    p.zipfTheta = 0.3;
    p.privateWriteFraction = 0.30;
    p.readMostlyFraction = 0.70;
    p.producerConsumerFraction = 0.20;
    p.migratoryFraction = 0.10;
    p.seed = 101;
    return p;
}

WorkloadProfile
specWebProfile()
{
    WorkloadProfile p;
    p.name = "specweb";
    p.numCores = 8;
    p.coresPerCmp = 1;
    p.refsPerCore = 16000;
    p.warmupRefs = 4000;
    p.meanGap = 160.0;
    // Moderate sharing of cached content and connection state; working
    // set somewhat above L2 capacity.
    p.privateLines = 9000;
    p.sharedLines = 5120;
    p.sharedFraction = 0.40;
    p.zipfTheta = 0.7;
    p.privateWriteFraction = 0.22;
    p.readMostlyFraction = 0.65;
    p.producerConsumerFraction = 0.25;
    p.migratoryFraction = 0.10;
    p.seed = 202;
    return p;
}

WorkloadProfile
miniProfile()
{
    WorkloadProfile p = splashBase();
    p.name = "mini";
    p.numCores = 8;
    p.coresPerCmp = 1;
    p.refsPerCore = 1500;
    p.warmupRefs = 400;
    p.privateLines = 512;
    p.sharedLines = 1024;
    p.seed = 7;
    return p;
}

WorkloadProfile
profileByName(const std::string &name)
{
    if (name == "specjbb")
        return specJbbProfile();
    if (name == "specweb")
        return specWebProfile();
    if (name == "mini")
        return miniProfile();
    for (const auto &p : splash2Profiles()) {
        if (p.name == name)
            return p;
    }
    std::string valid = "specjbb, specweb, mini";
    for (const auto &p : splash2Profiles())
        valid += ", " + p.name;
    throw std::invalid_argument("unknown workload profile: " + name +
                                " (valid profiles: " + valid + ")");
}

} // namespace flexsnoop
