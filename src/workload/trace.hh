/**
 * @file
 * Memory reference traces that drive the cores.
 *
 * Each reference is an L2-level access (L1 misses; L1 hit traffic never
 * reaches the coherence fabric and is folded into the inter-reference
 * gaps). Traces are generated synthetically per workload profile.
 */

#ifndef FLEXSNOOP_WORKLOAD_TRACE_HH
#define FLEXSNOOP_WORKLOAD_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace flexsnoop
{

/** One L2 access of one core. */
struct MemRef
{
    Addr addr = 0;
    bool isWrite = false;
    /** Compute cycles separating this access from the previous issue. */
    std::uint32_t gap = 1;
};

using Trace = std::vector<MemRef>;

/** Per-core traces plus the warmup boundary. */
struct CoreTraces
{
    std::vector<Trace> traces;  ///< one per core
    std::size_t warmupRefs = 0; ///< per-core refs before the barrier

    std::size_t numCores() const { return traces.size(); }

    std::size_t
    totalRefs() const
    {
        std::size_t n = 0;
        for (const auto &t : traces)
            n += t.size();
        return n;
    }
};

} // namespace flexsnoop

#endif // FLEXSNOOP_WORKLOAD_TRACE_HH
