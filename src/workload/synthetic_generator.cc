#include "workload/synthetic_generator.hh"

#include <cassert>

namespace flexsnoop
{

namespace
{

/** Base of the private regions (keeps pools disjoint). */
constexpr Addr kPrivateBase = Addr{1} << 32;
/** Stride between per-core private regions, in lines. */
constexpr Addr kPrivateStride = Addr{1} << 20;
/** Base of the shared region. */
constexpr Addr kSharedBase = Addr{1} << 40;

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

SyntheticGenerator::SyntheticGenerator(const WorkloadProfile &profile)
    : _profile(profile)
{
    assert(profile.numCores >= 1);
    assert(profile.privateLines >= 1);
    assert(profile.sharedLines >= 1);
}

Addr
SyntheticGenerator::privateAddr(std::size_t core, std::size_t idx) const
{
    return (kPrivateBase + (core * kPrivateStride + idx) * kLineSizeBytes);
}

Addr
SyntheticGenerator::sharedAddr(std::size_t idx) const
{
    return kSharedBase + idx * kLineSizeBytes;
}

SharePattern
SyntheticGenerator::patternOf(std::size_t idx) const
{
    // Stable pseudo-random assignment by line index.
    const double u =
        static_cast<double>(mix(idx * 2654435761u + _profile.seed) >> 11) *
        0x1.0p-53;
    if (u < _profile.readMostlyFraction)
        return SharePattern::ReadMostly;
    if (u < _profile.readMostlyFraction +
                _profile.producerConsumerFraction)
        return SharePattern::ProducerConsumer;
    return SharePattern::Migratory;
}

std::size_t
SyntheticGenerator::producerOf(std::size_t idx) const
{
    return static_cast<std::size_t>(mix(idx ^ 0x9e3779b97f4a7c15ull)) %
           _profile.numCores;
}

Trace
SyntheticGenerator::generateCore(std::size_t core, Rng &rng,
                                 const ZipfSampler &priv_zipf,
                                 const ZipfSampler &shared_zipf) const
{
    const std::size_t total = _profile.warmupRefs + _profile.refsPerCore;
    Trace trace;
    trace.reserve(total + total / 8);

    while (trace.size() < total) {
        MemRef ref;
        ref.gap = static_cast<std::uint32_t>(
            rng.nextGeometric(_profile.meanGap));

        if (rng.chance(_profile.sharedFraction)) {
            const std::size_t idx = shared_zipf.sample(rng);
            ref.addr = sharedAddr(idx);
            switch (patternOf(idx)) {
              case SharePattern::ReadMostly:
                ref.isWrite = rng.chance(_profile.readMostlyWriteProb);
                break;
              case SharePattern::ProducerConsumer:
                // The designated producer updates; everyone else reads.
                ref.isWrite = producerOf(idx) == core && rng.chance(0.6);
                break;
              case SharePattern::Migratory: {
                // Read-modify-write: emit the read, then the write.
                ref.isWrite = false;
                trace.push_back(ref);
                MemRef wr = ref;
                wr.isWrite = true;
                wr.gap = 1 + static_cast<std::uint32_t>(rng.nextBelow(4));
                trace.push_back(wr);
                continue;
              }
            }
        } else {
            const std::size_t idx = priv_zipf.sample(rng);
            ref.addr = privateAddr(core, idx);
            ref.isWrite = rng.chance(_profile.privateWriteFraction);
        }
        trace.push_back(ref);
    }
    trace.resize(total);
    return trace;
}

CoreTraces
SyntheticGenerator::generate() const
{
    CoreTraces out;
    out.warmupRefs = _profile.warmupRefs;
    out.traces.reserve(_profile.numCores);

    const ZipfSampler priv_zipf(_profile.privateLines, _profile.zipfTheta);
    const ZipfSampler shared_zipf(_profile.sharedLines,
                                  _profile.sharedZipfTheta);

    for (std::size_t core = 0; core < _profile.numCores; ++core) {
        Rng rng(mix(_profile.seed * 0x100000001b3ull + core));
        out.traces.push_back(
            generateCore(core, rng, priv_zipf, shared_zipf));
    }
    return out;
}

} // namespace flexsnoop
