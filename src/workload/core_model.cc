#include "workload/core_model.hh"

#include <cassert>

#include "sim/log.hh"

namespace flexsnoop
{

TraceCore::TraceCore(CoreId id, Trace trace, std::size_t warmup_refs,
                     const CoreParams &params, EventQueue &queue,
                     RequestPort &port)
    : _id(id), _trace(std::move(trace)), _warmupRefs(warmup_refs),
      _params(params), _queue(queue), _port(port),
      _stats("core" + std::to_string(id)),
      _readsIssued(_stats.counter("reads_issued")),
      _writesIssued(_stats.counter("writes_issued")),
      _completions(_stats.counter("completions")),
      _windowStalls(_stats.counter("window_stalls"))
{
    assert(params.maxOutstanding >= 1);
}

void
TraceCore::start()
{
    _nextIssue = _queue.now();
    tryIssue();
}

void
TraceCore::releaseBarrier()
{
    assert(_atBarrier);
    _atBarrier = false;
    _barrierDone = true;
    _nextIssue = _queue.now();
    tryIssue();
}

void
TraceCore::tryIssue()
{
    // Barrier between warmup and measured phase: wait for everyone once
    // all warmup refs are complete (not merely issued).
    if (!_barrierDone && _warmupRefs > 0 && _idx >= _warmupRefs) {
        if (_outstanding > 0)
            return; // drain first; completions re-enter tryIssue
        if (!_atBarrier) {
            _atBarrier = true;
            if (_onBarrier)
                _onBarrier(_id);
        }
        return;
    }

    if (_idx >= _trace.size()) {
        if (_outstanding == 0 && !_finished) {
            _finished = true;
            if (_onDone)
                _onDone(_id);
        }
        return;
    }

    if (_outstanding >= _params.maxOutstanding) {
        _windowStalls.inc();
        return; // a completion will re-enter
    }

    const MemRef &ref = _trace[_idx];
    const Cycle when = std::max(_queue.now(), _nextIssue) + ref.gap;
    if (_issueScheduled)
        return;
    _issueScheduled = true;
    _queue.scheduleAt(when, [this]() {
        _issueScheduled = false;
        if (_atBarrier)
            return;
        if (_idx >= _trace.size())
            return;
        // Re-check the window: completions may not have caught up.
        if (_outstanding >= _params.maxOutstanding) {
            _windowStalls.inc();
            return;
        }
        const MemRef r = _trace[_idx];
        ++_idx;
        _nextIssue = _queue.now();
        issueRef(r);
        tryIssue();
    });
}

void
TraceCore::issueRef(const MemRef &ref)
{
    ++_outstanding;
    ++_inFlight[lineAddr(ref.addr)];
    (ref.isWrite ? _writesIssued : _readsIssued).inc();
    FS_LOG(Trace, _queue.now(), "core",
           "issue core " << _id << " line 0x" << std::hex
                         << lineAddr(ref.addr) << std::dec
                         << (ref.isWrite ? " W" : " R"));
    if (ref.isWrite)
        _port.coreWrite(_id, ref.addr);
    else
        _port.coreRead(_id, ref.addr);
}

void
TraceCore::onCompletion(Addr line)
{
    line = lineAddr(line);
    auto it = _inFlight.find(line);
    if (it == _inFlight.end()) {
        FS_LOG(Error, _queue.now(), "core",
               "core " << _id << " completion for unknown line 0x"
                       << std::hex << line << std::dec << " idx " << _idx
                       << " outstanding " << _outstanding);
    }
    assert(it != _inFlight.end() && "completion for unknown access");
    if (--it->second == 0)
        _inFlight.erase(it);
    assert(_outstanding > 0);
    --_outstanding;
    _completions.inc();
    tryIssue();
}

WorkloadRunner::WorkloadRunner(EventQueue &queue, RequestPort &port,
                               const CoreTraces &traces,
                               const CoreParams &params)
    : _queue(queue)
{
    port.setCompletionHandler(
        [this](CoreId core, Addr line, bool) {
            _cores[core]->onCompletion(line);
        });

    _cores.reserve(traces.traces.size());
    for (CoreId c = 0; c < traces.traces.size(); ++c) {
        auto core = std::make_unique<TraceCore>(
            c, traces.traces[c], traces.warmupRefs, params, queue, port);
        core->setBarrierFn([this](CoreId id) { onBarrier(id); });
        _cores.push_back(std::move(core));
    }
}

void
WorkloadRunner::onBarrier(CoreId)
{
    ++_atBarrier;
    if (_atBarrier < _cores.size())
        return;
    // Everyone reached the barrier: end of warmup.
    _warmupComplete = true;
    _measureStart = _queue.now();
    if (_onWarmupDone)
        _onWarmupDone();
    for (auto &core : _cores)
        core->releaseBarrier();
}

bool
WorkloadRunner::allDone() const
{
    for (const auto &core : _cores) {
        if (!core->done())
            return false;
    }
    return true;
}

Cycle
WorkloadRunner::run()
{
    for (auto &core : _cores)
        core->start();
    _queue.run();
    if (!allDone()) {
        // Deliberately not fatal here: runSimulation turns this into a
        // SimulationStuckError with a full post-mortem dump, which the
        // hardened sweep runner can isolate to the failing cell.
        for (const auto &core : _cores) {
            if (!core->done()) {
                FS_LOG(Error, _queue.now(), "runner",
                       "core " << core->id() << " stuck: issued "
                               << core->refsIssued() << " outstanding "
                               << core->outstanding() << " barrier "
                               << core->atBarrier());
            }
        }
    }
    return _queue.now() - _measureStart;
}

} // namespace flexsnoop
