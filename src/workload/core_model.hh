/**
 * @file
 * Trace-driven core model and the runner that drives a whole workload.
 *
 * Each core replays its reference trace with a bounded window of
 * outstanding L2 accesses (a simple memory-level-parallelism model
 * standing in for the paper's out-of-order cores): a new reference may
 * issue `gap` cycles after the previous one as long as fewer than
 * `maxOutstanding` are in flight; otherwise the core stalls until a
 * completion. A barrier separates warmup from the measured phase, at
 * which point the runner fires its reset hook (statistics, energy).
 */

#ifndef FLEXSNOOP_WORKLOAD_CORE_MODEL_HH
#define FLEXSNOOP_WORKLOAD_CORE_MODEL_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/request_port.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/trace.hh"

namespace flexsnoop
{

/** Per-core execution parameters. */
struct CoreParams
{
    std::size_t maxOutstanding = 4; ///< MLP window
};

class TraceCore
{
  public:
    TraceCore(CoreId id, Trace trace, std::size_t warmup_refs,
              const CoreParams &params, EventQueue &queue,
              RequestPort &port);

    CoreId id() const { return _id; }
    bool done() const { return _idx >= _trace.size() && _outstanding == 0; }
    bool atBarrier() const { return _atBarrier; }
    std::size_t refsIssued() const { return _idx; }
    std::size_t outstanding() const { return _outstanding; }

    /** Barrier-release / completion notification. */
    using BarrierFn = std::function<void(CoreId)>;
    void setBarrierFn(BarrierFn fn) { _onBarrier = std::move(fn); }
    using DoneFn = std::function<void(CoreId)>;
    void setDoneFn(DoneFn fn) { _onDone = std::move(fn); }

    /** Begin replaying the trace. */
    void start();

    /** Resume after the warmup barrier. */
    void releaseBarrier();

    /** One of this core's accesses completed. */
    void onCompletion(Addr line);

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** Debug: lines with missing completions (line -> count). */
    const std::unordered_map<Addr, unsigned> &inFlight() const
    {
        return _inFlight;
    }

  private:
    void tryIssue();
    void issueRef(const MemRef &ref);

    CoreId _id;
    Trace _trace;
    std::size_t _warmupRefs;
    CoreParams _params;
    EventQueue &_queue;
    RequestPort &_port;

    std::size_t _idx = 0;
    std::size_t _outstanding = 0;
    /** Completions are matched per line (merged requests complete once
     *  per requesting core). */
    std::unordered_map<Addr, unsigned> _inFlight;
    Cycle _nextIssue = 0;
    bool _issueScheduled = false;
    bool _atBarrier = false;
    bool _barrierDone = false;
    bool _finished = false;

    BarrierFn _onBarrier;
    DoneFn _onDone;
    StatGroup _stats;
    // Cached handles for the per-reference issue/complete hot path.
    Counter &_readsIssued;
    Counter &_writesIssued;
    Counter &_completions;
    Counter &_windowStalls;
};

/**
 * Drives all cores of a workload to completion and implements the
 * warmup barrier.
 */
class WorkloadRunner
{
  public:
    /** Hook fired when all cores passed warmup (reset stats here). */
    using WarmupDoneFn = std::function<void()>;

    WorkloadRunner(EventQueue &queue, RequestPort &port,
                   const CoreTraces &traces, const CoreParams &params);

    void setWarmupDoneFn(WarmupDoneFn fn) { _onWarmupDone = std::move(fn); }

    /**
     * Run the whole workload; returns when every core finished.
     * @return cycles spent in the measured (post-warmup) phase.
     */
    Cycle run();

    /** Cycle at which the measured phase started. */
    Cycle measureStart() const { return _measureStart; }

    /** True when every core drained its trace. */
    bool allDone() const;

    TraceCore &core(std::size_t i) { return *_cores[i]; }
    std::size_t numCores() const { return _cores.size(); }

  private:
    void onBarrier(CoreId core);

    EventQueue &_queue;
    std::vector<std::unique_ptr<TraceCore>> _cores;
    std::size_t _atBarrier = 0;
    bool _warmupComplete = false;
    Cycle _measureStart = 0;
    WarmupDoneFn _onWarmupDone;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_WORKLOAD_CORE_MODEL_HH
