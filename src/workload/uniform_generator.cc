#include "workload/uniform_generator.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace flexsnoop
{

namespace
{

constexpr Addr kUniformBase = Addr{1} << 36;

} // namespace

Addr
UniformGenerator::addrOf(std::size_t owner, std::size_t reader,
                         std::size_t idx) const
{
    const std::size_t per_owner =
        _params.numCores * _params.linesPerReader;
    const std::size_t line =
        owner * per_owner + reader * _params.linesPerReader + idx;
    return kUniformBase + line * kLineSizeBytes;
}

CoreTraces
UniformGenerator::generate() const
{
    const std::size_t n = _params.numCores;
    assert(n >= 2);
    CoreTraces out;
    out.traces.resize(n);

    // Warmup: every core writes every line it owns (all reader slices),
    // establishing itself as the Dirty supplier.
    for (std::size_t owner = 0; owner < n; ++owner) {
        Trace &t = out.traces[owner];
        for (std::size_t reader = 0; reader < n; ++reader) {
            if (reader == owner)
                continue;
            for (std::size_t i = 0; i < _params.linesPerReader; ++i) {
                MemRef ref;
                ref.addr = addrOf(owner, reader, i);
                ref.isWrite = true;
                ref.gap = 4;
                t.push_back(ref);
            }
        }
    }
    out.warmupRefs = out.traces.front().size();

    // Measurement: each core reads its dedicated slice of every other
    // owner's pool, one line at a time, owners interleaved uniformly at
    // random. Every read is a fresh line -> guaranteed ring transaction
    // with a uniformly-distributed supplier.
    for (std::size_t reader = 0; reader < n; ++reader) {
        Rng rng(_params.seed * 1000003 + reader);
        Trace &t = out.traces[reader];

        std::vector<std::pair<std::size_t, std::size_t>> reads;
        for (std::size_t owner = 0; owner < n; ++owner) {
            if (owner == reader)
                continue;
            for (std::size_t i = 0; i < _params.linesPerReader; ++i)
                reads.emplace_back(owner, i);
        }
        // Fisher-Yates shuffle with our deterministic RNG.
        for (std::size_t i = reads.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(rng.nextBelow(i));
            std::swap(reads[i - 1], reads[j]);
        }

        for (const auto &[owner, idx] : reads) {
            MemRef ref;
            ref.addr = addrOf(owner, reader, idx);
            ref.isWrite = false;
            ref.gap = static_cast<std::uint32_t>(
                rng.nextGeometric(_params.meanGap));
            t.push_back(ref);
        }
    }
    return out;
}

} // namespace flexsnoop
