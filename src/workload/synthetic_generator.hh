/**
 * @file
 * Synthetic trace generator: turns a WorkloadProfile into per-core
 * reference traces with the profile's sharing structure.
 *
 * Address map (line granular):
 *  - private pool of core c: distinct region per core
 *  - shared pool: one global region; each line carries a SharePattern
 *    derived from its index (stable across cores)
 */

#ifndef FLEXSNOOP_WORKLOAD_SYNTHETIC_GENERATOR_HH
#define FLEXSNOOP_WORKLOAD_SYNTHETIC_GENERATOR_HH

#include "sim/random.hh"
#include "workload/profile.hh"
#include "workload/trace.hh"

namespace flexsnoop
{

class SyntheticGenerator
{
  public:
    explicit SyntheticGenerator(const WorkloadProfile &profile);

    /** Generate all per-core traces (deterministic per profile.seed). */
    CoreTraces generate() const;

    /** Pattern assigned to shared-pool line index @p idx. */
    SharePattern patternOf(std::size_t idx) const;

    /** Producer core of a producer-consumer line. */
    std::size_t producerOf(std::size_t idx) const;

    /** Byte address of private line @p idx of core @p core. */
    Addr privateAddr(std::size_t core, std::size_t idx) const;

    /** Byte address of shared line @p idx. */
    Addr sharedAddr(std::size_t idx) const;

  private:
    Trace generateCore(std::size_t core, Rng &rng,
                       const ZipfSampler &priv_zipf,
                       const ZipfSampler &shared_zipf) const;

    WorkloadProfile _profile;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_WORKLOAD_SYNTHETIC_GENERATOR_HH
