/**
 * @file
 * Uniform-supplier workload for the analytic comparison of paper
 * Table 1.
 *
 * Table 1 assumes "a perfectly-uniform distribution of the accesses and
 * that one of the nodes can supply the data". This generator arranges
 * exactly that: during warmup each core dirties a pool of lines it owns
 * (becoming their supplier); during measurement each core reads lines
 * owned by uniformly-chosen other nodes, each line at most once per
 * reader, so every measured read is a ring transaction whose supplier
 * sits at a uniformly-distributed ring distance.
 */

#ifndef FLEXSNOOP_WORKLOAD_UNIFORM_GENERATOR_HH
#define FLEXSNOOP_WORKLOAD_UNIFORM_GENERATOR_HH

#include "sim/random.hh"
#include "workload/trace.hh"

namespace flexsnoop
{

struct UniformWorkloadParams
{
    std::size_t numCores = 8;
    std::size_t coresPerCmp = 1;
    /** Lines each core dedicates to each possible reader. */
    std::size_t linesPerReader = 96;
    /** Mean compute gap between references. */
    double meanGap = 60.0;
    std::uint64_t seed = 42;
};

class UniformGenerator
{
  public:
    explicit UniformGenerator(const UniformWorkloadParams &params)
        : _params(params)
    {
    }

    CoreTraces generate() const;

    /** Byte address of owner @p o's line @p idx in reader @p r's slice. */
    Addr addrOf(std::size_t owner, std::size_t reader,
                std::size_t idx) const;

  private:
    UniformWorkloadParams _params;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_WORKLOAD_UNIFORM_GENERATOR_HH
