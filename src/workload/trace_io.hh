/**
 * @file
 * Trace persistence: save and load CoreTraces in a compact binary
 * format, so externally-captured reference streams (or expensive
 * generated ones) can be replayed across runs and shared between
 * machines.
 *
 * Format (little-endian, host-order integers):
 *   magic "FSTR" | u32 version | u64 numCores | u64 warmupRefs
 *   per core: u64 numRefs | numRefs x { u64 addr | u8 isWrite | u32 gap }
 */

#ifndef FLEXSNOOP_WORKLOAD_TRACE_IO_HH
#define FLEXSNOOP_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace flexsnoop
{

/** Current trace file format version. */
constexpr std::uint32_t kTraceFormatVersion = 1;

/**
 * Write @p traces to @p os.
 * @throws std::runtime_error on stream failure
 */
void writeTraces(std::ostream &os, const CoreTraces &traces);

/**
 * Read traces from @p is.
 * @throws std::runtime_error on malformed input or stream failure
 */
CoreTraces readTraces(std::istream &is);

/** Convenience wrappers over file streams. */
void saveTraces(const std::string &path, const CoreTraces &traces);
CoreTraces loadTraces(const std::string &path);

} // namespace flexsnoop

#endif // FLEXSNOOP_WORKLOAD_TRACE_IO_HH
