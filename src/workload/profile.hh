/**
 * @file
 * Workload profiles: parameterized synthetic equivalents of the paper's
 * workloads (11 SPLASH-2 applications, SPECjbb 2000, SPECweb 2005).
 *
 * The paper's figure shapes depend on three workload properties, which
 * the profiles control directly:
 *  - how often a read miss finds a cache supplier (vs. going to memory),
 *  - how far away (in ring hops) the supplier typically is,
 *  - the rate and kind of stores (invalidation pressure, T-state churn).
 *
 * SPLASH-2-like profiles share heavily and fit in the aggregate caches
 * (frequent cache-to-cache transfers, supplier ~4-5 hops away on
 * average, matching the paper's Fig. 11 perfect-predictor bars).
 * SPECjbb-like threads share almost nothing and exceed their L2
 * (capacity misses to memory; the paper: "in SPECjbb, threads do not
 * share much data, and many requests go to memory"). SPECweb-like sits
 * in between.
 */

#ifndef FLEXSNOOP_WORKLOAD_PROFILE_HH
#define FLEXSNOOP_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flexsnoop
{

/** Sharing pattern of a shared line. */
enum class SharePattern : std::uint8_t
{
    ReadMostly,       ///< many readers, rare writer
    ProducerConsumer, ///< one writer core, many readers
    Migratory,        ///< read-modify-write moving between cores
};

struct WorkloadProfile
{
    std::string name;

    std::size_t numCores = 32;
    std::size_t coresPerCmp = 4;

    std::size_t refsPerCore = 20000;  ///< measured refs per core
    std::size_t warmupRefs = 4000;    ///< warmup refs per core

    double meanGap = 40.0;            ///< mean compute cycles between refs

    // Footprint (in 64 B lines).
    std::size_t privateLines = 4096;  ///< per-core private working set
    std::size_t sharedLines = 8192;   ///< global shared pool
    double sharedFraction = 0.35;     ///< P(ref targets the shared pool)
    double zipfTheta = 0.6;           ///< skew within the private pool
    double sharedZipfTheta = 0.65;    ///< skew within the shared pool

    double privateWriteFraction = 0.25;

    // Composition of the shared pool by pattern.
    double readMostlyFraction = 0.50;
    double producerConsumerFraction = 0.30;
    double migratoryFraction = 0.20;

    double readMostlyWriteProb = 0.02; ///< writer prob on read-mostly refs

    std::uint64_t seed = 1;

    std::size_t numCmps() const { return numCores / coresPerCmp; }
};

/**
 * The 11 SPLASH-2 applications the paper runs (all except Volrend),
 * as synthetic profiles with per-application sharing character.
 */
std::vector<WorkloadProfile> splash2Profiles();

/** SPECjbb 2000-like profile (8 single-core CMPs, little sharing). */
WorkloadProfile specJbbProfile();

/** SPECweb 2005-like profile (8 single-core CMPs, moderate sharing). */
WorkloadProfile specWebProfile();

/** Small SPLASH-2-like profile for fast tests/examples. */
WorkloadProfile miniProfile();

/** Look up a profile by name ("barnes", "specjbb", "mini", ...). */
WorkloadProfile profileByName(const std::string &name);

} // namespace flexsnoop

#endif // FLEXSNOOP_WORKLOAD_PROFILE_HH
