#include "workload/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

constexpr char kMagic[4] = {'F', 'S', 'T', 'R'};

/** Bound against absurd headers from corrupt files. */
constexpr std::uint64_t kMaxCores = 1 << 16;
constexpr std::uint64_t kMaxRefsPerCore = std::uint64_t{1} << 32;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

/**
 * Read one fixed-width field; a short read reports the byte offset the
 * field started at and which field it was, so a damaged trace file can
 * be diagnosed (and re-generated from that point) instead of guessed
 * at.
 */
template <typename T>
T
readPod(std::istream &is, const char *what)
{
    const std::streampos at = is.tellg();
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is) {
        std::ostringstream oss;
        oss << "trace file truncated at byte offset "
            << static_cast<long long>(at) << " while reading " << what;
        throw std::runtime_error(oss.str());
    }
    return value;
}

} // namespace

void
writeTraces(std::ostream &os, const CoreTraces &traces)
{
    os.write(kMagic, sizeof(kMagic));
    writePod(os, kTraceFormatVersion);
    writePod(os, static_cast<std::uint64_t>(traces.traces.size()));
    writePod(os, static_cast<std::uint64_t>(traces.warmupRefs));
    for (const Trace &trace : traces.traces) {
        writePod(os, static_cast<std::uint64_t>(trace.size()));
        for (const MemRef &ref : trace) {
            writePod(os, static_cast<std::uint64_t>(ref.addr));
            writePod(os, static_cast<std::uint8_t>(ref.isWrite));
            writePod(os, ref.gap);
        }
    }
    if (!os)
        throw std::runtime_error("failed writing trace stream");
}

CoreTraces
readTraces(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("not a flexsnoop trace file");
    const auto version = readPod<std::uint32_t>(is, "format version");
    if (version != kTraceFormatVersion)
        throw std::runtime_error("unsupported trace format version " +
                                 std::to_string(version));
    const auto num_cores = readPod<std::uint64_t>(is, "core count");
    if (num_cores == 0 || num_cores > kMaxCores) {
        std::ostringstream oss;
        oss << "implausible core count " << num_cores
            << " in trace file (limit " << kMaxCores
            << "): header corrupt?";
        throw std::runtime_error(oss.str());
    }
    CoreTraces traces;
    traces.warmupRefs =
        static_cast<std::size_t>(readPod<std::uint64_t>(is, "warmup refs"));
    traces.traces.resize(static_cast<std::size_t>(num_cores));
    for (Trace &trace : traces.traces) {
        const auto num_refs = readPod<std::uint64_t>(is, "ref count");
        if (num_refs > kMaxRefsPerCore) {
            std::ostringstream oss;
            oss << "implausible ref count " << num_refs
                << " in trace file (limit " << kMaxRefsPerCore
                << "): length field corrupt?";
            throw std::runtime_error(oss.str());
        }
        trace.reserve(static_cast<std::size_t>(num_refs));
        for (std::uint64_t i = 0; i < num_refs; ++i) {
            MemRef ref;
            ref.addr = readPod<std::uint64_t>(is, "ref address");
            const std::streampos flag_at = is.tellg();
            const auto is_write = readPod<std::uint8_t>(is, "write flag");
            if (is_write > 1) {
                // The flag is written as exactly 0 or 1; anything else
                // means the stream lost alignment (bit rot, or a write
                // interrupted mid-record).
                std::ostringstream oss;
                oss << "corrupt write flag " << unsigned{is_write}
                    << " at byte offset "
                    << static_cast<long long>(flag_at)
                    << " (expected 0 or 1)";
                throw std::runtime_error(oss.str());
            }
            ref.isWrite = is_write != 0;
            ref.gap = readPod<std::uint32_t>(is, "ref gap");
            trace.push_back(ref);
        }
    }
    if (traces.warmupRefs > 0) {
        for (const Trace &trace : traces.traces) {
            if (trace.size() < traces.warmupRefs)
                throw std::runtime_error(
                    "warmupRefs exceeds a core's trace length");
        }
    }
    return traces;
}

void
saveTraces(const std::string &path, const CoreTraces &traces)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    writeTraces(os, traces);
}

CoreTraces
loadTraces(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open for reading: " + path);
    return readTraces(is);
}

} // namespace flexsnoop
