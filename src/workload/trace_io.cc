#include "workload/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

constexpr char kMagic[4] = {'F', 'S', 'T', 'R'};

/** Bound against absurd headers from corrupt files. */
constexpr std::uint64_t kMaxCores = 1 << 16;
constexpr std::uint64_t kMaxRefsPerCore = std::uint64_t{1} << 32;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        throw std::runtime_error("trace file truncated");
    return value;
}

} // namespace

void
writeTraces(std::ostream &os, const CoreTraces &traces)
{
    os.write(kMagic, sizeof(kMagic));
    writePod(os, kTraceFormatVersion);
    writePod(os, static_cast<std::uint64_t>(traces.traces.size()));
    writePod(os, static_cast<std::uint64_t>(traces.warmupRefs));
    for (const Trace &trace : traces.traces) {
        writePod(os, static_cast<std::uint64_t>(trace.size()));
        for (const MemRef &ref : trace) {
            writePod(os, static_cast<std::uint64_t>(ref.addr));
            writePod(os, static_cast<std::uint8_t>(ref.isWrite));
            writePod(os, ref.gap);
        }
    }
    if (!os)
        throw std::runtime_error("failed writing trace stream");
}

CoreTraces
readTraces(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("not a flexsnoop trace file");
    const auto version = readPod<std::uint32_t>(is);
    if (version != kTraceFormatVersion)
        throw std::runtime_error("unsupported trace format version " +
                                 std::to_string(version));
    const auto num_cores = readPod<std::uint64_t>(is);
    if (num_cores == 0 || num_cores > kMaxCores)
        throw std::runtime_error("implausible core count in trace file");
    CoreTraces traces;
    traces.warmupRefs =
        static_cast<std::size_t>(readPod<std::uint64_t>(is));
    traces.traces.resize(static_cast<std::size_t>(num_cores));
    for (Trace &trace : traces.traces) {
        const auto num_refs = readPod<std::uint64_t>(is);
        if (num_refs > kMaxRefsPerCore)
            throw std::runtime_error("implausible ref count in trace "
                                     "file");
        trace.reserve(static_cast<std::size_t>(num_refs));
        for (std::uint64_t i = 0; i < num_refs; ++i) {
            MemRef ref;
            ref.addr = readPod<std::uint64_t>(is);
            ref.isWrite = readPod<std::uint8_t>(is) != 0;
            ref.gap = readPod<std::uint32_t>(is);
            trace.push_back(ref);
        }
    }
    if (traces.warmupRefs > 0) {
        for (const Trace &trace : traces.traces) {
            if (trace.size() < traces.warmupRefs)
                throw std::runtime_error(
                    "warmupRefs exceeds a core's trace length");
        }
    }
    return traces;
}

void
saveTraces(const std::string &path, const CoreTraces &traces)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    writeTraces(os, traces);
}

CoreTraces
loadTraces(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open for reading: " + path);
    return readTraces(is);
}

} // namespace flexsnoop
