#include "coherence/controller.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

#include "coherence/express.hh"
#include "sim/fault_injector.hh"
#include "sim/log.hh"
#include "topology/topology.hh"

namespace flexsnoop
{

CoherenceController::HotStats::HotStats(StatGroup &g)
    : reads(g.counter("reads")),
      readL2Hits(g.counter("read_l2_hits")),
      readLocalSupplies(g.counter("read_local_supplies")),
      readMerged(g.counter("read_merged")),
      readLocalConflictDelays(g.counter("read_local_conflict_delays")),
      writes(g.counter("writes")),
      writeL2Hits(g.counter("write_l2_hits")),
      writeLocalConflictDelays(g.counter("write_local_conflict_delays")),
      readRingRequests(g.counter("read_ring_requests")),
      writeRingRequests(g.counter("write_ring_requests")),
      readLinkMessages(g.counter("read_link_messages")),
      writeLinkMessages(g.counter("write_link_messages")),
      readFiltered(g.counter("read_filtered")),
      writeFiltered(g.counter("write_filtered")),
      readSnoops(g.counter("read_snoops")),
      writeSnoops(g.counter("write_snoops")),
      readCacheSupplies(g.counter("read_cache_supplies")),
      readMemorySupplies(g.counter("read_memory_supplies")),
      memoryFetches(g.counter("memory_fetches")),
      collisions(g.counter("collisions")),
      squashes(g.counter("squashes")),
      staleSquashes(g.counter("stale_squashes")),
      retries(g.counter("retries")),
      gateDeferrals(g.counter("gate_deferrals")),
      ringRoundsFound(g.counter("ring_rounds_found")),
      ringRoundsNegative(g.counter("ring_rounds_negative")),
      invalidateOnFill(g.counter("invalidate_on_fill")),
      readLatency(g.scalar("read_latency")),
      writeLatency(g.scalar("write_latency")),
      readLatencyHist(g.histogram("read_latency_hist", 50.0, 80)),
      watchdogTimeouts(g.counter("watchdog_timeouts")),
      staleAbsorbed(g.counter("stale_messages_absorbed")),
      flipDegrades(g.counter("predictor_flip_degrades")),
      incompleteRejected(g.counter("incomplete_conclusions_rejected")),
      retryStormAborts(g.counter("retry_storm_aborts")),
      bridgeSkips(g.counter("bridge_skips")),
      bridgeDescends(g.counter("bridge_descends"))
{
}

CoherenceController::CoherenceController(
    EventQueue &queue, RingNetwork &ring, DataNetwork &data,
    MemoryController &memory, EnergyModel &energy, SnoopPolicy &policy,
    std::vector<std::unique_ptr<CmpNode>> &nodes,
    const CoherenceParams &params)
    : _queue(queue), _ring(ring), _data(data), _memory(memory),
      _energy(energy), _policy(policy), _nodes(nodes), _params(params),
      _coresPerCmp(nodes.empty() ? 1 : nodes.front()->numCores()),
      _outstandingByLine(nodes.size()), _pending(nodes.size()),
      _gates(nodes.size()), _stats("controller"), _c(_stats)
{
    assert(!_nodes.empty());
    for (NodeId n = 0; n < _nodes.size(); ++n) {
        _ring.setHandler(n, [this, n](const SnoopMessage &msg) {
            onRingMessage(n, msg);
        });
    }
    if (_params.ringExpress && !std::getenv("FLEXSNOOP_STRICT_RING"))
        _express = std::make_unique<ExpressPath>(*this);
    // Escape hatch for equivalence testing: with signatures suppressed
    // every consumer re-hashes the address, and results must stay
    // bit-identical (test_probe_signature relies on this).
    _probeSignatures = !std::getenv("FLEXSNOOP_NO_PROBE_SIG");
}

CoherenceController::~CoherenceController() = default;

StatGroup *
CoherenceController::expressStats()
{
    return _express ? &_express->stats() : nullptr;
}

const StatGroup *
CoherenceController::expressStats() const
{
    return _express ? &_express->stats() : nullptr;
}

void
CoherenceController::setFaultInjector(FaultInjector *faults)
{
    _faults = faults;
    if (_faults && _faults->armed())
        _express.reset(); // refuse coalescing: every hop must be real
}

void
CoherenceController::setTopology(
    const Topology *topo, SnoopPolicy *global_policy,
    std::vector<std::unique_ptr<PresencePredictor>> *bridge_supplier,
    std::vector<std::unique_ptr<PresencePredictor>> *bridge_presence)
{
    if (!topo || !topo->hierarchical()) {
        _topo = nullptr;
        _globalPolicy = nullptr;
        _bridgeSupplier = nullptr;
        _bridgePresence = nullptr;
        _bridgeDecisions.clear();
        return;
    }
    assert(topo->numNodes() == _nodes.size());
    _topo = topo;
    _globalPolicy = global_policy;
    _bridgeSupplier = bridge_supplier;
    _bridgePresence = bridge_presence;
    _bridgeDecisions =
        std::vector<FlatMap<std::uint8_t>>(topo->numBlocks());
}

CoherenceController::PoolUsage
CoherenceController::txnPoolUsage() const
{
    return {_txnPool.acquires(), _txnPool.releases(), _txnPool.live(),
            _txnPool.slotsAllocated(), _txnPool.chunkAllocs()};
}

CoherenceController::PoolUsage
CoherenceController::pendingPoolUsage() const
{
    return {_pendingPool.acquires(), _pendingPool.releases(),
            _pendingPool.live(), _pendingPool.slotsAllocated(),
            _pendingPool.chunkAllocs()};
}

Transaction *
CoherenceController::findTransaction(TransactionId id)
{
    Transaction **slot = _transactions.find(id);
    return slot ? *slot : nullptr;
}

NodePending &
CoherenceController::pending(NodeId node, TransactionId txn)
{
    NodePending *&slot = _pending[node].getOrCreate(txn);
    if (!slot) {
        slot = _pendingPool.acquire();
        slot->reset();
    }
    return *slot;
}

NodePending *
CoherenceController::findPending(NodeId node, TransactionId txn)
{
    NodePending **slot = _pending[node].find(txn);
    return slot ? *slot : nullptr;
}

void
CoherenceController::erasePending(NodeId node, TransactionId txn)
{
    NodePending **slot = _pending[node].find(txn);
    if (!slot)
        return;
    _pendingPool.release(*slot);
    _pending[node].erase(txn);
}

bool
CoherenceController::deferIfGated(NodeId node, const SnoopMessage &msg)
{
    GateLine *const *found = _gates[node].find(msg.line);
    if (!found)
        return false;
    GateLine &gate = **found;
    // The holder's own traffic (notably the trailing reply an STF hold
    // is waiting for) must always flow, or the hold never ends.
    if (gate.active == msg.txn)
        return false;
    // Idle gate with nothing queued: pass through.
    if (gate.active == kInvalidTransaction && gate.deferred.empty())
        return false;
    // Strict per-line FIFO: every other message (any type) queues, so a
    // trailing reply can never overtake its own parked request.
    gate.deferred.push_back(msg);
    _c.gateDeferrals.inc();
    if (_trace)
        _trace->record(TraceEvent::GateDefer, _queue.now(), msg.txn,
                       msg.line,
                       gate.active == kInvalidTransaction ? 0
                                                          : gate.active,
                       static_cast<std::uint16_t>(node));
    return true;
}

void
CoherenceController::acquireGate(NodeId node, Addr line, TransactionId txn)
{
    GateLine *&slot = _gates[node].getOrCreate(line);
    if (!slot) {
        slot = _gatePool.acquire();
        // Recycled gates are returned clean (drainGate only releases
        // an idle, empty gate), fresh slots default-construct clean.
        assert(slot->active == kInvalidTransaction &&
               slot->deferred.empty());
    }
    GateLine &gate = *slot;
    assert(gate.active == kInvalidTransaction || gate.active == txn);
    gate.active = txn;
}

void
CoherenceController::releaseGate(NodeId node, Addr line, TransactionId txn)
{
    GateLine *const *gate = _gates[node].find(line);
    if (!gate)
        return;
    if ((*gate)->active != txn)
        return;
    (*gate)->active = kInvalidTransaction;
    drainGate(node, line);
}

void
CoherenceController::drainGate(NodeId node, Addr line)
{
    // Synchronous loop: popping and reprocessing must leave no window
    // in which a newly-arriving message could slip past the queue and
    // steal the gate from the rightful next holder.
    while (true) {
        // Refetch each iteration: handleIntermediate below may insert
        // other gates, invalidating FlatMap slot pointers on growth
        // (the pooled GateLine itself is address-stable).
        GateLine *const *found = _gates[node].find(line);
        if (!found)
            return;
        GateLine &gate = **found;
        if (gate.deferred.empty()) {
            if (gate.active == kInvalidTransaction) {
                // The gate is idle and empty: recycle it (its deque
                // keeps any grown chunk for the next acquire).
                _gatePool.release(*found);
                _gates[node].erase(line);
            }
            return;
        }
        // While a holder is active, only its own queued traffic (e.g.
        // the trailing reply parked behind its request) may be
        // delivered -- jumping the queue if needed, as a real gateway
        // consumes a reply on arrival rather than forwarding it. Other
        // transactions stay queued until release.
        auto pick = gate.deferred.begin();
        if (gate.active != kInvalidTransaction) {
            while (pick != gate.deferred.end() &&
                   pick->txn != gate.active)
                ++pick;
            if (pick == gate.deferred.end())
                return;
        }
        const SnoopMessage next = *pick;
        gate.deferred.erase(pick);
        // The reprocessed message may take the gate (SnoopThenForward),
        // in which case the next loop iteration only delivers its own
        // traffic; otherwise keep draining.
        handleIntermediate(node, next, /*from_gate=*/true);
    }
}

void
CoherenceController::complete(CoreId core, Addr line, bool is_write,
                              Cycle delay)
{
    if (!_onComplete)
        return;
    FS_LOG(Debug, _queue.now(), "ctrl",
           "complete core " << core << " line 0x" << std::hex << line
                            << std::dec << (is_write ? " W" : " R")
                            << " delay " << delay);
    _queue.schedule(delay, [this, core, line, is_write]() {
        _onComplete(core, line, is_write);
    });
}

// --------------------------------------------------------------------------
// Core-facing request entry points
// --------------------------------------------------------------------------

void
CoherenceController::coreRead(CoreId core, Addr addr,
                              unsigned retries)
{
    const Addr line = lineAddr(addr);
    const NodeId n = nodeOf(core);
    const std::size_t local = localOf(core);
    CmpNode &node = *_nodes[n];

    _c.reads.inc();

    // 1. Hit in the core's own L2.
    if (isValidState(node.coreState(local, line))) {
        node.l2(local).touch(line);
        _c.readL2Hits.inc();
        complete(core, line, false, _params.l2RoundTrip);
        return;
    }

    // 2. Another L2 in this CMP can supply (SL, SG, E, D, T).
    if (node.hasLocalSupplier(line)) {
        node.localSupply(local, line);
        _c.readLocalSupplies.inc();
        complete(core, line, false,
                 _params.l2RoundTrip + _params.localBusRoundTrip);
        return;
    }

    // 3. Merge with an outstanding same-line read of this CMP.
    auto &out = _outstandingByLine[n];
    if (const TransactionId *oid = out.find(line)) {
        Transaction *t = findTransaction(*oid);
        if (t && t->kind == SnoopKind::Read && !t->squashed &&
            !t->dataArrived) {
            // Merging onto a transaction whose data already arrived
            // would miss the delivery; fall through to the delay path.
            t->waiters.push_back(core);
            _c.readMerged.inc();
            return;
        }
        // A conflicting local transaction is in flight; retry shortly.
        _c.readLocalConflictDelays.inc();
        _queue.schedule(_params.retryBackoff, [this, core, addr,
                                               retries]() {
            coreRead(core, addr, retries);
        });
        return;
    }

    // 4. Go to the ring.
    startRingTransaction(core, line, SnoopKind::Read,
                         _params.l2RoundTrip + _params.localBusRoundTrip,
                         retries);
}

void
CoherenceController::coreWrite(CoreId core, Addr addr,
                               unsigned retries)
{
    const Addr line = lineAddr(addr);
    const NodeId n = nodeOf(core);
    const std::size_t local = localOf(core);
    CmpNode &node = *_nodes[n];

    _c.writes.inc();

    const LineState st = node.coreState(local, line);

    // 1. Writable already: silent transition.
    if (isWritableState(st)) {
        if (st == LineState::Exclusive)
            node.l2(local).changeState(line, LineState::Dirty);
        node.l2(local).touch(line);
        _c.writeL2Hits.inc();
        complete(core, line, true, _params.l2RoundTrip);
        return;
    }

    // 2. A local transaction on this line is already in flight.
    auto &out = _outstandingByLine[n];
    if (out.contains(line)) {
        _c.writeLocalConflictDelays.inc();
        _queue.schedule(_params.retryBackoff, [this, core, addr,
                                               retries]() {
            coreWrite(core, addr, retries);
        });
        return;
    }

    // 3. Invalidate the other local copies over the CMP bus, then launch
    //    the ring invalidation round.
    node.invalidateAll(line, local);
    startRingTransaction(core, line, SnoopKind::Write,
                         _params.l2RoundTrip + _params.localBusRoundTrip,
                         retries);
}

void
CoherenceController::startRingTransaction(CoreId core, Addr line,
                                          SnoopKind kind, Cycle extra_delay,
                                          unsigned retries)
{
    const NodeId n = nodeOf(core);
    const std::size_t local = localOf(core);

    Transaction *txn = _txnPool.acquire();
    txn->reset();
    txn->id = _nextTxnId++;
    txn->line = line;
    txn->kind = kind;
    txn->requester = n;
    txn->core = core;
    txn->issued = _queue.now();
    txn->retries = retries;
    if (kind == SnoopKind::Write) {
        txn->writeNeedsData =
            !isValidState(_nodes[n]->coreState(local, line));
        txn->dataArrived = !txn->writeNeedsData;
    }

    const TransactionId id = txn->id;
    _transactions.put(id, txn);
    _outstandingByLine[n].put(line, id);
    ++_liveLineRounds.getOrCreate(line);

    if (_trace)
        _trace->record(TraceEvent::TxnStart, _queue.now(), id, line, core,
                       static_cast<std::uint16_t>(n),
                       kind == SnoopKind::Write ? 1 : 0,
                       static_cast<std::uint16_t>(retries));

    _queue.schedule(extra_delay, [this, id]() {
        if (Transaction *t = findTransaction(id))
            issueRingMessage(*t);
    });

    if (_params.watchdogCycles > 0)
        scheduleWatchdog(id);
}

void
CoherenceController::scheduleWatchdog(TransactionId id)
{
    _queue.schedule(_params.watchdogCycles,
                    [this, id]() { watchdogExpire(id); });
}

void
CoherenceController::watchdogExpire(TransactionId id)
{
    Transaction *txn = findTransaction(id);
    if (!txn)
        return; // completed (or reissued under a new id)
    if (txn->ringDone || txn->memoryPending) {
        // The ring round concluded; only the (never faulted) data
        // network or memory is outstanding. Keep watching.
        scheduleWatchdog(id);
        return;
    }

    // The ring traffic of this transaction was lost: reclaim its
    // gateway state everywhere, then recover.
    _c.watchdogTimeouts.inc();
    if (_trace)
        _trace->record(TraceEvent::WatchdogExpire, _queue.now(), id,
                       txn->line, 0,
                       static_cast<std::uint16_t>(txn->requester),
                       txn->kind == SnoopKind::Read && txn->dataArrived
                           ? 1
                           : 0);
    FS_LOG(Info, _queue.now(), "ctrl",
           "watchdog: txn " << id << " line 0x" << std::hex << txn->line
                            << std::dec << " ring traffic lost after "
                            << _params.watchdogCycles << " cycles; "
                            << (txn->kind == SnoopKind::Read &&
                                        txn->dataArrived
                                    ? "finishing"
                                    : "reissuing"));

    if (txn->kind == SnoopKind::Read && txn->dataArrived) {
        // The data already reached the core; only the conclusion
        // message was lost. Reissuing would double-complete the load,
        // so just close the record (finishAndErase sweeps the leftover
        // ring-side state). We cannot know whether a colliding write's
        // squash (which mandates invalidate-on-fill) was among the lost
        // traffic, so drop the cached copy as if it were -- the core
        // already consumed the data, only the L2 state goes.
        _nodes[txn->requester]->invalidateAll(txn->line);
        txn->ringDone = true;
        finishAndErase(id);
        return;
    }
    retryTransaction(*txn);
    finishAndErase(id);
}

void
CoherenceController::sweepTransactionState(TransactionId id, Addr line)
{
    for (NodeId n = 0; n < _nodes.size(); ++n) {
        erasePending(n, id);
        releaseGate(n, line, id);
    }
}

void
CoherenceController::issueRingMessage(Transaction &txn)
{
    if (txn.kind == SnoopKind::Read)
        _c.readRingRequests.inc();
    else
        _c.writeRingRequests.inc();

    SnoopMessage msg;
    msg.type = MsgType::CombinedRR;
    msg.kind = txn.kind;
    msg.txn = txn.id;
    msg.line = txn.line;
    msg.requester = txn.requester;
    if (_probeSignatures)
        msg.sig = computeSignature(txn.requester, txn.line);

    FS_LOG(Debug, _queue.now(), "ctrl",
           "issue " << (txn.kind == SnoopKind::Read ? "read" : "write")
                    << " txn " << txn.id << " line 0x" << std::hex
                    << txn.line << std::dec << " from node "
                    << txn.requester);

    if (_trace)
        _trace->record(TraceEvent::RingIssue, _queue.now(), txn.id,
                       txn.line, 0,
                       static_cast<std::uint16_t>(txn.requester));

    forwardMessage(txn.requester, msg);
}

ProbeSignature
CoherenceController::computeSignature(NodeId requester, Addr line) const
{
    ProbeSignature sig;
    sig.home = _memory.homeNode(line);
    sig.l2Set = static_cast<std::uint32_t>(_nodes[requester]->l2(0).setIndex(line));
    if (const SupplierPredictor *pred = _nodes[requester]->predictor())
        sig.supplierFields =
            static_cast<std::uint8_t>(pred->fillSignature(line, sig.supplier));
    if (const PresencePredictor *presence =
            _nodes[requester]->presencePredictor())
        sig.presenceFields = static_cast<std::uint8_t>(
            presence->fillSignature(line, sig.presence));
    return sig;
}

// --------------------------------------------------------------------------
// Ring message handling
// --------------------------------------------------------------------------

void
CoherenceController::forwardMessage(NodeId node, const SnoopMessage &msg)
{
    _energy.record(EnergyEvent::RingLinkMessage);
    // A descending hop out of a block's last member physically wraps to
    // its head and then crosses one global-ring link (hier topology).
    if (_topo && _topo->linkCrossesBlock(node))
        _energy.record(EnergyEvent::GlobalRingLinkMessage);
    if (msg.kind == SnoopKind::Read)
        _c.readLinkMessages.inc();
    else
        _c.writeLinkMessages.inc();
    // The express path may coalesce the whole remaining run into one
    // retirement event; the counters above cover its first link.
    if (_express && _express->trySend(node, msg))
        return;
    _ring.send(node, msg);
}

void
CoherenceController::onRingMessage(NodeId node, const SnoopMessage &msg)
{
    if (msg.requester == node) {
        if (Transaction *txn = findTransaction(msg.txn))
            handleAtRequester(*txn, msg);
        // else: late traffic of a finished/retried transaction; absorb.
        return;
    }
    handleIntermediate(node, msg);
}

void
CoherenceController::handleIntermediate(NodeId node, SnoopMessage msg,
                                        bool from_gate)
{
    if (_trace && from_gate)
        _trace->record(TraceEvent::GateResume, _queue.now(), msg.txn,
                       msg.line, 0, static_cast<std::uint16_t>(node));

    // Fault recovery: traffic of a transaction that no longer exists
    // (closed by its watchdog, or a duplicate of an already-concluded
    // round) must die here, or it would plant zombie pending/gate
    // state that wedges the line forever.
    if (hardened() && !findTransaction(msg.txn)) {
        _c.staleAbsorbed.inc();
        if (_trace)
            _trace->record(TraceEvent::StaleAbsorbed, _queue.now(),
                           msg.txn, msg.line, 0,
                           static_cast<std::uint16_t>(node));
        return;
    }

    // Home-node prefetch heuristic: a still-unanswered read passing its
    // home node may trigger a DRAM prefetch (paper §2.2). The signature
    // carries the home mapping so the hop does no division/modulo.
    if (msg.kind == SnoopKind::Read && !msg.found && !msg.squashed &&
        msg.type != MsgType::SnoopReply &&
        (msg.sig.valid() ? msg.sig.home
                         : _memory.homeNode(msg.line)) == node) {
        assert(!msg.sig.valid() ||
               msg.sig.home == _memory.homeNode(msg.line));
        _memory.notifySnoopAtHome(msg.line, _queue.now());
    }

    // Strict per-line FIFO at the gateway (any message type): nothing
    // may overtake a parked same-line message of another transaction.
    if (!from_gate && deferIfGated(node, msg))
        return;

    // Bridge gateway (hier topology): a foreign block's head may skip
    // the message over the whole block via the global ring. The
    // requester's own block always runs the flat path, so the round
    // still terminates at the requester.
    if (_topo && _topo->isHead(node) &&
        !_topo->sameBlock(node, msg.requester) && bridgeHandle(node, msg))
        return;

    // Found or squashed messages travel the rest of the ring inert. A
    // passing found reply is also the "snoop reply" a ForwardThenSnoop
    // node downstream of the supplier was waiting for (Table 2): it
    // closes that node's pending state.
    if (msg.found || msg.squashed) {
        if (NodePending *p = findPending(node, msg.txn)) {
            if (p->snoopPending) {
                p->abandoned = true;
            } else {
                erasePending(node, msg.txn);
                releaseGate(node, msg.line, msg.txn);
            }
        }
        forwardMessage(node, msg);
        return;
    }

    // Trailing (negative) replies follow their own merge rules.
    if (msg.type == MsgType::SnoopReply) {
        handleTrailingReply(node, msg);
        return;
    }

    // Active request or combined R/R.
    if (detectCollision(node, msg)) {
        forwardMessage(node, msg); // now squashed; circulates back inert
        return;
    }

    // Choose the primitive.
    Primitive prim;
    Cycle decision_latency = 0;
    std::uint16_t pred_trace = 2; // 0/1 = predictor answer, 2 = none
    if (msg.kind == SnoopKind::Write) {
        // Write snoops cannot use supplier predictors (paper §5.3):
        // every node invalidates, eagerly or lazily per algorithm class
        // -- unless the optional presence predictor (the extension the
        // paper sketches) proves this CMP caches no copy at all.
        prim = _policy.decouplesWrites() ? Primitive::ForwardThenSnoop
                                         : Primitive::SnoopThenForward;
        if (PresencePredictor *presence =
                _nodes[node]->presencePredictor()) {
            decision_latency = presence->accessLatency();
            bool absent = !presence->mayBePresent(msg.line, msg.sig);
            if (_faults && _faults->flipPrediction()) {
                absent = !absent;
                if (_trace)
                    _trace->record(TraceEvent::PredictorFlip,
                                   _queue.now(), msg.txn, msg.line, 0,
                                   static_cast<std::uint16_t>(node), 1);
            }
            pred_trace = absent ? 0 : 1;
            if (absent) {
                if (_nodes[node]->hasAnyCopy(msg.line)) {
                    // The filter has no false negatives by
                    // construction; only an injected soft error gets
                    // here. Degrade to the safe (snooping) primitive
                    // instead of skipping live copies.
                    assert(_faults &&
                           "presence predictor false negative");
                    _c.flipDegrades.inc();
                } else {
                    prim = Primitive::Forward;
                }
            }
        }
    } else if (!_policy.usesPredictor()) {
        prim = _policy.onPrediction(false);
    } else {
        SupplierPredictor *pred = _nodes[node]->predictor();
        assert(pred && "policy requires a predictor");
        bool predicted = pred->predict(msg.line, msg.sig);
        if (_faults && _faults->flipPrediction()) {
            predicted = !predicted;
            if (_trace)
                _trace->record(TraceEvent::PredictorFlip, _queue.now(),
                               msg.txn, msg.line, 0,
                               static_cast<std::uint16_t>(node), 0);
        }
        pred_trace = predicted ? 1 : 0;
        const bool actual = _nodes[node]->hasSupplier(msg.line);
        pred->recordOutcome(predicted, actual);
        prim = _policy.onPrediction(predicted);
        decision_latency = pred->accessLatency();
        if (prim == Primitive::Forward && actual) {
            // A predictor with no false negatives must never filter
            // the supplier node (the correctness property of §4.3.4);
            // only an injected soft error can produce this. Model the
            // hardware's parity fallback: treat the answer as
            // untrusted and snoop before forwarding.
            assert(_faults &&
                   "false negative filtered the supplier: protocol "
                   "violation");
            prim = Primitive::SnoopThenForward;
            _c.flipDegrades.inc();
        }
    }

    if (_trace)
        _trace->record(TraceEvent::HopDecision, _queue.now(), msg.txn,
                       msg.line, decision_latency,
                       static_cast<std::uint16_t>(node),
                       static_cast<std::uint16_t>(prim), pred_trace);

    if (prim == Primitive::Forward) {
        (msg.kind == SnoopKind::Read ? _c.readFiltered
                                     : _c.writeFiltered)
            .inc();
        SnoopMessage out = msg;
        out.visits = msg.visits + 1;
        if (_faults && msg.type == MsgType::SnoopRequest) {
            // A trailing reply is following this request. Its visit
            // count only reflects nodes it merged at, so leave a marker
            // recording that the request did pass here; the reply picks
            // the count up in handleTrailingReply. Without the marker a
            // reply that outlived a dropped request is indistinguishable
            // from a complete round.
            NodePending &p = pending(node, msg.txn);
            p.prim = Primitive::Forward;
            p.snoopDone = true;
            p.waitingForReply = true;
            p.requestVisits = out.visits;
        }
        SnoopMessage *fwd = _msgPool.acquire();
        *fwd = out;
        _queue.schedule(decision_latency, [this, node, fwd]() {
            forwardMessage(node, *fwd);
            _msgPool.release(fwd);
        });
        return;
    }

    NodePending &p = pending(node, msg.txn);
    p.prim = prim;
    p.receivedCombined = msg.type == MsgType::CombinedRR;
    p.snoopPending = true;

    if (prim == Primitive::SnoopThenForward) {
        // The message is held here until the snoop (and possibly the
        // trailing-reply fusion) completes: gate the line.
        acquireGate(node, msg.line, msg.txn);
    }

    if (prim == Primitive::ForwardThenSnoop) {
        SnoopMessage *req = _msgPool.acquire();
        *req = msg;
        req->type = MsgType::SnoopRequest; // split: the request races ahead
        req->visits = msg.visits + 1; // our reply will carry the same count
        _queue.schedule(decision_latency, [this, node, req]() {
            forwardMessage(node, *req);
            _msgPool.release(req);
        });
    }
    SnoopMessage *captured = _msgPool.acquire();
    *captured = msg;
    _queue.schedule(decision_latency + _params.cmpSnoopTime,
                    [this, node, captured]() {
                        snoopComplete(node, *captured);
                        _msgPool.release(captured);
                    });
}

// --------------------------------------------------------------------------
// Bridge gateways (hier topology, docs/TOPOLOGY.md)
// --------------------------------------------------------------------------

bool
CoherenceController::bridgeHandle(NodeId node, const SnoopMessage &msg)
{
    const std::size_t block = _topo->blockOf(node);
    auto &decisions = _bridgeDecisions[block];

    // Every message after the first follows the recorded decision, so
    // one transaction sees a consistent ring geometry: a request that
    // descended must have its trailing reply (and the round's
    // conclusion) descend too, and vice versa.
    if (const std::uint8_t *d = decisions.find(msg.txn)) {
        if (static_cast<BridgeAction>(*d) == BridgeAction::Descend)
            return false;
        bridgeSkipForward(node, msg, 0);
        return true;
    }

    // A negative trailing reply with no recorded decision: its request
    // never reached this bridge (dropped in fault mode). Descend
    // conservatively; the flat path forwards it member by member.
    if (msg.type == MsgType::SnoopReply && !msg.found && !msg.squashed)
        return false;

    if (msg.found || msg.squashed) {
        // Inert conclusion sweeping the remainder of the ring: flat
        // members neither snoop it nor count it, so nothing in this
        // block can change it -- skip without consulting the policy.
        decisions.put(msg.txn, static_cast<std::uint8_t>(
                                   BridgeAction::Skip));
        _c.bridgeSkips.inc();
        bridgeSkipForward(node, msg, 0);
        return true;
    }

    Cycle decision_latency = 0;
    std::uint16_t pred_trace = 2;
    const BridgeAction action =
        decideBridge(node, msg, decision_latency, pred_trace);
    decisions.put(msg.txn, static_cast<std::uint8_t>(action));
    if (_trace)
        _trace->record(TraceEvent::HopDecision, _queue.now(), msg.txn,
                       msg.line, decision_latency,
                       static_cast<std::uint16_t>(node),
                       static_cast<std::uint16_t>(
                           action == BridgeAction::Skip
                               ? Primitive::Forward
                               : Primitive::SnoopThenForward),
                       pred_trace);
    if (action == BridgeAction::Descend) {
        _c.bridgeDescends.inc();
        return false;
    }
    _c.bridgeSkips.inc();
    bridgeSkipForward(node, msg, decision_latency);
    return true;
}

CoherenceController::BridgeAction
CoherenceController::decideBridge(NodeId node, const SnoopMessage &msg,
                                  Cycle &decision_latency,
                                  std::uint16_t &pred_trace)
{
    const std::size_t block = _topo->blockOf(node);

    // A member with a conflicting outstanding transaction must see this
    // message: the flat collision rules (who squashes whom) only run
    // when the message reaches that member.
    if (blockConflicts(block, msg))
        return BridgeAction::Descend;

    // A skip must not let this round overtake another live round on the
    // same line: the flat ring's per-line message order is what makes a
    // write sweep every copy that existed when its request passed, and
    // what routes later same-line rounds into a collision at the
    // earlier requester's node. While any other round on the line is
    // in flight anywhere, descend and run the flat path -- a skip here
    // could hop past that round's request on the global ring and, e.g.,
    // reach a supplier the write has not invalidated yet.
    if (const std::uint32_t *live = _liveLineRounds.find(msg.line);
        live && *live > 1)
        return BridgeAction::Descend;

    if (msg.kind == SnoopKind::Write) {
        // Writes skip only when the block-level presence aggregate
        // proves no member caches a copy (mirrors the flat presence
        // filter, which applies under every algorithm).
        PresencePredictor *agg =
            _bridgePresence ? (*_bridgePresence)[block].get() : nullptr;
        if (!agg)
            return BridgeAction::Descend;
        decision_latency = agg->accessLatency();
        bool absent = !agg->mayBePresent(msg.line);
        if (_faults && _faults->flipPrediction()) {
            absent = !absent;
            if (_trace)
                _trace->record(TraceEvent::PredictorFlip, _queue.now(),
                               msg.txn, msg.line, 0,
                               static_cast<std::uint16_t>(node), 1);
        }
        pred_trace = absent ? 0 : 1;
        if (!absent)
            return BridgeAction::Descend;
        if (blockHasAnyCopy(block, msg.line)) {
            // The counting Bloom has no false negatives; only an
            // injected soft error gets here. Degrade to the safe
            // action instead of skipping live copies.
            assert(_faults && "bridge presence aggregate false negative");
            _c.flipDegrades.inc();
            return BridgeAction::Descend;
        }
        return BridgeAction::Skip;
    }

    // Reads skip only when the per-level action table maps a negative
    // aggregate answer to Forward (Oracle, the Supersets, Exact,
    // Adaptive). Lazy, Eager and Subset re-snoop negatives, so their
    // bridges always descend.
    if (!_globalPolicy ||
        _globalPolicy->onPrediction(false) != Primitive::Forward ||
        !_globalPolicy->usesPredictor())
        return BridgeAction::Descend;

    bool positive;
    const PredictorKind kind = _globalPolicy->predictorKind();
    if (kind == PredictorKind::Perfect || kind == PredictorKind::Exact) {
        // Oracle knows, and Exact maintains exact per-node supplier
        // sets -- the block aggregate is authoritative either way.
        positive = blockHasSupplier(block, msg.line);
    } else {
        PresencePredictor *agg =
            _bridgeSupplier ? (*_bridgeSupplier)[block].get() : nullptr;
        if (!agg)
            return BridgeAction::Descend;
        decision_latency = agg->accessLatency();
        positive = agg->mayBePresent(msg.line);
    }
    if (_faults && _faults->flipPrediction()) {
        positive = !positive;
        if (_trace)
            _trace->record(TraceEvent::PredictorFlip, _queue.now(),
                           msg.txn, msg.line, 0,
                           static_cast<std::uint16_t>(node), 0);
    }
    pred_trace = positive ? 1 : 0;
    if (positive)
        return BridgeAction::Descend;
    if (blockHasSupplier(block, msg.line)) {
        // FP-only aggregates cannot miss a supplier; injected soft
        // errors degrade to the safe action (paper §4.3.4 at the
        // block level).
        assert(_faults && "bridge supplier aggregate false negative");
        _c.flipDegrades.inc();
        return BridgeAction::Descend;
    }
    return BridgeAction::Skip;
}

void
CoherenceController::bridgeSkipForward(NodeId node, const SnoopMessage &msg,
                                       Cycle decision_latency)
{
    SnoopMessage out = msg;
    if (msg.found || msg.squashed) {
        // Inert skip: flat members leave visit counts untouched for
        // inert traffic; close any marker this bridge still holds.
        if (findPending(node, msg.txn)) {
            erasePending(node, msg.txn);
            releaseGate(node, msg.line, msg.txn);
        }
    } else if (msg.type == MsgType::SnoopReply) {
        // Negative trailing reply: pick up the visit count the skipped
        // request recorded here (fault mode), like at a flat Forward
        // marker node.
        if (NodePending *p = findPending(node, msg.txn)) {
            if (p->waitingForReply)
                out.visits = p->requestVisits;
            erasePending(node, msg.txn);
        }
    } else {
        // Active request: the skip covers this head and its members.
        out.visits = msg.visits + _topo->blockSize();
        (msg.kind == SnoopKind::Read ? _c.readFiltered : _c.writeFiltered)
            .inc(_topo->blockSize());
        if (_faults && msg.type == MsgType::SnoopRequest) {
            // Same marker a flat Forward node leaves: the trailing
            // reply picks the authoritative visit count up here.
            NodePending &p = pending(node, msg.txn);
            p.prim = Primitive::Forward;
            p.snoopDone = true;
            p.waitingForReply = true;
            p.requestVisits = out.visits;
        }
    }
    sendSkipAccounted(node, out, decision_latency);
}

void
CoherenceController::sendSkipAccounted(NodeId node, const SnoopMessage &msg,
                                       Cycle decision_latency)
{
    // One message on one (global) link -- the whole point: a flat round
    // would have paid blockSize() link messages and snoop decisions.
    _energy.record(EnergyEvent::GlobalRingLinkMessage);
    if (msg.kind == SnoopKind::Read)
        _c.readLinkMessages.inc();
    else
        _c.writeLinkMessages.inc();
    if (decision_latency == 0) {
        _ring.sendSkip(node, msg);
        return;
    }
    SnoopMessage *fwd = _msgPool.acquire();
    *fwd = msg;
    _queue.schedule(decision_latency, [this, node, fwd]() {
        _ring.sendSkip(node, *fwd);
        _msgPool.release(fwd);
    });
}

bool
CoherenceController::blockConflicts(std::size_t block,
                                    const SnoopMessage &msg)
{
    const NodeId begin = _topo->headOf(block);
    const NodeId end = begin + static_cast<NodeId>(_topo->blockSize());
    for (NodeId n = begin; n < end; ++n) {
        const TransactionId *oid = _outstandingByLine[n].find(msg.line);
        if (!oid)
            continue;
        Transaction *t = findTransaction(*oid);
        if (!t || t->squashed)
            continue;
        if (msg.kind == SnoopKind::Read && t->kind == SnoopKind::Read)
            continue; // concurrent reads never conflict
        return true;
    }
    return false;
}

bool
CoherenceController::blockHasSupplier(std::size_t block, Addr line) const
{
    const NodeId begin = _topo->headOf(block);
    const NodeId end = begin + static_cast<NodeId>(_topo->blockSize());
    for (NodeId n = begin; n < end; ++n) {
        if (_nodes[n]->hasSupplier(line))
            return true;
    }
    return false;
}

bool
CoherenceController::blockHasAnyCopy(std::size_t block, Addr line) const
{
    const NodeId begin = _topo->headOf(block);
    const NodeId end = begin + static_cast<NodeId>(_topo->blockSize());
    for (NodeId n = begin; n < end; ++n) {
        if (_nodes[n]->hasAnyCopy(line))
            return true;
    }
    return false;
}

bool
CoherenceController::detectCollision(NodeId node, SnoopMessage &msg)
{
    auto &out = _outstandingByLine[node];
    const TransactionId *oid = out.find(msg.line);
    if (!oid)
        return false;
    Transaction *t = findTransaction(*oid);
    if (!t || t->squashed)
        return false;
    if (msg.kind == SnoopKind::Read && t->kind == SnoopKind::Read)
        return false; // concurrent reads never conflict

    _c.collisions.inc();
    const auto traceCollision = [&](CollisionOutcome outcome) {
        if (_trace)
            _trace->record(TraceEvent::Collision, _queue.now(), msg.txn,
                           msg.line, t->id,
                           static_cast<std::uint16_t>(node),
                           static_cast<std::uint16_t>(outcome));
    };

    if (msg.kind == SnoopKind::Read) {
        // Passing read vs. our write: the read retries after the write.
        msg.squashed = true;
        _c.squashes.inc();
        traceCollision(CollisionOutcome::PassingSquashed);
        return true;
    }

    // Passing write vs. our read: if our read's data is already on its
    // way (supplied or memory-bound), it serializes before the write and
    // the filled copy is invalidated right after delivery; otherwise the
    // read is squashed and retried after the write.
    if (t->kind == SnoopKind::Read) {
        if (t->dataArrived || t->ringDone || t->memoryPending ||
            t->invalidateOnFill) {
            t->invalidateOnFill = true;
            traceCollision(CollisionOutcome::InvalidateOnFill);
        } else {
            t->squashed = true;
            _c.squashes.inc();
            traceCollision(CollisionOutcome::LocalSquashed);
        }
        return false;
    }

    // Write vs. write: the older transaction wins.
    if (t->id < msg.txn) {
        msg.squashed = true;
        _c.squashes.inc();
        traceCollision(CollisionOutcome::PassingSquashed);
        return true;
    }
    t->squashed = true;
    _c.squashes.inc();
    traceCollision(CollisionOutcome::LocalSquashed);
    return false;
}

bool
CoherenceController::ringSnoopRead(NodeId node, Addr line)
{
    _c.readSnoops.inc();
    _energy.record(EnergyEvent::CmpSnoop);
    return _nodes[node]->hasSupplier(line);
}

bool
CoherenceController::ringSnoopWrite(NodeId node, const SnoopMessage &msg)
{
    _c.writeSnoops.inc();
    _energy.record(EnergyEvent::CmpSnoop);
    FS_LOG(Debug, _queue.now(), "ctrl",
           "write snoop txn " << msg.txn << " line 0x" << std::hex
                              << msg.line << std::dec << " at node "
                              << node);
    return _nodes[node]->invalidateAll(
        msg.line, SIZE_MAX,
        msg.sig.valid() ? msg.sig.l2Set : SIZE_MAX);
}

void
CoherenceController::snoopComplete(NodeId node, SnoopMessage msg)
{
    NodePending *pp = findPending(node, msg.txn);
    if (!pp) {
        // Only reachable when a watchdog closed this transaction and
        // swept its pending state while the CMP snoop was in flight.
        assert(hardened() && "snoop completed with no pending state");
        _c.staleAbsorbed.inc();
        if (_trace)
            _trace->record(TraceEvent::StaleAbsorbed, _queue.now(),
                           msg.txn, msg.line, 0,
                           static_cast<std::uint16_t>(node));
        return;
    }
    NodePending &p = *pp;
    p.snoopPending = false;
    p.snoopDone = true;

    if (p.abandoned) {
        // The requester was already served (a found or squashed message
        // passed us mid-snoop). The snoop itself still happened: count
        // it, then retire quietly.
        bool found;
        if (msg.kind == SnoopKind::Read)
            found = ringSnoopRead(node, msg.line);
        else
            found = ringSnoopWrite(node, msg);
        if (_trace)
            _trace->record(TraceEvent::SnoopDone, _queue.now(), msg.txn,
                           msg.line, 0, static_cast<std::uint16_t>(node),
                           found ? 1 : 0, 1);
        erasePending(node, msg.txn);
        releaseGate(node, msg.line, msg.txn);
        return;
    }

    if (msg.kind == SnoopKind::Read) {
        const bool found = ringSnoopRead(node, msg.line);
        if (_trace)
            _trace->record(TraceEvent::SnoopDone, _queue.now(), msg.txn,
                           msg.line, 0, static_cast<std::uint16_t>(node),
                           found ? 1 : 0);
        if (found) {
            _nodes[node]->supplyRemote(msg.line);
            supplierHit(node, msg, p);
            return;
        }
        if (_policy.usesPredictor()) {
            // The snoop ran after a positive prediction for the
            // positive-snooping policies; train the Exclude cache on the
            // contradiction. (Subset's negative-prediction snoops pass a
            // line that falsePositive() ignores for non-Superset types.)
            if (_policy.onPrediction(true) == p.prim)
                _nodes[node]->predictor()->falsePositive(msg.line);
        }
    } else {
        const bool supplied = ringSnoopWrite(node, msg);
        if (_trace)
            _trace->record(TraceEvent::SnoopDone, _queue.now(), msg.txn,
                           msg.line, 0, static_cast<std::uint16_t>(node),
                           supplied ? 1 : 0);
        if (supplied) {
            // A supplier copy was invalidated: its data travels to the
            // writer over the data network.
            Transaction *t = findTransaction(msg.txn);
            if (t && !t->writeDataSupplied) {
                t->writeDataSupplied = true;
                const Cycle lat = _data.transfer(node, msg.requester);
                const TransactionId id = msg.txn;
                const Addr line = msg.line;
                _queue.schedule(lat, [this, id, line]() {
                    Transaction *txn = findTransaction(id);
                    if (!txn || txn->squashed) {
                        // The only dirty copy is in flight and its
                        // transaction died: preserve it in memory.
                        _memory.writeback(line);
                        return;
                    }
                    txn->dataArrived = true;
                    if (txn->ringDone)
                        completeWrite(*txn);
                });
            }
        }
    }

    // Negative outcome (or a write, which always continues): merge and
    // forward per Table 2.
    if (p.receivedCombined) {
        // All upstream outcomes were already merged into the message we
        // received; emit our own message directly.
        SnoopMessage out = msg;
        out.acksCollected = msg.acksCollected + 1;
        out.visits = msg.visits + 1;
        out.type = p.prim == Primitive::ForwardThenSnoop
                       ? MsgType::SnoopReply // the request went ahead
                       : MsgType::CombinedRR;
        forwardMessage(node, out);
        erasePending(node, msg.txn);
        releaseGate(node, msg.line, msg.txn);
        return;
    }

    // We received a plain request: a trailing reply exists upstream.
    if (p.replyBuffered) {
        SnoopMessage out = p.bufferedReply;
        out.acksCollected += 1;
        // msg is the held *request*: its count is the authoritative ring
        // coverage (the buffered reply's stopped at its last merge).
        out.visits = msg.visits + 1;
        out.type = p.prim == Primitive::SnoopThenForward
                       ? MsgType::CombinedRR
                       : MsgType::SnoopReply;
        forwardMessage(node, out);
        erasePending(node, msg.txn);
        releaseGate(node, msg.line, msg.txn);
        return;
    }
    p.requestVisits = msg.visits + 1;
    p.waitingForReply = true;
}

void
CoherenceController::supplierHit(NodeId node, SnoopMessage msg,
                                 NodePending &p)
{
    p.snoopFound = true;
    p.sentOwn = true;

    _c.readCacheSupplies.inc();
    FS_LOG(Debug, _queue.now(), "ctrl",
           "supplier hit txn " << msg.txn << " line 0x" << std::hex
                               << msg.line << std::dec << " at node "
                               << node);

    // Send the found notification around the remainder of the ring. A
    // node that already forwarded the request (ForwardThenSnoop) owes a
    // trailing reply; a SnoopThenForward node emits a combined R/R.
    SnoopMessage out = msg;
    out.found = true;
    out.supplier = node;
    out.acksCollected = msg.acksCollected + 1;
    out.visits = msg.visits + 1;
    out.type = p.prim == Primitive::ForwardThenSnoop ? MsgType::SnoopReply
                                                     : MsgType::CombinedRR;
    forwardMessage(node, out);

    // Ship the line to the requester over the data network.
    const Cycle lat = _data.transfer(node, msg.requester);
    if (_trace)
        _trace->record(TraceEvent::SupplierHit, _queue.now(), msg.txn,
                       msg.line, lat, static_cast<std::uint16_t>(node));
    const TransactionId id = msg.txn;
    _queue.schedule(lat, [this, id]() {
        if (Transaction *txn = findTransaction(id)) {
            if (txn->squashed)
                return; // the supplier kept its copy; retry refetches
            if (txn->dataArrived)
                return; // duplicated request hit a second supplier
            txn->dataArrived = true;
            deliverReadData(*txn, false);
        }
    });

    // If a trailing reply can still arrive (we received a plain request
    // and have not buffered it yet), keep the pending entry to discard
    // it; otherwise we are done here.
    if (p.receivedCombined || p.replyBuffered)
        erasePending(node, msg.txn);
    releaseGate(node, msg.line, msg.txn);
}

void
CoherenceController::handleTrailingReply(NodeId node,
                                         const SnoopMessage &msg)
{
    NodePending *p = findPending(node, msg.txn);
    if (!p) {
        // Forward node, or a node that already finished its part.
        forwardMessage(node, msg);
        return;
    }
    if (p->sentOwn) {
        // We found the line and already replied; the trailing reply
        // carries no new information (paper Table 2): discard it.
        erasePending(node, msg.txn);
        return;
    }
    if (p->snoopPending) {
        p->replyBuffered = true;
        p->bufferedReply = msg;
        return;
    }
    if (p->waitingForReply) {
        SnoopMessage out = msg;
        // A Forward marker (fault mode) passed the request on without
        // snooping: it contributes coverage, not an ack.
        if (p->prim != Primitive::Forward)
            out.acksCollected += 1;
        out.visits = p->requestVisits;
        out.type = p->prim == Primitive::SnoopThenForward
                       ? MsgType::CombinedRR
                       : MsgType::SnoopReply;
        forwardMessage(node, out);
        erasePending(node, msg.txn);
        releaseGate(node, msg.line, msg.txn);
        return;
    }
    // Unreachable in a correct protocol; keep traffic flowing.
    forwardMessage(node, msg);
    erasePending(node, msg.txn);
    releaseGate(node, msg.line, msg.txn);
}

// --------------------------------------------------------------------------
// Requester side: returns, memory fallback, completion
// --------------------------------------------------------------------------

void
CoherenceController::handleAtRequester(Transaction &txn,
                                       const SnoopMessage &msg)
{
    if (msg.squashed || txn.squashed) {
        if (txn.kind == SnoopKind::Read && txn.dataArrived) {
            // The request kept moving past the supplier and was
            // squashed by a colliding write after the data was already
            // delivered to the core. The load cannot be undone, but the
            // copy must not outlive the write's invalidation round
            // (which may already have passed this node): drop it, as in
            // the invalidate-on-fill case. The found reply still
            // circulating closes the transaction.
            _c.staleSquashes.inc();
            _nodes[txn.requester]->invalidateAll(txn.line);
            return;
        }
        txn.squashed = true;
        retryTransaction(txn);
        finishAndErase(txn.id);
        return;
    }

    // Fault recovery: a duplicated conclusion for a round that already
    // ended -- every effect below was applied when the first copy
    // arrived. (Squashes are handled above even when duplicated: a
    // squash racing a found reply must still invalidate/retry.)
    if (hardened() && txn.ringDone) {
        _c.staleAbsorbed.inc();
        if (_trace)
            _trace->record(TraceEvent::StaleAbsorbed, _queue.now(),
                           txn.id, txn.line, 0,
                           static_cast<std::uint16_t>(txn.requester));
        return;
    }

    if (msg.found) {
        txn.ringDone = true;
        _c.ringRoundsFound.inc();
        if (_trace)
            _trace->record(TraceEvent::RingDone, _queue.now(), txn.id,
                           txn.line, msg.supplier,
                           static_cast<std::uint16_t>(txn.requester), 1);
        if (txn.kind == SnoopKind::Write) {
            if (txn.dataArrived)
                completeWrite(txn);
        } else if (txn.dataArrived) {
            finishAndErase(txn.id); // data was delivered before the ring
        }
        return;
    }

    if (msg.type == MsgType::SnoopRequest) {
        // Our own request came back negative; the trailing reply (or a
        // found reply racing behind it) concludes the round.
        return;
    }

    if (_faults && msg.visits != numNodes() - 1) {
        // Part of the ring never processed the request (it was dropped,
        // or a delayed copy was overtaken by its own trailing reply).
        // Acting on this conclusion would skip live copies -- for a
        // read, fetch a second supplier from memory; for a write, leave
        // stale copies uninvalidated. Absorb it; the watchdog reissues.
        _c.incompleteRejected.inc();
        if (_trace)
            _trace->record(TraceEvent::IncompleteRejected, _queue.now(),
                           txn.id, txn.line, 0,
                           static_cast<std::uint16_t>(txn.requester),
                           static_cast<std::uint16_t>(msg.visits),
                           static_cast<std::uint16_t>(numNodes() - 1));
        FS_LOG(Debug, _queue.now(), "ctrl",
               "reject incomplete conclusion txn "
                   << txn.id << " line 0x" << std::hex << txn.line
                   << std::dec << " (visits " << msg.visits << "/"
                   << numNodes() - 1 << ")");
        return;
    }

    // Negative conclusion: no supplier anywhere on the ring.
    txn.ringDone = true;
    _c.ringRoundsNegative.inc();
    if (_trace)
        _trace->record(TraceEvent::RingDone, _queue.now(), txn.id,
                       txn.line, 0,
                       static_cast<std::uint16_t>(txn.requester), 0);
    if (txn.kind == SnoopKind::Read) {
        goToMemory(txn);
    } else {
        if (txn.writeNeedsData && !txn.writeDataSupplied)
            goToMemory(txn);
        else if (txn.dataArrived)
            completeWrite(txn);
        // else: supplied data still in flight; its arrival completes.
    }
}

void
CoherenceController::goToMemory(Transaction &txn)
{
    txn.memoryPending = true;
    _c.memoryFetches.inc();
    FS_LOG(Debug, _queue.now(), "ctrl",
           "memory fetch txn " << txn.id << " line 0x" << std::hex
                               << txn.line << std::dec);
    const Cycle lat =
        _memory.readLatency(txn.line, txn.requester, _queue.now());
    if (_trace)
        _trace->record(TraceEvent::MemFetch, _queue.now(), txn.id,
                       txn.line, lat,
                       static_cast<std::uint16_t>(txn.requester));
    // Exact-algorithm energy attribution: a memory read that only exists
    // because the predictor downgraded the supplier copy (paper §6.1.4).
    if (consumeDowngradeMarkAnywhere(txn.line))
        _energy.record(EnergyEvent::DowngradeReRead);
    const TransactionId id = txn.id;
    _queue.schedule(lat, [this, id]() {
        if (Transaction *t = findTransaction(id)) {
            if (t->squashed) {
                // Squashed while waiting on memory (an older write won a
                // collision after our ring round ended): the fetched
                // data is dropped and the whole transaction reissues,
                // serializing after the winner.
                retryTransaction(*t);
                finishAndErase(id);
                return;
            }
            t->dataArrived = true;
            t->memoryPending = false;
            if (_trace)
                _trace->record(TraceEvent::MemData, _queue.now(), id,
                               t->line, 0,
                               static_cast<std::uint16_t>(t->requester));
            if (t->kind == SnoopKind::Read)
                deliverReadData(*t, true);
            else
                completeWrite(*t);
        }
    });
}

void
CoherenceController::deliverReadData(Transaction &txn, bool from_memory)
{
    assert(txn.kind == SnoopKind::Read);
    const NodeId n = txn.requester;
    const std::size_t local = localOf(txn.core);
    CmpNode &node = *_nodes[n];
    const Addr line = txn.line;

    if (from_memory) {
        // Two CMPs may race to memory for the same line (read-read does
        // not collide). Only one of them may assume the Global Master
        // role; the home memory controller serializes, so the fill that
        // settles second takes a non-supplier state.
        bool supplier_exists = false;
        for (const auto &other : _nodes)
            supplier_exists = supplier_exists || other->hasSupplier(line);
        if (supplier_exists)
            node.fillFromRemote(local, line);
        else
            node.fillFromMemory(local, line);
        _c.readMemorySupplies.inc();
    } else {
        node.fillFromRemote(local, line);
    }

    const Cycle lat_cycles = _queue.now() - txn.issued;
    const auto latency = static_cast<double>(lat_cycles);
    _c.readLatency.sample(latency);
    _c.readLatencyHist.sample(latency);
    if (_trace)
        _trace->record(TraceEvent::DataDelivered, _queue.now(), txn.id,
                       line, lat_cycles, static_cast<std::uint16_t>(n),
                       from_memory ? 1 : 0);
    complete(txn.core, line, false, 0);
    for (CoreId w : txn.waiters) {
        const std::size_t wl = localOf(w);
        if (!isValidState(node.coreState(wl, line)) &&
            node.hasLocalSupplier(line))
            node.localSupply(wl, line);
        complete(w, line, false, _params.waiterBusDelay);
    }
    txn.waiters.clear();

    if (txn.invalidateOnFill) {
        // A write serialized right behind this read: the data reaches
        // the core(s) but the copies do not persist.
        node.invalidateAll(line);
        _c.invalidateOnFill.inc();
    }

    if (txn.ringDone)
        finishAndErase(txn.id);
    // else: the found message is still circulating; its absorption at
    // the requester finishes the record.
}

void
CoherenceController::completeWrite(Transaction &txn)
{
    assert(txn.kind == SnoopKind::Write);
    const NodeId n = txn.requester;
    const std::size_t local = localOf(txn.core);
    CmpNode &node = *_nodes[n];
    const Addr line = txn.line;

    // Copies that snuck into other local L2s while the (possibly
    // retried) invalidation round was in flight must go before ownership
    // is installed.
    node.invalidateAll(line, local);
    if (isValidState(node.coreState(local, line)))
        node.upgradeToDirty(local, line);
    else
        node.fillForWrite(local, line);

    _c.writeLatency.sample(
        static_cast<double>(_queue.now() - txn.issued));
    if (_trace)
        _trace->record(TraceEvent::WriteComplete, _queue.now(), txn.id,
                       line, _queue.now() - txn.issued,
                       static_cast<std::uint16_t>(n));
    complete(txn.core, line, true, 0);
    finishAndErase(txn.id);
}

void
CoherenceController::finishAndErase(TransactionId id)
{
    Transaction **slot = _transactions.find(id);
    if (!slot)
        return;
    Transaction *txn = *slot;
    const Addr line = txn->line;
    if (_trace)
        _trace->record(TraceEvent::TxnRetire, _queue.now(), id, line, 0,
                       static_cast<std::uint16_t>(txn->requester));
    auto &out = _outstandingByLine[txn->requester];
    const TransactionId *oid = out.find(line);
    if (oid && *oid == id)
        out.erase(line);
    if (std::uint32_t *live = _liveLineRounds.find(line);
        live && --*live == 0)
        _liveLineRounds.erase(line);
    _transactions.erase(id);
    _txnPool.release(txn);
    // Bridge decisions are per-transaction state; the id is recycled
    // eventually, so they must not outlive the record.
    for (auto &decisions : _bridgeDecisions)
        decisions.erase(id);
    // Fault recovery: traffic of this transaction may still be stuck in
    // pending entries or line gates (its messages were dropped, or the
    // watchdog closed it early). Reclaim them so the line cannot wedge;
    // drained stale messages are absorbed on re-entry.
    if (hardened())
        sweepTransactionState(id, line);
}

void
CoherenceController::retryTransaction(const Transaction &txn)
{
    if (txn.retries >= _params.maxRetries) {
        _c.retryStormAborts.inc();
        std::ostringstream os;
        os << "retry storm: core " << txn.core << " exceeded "
           << _params.maxRetries << " reissues of "
           << (txn.kind == SnoopKind::Read ? "read" : "write")
           << " to contended line 0x" << std::hex << txn.line << std::dec
           << " at cycle " << _queue.now() << "\n";
        dumpOutstanding(os);
        throw RetryStormError(txn.line, txn.retries, os.str());
    }
    _c.retries.inc();
    if (_trace)
        _trace->record(TraceEvent::RetryScheduled, _queue.now(), txn.id,
                       txn.line,
                       retryBackoffCycles(_params, txn.retries + 1),
                       static_cast<std::uint16_t>(txn.requester),
                       static_cast<std::uint16_t>(txn.retries + 1));
    const CoreId core = txn.core;
    const Addr line = txn.line;
    const SnoopKind kind = txn.kind;
    const unsigned retries = txn.retries + 1;
    const auto waiters = txn.waiters;
    scheduleRetry(core, line, kind, retries, waiters);
}

void
CoherenceController::scheduleRetry(CoreId core, Addr line, SnoopKind kind,
                                   unsigned retries,
                                   std::vector<CoreId> waiters)
{
    // Exponential backoff keeps retry storms on heavily-contended lines
    // from compounding.
    const Cycle backoff = retryBackoffCycles(_params, retries);
    _queue.schedule(backoff, [this, core, line, kind, retries,
                              waiters]() {
        // Re-enter through the full request path: the world may have
        // changed during the backoff -- the line can now be a local L2
        // hit or locally suppliable (the ring never snoops the
        // requester's own CMP, so going straight back to the ring would
        // fetch stale data from memory), or another local transaction
        // may be mergeable. Former waiters re-issue individually and
        // merge/hit as appropriate.
        if (kind == SnoopKind::Read) {
            coreRead(core, line, retries);
            for (CoreId w : waiters)
                coreRead(w, line);
        } else {
            coreWrite(core, line, retries);
        }
    });
}

void
CoherenceController::dumpOutstanding(std::ostream &os) const
{
    _transactions.forEach([&os](TransactionId id, Transaction *txn) {
        os << "txn " << id << " line 0x" << std::hex << txn->line
           << std::dec << " kind "
           << (txn->kind == SnoopKind::Read ? "R" : "W") << " node "
           << txn->requester << " core " << txn->core << " dataArrived "
           << txn->dataArrived << " ringDone " << txn->ringDone
           << " squashed " << txn->squashed << " memPending "
           << txn->memoryPending << " needsData " << txn->writeNeedsData
           << " supplied " << txn->writeDataSupplied << " waiters "
           << txn->waiters.size() << '\n';
    });
    for (NodeId n = 0; n < _pending.size(); ++n) {
        _pending[n].forEach([&os, n](TransactionId id,
                                     const NodePending *p) {
            os << "pending node " << n << " txn " << id << " prim "
               << toString(p->prim) << " combined " << p->receivedCombined
               << " snoopPending " << p->snoopPending << " done "
               << p->snoopDone << " found " << p->snoopFound << " sentOwn "
               << p->sentOwn << " buffered " << p->replyBuffered
               << " waiting " << p->waitingForReply << '\n';
        });
    }
    for (NodeId n = 0; n < _gates.size(); ++n) {
        _gates[n].forEach([&os, n](Addr line, const GateLine *gate) {
            os << "gate node " << n << " line 0x" << std::hex << line
               << std::dec << " active " << gate->active << " deferred "
               << gate->deferred.size() << '\n';
        });
    }
    for (std::size_t b = 0; b < _bridgeDecisions.size(); ++b) {
        _bridgeDecisions[b].forEach([&os, b](TransactionId id,
                                             std::uint8_t action) {
            os << "bridge block " << b << " txn " << id << " action "
               << (static_cast<BridgeAction>(action) == BridgeAction::Skip
                       ? "skip"
                       : "descend")
               << '\n';
        });
    }
}

bool
CoherenceController::consumeDowngradeMarkAnywhere(Addr line)
{
    bool any = false;
    for (auto &node : _nodes)
        any = node->consumeDowngradeMark(line) || any;
    return any;
}

} // namespace flexsnoop
