#include "coherence/checker.hh"

#include <map>
#include <sstream>

#include "mem/line_state.hh"

namespace flexsnoop
{

std::vector<CoherenceChecker::Violation>
CoherenceChecker::check() const
{
    struct Copy
    {
        NodeId node;
        std::size_t core;
        LineState state;
    };

    std::map<Addr, std::vector<Copy>> copies;
    for (NodeId n = 0; n < _nodes.size(); ++n) {
        _nodes[n]->forEachLine([&](std::size_t core, Addr line,
                                   LineState st) {
            copies[line].push_back(Copy{n, core, st});
        });
    }

    std::vector<Violation> violations;
    auto report = [&](Addr line, const std::string &what) {
        violations.push_back(Violation{line, what});
    };

    for (const auto &[line, holders] : copies) {
        unsigned suppliers = 0;
        for (const auto &c : holders)
            suppliers += isSupplierState(c.state);
        if (suppliers > 1) {
            std::ostringstream oss;
            oss << suppliers << " supplier copies:";
            for (const auto &c : holders) {
                if (isSupplierState(c.state))
                    oss << " cmp" << c.node << ".l2." << c.core << "="
                        << toString(c.state);
            }
            report(line, oss.str());
        }

        // One SL per CMP.
        std::map<NodeId, unsigned> sl_per_cmp;
        for (const auto &c : holders) {
            if (c.state == LineState::SharedLocal)
                ++sl_per_cmp[c.node];
        }
        for (const auto &[node, count] : sl_per_cmp) {
            if (count > 1) {
                std::ostringstream oss;
                oss << count << " SL copies within cmp" << node;
                report(line, oss.str());
            }
        }

        // Pairwise compatibility matrix.
        for (std::size_t i = 0; i < holders.size(); ++i) {
            for (std::size_t j = i + 1; j < holders.size(); ++j) {
                const auto &a = holders[i];
                const auto &b = holders[j];
                const bool same_cmp = a.node == b.node;
                if (!statesCompatible(a.state, b.state, same_cmp)) {
                    std::ostringstream oss;
                    oss << "incompatible states: cmp" << a.node << ".l2."
                        << a.core << "=" << toString(a.state) << " vs cmp"
                        << b.node << ".l2." << b.core << "="
                        << toString(b.state)
                        << (same_cmp ? " (same CMP)" : "");
                    report(line, oss.str());
                }
            }
        }
    }
    return violations;
}

} // namespace flexsnoop
