#include "coherence/checker.hh"

#include <algorithm>
#include <sstream>

#include "mem/line_state.hh"

namespace flexsnoop
{

std::vector<CoherenceChecker::Violation>
CoherenceChecker::check() const
{
    struct Copy
    {
        Addr line;
        NodeId node;
        std::size_t core;
        LineState state;
    };

    // One flat scan sorted by (line, node, core) instead of a std::map
    // of vectors rebuilt per check: a single allocation, and grouped
    // iteration over contiguous ranges. The sort reproduces the old
    // map's deterministic report order (lines ascending; within a line,
    // forEachLine's node-then-core order).
    std::vector<Copy> copies;
    for (NodeId n = 0; n < _nodes.size(); ++n) {
        _nodes[n]->forEachLine(
            [&](std::size_t core, Addr line, LineState st) {
                copies.push_back(Copy{line, n, core, st});
            });
    }
    std::sort(copies.begin(), copies.end(),
              [](const Copy &a, const Copy &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.core < b.core;
              });

    std::vector<Violation> violations;
    auto report = [&](Addr line, const std::string &what) {
        violations.push_back(Violation{line, what});
    };

    for (std::size_t begin = 0; begin < copies.size();) {
        std::size_t end = begin + 1;
        while (end < copies.size() && copies[end].line == copies[begin].line)
            ++end;
        const Addr line = copies[begin].line;

        unsigned suppliers = 0;
        for (std::size_t i = begin; i < end; ++i)
            suppliers += isSupplierState(copies[i].state);
        if (suppliers > 1) {
            std::ostringstream oss;
            oss << suppliers << " supplier copies:";
            for (std::size_t i = begin; i < end; ++i) {
                const Copy &c = copies[i];
                if (isSupplierState(c.state))
                    oss << " cmp" << c.node << ".l2." << c.core << "="
                        << toString(c.state);
            }
            report(line, oss.str());
        }

        // One SL per CMP: copies of a line within one CMP are adjacent
        // after the sort, so a linear run count replaces the old
        // per-line std::map<NodeId, unsigned>.
        for (std::size_t i = begin; i < end;) {
            std::size_t cmp_end = i + 1;
            while (cmp_end < end && copies[cmp_end].node == copies[i].node)
                ++cmp_end;
            unsigned sl = 0;
            for (std::size_t j = i; j < cmp_end; ++j)
                sl += copies[j].state == LineState::SharedLocal;
            if (sl > 1) {
                std::ostringstream oss;
                oss << sl << " SL copies within cmp" << copies[i].node;
                report(line, oss.str());
            }
            i = cmp_end;
        }

        // Pairwise compatibility matrix.
        for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = i + 1; j < end; ++j) {
                const Copy &a = copies[i];
                const Copy &b = copies[j];
                const bool same_cmp = a.node == b.node;
                if (!statesCompatible(a.state, b.state, same_cmp)) {
                    std::ostringstream oss;
                    oss << "incompatible states: cmp" << a.node << ".l2."
                        << a.core << "=" << toString(a.state) << " vs cmp"
                        << b.node << ".l2." << b.core << "="
                        << toString(b.state)
                        << (same_cmp ? " (same CMP)" : "");
                    report(line, oss.str());
                }
            }
        }

        // Audit the CmpNodes' incrementally tracked per-line state (the
        // copy counts and supplier sets the controller's hot path reads)
        // against this ground-truth scan: a desync would silently skew
        // every predictor decision downstream.
        for (std::size_t i = begin; i < end;) {
            std::size_t cmp_end = i + 1;
            while (cmp_end < end && copies[cmp_end].node == copies[i].node)
                ++cmp_end;
            const CmpNode &cmp = *_nodes[copies[i].node];
            const unsigned scanned =
                static_cast<unsigned>(cmp_end - i);
            if (cmp.copyCount(line) != scanned) {
                std::ostringstream oss;
                oss << "cmp" << copies[i].node << " tracks "
                    << cmp.copyCount(line) << " copies, scan found "
                    << scanned;
                report(line, oss.str());
            }
            std::size_t supplier_core = SIZE_MAX;
            for (std::size_t j = i; j < cmp_end; ++j) {
                if (isSupplierState(copies[j].state))
                    supplier_core = copies[j].core;
            }
            if (cmp.supplierCore(line) != supplier_core) {
                std::ostringstream oss;
                oss << "cmp" << copies[i].node
                    << " supplier tracking desync: tracked core "
                    << static_cast<long long>(cmp.supplierCore(line))
                    << ", scan found "
                    << static_cast<long long>(supplier_core);
                report(line, oss.str());
            }
            i = cmp_end;
        }

        begin = end;
    }
    return violations;
}

} // namespace flexsnoop
