/**
 * @file
 * Ring express path: coalescing of pure pass-through hop chains.
 *
 * Most snoop messages traverse most nodes without stopping (the paper's
 * whole premise), yet the per-hop simulation pays one scheduled event
 * plus one handler dispatch per hop. When a message leaves a node, the
 * express path *probes* the entire remaining run to the requester —
 * downstream predictors (through their side-effect-free wouldPredict()
 * surface), gateway gates, outstanding-line tables, cache state and
 * link occupancy — and, if the whole run can be computed analytically,
 * schedules a single retirement event at the requester instead of one
 * event per hop.
 *
 * Correctness model (the equivalence test enforces bit-identical
 * statistics against the per-hop path):
 *
 *  - A plan is only created when the event queue is *quiescent* over
 *    the plan's whole window: no pending event fires at or before the
 *    retirement cycle. Nothing can observe or perturb the window, so
 *    all per-hop side effects (snoop counters, energy, predictor
 *    training, home-node prefetch notification with its historical
 *    timestamp, link occupancy) can be replayed in order at
 *    retirement time with the real mutating calls.
 *  - The only thing that can interfere is the *remainder of the
 *    current event*. Any scheduleAt() at or before the retirement
 *    cycle, or another send while a plan is active, cancels the plan:
 *    the retirement entry is retargeted (keeping its sequence number,
 *    hence its FIFO rank) to the plain per-hop first-link arrival, so
 *    a cancelled plan is indistinguishable from never having planned.
 *  - Anything the walker cannot prove pure — a possible supplier, a
 *    held gate, a colliding outstanding line, a busy link, a found or
 *    squashed message — refuses the plan and the message travels
 *    per-hop.
 *
 * Disabled by CoherenceParams::ringExpress=false or the
 * FLEXSNOOP_STRICT_RING environment variable (strict mode: every hop
 * is simulated).
 */

#ifndef FLEXSNOOP_COHERENCE_EXPRESS_HH
#define FLEXSNOOP_COHERENCE_EXPRESS_HH

#include <cstdint>

#include "net/message.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class CoherenceController;
class Ring;

class ExpressPath
{
  public:
    explicit ExpressPath(CoherenceController &ctrl);
    ~ExpressPath();

    ExpressPath(const ExpressPath &) = delete;
    ExpressPath &operator=(const ExpressPath &) = delete;

    /**
     * Attempt to virtualize the send of @p msg leaving @p from.
     * @return true when a coalesced plan was created and the caller
     *         must not perform the per-hop send.
     */
    bool trySend(NodeId from, const SnoopMessage &msg);

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    /**
     * Walk the remaining path of @p msg from @p from (send time @p t0)
     * to its requester, mirroring handleIntermediate / snoopComplete /
     * handleTrailingReply analytically.
     *
     * With @p apply false this is a pure probe: no state is touched
     * and any obstacle returns false. With @p apply true it replays
     * every per-hop side effect through the real mutating calls
     * (probe-time refusals become assertions: the quiescent window
     * guarantees nothing changed).
     *
     * On success *@p t_retire is the cycle the final message reaches
     * the requester and *@p final_msg is that message.
     */
    bool walk(bool apply, NodeId from, const SnoopMessage &msg, Cycle t0,
              Cycle *t_retire, SnoopMessage *final_msg);

    /** Retirement event: replay the walk, then deliver at the requester. */
    void retire();

    /** Same-cycle fall-back: retarget the retirement entry into the
     *  per-hop first-link arrival (sequence number preserved). */
    void cancel();

    /** EventQueue schedule observer (trampoline to cancel()). */
    static void observe(void *self, Cycle when);

    CoherenceController &_ctrl;

    bool _active = false;
    NodeId _planFrom = 0;
    Cycle _planT0 = 0;
    Cycle _planRetire = 0;
    std::uint64_t _planSeq = 0;
    SnoopMessage _planMsg;
    Ring *_planRing = nullptr;

    StatGroup _stats{"express"};
    Counter &_plans = _stats.counter("plans_created");
    Counter &_cancelled = _stats.counter("plans_cancelled");
    Counter &_retired = _stats.counter("plans_retired");
    Counter &_hopsVirtualized = _stats.counter("hops_virtualized");
    Counter &_sendsVirtualized = _stats.counter("sends_virtualized");
    Counter &_probeRejects = _stats.counter("probe_rejects");
};

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_EXPRESS_HH
