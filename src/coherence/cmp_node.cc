#include "coherence/cmp_node.hh"

#include <cassert>

#include "sim/log.hh"

namespace flexsnoop
{

CmpNode::CmpNode(NodeId id, std::size_t num_cores, std::size_t l2_entries,
                 std::size_t l2_ways)
    : _id(id), _stats("cmp" + std::to_string(id)),
      _dirtyEvictions(_stats.counter("dirty_evictions")),
      _localSupplies(_stats.counter("local_supplies")),
      _remoteSupplies(_stats.counter("remote_supplies")),
      _downgradesStat(_stats.counter("downgrades"))
{
    assert(num_cores >= 1);
    _l2s.reserve(num_cores);
    for (std::size_t c = 0; c < num_cores; ++c) {
        auto l2 = std::make_unique<L2Cache>(
            "cmp" + std::to_string(id) + ".l2." + std::to_string(c),
            l2_entries, l2_ways);
        l2->setTransitionHook(
            [this, c](Addr line, LineState from, LineState to) {
                onTransition(c, line, from, to);
            });
        _l2s.push_back(std::move(l2));
    }
}

void
CmpNode::setPredictor(std::unique_ptr<SupplierPredictor> predictor)
{
    _predictor = std::move(predictor);
    if (!_predictor)
        return;
    // Predictors may be installed after lines exist (tests); sync them.
    _suppliers.forEach([this](Addr line, std::size_t) {
        _predictor->supplierGained(line);
    });
}

void
CmpNode::setPresencePredictor(std::unique_ptr<PresencePredictor> pred)
{
    _presence = std::move(pred);
    if (!_presence)
        return;
    _copyCounts.forEach(
        [this](Addr line, unsigned) { _presence->linePresent(line); });
}

void
CmpNode::setAggregateMirrors(PresencePredictor *supplier_agg,
                             PresencePredictor *presence_agg)
{
    _supplierAgg = supplier_agg;
    _presenceAgg = presence_agg;
    if (_supplierAgg) {
        _suppliers.forEach([this](Addr line, std::size_t) {
            _supplierAgg->linePresent(line);
        });
    }
    if (_presenceAgg) {
        _copyCounts.forEach([this](Addr line, unsigned) {
            _presenceAgg->linePresent(line);
        });
    }
}

void
CmpNode::onTransition(std::size_t core, Addr line, LineState from,
                      LineState to)
{
    // Presence tracking: first copy in / last copy out of the CMP.
    if (!isValidState(from) && isValidState(to)) {
        if (++_copyCounts.getOrCreate(line) == 1) {
            if (_presence)
                _presence->linePresent(line);
            if (_presenceAgg)
                _presenceAgg->linePresent(line);
        }
    } else if (isValidState(from) && !isValidState(to)) {
        unsigned *count = _copyCounts.find(line);
        assert(count != nullptr && *count > 0);
        if (--*count == 0) {
            _copyCounts.erase(line);
            if (_presence)
                _presence->lineAbsent(line);
            if (_presenceAgg)
                _presenceAgg->lineAbsent(line);
        }
    }

    const bool was_supplier = isSupplierState(from);
    const bool is_supplier = isSupplierState(to);
    if (was_supplier && !is_supplier) {
        assert(_suppliers.find(line) && *_suppliers.find(line) == core);
        _suppliers.erase(line);
        if (_predictor)
            _predictor->supplierLost(line);
        if (_supplierAgg)
            _supplierAgg->lineAbsent(line);
    } else if (!was_supplier && is_supplier) {
        if (const std::size_t *other = _suppliers.find(line)) {
            FS_LOG(Error, 0, "cmp",
                   "cmp " << _id << " second supplier: line 0x" << std::hex
                          << line << std::dec << " core " << core << " "
                          << toString(from) << "->" << toString(to)
                          << " existing core " << *other << " in "
                          << toString(_l2s[*other]->state(line)));
        }
        assert(!_suppliers.contains(line) &&
               "second supplier copy within one CMP");
        _suppliers.put(line, core);
        if (_predictor)
            _predictor->supplierGained(line);
        if (_supplierAgg)
            _supplierAgg->linePresent(line);
    }

    // Track the local master (SL holder). SG/E/D/T holders implicitly
    // dominate SL for local-supply purposes, so only SL itself is here.
    const bool was_sl = from == LineState::SharedLocal;
    const bool is_sl = to == LineState::SharedLocal;
    if (was_sl && !is_sl)
        _localMasters.erase(line);
    else if (!was_sl && is_sl) {
        assert(!_localMasters.contains(line) &&
               "second local-master copy within one CMP");
        _localMasters.put(line, core);
    }
}

LineState
CmpNode::coreState(std::size_t local_core, Addr line) const
{
    return _l2s[local_core]->state(lineAddr(line));
}

bool
CmpNode::hasSupplier(Addr line) const
{
    return _suppliers.contains(lineAddr(line));
}

std::size_t
CmpNode::supplierCore(Addr line) const
{
    const std::size_t *core = _suppliers.find(lineAddr(line));
    return core ? *core : SIZE_MAX;
}

bool
CmpNode::hasLocalSupplier(Addr line) const
{
    line = lineAddr(line);
    return _suppliers.contains(line) || _localMasters.contains(line);
}

std::size_t
CmpNode::localSupplierCore(Addr line) const
{
    line = lineAddr(line);
    if (const std::size_t *core = _suppliers.find(line))
        return *core;
    if (const std::size_t *core = _localMasters.find(line))
        return *core;
    return SIZE_MAX;
}

bool
CmpNode::hasAnyCopy(Addr line) const
{
    return _copyCounts.contains(lineAddr(line));
}

unsigned
CmpNode::copyCount(Addr line) const
{
    const unsigned *count = _copyCounts.find(lineAddr(line));
    return count ? *count : 0;
}

void
CmpNode::handleEviction(const L2Cache::Eviction &ev)
{
    if (!ev.valid)
        return;
    if (isDirtyState(ev.state)) {
        _dirtyEvictions.inc();
        if (_writeback)
            _writeback(ev.addr, false);
    }
}

void
CmpNode::localSupply(std::size_t reader, Addr line)
{
    line = lineAddr(line);
    const std::size_t src = localSupplierCore(line);
    assert(src != SIZE_MAX && src != reader);
    const LineState src_state = _l2s[src]->state(line);
    // Sharing adjusts the supplier's state: clean exclusive becomes the
    // global master, dirty exclusive becomes Tagged (dirty-shared).
    if (src_state == LineState::Exclusive)
        _l2s[src]->changeState(line, LineState::SharedGlobal);
    else if (src_state == LineState::Dirty)
        _l2s[src]->changeState(line, LineState::Tagged);
    _l2s[src]->touch(line);
    handleEviction(_l2s[reader]->fill(line, LineState::Shared));
    _localSupplies.inc();
}

void
CmpNode::supplyRemote(Addr line)
{
    line = lineAddr(line);
    const std::size_t src = supplierCore(line);
    assert(src != SIZE_MAX);
    const LineState src_state = _l2s[src]->state(line);
    if (src_state == LineState::Exclusive)
        _l2s[src]->changeState(line, LineState::SharedGlobal);
    else if (src_state == LineState::Dirty)
        _l2s[src]->changeState(line, LineState::Tagged);
    _l2s[src]->touch(line);
    _remoteSupplies.inc();
}

void
CmpNode::fillFromRemote(std::size_t reader, Addr line)
{
    line = lineAddr(line);
    // The reader brought the line into the CMP from outside: it becomes
    // the local master -- unless a concurrent transaction beat it to it.
    const LineState st = hasLocalSupplier(line) ? LineState::Shared
                                                : LineState::SharedLocal;
    handleEviction(_l2s[reader]->fill(line, st));
}

void
CmpNode::fillFromMemory(std::size_t reader, Addr line)
{
    line = lineAddr(line);
    // The reader brought the line from memory: global master. If a
    // concurrent transaction installed a supplier first, demote to S.
    const LineState st = hasSupplier(line) || _localMasters.contains(line)
                             ? LineState::Shared
                             : LineState::SharedGlobal;
    handleEviction(_l2s[reader]->fill(line, st));
}

bool
CmpNode::invalidateAll(Addr line, std::size_t skip_core, std::size_t l2_set)
{
    line = lineAddr(line);
    // All local L2s share geometry: resolve the set once (or take the
    // one the ring message's probe signature carries) instead of
    // re-deriving it per core and per state/invalidate call.
    const std::size_t set =
        l2_set != SIZE_MAX ? l2_set : _l2s[0]->setIndex(line);
    assert(set == _l2s[0]->setIndex(line));
    bool had_supplier = false;
    for (std::size_t c = 0; c < _l2s.size(); ++c) {
        if (c == skip_core)
            continue;
        const LineState st = _l2s[c]->state(line, set);
        if (!isValidState(st))
            continue;
        if (isSupplierState(st))
            had_supplier = true;
        _l2s[c]->invalidate(line, set);
    }
    return had_supplier;
}

void
CmpNode::fillForWrite(std::size_t writer, Addr line)
{
    line = lineAddr(line);
    handleEviction(_l2s[writer]->fill(line, LineState::Dirty));
}

void
CmpNode::upgradeToDirty(std::size_t writer, Addr line)
{
    line = lineAddr(line);
    assert(isValidState(_l2s[writer]->state(line)));
    _l2s[writer]->changeState(line, LineState::Dirty);
    _l2s[writer]->touch(line);
}

bool
CmpNode::downgrade(Addr line)
{
    line = lineAddr(line);
    const std::size_t src = supplierCore(line);
    if (src == SIZE_MAX)
        return false; // already lost supplier state (e.g. race)
    const LineState st = _l2s[src]->state(line);
    assert(isSupplierState(st));
    bool wrote_back = false;
    if (isDirtyState(st)) {
        if (_writeback)
            _writeback(line, true);
        wrote_back = true;
    }
    FS_LOG(Debug, 0, "cmp",
           "downgrade cmp " << _id << " core " << src << " line 0x"
                            << std::hex << line << std::dec << " from "
                            << toString(st));
    // SL is unique per CMP; a supplier holder excludes other SL copies
    // in the same CMP, so demoting to SL is always legal here.
    _l2s[src]->changeState(line, LineState::SharedLocal);
    _downgradeMarks.put(line, 1);
    _downgradesStat.inc();
    return wrote_back;
}

bool
CmpNode::consumeDowngradeMark(Addr line)
{
    return _downgradeMarks.erase(lineAddr(line));
}

} // namespace flexsnoop
