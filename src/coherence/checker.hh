/**
 * @file
 * Coherence invariant checker.
 *
 * Validates the global cache state against the protocol's rules (paper
 * Figure 2-(b) and §2.2):
 *  1. every pair of copies of a line satisfies the compatibility matrix;
 *  2. at most one cache in the machine holds a line in a supplier state
 *     (SG, E, D, T);
 *  3. at most one cache per CMP holds a line in SL;
 *  4. E and D copies are globally unique (no other valid copy).
 *
 * Used by the tests (after randomized traffic) and optionally sampled
 * during long simulations.
 */

#ifndef FLEXSNOOP_COHERENCE_CHECKER_HH
#define FLEXSNOOP_COHERENCE_CHECKER_HH

#include <memory>
#include <string>
#include <vector>

#include "coherence/cmp_node.hh"

namespace flexsnoop
{

class CoherenceChecker
{
  public:
    /** One detected violation, human-readable. */
    struct Violation
    {
        Addr line;
        std::string description;
    };

    explicit CoherenceChecker(
        const std::vector<std::unique_ptr<CmpNode>> &nodes)
        : _nodes(nodes)
    {
    }

    /**
     * Scan all caches; @return every violated invariant (empty = OK).
     */
    std::vector<Violation> check() const;

    /** Convenience: true when no invariant is violated. */
    bool consistent() const { return check().empty(); }

  private:
    const std::vector<std::unique_ptr<CmpNode>> &_nodes;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_CHECKER_HH
