/**
 * @file
 * One CMP of the machine: several cores with private L2s, the intra-CMP
 * shared bus, and the ring gateway's Supplier Predictor.
 *
 * The CmpNode owns all protocol state transitions of its L2s and keeps
 * the CMP's supplier set (lines held in SG/E/D/T by one of its caches)
 * coherent with the Supplier Predictor through the L2 transition hooks.
 */

#ifndef FLEXSNOOP_COHERENCE_CMP_NODE_HH
#define FLEXSNOOP_COHERENCE_CMP_NODE_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/l2_cache.hh"
#include "mem/line_state.hh"
#include "predictor/presence_predictor.hh"
#include "predictor/supplier_predictor.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class CmpNode
{
  public:
    /** Writeback sink: a dirty line leaves the CMP towards memory. */
    using WritebackFn = std::function<void(Addr line, bool from_downgrade)>;

    /**
     * @param id        ring position of this CMP
     * @param num_cores cores (= private L2s) in the CMP
     * @param l2_entries / @p l2_ways geometry of each L2
     */
    CmpNode(NodeId id, std::size_t num_cores, std::size_t l2_entries,
            std::size_t l2_ways);

    NodeId id() const { return _id; }
    std::size_t numCores() const { return _l2s.size(); }

    /** Install the (optional) Supplier Predictor; may be nullptr. */
    void setPredictor(std::unique_ptr<SupplierPredictor> predictor);
    SupplierPredictor *predictor() { return _predictor.get(); }
    const SupplierPredictor *predictor() const { return _predictor.get(); }

    /**
     * Install the (optional) presence predictor for write-snoop
     * filtering; synchronizes with the lines already cached.
     */
    void setPresencePredictor(std::unique_ptr<PresencePredictor> pred);
    PresencePredictor *presencePredictor() { return _presence.get(); }
    const PresencePredictor *presencePredictor() const
    {
        return _presence.get();
    }

    /**
     * Install (or remove, with nullptrs) the bridge gateway's aggregate
     * predictors of this CMP's block (hier topology). They mirror this
     * node's supplier-set and presence transitions: @p supplier_agg is
     * trained on supplier gained/lost, @p presence_agg on first-copy-in
     * / last-copy-out. Both counting Blooms, so the per-member updates
     * of one block compose; not owned. Synchronizes with the lines
     * already cached on install.
     */
    void setAggregateMirrors(PresencePredictor *supplier_agg,
                             PresencePredictor *presence_agg);

    void setWritebackFn(WritebackFn fn) { _writeback = std::move(fn); }

    // --- State queries -------------------------------------------------

    /** State of @p line in local core @p local_core's L2. */
    LineState coreState(std::size_t local_core, Addr line) const;

    /** Does any local L2 hold @p line in a ring-supplier state? */
    bool hasSupplier(Addr line) const;

    /** Local L2 index holding the supplier copy, or SIZE_MAX. */
    std::size_t supplierCore(Addr line) const;

    /** Does any local L2 hold @p line in a *local*-supplier state? */
    bool hasLocalSupplier(Addr line) const;

    /** Local L2 index that can supply locally (SL or supplier). */
    std::size_t localSupplierCore(Addr line) const;

    /** Does any local L2 hold a valid copy of @p line? */
    bool hasAnyCopy(Addr line) const;

    /** Number of local L2s holding a valid copy of @p line (checker
     *  support: the coherence checker audits its scan against this). */
    unsigned copyCount(Addr line) const;

    /** Number of lines currently in the CMP's supplier set. */
    std::size_t supplierSetSize() const { return _suppliers.size(); }

    // --- Read-transaction transitions ----------------------------------

    /**
     * Local core @p reader reads a line another local L2 supplies.
     * Adjusts the supplier's state (E->SG, D->T) and fills the reader in
     * S. Requires hasLocalSupplier(line).
     */
    void localSupply(std::size_t reader, Addr line);

    /**
     * A ring read snoop hit: this CMP supplies @p line to another CMP.
     * Adjusts the supplier state (E->SG, D->T). Requires
     * hasSupplier(line).
     */
    void supplyRemote(Addr line);

    /** Fill @p line into @p reader's L2 after a remote cache supplied it
     *  (state SL, or S when a local master already exists). */
    void fillFromRemote(std::size_t reader, Addr line);

    /** Fill @p line into @p reader's L2 after memory supplied it (SG). */
    void fillFromMemory(std::size_t reader, Addr line);

    // --- Write-transaction transitions ---------------------------------

    /**
     * A write invalidation (local or from the ring) hits this CMP.
     * Invalidates every local copy of @p line.
     *
     * @param skip_core local L2 to preserve (the writer), SIZE_MAX = none
     * @param l2_set    the line's L2 set index when the caller carries it
     *                  (ring messages' probe signatures); SIZE_MAX =
     *                  derive from the address
     * @return true if an invalidated copy was in a supplier state (its
     *         data travels to the writer, so no writeback is needed)
     */
    bool invalidateAll(Addr line, std::size_t skip_core = SIZE_MAX,
                       std::size_t l2_set = SIZE_MAX);

    /** Fill @p line as Dirty into @p writer's L2 (write completion). */
    void fillForWrite(std::size_t writer, Addr line);

    /** Upgrade @p writer's existing copy to Dirty (write completion). */
    void upgradeToDirty(std::size_t writer, Addr line);

    // --- Exact-predictor downgrade path ---------------------------------

    /**
     * Demote @p line from its supplier state (paper §4.3.3): SG/E become
     * SL silently; D/T are written back and kept in SL.
     * @return true if a writeback was issued.
     */
    bool downgrade(Addr line);

    /** Lines downgraded by the predictor whose next memory read is
     *  attributable to Exact (consumed by the controller). */
    bool consumeDowngradeMark(Addr line);

    // --- Infrastructure -------------------------------------------------

    L2Cache &l2(std::size_t local_core) { return *_l2s[local_core]; }
    const L2Cache &l2(std::size_t local_core) const
    {
        return *_l2s[local_core];
    }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** Visit every valid line of every local L2 (checker support). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (std::size_t c = 0; c < _l2s.size(); ++c) {
            _l2s[c]->forEachLine([&](Addr a, LineState s) { fn(c, a, s); });
        }
    }

  private:
    void onTransition(std::size_t core, Addr line, LineState from,
                      LineState to);
    void handleEviction(const L2Cache::Eviction &ev);

    NodeId _id;
    std::vector<std::unique_ptr<L2Cache>> _l2s;
    std::unique_ptr<SupplierPredictor> _predictor;
    std::unique_ptr<PresencePredictor> _presence;
    // Bridge aggregates of this node's block (hier topology; not owned).
    PresencePredictor *_supplierAgg = nullptr;
    PresencePredictor *_presenceAgg = nullptr;
    WritebackFn _writeback;

    // Per-line CMP state, all on the per-hop snoop path: open-addressing
    // FlatMaps (sim/flat_map.hh) — no per-insert node allocation, and a
    // probe touches one contiguous table instead of chasing buckets.
    /** line -> number of local L2s holding a valid copy. */
    FlatMap<unsigned> _copyCounts;
    /** line -> local L2 index holding the supplier copy. */
    FlatMap<std::size_t> _suppliers;
    /** line -> local L2 index holding the SL (local master) copy. */
    FlatMap<std::size_t> _localMasters;
    /** lines force-downgraded by the Exact predictor (energy
     *  attribution); value is a presence byte (FlatMap<bool> would hit
     *  the vector<bool> proxy). */
    FlatMap<std::uint8_t> _downgradeMarks;

    StatGroup _stats;
    // Cached handles for per-transaction supply/eviction accounting.
    Counter &_dirtyEvictions;
    Counter &_localSupplies;
    Counter &_remoteSupplies;
    Counter &_downgradesStat;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_CMP_NODE_HH
