/**
 * @file
 * The request interface cores drive: issue reads/writes, receive
 * completions. Implemented by the embedded-ring CoherenceController
 * and by the directory-protocol comparator, so the same workload
 * runner exercises both.
 */

#ifndef FLEXSNOOP_COHERENCE_REQUEST_PORT_HH
#define FLEXSNOOP_COHERENCE_REQUEST_PORT_HH

#include <functional>

#include "sim/types.hh"

namespace flexsnoop
{

class RequestPort
{
  public:
    /** Completion callback: (core, line, was_write). */
    using CompletionFn = std::function<void(CoreId, Addr, bool)>;

    virtual ~RequestPort() = default;

    /** Issue a read; completion always arrives via the handler. */
    virtual void coreRead(CoreId core, Addr addr, unsigned retries = 0) = 0;

    /** Issue a write. */
    virtual void coreWrite(CoreId core, Addr addr,
                           unsigned retries = 0) = 0;

    virtual void setCompletionHandler(CompletionFn fn) = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_REQUEST_PORT_HH
