/**
 * @file
 * Timing parameters of the coherence fabric (paper Table 4).
 */

#ifndef FLEXSNOOP_COHERENCE_COHERENCE_PARAMS_HH
#define FLEXSNOOP_COHERENCE_COHERENCE_PARAMS_HH

#include "sim/types.hh"

namespace flexsnoop
{

struct CoherenceParams
{
    /** Round trip to the core's own L2. */
    Cycle l2RoundTrip = 11;

    /** Round trip to another L2 in the same CMP over the shared bus. */
    Cycle localBusRoundTrip = 55;

    /**
     * Time for a ring message to access the CMP bus and snoop all local
     * L2s in parallel (38 transmission + 10 arbitration + 7 snoop).
     */
    Cycle cmpSnoopTime = 55;

    /** Backoff before re-issuing a squashed transaction. */
    Cycle retryBackoff = 200;

    /** Extra bus hop for same-CMP waiters merged onto one transaction. */
    Cycle waiterBusDelay = 55;

    /**
     * Enable the ring express path: coalesce a full run of pure-Forward
     * hops into a single arrival event (net/ring, coherence/express).
     * Purely a simulator optimization — every architectural statistic
     * is bit-identical either way (enforced by the equivalence test).
     * Also disabled at runtime by FLEXSNOOP_STRICT_RING=1.
     */
    bool ringExpress = true;

    /**
     * Per-transaction watchdog (docs/FAULTS.md): a transaction whose
     * ring round has not concluded after this many cycles is reissued
     * (bounded by maxRetries). 0 disables the watchdog — the default,
     * because pending watchdog events extend the drain tail of the
     * event queue. Armed automatically by the CLI when fault injection
     * is on.
     */
    Cycle watchdogCycles = 0;

    /**
     * Cap on squash/watchdog reissues of one logical request. A
     * transaction exceeding it throws RetryStormError with a dump
     * naming the contended line, instead of retrying forever on a
     * pathological workload.
     */
    unsigned maxRetries = 1000;
};

/**
 * Backoff before reissue attempt number @p retries: exponential in the
 * attempt count and capped at 16x the base, so it is monotonically
 * non-decreasing and bounded (the paper's squash-retry scheme leaves
 * the backoff policy open).
 */
inline Cycle
retryBackoffCycles(const CoherenceParams &params, unsigned retries)
{
    return params.retryBackoff *
           (Cycle{1} << (retries < 4u ? retries : 4u));
}

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_COHERENCE_PARAMS_HH
