#include "coherence/express.hh"

#include <algorithm>
#include <cassert>

#include "coherence/controller.hh"
#include "predictor/presence_predictor.hh"
#include "predictor/supplier_predictor.hh"
#include "topology/topology.hh"

/**
 * Probe-mode refusal. In apply mode the same condition is an invariant:
 * the quiescent window guarantees nothing changed since the probe, so a
 * divergence is a bug in the walker, not a runtime condition.
 */
#define FS_EXPRESS_REQUIRE(cond)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            assert(!apply && "express replay diverged from its probe");    \
            return false;                                                  \
        }                                                                  \
    } while (0)

namespace flexsnoop
{

ExpressPath::ExpressPath(CoherenceController &ctrl) : _ctrl(ctrl)
{
    _ctrl._queue.setScheduleObserver(&ExpressPath::observe, this);
}

ExpressPath::~ExpressPath()
{
    _ctrl._queue.setScheduleObserver(nullptr, nullptr);
}

void
ExpressPath::observe(void *self, Cycle when)
{
    auto *e = static_cast<ExpressPath *>(self);
    if (e->_active && when <= e->_planRetire)
        e->cancel();
}

bool
ExpressPath::trySend(NodeId from, const SnoopMessage &msg)
{
    // Coalesced plans assume loss-free per-hop delivery; with fault
    // injection armed every hop must be a real link event the injector
    // sees. setFaultInjector() destroys the express path outright --
    // this guard is belt-and-suspenders for any other wiring order.
    if (_ctrl._faults)
        return false;

    // Only one plan can be active (quiescence means the queue holds
    // nothing inside its window). A second send in the creation cycle
    // is exactly the interference cancel() exists for; the rescheduled
    // per-hop arrival then fails the new plan's quiescence check.
    if (_active)
        cancel();

    // Found/squashed messages mutate pending state as they travel, and
    // a forwarded SnoopRequest has a live trailing reply upstream, so
    // its remaining run is not self-contained. All travel per-hop.
    if (msg.found || msg.squashed || msg.type == MsgType::SnoopRequest)
        return false;

    // Hier topology: only coalesce runs that stay strictly inside the
    // requester's own block. Anything longer crosses a block head --
    // bridge decisions and global-ring links the walk cannot model.
    if (const Topology *topo = _ctrl._topo) {
        if (!topo->sameBlock(from, msg.requester) ||
            topo->posInBlock(from) >= topo->posInBlock(msg.requester))
            return false;
    }

    Ring &ring = _ctrl._ring.ringFor(msg.line);
    const Cycle t0 = _ctrl._queue.now();
    const NodeId req = msg.requester;
    const std::uint32_t links =
        from == req ? static_cast<std::uint32_t>(ring.numNodes())
                    : ring.distance(from, req);

    // Cheap quiescence pre-check: the earliest conceivable retirement
    // is one link latency per remaining link. Any event due before
    // that kills the plan anyway, so don't even walk — the common case
    // in busy multi-core phases. (An empty queue reports
    // EventQueue::kNoEvent, which compares greater than any real
    // cycle, i.e. trivially quiescent.)
    const Cycle earliest = t0 + links * ring.params().linkLatency;
    if (_ctrl._queue.minPendingTime() <= earliest) {
        _probeRejects.inc();
        return false;
    }

    Cycle t_retire = 0;
    SnoopMessage final_msg;
    if (!walk(/*apply=*/false, from, msg, t0, &t_retire, &final_msg)) {
        _probeRejects.inc();
        return false;
    }

    // Exact quiescence check over the full window.
    if (_ctrl._queue.minPendingTime() <= t_retire) {
        _probeRejects.inc();
        return false;
    }

    // The retirement entry takes the sequence number the per-hop
    // first-link arrival would have taken (nothing was scheduled since
    // forwardMessage() ran), which is what lets cancel() reproduce the
    // per-hop event order exactly.
    _planSeq =
        _ctrl._queue.scheduleAtTagged(t_retire, [this]() { retire(); });
    _planFrom = from;
    _planT0 = t0;
    _planRetire = t_retire;
    _planMsg = msg;
    _planRing = &ring;
    _active = true;
    _plans.inc();
    _hopsVirtualized.inc(links);
    return true;
}

void
ExpressPath::cancel()
{
    assert(_active);
    assert(_ctrl._queue.now() == _planT0 &&
           "plan interference is only possible in its creation cycle");
    _active = false;
    _cancelled.inc();

    // Perform the first link's Ring::send() bookkeeping by hand (the
    // probe verified the link idle at t0, so no queueing is sampled)
    // and retarget the retirement entry into the plain per-hop arrival
    // at the successor. The entry keeps its sequence number — the one
    // the per-hop arrival would have had — so same-cycle FIFO order is
    // exactly the per-hop path's.
    _planRing->recordVirtualTraversal(_planFrom, _planT0);
    Ring *ring = _planRing;
    const NodeId to = ring->successor(_planFrom);
    const SnoopMessage m = _planMsg;
    if (_ctrl._trace) {
        // The hand-performed first link bypasses Ring::send(), so its
        // Hop record is emitted here. Express plans never carry found
        // or squashed messages.
        std::uint16_t flags = 0;
        if (m.kind == SnoopKind::Write)
            flags |= 4;
        _ctrl._trace->record(TraceEvent::Hop, _planT0, m.txn, m.line,
                             _planT0 + ring->params().linkLatency,
                             static_cast<std::uint16_t>(_planFrom),
                             static_cast<std::uint16_t>(m.type), flags);
    }
    SnoopMessage *slot = ring->park(m);
    _ctrl._queue.reschedule(_planSeq,
                            _planT0 + ring->params().linkLatency,
                            [ring, to, slot]() {
                                ring->deliverParked(to, slot);
                            });
}

void
ExpressPath::retire()
{
    assert(_active);
    assert(_ctrl._queue.now() == _planRetire);
    // Clear before replaying: the replay's mutators and the final
    // delivery schedule follow-up events (memory fetch, completions)
    // that no longer concern this plan.
    _active = false;
    _retired.inc();

    if (_ctrl._trace) {
        const NodeId req = _planMsg.requester;
        const std::uint32_t links =
            _planFrom == req
                ? static_cast<std::uint32_t>(_planRing->numNodes())
                : _planRing->distance(_planFrom, req);
        _ctrl._trace->record(TraceEvent::ExpressRun, _planT0,
                             _planMsg.txn, links, _planRetire,
                             static_cast<std::uint16_t>(_planFrom));
    }

    Cycle t_retire = 0;
    SnoopMessage final_msg;
    const bool ok = walk(/*apply=*/true, _planFrom, _planMsg, _planT0,
                         &t_retire, &final_msg);
    assert(ok);
    assert(t_retire == _planRetire);
    (void)ok;

    _planRing->deliver(final_msg.requester, final_msg);
}

bool
ExpressPath::walk(bool apply, NodeId from, const SnoopMessage &msg,
                  Cycle t0, Cycle *t_retire, SnoopMessage *final_msg)
{
    CoherenceController &c = _ctrl;
    Ring &ring = c._ring.ringFor(msg.line);
    const Cycle link_lat = ring.params().linkLatency;
    const Cycle ser = ring.params().serialization;
    const Cycle snoop_lat = c._params.cmpSnoopTime;
    const Addr line = msg.line;
    const NodeId req = msg.requester;

    // Shape of the in-flight traffic: a combined R/R may split at a
    // ForwardThenSnoop node into request + trailing reply and re-fuse
    // at a SnoopThenForward node; a reply-only run may merge into a
    // waiting node's pending state and come out combined.
    enum class Shape
    {
        Combined,
        Split,
        ReplyOnly
    };
    Shape shape = msg.type == MsgType::CombinedRR ? Shape::Combined
                                                  : Shape::ReplyOnly;

    // A squashed requester-side transaction takes a mutating path on
    // arrival (retry/stale-squash); it cannot un-squash in-window.
    if (Transaction *t = c.findTransaction(msg.txn))
        FS_EXPRESS_REQUIRE(!t->squashed);

    SnoopMessage front = msg; ///< leading message (Combined / Split)
    SnoopMessage reply = msg; ///< trailing reply (Split / ReplyOnly)
    Cycle front_send = t0;    ///< departure of `front` from `cur`
    Cycle reply_send = t0;    ///< departure of `reply` from `cur`

    NodeId cur = from;
    bool first_send = true;

    // One virtual link use out of `cur`. forwardMessage() already
    // recorded the energy and link-message counter for the first send
    // (it does so before handing the message to the express path);
    // every later virtual send replays both, and each occupies the
    // link exactly as the per-hop Ring::send() would.
    const auto account = [&](Cycle send_time, const SnoopMessage &m) {
        if (apply) {
            ring.recordVirtualTraversal(cur, send_time);
            if (!first_send) {
                c._energy.record(EnergyEvent::RingLinkMessage);
                (msg.kind == SnoopKind::Read ? c._c.readLinkMessages
                                             : c._c.writeLinkMessages)
                    .inc();
            }
            if (c._trace) {
                // Replay with the historical send time; the decoder
                // orders records by cycle, not file position.
                std::uint16_t flags = 0;
                if (m.kind == SnoopKind::Write)
                    flags |= 4;
                c._trace->record(TraceEvent::Hop, send_time, m.txn,
                                 m.line, send_time + link_lat,
                                 static_cast<std::uint16_t>(cur),
                                 static_cast<std::uint16_t>(m.type),
                                 flags);
            }
            _sendsVirtualized.inc();
        }
        first_send = false;
    };

    while (true) {
        // ---- departures from `cur` ----
        const Cycle link_free = ring.linkFreeAt(cur);
        const bool sends_front = shape != Shape::ReplyOnly;
        const bool sends_reply = shape != Shape::Combined;
        if (sends_front) {
            // Per-hop would queue on a busy link (and sample the
            // queueing stat); the express path refuses instead.
            FS_EXPRESS_REQUIRE(link_free <= front_send);
            account(front_send, front);
        }
        if (sends_reply) {
            const Cycle free_after =
                sends_front ? front_send + ser : link_free;
            FS_EXPRESS_REQUIRE(free_after <= reply_send);
            account(reply_send, reply);
        }

        const NodeId n = ring.successor(cur);
        const Cycle front_arr = front_send + link_lat;
        const Cycle reply_arr = reply_send + link_lat;

        if (n == req) {
            // A split front (SnoopRequest) is a pure no-op at its own
            // requester (handleAtRequester returns); the reply
            // concludes the round.
            *t_retire = shape == Shape::Combined ? front_arr : reply_arr;
            *final_msg = shape == Shape::Combined ? front : reply;
            return true;
        }

        // ---- arrivals at intermediate node `n` ----
        CoherenceController::GateLine *const *gslot =
            c._gates[n].find(line);
        const CoherenceController::GateLine *gate =
            gslot ? *gslot : nullptr;
        NodePending *p = c.findPending(n, msg.txn);

        if (shape == Shape::ReplyOnly) {
            if (gate) {
                if (gate->active == msg.txn) {
                    // Our own SnoopThenForward hold (the merge node
                    // below): releasing it at replay time must not
                    // drain foreign traffic at the wrong cycle.
                    FS_EXPRESS_REQUIRE(gate->deferred.empty());
                } else {
                    FS_EXPRESS_REQUIRE(gate->active ==
                                           kInvalidTransaction &&
                                       gate->deferred.empty());
                }
            }
            if (!p) {
                // handleTrailingReply with no pending state: forwarded
                // on arrival, zero latency.
                reply_send = reply_arr;
            } else {
                // Only the clean merge is virtualizable: a node whose
                // negative snoop finished and is waiting for exactly
                // this reply. (sentOwn would *discard* the reply; a
                // still-running snoop cannot be replayed.)
                FS_EXPRESS_REQUIRE(p->waitingForReply && !p->sentOwn &&
                                   !p->snoopPending &&
                                   !p->replyBuffered && !p->abandoned);
                const Primitive held = p->prim;
                if (apply) {
                    c.erasePending(n, msg.txn);
                    c.releaseGate(n, line, msg.txn);
                }
                reply.acksCollected += 1;
                reply.type = held == Primitive::SnoopThenForward
                                 ? MsgType::CombinedRR
                                 : MsgType::SnoopReply;
                reply_send = reply_arr;
                if (held == Primitive::SnoopThenForward) {
                    front = reply;
                    front_send = reply_send;
                    shape = Shape::Combined;
                }
            }
            cur = n;
            continue;
        }

        // Combined or Split: the front is an active request.

        // Home-node prefetch fires at the front's arrival; replayed
        // with its historical timestamp (the memory controller takes
        // the time as an explicit parameter).
        if (msg.kind == SnoopKind::Read &&
            (msg.sig.valid() ? msg.sig.home
                             : c._memory.homeNode(line)) == n) {
            assert(!msg.sig.valid() ||
                   msg.sig.home == c._memory.homeNode(line));
            if (apply)
                c._memory.notifySnoopAtHome(line, front_arr);
        }

        // The gate must be absent or idle-and-empty: anything else
        // defers or drains with timing the walker cannot reproduce.
        if (gate)
            FS_EXPRESS_REQUIRE(gate->active == kInvalidTransaction &&
                               gate->deferred.empty());

        // No pending state for this transaction may exist ahead of its
        // own front, and no local outstanding transaction may touch
        // the line (even a read-read pass, which would not squash,
        // stays per-hop — conservative).
        FS_EXPRESS_REQUIRE(p == nullptr);
        FS_EXPRESS_REQUIRE(c._outstandingByLine[n].find(line) ==
                           nullptr);

        // ---- primitive decision (mirrors handleIntermediate) ----
        CmpNode &node = *c._nodes[n];
        Primitive prim;
        Cycle dl = 0;
        std::uint16_t pred_trace = 2; // 0/1 = predictor answer, 2 = none
        if (msg.kind == SnoopKind::Write) {
            // The replayed snoop must be a guaranteed no-op: no copy
            // of the line anywhere in this CMP, so invalidateAll()
            // neither mutates cache state nor supplies data.
            FS_EXPRESS_REQUIRE(!node.hasAnyCopy(line));
            prim = c._policy.decouplesWrites()
                       ? Primitive::ForwardThenSnoop
                       : Primitive::SnoopThenForward;
            if (PresencePredictor *presence = node.presencePredictor()) {
                dl = presence->accessLatency();
                const bool maybe =
                    presence->wouldBePresent(line, msg.sig);
                if (apply) {
                    const bool real =
                        presence->mayBePresent(line, msg.sig);
                    assert(real == maybe);
                    (void)real;
                }
                pred_trace = maybe ? 1 : 0;
                if (!maybe)
                    prim = Primitive::Forward;
            }
        } else if (!c._policy.usesPredictor()) {
            // A supplier would turn the snoop into a data-supplying
            // hit; only fully negative runs coalesce.
            FS_EXPRESS_REQUIRE(!node.hasSupplier(line));
            prim = c._policy.onPrediction(false);
        } else {
            SupplierPredictor *pred = node.predictor();
            assert(pred && "policy requires a predictor");
            FS_EXPRESS_REQUIRE(!node.hasSupplier(line));
            const bool predicted = pred->wouldPredict(line, msg.sig);
            if (apply) {
                const bool real = pred->predict(line, msg.sig);
                assert(real == predicted);
                pred->recordOutcome(real, /*actual=*/false);
            }
            prim = c._policy.onPrediction(predicted);
            dl = pred->accessLatency();
            pred_trace = predicted ? 1 : 0;
        }

        // When this node's snoop completes (FTS / STF only).
        const Cycle snoop_done = front_arr + dl + snoop_lat;

        if (apply && c._trace)
            c._trace->record(TraceEvent::HopDecision, front_arr, msg.txn,
                             line, dl, static_cast<std::uint16_t>(n),
                             static_cast<std::uint16_t>(prim),
                             pred_trace);

        // Replay the CMP snoop itself: counters, energy, and (for
        // positive-snooping policies) the false-positive training —
        // exactly what snoopComplete() does on a negative outcome.
        const auto replay_snoop = [&](Primitive chosen) {
            if (!apply)
                return;
            if (c._trace)
                c._trace->record(TraceEvent::SnoopDone, snoop_done,
                                 msg.txn, line, 0,
                                 static_cast<std::uint16_t>(n), 0, 0);
            if (msg.kind == SnoopKind::Read) {
                const bool found_now = c.ringSnoopRead(n, line);
                assert(!found_now && "probe missed a supplier");
                (void)found_now;
                if (c._policy.usesPredictor() &&
                    c._policy.onPrediction(true) == chosen)
                    node.predictor()->falsePositive(line);
            } else {
                const bool supplied = c.ringSnoopWrite(n, front);
                assert(!supplied && "probe missed a cached copy");
                (void)supplied;
            }
        };

        if (prim == Primitive::Forward) {
            if (apply)
                (msg.kind == SnoopKind::Read ? c._c.readFiltered
                                             : c._c.writeFiltered)
                    .inc();
            front_send = front_arr + dl;
            if (shape == Shape::Split)
                reply_send = reply_arr; // passes through, no pending
        } else if (prim == Primitive::ForwardThenSnoop) {
            replay_snoop(Primitive::ForwardThenSnoop);
            if (shape == Shape::Combined) {
                // Split: the request races ahead; our reply is born at
                // snoop completion carrying the merged outcome.
                reply = front;
                reply.type = MsgType::SnoopReply;
                reply.acksCollected = front.acksCollected + 1;
                reply_send = snoop_done;
                front.type = MsgType::SnoopRequest;
                front_send = front_arr + dl;
                shape = Shape::Split;
            } else {
                // Already split: forward the request; our ack merges
                // into the trailing reply once both the snoop and the
                // reply are here (buffered or waiting — either per-hop
                // interleaving emits the same message at max()).
                front_send = front_arr + dl;
                reply.acksCollected += 1;
                reply.type = MsgType::SnoopReply;
                reply_send = std::max(snoop_done, reply_arr);
            }
        } else { // SnoopThenForward
            if (apply) {
                // acquire .. release nets to a gate entry created and
                // erased; the probe verified the drain finds nothing.
                c.acquireGate(n, line, msg.txn);
            }
            replay_snoop(Primitive::SnoopThenForward);
            if (apply)
                c.releaseGate(n, line, msg.txn);
            if (shape == Shape::Combined) {
                front.acksCollected += 1;
                front_send = snoop_done;
            } else {
                // Re-fuse: the held request and the arriving reply
                // leave as one combined R/R.
                front = reply;
                front.acksCollected += 1;
                front.type = MsgType::CombinedRR;
                front_send = std::max(snoop_done, reply_arr);
                shape = Shape::Combined;
            }
        }

        cur = n;
    }
}

} // namespace flexsnoop

#undef FS_EXPRESS_REQUIRE
