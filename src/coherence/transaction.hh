/**
 * @file
 * Bookkeeping for in-flight coherence transactions.
 */

#ifndef FLEXSNOOP_COHERENCE_TRANSACTION_HH
#define FLEXSNOOP_COHERENCE_TRANSACTION_HH

#include <cstdint>
#include <vector>

#include "net/message.hh"
#include "sim/types.hh"
#include "snoop/primitives.hh"

namespace flexsnoop
{

/**
 * Requester-side record of one outstanding transaction.
 */
struct Transaction
{
    TransactionId id = kInvalidTransaction;
    Addr line = kInvalidAddr;
    SnoopKind kind = SnoopKind::Read;
    NodeId requester = kInvalidNode;
    CoreId core = kInvalidCore; ///< machine-wide id of the issuing core
    Cycle issued = 0;

    /** Same-CMP cores whose identical read merged onto this txn. */
    std::vector<CoreId> waiters;

    bool dataArrived = false; ///< line (or ownership) available
    bool ringDone = false;    ///< final ring message returned
    bool memoryPending = false;

    /** This txn lost a collision; retry when its ring traffic returns. */
    bool squashed = false;
    unsigned retries = 0;

    /** Write only: the writer had no valid copy and needs the data. */
    bool writeNeedsData = false;
    /** Write only: a remote supplier is sending the data. */
    bool writeDataSupplied = false;

    /**
     * Read only: a write serialized immediately behind this read; the
     * filled copy must be invalidated right after delivery.
     */
    bool invalidateOnFill = false;

    bool
    complete() const
    {
        return dataArrived && ringDone;
    }

    /**
     * Re-initialize a recycled pool slot. Field assignments instead of
     * `*this = Transaction{}` so `waiters` keeps its grown capacity —
     * the reason pooled transactions stop allocating in steady state.
     */
    void
    reset()
    {
        id = kInvalidTransaction;
        line = kInvalidAddr;
        kind = SnoopKind::Read;
        requester = kInvalidNode;
        core = kInvalidCore;
        issued = 0;
        waiters.clear();
        dataArrived = false;
        ringDone = false;
        memoryPending = false;
        squashed = false;
        retries = 0;
        writeNeedsData = false;
        writeDataSupplied = false;
        invalidateOnFill = false;
    }
};

/**
 * Intermediate-node state for one transaction passing through a gateway
 * (the "pending snoop" of paper Table 2).
 */
struct NodePending
{
    /** Primitive this node chose for the transaction. */
    Primitive prim = Primitive::Forward;
    bool receivedCombined = false; ///< first message arrived as R/R
    bool snoopPending = false;
    bool snoopDone = false;
    bool snoopFound = false;
    bool sentOwn = false;       ///< node emitted its reply / combined R/R
    bool replyBuffered = false; ///< trailing reply waiting for our snoop
    SnoopMessage bufferedReply;
    bool waitingForReply = false; ///< negative outcome, reply not here yet
    /**
     * A found reply already passed this node while its snoop was still
     * running: the outcome is moot, finish the snoop silently.
     */
    bool abandoned = false;
    /**
     * SnoopMessage::visits of the request as of this node (this node
     * included). Stamped onto the trailing reply when it merges here,
     * so the conclusion carries the request's true ring coverage.
     */
    std::uint32_t requestVisits = 0;

    /** Re-initialize a recycled pool slot. */
    void
    reset()
    {
        prim = Primitive::Forward;
        receivedCombined = false;
        snoopPending = false;
        snoopDone = false;
        snoopFound = false;
        sentOwn = false;
        replyBuffered = false;
        bufferedReply = SnoopMessage{};
        waitingForReply = false;
        abandoned = false;
        requestVisits = 0;
    }
};

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_TRANSACTION_HH
