/**
 * @file
 * The coherence protocol controller: drives read/write transactions
 * through the local CMP, the embedded ring (running the configured
 * Flexible Snooping algorithm at every gateway), the data network, and
 * memory.
 *
 * This class implements the message semantics of paper Table 2:
 * splitting a combined request/reply into request + trailing reply at
 * Forward-Then-Snoop nodes, re-fusing them at Snoop-Then-Forward nodes,
 * passing them through untouched at Forward nodes, plus collision
 * detection with squash-and-retry and the home-node prefetch heuristic.
 */

#ifndef FLEXSNOOP_COHERENCE_CONTROLLER_HH
#define FLEXSNOOP_COHERENCE_CONTROLLER_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "coherence/cmp_node.hh"
#include "coherence/coherence_params.hh"
#include "coherence/request_port.hh"
#include "coherence/transaction.hh"
#include "energy/energy_model.hh"
#include "mem/memory_controller.hh"
#include "net/data_network.hh"
#include "net/ring.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"
#include "snoop/snoop_policy.hh"
#include "trace/trace_sink.hh"

namespace flexsnoop
{

class ExpressPath;
class FaultInjector;
class Topology;

/**
 * A transaction exceeded CoherenceParams::maxRetries. what() carries a
 * diagnostic dump of all in-flight protocol state; line() names the
 * contended line.
 */
class RetryStormError : public std::runtime_error
{
  public:
    RetryStormError(Addr line, unsigned retries, const std::string &what)
        : std::runtime_error(what), _line(line), _retries(retries)
    {
    }

    Addr line() const { return _line; }
    unsigned retries() const { return _retries; }

  private:
    Addr _line;
    unsigned _retries;
};

class CoherenceController : public RequestPort
{
  public:
    /**
     * All references must outlive the controller.
     *
     * @param nodes one CmpNode per ring position, predictors installed
     */
    CoherenceController(EventQueue &queue, RingNetwork &ring,
                        DataNetwork &data, MemoryController &memory,
                        EnergyModel &energy, SnoopPolicy &policy,
                        std::vector<std::unique_ptr<CmpNode>> &nodes,
                        const CoherenceParams &params);
    ~CoherenceController() override; // out-of-line: ExpressPath incomplete

    void
    setCompletionHandler(CompletionFn fn) override
    {
        _onComplete = std::move(fn);
    }

    /** Number of cores per CMP (uniform). */
    std::size_t coresPerCmp() const { return _coresPerCmp; }
    std::size_t numNodes() const { return _nodes.size(); }

    NodeId nodeOf(CoreId core) const
    {
        return static_cast<NodeId>(core / _coresPerCmp);
    }
    std::size_t localOf(CoreId core) const { return core % _coresPerCmp; }

    /**
     * Core @p core reads @p addr. Completion is always reported through
     * the completion handler (even L2 hits, after the L2 round trip).
     */
    void coreRead(CoreId core, Addr addr, unsigned retries = 0) override;

    /** Core @p core writes @p addr. */
    void coreWrite(CoreId core, Addr addr,
                   unsigned retries = 0) override;

    /** In-flight transactions (for drain checks). */
    std::size_t outstanding() const { return _transactions.size(); }

    /** Lines currently write-gated across all nodes — with
     *  outstanding(), the in-flight pressure the telemetry sampler
     *  records (docs/TELEMETRY.md). */
    std::size_t
    gatedLines() const
    {
        std::size_t total = 0;
        for (const auto &per_node : _gates)
            total += per_node.size();
        return total;
    }

    /** Dump every in-flight transaction and pending gateway state. */
    void dumpOutstanding(std::ostream &os) const;

    CmpNode &node(NodeId n) { return *_nodes[n]; }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** Express-path stats, or nullptr when the express path is off. */
    StatGroup *expressStats();
    const StatGroup *expressStats() const;

    /**
     * Install the fault injector (unreliable-ring mode). Arming it
     * disables the express path: coalesced plans assume loss-free
     * per-hop delivery, so with injection on every hop must be a real
     * link event the injector sees.
     */
    void setFaultInjector(FaultInjector *faults);

    /**
     * Install the event trace sink (docs/TRACING.md), or remove it with
     * nullptr. Unset by default: every trace point is a single branch
     * on this cached pointer.
     */
    void setTraceSink(TraceSink *trace) { _trace = trace; }

    /**
     * Install the hierarchical topology (docs/TOPOLOGY.md). Block heads
     * become bridge gateways: each aggregates its local ring's snoop
     * answer and either descends a message into the block (flat path,
     * unchanged) or skips the whole block over the global ring.
     *
     * @param topo           hierarchy geometry; nullptr restores flat
     * @param global_policy  per-level action table governing skips (the
     *                       node algorithm when the config names none)
     * @param bridge_supplier per-block supplier aggregates (counting
     *                       Blooms mirroring every member's supplier
     *                       set); may be null when @p global_policy
     *                       cannot skip reads
     * @param bridge_presence per-block presence aggregates for write
     *                       filtering; may be null when write filtering
     *                       is off
     */
    void setTopology(
        const Topology *topo, SnoopPolicy *global_policy,
        std::vector<std::unique_ptr<PresencePredictor>> *bridge_supplier,
        std::vector<std::unique_ptr<PresencePredictor>> *bridge_presence);

    /** Whole-block skips performed by bridge gateways (hier only). */
    std::uint64_t bridgeSkips() const { return _c.bridgeSkips.value(); }
    /** Active messages bridges descended into their block (hier only). */
    std::uint64_t bridgeDescends() const
    {
        return _c.bridgeDescends.value();
    }

    /** Allocation behaviour of one object pool (docs/METRICS.md). */
    struct PoolUsage
    {
        std::uint64_t acquires = 0;
        std::uint64_t releases = 0;
        std::size_t live = 0;
        std::size_t slotsAllocated = 0;
        std::uint64_t chunkAllocs = 0;
    };
    PoolUsage txnPoolUsage() const;
    PoolUsage pendingPoolUsage() const;

    // Aggregate metrics used by the benches ------------------------------

    /** Read ring transactions issued (including retries). */
    std::uint64_t readRequests() const
    {
        return _c.readRingRequests.value();
    }
    /** CMP snoop operations triggered by read requests. */
    std::uint64_t readSnoops() const { return _c.readSnoops.value(); }
    /** Ring link traversals by read snoop messages. */
    std::uint64_t readLinkMessages() const
    {
        return _c.readLinkMessages.value();
    }
    double
    snoopsPerReadRequest() const
    {
        const auto reqs = readRequests();
        return reqs ? static_cast<double>(readSnoops()) / reqs : 0.0;
    }
    double
    linkMessagesPerReadRequest() const
    {
        const auto reqs = readRequests();
        return reqs ? static_cast<double>(readLinkMessages()) / reqs : 0.0;
    }

  private:
    // --- Requester side -------------------------------------------------
    void startRingTransaction(CoreId core, Addr line, SnoopKind kind,
                              Cycle extra_delay, unsigned retries);
    void issueRingMessage(Transaction &txn);

    /**
     * Hash once, probe everywhere: resolve the line's predictor filter
     * indices, L2 set and home node at ring-issue time. The signature
     * rides in the SnoopMessage so every hop's probe is pure indexed
     * loads (all nodes share filter and cache geometry).
     */
    ProbeSignature computeSignature(NodeId requester, Addr line) const;
    void finishAndErase(TransactionId id);
    void deliverReadData(Transaction &txn, bool from_memory);
    void completeWrite(Transaction &txn);
    void goToMemory(Transaction &txn);
    void retryTransaction(const Transaction &txn);
    void scheduleRetry(CoreId core, Addr line, SnoopKind kind,
                       unsigned retries, std::vector<CoreId> waiters);
    void complete(CoreId core, Addr line, bool is_write, Cycle delay);

    // --- Fault recovery (docs/FAULTS.md) --------------------------------
    /**
     * True when fault tolerance is active: stale/duplicate traffic is
     * absorbed instead of asserting, and closed transactions sweep
     * their leftover gateway state. Off by default so the fault-free
     * protocol path is bit-identical to a build without the hooks.
     */
    bool
    hardened() const
    {
        return _faults != nullptr || _params.watchdogCycles > 0;
    }
    void scheduleWatchdog(TransactionId id);
    void watchdogExpire(TransactionId id);
    /** Reclaim pending snoop state and line gates held by @p id. */
    void sweepTransactionState(TransactionId id, Addr line);

    // --- Bridge gateway side (hier topology, docs/TOPOLOGY.md) ----------
    /** What a bridge does with a message: fall through to the flat path
     *  inside its block, or hop the global ring past the whole block. */
    enum class BridgeAction : std::uint8_t
    {
        Descend = 1,
        Skip = 2,
    };

    /**
     * Run the bridge gateway of block head @p node. Returns true when
     * the message was consumed (skipped over the block); false hands it
     * to the unchanged flat path. Never called for the requester's own
     * block, so every round still terminates at the requester.
     */
    bool bridgeHandle(NodeId node, const SnoopMessage &msg);
    /** First-arrival decision for an active request at a bridge. */
    BridgeAction decideBridge(NodeId node, const SnoopMessage &msg,
                              Cycle &decision_latency,
                              std::uint16_t &pred_trace);
    /** Apply the recorded Skip to @p msg (visit/filter accounting). */
    void bridgeSkipForward(NodeId node, const SnoopMessage &msg,
                           Cycle decision_latency);
    /** Energy/link accounting + the global-ring hop itself. */
    void sendSkipAccounted(NodeId node, const SnoopMessage &msg,
                           Cycle decision_latency);
    /** Any member of @p block has a conflicting outstanding txn? */
    bool blockConflicts(std::size_t block, const SnoopMessage &msg);
    /** Any member of @p block holds @p line in a supplier state? */
    bool blockHasSupplier(std::size_t block, Addr line) const;
    /** Any member of @p block holds a valid copy of @p line? */
    bool blockHasAnyCopy(std::size_t block, Addr line) const;

    // --- Ring gateway side ----------------------------------------------
    void onRingMessage(NodeId node, const SnoopMessage &msg);
    void handleAtRequester(Transaction &txn, const SnoopMessage &msg);
    /**
     * @param from_gate the message was just popped from the line gate's
     *        deferred queue and must not re-defer behind the messages
     *        still queued there
     */
    void handleIntermediate(NodeId node, SnoopMessage msg,
                            bool from_gate = false);
    void snoopComplete(NodeId node, SnoopMessage msg);
    void handleTrailingReply(NodeId node, const SnoopMessage &msg);
    void supplierHit(NodeId node, SnoopMessage msg, NodePending &p);
    void forwardMessage(NodeId node, const SnoopMessage &msg);
    bool detectCollision(NodeId node, SnoopMessage &msg);

    NodePending &pending(NodeId node, TransactionId txn);
    NodePending *findPending(NodeId node, TransactionId txn);
    void erasePending(NodeId node, TransactionId txn);

    /**
     * Per-line gateway FIFO: while a SnoopThenForward message for a line
     * is held at a node (snooping, or fused-waiting for its trailing
     * reply), active messages of *other* transactions to the same line
     * are deferred so they cannot overtake it -- the ring's
     * serialization guarantee (paper §2.1.4) depends on this order.
     */
    struct GateLine
    {
        TransactionId active = kInvalidTransaction;
        std::deque<SnoopMessage> deferred;
    };

    /** True if @p msg must wait (and was queued) at @p node. */
    bool deferIfGated(NodeId node, const SnoopMessage &msg);
    /** Mark @p txn as holding the line gate at @p node. */
    void acquireGate(NodeId node, Addr line, TransactionId txn);
    /** Release the gate and reprocess the next deferred message. */
    void releaseGate(NodeId node, Addr line, TransactionId txn);
    /** Pop deferred messages until one takes the gate or none remain. */
    void drainGate(NodeId node, Addr line);

    /** Ring snoop of @p node for a read: true if it can supply. */
    bool ringSnoopRead(NodeId node, Addr line);
    /** Ring snoop for a write: invalidate; true if data is supplied. */
    bool ringSnoopWrite(NodeId node, const SnoopMessage &msg);

    Transaction *findTransaction(TransactionId id);

    /** Any CMP marked this line as predictor-downgraded? (energy attr.) */
    bool consumeDowngradeMarkAnywhere(Addr line);

    /**
     * Stat handles resolved once at construction. Every per-event
     * increment on the protocol hot path goes through one of these
     * references instead of a by-name lookup in the StatGroup.
     */
    struct HotStats
    {
        explicit HotStats(StatGroup &g);

        Counter &reads;
        Counter &readL2Hits;
        Counter &readLocalSupplies;
        Counter &readMerged;
        Counter &readLocalConflictDelays;
        Counter &writes;
        Counter &writeL2Hits;
        Counter &writeLocalConflictDelays;
        Counter &readRingRequests;
        Counter &writeRingRequests;
        Counter &readLinkMessages;
        Counter &writeLinkMessages;
        Counter &readFiltered;
        Counter &writeFiltered;
        Counter &readSnoops;
        Counter &writeSnoops;
        Counter &readCacheSupplies;
        Counter &readMemorySupplies;
        Counter &memoryFetches;
        Counter &collisions;
        Counter &squashes;
        Counter &staleSquashes;
        Counter &retries;
        Counter &gateDeferrals;
        Counter &ringRoundsFound;
        Counter &ringRoundsNegative;
        Counter &invalidateOnFill;
        ScalarStat &readLatency;
        ScalarStat &writeLatency;
        Histogram &readLatencyHist;
        // Fault recovery (docs/FAULTS.md); zero in fault-free runs.
        Counter &watchdogTimeouts;
        Counter &staleAbsorbed;
        Counter &flipDegrades;
        Counter &incompleteRejected;
        Counter &retryStormAborts;
        // Bridge gateways (hier topology); zero in flat runs.
        Counter &bridgeSkips;
        Counter &bridgeDescends;
    };

    EventQueue &_queue;
    RingNetwork &_ring;
    DataNetwork &_data;
    MemoryController &_memory;
    EnergyModel &_energy;
    SnoopPolicy &_policy;
    std::vector<std::unique_ptr<CmpNode>> &_nodes;
    CoherenceParams _params;
    std::size_t _coresPerCmp;

    CompletionFn _onComplete;

    TransactionId _nextTxnId = 1;

    /**
     * In-flight records live in slot pools (stable addresses, recycled
     * rather than reallocated) and are indexed by open-addressing maps:
     * once the pools and tables reach their high-water mark, the
     * steady-state protocol path performs no heap allocation.
     */
    SlotPool<Transaction> _txnPool;
    SlotPool<NodePending> _pendingPool;
    /** Gateway decision/snoop events park their message here and
     *  capture a slot pointer: a 96-byte SnoopMessage captured by
     *  value overflows EventFn's inline buffer (heap allocation on
     *  every hop). */
    SlotPool<SnoopMessage> _msgPool;
    SlotPool<GateLine> _gatePool;
    FlatMap<Transaction *> _transactions;
    /** per node: line -> outstanding local txn (merging + collisions). */
    std::vector<FlatMap<TransactionId>> _outstandingByLine;
    /** per node: txn -> pending gateway state. */
    std::vector<FlatMap<NodePending *>> _pending;
    /** per node: line -> gateway FIFO gate. Gates live in a slot pool
     *  and the map holds pointers: a recycled GateLine's deque keeps
     *  its allocated chunk, so per-hop gate churn (and FlatMap slot
     *  moves) never touches the heap in steady state. */
    std::vector<FlatMap<GateLine *>> _gates;

    /** Coalesced pass-through runs; null when disabled (strict mode). */
    std::unique_ptr<ExpressPath> _express;
    friend class ExpressPath; ///< probes/replays controller internals

    /** Unreliable-ring mode; null (zero-cost) by default. */
    FaultInjector *_faults = nullptr;

    // Hierarchical topology (docs/TOPOLOGY.md); all null in flat mode so
    // the flat instruction path is untouched (degenerate bit-equality).
    const Topology *_topo = nullptr;
    SnoopPolicy *_globalPolicy = nullptr; ///< per-level action table
    /** Per-block supplier aggregates (owned by Machine; may be null). */
    std::vector<std::unique_ptr<PresencePredictor>> *_bridgeSupplier =
        nullptr;
    /** Per-block presence aggregates (owned by Machine; may be null). */
    std::vector<std::unique_ptr<PresencePredictor>> *_bridgePresence =
        nullptr;
    /** Per block: txn -> recorded BridgeAction. Every later message of
     *  a transaction follows the first decision, so a round's request,
     *  trailing reply and conclusion see a consistent geometry. */
    std::vector<FlatMap<std::uint8_t>> _bridgeDecisions;
    /** line -> live ring rounds on it, machine-wide. A bridge may skip
     *  an active request only while its round is the line's sole live
     *  round: a skip that hopped past another round's request on the
     *  global ring would break the flat ring's per-line message order,
     *  which is what guarantees a write invalidates every copy that
     *  existed when its request passed (later same-line rounds descend
     *  and hit the flat collision/gate rules instead). */
    FlatMap<std::uint32_t> _liveLineRounds;

    /** Hash-once probe signatures on ring messages; disabled only by
     *  FLEXSNOOP_NO_PROBE_SIG for fallback-equivalence testing. */
    bool _probeSignatures = true;

    /** Event tracing (docs/TRACING.md); null (zero-cost) by default. */
    TraceSink *_trace = nullptr;

    StatGroup _stats;
    HotStats _c; ///< pre-resolved handles into _stats (must follow it)
};

} // namespace flexsnoop

#endif // FLEXSNOOP_COHERENCE_CONTROLLER_HH
