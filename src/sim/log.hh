/**
 * @file
 * Minimal leveled logging with per-component tags.
 *
 * Logging is off by default (level Warn) so simulation runs are quiet; the
 * tests and examples raise the level when tracing protocol activity.
 */

#ifndef FLEXSNOOP_SIM_LOG_HH
#define FLEXSNOOP_SIM_LOG_HH

#include <ostream>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace flexsnoop
{

enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Global logging configuration (process wide, tests may adjust). */
class Log
{
  public:
    static LogLevel level() { return _level; }
    static void setLevel(LogLevel l) { _level = l; }

    static std::ostream *sink() { return _sink; }
    static void setSink(std::ostream *os) { _sink = os; }

    static bool
    enabled(LogLevel l)
    {
        return _sink != nullptr && static_cast<int>(l) <=
            static_cast<int>(_level);
    }

    /** Emit one formatted line: "[cycle] tag: message". */
    static void write(LogLevel l, Cycle cycle, const std::string &tag,
                      const std::string &msg);

  private:
    static LogLevel _level;
    static std::ostream *_sink;
};

/**
 * Build a message lazily; the stream body only runs when the level is on.
 *
 * Usage: FS_LOG(Debug, queue.now(), "ring", "fwd req " << id);
 */
#define FS_LOG(lvl, cycle, tag, expr)                                       \
    do {                                                                    \
        if (::flexsnoop::Log::enabled(::flexsnoop::LogLevel::lvl)) {        \
            std::ostringstream _fs_log_oss;                                 \
            _fs_log_oss << expr;                                            \
            ::flexsnoop::Log::write(::flexsnoop::LogLevel::lvl, (cycle),    \
                                    (tag), _fs_log_oss.str());              \
        }                                                                   \
    } while (0)

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_LOG_HH
