#include "sim/log.hh"

#include <iostream>
#include <mutex>

namespace flexsnoop
{

LogLevel Log::_level = LogLevel::Warn;
std::ostream *Log::_sink = &std::cerr;

namespace
{

/**
 * Serializes sink access: the log sink is the only process-global
 * mutable state touched by concurrent simulation jobs (each job owns
 * its machine and event queue outright).
 */
std::mutex sinkMutex;

const char *
levelName(LogLevel l)
{
    switch (l) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Info: return "INFO";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

} // namespace

void
Log::write(LogLevel l, Cycle cycle, const std::string &tag,
           const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    if (!_sink)
        return;
    (*_sink) << '[' << cycle << "] " << levelName(l) << ' ' << tag << ": "
             << msg << '\n';
}

} // namespace flexsnoop
