#include "sim/log.hh"

#include <iostream>

namespace flexsnoop
{

LogLevel Log::_level = LogLevel::Warn;
std::ostream *Log::_sink = &std::cerr;

namespace
{

const char *
levelName(LogLevel l)
{
    switch (l) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Info: return "INFO";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

} // namespace

void
Log::write(LogLevel l, Cycle cycle, const std::string &tag,
           const std::string &msg)
{
    if (!_sink)
        return;
    (*_sink) << '[' << cycle << "] " << levelName(l) << ' ' << tag << ": "
             << msg << '\n';
}

} // namespace flexsnoop
