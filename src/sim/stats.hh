/**
 * @file
 * Lightweight statistics package: named counters, scalar averages, and
 * histograms, grouped per component and dumped in a uniform format.
 *
 * Every model object owns a StatGroup; the benches pull raw values out of
 * groups to assemble the paper's tables and figures.
 */

#ifndef FLEXSNOOP_SIM_STATS_HH
#define FLEXSNOOP_SIM_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace flexsnoop
{

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean/min/max of a stream of samples. */
class ScalarStat
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double total() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Fixed-bucket histogram with an overflow bucket. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets  number of regular buckets before overflow
     */
    explicit Histogram(double bucket_width = 1.0,
                       std::size_t num_buckets = 64);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return _buckets.at(i); }
    std::uint64_t overflow() const { return _overflow; }
    std::size_t numBuckets() const { return _buckets.size(); }
    double bucketWidth() const { return _width; }

    /** Value below which fraction @p q of the samples fall. */
    double percentile(double q) const;

  private:
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
};

/**
 * Named collection of statistics belonging to one component.
 *
 * Stats are created on first use and live for the group's lifetime, so
 * call sites can keep references. Hot paths should resolve a stat once
 * (typically at construction) and increment through the cached
 * reference; the by-name accessors hash the name on every call and are
 * meant for setup and reporting code.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Find-or-create a counter named @p stat. */
    Counter &counter(const std::string &stat);

    /** Find-or-create a scalar stat named @p stat. */
    ScalarStat &scalar(const std::string &stat);

    /** Find-or-create a histogram named @p stat. */
    Histogram &histogram(const std::string &stat, double width = 1.0,
                         std::size_t buckets = 64);

    /** Value of a counter, 0 if absent (read-only convenience). */
    std::uint64_t counterValue(const std::string &stat) const;

    /** Mean of a scalar stat, 0 if absent. */
    double scalarMean(const std::string &stat) const;

    /** Reset every stat in the group. */
    void reset();

    /** Dump all stats as "<group>.<stat> = <value>" lines. */
    void dump(std::ostream &os) const;

  private:
    // Unordered maps: O(1) residual by-name lookups with stable
    // references (rehashing moves buckets, not nodes). dump() sorts
    // names so output stays deterministic.
    std::string _name;
    std::unordered_map<std::string, Counter> _counters;
    std::unordered_map<std::string, ScalarStat> _scalars;
    std::unordered_map<std::string, Histogram> _histograms;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_STATS_HH
