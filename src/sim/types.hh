/**
 * @file
 * Fundamental scalar types shared by every flexsnoop subsystem.
 *
 * The simulator is cycle resolved: every timestamp is a processor cycle at
 * the nominal core frequency (6 GHz in the paper's Table 4 configuration).
 */

#ifndef FLEXSNOOP_SIM_TYPES_HH
#define FLEXSNOOP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace flexsnoop
{

/** Simulated time in processor cycles. */
using Cycle = std::uint64_t;

/** Physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Identifier of a CMP node on the ring (0 .. numCmps-1). */
using NodeId = std::uint32_t;

/** Identifier of a core within the whole machine (0 .. numCores-1). */
using CoreId = std::uint32_t;

/** Identifier of an in-flight coherence transaction. */
using TransactionId = std::uint64_t;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "no core". */
constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel for "no transaction". */
constexpr TransactionId kInvalidTransaction =
    std::numeric_limits<TransactionId>::max();

/** Sentinel for "no address". */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Cache line size used throughout (paper Table 4: 64 B lines). */
constexpr unsigned kLineSizeBytes = 64;

/** Shift that converts a byte address to a line address. */
constexpr unsigned kLineShift = 6;
static_assert((1u << kLineShift) == kLineSizeBytes);

/** Strip the block offset from a byte address. */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr >> kLineShift << kLineShift;
}

/** Line-granular index of an address (address / 64). */
constexpr Addr
lineIndex(Addr byte_addr)
{
    return byte_addr >> kLineShift;
}

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_TYPES_HH
