#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace flexsnoop
{

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!_heap[i].before(_heap[parent]))
            break;
        std::swap(_heap[i], _heap[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = _heap.size();
    while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        std::size_t best = left;
        const std::size_t right = left + 1;
        if (right < n && _heap[right].before(_heap[left]))
            best = right;
        if (!_heap[best].before(_heap[i]))
            break;
        std::swap(_heap[i], _heap[best]);
        i = best;
    }
}

EventQueue::Entry
EventQueue::popTop()
{
    assert(!_heap.empty());
    Entry top = std::move(_heap.front());
    if (_heap.size() > 1) {
        _heap.front() = std::move(_heap.back());
        _heap.pop_back();
        siftDown(0);
    } else {
        _heap.pop_back();
    }
    return top;
}

void
EventQueue::scheduleAt(Cycle when, EventFn fn)
{
    assert(when >= _now && "cannot schedule into the past");
    // The observer may reschedule() an existing entry (express-plan
    // cancellation); it runs before this entry is inserted so the heap
    // is consistent throughout.
    if (_observer)
        _observer(_observerCtx, when);
    _heap.push_back(Entry{when, _nextSeq++, std::move(fn)});
    siftUp(_heap.size() - 1);
}

std::uint64_t
EventQueue::scheduleAtTagged(Cycle when, EventFn fn)
{
    assert(when >= _now && "cannot schedule into the past");
    const std::uint64_t seq = _nextSeq++;
    _heap.push_back(Entry{when, seq, std::move(fn)});
    siftUp(_heap.size() - 1);
    return seq;
}

void
EventQueue::reschedule(std::uint64_t seq, Cycle when, EventFn fn)
{
    assert(when >= _now && "cannot schedule into the past");
    for (std::size_t i = 0; i < _heap.size(); ++i) {
        if (_heap[i].seq != seq)
            continue;
        _heap[i].when = when;
        _heap[i].fn = std::move(fn);
        // The entry may now order either earlier or later than before;
        // restore the heap in whichever direction applies.
        if (i > 0 && _heap[i].before(_heap[(i - 1) / 2]))
            siftUp(i);
        else
            siftDown(i);
        return;
    }
    assert(false && "reschedule: no pending entry with that seq");
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    Entry entry = popTop();
    assert(entry.when >= _now);
    _now = entry.when;
    ++_executed;
    entry.fn();
    return true;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t fired = 0;
    while (!_heap.empty() && _heap.front().when <= limit) {
        step();
        ++fired;
    }
    if (_heap.empty() && limit != ~Cycle{0} && _now < limit)
        _now = limit;
    return fired;
}

void
EventQueue::clear()
{
    // clear() keeps the vector's capacity: an EventQueue reused between
    // experiment repetitions schedules into already-hot storage.
    _heap.clear();
}

} // namespace flexsnoop
