#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace flexsnoop
{

void
EventQueue::scheduleAt(Cycle when, EventFn fn)
{
    assert(when >= _now && "cannot schedule into the past");
    _heap.push(Entry{when, _nextSeq++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    // priority_queue::top returns const&; the function object must be
    // moved out before pop, so copy the POD fields and steal the callable.
    Entry entry = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    assert(entry.when >= _now);
    _now = entry.when;
    ++_executed;
    entry.fn();
    return true;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t fired = 0;
    while (!_heap.empty() && _heap.top().when <= limit) {
        step();
        ++fired;
    }
    if (_heap.empty() && limit != ~Cycle{0} && _now < limit)
        _now = limit;
    return fired;
}

void
EventQueue::clear()
{
    while (!_heap.empty())
        _heap.pop();
}

} // namespace flexsnoop
