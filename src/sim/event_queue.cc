#include "sim/event_queue.hh"

#include <cassert>
#include <cstdlib>
#include <utility>

namespace flexsnoop
{
namespace
{

EventQueue::Impl
implFromEnv()
{
    return std::getenv("FLEXSNOOP_HEAP_QUEUE") ? EventQueue::Impl::Heap
                                               : EventQueue::Impl::Wheel;
}

} // namespace

EventQueue::EventQueue() : EventQueue(implFromEnv()) {}

EventQueue::EventQueue(Impl impl) : _impl(impl)
{
    if (std::getenv("FLEXSNOOP_QUEUE_STATS"))
        _wheel.enableHorizonHistogram(true);
}

// Heap (reference implementation) ------------------------------------

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!_heap[i].before(_heap[parent]))
            break;
        std::swap(_heap[i], _heap[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = _heap.size();
    while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        std::size_t best = left;
        const std::size_t right = left + 1;
        if (right < n && _heap[right].before(_heap[left]))
            best = right;
        if (!_heap[best].before(_heap[i]))
            break;
        std::swap(_heap[i], _heap[best]);
        i = best;
    }
}

EventQueue::Entry
EventQueue::popTop()
{
    assert(!_heap.empty());
    Entry top = std::move(_heap.front());
    if (_heap.size() > 1) {
        _heap.front() = std::move(_heap.back());
        _heap.pop_back();
        siftDown(0);
    } else {
        _heap.pop_back();
    }
    return top;
}

// Shared interface ---------------------------------------------------

void
EventQueue::reschedule(std::uint64_t seq, Cycle when, EventFn fn)
{
    assert(when >= _now && "cannot schedule into the past");
    if (when > _maxScheduledAt)
        _maxScheduledAt = when;
    if (_impl == Impl::Wheel) {
        const bool found =
            _wheel.reschedule(seq, _now, when, std::move(fn));
        assert(found && "reschedule: no pending entry with that seq");
        (void)found;
        return;
    }
    // Reference heap: linear scan, O(pending).
    for (std::size_t i = 0; i < _heap.size(); ++i) {
        if (_heap[i].seq != seq)
            continue;
        _heap[i].when = when;
        _heap[i].fn = std::move(fn);
        // The entry may now order either earlier or later than before;
        // restore the heap in whichever direction applies.
        if (i > 0 && _heap[i].before(_heap[(i - 1) / 2]))
            siftUp(i);
        else
            siftDown(i);
        return;
    }
    assert(false && "reschedule: no pending entry with that seq");
}

void
EventQueue::fireSampleHook()
{
    // Advance first: if the hook ever threw, the boundary would still
    // be consumed rather than re-fired forever.
    do {
        _nextSampleAt += _sampleInterval;
    } while (_nextSampleAt <= _now);
    _sampleHook(_sampleCtx, _now);
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t fired = 0;
    if (limit == kNoEvent) {
        // Unbounded drain: skip the per-step minimum lookup.
        while (step())
            ++fired;
        return fired;
    }
    while (minPendingTime() <= limit) {
        step();
        ++fired;
    }
    if (pending() == 0 && _now < limit)
        _now = limit;
    return fired;
}

void
EventQueue::clear()
{
    // clear() keeps bucket/heap capacity: an EventQueue reused between
    // experiment repetitions schedules into already-hot storage.
    if (_impl == Impl::Heap)
        _heap.clear();
    else
        _wheel.clear();
}

} // namespace flexsnoop
