#include "sim/timing_wheel.hh"

#include <bit>
#include <cassert>
#include <utility>

namespace flexsnoop
{
namespace
{

constexpr std::size_t kNotFound = ~std::size_t{0};

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

TimingWheel::TimingWheel(std::size_t near_buckets)
{
    configure(near_buckets);
    for (std::size_t l = 0; l < kOverflowLevels; ++l) {
        _over[l].resize(kOverflowSlots);
        _overMap[l].assign(kOverflowSlots / 64, 0);
    }
}

void
TimingWheel::configure(std::size_t near_buckets)
{
    assert(_size == 0 && "wheel must be empty to resize");
    std::size_t n = roundUpPow2(near_buckets);
    if (n < kMinNearBuckets)
        n = kMinNearBuckets;
    if (n > kMaxNearBuckets)
        n = kMaxNearBuckets;
    _nearSize = n;
    _nearMask = n - 1;
    _nearBits = static_cast<unsigned>(std::countr_zero(n));
    _near.clear();
    _near.resize(n);
    _nearMap.assign(n / 64, 0);
    _w0 = 0;
    _curSlot = 0;
    _head = 0;
    _scan.fill(kOverflowSlots);
    _minValid = false;
}

void
TimingWheel::setBit(std::vector<std::uint64_t> &bm, std::size_t i)
{
    bm[i >> 6] |= std::uint64_t{1} << (i & 63);
}

void
TimingWheel::clrBit(std::vector<std::uint64_t> &bm, std::size_t i)
{
    bm[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
}

std::size_t
TimingWheel::scanFrom(const std::vector<std::uint64_t> &bm,
                      std::size_t from, std::size_t bits)
{
    if (from >= bits)
        return kNotFound;
    std::size_t w = from >> 6;
    std::uint64_t word = bm[w] & (~std::uint64_t{0} << (from & 63));
    while (true) {
        if (word)
            return (w << 6) +
                   static_cast<std::size_t>(std::countr_zero(word));
        if (++w >= bm.size())
            return kNotFound;
        word = bm[w];
    }
}

void
TimingWheel::resetTo(Cycle now)
{
    assert(_size == 0);
    _w0 = now & ~static_cast<Cycle>(_nearMask);
    _curSlot = static_cast<std::size_t>(now & _nearMask);
    _head = 0;
    // The overflow bucket containing `now` at each level can never be
    // occupied (any cycle inside it is also inside a lower level's
    // window), so scanning may safely start one past it.
    for (std::size_t l = 1; l <= kOverflowLevels; ++l)
        _scan[l - 1] =
            static_cast<std::size_t>((now >> granShift(l)) &
                                     (kOverflowSlots - 1)) +
            1;
}

TimingWheel::Bucket &
TimingWheel::bucketAt(const Loc &loc)
{
    if (loc.level == 0)
        return _near[loc.slot];
    if (loc.level == kFarLevel)
        return _far;
    return _over[loc.level - 1][loc.slot];
}

void
TimingWheel::insertSorted(Bucket &bucket, std::uint8_t level,
                          std::uint16_t slot, WheelEntry &&entry)
{
    if (level == 0)
        setBit(_nearMap, slot);
    else if (level != kFarLevel)
        setBit(_overMap[level - 1], slot);

    // Entries already fired out of the current near bucket must stay
    // ahead of any (re)insertion, whatever its seq.
    const std::size_t floor =
        (level == 0 && slot == _curSlot) ? _head : 0;
    std::size_t pos = bucket.size();
    while (pos > floor && bucket[pos - 1].seqTag > entry.seqTag)
        --pos;

    const bool tagged = entry.tagged();
    const std::uint64_t seq = entry.seq();
    if (pos == bucket.size()) {
        bucket.push_back(std::move(entry));
    } else {
        // Rare: only a rescheduled (old-seq) entry lands mid-bucket.
        bucket.insert(bucket.begin() + pos, std::move(entry));
        for (std::size_t i = pos + 1; i < bucket.size(); ++i) {
            if (bucket[i].tagged())
                _tagged.find(bucket[i].seq())->pos =
                    static_cast<std::uint32_t>(i);
        }
    }
    if (tagged)
        _tagged.put(seq, Loc{level, slot,
                             static_cast<std::uint32_t>(pos)});
    if (bucket.size() > _maxBucketDepth)
        _maxBucketDepth = bucket.size();
}

std::uint8_t
TimingWheel::place(WheelEntry &&entry)
{
    const Cycle when = entry.when;
    assert(when >= _w0 + _curSlot);

    if ((when >> _nearBits) == (_w0 >> _nearBits)) {
        const auto slot =
            static_cast<std::uint16_t>(when & _nearMask);
        insertSorted(_near[slot], 0, slot, std::move(entry));
        return 0;
    }
    for (std::size_t l = 1; l <= kOverflowLevels; ++l) {
        const unsigned g = granShift(l);
        if ((when >> (g + kOverflowBits)) ==
            (_w0 >> (g + kOverflowBits))) {
            const auto slot = static_cast<std::uint16_t>(
                (when >> g) & (kOverflowSlots - 1));
            insertSorted(_over[l - 1][slot],
                         static_cast<std::uint8_t>(l), slot,
                         std::move(entry));
            return static_cast<std::uint8_t>(l);
        }
    }
    insertSorted(_far, kFarLevel, 0, std::move(entry));
    return kFarLevel;
}

void
TimingWheel::insert(Cycle now, WheelEntry entry)
{
    assert(entry.when >= now);
    if (_size == 0) {
        resetTo(now);
        _minCached = entry.when;
        _minValid = true;
    } else if (_minValid && entry.when < _minCached) {
        _minCached = entry.when;
    }
    if (_sampleHorizon) {
        const auto w = static_cast<std::size_t>(
            std::bit_width(entry.when - now));
        ++_horizon[w < kHorizonBuckets ? w : kHorizonBuckets - 1];
    }
    const std::uint8_t level = place(std::move(entry));
    if (level != 0) {
        ++_overflowScheduled;
        if (level == kFarLevel)
            ++_farScheduled;
    }
    ++_size;
}

bool
TimingWheel::refillFromOverflow()
{
    for (std::size_t l = 1; l <= kOverflowLevels; ++l) {
        auto &map = _overMap[l - 1];
        const std::size_t s = scanFrom(map, _scan[l - 1],
                                       kOverflowSlots);
        if (s == kNotFound)
            continue;
        _scan[l - 1] = s + 1;

        const unsigned g = granShift(l);
        const Cycle cover = Cycle{1} << (g + kOverflowBits);
        const Cycle level_window = _w0 & ~(cover - 1);
        const Cycle bucket_start =
            level_window + (static_cast<Cycle>(s) << g);

        // Re-anchor every lower level at the bucket's start. The start
        // is aligned to each lower level's window size, so their fresh
        // windows begin at slot 0.
        _w0 = bucket_start;
        _curSlot = 0;
        _head = 0;
        for (std::size_t j = 1; j < l; ++j)
            _scan[j - 1] = 0;

        Bucket moved;
        moved.swap(_over[l - 1][s]);
        clrBit(map, s);
        ++_cascades;
        _cascadedEntries += moved.size();
        // Entries are seq-sorted, so each target bucket receives an
        // in-order (appending) run.
        for (auto &e : moved)
            place(std::move(e));
        moved.clear();
        _over[l - 1][s] = std::move(moved); // hand the capacity back
        return true;
    }
    return false;
}

void
TimingWheel::redistributeFar()
{
    assert(!_far.empty());
    Cycle min_when = _far.front().when;
    for (const WheelEntry &e : _far)
        min_when = e.when < min_when ? e.when : min_when;

    Bucket old;
    old.swap(_far);
    // Everything pending lives in `old`, so the wheel proper is empty
    // and may be re-anchored at the earliest far cycle. At least that
    // entry re-files into the near wheel; stragglers beyond the last
    // level return to the (fresh) far list in their original order.
    _w0 = min_when & ~static_cast<Cycle>(_nearMask);
    _curSlot = static_cast<std::size_t>(min_when & _nearMask);
    _head = 0;
    for (std::size_t l = 1; l <= kOverflowLevels; ++l)
        _scan[l - 1] =
            static_cast<std::size_t>((min_when >> granShift(l)) &
                                     (kOverflowSlots - 1)) +
            1;
    ++_cascades;
    _cascadedEntries += old.size();
    for (auto &e : old)
        place(std::move(e));
}

bool
TimingWheel::advanceToPending()
{
    while (true) {
        Bucket &bucket = _near[_curSlot];
        if (_head < bucket.size())
            return true;
        bucket.clear();
        clrBit(_nearMap, _curSlot);
        _head = 0;

        const std::size_t s =
            scanFrom(_nearMap, _curSlot + 1, _nearSize);
        if (s != kNotFound) {
            _curSlot = s;
            continue;
        }
        if (refillFromOverflow())
            continue;
        if (_far.empty())
            return false;
        redistributeFar();
    }
}

WheelEntry
TimingWheel::pop()
{
    assert(_size > 0);
    const bool ok = advanceToPending();
    assert(ok);
    (void)ok;

    Bucket &bucket = _near[_curSlot];
    WheelEntry entry = std::move(bucket[_head]);
    assert(entry.when == _w0 + _curSlot);
    ++_head;
    --_size;
    if (entry.tagged())
        _tagged.erase(entry.seq());
    if (_head < bucket.size()) {
        _minCached = entry.when;
        _minValid = true;
    } else {
        // Retire the drained bucket eagerly so an empty wheel is also
        // structurally empty (resetTo() and re-anchoring rely on it)
        // and consumed callables are destroyed promptly.
        bucket.clear();
        clrBit(_nearMap, _curSlot);
        _head = 0;
        _minValid = false;
    }
    return entry;
}

Cycle
TimingWheel::minPending() const
{
    assert(_size > 0);
    if (!_minValid) {
        _minCached = recomputeMin();
        _minValid = true;
    }
    return _minCached;
}

Cycle
TimingWheel::recomputeMin() const
{
    // The current near bucket, if it still holds unconsumed entries,
    // is by construction the earliest cycle.
    if (_head < _near[_curSlot].size())
        return _w0 + _curSlot;
    std::size_t s = scanFrom(_nearMap, _curSlot + 1, _nearSize);
    if (s != kNotFound)
        return _w0 + s;
    // A non-empty bucket at level L starts at or after the end of every
    // occupied window below it, so the first occupied level wins; its
    // bucket spans a cycle range and must be scanned for the minimum.
    for (std::size_t l = 1; l <= kOverflowLevels; ++l) {
        s = scanFrom(_overMap[l - 1], _scan[l - 1], kOverflowSlots);
        if (s == kNotFound)
            continue;
        const Bucket &bucket = _over[l - 1][s];
        assert(!bucket.empty());
        Cycle min_when = bucket.front().when;
        for (const WheelEntry &e : bucket)
            min_when = e.when < min_when ? e.when : min_when;
        return min_when;
    }
    assert(!_far.empty());
    Cycle min_when = _far.front().when;
    for (const WheelEntry &e : _far)
        min_when = e.when < min_when ? e.when : min_when;
    return min_when;
}

bool
TimingWheel::reschedule(std::uint64_t seq, Cycle now, Cycle when,
                        EventFn fn)
{
    Loc *lp = _tagged.find(seq);
    if (!lp)
        return false;
    const Loc loc = *lp;
    Bucket &bucket = bucketAt(loc);
    assert(loc.pos < bucket.size());
    WheelEntry entry = std::move(bucket[loc.pos]);
    assert(entry.seq() == seq && entry.tagged());

    bucket.erase(bucket.begin() + loc.pos);
    for (std::size_t i = loc.pos; i < bucket.size(); ++i) {
        if (bucket[i].tagged())
            _tagged.find(bucket[i].seq())->pos =
                static_cast<std::uint32_t>(i);
    }
    if (bucket.empty()) {
        // Keep the current near bucket's bit for advanceToPending to
        // retire; every other emptied bucket must drop its occupancy
        // bit or scans would land on it.
        if (loc.level == 0) {
            if (loc.slot != _curSlot)
                clrBit(_nearMap, loc.slot);
        } else if (loc.level != kFarLevel) {
            clrBit(_overMap[loc.level - 1], loc.slot);
        }
    }
    _tagged.erase(seq);

    entry.when = when;
    entry.fn = std::move(fn);
    if (_size == 1) {
        // The wheel is structurally empty now; re-anchor tight.
        --_size;
        resetTo(now);
        ++_size;
    }
    place(std::move(entry));
    _minValid = false;
    return true;
}

void
TimingWheel::clear()
{
    for (Bucket &b : _near)
        b.clear();
    for (auto &level : _over)
        for (Bucket &b : level)
            b.clear();
    _far.clear();
    _nearMap.assign(_nearMap.size(), 0);
    for (auto &map : _overMap)
        map.assign(map.size(), 0);
    _size = 0;
    _head = 0;
    _curSlot = 0;
    _w0 = 0;
    _scan.fill(kOverflowSlots);
    _tagged.clear();
    _minValid = false;
}

} // namespace flexsnoop
