/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole machine. Events are arbitrary
 * callables scheduled at absolute cycles; ties are broken by insertion
 * order so simulation is fully deterministic.
 *
 * The kernel is allocation-light: callables up to EventFn::kInlineSize
 * bytes (every lambda the simulator schedules today) are stored inline
 * in the heap entry, and the underlying entry vector's capacity is
 * reused across pops and clear()/run cycles, so steady-state operation
 * performs no heap allocation per event.
 */

#ifndef FLEXSNOOP_SIM_EVENT_QUEUE_HH
#define FLEXSNOOP_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace flexsnoop
{

/**
 * Move-only callable wrapper with small-buffer optimization.
 *
 * Callables whose size fits kInlineSize (and that are nothrow
 * move-constructible) live inside the wrapper; larger ones fall back to
 * a heap allocation. Unlike std::function there is no copy support and
 * no RTTI, which keeps the inline fast path a single indirect call.
 */
class EventFn
{
  public:
    /** Inline storage: sized so a ring-hop lambda (this + NodeId +
     *  SnoopMessage) and the retry lambdas stay allocation-free. */
    static constexpr std::size_t kInlineSize = 64;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_storage)) Fn(std::forward<F>(fn));
            _ops = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(_storage))
                Fn *(new Fn(std::forward<F>(fn)));
            _ops = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(std::move(other)); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(std::move(other));
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { destroy(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(_storage);
    }

    /** True if a callable of type @p Fn avoids the heap fallback. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*moveTo)(void *src, void *dst); ///< move-construct + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *src, void *dst) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) {
            (**std::launder(reinterpret_cast<Fn **>(p)))();
        },
        [](void *src, void *dst) {
            Fn **s = std::launder(reinterpret_cast<Fn **>(src));
            ::new (dst) Fn *(*s); // steal the pointer
        },
        [](void *p) { delete *std::launder(reinterpret_cast<Fn **>(p)); },
    };

    void
    moveFrom(EventFn &&other) noexcept
    {
        _ops = other._ops;
        if (_ops)
            _ops->moveTo(other._storage, _storage);
        other._ops = nullptr;
    }

    void
    destroy() noexcept
    {
        if (_ops) {
            _ops->destroy(_storage);
            _ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _storage[kInlineSize];
    const Ops *_ops = nullptr;
};

/**
 * Deterministic priority queue of timed events.
 *
 * Events scheduled for the same cycle fire in the order they were
 * scheduled (FIFO), which keeps runs reproducible across platforms.
 *
 * Implemented as an explicit binary heap over a std::vector whose
 * capacity persists across pops and clear(), so the steady-state
 * schedule/fire cycle does not touch the allocator.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Cycle now() const { return _now; }

    /** Number of events not yet fired. */
    std::size_t pending() const { return _heap.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Schedule @p fn to run @p delay cycles from now.
     *
     * A delay of zero is legal: the event runs after all events already
     * scheduled for the current cycle.
     */
    void
    schedule(Cycle delay, EventFn fn)
    {
        scheduleAt(_now + delay, std::move(fn));
    }

    /** Schedule @p fn at the absolute cycle @p when (>= now). */
    void scheduleAt(Cycle when, EventFn fn);

    /**
     * Like scheduleAt(), but returns the entry's sequence number (its
     * FIFO tie-break rank) so the caller can retarget it later with
     * reschedule(). Does NOT notify the schedule observer: the only
     * caller is the express path scheduling its own coalesced arrival,
     * which must not cancel itself.
     */
    std::uint64_t scheduleAtTagged(Cycle when, EventFn fn);

    /**
     * Earliest cycle at which any pending event fires; ~Cycle{0} when
     * the queue is empty. O(1): the heap root.
     */
    Cycle
    minPendingTime() const
    {
        return _heap.empty() ? ~Cycle{0} : _heap.front().when;
    }

    /**
     * Retarget the pending entry with sequence number @p seq (from
     * scheduleAtTagged) to fire @p when running @p fn instead. The
     * entry keeps its original sequence number, so its tie-break rank
     * against same-cycle events is exactly what the original
     * scheduling call order dictated — this is what makes an express
     * plan's same-cycle fall-back bit-identical to the per-hop path.
     * O(pending) scan; only the rare cancellation path pays it.
     */
    void reschedule(std::uint64_t seq, Cycle when, EventFn fn);

    /**
     * Observer invoked (with @p ctx) for every scheduleAt() before the
     * entry is inserted. Used by the express path to detect same-cycle
     * interference with an active plan. A raw function pointer keeps
     * the common (unobserved) path to one predictable branch.
     */
    using ScheduleObserver = void (*)(void *ctx, Cycle when);
    void
    setScheduleObserver(ScheduleObserver obs, void *ctx)
    {
        _observer = obs;
        _observerCtx = ctx;
    }

    /**
     * Run until the queue drains or @p limit cycles have elapsed.
     *
     * @param limit absolute cycle bound; events scheduled past it stay
     *              queued. Defaults to "no bound".
     * @return number of events executed by this call.
     */
    std::uint64_t run(Cycle limit = ~Cycle{0});

    /** Fire a single event; @return false if the queue is empty. */
    bool step();

    /**
     * Drop all pending events (used between experiment repetitions).
     * The entry storage is retained for reuse.
     */
    void clear();

    /** Reserve heap capacity for @p events pending events. */
    void reserve(std::size_t events) { _heap.reserve(events); }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;

        /** Strict priority: earlier cycle first, then insertion order. */
        bool
        before(const Entry &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    /** Move the last element up into its heap position. */
    void siftUp(std::size_t i);
    /** Re-establish the heap property downward from the root. */
    void siftDown(std::size_t i);
    /** Remove and return the minimum entry. */
    Entry popTop();

    std::vector<Entry> _heap; ///< binary min-heap by (when, seq)
    Cycle _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    ScheduleObserver _observer = nullptr;
    void *_observerCtx = nullptr;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_EVENT_QUEUE_HH
