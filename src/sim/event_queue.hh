/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole machine. Events are arbitrary
 * callables scheduled at absolute cycles; ties are broken by insertion
 * order so simulation is fully deterministic.
 *
 * Two interchangeable scheduler implementations share this interface:
 *
 *  - the default hierarchical timing wheel (timing_wheel.hh), which
 *    makes schedule/pop O(1) for the short, clustered event horizons a
 *    fixed-latency embedded ring produces, and reschedule() an O(1)
 *    indexed operation; and
 *  - the original explicit binary heap, kept as the bit-exact
 *    reference implementation and selected by setting the
 *    FLEXSNOOP_HEAP_QUEUE environment variable (or constructing with
 *    Impl::Heap).
 *
 * Both fire events in strict (cycle, seq) order, so every RunResult —
 * and every .fstrace byte — is identical under either implementation.
 *
 * The kernel is allocation-light: callables up to EventFn::kInlineSize
 * bytes (every lambda the simulator schedules today) are stored inline
 * in the entry, and bucket/heap storage keeps its capacity across pops
 * and clear()/run cycles, so steady-state operation performs no heap
 * allocation per event.
 */

#ifndef FLEXSNOOP_SIM_EVENT_QUEUE_HH
#define FLEXSNOOP_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/timing_wheel.hh"
#include "sim/types.hh"

namespace flexsnoop
{

/**
 * Deterministic priority queue of timed events.
 *
 * Events scheduled for the same cycle fire in the order they were
 * scheduled (FIFO), which keeps runs reproducible across platforms.
 */
class EventQueue
{
  public:
    /**
     * "No pending event" sentinel: returned by minPendingTime() on an
     * empty queue, and the "no bound" default of run(). Larger than
     * any schedulable cycle.
     */
    static constexpr Cycle kNoEvent = ~Cycle{0};

    /** Scheduler implementation selector. */
    enum class Impl
    {
        Wheel, ///< hierarchical timing wheel (default)
        Heap,  ///< reference binary heap (FLEXSNOOP_HEAP_QUEUE)
    };

    /** Implementation from the environment: Impl::Heap when
     *  FLEXSNOOP_HEAP_QUEUE is set, Impl::Wheel otherwise. */
    EventQueue();

    /** Force a specific implementation (tests and benches). */
    explicit EventQueue(Impl impl);

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    Impl impl() const { return _impl; }

    /** Current simulated time. */
    Cycle now() const { return _now; }

    /** Number of events not yet fired. */
    std::size_t
    pending() const
    {
        return _impl == Impl::Heap ? _heap.size() : _wheel.size();
    }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * How far past now the furthest-ever-scheduled event lies (zero
     * once time has caught up). Watchdog timeouts and retry backoffs
     * land far in the future, so a sustained blowout of this gauge is
     * the scheduler-side signature of a retry storm (the telemetry
     * subsystem's queue_horizon detector, docs/TELEMETRY.md).
     */
    Cycle
    horizonAhead() const
    {
        return _maxScheduledAt > _now ? _maxScheduledAt - _now : 0;
    }

    /**
     * Size the wheel's near level to cover @p near_buckets cycles of
     * horizon (rounded up to a power of two). Machines derive this
     * from their latency configuration so the common-case event lands
     * in the near wheel. Only legal while the queue is empty; a no-op
     * under the heap implementation.
     */
    void
    configureWheel(std::size_t near_buckets)
    {
        if (_impl == Impl::Wheel)
            _wheel.configure(near_buckets);
    }

    /** Near-wheel bucket count (meaningful under Impl::Wheel). */
    std::size_t nearBuckets() const { return _wheel.nearBuckets(); }

    /**
     * Schedule @p fn to run @p delay cycles from now.
     *
     * A delay of zero is legal: the event runs after all events already
     * scheduled for the current cycle.
     */
    void
    schedule(Cycle delay, EventFn fn)
    {
        scheduleAt(_now + delay, std::move(fn));
    }

    /** Schedule @p fn at the absolute cycle @p when (>= now). */
    void
    scheduleAt(Cycle when, EventFn fn)
    {
        assert(when >= _now && "cannot schedule into the past");
        // The observer may reschedule() an existing entry (express-plan
        // cancellation); it runs before this entry is inserted so the
        // scheduler is consistent throughout.
        if (_observer)
            _observer(_observerCtx, when);
        if (when > _maxScheduledAt)
            _maxScheduledAt = when;
        const std::uint64_t seq = _nextSeq++;
        if (_impl == Impl::Heap) {
            _heap.push_back(Entry{when, seq, std::move(fn)});
            siftUp(_heap.size() - 1);
        } else {
            _wheel.insert(
                _now, WheelEntry{when, WheelEntry::packSeq(seq, false),
                                 std::move(fn)});
        }
    }

    /**
     * Like scheduleAt(), but returns the entry's sequence number (its
     * FIFO tie-break rank) so the caller can retarget it later with
     * reschedule(). Does NOT notify the schedule observer: the only
     * caller is the express path scheduling its own coalesced arrival,
     * which must not cancel itself.
     */
    std::uint64_t
    scheduleAtTagged(Cycle when, EventFn fn)
    {
        assert(when >= _now && "cannot schedule into the past");
        if (when > _maxScheduledAt)
            _maxScheduledAt = when;
        const std::uint64_t seq = _nextSeq++;
        if (_impl == Impl::Heap) {
            _heap.push_back(Entry{when, seq, std::move(fn)});
            siftUp(_heap.size() - 1);
        } else {
            _wheel.insert(
                _now, WheelEntry{when, WheelEntry::packSeq(seq, true),
                                 std::move(fn)});
        }
        return seq;
    }

    /**
     * Earliest cycle at which any pending event fires; kNoEvent when
     * the queue is empty. O(1): the heap root, or the wheel's cached
     * minimum (a short bitmap scan right after a bucket drains).
     */
    Cycle
    minPendingTime() const
    {
        if (_impl == Impl::Heap)
            return _heap.empty() ? kNoEvent : _heap.front().when;
        return _wheel.empty() ? kNoEvent : _wheel.minPending();
    }

    /**
     * Retarget the pending entry with sequence number @p seq (from
     * scheduleAtTagged) to fire @p when running @p fn instead. The
     * entry keeps its original sequence number, so its tie-break rank
     * against same-cycle events is exactly what the original
     * scheduling call order dictated — this is what makes an express
     * plan's same-cycle fall-back bit-identical to the per-hop path.
     *
     * O(1) under the wheel (seq->slot index); O(pending) scan under
     * the reference heap. Rescheduling a seq that is not pending is a
     * Debug-build assertion failure.
     */
    void reschedule(std::uint64_t seq, Cycle when, EventFn fn);

    /**
     * Observer invoked (with @p ctx) for every scheduleAt() before the
     * entry is inserted. Used by the express path to detect same-cycle
     * interference with an active plan. A raw function pointer keeps
     * the common (unobserved) path to one predictable branch.
     */
    using ScheduleObserver = void (*)(void *ctx, Cycle when);
    void
    setScheduleObserver(ScheduleObserver obs, void *ctx)
    {
        _observer = obs;
        _observerCtx = ctx;
    }

    /**
     * Run until the queue drains or @p limit cycles have elapsed.
     *
     * @param limit absolute cycle bound; events scheduled past it stay
     *              queued. Defaults to "no bound".
     * @return number of events executed by this call.
     */
    std::uint64_t run(Cycle limit = kNoEvent);

    /**
     * Hook invoked (with @p ctx) the first time simulated time reaches
     * each multiple of the sampling interval, after the clock advances
     * and before the crossing event fires. The hook observes — it must
     * not schedule events or touch machine state — so telemetry never
     * perturbs the schedule: no sampler events sit in the queue to
     * stretch the drain tail that run() measures, and nothing extra
     * passes through the schedule observer. Disabled (the default)
     * it costs one never-taken compare per event.
     */
    using SampleHook = void (*)(void *ctx, Cycle now);
    void
    setSampleHook(Cycle interval, SampleHook hook, void *ctx)
    {
        assert(interval > 0);
        _sampleHook = hook;
        _sampleCtx = ctx;
        _sampleInterval = interval;
        _nextSampleAt = hook ? interval : kNoEvent;
    }

    /** Fire a single event; @return false if the queue is empty. */
    bool
    step()
    {
        if (_impl == Impl::Heap) {
            if (_heap.empty())
                return false;
            Entry entry = popTop();
            assert(entry.when >= _now);
            _now = entry.when;
            if (_now >= _nextSampleAt) [[unlikely]]
                fireSampleHook();
            ++_executed;
            entry.fn();
            return true;
        }
        if (_wheel.empty())
            return false;
        WheelEntry entry = _wheel.pop();
        assert(entry.when >= _now);
        _now = entry.when;
        if (_now >= _nextSampleAt) [[unlikely]]
            fireSampleHook();
        ++_executed;
        entry.fn();
        return true;
    }

    /**
     * Drop all pending events (used between experiment repetitions).
     * The entry storage is retained for reuse.
     */
    void clear();

    /**
     * Reserve storage for @p events pending events. Meaningful for the
     * heap; the wheel's buckets grow on first use and keep their
     * capacity, so it reaches the same steady state on its own.
     */
    void
    reserve(std::size_t events)
    {
        if (_impl == Impl::Heap)
            _heap.reserve(events);
    }

    /** Wheel self-measurement (docs/METRICS.md "queue.*"); zeros under
     *  the heap implementation. */
    const TimingWheel &wheel() const { return _wheel; }

    /** Sample the horizon histogram on every schedule (off by default;
     *  also enabled by the FLEXSNOOP_QUEUE_STATS environment var). */
    void
    enableHorizonHistogram(bool on)
    {
        _wheel.enableHorizonHistogram(on);
    }

  private:
    /** Heap entry (reference implementation). */
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;

        /** Strict priority: earlier cycle first, then insertion order. */
        bool
        before(const Entry &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    /** Out-of-line slow path of the sampling hook: fire it once for
     *  the crossed boundary, then advance past any skipped intervals
     *  (time jumps in idle stretches; one sample per crossing, not per
     *  skipped boundary, mirroring how a hardware sampling counter
     *  reads on the next cycle it is clocked). */
    void fireSampleHook();

    /** Move the last element up into its heap position. */
    void siftUp(std::size_t i);
    /** Re-establish the heap property downward from the root. */
    void siftDown(std::size_t i);
    /** Remove and return the minimum heap entry. */
    Entry popTop();

    Impl _impl;
    TimingWheel _wheel;
    std::vector<Entry> _heap; ///< binary min-heap by (when, seq)
    Cycle _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    ScheduleObserver _observer = nullptr;
    void *_observerCtx = nullptr;
    Cycle _maxScheduledAt = 0; ///< furthest cycle ever scheduled
    Cycle _nextSampleAt = kNoEvent; ///< kNoEvent = sampling disarmed
    Cycle _sampleInterval = 0;
    SampleHook _sampleHook = nullptr;
    void *_sampleCtx = nullptr;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_EVENT_QUEUE_HH
