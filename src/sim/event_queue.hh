/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole machine. Events are arbitrary
 * callables scheduled at absolute cycles; ties are broken by insertion
 * order so simulation is fully deterministic.
 */

#ifndef FLEXSNOOP_SIM_EVENT_QUEUE_HH
#define FLEXSNOOP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace flexsnoop
{

/** Callback executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Deterministic priority queue of timed events.
 *
 * Events scheduled for the same cycle fire in the order they were
 * scheduled (FIFO), which keeps runs reproducible across platforms.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Cycle now() const { return _now; }

    /** Number of events not yet fired. */
    std::size_t pending() const { return _heap.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Schedule @p fn to run @p delay cycles from now.
     *
     * A delay of zero is legal: the event runs after all events already
     * scheduled for the current cycle.
     */
    void
    schedule(Cycle delay, EventFn fn)
    {
        scheduleAt(_now + delay, std::move(fn));
    }

    /** Schedule @p fn at the absolute cycle @p when (>= now). */
    void scheduleAt(Cycle when, EventFn fn);

    /**
     * Run until the queue drains or @p limit cycles have elapsed.
     *
     * @param limit absolute cycle bound; events scheduled past it stay
     *              queued. Defaults to "no bound".
     * @return number of events executed by this call.
     */
    std::uint64_t run(Cycle limit = ~Cycle{0});

    /** Fire a single event; @return false if the queue is empty. */
    bool step();

    /** Drop all pending events (used between experiment repetitions). */
    void clear();

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Cycle _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_EVENT_QUEUE_HH
