/**
 * @file
 * Free-list slot pool with stable addresses.
 *
 * Objects are default-constructed once per slot when a chunk is
 * allocated and then *recycled* rather than destroyed: release()
 * pushes the slot onto a free list and acquire() hands it back out.
 * The caller re-initializes recycled objects (a reset() method by
 * convention), which lets members like std::vector keep their grown
 * capacity across uses — the point of pooling the coherence
 * controller's Transaction records is that steady-state operation
 * performs no heap allocation at all.
 *
 * Chunked storage (never reallocated) keeps every handed-out pointer
 * valid for the pool's lifetime.
 */

#ifndef FLEXSNOOP_SIM_SLOT_POOL_HH
#define FLEXSNOOP_SIM_SLOT_POOL_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace flexsnoop
{

template <typename T>
class SlotPool
{
  public:
    explicit SlotPool(std::size_t chunk_slots = 64)
        : _chunkSlots(chunk_slots)
    {
        assert(chunk_slots > 0);
    }

    SlotPool(const SlotPool &) = delete;
    SlotPool &operator=(const SlotPool &) = delete;

    /**
     * Hand out a slot. The object is in whatever state its last user
     * left it (or default-constructed for a fresh slot); the caller
     * must re-initialize it.
     */
    T *
    acquire()
    {
        ++_acquires;
        if (_free.empty())
            grow();
        T *slot = _free.back();
        _free.pop_back();
        return slot;
    }

    /** Return @p slot to the free list. The object is not destroyed. */
    void
    release(T *slot)
    {
        ++_releases;
        _free.push_back(slot);
    }

    /** Slots currently handed out. */
    std::size_t
    live() const
    {
        return _chunks.size() * _chunkSlots - _free.size();
    }

    std::size_t slotsAllocated() const
    {
        return _chunks.size() * _chunkSlots;
    }
    std::uint64_t acquires() const { return _acquires; }
    std::uint64_t releases() const { return _releases; }
    std::uint64_t chunkAllocs() const { return _chunks.size(); }

  private:
    void
    grow()
    {
        _chunks.push_back(std::make_unique<T[]>(_chunkSlots));
        T *base = _chunks.back().get();
        // LIFO free list: hand out low addresses first so a mostly-idle
        // pool keeps touching the same cache-warm slots.
        for (std::size_t i = _chunkSlots; i-- > 0;)
            _free.push_back(base + i);
    }

    std::size_t _chunkSlots;
    std::vector<std::unique_ptr<T[]>> _chunks;
    std::vector<T *> _free;
    std::uint64_t _acquires = 0;
    std::uint64_t _releases = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_SLOT_POOL_HH
