/**
 * @file
 * Open-addressing hash map over 64-bit keys.
 *
 * Replaces std::unordered_map on the coherence controller's hot paths
 * (transactions by id, per-node pendings by txn, outstanding lines).
 * Linear probing over a power-of-two table with one control byte per
 * slot; the only allocations are table growth, so a map that has
 * reached its high-water mark allocates nothing in steady state —
 * unlike unordered_map, which allocates a node per insert.
 *
 * Values are expected to be small and trivially movable (pointers,
 * ids). Erase uses tombstones; growth rehashes and drops them.
 */

#ifndef FLEXSNOOP_SIM_FLAT_MAP_HH
#define FLEXSNOOP_SIM_FLAT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexsnoop
{

template <typename V>
class FlatMap
{
  public:
    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 8;
        while (cap < initial_capacity)
            cap *= 2;
        _ctrl.assign(cap, kEmpty);
        _keys.resize(cap);
        _values.resize(cap);
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /** Pointer to the value for @p key, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        const std::size_t i = findSlot(key);
        return i == kNotFound ? nullptr : &_values[i];
    }

    const V *
    find(std::uint64_t key) const
    {
        const std::size_t i = findSlot(key);
        return i == kNotFound ? nullptr : &_values[i];
    }

    bool contains(std::uint64_t key) const
    {
        return findSlot(key) != kNotFound;
    }

    /** Insert or overwrite. */
    void
    put(std::uint64_t key, V value)
    {
        getOrCreate(key) = std::move(value);
    }

    /**
     * Reference to the value for @p key, default-constructing it (and
     * the mapping) if absent.
     */
    V &
    getOrCreate(std::uint64_t key)
    {
        if (V *v = find(key))
            return *v;
        maybeGrow();
        std::size_t i = hash(key) & (_ctrl.size() - 1);
        while (_ctrl[i] == kFull)
            i = (i + 1) & (_ctrl.size() - 1);
        if (_ctrl[i] == kTombstone)
            --_tombstones;
        _ctrl[i] = kFull;
        _keys[i] = key;
        _values[i] = V{};
        ++_size;
        return _values[i];
    }

    /** @return true when a mapping was removed. */
    bool
    erase(std::uint64_t key)
    {
        const std::size_t i = findSlot(key);
        if (i == kNotFound)
            return false;
        _ctrl[i] = kTombstone;
        _values[i] = V{};
        ++_tombstones;
        --_size;
        return true;
    }

    /** Drop every mapping; capacity is retained. */
    void
    clear()
    {
        _ctrl.assign(_ctrl.size(), kEmpty);
        _size = 0;
        _tombstones = 0;
    }

    /** Visit every (key, value) pair; iteration order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < _ctrl.size(); ++i) {
            if (_ctrl[i] == kFull)
                fn(_keys[i], _values[i]);
        }
    }

  private:
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;
    static constexpr std::uint8_t kTombstone = 2;
    static constexpr std::size_t kNotFound = ~std::size_t{0};

    /** splitmix64 finalizer: cheap and well-distributed for ids and
     *  line addresses (which share low-entropy low bits). */
    static std::size_t
    hash(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }

    std::size_t
    findSlot(std::uint64_t key) const
    {
        const std::size_t mask = _ctrl.size() - 1;
        std::size_t i = hash(key) & mask;
        while (_ctrl[i] != kEmpty) {
            if (_ctrl[i] == kFull && _keys[i] == key)
                return i;
            i = (i + 1) & mask;
        }
        return kNotFound;
    }

    void
    maybeGrow()
    {
        if ((_size + _tombstones + 1) * 10 < _ctrl.size() * 7)
            return;
        std::vector<std::uint8_t> old_ctrl = std::move(_ctrl);
        std::vector<std::uint64_t> old_keys = std::move(_keys);
        std::vector<V> old_values = std::move(_values);
        const std::size_t cap = old_ctrl.size() * 2;
        _ctrl.assign(cap, kEmpty);
        _keys.resize(cap);
        _values.resize(cap);
        _size = 0;
        _tombstones = 0;
        for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
            if (old_ctrl[i] != kFull)
                continue;
            std::size_t j = hash(old_keys[i]) & (cap - 1);
            while (_ctrl[j] == kFull)
                j = (j + 1) & (cap - 1);
            _ctrl[j] = kFull;
            _keys[j] = old_keys[i];
            _values[j] = std::move(old_values[i]);
            ++_size;
        }
    }

    std::vector<std::uint8_t> _ctrl;
    std::vector<std::uint64_t> _keys;
    std::vector<V> _values;
    std::size_t _size = 0;
    std::size_t _tombstones = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_FLAT_MAP_HH
