/**
 * @file
 * Hierarchical timing wheel: the O(1) scheduler behind EventQueue.
 *
 * A near wheel of power-of-two single-cycle buckets covers the common
 * short event horizon (ring hops, gateway lookups, L2 and memory
 * accesses); three cascading overflow levels of 256 buckets each cover
 * far-future events (watchdog timeouts, retry backoffs, cell
 * deadlines), and an unsorted far list absorbs anything beyond the
 * last level. Every bucket keeps its entries ordered by the scheduler's
 * sequence counter, so execution order — (cycle, seq) strict — is
 * bit-identical to a binary min-heap over the same entries.
 *
 * Occupancy bitmaps per level make the "next non-empty bucket" scan a
 * handful of word operations, so draining across empty cycle stretches
 * costs O(horizon / 64) words instead of O(horizon) buckets.
 *
 * A seq->location index over *tagged* entries (the express path's
 * retirement events) makes reschedule() an O(1) lookup instead of the
 * heap's O(n) scan.
 */

#ifndef FLEXSNOOP_SIM_TIMING_WHEEL_HH
#define FLEXSNOOP_SIM_TIMING_WHEEL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace flexsnoop
{

/** One scheduled event inside the wheel. */
struct WheelEntry
{
    Cycle when;
    /** (seq << 1) | tagged. The tag rides in the low bit so the packed
     *  word orders exactly as seq does (seqs are unique), keeping the
     *  entry at 88 bytes — bucket traffic is the wheel's main cost. */
    std::uint64_t seqTag;
    EventFn fn;

    static std::uint64_t
    packSeq(std::uint64_t seq, bool tagged)
    {
        return (seq << 1) | (tagged ? 1u : 0u);
    }
    std::uint64_t seq() const { return seqTag >> 1; }
    /** Tracked in the seq->location index. */
    bool tagged() const { return (seqTag & 1) != 0; }
};

class TimingWheel
{
  public:
    /** Overflow geometry: 3 levels x 256 buckets above the near wheel. */
    static constexpr unsigned kOverflowBits = 8;
    static constexpr std::size_t kOverflowSlots = 1u << kOverflowBits;
    static constexpr std::size_t kOverflowLevels = 3;

    static constexpr std::size_t kMinNearBuckets = 64;
    static constexpr std::size_t kMaxNearBuckets = 1u << 16;

    explicit TimingWheel(std::size_t near_buckets = 256);

    /**
     * Resize the near wheel (power of two, clamped to
     * [kMinNearBuckets, kMaxNearBuckets]). Only legal while empty.
     */
    void configure(std::size_t near_buckets);

    std::size_t nearBuckets() const { return _nearSize; }

    bool empty() const { return _size == 0; }
    std::size_t size() const { return _size; }

    /**
     * Insert an entry. @p now is the scheduler's current cycle; it
     * re-anchors the wheel when the insert lands in an empty wheel
     * (which is what keeps long idle jumps free). Requires
     * entry.when >= now.
     */
    void insert(Cycle now, WheelEntry entry);

    /** Remove and return the earliest entry ((when, seq) order).
     *  Requires !empty(). */
    WheelEntry pop();

    /** Earliest pending cycle. Requires !empty(). Cached; O(1) in the
     *  common case, a bitmap scan after a bucket drains. */
    Cycle minPending() const;

    /**
     * Retarget the pending *tagged* entry @p seq to fire at @p when
     * running @p fn, keeping its sequence number (and therefore its
     * FIFO rank against same-cycle events). O(1) index lookup plus an
     * O(bucket) splice. @return false when no pending entry carries
     * @p seq.
     */
    bool reschedule(std::uint64_t seq, Cycle now, Cycle when, EventFn fn);

    /** Drop all entries; bucket capacities are retained for reuse. */
    void clear();

    // Self-measurement (docs/METRICS.md "queue.*") --------------------

    /** Overflow buckets cascaded down a level. */
    std::uint64_t cascades() const { return _cascades; }
    /** Entries re-filed by those cascades. */
    std::uint64_t cascadedEntries() const { return _cascadedEntries; }
    /** High-water mark of any single bucket's depth. */
    std::uint64_t maxBucketDepth() const { return _maxBucketDepth; }
    /** Inserts that missed the near wheel (validates sizing). */
    std::uint64_t overflowScheduled() const { return _overflowScheduled; }
    /** Inserts beyond even the last overflow level. */
    std::uint64_t farScheduled() const { return _farScheduled; }

    /**
     * Horizon histogram: bucket i counts inserts whose delay
     * (when - now) had bit-width i (i.e. delay in [2^(i-1), 2^i)).
     * Only sampled while enableHorizonHistogram(true); the extra work
     * is kept off the default hot path.
     */
    static constexpr std::size_t kHorizonBuckets = 64;
    using HorizonHistogram = std::array<std::uint64_t, kHorizonBuckets>;
    void enableHorizonHistogram(bool on) { _sampleHorizon = on; }
    const HorizonHistogram &horizonHistogram() const { return _horizon; }

  private:
    using Bucket = std::vector<WheelEntry>;

    /** Where a tagged entry currently lives. */
    struct Loc
    {
        std::uint8_t level;  ///< 0 near, 1..3 overflow, 4 far
        std::uint16_t slot;  ///< bucket index within the level
        std::uint32_t pos;   ///< position within the bucket
    };
    static constexpr std::uint8_t kFarLevel = kOverflowLevels + 1;

    /** Granularity shift of overflow level @p l (1-based). */
    unsigned
    granShift(std::size_t l) const
    {
        return _nearBits + kOverflowBits * static_cast<unsigned>(l - 1);
    }

    Cycle nearWindowEnd() const { return _w0 + _nearSize; }

    Bucket &bucketAt(const Loc &loc);

    /** File @p entry into the level its cycle belongs to, keeping the
     *  target bucket seq-sorted. Does not touch _size. @return the
     *  level chosen (0 near, 1..3 overflow, kFarLevel). */
    std::uint8_t place(WheelEntry &&entry);

    /** Seq-sorted insert into one bucket (append in the common case). */
    void insertSorted(Bucket &bucket, std::uint8_t level,
                      std::uint16_t slot, WheelEntry &&entry);

    /** Advance _curSlot (cascading overflow levels and the far list as
     *  needed) until the current near bucket holds an unconsumed
     *  entry. @return false when the wheel is empty. */
    bool advanceToPending();

    /** Cascade the next occupied overflow bucket down one level and
     *  re-anchor the lower windows at its start. @return false when
     *  every overflow level is exhausted. */
    bool refillFromOverflow();

    /** Re-anchor an empty wheel at @p now. */
    void resetTo(Cycle now);

    /** Re-file far-list entries that fit the (re-anchored) levels. */
    void redistributeFar();

    Cycle recomputeMin() const;

    // Occupancy bitmaps ----------------------------------------------
    static void setBit(std::vector<std::uint64_t> &bm, std::size_t i);
    static void clrBit(std::vector<std::uint64_t> &bm, std::size_t i);
    /** First set bit at index >= @p from, or SIZE_MAX. */
    static std::size_t scanFrom(const std::vector<std::uint64_t> &bm,
                                std::size_t from, std::size_t bits);

    unsigned _nearBits = 8;
    std::size_t _nearSize = 256;
    std::size_t _nearMask = 255;

    std::vector<Bucket> _near;
    std::array<std::vector<Bucket>, kOverflowLevels> _over;
    Bucket _far; ///< seq-sorted; cycles beyond the last level

    std::vector<std::uint64_t> _nearMap;
    std::array<std::vector<std::uint64_t>, kOverflowLevels> _overMap;

    Cycle _w0 = 0;            ///< near window start (aligned)
    std::size_t _curSlot = 0; ///< near slot currently draining
    std::size_t _head = 0;    ///< consumed prefix of _near[_curSlot]
    /** Next overflow slot to examine per level (256 = exhausted). */
    std::array<std::size_t, kOverflowLevels> _scan{};

    std::size_t _size = 0;

    FlatMap<Loc> _tagged;

    mutable bool _minValid = false;
    mutable Cycle _minCached = 0;

    std::uint64_t _cascades = 0;
    std::uint64_t _cascadedEntries = 0;
    std::uint64_t _maxBucketDepth = 0;
    std::uint64_t _overflowScheduled = 0;
    std::uint64_t _farScheduled = 0;
    bool _sampleHorizon = false;
    HorizonHistogram _horizon{};
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_TIMING_WHEEL_HH
