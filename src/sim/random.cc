#include "sim/random.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flexsnoop
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire's multiply-shift with rejection for exact uniformity.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    assert(mean >= 1.0);
    if (mean == 1.0)
        return 1;
    // Inverse-CDF of a geometric with success prob 1/mean, shifted to >= 1.
    const double p = 1.0 / mean;
    double u = nextDouble();
    if (u >= 1.0)
        u = 0.9999999999999999;
    const double val = std::log1p(-u) / std::log1p(-p);
    return 1 + static_cast<std::uint64_t>(val);
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
{
    assert(n > 0);
    _cdf.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        _cdf[i] = sum;
    }
    for (auto &v : _cdf)
        v /= sum;
    _cdf.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    auto it = std::lower_bound(_cdf.begin(), _cdf.end(), u);
    if (it == _cdf.end())
        --it;
    return static_cast<std::size_t>(it - _cdf.begin());
}

} // namespace flexsnoop
