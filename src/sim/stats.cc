#include "sim/stats.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>

namespace flexsnoop
{

void
ScalarStat::sample(double v)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += v;
}

void
ScalarStat::reset()
{
    _count = 0;
    _sum = 0.0;
    _min = 0.0;
    _max = 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : _width(bucket_width), _buckets(num_buckets, 0)
{
    assert(bucket_width > 0.0);
    assert(num_buckets > 0);
}

void
Histogram::sample(double v)
{
    ++_count;
    _sum += v;
    const auto idx = static_cast<std::size_t>(v / _width);
    if (v < 0.0 || idx >= _buckets.size())
        ++_overflow;
    else
        ++_buckets[idx];
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _overflow = 0;
    _count = 0;
    _sum = 0.0;
}

double
Histogram::percentile(double q) const
{
    if (_count == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(q * _count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen >= target)
            return (i + 1) * _width;
    }
    return _buckets.size() * _width;
}

Counter &
StatGroup::counter(const std::string &stat)
{
    return _counters[stat];
}

ScalarStat &
StatGroup::scalar(const std::string &stat)
{
    return _scalars[stat];
}

Histogram &
StatGroup::histogram(const std::string &stat, double width,
                     std::size_t buckets)
{
    auto it = _histograms.find(stat);
    if (it == _histograms.end())
        it = _histograms.emplace(stat, Histogram(width, buckets)).first;
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &stat) const
{
    auto it = _counters.find(stat);
    return it == _counters.end() ? 0 : it->second.value();
}

double
StatGroup::scalarMean(const std::string &stat) const
{
    auto it = _scalars.find(stat);
    return it == _scalars.end() ? 0.0 : it->second.mean();
}

void
StatGroup::reset()
{
    for (auto &[name, c] : _counters)
        c.reset();
    for (auto &[name, s] : _scalars)
        s.reset();
    for (auto &[name, h] : _histograms)
        h.reset();
}

namespace
{

/** Name-sorted view of an unordered stat map for deterministic dumps. */
template <typename Map>
std::vector<typename Map::const_iterator>
sortedByName(const Map &map)
{
    std::vector<typename Map::const_iterator> items;
    items.reserve(map.size());
    for (auto it = map.begin(); it != map.end(); ++it)
        items.push_back(it);
    std::sort(items.begin(), items.end(),
              [](const auto &a, const auto &b) {
                  return a->first < b->first;
              });
    return items;
}

} // namespace

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &it : sortedByName(_counters))
        os << _name << '.' << it->first << " = " << it->second.value()
           << '\n';
    for (const auto &it : sortedByName(_scalars)) {
        const ScalarStat &s = it->second;
        os << _name << '.' << it->first << " = mean "
           << std::setprecision(6) << s.mean() << " (n=" << s.count()
           << ", min=" << s.min() << ", max=" << s.max() << ")\n";
    }
    for (const auto &it : sortedByName(_histograms)) {
        const Histogram &h = it->second;
        os << _name << '.' << it->first << " = mean "
           << std::setprecision(6) << h.mean() << " (n=" << h.count()
           << ", p50=" << h.percentile(0.5) << ", p99="
           << h.percentile(0.99) << ")\n";
    }
}

} // namespace flexsnoop
