/**
 * @file
 * Deterministic pseudo-random number generation and the distributions the
 * workload generators need (uniform, geometric-ish gaps, Zipf).
 *
 * We implement our own engine (xoshiro256**) instead of <random> engines so
 * results are bit-identical across standard libraries and platforms.
 */

#ifndef FLEXSNOOP_SIM_RANDOM_HH
#define FLEXSNOOP_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

namespace flexsnoop
{

/**
 * xoshiro256** engine seeded via splitmix64.
 *
 * Fast, high-quality, and deterministic across platforms.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a single 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial that succeeds with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

    /**
     * Geometric number of cycles with mean @p mean (>= 1).
     *
     * Used for inter-reference gaps in trace generators.
     */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t _s[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Precomputes the CDF once; sampling is a binary search. Used to give
 * workload footprints realistic hot/cold skew.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     number of distinct values
     * @param theta skew (0 = uniform, ~0.99 = classic Zipf)
     */
    ZipfSampler(std::size_t n, double theta);

    /** Draw one sample in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return _cdf.size(); }

  private:
    std::vector<double> _cdf;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_RANDOM_HH
