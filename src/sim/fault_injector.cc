#include "sim/fault_injector.hh"

#include <sstream>
#include <stdexcept>

#include "sim/event_queue.hh"

namespace flexsnoop
{

namespace
{

double
parseRate(const std::string &key, const std::string &value)
{
    double rate = 0.0;
    std::size_t pos = 0;
    try {
        rate = std::stod(value, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument("fault spec: bad rate for '" + key +
                                    "': '" + value + "'");
    }
    if (pos != value.size())
        throw std::invalid_argument(
            "fault spec: trailing characters in rate for '" + key +
            "': '" + value + "'");
    if (rate < 0.0 || rate >= 1.0)
        throw std::invalid_argument("fault spec: rate for '" + key +
                                    "' must be in [0, 1), got '" + value +
                                    "'");
    return rate;
}

std::uint64_t
parseCount(const std::string &key, const std::string &value)
{
    std::uint64_t parsed = 0;
    std::size_t pos = 0;
    try {
        parsed = std::stoull(value, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument("fault spec: bad value for '" + key +
                                    "': '" + value + "'");
    }
    if (pos != value.size() || (!value.empty() && value[0] == '-'))
        throw std::invalid_argument("fault spec: bad value for '" + key +
                                    "': '" + value + "'");
    return parsed;
}

} // namespace

FaultConfig
FaultConfig::fromSpec(const std::string &spec)
{
    FaultConfig config;
    std::istringstream iss(spec);
    std::string item;
    bool any = false;
    while (std::getline(iss, item, ',')) {
        if (item.empty())
            continue;
        any = true;
        const auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument(
                "fault spec: expected key=value, got '" + item + "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "drop") {
            config.dropRate = parseRate(key, value);
        } else if (key == "dup") {
            config.dupRate = parseRate(key, value);
        } else if (key == "delay") {
            config.delayRate = parseRate(key, value);
        } else if (key == "predictor") {
            config.predictorRate = parseRate(key, value);
        } else if (key == "global_drop") {
            config.globalDropRate = parseRate(key, value);
        } else if (key == "global_dup") {
            config.globalDupRate = parseRate(key, value);
        } else if (key == "global_delay") {
            config.globalDelayRate = parseRate(key, value);
        } else if (key == "seed") {
            config.seed = parseCount(key, value);
        } else if (key == "delay_cycles") {
            config.delayCycles = parseCount(key, value);
        } else if (key == "start") {
            config.startCycle = parseCount(key, value);
        } else {
            throw std::invalid_argument(
                "fault spec: unknown key '" + key +
                "' (expected drop, dup, delay, predictor, global_drop, "
                "global_dup, global_delay, seed, delay_cycles, start)");
        }
    }
    if (!any)
        throw std::invalid_argument("fault spec: empty specification");
    if (config.dropRate + config.dupRate + config.delayRate >= 1.0)
        throw std::invalid_argument(
            "fault spec: drop+dup+delay rates must sum below 1");
    if (config.effectiveGlobalDrop() + config.effectiveGlobalDup() +
            config.effectiveGlobalDelay() >= 1.0)
        throw std::invalid_argument(
            "fault spec: global drop+dup+delay rates must sum below 1");
    return config;
}

std::string
FaultConfig::describe() const
{
    std::ostringstream oss;
    oss << "drop=" << dropRate << ",dup=" << dupRate
        << ",delay=" << delayRate << ",predictor=" << predictorRate;
    if (globalDropRate >= 0.0)
        oss << ",global_drop=" << globalDropRate;
    if (globalDupRate >= 0.0)
        oss << ",global_dup=" << globalDupRate;
    if (globalDelayRate >= 0.0)
        oss << ",global_delay=" << globalDelayRate;
    oss << ",seed=" << seed << ",delay_cycles=" << delayCycles;
    if (startCycle > 0)
        oss << ",start=" << startCycle;
    return oss.str();
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : _config(config), _linkRng(config.seed),
      _predRng(config.seed ^ 0xf4a7c159e3779b97ull), _stats("faults"),
      _linkDecisions(_stats.counter("link_decisions")),
      _drops(_stats.counter("drops_injected")),
      _dups(_stats.counter("dups_injected")),
      _delays(_stats.counter("delays_injected")),
      _predLookups(_stats.counter("predictor_lookups")),
      _flips(_stats.counter("predictor_flips"))
{
}

bool
FaultInjector::dormant() const
{
    return _config.startCycle > 0 && _clock &&
           _clock->now() < _config.startCycle;
}

FaultInjector::LinkAction
FaultInjector::onLinkSend(bool global_link)
{
    if (dormant())
        return LinkAction::None;
    _linkDecisions.inc();
    const double drop =
        global_link ? _config.effectiveGlobalDrop() : _config.dropRate;
    const double dup =
        global_link ? _config.effectiveGlobalDup() : _config.dupRate;
    const double delay =
        global_link ? _config.effectiveGlobalDelay() : _config.delayRate;
    const double u = _linkRng.nextDouble();
    if (u < drop) {
        _drops.inc();
        return LinkAction::Drop;
    }
    if (u < drop + dup) {
        _dups.inc();
        return LinkAction::Duplicate;
    }
    if (u < drop + dup + delay) {
        _delays.inc();
        return LinkAction::Delay;
    }
    return LinkAction::None;
}

bool
FaultInjector::flipPrediction()
{
    if (dormant())
        return false;
    _predLookups.inc();
    if (!_predRng.chance(_config.predictorRate))
        return false;
    _flips.inc();
    return true;
}

} // namespace flexsnoop
