/**
 * @file
 * Deterministic, seeded fault injection for the unreliable-ring mode
 * (docs/FAULTS.md).
 *
 * The injector models two hardware failure classes of an embedded-ring
 * multiprocessor:
 *  - link faults: a snoop message traversing a ring link may be
 *    dropped, duplicated, or delayed (transient link/router errors);
 *  - predictor soft errors: a supplier/presence predictor lookup
 *    returns the flipped answer (SRAM bit flips), which violates the
 *    Subset FN-only / Superset FP-only contracts and must be absorbed
 *    by degrading to the safe primitive in the controller.
 *
 * All decisions are drawn from seeded xoshiro256** streams (one for
 * link faults, one for predictor flips) in event-execution order, so a
 * run with a given (workload, config, fault seed) is bit-reproducible.
 */

#ifndef FLEXSNOOP_SIM_FAULT_INJECTOR_HH
#define FLEXSNOOP_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

class EventQueue;

/**
 * Fault-injection configuration. All rates are per-decision
 * probabilities in [0, 1): link rates apply per link traversal,
 * predictorRate per predictor lookup at a gateway.
 */
struct FaultConfig
{
    double dropRate = 0.0;      ///< message vanishes on the link
    double dupRate = 0.0;       ///< message delivered twice
    double delayRate = 0.0;     ///< message arrives delayCycles late
    double predictorRate = 0.0; ///< predictor answer is inverted
    Cycle delayCycles = 500;    ///< extra latency of a delayed message
    std::uint64_t seed = 1;     ///< seed of the fault streams
    /** First cycle at which faults may be injected. Before it the
     *  injector is dormant: no RNG draws, no counter increments, so
     *  telemetry health detectors have an exact ground-truth onset to
     *  be validated against. */
    Cycle startCycle = 0;

    // Per-level overrides for global-ring links (hier topology). The
    // longer inter-ring wires typically have their own error rate; a
    // negative value inherits the flat rate above, so flat configs and
    // degenerate hier configs draw identical fault streams.
    double globalDropRate = -1.0;
    double globalDupRate = -1.0;
    double globalDelayRate = -1.0;

    /** Drop rate applying to a global-ring traversal. */
    double
    effectiveGlobalDrop() const
    {
        return globalDropRate < 0.0 ? dropRate : globalDropRate;
    }

    /** Duplicate rate applying to a global-ring traversal. */
    double
    effectiveGlobalDup() const
    {
        return globalDupRate < 0.0 ? dupRate : globalDupRate;
    }

    /** Delay rate applying to a global-ring traversal. */
    double
    effectiveGlobalDelay() const
    {
        return globalDelayRate < 0.0 ? delayRate : globalDelayRate;
    }

    /** True when any fault class has a non-zero rate. */
    bool
    armed() const
    {
        return dropRate > 0.0 || dupRate > 0.0 || delayRate > 0.0 ||
               predictorRate > 0.0 || globalDropRate > 0.0 ||
               globalDupRate > 0.0 || globalDelayRate > 0.0;
    }

    /**
     * Parse a CLI spec of comma-separated assignments, e.g.
     * "drop=1e-3,dup=1e-4,delay=1e-3,predictor=1e-4,seed=7".
     * Accepted keys: drop, dup, delay, predictor (rates in [0, 1)),
     * global_drop, global_dup, global_delay (global-ring overrides,
     * inherit the flat rate when unset), seed, delay_cycles, start
     * (first cycle faults may fire; unsigned).
     * @throws std::invalid_argument naming the offending key/value
     */
    static FaultConfig fromSpec(const std::string &spec);

    /** One-line spec rendering (inverse of fromSpec). */
    std::string describe() const;
};

/**
 * Draws fault decisions and accounts them. One injector per Machine;
 * the ring consults it per link send, the controller per predictor
 * lookup. Zero-cost when not installed (the hooks are null-checked
 * pointers).
 */
class FaultInjector
{
  public:
    /** Outcome of one link-traversal decision. */
    enum class LinkAction : std::uint8_t
    {
        None,      ///< deliver normally
        Drop,      ///< never deliver
        Duplicate, ///< deliver twice
        Delay,     ///< deliver delayCycles() late
    };

    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return _config; }
    bool armed() const { return _config.armed(); }
    Cycle delayCycles() const { return _config.delayCycles; }

    /**
     * Give the injector a clock for the startCycle gate. Without one
     * (or with startCycle == 0) faults are live from cycle 0, so
     * existing configurations draw identical fault streams.
     */
    void setClock(const EventQueue *queue) { _clock = queue; }

    /**
     * Decide the fate of one message about to traverse a ring link.
     * Exactly one uniform draw per call; drop wins over duplicate over
     * delay when rates overlap. @p global_link selects the per-level
     * global-ring rates (hier topology); with no overrides set the
     * decision is identical either way.
     */
    LinkAction onLinkSend(bool global_link = false);

    /** Decide whether one predictor lookup's answer is inverted. */
    bool flipPrediction();

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    // Injected-fault counts (measured phase once stats are reset).
    std::uint64_t linkDecisions() const { return _linkDecisions.value(); }
    std::uint64_t dropsInjected() const { return _drops.value(); }
    std::uint64_t dupsInjected() const { return _dups.value(); }
    std::uint64_t delaysInjected() const { return _delays.value(); }
    std::uint64_t predictorLookups() const { return _predLookups.value(); }
    std::uint64_t predictorFlips() const { return _flips.value(); }

  private:
    /** True while the startCycle gate holds faults back. */
    bool dormant() const;

    FaultConfig _config;
    const EventQueue *_clock = nullptr;
    Rng _linkRng;
    Rng _predRng;

    StatGroup _stats;
    Counter &_linkDecisions; ///< link traversals that drew a decision
    Counter &_drops;
    Counter &_dups;
    Counter &_delays;
    Counter &_predLookups; ///< predictor lookups that drew a decision
    Counter &_flips;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_FAULT_INJECTOR_HH
