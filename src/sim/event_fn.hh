/**
 * @file
 * Move-only callable wrapper used by the event scheduler.
 *
 * Lives in its own header so both scheduler implementations (the
 * hierarchical timing wheel in timing_wheel.hh and the reference binary
 * heap inside event_queue.cc) can store callables without pulling in
 * the full EventQueue interface.
 */

#ifndef FLEXSNOOP_SIM_EVENT_FN_HH
#define FLEXSNOOP_SIM_EVENT_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace flexsnoop
{

/**
 * Move-only callable wrapper with small-buffer optimization.
 *
 * Callables whose size fits kInlineSize (and that are nothrow
 * move-constructible) live inside the wrapper; larger ones fall back to
 * a heap allocation. Unlike std::function there is no copy support and
 * no RTTI, which keeps the inline fast path a single indirect call.
 */
class EventFn
{
  public:
    /** Inline storage: sized so a ring-hop lambda (this + NodeId +
     *  SnoopMessage) and the retry lambdas stay allocation-free. */
    static constexpr std::size_t kInlineSize = 64;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_storage)) Fn(std::forward<F>(fn));
            _ops = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(_storage))
                Fn *(new Fn(std::forward<F>(fn)));
            _ops = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(std::move(other)); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(std::move(other));
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { destroy(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(_storage);
    }

    /** True if a callable of type @p Fn avoids the heap fallback. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*moveTo)(void *src, void *dst); ///< move-construct + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *src, void *dst) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) {
            (**std::launder(reinterpret_cast<Fn **>(p)))();
        },
        [](void *src, void *dst) {
            Fn **s = std::launder(reinterpret_cast<Fn **>(src));
            ::new (dst) Fn *(*s); // steal the pointer
        },
        [](void *p) { delete *std::launder(reinterpret_cast<Fn **>(p)); },
    };

    void
    moveFrom(EventFn &&other) noexcept
    {
        _ops = other._ops;
        if (_ops)
            _ops->moveTo(other._storage, _storage);
        other._ops = nullptr;
    }

    void
    destroy() noexcept
    {
        if (_ops) {
            _ops->destroy(_storage);
            _ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _storage[kInlineSize];
    const Ops *_ops = nullptr;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_SIM_EVENT_FN_HH
