/**
 * @file
 * Offline decoder for `.fstrace` files (docs/TRACING.md): validates the
 * header and loads the record stream for the analysis library and the
 * flexsnoop_trace CLI.
 */

#ifndef FLEXSNOOP_TRACE_TRACE_READER_HH
#define FLEXSNOOP_TRACE_TRACE_READER_HH

#include <string>
#include <vector>

#include "trace/trace_format.hh"

namespace flexsnoop
{

/** A fully-decoded trace file. */
struct TraceFile
{
    TraceFileHeader header;
    std::vector<TraceRecord> records; ///< file order (capture order)
};

/**
 * Load and validate @p path.
 *
 * @throws std::runtime_error on open failure, bad magic, unsupported
 *         version/record size, or a truncated record tail. A header
 *         whose `recorded` count is zero (sink crashed before
 *         finish()) is accepted; the record count then comes from the
 *         file length.
 */
TraceFile loadTrace(const std::string &path);

} // namespace flexsnoop

#endif // FLEXSNOOP_TRACE_TRACE_READER_HH
