/**
 * @file
 * On-disk format of the transaction-level trace subsystem
 * (docs/TRACING.md).
 *
 * A `.fstrace` file is a fixed-size header followed by a stream of
 * fixed-size binary records, one per traced event, in the order they
 * were recorded. Records are plain PODs written in host byte order
 * (like the workload trace files of workload/trace_io.hh): the capture
 * side stays a single struct store per event, and the decoder runs on
 * the same machine class that produced the file.
 */

#ifndef FLEXSNOOP_TRACE_TRACE_FORMAT_HH
#define FLEXSNOOP_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <string_view>

#include "sim/types.hh"

namespace flexsnoop
{

/**
 * Every trace point of the simulator. The per-event payload lives in
 * TraceRecord's generic fields; the catalog in docs/TRACING.md
 * documents the encoding per event type.
 */
enum class TraceEvent : std::uint16_t
{
    Invalid = 0,

    // --- Transaction lifecycle (requester side) ---
    TxnStart,       ///< ring transaction created (arg1 = core, a = kind,
                    ///< b = retry attempt)
    RingIssue,      ///< first ring message leaves the requester
    RingDone,       ///< conclusion returned (a = 1 found / 0 negative)
    MemFetch,       ///< ring negative; memory read issued (arg1 = latency)
    MemData,        ///< memory data arrived at the requester
    DataDelivered,  ///< read data handed to the core(s)
                    ///< (arg1 = read latency in cycles, a = from memory)
    WriteComplete,  ///< write ownership installed (arg1 = write latency)
    TxnRetire,      ///< transaction record erased
    RetryScheduled, ///< squash/timeout reissue (arg1 = backoff, a = attempt)

    // --- Per-hop ring activity (gateway side) ---
    Hop,            ///< link traversal (node = from, arg1 = arrival cycle,
                    ///< a = MsgType, b = flag bits: 1 found, 2 squashed,
                    ///< 4 write, 8 global-ring leg)
    HopDecision,    ///< primitive chosen at a gateway (a = Primitive,
                    ///< b = predictor answer 0/1, 2 = no predictor,
                    ///< arg1 = decision latency)
    GateDefer,      ///< message parked behind a line gate
    GateResume,     ///< parked message re-entered processing
    SnoopDone,      ///< CMP snoop finished (a = found, b = abandoned)
    SupplierHit,    ///< node supplies the line (arg1 = data-net latency)
    Collision,      ///< address collision (a = CollisionOutcome,
                    ///< arg1 = colliding local transaction id)
    IncompleteRejected, ///< fault mode: conclusion with missing visits
                        ///< (a = visits, b = expected)
    StaleAbsorbed,  ///< traffic of a dead transaction absorbed

    // --- Recovery & fault injection ---
    WatchdogExpire, ///< per-txn watchdog fired (a = 1 finish / 0 reissue)
    FaultDrop,      ///< injector dropped a link traversal (node = from)
    FaultDup,       ///< injector duplicated a link traversal
    FaultDelay,     ///< injector delayed a link traversal (arg1 = extra)
    PredictorFlip,  ///< injector inverted a predictor answer
                    ///< (a = 1 presence / 0 supplier predictor)

    // --- Simulator-level markers ---
    ExpressRun,     ///< express path coalesced a hop chain (node = from,
                    ///< arg0 = links virtualized, arg1 = retire cycle)
    CounterSnapshot,///< periodic StatGroup sample (a = TraceCounterId,
                    ///< arg0 = counter value)
    MeasureStart,   ///< warmup barrier: statistics were reset here

    NumEvents
};

/** Collision record outcomes (TraceEvent::Collision `a` field). */
enum class CollisionOutcome : std::uint16_t
{
    PassingSquashed = 0, ///< the passing message lost and was squashed
    LocalSquashed = 1,   ///< the node's own transaction lost
    InvalidateOnFill = 2 ///< local read wins but must drop its fill
};

/** Counters sampled by CounterSnapshot records. */
enum class TraceCounterId : std::uint16_t
{
    ReadRingRequests = 0,
    ReadSnoops,
    ReadLinkMessages,
    WriteRingRequests,
    Collisions,
    Retries,
    WatchdogTimeouts,
    NumCounters
};

constexpr std::string_view
toString(TraceEvent e)
{
    switch (e) {
      case TraceEvent::Invalid: return "Invalid";
      case TraceEvent::TxnStart: return "TxnStart";
      case TraceEvent::RingIssue: return "RingIssue";
      case TraceEvent::RingDone: return "RingDone";
      case TraceEvent::MemFetch: return "MemFetch";
      case TraceEvent::MemData: return "MemData";
      case TraceEvent::DataDelivered: return "DataDelivered";
      case TraceEvent::WriteComplete: return "WriteComplete";
      case TraceEvent::TxnRetire: return "TxnRetire";
      case TraceEvent::RetryScheduled: return "RetryScheduled";
      case TraceEvent::Hop: return "Hop";
      case TraceEvent::HopDecision: return "HopDecision";
      case TraceEvent::GateDefer: return "GateDefer";
      case TraceEvent::GateResume: return "GateResume";
      case TraceEvent::SnoopDone: return "SnoopDone";
      case TraceEvent::SupplierHit: return "SupplierHit";
      case TraceEvent::Collision: return "Collision";
      case TraceEvent::IncompleteRejected: return "IncompleteRejected";
      case TraceEvent::StaleAbsorbed: return "StaleAbsorbed";
      case TraceEvent::WatchdogExpire: return "WatchdogExpire";
      case TraceEvent::FaultDrop: return "FaultDrop";
      case TraceEvent::FaultDup: return "FaultDup";
      case TraceEvent::FaultDelay: return "FaultDelay";
      case TraceEvent::PredictorFlip: return "PredictorFlip";
      case TraceEvent::ExpressRun: return "ExpressRun";
      case TraceEvent::CounterSnapshot: return "CounterSnapshot";
      case TraceEvent::MeasureStart: return "MeasureStart";
      case TraceEvent::NumEvents: break;
    }
    return "?";
}

constexpr std::string_view
toString(TraceCounterId id)
{
    switch (id) {
      case TraceCounterId::ReadRingRequests: return "read_ring_requests";
      case TraceCounterId::ReadSnoops: return "read_snoops";
      case TraceCounterId::ReadLinkMessages: return "read_link_messages";
      case TraceCounterId::WriteRingRequests: return "write_ring_requests";
      case TraceCounterId::Collisions: return "collisions";
      case TraceCounterId::Retries: return "retries";
      case TraceCounterId::WatchdogTimeouts: return "watchdog_timeouts";
      case TraceCounterId::NumCounters: break;
    }
    return "?";
}

/** `node` value of records not tied to a ring node. */
constexpr std::uint16_t kTraceNoNode = 0xffff;

/**
 * One traced event: 40 bytes, no padding, trivially copyable. The
 * generic fields mean different things per TraceEvent (see the
 * catalog); `arg0` is the line address for every protocol event.
 */
struct TraceRecord
{
    std::uint64_t cycle = 0; ///< simulated cycle of the event
    std::uint64_t txn = 0;   ///< transaction id, 0 when not applicable
    std::uint64_t arg0 = 0;  ///< usually the line address
    std::uint64_t arg1 = 0;  ///< event-specific payload
    std::uint16_t type = 0;  ///< TraceEvent
    std::uint16_t node = kTraceNoNode; ///< ring node, kTraceNoNode if none
    std::uint16_t a = 0;     ///< small event-specific payload
    std::uint16_t b = 0;     ///< small event-specific payload

    TraceEvent event() const { return static_cast<TraceEvent>(type); }
};

static_assert(sizeof(TraceRecord) == 40,
              "record size is part of the file format");

constexpr char kTraceMagic[8] = {'F', 'S', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint32_t kTraceVersion = 1;

/** Buffer-overflow policy of the capture ring (TraceConfig::Mode). */
enum class TraceMode : std::uint32_t
{
    Drop = 0,  ///< keep the first N records, count the rest as dropped
    Spill = 1, ///< flush the full buffer to the file and keep recording
};

/**
 * Fixed 64-byte file header. `recorded` / `dropped` / `spills` are
 * patched in when the sink finishes; a crashed run leaves them zero,
 * which the reader treats as "trust the file length".
 */
struct TraceFileHeader
{
    char magic[8] = {};           ///< kTraceMagic
    std::uint32_t version = 0;    ///< kTraceVersion
    std::uint32_t recordSize = 0; ///< sizeof(TraceRecord)
    std::uint32_t numNodes = 0;   ///< ring nodes of the traced machine
    std::uint32_t numCores = 0;   ///< cores of the traced machine
    std::uint32_t mode = 0;       ///< TraceMode
    std::uint32_t ringKb = 0;     ///< capture buffer size
    std::uint64_t recorded = 0;   ///< records written to the file
    std::uint64_t dropped = 0;    ///< records lost to a full buffer
    std::uint64_t spills = 0;     ///< buffer flushes (spill mode)
    std::uint64_t reserved = 0;   ///< pads the header to 64 bytes
};

static_assert(sizeof(TraceFileHeader) == 64,
              "header size is part of the file format");

} // namespace flexsnoop

#endif // FLEXSNOOP_TRACE_TRACE_FORMAT_HH
