/**
 * @file
 * TraceSink: the capture side of the tracing subsystem
 * (docs/TRACING.md).
 *
 * One sink per simulation run (each run owns its machine and executes
 * on one worker thread, so the sink is naturally per-worker and needs
 * no locks). The hot path is a single bounds check plus one 40-byte
 * struct store into a preallocated ring buffer; a full buffer either
 * drops further records (counting them) or spills the buffer to the
 * `.fstrace` file and keeps going, per TraceConfig::mode — the
 * gator-style split between low-overhead in-process capture and
 * offline decoding.
 *
 * Every instrumented component holds a `TraceSink *` that is null when
 * tracing is off, so a disabled trace point costs one branch on a
 * cached pointer.
 */

#ifndef FLEXSNOOP_TRACE_TRACE_SINK_HH
#define FLEXSNOOP_TRACE_TRACE_SINK_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace/trace_format.hh"

namespace flexsnoop
{

/**
 * Runtime configuration of one trace capture. Disabled (empty path) by
 * default; a MachineConfig with a disabled TraceConfig builds a
 * machine without a sink, bit-identical to a build without the hooks.
 */
struct TraceConfig
{
    std::string path;           ///< output file; empty = tracing off
    std::size_t ringKb = 256;   ///< capture buffer size in KiB
    TraceMode mode = TraceMode::Spill;
    Cycle snapshotCycles = 10000; ///< CounterSnapshot cadence (0 = off)

    bool enabled() const { return !path.empty(); }

    /**
     * Parse the CLI spec "FILE[,ring_kb=N][,mode=drop|spill]
     * [,snapshot=N]".
     * @throws std::invalid_argument naming the offending key/value
     */
    static TraceConfig fromSpec(const std::string &spec);
};

class TraceSink
{
  public:
    /**
     * Opens @p config.path and writes a placeholder header; throws
     * std::runtime_error if the file cannot be created.
     *
     * @param num_nodes / @p num_cores recorded in the file header
     */
    TraceSink(const TraceConfig &config, std::size_t num_nodes,
              std::size_t num_cores);
    ~TraceSink(); ///< finish()es if the owner did not

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * Record one event. Hot path: one capacity branch and one struct
     * store; never allocates. In drop mode a full buffer counts the
     * record as dropped; in spill mode the buffer is flushed to disk
     * first (the only slow path).
     */
    void
    record(TraceEvent ev, Cycle cycle, TransactionId txn, Addr arg0,
           std::uint64_t arg1 = 0, std::uint16_t node = kTraceNoNode,
           std::uint16_t a = 0, std::uint16_t b = 0)
    {
        if (_count == _capacity && !overflow())
            return;
        TraceRecord &r = _buffer[_count++];
        r.cycle = cycle;
        r.txn = txn == kInvalidTransaction ? 0 : txn;
        r.arg0 = arg0;
        r.arg1 = arg1;
        r.type = static_cast<std::uint16_t>(ev);
        r.node = node;
        r.a = a;
        r.b = b;
        ++_recorded;
        if (cycle >= _nextSnapshot)
            snapshotDue(cycle);
    }

    /**
     * Install the periodic counter-sampling hook. Instead of scheduling
     * its own events (which would perturb the simulated event stream
     * and the run's exec-cycle count), the sink piggybacks on recorded
     * events: the first record at or past the next snapshot cycle
     * triggers @p fn, which emits CounterSnapshot records through the
     * sink. Re-entrant records from inside the hook never re-trigger it.
     */
    void setSnapshotFn(std::function<void(Cycle)> fn);

    /**
     * Flush everything to the file, patch the header counts, and close.
     * Idempotent; called by the destructor if the owner does not.
     */
    void finish();

    const TraceConfig &config() const { return _config; }

    // Capture accounting (docs/METRICS.md "trace.*").
    std::uint64_t recorded() const { return _recorded; }
    std::uint64_t dropped() const { return _dropped; }
    std::uint64_t spills() const { return _spills; }

  private:
    /** Full-buffer slow path: true when the caller may store. */
    bool overflow();
    void flushBuffer();
    void snapshotDue(Cycle cycle);

    TraceConfig _config;
    std::uint32_t _numNodes = 0; ///< header fields, rewritten by finish()
    std::uint32_t _numCores = 0;
    std::vector<TraceRecord> _buffer;
    std::size_t _capacity = 0;
    std::size_t _count = 0;

    std::FILE *_file = nullptr;
    std::uint64_t _recorded = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _spills = 0;
    bool _finished = false;

    std::function<void(Cycle)> _snapshotFn;
    /** Next cycle a snapshot is due; max = no hook installed. */
    Cycle _nextSnapshot = kNoSnapshot;
    bool _inSnapshot = false;

    static constexpr Cycle kNoSnapshot = ~Cycle{0};
};

} // namespace flexsnoop

#endif // FLEXSNOOP_TRACE_TRACE_SINK_HH
