#include "trace/trace_sink.hh"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

/** Parse an unsigned decimal field of the --trace spec. */
std::uint64_t
parseSpecUnsigned(const std::string &key, const std::string &value)
{
    if (value.empty())
        throw std::invalid_argument("trace spec: empty value for " + key);
    std::uint64_t out = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            throw std::invalid_argument("trace spec: bad value for " +
                                        key + ": '" + value + "'");
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return out;
}

} // namespace

TraceConfig
TraceConfig::fromSpec(const std::string &spec)
{
    TraceConfig cfg;
    std::istringstream iss(spec);
    std::string item;
    bool first = true;
    while (std::getline(iss, item, ',')) {
        if (first) {
            // The first comma-field is the output path, no key.
            if (item.empty())
                throw std::invalid_argument(
                    "trace spec: missing output path");
            cfg.path = item;
            first = false;
            continue;
        }
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "trace spec: expected key=value, got '" + item + "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "ring_kb") {
            cfg.ringKb =
                static_cast<std::size_t>(parseSpecUnsigned(key, value));
            if (cfg.ringKb == 0)
                throw std::invalid_argument(
                    "trace spec: ring_kb must be >= 1");
        } else if (key == "mode") {
            if (value == "drop")
                cfg.mode = TraceMode::Drop;
            else if (value == "spill")
                cfg.mode = TraceMode::Spill;
            else
                throw std::invalid_argument(
                    "trace spec: mode must be drop or spill, got '" +
                    value + "'");
        } else if (key == "snapshot") {
            cfg.snapshotCycles = parseSpecUnsigned(key, value);
        } else {
            throw std::invalid_argument("trace spec: unknown key '" +
                                        key + "'");
        }
    }
    if (first)
        throw std::invalid_argument("trace spec: missing output path");
    return cfg;
}

TraceSink::TraceSink(const TraceConfig &config, std::size_t num_nodes,
                     std::size_t num_cores)
    : _config(config),
      _numNodes(static_cast<std::uint32_t>(num_nodes)),
      _numCores(static_cast<std::uint32_t>(num_cores))
{
    _capacity = (_config.ringKb * 1024) / sizeof(TraceRecord);
    if (_capacity == 0)
        _capacity = 1;
    _buffer.resize(_capacity);

    _file = std::fopen(_config.path.c_str(), "wb");
    if (!_file)
        throw std::runtime_error("cannot create trace file: " +
                                 _config.path);

    TraceFileHeader header;
    std::memcpy(header.magic, kTraceMagic, sizeof(kTraceMagic));
    header.version = kTraceVersion;
    header.recordSize = sizeof(TraceRecord);
    header.numNodes = _numNodes;
    header.numCores = _numCores;
    header.mode = static_cast<std::uint32_t>(_config.mode);
    header.ringKb = static_cast<std::uint32_t>(_config.ringKb);
    if (std::fwrite(&header, sizeof(header), 1, _file) != 1) {
        std::fclose(_file);
        _file = nullptr;
        throw std::runtime_error("cannot write trace header: " +
                                 _config.path);
    }
}

TraceSink::~TraceSink()
{
    finish();
}

void
TraceSink::setSnapshotFn(std::function<void(Cycle)> fn)
{
    _snapshotFn = std::move(fn);
    _nextSnapshot = _snapshotFn && _config.snapshotCycles > 0
                        ? _config.snapshotCycles
                        : kNoSnapshot;
}

bool
TraceSink::overflow()
{
    if (_config.mode == TraceMode::Drop) {
        ++_dropped;
        return false;
    }
    flushBuffer();
    ++_spills;
    return true;
}

void
TraceSink::flushBuffer()
{
    if (_count == 0 || !_file)
        return;
    // A failed write must not wedge the simulation: record the loss as
    // drops and keep capturing into the (now empty) buffer.
    const std::size_t written =
        std::fwrite(_buffer.data(), sizeof(TraceRecord), _count, _file);
    if (written < _count) {
        const std::uint64_t lost = _count - written;
        _dropped += lost;
        _recorded -= lost;
    }
    _count = 0;
}

void
TraceSink::snapshotDue(Cycle cycle)
{
    if (_inSnapshot)
        return;
    _inSnapshot = true;
    _snapshotFn(cycle);
    _inSnapshot = false;
    // Next sample: the first record at or past the next multiple of the
    // cadence after `cycle` (a quiet machine simply samples less often).
    const Cycle step = _config.snapshotCycles;
    _nextSnapshot = (cycle / step + 1) * step;
}

void
TraceSink::finish()
{
    if (_finished)
        return;
    _finished = true;
    _nextSnapshot = kNoSnapshot;
    if (!_file)
        return;
    flushBuffer();

    // Rewrite the whole header with the final counts.
    TraceFileHeader patch;
    std::memcpy(patch.magic, kTraceMagic, sizeof(kTraceMagic));
    patch.version = kTraceVersion;
    patch.recordSize = sizeof(TraceRecord);
    patch.numNodes = _numNodes;
    patch.numCores = _numCores;
    patch.mode = static_cast<std::uint32_t>(_config.mode);
    patch.ringKb = static_cast<std::uint32_t>(_config.ringKb);
    patch.recorded = _recorded;
    patch.dropped = _dropped;
    patch.spills = _spills;
    if (std::fseek(_file, 0, SEEK_SET) == 0)
        std::fwrite(&patch, sizeof(patch), 1, _file);
    std::fclose(_file);
    _file = nullptr;
}

} // namespace flexsnoop
