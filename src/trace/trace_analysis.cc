#include "trace/trace_analysis.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace flexsnoop
{

namespace
{

/** Primitive encoding of HopDecision `a` (snoop/primitives.hh order). */
constexpr std::string_view
primitiveName(std::uint16_t a)
{
    switch (a) {
      case 0: return "ForwardThenSnoop";
      case 1: return "SnoopThenForward";
      case 2: return "Forward";
    }
    return "?";
}

/** MsgType encoding of Hop `a` (net/message.hh order). */
constexpr std::string_view
msgTypeName(std::uint16_t a)
{
    switch (a) {
      case 0: return "SnoopRequest";
      case 1: return "SnoopReply";
      case 2: return "CombinedRR";
    }
    return "?";
}

std::string
hexAddr(Addr addr)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << addr;
    return oss.str();
}

/** Phase the transaction enters after @p r (criticalPath state step). */
enum class Phase
{
    IssueLocal,
    RingTransit,
    SnoopWait,
    GatewayHold,
    DataNetwork,
    Memory,
    Other
};

Phase
phaseAfter(const TraceRecord &r, Phase current)
{
    switch (r.event()) {
      case TraceEvent::TxnStart: return Phase::IssueLocal;
      case TraceEvent::RingIssue: return Phase::RingTransit;
      case TraceEvent::Hop: return Phase::RingTransit;
      case TraceEvent::HopDecision:
        // SnoopThenForward serializes the snoop on the request path;
        // the other primitives keep the message moving.
        return r.a == 1 ? Phase::SnoopWait : Phase::RingTransit;
      case TraceEvent::GateDefer: return Phase::GatewayHold;
      case TraceEvent::GateResume: return Phase::RingTransit;
      case TraceEvent::SnoopDone: return Phase::RingTransit;
      case TraceEvent::SupplierHit: return Phase::DataNetwork;
      case TraceEvent::MemFetch: return Phase::Memory;
      case TraceEvent::MemData: return Phase::Other;
      case TraceEvent::RetryScheduled: return Phase::Other;
      case TraceEvent::WatchdogExpire: return Phase::Other;
      default:
        // Annotations (collisions, faults, express markers, ...) do
        // not change what the transaction is waiting on.
        return current;
    }
}

std::uint64_t &
bucket(CriticalPath &cp, Phase p)
{
    switch (p) {
      case Phase::IssueLocal: return cp.issueLocal;
      case Phase::RingTransit: return cp.ringTransit;
      case Phase::SnoopWait: return cp.snoopWait;
      case Phase::GatewayHold: return cp.gatewayHold;
      case Phase::DataNetwork: return cp.dataNetwork;
      case Phase::Memory: return cp.memory;
      case Phase::Other: break;
    }
    return cp.other;
}

/** One-line payload description for the top-N timelines. */
std::string
describe(const TraceRecord &r)
{
    std::ostringstream oss;
    switch (r.event()) {
      case TraceEvent::TxnStart:
        oss << (r.a ? "write " : "read ") << hexAddr(r.arg0) << " core "
            << r.arg1 << " attempt " << r.b;
        break;
      case TraceEvent::RingDone:
        oss << (r.a ? "found" : "negative");
        break;
      case TraceEvent::MemFetch:
        oss << "latency " << r.arg1;
        break;
      case TraceEvent::DataDelivered:
        oss << "latency " << r.arg1 << (r.a ? " (memory)" : " (cache)");
        break;
      case TraceEvent::WriteComplete:
        oss << "latency " << r.arg1;
        break;
      case TraceEvent::RetryScheduled:
        oss << "backoff " << r.arg1 << " attempt " << r.a;
        break;
      case TraceEvent::Hop:
        oss << msgTypeName(r.a) << " arrive " << r.arg1;
        if (r.b & 1)
            oss << " found";
        if (r.b & 2)
            oss << " squashed";
        if (r.b & 4)
            oss << " write";
        if (r.b & 8)
            oss << " global";
        break;
      case TraceEvent::HopDecision:
        oss << primitiveName(r.a)
            << (r.b == 2 ? "" : r.b == 1 ? " pred:yes" : " pred:no");
        break;
      case TraceEvent::SnoopDone:
        oss << (r.a ? "found" : "miss") << (r.b ? " abandoned" : "");
        break;
      case TraceEvent::SupplierHit:
        oss << "data-net latency " << r.arg1;
        break;
      case TraceEvent::Collision:
        oss << "with txn " << r.arg1;
        break;
      case TraceEvent::WatchdogExpire:
        oss << (r.a ? "finish" : "reissue");
        break;
      case TraceEvent::FaultDelay:
        oss << "extra " << r.arg1;
        break;
      case TraceEvent::ExpressRun:
        oss << r.arg0 << " links coalesced";
        break;
      case TraceEvent::CounterSnapshot:
        oss << toString(static_cast<TraceCounterId>(r.a)) << " = "
            << r.arg0;
        break;
      default:
        break;
    }
    return oss.str();
}

/** Minimal JSON string escaping (our strings are ASCII identifiers). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::size_t
TraceAnalysis::completed() const
{
    std::size_t n = 0;
    for (const TxnTimeline &t : txns)
        if (t.complete)
            ++n;
    return n;
}

TraceAnalysis
analyzeTrace(const TraceFile &file)
{
    TraceAnalysis out;
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(1024);

    for (std::size_t i = 0; i < file.records.size(); ++i) {
        const TraceRecord &r = file.records[i];
        if (r.txn == 0)
            continue; // machine-level record, not tied to a transaction
        auto [it, fresh] = index.try_emplace(r.txn, out.txns.size());
        if (fresh) {
            out.txns.emplace_back();
            out.txns.back().txn = r.txn;
        }
        TxnTimeline &t = out.txns[it->second];
        t.events.push_back(i);

        switch (r.event()) {
          case TraceEvent::TxnStart:
            if (t.events.size() == 1 || r.cycle < t.start)
                t.start = r.cycle;
            t.addr = r.arg0;
            t.core = static_cast<std::uint32_t>(r.arg1);
            t.requester = r.node;
            t.isWrite = r.a != 0;
            break;
          case TraceEvent::Hop:
            ++t.hops;
            break;
          case TraceEvent::RetryScheduled:
            ++t.retries;
            break;
          case TraceEvent::DataDelivered:
            t.complete = true;
            t.deliver = r.cycle;
            t.latency = r.arg1;
            t.fromMemory = r.a != 0;
            break;
          case TraceEvent::WriteComplete:
            t.complete = true;
            t.deliver = r.cycle;
            t.latency = r.arg1;
            break;
          default:
            break;
        }
    }

    for (TxnTimeline &t : out.txns) {
        std::stable_sort(t.events.begin(), t.events.end(),
                         [&](std::size_t a, std::size_t b) {
                             return file.records[a].cycle <
                                    file.records[b].cycle;
                         });
        if (!t.events.empty() && t.start == 0)
            t.start = file.records[t.events.front()].cycle;
    }
    return out;
}

CriticalPath
criticalPath(const TraceFile &file, const TxnTimeline &t)
{
    CriticalPath cp;
    if (!t.complete)
        return cp;

    // Anchor on the completion record: partition exactly the window the
    // reported latency covers, so the components always sum to it.
    const Cycle win_end = t.deliver;
    const Cycle win_start =
        t.latency <= win_end ? win_end - t.latency : 0;

    Phase phase = Phase::IssueLocal;
    Cycle prev = win_start;
    for (std::size_t idx : t.events) {
        const TraceRecord &r = file.records[idx];
        if (r.cycle > win_end)
            break;
        const Cycle at = std::max(r.cycle, win_start);
        if (at > prev) {
            bucket(cp, phase) += at - prev;
            prev = at;
        }
        if ((r.event() == TraceEvent::DataDelivered ||
             r.event() == TraceEvent::WriteComplete) &&
            r.cycle == win_end)
            break;
        phase = phaseAfter(r, phase);
    }
    if (win_end > prev)
        bucket(cp, phase) += win_end - prev;
    return cp;
}

void
writeChromeTrace(std::ostream &os, const TraceFile &file,
                 const TraceAnalysis &analysis)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        if (!first)
            os << ",\n";
        first = false;
        return os;
    };

    sep() << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"flexsnoop\"}}";
    for (std::uint32_t n = 0; n < file.header.numNodes; ++n)
        sep() << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << n
              << ",\"name\":\"thread_name\",\"args\":{\"name\":\"node "
              << n << "\"}}";

    // Transaction spans: one async begin/end pair per completed
    // transaction, on the requester node's track.
    for (const TxnTimeline &t : analysis.txns) {
        if (!t.complete)
            continue;
        const std::uint32_t tid =
            t.requester == kTraceNoNode ? 0 : t.requester;
        const std::string name = jsonEscape(
            std::string(t.isWrite ? "wr " : "rd ") + hexAddr(t.addr));
        sep() << "{\"ph\":\"b\",\"cat\":\"txn\",\"id\":" << t.txn
              << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << t.start
              << ",\"name\":\"" << name << "\",\"args\":{\"core\":"
              << t.core << ",\"hops\":" << t.hops
              << ",\"retries\":" << t.retries << "}}";
        sep() << "{\"ph\":\"e\",\"cat\":\"txn\",\"id\":" << t.txn
              << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << t.deliver
              << ",\"name\":\"" << name << "\",\"args\":{\"latency\":"
              << t.latency << "}}";
    }

    for (const TraceRecord &r : file.records) {
        const std::uint32_t tid = r.node == kTraceNoNode ? 0 : r.node;
        switch (r.event()) {
          case TraceEvent::Hop: {
            const std::uint64_t dur =
                r.arg1 > r.cycle ? r.arg1 - r.cycle : 0;
            sep() << "{\"ph\":\"X\",\"cat\":\"hop\",\"pid\":0,\"tid\":"
                  << tid << ",\"ts\":" << r.cycle << ",\"dur\":" << dur
                  << ",\"name\":\"hop " << msgTypeName(r.a)
                  << "\",\"args\":{\"txn\":" << r.txn << ",\"line\":\""
                  << hexAddr(r.arg0) << "\",\"flags\":" << r.b << "}}";
            break;
          }
          case TraceEvent::HopDecision:
            sep() << "{\"ph\":\"X\",\"cat\":\"snoop\",\"pid\":0,"
                     "\"tid\":"
                  << tid << ",\"ts\":" << r.cycle
                  << ",\"dur\":" << r.arg1 << ",\"name\":\""
                  << primitiveName(r.a) << "\",\"args\":{\"txn\":"
                  << r.txn << ",\"predictor\":" << r.b << "}}";
            break;
          case TraceEvent::CounterSnapshot:
            sep() << "{\"ph\":\"C\",\"pid\":0,\"ts\":" << r.cycle
                  << ",\"name\":\""
                  << toString(static_cast<TraceCounterId>(r.a))
                  << "\",\"args\":{\"value\":" << r.arg0 << "}}";
            break;
          case TraceEvent::TxnStart:
          case TraceEvent::DataDelivered:
          case TraceEvent::WriteComplete:
          case TraceEvent::TxnRetire:
            break; // covered by the spans above
          default:
            sep() << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
                  << tid << ",\"ts\":" << r.cycle << ",\"name\":\""
                  << toString(r.event()) << "\",\"args\":{\"txn\":"
                  << r.txn << ",\"detail\":\""
                  << jsonEscape(describe(r)) << "\"}}";
            break;
        }
    }
    os << "\n]}\n";
}

void
writeSummary(std::ostream &os, const TraceFile &file,
             const TraceAnalysis &analysis)
{
    const TraceFileHeader &h = file.header;
    os << "trace: version " << h.version << ", " << h.numNodes
       << " nodes, " << h.numCores << " cores, mode "
       << (h.mode == static_cast<std::uint32_t>(TraceMode::Drop)
               ? "drop"
               : "spill")
       << ", buffer " << h.ringKb << " KiB\n";
    os << "records: " << file.records.size() << " (dropped "
       << h.dropped << ", spills " << h.spills << ")\n";
    os << "transactions: " << analysis.txns.size() << "\n";
    os << "spans: " << analysis.completed() << "\n";

    std::uint64_t counts[static_cast<std::size_t>(
        TraceEvent::NumEvents)] = {};
    for (const TraceRecord &r : file.records)
        if (r.type < static_cast<std::uint16_t>(TraceEvent::NumEvents))
            ++counts[r.type];
    os << "events by type:\n";
    for (std::size_t i = 1;
         i < static_cast<std::size_t>(TraceEvent::NumEvents); ++i)
        if (counts[i] > 0)
            os << "  " << std::left << std::setw(20)
               << toString(static_cast<TraceEvent>(i)) << " "
               << counts[i] << "\n";
}

void
writeCriticalPathTable(std::ostream &os, const TraceFile &file,
                       const TraceAnalysis &analysis)
{
    os << std::right << std::setw(8) << "txn" << std::setw(16) << "line"
       << std::setw(6) << "node" << std::setw(6) << "kind"
       << std::setw(10) << "latency" << std::setw(8) << "issue"
       << std::setw(8) << "ring" << std::setw(8) << "snoop"
       << std::setw(8) << "gate" << std::setw(8) << "data"
       << std::setw(8) << "mem" << std::setw(8) << "other"
       << std::setw(10) << "sum" << "\n";

    CriticalPath agg;
    std::uint64_t agg_latency = 0;
    std::size_t rows = 0;
    for (const TxnTimeline &t : analysis.txns) {
        if (!t.complete)
            continue;
        const CriticalPath cp = criticalPath(file, t);
        os << std::setw(8) << t.txn << std::setw(16) << hexAddr(t.addr)
           << std::setw(6) << t.requester << std::setw(6)
           << (t.isWrite ? "wr" : "rd") << std::setw(10) << t.latency
           << std::setw(8) << cp.issueLocal << std::setw(8)
           << cp.ringTransit << std::setw(8) << cp.snoopWait
           << std::setw(8) << cp.gatewayHold << std::setw(8)
           << cp.dataNetwork << std::setw(8) << cp.memory
           << std::setw(8) << cp.other << std::setw(10) << cp.total()
           << "\n";
        agg.issueLocal += cp.issueLocal;
        agg.ringTransit += cp.ringTransit;
        agg.snoopWait += cp.snoopWait;
        agg.gatewayHold += cp.gatewayHold;
        agg.dataNetwork += cp.dataNetwork;
        agg.memory += cp.memory;
        agg.other += cp.other;
        agg_latency += t.latency;
        ++rows;
    }
    os << std::setw(8) << "total" << std::setw(16) << "" << std::setw(6)
       << "" << std::setw(6) << "" << std::setw(10) << agg_latency
       << std::setw(8) << agg.issueLocal << std::setw(8)
       << agg.ringTransit << std::setw(8) << agg.snoopWait
       << std::setw(8) << agg.gatewayHold << std::setw(8)
       << agg.dataNetwork << std::setw(8) << agg.memory << std::setw(8)
       << agg.other << std::setw(10) << agg.total() << "\n";
    os << rows << " transactions; components "
       << (agg.total() == agg_latency ? "sum to" : "DO NOT sum to")
       << " the reported latencies\n";
}

void
writeTopSlowest(std::ostream &os, const TraceFile &file,
                const TraceAnalysis &analysis, std::size_t n)
{
    std::vector<const TxnTimeline *> done;
    for (const TxnTimeline &t : analysis.txns)
        if (t.complete)
            done.push_back(&t);
    std::stable_sort(done.begin(), done.end(),
                     [](const TxnTimeline *a, const TxnTimeline *b) {
                         return a->latency > b->latency;
                     });
    if (done.size() > n)
        done.resize(n);

    os << "top " << done.size() << " slowest transactions\n";
    for (const TxnTimeline *t : done) {
        os << "\ntxn " << t->txn << " " << (t->isWrite ? "wr" : "rd")
           << " " << hexAddr(t->addr) << " node " << t->requester
           << " core " << t->core << ": latency " << t->latency
           << " cycles, " << t->hops << " hops, " << t->retries
           << " retries" << (t->fromMemory ? ", from memory" : "")
           << "\n";
        Cycle prev = t->start;
        for (std::size_t idx : t->events) {
            const TraceRecord &r = file.records[idx];
            os << "  " << std::right << std::setw(10) << r.cycle << " +"
               << std::left << std::setw(8)
               << (r.cycle >= prev ? r.cycle - prev : 0) << std::setw(20)
               << toString(r.event());
            if (r.node != kTraceNoNode)
                os << " node " << std::setw(3) << r.node;
            const std::string d = describe(r);
            if (!d.empty())
                os << "  " << d;
            os << "\n";
            prev = r.cycle;
        }
    }
}

} // namespace flexsnoop
