#include "trace/trace_reader.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace flexsnoop
{

TraceFile
loadTrace(const std::string &path)
{
    struct Closer
    {
        void operator()(std::FILE *f) const { std::fclose(f); }
    };
    std::unique_ptr<std::FILE, Closer> file(
        std::fopen(path.c_str(), "rb"));
    if (!file)
        throw std::runtime_error("cannot open trace file: " + path);

    TraceFile out;
    if (std::fread(&out.header, sizeof(out.header), 1, file.get()) != 1)
        throw std::runtime_error("trace file too short for a header: " +
                                 path);
    if (std::memcmp(out.header.magic, kTraceMagic, sizeof(kTraceMagic)) !=
        0)
        throw std::runtime_error("not a .fstrace file (bad magic): " +
                                 path);
    if (out.header.version != kTraceVersion)
        throw std::runtime_error(
            "unsupported trace version " +
            std::to_string(out.header.version) + ": " + path);
    if (out.header.recordSize != sizeof(TraceRecord))
        throw std::runtime_error(
            "unsupported trace record size " +
            std::to_string(out.header.recordSize) + ": " + path);

    // Size the read from the file length; the header count (when the
    // sink finished cleanly) must then agree.
    if (std::fseek(file.get(), 0, SEEK_END) != 0)
        throw std::runtime_error("cannot seek trace file: " + path);
    const long end = std::ftell(file.get());
    if (end < 0)
        throw std::runtime_error("cannot size trace file: " + path);
    const std::size_t payload =
        static_cast<std::size_t>(end) - sizeof(TraceFileHeader);
    if (payload % sizeof(TraceRecord) != 0)
        throw std::runtime_error("trace file has a truncated record "
                                 "tail: " +
                                 path);
    const std::size_t count = payload / sizeof(TraceRecord);
    if (out.header.recorded != 0 && out.header.recorded != count)
        throw std::runtime_error(
            "trace header count (" + std::to_string(out.header.recorded) +
            ") disagrees with file length (" + std::to_string(count) +
            " records): " + path);

    if (std::fseek(file.get(), sizeof(TraceFileHeader), SEEK_SET) != 0)
        throw std::runtime_error("cannot seek trace file: " + path);
    out.records.resize(count);
    if (count > 0 &&
        std::fread(out.records.data(), sizeof(TraceRecord), count,
                   file.get()) != count)
        throw std::runtime_error("short read of trace records: " + path);
    return out;
}

} // namespace flexsnoop
