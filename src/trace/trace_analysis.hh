/**
 * @file
 * Offline analysis of decoded `.fstrace` traces: per-transaction
 * timelines, critical-path decomposition, and the flexsnoop_trace CLI
 * output formats (Chrome/Perfetto JSON, critical-path table, top-N
 * slowest transactions).
 */

#ifndef FLEXSNOOP_TRACE_TRACE_ANALYSIS_HH
#define FLEXSNOOP_TRACE_TRACE_ANALYSIS_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/trace_format.hh"
#include "trace/trace_reader.hh"

namespace flexsnoop
{

/**
 * Where the cycles of one transaction went. The six named components
 * partition the transaction's reported latency window, so they sum
 * exactly to `latency` (the acceptance check of docs/TRACING.md).
 */
struct CriticalPath
{
    std::uint64_t issueLocal = 0;  ///< local issue / pre-ring work
    std::uint64_t ringTransit = 0; ///< request/reply on ring links
    std::uint64_t snoopWait = 0;   ///< serialized snoop lookups (STF)
    std::uint64_t gatewayHold = 0; ///< parked behind line gates
    std::uint64_t dataNetwork = 0; ///< supplier-to-requester data net
    std::uint64_t memory = 0;      ///< off-chip memory access
    std::uint64_t other = 0;       ///< backoff, squash windows, misc

    std::uint64_t
    total() const
    {
        return issueLocal + ringTransit + snoopWait + gatewayHold +
               dataNetwork + memory + other;
    }
};

/** One transaction reassembled from its trace records. */
struct TxnTimeline
{
    TransactionId txn = 0;
    Addr addr = 0;
    std::uint16_t requester = kTraceNoNode;
    std::uint32_t core = kInvalidCore;
    bool isWrite = false;
    bool complete = false;   ///< saw DataDelivered / WriteComplete
    bool fromMemory = false; ///< data came from off-chip memory
    Cycle start = 0;         ///< first TxnStart cycle
    Cycle deliver = 0;       ///< completion cycle (when complete)
    std::uint64_t latency = 0; ///< reported latency (when complete)
    std::uint32_t hops = 0;    ///< ring link traversals (incl. express)
    std::uint32_t retries = 0; ///< squash / watchdog reissues

    /** Indices into TraceFile::records, stable-sorted by cycle. */
    std::vector<std::size_t> events;
};

/** Whole-trace view grouped by transaction. */
struct TraceAnalysis
{
    std::vector<TxnTimeline> txns; ///< ordered by first appearance

    std::size_t completed() const;
};

/** Group and sort a decoded trace into per-transaction timelines. */
TraceAnalysis analyzeTrace(const TraceFile &file);

/**
 * Decompose one completed transaction. The decomposition anchors on
 * the completion record: it partitions the window
 * `[deliver - latency, deliver]` by walking the transaction's events
 * in cycle order and attributing each gap to the phase the
 * transaction was in, so `result.total() == timeline.latency` always
 * holds.
 */
CriticalPath criticalPath(const TraceFile &file, const TxnTimeline &t);

/**
 * Emit Chrome trace-event JSON loadable by Perfetto / chrome://tracing.
 * Transactions become async spans on the requester node's track; hops
 * and gateway decisions become duration slices on the node they ran
 * on; everything else becomes instants.
 */
void writeChromeTrace(std::ostream &os, const TraceFile &file,
                      const TraceAnalysis &analysis);

/** Human-readable header/counters overview. Includes a `spans:` line. */
void writeSummary(std::ostream &os, const TraceFile &file,
                  const TraceAnalysis &analysis);

/**
 * Per-transaction critical-path table (one row per completed
 * transaction, components in cycles) followed by an aggregate row.
 */
void writeCriticalPathTable(std::ostream &os, const TraceFile &file,
                            const TraceAnalysis &analysis);

/** Top-@p n slowest completed transactions with full hop timelines. */
void writeTopSlowest(std::ostream &os, const TraceFile &file,
                     const TraceAnalysis &analysis, std::size_t n);

} // namespace flexsnoop

#endif // FLEXSNOOP_TRACE_TRACE_ANALYSIS_HH
