/**
 * @file
 * Generic set-associative tag array with true-LRU replacement.
 *
 * Reused by the L2 caches (payload = LineState) and by the address-only
 * predictor structures (payload = empty). Addresses are line addresses;
 * the array derives the set index from the line index bits.
 */

#ifndef FLEXSNOOP_MEM_SET_ASSOC_ARRAY_HH
#define FLEXSNOOP_MEM_SET_ASSOC_ARRAY_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace flexsnoop
{

/**
 * Result of an insertion: where the line landed and what was evicted.
 */
template <typename Payload>
struct InsertResult
{
    bool evicted = false;   ///< a valid victim was displaced
    Addr evictedAddr = kInvalidAddr;
    Payload evictedPayload{};
};

template <typename Payload>
class SetAssocArray
{
  public:
    struct Way
    {
        Addr tag = kInvalidAddr; ///< full line address (not just tag bits)
        bool valid = false;
        std::uint64_t lru = 0;   ///< larger = more recently used
        Payload data{};
    };

    /**
     * @param num_entries total entries (must be a multiple of @p ways)
     * @param ways        associativity
     */
    SetAssocArray(std::size_t num_entries, std::size_t ways)
        : _ways(ways), _sets(num_entries / ways),
          _array(num_entries)
    {
        assert(ways > 0);
        assert(num_entries % ways == 0);
        assert(_sets > 0);
    }

    std::size_t numEntries() const { return _array.size(); }
    std::size_t numSets() const { return _sets; }
    std::size_t associativity() const { return _ways; }

    /** Number of currently valid entries (O(n); for stats/tests). */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const auto &w : _array)
            n += w.valid;
        return n;
    }

    /** Set index for a line address. */
    std::size_t
    setIndex(Addr line) const
    {
        return static_cast<std::size_t>(lineIndex(line)) % _sets;
    }

    /**
     * Look up @p line; returns the way or nullptr. Updates LRU when
     * @p touch is true.
     */
    Way *
    lookup(Addr line, bool touch = true)
    {
        line = lineAddr(line);
        return lookupInSet(setIndex(line), line, touch);
    }

    const Way *
    lookup(Addr line) const
    {
        return const_cast<SetAssocArray *>(this)->lookup(line, false);
    }

    /**
     * lookup() with the set index already known — the snoop hot path
     * carries it in the message's probe signature (geometry is uniform
     * across all L2s of the machine, so one index serves every node).
     */
    Way *
    lookupInSet(std::size_t set, Addr line, bool touch = true)
    {
        assert(set == setIndex(line));
        const std::size_t base = set * _ways;
        for (std::size_t i = 0; i < _ways; ++i) {
            Way &w = _array[base + i];
            if (w.valid && w.tag == line) {
                if (touch)
                    w.lru = ++_clock;
                return &w;
            }
        }
        return nullptr;
    }

    const Way *
    lookupInSet(std::size_t set, Addr line) const
    {
        return const_cast<SetAssocArray *>(this)->lookupInSet(set, line,
                                                              false);
    }

    /**
     * Insert @p line with @p data, evicting the LRU way if the set is
     * full. If the line is already present its payload is overwritten.
     */
    InsertResult<Payload>
    insert(Addr line, Payload data = Payload{})
    {
        line = lineAddr(line);
        InsertResult<Payload> result;
        if (Way *hit = lookup(line, true)) {
            hit->data = std::move(data);
            return result;
        }
        const std::size_t base = setIndex(line) * _ways;
        Way *victim = &_array[base];
        for (std::size_t i = 0; i < _ways; ++i) {
            Way &w = _array[base + i];
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (w.lru < victim->lru)
                victim = &w;
        }
        if (victim->valid) {
            result.evicted = true;
            result.evictedAddr = victim->tag;
            result.evictedPayload = std::move(victim->data);
        }
        victim->tag = line;
        victim->valid = true;
        victim->lru = ++_clock;
        victim->data = std::move(data);
        return result;
    }

    /** Remove @p line if present; @return true if it was there. */
    bool
    erase(Addr line)
    {
        if (Way *w = lookup(line, false)) {
            w->valid = false;
            w->tag = kInvalidAddr;
            w->data = Payload{};
            return true;
        }
        return false;
    }

    /** Invalidate every entry. */
    void
    clear()
    {
        for (auto &w : _array) {
            w.valid = false;
            w.tag = kInvalidAddr;
            w.data = Payload{};
        }
    }

    /** Visit every valid way (tag, payload ref). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &w : _array) {
            if (w.valid)
                fn(w.tag, w.data);
        }
    }

    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &w : _array) {
            if (w.valid)
                fn(w.tag, w.data);
        }
    }

  private:
    std::size_t _ways;
    std::size_t _sets;
    std::vector<Way> _array;
    std::uint64_t _clock = 0;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_MEM_SET_ASSOC_ARRAY_HH
