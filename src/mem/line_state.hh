/**
 * @file
 * Coherence line states of the embedded-ring protocol (paper §2.2).
 *
 * The protocol is MESI extended with:
 *  - SL: Shared, Local Master  — the one cache per CMP that brought the
 *        line into the CMP; supplies the line to reads from the same CMP.
 *  - SG: Shared, Global Master — the one cache in the machine that brought
 *        the line from memory; supplies the line to reads from other CMPs.
 *  - T:  Tagged — dirty but shared; the T holder supplies the line and
 *        writes it back on eviction.
 *
 * Supplier states (can answer a ring snoop): SG, E, D, T.
 * Local-supplier states (can answer an intra-CMP probe): SL + supplier set.
 */

#ifndef FLEXSNOOP_MEM_LINE_STATE_HH
#define FLEXSNOOP_MEM_LINE_STATE_HH

#include <cstdint>
#include <string_view>

namespace flexsnoop
{

enum class LineState : std::uint8_t
{
    Invalid = 0,      ///< I
    Shared,           ///< S  — plain shared copy
    SharedLocal,      ///< SL — shared, local master within its CMP
    SharedGlobal,     ///< SG — shared, global master
    Exclusive,        ///< E  — clean exclusive
    Dirty,            ///< D  — modified exclusive
    Tagged,           ///< T  — modified but shared (owner)
};

constexpr std::size_t kNumLineStates = 7;

/** True if a cache in this state answers a ring snoop (paper: SG,E,D,T). */
constexpr bool
isSupplierState(LineState s)
{
    return s == LineState::SharedGlobal || s == LineState::Exclusive ||
           s == LineState::Dirty || s == LineState::Tagged;
}

/** True if this state can satisfy a read from a core in the same CMP. */
constexpr bool
isLocalSupplierState(LineState s)
{
    return s == LineState::SharedLocal || isSupplierState(s);
}

/** True if the line holds data newer than memory (writeback on eviction). */
constexpr bool
isDirtyState(LineState s)
{
    return s == LineState::Dirty || s == LineState::Tagged;
}

/** True if the holder may write without a coherence transaction. */
constexpr bool
isWritableState(LineState s)
{
    return s == LineState::Exclusive || s == LineState::Dirty;
}

constexpr bool
isValidState(LineState s)
{
    return s != LineState::Invalid;
}

/** Short mnemonic used in logs and test failure messages. */
constexpr std::string_view
toString(LineState s)
{
    switch (s) {
      case LineState::Invalid: return "I";
      case LineState::Shared: return "S";
      case LineState::SharedLocal: return "SL";
      case LineState::SharedGlobal: return "SG";
      case LineState::Exclusive: return "E";
      case LineState::Dirty: return "D";
      case LineState::Tagged: return "T";
    }
    return "?";
}

/**
 * Compatibility matrix from paper Figure 2-(b).
 *
 * Returns true when two *different* caches may simultaneously hold the
 * same line in states @p a and @p b. @p same_cmp selects the intra-CMP
 * column variants: SL/SG marked "*" in the paper are compatible with a
 * second SL/SG only if the two caches are in different CMPs.
 */
constexpr bool
statesCompatible(LineState a, LineState b, bool same_cmp)
{
    using LS = LineState;
    // Invalid goes with everything.
    if (a == LS::Invalid || b == LS::Invalid)
        return true;
    // Exclusive and Dirty tolerate no other valid copy.
    if (a == LS::Exclusive || a == LS::Dirty || b == LS::Exclusive ||
        b == LS::Dirty)
        return false;
    // At most one global master / owner in the machine.
    if ((a == LS::SharedGlobal && b == LS::SharedGlobal) ||
        (a == LS::Tagged && b == LS::Tagged))
        return false;
    // SG and T are both "the" supplier; they cannot coexist.
    if ((a == LS::SharedGlobal && b == LS::Tagged) ||
        (a == LS::Tagged && b == LS::SharedGlobal))
        return false;
    // At most one local master per CMP.
    if (same_cmp && a == LS::SharedLocal && b == LS::SharedLocal)
        return false;
    // The paper's "*" entries: a second SL or SG next to an SL/SG holder
    // must live in a different CMP (the local/global master roles are
    // unique within a CMP).
    if (same_cmp && ((a == LS::SharedLocal && b == LS::SharedGlobal) ||
                     (a == LS::SharedGlobal && b == LS::SharedLocal)))
        return false;
    if (same_cmp && ((a == LS::Tagged && b == LS::SharedLocal) ||
                     (a == LS::SharedLocal && b == LS::Tagged)))
        return false;
    return true;
}

} // namespace flexsnoop

#endif // FLEXSNOOP_MEM_LINE_STATE_HH
