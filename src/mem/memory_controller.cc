#include "mem/memory_controller.hh"

#include <cassert>

namespace flexsnoop
{

MemoryController::MemoryController(std::size_t num_nodes,
                                   const MemoryParams &params)
    : _numNodes(num_nodes), _params(params), _buffers(num_nodes),
      _stats("memory")
{
    assert(num_nodes > 0);
}

void
MemoryController::notifySnoopAtHome(Addr line, Cycle now)
{
    if (!_params.prefetchEnabled)
        return;
    line = lineAddr(line);
    PrefetchBuffer &buf = _buffers[homeNode(line)];
    if (buf.ready.count(line))
        return; // already being prefetched
    while (buf.fifo.size() >= _params.prefetchBufferEntries) {
        buf.ready.erase(buf.fifo.front().line);
        buf.fifo.pop_front();
        _stats.counter("prefetch_displaced").inc();
    }
    const Cycle ready = now + _params.dramAccess;
    buf.fifo.push_back(PrefetchEntry{line, ready});
    buf.ready.emplace(line, ready);
    _stats.counter("prefetches").inc();
}

Cycle
MemoryController::readLatency(Addr line, NodeId requester, Cycle now)
{
    line = lineAddr(line);
    _stats.counter("reads").inc();
    const NodeId home = homeNode(line);
    if (home == requester) {
        _stats.counter("reads_local").inc();
        return _params.localRoundTrip;
    }
    PrefetchBuffer &buf = _buffers[home];
    auto it = buf.ready.find(line);
    if (it != buf.ready.end()) {
        const Cycle ready = it->second;
        // Consume the buffered line.
        buf.ready.erase(it);
        for (auto fifo_it = buf.fifo.begin(); fifo_it != buf.fifo.end();
             ++fifo_it) {
            if (fifo_it->line == line) {
                buf.fifo.erase(fifo_it);
                break;
            }
        }
        if (ready <= now + _params.remotePrefetchRoundTrip) {
            // Data is (or will be) in the buffer by the time the request
            // message reaches the home node: reduced round trip.
            _stats.counter("reads_prefetched").inc();
            Cycle latency = _params.remotePrefetchRoundTrip;
            if (ready > now)
                latency += (ready - now) / 2; // partial overlap
            return latency;
        }
    }
    _stats.counter("reads_remote").inc();
    return _params.remoteRoundTrip;
}

void
MemoryController::writeback(Addr line)
{
    (void)line;
    _stats.counter("writebacks").inc();
}

} // namespace flexsnoop
