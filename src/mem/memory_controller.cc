#include "mem/memory_controller.hh"

#include <cassert>

namespace flexsnoop
{

MemoryController::MemoryController(std::size_t num_nodes,
                                   const MemoryParams &params)
    : _numNodes(num_nodes), _params(params), _buffers(num_nodes),
      _stats("memory"), _reads(_stats.counter("reads")),
      _readsLocal(_stats.counter("reads_local")),
      _readsRemote(_stats.counter("reads_remote")),
      _readsPrefetched(_stats.counter("reads_prefetched")),
      _prefetches(_stats.counter("prefetches")),
      _prefetchDisplaced(_stats.counter("prefetch_displaced")),
      _writebacks(_stats.counter("writebacks"))
{
    assert(num_nodes > 0);
}

void
MemoryController::notifySnoopAtHome(Addr line, Cycle now)
{
    if (!_params.prefetchEnabled)
        return;
    line = lineAddr(line);
    PrefetchBuffer &buf = _buffers[homeNode(line)];
    if (buf.ready.contains(line))
        return; // already being prefetched
    while (buf.fifo.size() >= _params.prefetchBufferEntries) {
        buf.ready.erase(buf.fifo.front().line);
        buf.fifo.pop_front();
        _prefetchDisplaced.inc();
    }
    const Cycle ready = now + _params.dramAccess;
    buf.fifo.push_back(PrefetchEntry{line, ready});
    buf.ready.put(line, ready);
    _prefetches.inc();
}

Cycle
MemoryController::readLatency(Addr line, NodeId requester, Cycle now)
{
    line = lineAddr(line);
    _reads.inc();
    const NodeId home = homeNode(line);
    if (home == requester) {
        _readsLocal.inc();
        return _params.localRoundTrip;
    }
    PrefetchBuffer &buf = _buffers[home];
    if (const Cycle *entry = buf.ready.find(line)) {
        const Cycle ready = *entry;
        // Consume the buffered line.
        buf.ready.erase(line);
        for (auto fifo_it = buf.fifo.begin(); fifo_it != buf.fifo.end();
             ++fifo_it) {
            if (fifo_it->line == line) {
                buf.fifo.erase(fifo_it);
                break;
            }
        }
        if (ready <= now + _params.remotePrefetchRoundTrip) {
            // Data is (or will be) in the buffer by the time the request
            // message reaches the home node: reduced round trip.
            _readsPrefetched.inc();
            Cycle latency = _params.remotePrefetchRoundTrip;
            if (ready > now)
                latency += (ready - now) / 2; // partial overlap
            return latency;
        }
    }
    _readsRemote.inc();
    return _params.remoteRoundTrip;
}

void
MemoryController::writeback(Addr line)
{
    (void)line;
    _writebacks.inc();
}

} // namespace flexsnoop
