/**
 * @file
 * Per-core private L2 cache model.
 *
 * The paper snoops at L2 granularity (all L2s of a CMP are probed in
 * parallel by the gateway), so the L2 is the coherence point: it tracks
 * the 7-state protocol state per line. L1s are folded into the L2 model;
 * their hit traffic never reaches the coherence fabric and is irrelevant
 * to the studied effects.
 */

#ifndef FLEXSNOOP_MEM_L2_CACHE_HH
#define FLEXSNOOP_MEM_L2_CACHE_HH

#include <functional>
#include <string>

#include "mem/line_state.hh"
#include "mem/set_assoc_array.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

/**
 * A private L2 with protocol state per line.
 *
 * All transitions go through fill / changeState / invalidate so that the
 * owning CMP node can observe supplier-set changes (to train the Supplier
 * Predictor) and dirty evictions (to issue writebacks).
 */
class L2Cache
{
  public:
    /** What fell out of the cache when a new line was filled. */
    struct Eviction
    {
        bool valid = false;
        Addr addr = kInvalidAddr;
        LineState state = LineState::Invalid;
    };

    /**
     * Called on any transition that changes a line's state, including
     * evictions (new state Invalid) and fills (old state Invalid).
     */
    using TransitionHook =
        std::function<void(Addr line, LineState from, LineState to)>;

    /**
     * @param name    stat-group name, e.g. "cmp0.l2.1"
     * @param entries total line capacity
     * @param ways    associativity
     */
    L2Cache(const std::string &name, std::size_t entries, std::size_t ways);

    /** Register the observer for all state transitions (at most one). */
    void setTransitionHook(TransitionHook hook) { _hook = std::move(hook); }

    /** Protocol state of @p line (Invalid when not cached). */
    LineState state(Addr line) const;

    /** state() with the set index already known (probe signatures). */
    LineState state(Addr line, std::size_t set) const;

    /** Set index of @p line; uniform across all L2s of the machine. */
    std::size_t setIndex(Addr line) const
    {
        return _array.setIndex(lineAddr(line));
    }

    bool contains(Addr line) const { return isValidState(state(line)); }

    /**
     * Bring @p line into the cache in @p st, evicting an LRU victim if
     * needed. Touches LRU. @return the victim, if any.
     */
    Eviction fill(Addr line, LineState st);

    /**
     * Change the state of a resident line (must be present).
     * Transitioning to Invalid frees the entry.
     */
    void changeState(Addr line, LineState to);

    /** Invalidate @p line if present. @return its previous state. */
    LineState invalidate(Addr line);

    /** invalidate() with the set index already known. */
    LineState invalidate(Addr line, std::size_t set);

    /** Touch LRU for a hit on @p line. */
    void touch(Addr line);

    /** Visit every valid line. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        _array.forEachValid(
            [&](Addr a, const LineState &s) { fn(a, s); });
    }

    std::size_t capacity() const { return _array.numEntries(); }
    std::size_t occupancy() const { return _array.occupancy(); }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    void
    notify(Addr line, LineState from, LineState to)
    {
        if (_hook && from != to)
            _hook(line, from, to);
    }

    SetAssocArray<LineState> _array;
    TransitionHook _hook;
    StatGroup _stats;
    // Cached handles: fills/invalidations run once per miss/snoop hit.
    Counter &_fills;
    Counter &_refills;
    Counter &_evictions;
    Counter &_invalidations;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_MEM_L2_CACHE_HH
