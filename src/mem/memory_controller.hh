/**
 * @file
 * Main-memory model: home-node mapping, access latency, and the
 * home-node prefetch heuristic of paper §2.2.
 *
 * Shared memory is distributed across CMPs; a line's home node is derived
 * from its address. When a read snoop request passes its home node on the
 * ring, the home may start a DRAM prefetch into a small buffer so that a
 * later explicit memory read (issued after the snoop came back negative)
 * completes with the reduced "with prefetch" round trip (paper Table 4:
 * 312 vs 710 cycles remote).
 */

#ifndef FLEXSNOOP_MEM_MEMORY_CONTROLLER_HH
#define FLEXSNOOP_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flexsnoop
{

/** Latency configuration for the memory model (processor cycles). */
struct MemoryParams
{
    Cycle localRoundTrip = 350;          ///< requester == home
    Cycle remoteRoundTrip = 710;         ///< no prefetch available
    Cycle remotePrefetchRoundTrip = 312; ///< prefetched data ready at home
    Cycle dramAccess = 300;              ///< DRAM array access (50 ns @6GHz)
    std::size_t prefetchBufferEntries = 64; ///< per home node
    bool prefetchEnabled = true;
};

class MemoryController
{
  public:
    MemoryController(std::size_t num_nodes, const MemoryParams &params);

    /** Home CMP of @p line (line-interleaved across nodes). */
    NodeId
    homeNode(Addr line) const
    {
        return static_cast<NodeId>(lineIndex(line) % _numNodes);
    }

    /**
     * A read snoop request for @p line passed its home node at @p now;
     * start a prefetch if the heuristic allows.
     */
    void notifySnoopAtHome(Addr line, Cycle now);

    /**
     * Latency of an explicit memory read for @p line issued by
     * @p requester at cycle @p now. Consumes a matching prefetch-buffer
     * entry when one is ready.
     */
    Cycle readLatency(Addr line, NodeId requester, Cycle now);

    /** Account a writeback of a dirty line (posted; no latency). */
    void writeback(Addr line);

    std::uint64_t reads() const { return _reads.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    struct PrefetchEntry
    {
        Addr line;
        Cycle ready;
    };

    /** FIFO prefetch buffer of one home node. Consulted on every remote
     *  memory read: the line -> ready-cycle index is a FlatMap, sized
     *  once (the buffer is bounded) and allocation-free after that. */
    struct PrefetchBuffer
    {
        std::deque<PrefetchEntry> fifo;
        FlatMap<Cycle> ready;
    };

    std::size_t _numNodes;
    MemoryParams _params;
    std::vector<PrefetchBuffer> _buffers;
    StatGroup _stats;
    // Cached handles for the per-access hot path.
    Counter &_reads;
    Counter &_readsLocal;
    Counter &_readsRemote;
    Counter &_readsPrefetched;
    Counter &_prefetches;
    Counter &_prefetchDisplaced;
    Counter &_writebacks;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_MEM_MEMORY_CONTROLLER_HH
