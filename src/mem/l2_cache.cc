#include "mem/l2_cache.hh"

#include <cassert>

namespace flexsnoop
{

L2Cache::L2Cache(const std::string &name, std::size_t entries,
                 std::size_t ways)
    : _array(entries, ways), _stats(name),
      _fills(_stats.counter("fills")),
      _refills(_stats.counter("refills")),
      _evictions(_stats.counter("evictions")),
      _invalidations(_stats.counter("invalidations"))
{
}

LineState
L2Cache::state(Addr line) const
{
    const auto *way = _array.lookup(lineAddr(line));
    return way ? way->data : LineState::Invalid;
}

LineState
L2Cache::state(Addr line, std::size_t set) const
{
    const auto *way = _array.lookupInSet(set, lineAddr(line));
    return way ? way->data : LineState::Invalid;
}

L2Cache::Eviction
L2Cache::fill(Addr line, LineState st)
{
    assert(isValidState(st));
    line = lineAddr(line);
    Eviction ev;
    // A racing transaction may have installed the line already (e.g. a
    // retried write completing after a merged read): treat the fill as a
    // state change so observers see the true old state.
    if (auto *way = _array.lookup(line, true)) {
        const LineState from = way->data;
        way->data = st;
        _refills.inc();
        notify(line, from, st);
        return ev;
    }
    const auto result = _array.insert(line, st);
    if (result.evicted) {
        ev.valid = true;
        ev.addr = result.evictedAddr;
        ev.state = result.evictedPayload;
        _evictions.inc();
        notify(ev.addr, ev.state, LineState::Invalid);
    }
    _fills.inc();
    notify(line, LineState::Invalid, st);
    return ev;
}

void
L2Cache::changeState(Addr line, LineState to)
{
    line = lineAddr(line);
    auto *way = _array.lookup(line, false);
    assert(way != nullptr && "changeState on a non-resident line");
    const LineState from = way->data;
    if (to == LineState::Invalid) {
        _array.erase(line);
        _invalidations.inc();
    } else {
        way->data = to;
    }
    notify(line, from, to);
}

LineState
L2Cache::invalidate(Addr line)
{
    return invalidate(line, _array.setIndex(lineAddr(line)));
}

LineState
L2Cache::invalidate(Addr line, std::size_t set)
{
    line = lineAddr(line);
    auto *way = _array.lookupInSet(set, line, false);
    if (!way)
        return LineState::Invalid;
    const LineState from = way->data;
    way->valid = false;
    way->tag = kInvalidAddr;
    way->data = LineState{};
    _invalidations.inc();
    notify(line, from, LineState::Invalid);
    return from;
}

void
L2Cache::touch(Addr line)
{
    _array.lookup(lineAddr(line), true);
}

} // namespace flexsnoop
