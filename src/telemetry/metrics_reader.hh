/**
 * @file
 * Offline decoder for `.fsmetrics` files (docs/TELEMETRY.md): validates
 * the header, decodes the delta-encoded columns, and hands the series
 * to the health detectors and the flexsnoop_metrics CLI.
 */

#ifndef FLEXSNOOP_TELEMETRY_METRICS_READER_HH
#define FLEXSNOOP_TELEMETRY_METRICS_READER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics_format.hh"

namespace flexsnoop
{

/** A fully-decoded metrics file. */
struct MetricsFile
{
    MetricsFileHeader header;
    std::vector<std::string> names;     ///< series directory order
    std::vector<SeriesKind> kinds;      ///< parallel to names
    std::vector<std::uint64_t> cycles;  ///< sample instants
    /** columns[s][i] = value of series s at cycles[i]. */
    std::vector<std::vector<std::uint64_t>> columns;

    /** Index of @p name, -1 when absent. */
    std::ptrdiff_t indexOf(const std::string &name) const;

    /** Column of @p name, nullptr when absent. */
    const std::vector<std::uint64_t> *column(const std::string &name) const;
};

/**
 * Load and validate @p path.
 *
 * @throws std::runtime_error on open failure, bad magic or version, a
 *         placeholder (crashed-capture) header, a payload length that
 *         disagrees with the file, or a truncated/corrupt column.
 */
MetricsFile loadMetrics(const std::string &path);

} // namespace flexsnoop

#endif // FLEXSNOOP_TELEMETRY_METRICS_READER_HH
