/**
 * @file
 * MetricsSampler: the capture side of the time-series telemetry
 * subsystem (docs/TELEMETRY.md).
 *
 * One sampler per simulation run. The machine registers a set of
 * counters (cached `Counter&` handles from the existing StatGroup
 * infrastructure) and derived gauges (closures evaluated at sample
 * time); the EventQueue's sampling hook then calls sample() the first
 * time simulated time crosses each interval boundary. Sampling is pure
 * observation: it schedules no events, draws no randomness, and emits
 * no trace records, so a run with sampling enabled is bit-identical —
 * every RunResult field and every .fstrace byte — to the same run
 * without it.
 *
 * Samples accumulate in columnar in-memory buffers (one vector per
 * series) and are delta-encoded into the `.fsmetrics` file in one pass
 * at finish().
 */

#ifndef FLEXSNOOP_TELEMETRY_METRICS_SAMPLER_HH
#define FLEXSNOOP_TELEMETRY_METRICS_SAMPLER_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "telemetry/metrics_format.hh"

namespace flexsnoop
{

/**
 * Runtime configuration of one telemetry capture. Disabled (empty
 * path) by default; a MachineConfig with a disabled MetricsConfig
 * builds a machine without a sampler and with the queue's sampling
 * hook disarmed, so the only residual cost is one never-taken branch
 * per event.
 */
struct MetricsConfig
{
    std::string path;             ///< output file; empty = sampling off
    Cycle intervalCycles = 10000; ///< sample cadence in simulated cycles
    std::string select;           ///< series-name glob; empty = all

    bool enabled() const { return !path.empty(); }

    /**
     * Parse the CLI spec "FILE[,interval=N][,select=GLOB]".
     * @throws std::invalid_argument naming the offending key/value
     */
    static MetricsConfig fromSpec(const std::string &spec);
};

/**
 * Glob match of @p name against @p pattern (`*` = any run including
 * empty, `?` = any one character). An empty pattern matches everything.
 */
bool metricSelectorMatches(const std::string &pattern,
                           const std::string &name);

class MetricsSampler
{
  public:
    /** Value of one series at a sample instant. */
    using GaugeFn = std::function<std::uint64_t(Cycle)>;

    /**
     * Opens @p config.path and writes a placeholder header (so a
     * mis-typed path fails before the run, like the trace sink);
     * throws std::runtime_error if the file cannot be created.
     *
     * @param num_nodes / @p num_cores recorded in the file header
     */
    MetricsSampler(const MetricsConfig &config, std::size_t num_nodes,
                   std::size_t num_cores);
    ~MetricsSampler(); ///< finish()es if the owner did not

    MetricsSampler(const MetricsSampler &) = delete;
    MetricsSampler &operator=(const MetricsSampler &) = delete;

    /**
     * Register one series. Returns false (and registers nothing) when
     * @p name does not match the configured selector glob, so a
     * filtered-out series costs nothing per sample. Registration must
     * finish before the first sample().
     */
    bool addSeries(std::string name, SeriesKind kind, GaugeFn fn);

    /** Register a counter series reading @p c (a cached handle into a
     *  StatGroup; must outlive the sampler). */
    bool
    addCounter(std::string name, const Counter &c)
    {
        return addSeries(std::move(name), SeriesKind::Counter,
                         [&c](Cycle) { return c.value(); });
    }

    /** Snapshot every registered series at @p cycle. */
    void sample(Cycle cycle);

    /** Record the warmup barrier (statistics reset) cycle. */
    void markMeasureStart(Cycle cycle) { _measureStart = cycle; }

    /**
     * Delta-encode all columns into the file, patch the header, and
     * close. Idempotent; called by the destructor if the owner does
     * not.
     */
    void finish();

    const MetricsConfig &config() const { return _config; }
    std::size_t numSeries() const { return _series.size(); }
    std::size_t sampleCount() const { return _cycles.size(); }

    /**
     * Append the last @p k samples of every series to @p os as a
     * per-series table — the telemetry lead-up a stuck-transaction
     * post-mortem wants next to the frozen state.
     */
    void dumpRecent(std::ostream &os, std::size_t k) const;

  private:
    struct Series
    {
        std::string name;
        SeriesKind kind;
        GaugeFn fn;
        std::vector<std::uint64_t> values; ///< one per sample, columnar
    };

    MetricsConfig _config;
    std::uint32_t _numNodes = 0;
    std::uint32_t _numCores = 0;
    std::FILE *_file = nullptr;
    std::vector<Series> _series;
    std::vector<std::uint64_t> _cycles; ///< sample instants
    Cycle _measureStart = kMetricsNoMeasureStart;
    bool _finished = false;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_TELEMETRY_METRICS_SAMPLER_HH
