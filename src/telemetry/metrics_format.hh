/**
 * @file
 * On-disk format of the time-series telemetry subsystem
 * (docs/TELEMETRY.md).
 *
 * A `.fsmetrics` file is a fixed 64-byte header, a series directory,
 * and one delta-encoded column per series (cycles first). Columns are
 * written once, at finish: the capture side appends raw 64-bit values
 * to in-memory columns, so a sample never touches the file system.
 *
 * Values are stored as zigzag-varint deltas. Zigzag everywhere — not
 * just for gauges — because counter columns are *not* monotonic across
 * the warmup barrier: resetStats() drops every counter to zero
 * mid-capture, and the encoding must absorb that step without a
 * special case.
 */

#ifndef FLEXSNOOP_TELEMETRY_METRICS_FORMAT_HH
#define FLEXSNOOP_TELEMETRY_METRICS_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace flexsnoop
{

constexpr char kMetricsMagic[8] = {'F', 'S', 'M', 'E', 'T', 'R', 'C',
                                   '1'};
constexpr std::uint32_t kMetricsVersion = 1;

/** `measureStartCycle` of a capture whose run never left warmup. */
constexpr std::uint64_t kMetricsNoMeasureStart = ~std::uint64_t{0};

/** How a series should be interpreted by analyzers. */
enum class SeriesKind : std::uint8_t
{
    Counter = 0, ///< cumulative count; rates come from deltas
    Gauge = 1,   ///< instantaneous level at the sample cycle
};

constexpr std::string_view
toString(SeriesKind k)
{
    return k == SeriesKind::Counter ? "counter" : "gauge";
}

/**
 * Fixed 64-byte file header. `sampleCount` and `payloadBytes` are
 * patched in when the sampler finishes; a crashed run leaves the
 * placeholder (all-zero) header, which the reader rejects — unlike an
 * event trace, a half-written columnar file has no decodable prefix.
 */
struct MetricsFileHeader
{
    char magic[8] = {};                ///< kMetricsMagic
    std::uint32_t version = 0;         ///< kMetricsVersion
    std::uint32_t seriesCount = 0;     ///< columns after the cycle column
    std::uint64_t sampleCount = 0;     ///< rows in every column
    std::uint64_t intervalCycles = 0;  ///< configured sampling cadence
    std::uint64_t measureStartCycle =
        kMetricsNoMeasureStart;        ///< warmup barrier cycle
    std::uint32_t numNodes = 0;        ///< ring nodes of the machine
    std::uint32_t numCores = 0;        ///< cores of the machine
    std::uint64_t payloadBytes = 0;    ///< directory + columns length
    std::uint64_t reserved = 0;        ///< pads the header to 64 bytes
};

static_assert(sizeof(MetricsFileHeader) == 64,
              "header size is part of the file format");

// Zigzag-varint codec ------------------------------------------------
//
// The standard LEB128 variable-length encoding of zigzag-mapped
// signed deltas: small steps in either direction cost one or two
// bytes, and a counter reset (a large negative delta) is just a long
// varint, not a format error.

inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

inline void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode one varint from @p data at @p pos, advancing @p pos.
 * @return false on a truncated or over-long (> 10 byte) encoding.
 */
inline bool
readVarint(const std::uint8_t *data, std::size_t size, std::size_t &pos,
           std::uint64_t &out)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= size)
            return false;
        const std::uint8_t byte = data[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            out = v;
            return true;
        }
    }
    return false;
}

/** Append @p values as zigzag-varint deltas (first delta from zero). */
inline void
appendDeltaColumn(std::vector<std::uint8_t> &out,
                  const std::vector<std::uint64_t> &values)
{
    std::uint64_t prev = 0;
    for (std::uint64_t v : values) {
        appendVarint(out, zigzagEncode(static_cast<std::int64_t>(v - prev)));
        prev = v;
    }
}

} // namespace flexsnoop

#endif // FLEXSNOOP_TELEMETRY_METRICS_FORMAT_HH
