/**
 * @file
 * Built-in health detectors over decoded metric time series
 * (docs/TELEMETRY.md): each scans a `.fsmetrics` capture for one
 * pathological temporal pattern and reports the onset cycle — the
 * phenomena (watchdog retry storms, predictor-accuracy collapse under
 * soft errors, ring saturation, scheduler-horizon blowout) begin
 * partway through a run and are invisible in end-of-run aggregates.
 */

#ifndef FLEXSNOOP_TELEMETRY_HEALTH_HH
#define FLEXSNOOP_TELEMETRY_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics_reader.hh"

namespace flexsnoop
{

/** Tunable trip points of the detectors. Defaults are deliberately
 *  conservative: a healthy paper-default run trips none of them. */
struct HealthThresholds
{
    /** Samples a condition must hold consecutively before it fires. */
    std::size_t sustainSamples = 3;
    /** Intervals used to establish each detector's baseline. */
    std::size_t baselineSamples = 5;

    // retry_storm: windowed retry rate (retries per 1000 cycles).
    double retryRateFloor = 0.5;    ///< absolute rate always tolerated
    double retryBaselineMult = 8.0; ///< trip at mult x baseline rate

    // predictor_drift: windowed accuracy from counter deltas.
    double driftDrop = 0.05;        ///< accuracy drop that trips (5 ppt)
    std::uint64_t minPredictions = 16; ///< deltas below this are skipped

    // ring_saturation: busy output links / nodes.
    double saturationRatio = 0.75;

    // queue_horizon: pending-event horizon in cycles.
    double horizonMult = 16.0;        ///< trip at mult x baseline horizon
    std::uint64_t horizonFloor = 100000; ///< absolute horizon tolerated
};

/** Result of one detector (one per detector/series pair, fired or
 *  not, so reports and CI checks see the full panel). */
struct HealthFinding
{
    std::string detector; ///< retry_storm | predictor_drift |
                          ///< ring_saturation | queue_horizon
    std::string series;   ///< series the detector scanned
    bool fired = false;
    std::uint64_t onsetCycle = 0; ///< first cycle of the sustained run
    double baseline = 0.0;        ///< per-detector baseline level
    double peak = 0.0;            ///< worst level seen
    std::string detail;           ///< human-readable one-liner
};

/**
 * Run every applicable detector over @p file. Detectors whose input
 * series were filtered out of the capture are skipped silently; the
 * returned panel has one entry per (detector, series) that could be
 * evaluated. Samples before the measure-start marker (warmup) are
 * excluded.
 */
std::vector<HealthFinding>
runHealthDetectors(const MetricsFile &file,
                   const HealthThresholds &thresholds = {});

} // namespace flexsnoop

#endif // FLEXSNOOP_TELEMETRY_HEALTH_HH
