#include "telemetry/health.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "telemetry/metrics_sampler.hh"

namespace flexsnoop
{

namespace
{

/** First sample index at or past the measure-start barrier (counters
 *  reset there, so deltas across it would go negative). */
std::size_t
firstMeasuredIndex(const MetricsFile &file)
{
    if (file.header.measureStartCycle == kMetricsNoMeasureStart)
        return 0;
    std::size_t i = 0;
    while (i < file.cycles.size() &&
           file.cycles[i] < file.header.measureStartCycle)
        ++i;
    return i;
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                     v.end());
    return v[mid];
}

std::string
formatLevel(double level)
{
    std::ostringstream oss;
    oss.precision(4);
    oss << level;
    return oss.str();
}

/**
 * One point of a detector's derived per-sample signal: the level and
 * the cycle the detectors report as its onset (for interval-delta
 * signals, the start of the interval; for gauges, the sample instant).
 */
struct Point
{
    std::uint64_t onsetCycle;
    double level;
};

/**
 * Core sustained-threshold scan shared by every detector: find the
 * first run of @p sustain consecutive points at or above
 * @p threshold and fill in the finding's fired/onset/peak fields.
 */
void
scanSustained(HealthFinding &finding, const std::vector<Point> &points,
              double threshold, std::size_t sustain)
{
    std::size_t run = 0;
    std::size_t runStart = 0;
    bool found = false;
    if (!points.empty())
        finding.peak = points[0].level; // levels may all be negative
    for (std::size_t i = 0; i < points.size(); ++i) {
        finding.peak = std::max(finding.peak, points[i].level);
        if (found)
            continue;
        if (points[i].level >= threshold) {
            if (run == 0)
                runStart = i;
            if (++run >= sustain) {
                found = true;
                finding.fired = true;
                finding.onsetCycle = points[runStart].onsetCycle;
            }
        } else {
            run = 0;
        }
    }
}

HealthFinding
detectRetryStorm(const MetricsFile &file, const HealthThresholds &t,
                 std::size_t begin)
{
    HealthFinding finding;
    finding.detector = "retry_storm";
    finding.series = "ctrl.retries";

    const std::vector<std::uint64_t> *retries =
        file.column(finding.series);
    std::vector<Point> rates;
    for (std::size_t i = begin + 1; retries && i < retries->size(); ++i) {
        const double dc = static_cast<double>(file.cycles[i]) -
                          static_cast<double>(file.cycles[i - 1]);
        if (dc <= 0)
            continue;
        const double dr =
            static_cast<double>(static_cast<std::int64_t>(
                (*retries)[i] - (*retries)[i - 1]));
        rates.push_back(Point{file.cycles[i - 1], dr / dc * 1000.0});
    }
    if (rates.size() <= t.baselineSamples) {
        finding.detail = "too few samples to evaluate";
        return finding;
    }

    std::vector<double> head;
    for (std::size_t i = 0; i < t.baselineSamples; ++i)
        head.push_back(rates[i].level);
    finding.baseline = median(head);
    const double threshold =
        std::max(t.retryRateFloor, t.retryBaselineMult * finding.baseline);
    scanSustained(finding, rates, threshold, t.sustainSamples);
    finding.detail =
        finding.fired
            ? "retry rate reached " + formatLevel(finding.peak) +
                  "/kcycle (threshold " + formatLevel(threshold) +
                  ", baseline " + formatLevel(finding.baseline) +
                  "/kcycle) from cycle " + std::to_string(finding.onsetCycle)
            : "retry rate peaked at " + formatLevel(finding.peak) +
                  "/kcycle without sustaining " +
                  std::to_string(t.sustainSamples) +
                  " samples above threshold " + formatLevel(threshold);
    return finding;
}

HealthFinding
detectPredictorDrift(const MetricsFile &file, const HealthThresholds &t,
                     std::size_t begin)
{
    HealthFinding finding;
    finding.detector = "predictor_drift";
    finding.series = "pred.correct/pred.predictions";

    const std::vector<std::uint64_t> *correct = file.column("pred.correct");
    const std::vector<std::uint64_t> *total =
        file.column("pred.predictions");
    // Accuracy per interval; intervals with too few predictions carry
    // no signal and are skipped rather than averaged in as noise.
    std::vector<Point> accuracy;
    for (std::size_t i = begin + 1; correct && total && i < total->size();
         ++i) {
        const std::uint64_t dt = (*total)[i] - (*total)[i - 1];
        if (dt < t.minPredictions)
            continue;
        const std::uint64_t dcForward = (*correct)[i] - (*correct)[i - 1];
        accuracy.push_back(
            Point{file.cycles[i - 1],
                  static_cast<double>(dcForward) / static_cast<double>(dt)});
    }
    if (accuracy.size() <= t.baselineSamples) {
        finding.detail = "too few predictions to evaluate";
        return finding;
    }

    std::vector<double> head;
    for (std::size_t i = 0; i < t.baselineSamples; ++i)
        head.push_back(accuracy[i].level);
    finding.baseline = median(head);
    // Scan for sustained *drops*: negate so scanSustained's >= check
    // becomes "accuracy <= baseline - driftDrop".
    std::vector<Point> drop;
    drop.reserve(accuracy.size());
    for (const Point &p : accuracy)
        drop.push_back(Point{p.onsetCycle, -p.level});
    scanSustained(finding, drop, -(finding.baseline - t.driftDrop),
                  t.sustainSamples);
    finding.peak = -finding.peak; // back to a (worst) accuracy
    finding.detail =
        finding.fired
            ? "accuracy fell to " + formatLevel(finding.peak) +
                  " (baseline " + formatLevel(finding.baseline) +
                  ", trip at -" + formatLevel(t.driftDrop) +
                  ") from cycle " + std::to_string(finding.onsetCycle)
            : "accuracy never sustained " +
                  std::to_string(t.sustainSamples) + " samples below " +
                  "baseline " + formatLevel(finding.baseline) + " - " +
                  formatLevel(t.driftDrop) + " (worst " +
                  formatLevel(finding.peak) + ")";
    return finding;
}

void
detectRingSaturation(const MetricsFile &file, const HealthThresholds &t,
                     std::size_t begin,
                     std::vector<HealthFinding> &findings)
{
    for (std::size_t s = 0; s < file.names.size(); ++s) {
        const std::string &name = file.names[s];
        if (!metricSelectorMatches("*.busy_links", name))
            continue;
        HealthFinding finding;
        finding.detector = "ring_saturation";
        finding.series = name;
        if (file.header.numNodes == 0) {
            finding.detail = "file header has no node count";
            findings.push_back(std::move(finding));
            continue;
        }
        std::vector<Point> ratios;
        const std::vector<std::uint64_t> &col = file.columns[s];
        for (std::size_t i = begin; i < col.size(); ++i) {
            ratios.push_back(
                Point{file.cycles[i],
                      static_cast<double>(col[i]) /
                          static_cast<double>(file.header.numNodes)});
        }
        finding.baseline = t.saturationRatio;
        scanSustained(finding, ratios, t.saturationRatio,
                      t.sustainSamples);
        finding.detail =
            finding.fired
                ? "link occupancy reached " + formatLevel(finding.peak) +
                      " (threshold " + formatLevel(t.saturationRatio) +
                      ") from cycle " + std::to_string(finding.onsetCycle)
                : "link occupancy peaked at " + formatLevel(finding.peak) +
                      " without sustaining " +
                      std::to_string(t.sustainSamples) +
                      " samples above " + formatLevel(t.saturationRatio);
        findings.push_back(std::move(finding));
    }
}

HealthFinding
detectQueueHorizon(const MetricsFile &file, const HealthThresholds &t,
                   std::size_t begin)
{
    HealthFinding finding;
    finding.detector = "queue_horizon";
    finding.series = "queue.horizon";

    const std::vector<std::uint64_t> *horizon = file.column(finding.series);
    std::vector<Point> points;
    for (std::size_t i = begin; horizon && i < horizon->size(); ++i) {
        points.push_back(
            Point{file.cycles[i], static_cast<double>((*horizon)[i])});
    }
    if (points.size() <= t.baselineSamples) {
        finding.detail = "too few samples to evaluate";
        return finding;
    }

    std::vector<double> head;
    for (std::size_t i = 0; i < t.baselineSamples; ++i)
        head.push_back(points[i].level);
    finding.baseline = median(head);
    const double threshold =
        std::max(static_cast<double>(t.horizonFloor),
                 t.horizonMult * finding.baseline);
    scanSustained(finding, points, threshold, t.sustainSamples);
    finding.detail =
        finding.fired
            ? "pending-event horizon reached " + formatLevel(finding.peak) +
                  " cycles (threshold " + formatLevel(threshold) +
                  ", baseline " + formatLevel(finding.baseline) +
                  ") from cycle " + std::to_string(finding.onsetCycle)
            : "horizon peaked at " + formatLevel(finding.peak) +
                  " cycles without sustaining " +
                  std::to_string(t.sustainSamples) +
                  " samples above threshold " + formatLevel(threshold);
    return finding;
}

/** A detector whose input series were filtered out of the capture has
 *  nothing to say: keep it out of the panel entirely. */
bool
evaluable(const MetricsFile &file,
          std::initializer_list<const char *> series)
{
    for (const char *name : series) {
        if (file.indexOf(name) < 0)
            return false;
    }
    return true;
}

} // namespace

std::vector<HealthFinding>
runHealthDetectors(const MetricsFile &file, const HealthThresholds &t)
{
    const std::size_t begin = firstMeasuredIndex(file);
    std::vector<HealthFinding> findings;
    if (evaluable(file, {"ctrl.retries"}))
        findings.push_back(detectRetryStorm(file, t, begin));
    if (evaluable(file, {"pred.correct", "pred.predictions"}))
        findings.push_back(detectPredictorDrift(file, t, begin));
    detectRingSaturation(file, t, begin, findings);
    if (evaluable(file, {"queue.horizon"}))
        findings.push_back(detectQueueHorizon(file, t, begin));
    return findings;
}

} // namespace flexsnoop
