#include "telemetry/metrics_sampler.hh"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

Cycle
parseInterval(const std::string &value)
{
    std::uint64_t parsed = 0;
    std::size_t pos = 0;
    try {
        parsed = std::stoull(value, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "metrics spec: bad value for 'interval': '" + value + "'");
    }
    if (pos != value.size() || (!value.empty() && value[0] == '-'))
        throw std::invalid_argument(
            "metrics spec: bad value for 'interval': '" + value + "'");
    if (parsed == 0)
        throw std::invalid_argument(
            "metrics spec: 'interval' must be at least 1 cycle");
    return parsed;
}

} // namespace

MetricsConfig
MetricsConfig::fromSpec(const std::string &spec)
{
    MetricsConfig config;
    std::istringstream iss(spec);
    std::string item;
    bool first = true;
    while (std::getline(iss, item, ',')) {
        if (first) {
            config.path = item;
            first = false;
            continue;
        }
        const auto eq = item.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument(
                "metrics spec: expected key=value, got '" + item + "'");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "interval") {
            config.intervalCycles = parseInterval(value);
        } else if (key == "select") {
            if (value.empty())
                throw std::invalid_argument(
                    "metrics spec: 'select' needs a glob pattern");
            config.select = value;
        } else {
            throw std::invalid_argument(
                "metrics spec: unknown key '" + key +
                "' (expected interval or select)");
        }
    }
    if (config.path.empty())
        throw std::invalid_argument("metrics spec: missing output file");
    return config;
}

bool
metricSelectorMatches(const std::string &pattern, const std::string &name)
{
    if (pattern.empty())
        return true;
    // Iterative glob with single-star backtracking: on a mismatch past
    // a '*', resume one name character further under that star.
    std::size_t p = 0, n = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

MetricsSampler::MetricsSampler(const MetricsConfig &config,
                               std::size_t num_nodes,
                               std::size_t num_cores)
    : _config(config),
      _numNodes(static_cast<std::uint32_t>(num_nodes)),
      _numCores(static_cast<std::uint32_t>(num_cores))
{
    _file = std::fopen(_config.path.c_str(), "wb");
    if (!_file) {
        throw std::runtime_error("cannot create metrics file: " +
                                 _config.path);
    }
    // Placeholder header: all zeroes, rewritten by finish(). The
    // reader rejects it, so a crashed capture is detectably invalid
    // rather than silently empty.
    const MetricsFileHeader placeholder{};
    std::fwrite(&placeholder, sizeof(placeholder), 1, _file);
}

MetricsSampler::~MetricsSampler()
{
    finish();
}

bool
MetricsSampler::addSeries(std::string name, SeriesKind kind, GaugeFn fn)
{
    if (!metricSelectorMatches(_config.select, name))
        return false;
    _series.push_back(Series{std::move(name), kind, std::move(fn), {}});
    return true;
}

void
MetricsSampler::sample(Cycle cycle)
{
    _cycles.push_back(cycle);
    for (Series &s : _series)
        s.values.push_back(s.fn(cycle));
}

void
MetricsSampler::finish()
{
    if (_finished)
        return;
    _finished = true;

    std::vector<std::uint8_t> payload;
    // Directory: u16 name length + bytes + u8 kind, per series.
    for (const Series &s : _series) {
        const auto len = static_cast<std::uint16_t>(s.name.size());
        payload.push_back(static_cast<std::uint8_t>(len & 0xff));
        payload.push_back(static_cast<std::uint8_t>(len >> 8));
        payload.insert(payload.end(), s.name.begin(), s.name.end());
        payload.push_back(static_cast<std::uint8_t>(s.kind));
    }
    appendDeltaColumn(payload, _cycles);
    for (const Series &s : _series)
        appendDeltaColumn(payload, s.values);

    MetricsFileHeader header;
    std::memcpy(header.magic, kMetricsMagic, sizeof(header.magic));
    header.version = kMetricsVersion;
    header.seriesCount = static_cast<std::uint32_t>(_series.size());
    header.sampleCount = _cycles.size();
    header.intervalCycles = _config.intervalCycles;
    header.measureStartCycle = _measureStart;
    header.numNodes = _numNodes;
    header.numCores = _numCores;
    header.payloadBytes = payload.size();

    std::fseek(_file, 0, SEEK_SET);
    std::fwrite(&header, sizeof(header), 1, _file);
    if (!payload.empty())
        std::fwrite(payload.data(), 1, payload.size(), _file);
    std::fclose(_file);
    _file = nullptr;
}

void
MetricsSampler::dumpRecent(std::ostream &os, std::size_t k) const
{
    if (_cycles.empty()) {
        os << "telemetry: armed (interval " << _config.intervalCycles
           << ") but no samples taken yet\n";
        return;
    }
    const std::size_t n = std::min(k, _cycles.size());
    const std::size_t first = _cycles.size() - n;
    os << "telemetry: last " << n << " of " << _cycles.size()
       << " metric samples (interval " << _config.intervalCycles
       << "):\n";
    os << "  cycle:";
    for (std::size_t i = first; i < _cycles.size(); ++i)
        os << ' ' << _cycles[i];
    os << '\n';
    for (const Series &s : _series) {
        os << "  " << s.name << ':';
        for (std::size_t i = first; i < s.values.size(); ++i)
            os << ' ' << s.values[i];
        os << '\n';
    }
}

} // namespace flexsnoop
