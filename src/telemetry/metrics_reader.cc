#include "telemetry/metrics_reader.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("metrics file " + path + ": " + what);
}

std::vector<std::uint64_t>
decodeColumn(const std::string &path, const std::uint8_t *data,
             std::size_t size, std::size_t &pos, std::uint64_t count,
             const std::string &label)
{
    std::vector<std::uint64_t> values;
    values.reserve(count);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t z = 0;
        if (!readVarint(data, size, pos, z))
            fail(path, "truncated or corrupt column '" + label + "'");
        prev = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(prev) + zigzagDecode(z));
        values.push_back(prev);
    }
    return values;
}

} // namespace

std::ptrdiff_t
MetricsFile::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
}

const std::vector<std::uint64_t> *
MetricsFile::column(const std::string &name) const
{
    const std::ptrdiff_t i = indexOf(name);
    return i < 0 ? nullptr : &columns[static_cast<std::size_t>(i)];
}

MetricsFile
loadMetrics(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> file(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!file)
        fail(path, "cannot open");

    MetricsFile out;
    if (std::fread(&out.header, sizeof(out.header), 1, file.get()) != 1)
        fail(path, "shorter than the 64-byte header");
    if (std::memcmp(out.header.magic, kMetricsMagic,
                    sizeof(kMetricsMagic)) != 0) {
        fail(path, "bad magic (not a .fsmetrics file, or the capture "
                   "crashed before finishing)");
    }
    if (out.header.version != kMetricsVersion) {
        fail(path, "unsupported version " +
                       std::to_string(out.header.version) + " (expected " +
                       std::to_string(kMetricsVersion) + ")");
    }

    std::vector<std::uint8_t> payload(out.header.payloadBytes);
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), file.get()) !=
            payload.size()) {
        fail(path, "truncated payload (header promises " +
                       std::to_string(out.header.payloadBytes) +
                       " bytes)");
    }
    if (std::fgetc(file.get()) != EOF)
        fail(path, "trailing bytes after the promised payload");

    const std::uint8_t *data = payload.data();
    const std::size_t size = payload.size();
    std::size_t pos = 0;

    for (std::uint32_t s = 0; s < out.header.seriesCount; ++s) {
        if (pos + 2 > size)
            fail(path, "truncated series directory");
        const std::uint16_t len = static_cast<std::uint16_t>(
            data[pos] | (data[pos + 1] << 8));
        pos += 2;
        if (pos + len + 1 > size)
            fail(path, "truncated series directory");
        out.names.emplace_back(reinterpret_cast<const char *>(data + pos),
                               len);
        pos += len;
        const std::uint8_t kind = data[pos++];
        if (kind > static_cast<std::uint8_t>(SeriesKind::Gauge))
            fail(path, "unknown series kind in directory");
        out.kinds.push_back(static_cast<SeriesKind>(kind));
    }

    out.cycles = decodeColumn(path, data, size, pos,
                              out.header.sampleCount, "cycle");
    out.columns.reserve(out.names.size());
    for (const std::string &name : out.names) {
        out.columns.push_back(decodeColumn(
            path, data, size, pos, out.header.sampleCount, name));
    }
    if (pos != size)
        fail(path, "unused bytes after the last column");
    return out;
}

} // namespace flexsnoop
