/**
 * @file
 * Snoop-activity energy accounting (paper §6.1.4).
 *
 * The paper charges the energy of read and write snoop requests/replies:
 *  - transmitting a message over one ring link   (3.17 nJ, HyperTransport)
 *  - snooping all L2s of one CMP                 (0.69 nJ, CACTI)
 *  - accessing / training the Supplier Predictor (CACTI-scale estimate)
 *  - for Exact only: the downgrade cache operations plus the resulting
 *    writebacks to and eventual re-reads from main memory (24 nJ per
 *    DRAM line access, Micron system-power calculator)
 *
 * Regular data transfers and demand memory reads are *not* charged: they
 * are common to all algorithms and the paper's Figure 9 excludes them.
 */

#ifndef FLEXSNOOP_ENERGY_ENERGY_MODEL_HH
#define FLEXSNOOP_ENERGY_ENERGY_MODEL_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string_view>

namespace flexsnoop
{

enum class EnergyEvent : std::size_t
{
    RingLinkMessage = 0, ///< one message over one ring link
    CmpSnoop,            ///< parallel probe of all L2s in a CMP
    PredictorAccess,     ///< Supplier Predictor lookup
    PredictorTrain,      ///< Supplier Predictor insert/remove
    DowngradeCacheOp,    ///< cache state write for a forced downgrade
    DowngradeWriteback,  ///< DRAM writeback caused by a downgrade
    DowngradeReRead,     ///< DRAM read that a downgrade made necessary
    GlobalRingLinkMessage, ///< one message over one global-ring link
    BridgePredictorAccess, ///< bridge aggregate predictor lookup
    BridgePredictorTrain,  ///< bridge aggregate predictor insert/remove
    NumEvents,
};

constexpr std::size_t kNumEnergyEvents =
    static_cast<std::size_t>(EnergyEvent::NumEvents);

std::string_view toString(EnergyEvent e);

/** Per-event energies in nanojoules. */
struct EnergyParams
{
    double ringLinkMessageNj = 3.17; ///< paper §6.1.4
    double cmpSnoopNj = 0.69;        ///< paper §6.1.4
    double predictorAccessNj = 0.08; ///< CACTI-scale, ~2-8 KB structure
    double predictorTrainNj = 0.10;
    double downgradeCacheOpNj = 0.69;
    double dramLineNj = 24.0;        ///< paper §6.1.4
    /** Global-ring links span whole local rings: roughly double the
     *  wire length (and repeater count) of a CMP-to-CMP link. */
    double globalRingLinkMessageNj = 6.34;
    double bridgePredictorAccessNj = 0.10; ///< aggregate Bloom lookup
    double bridgePredictorTrainNj = 0.12;  ///< aggregate Bloom update

    double perEventNj(EnergyEvent e) const;
};

/**
 * Event-count based energy accumulator; one per simulation.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams{})
        : _params(params)
    {
        _counts.fill(0);
    }

    void
    record(EnergyEvent e, std::uint64_t count = 1)
    {
        _counts[static_cast<std::size_t>(e)] += count;
    }

    std::uint64_t
    count(EnergyEvent e) const
    {
        return _counts[static_cast<std::size_t>(e)];
    }

    double
    categoryNj(EnergyEvent e) const
    {
        return count(e) * _params.perEventNj(e);
    }

    /** Total snoop-related energy in nanojoules. */
    double totalNj() const;

    const EnergyParams &params() const { return _params; }

    void reset() { _counts.fill(0); }

    /** Per-category breakdown table. */
    void dump(std::ostream &os) const;

  private:
    EnergyParams _params;
    std::array<std::uint64_t, kNumEnergyEvents> _counts;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_ENERGY_ENERGY_MODEL_HH
